package pacon_test

// One benchmark per paper figure: each iteration regenerates the
// experiment at reduced (Quick) scale and reports the headline virtual-
// time metrics as custom benchmark units. The full-scale numbers come
// from `go run ./cmd/paconbench -all`; these benches make the figures
// part of `go test -bench`.
//
// Custom units:
//
//	vops/s   — virtual-time operations per second (the paper's OPS)
//	ratio    — Pacon-vs-baseline factor for the figure's headline claim
//
// Table I has no performance content; it is enforced by
// TestTableIConformance in internal/core.

import (
	"testing"

	"pacon"
	"pacon/internal/bench"
)

// runFig executes a figure once and fails the benchmark on error.
func runFig(b *testing.B, id string) []*bench.Figure {
	b.Helper()
	figs, err := bench.Run(id, bench.Quick())
	if err != nil {
		b.Fatalf("%s: %v", id, err)
	}
	return figs
}

func BenchmarkFig01ClientScalability(b *testing.B) {
	var last []*bench.Figure
	for i := 0; i < b.N; i++ {
		last = runFig(b, "fig1")
	}
	f := last[0]
	b.ReportMetric(f.Last(string(bench.BeeGFS)), "beegfs-multiple")
	b.ReportMetric(f.Last(string(bench.IndexFS)), "indexfs-multiple")
}

func BenchmarkFig02PathTraversalCost(b *testing.B) {
	var last []*bench.Figure
	for i := 0; i < b.N; i++ {
		last = runFig(b, "fig2")
	}
	f := last[0]
	loss := func(sys bench.System) float64 {
		return 100 * (1 - f.Last(string(sys))/f.Value(0, string(sys)))
	}
	b.ReportMetric(loss(bench.BeeGFS), "beegfs-loss-%")
	b.ReportMetric(loss(bench.IndexFS), "indexfs-loss-%")
}

func BenchmarkFig07SingleApp(b *testing.B) {
	var last []*bench.Figure
	for i := 0; i < b.N; i++ {
		last = runFig(b, "fig7")
	}
	create, stat := last[1], last[2]
	b.ReportMetric(create.Last(string(bench.Pacon)), "pacon-create-vops/s")
	b.ReportMetric(create.Last(string(bench.Pacon))/create.Last(string(bench.BeeGFS)), "create-vs-beegfs-ratio")
	b.ReportMetric(stat.Last(string(bench.Pacon))/stat.Last(string(bench.BeeGFS)), "stat-vs-beegfs-ratio")
}

func BenchmarkFig08MultiApp(b *testing.B) {
	var last []*bench.Figure
	for i := 0; i < b.N; i++ {
		last = runFig(b, "fig8")
	}
	create := last[1]
	b.ReportMetric(create.Last(string(bench.Pacon)), "pacon-create-vops/s")
	b.ReportMetric(create.Last(string(bench.Pacon))/create.Last(string(bench.IndexFS)), "create-vs-indexfs-ratio")
}

func BenchmarkFig09PathTraversal(b *testing.B) {
	var last []*bench.Figure
	for i := 0; i < b.N; i++ {
		last = runFig(b, "fig9")
	}
	f := last[0]
	b.ReportMetric(f.Last(string(bench.Pacon)), "pacon-depth6-vops/s")
	b.ReportMetric(f.Value(0, string(bench.Pacon))/f.Last(string(bench.Pacon)), "pacon-depth-sensitivity")
}

func BenchmarkFig10PaconOverhead(b *testing.B) {
	var last []*bench.Figure
	for i := 0; i < b.N; i++ {
		last = runFig(b, "fig10")
	}
	f := last[0]
	b.ReportMetric(100*f.Last(string(bench.Pacon))/f.Last(string(bench.Memcached)), "pacon-vs-memcached-%")
}

func BenchmarkFig11Scalability(b *testing.B) {
	var last []*bench.Figure
	for i := 0; i < b.N; i++ {
		last = runFig(b, "fig11")
	}
	norm, abs := last[0], last[1]
	b.ReportMetric(norm.Last(string(bench.Pacon)), "pacon-scaling-multiple")
	b.ReportMetric(abs.Last(string(bench.Pacon)), "pacon-create-vops/s")
}

func BenchmarkFig12MADbench(b *testing.B) {
	var last []*bench.Figure
	for i := 0; i < b.N; i++ {
		last = runFig(b, "fig12")
	}
	f := last[0]
	b.ReportMetric(f.Value(4, string(bench.Pacon))/f.Value(4, string(bench.BeeGFS)), "total-runtime-ratio")
	b.ReportMetric(f.Value(0, string(bench.Pacon))/f.Value(0, string(bench.BeeGFS)), "init-ratio")
}

// Substrate micro-benchmarks (real wall-clock time): the hot paths the
// simulation executes millions of times per experiment.

func BenchmarkMdtestCreatePacon(b *testing.B) {
	benchmarkMdtestCreate(b, bench.Pacon)
}

func BenchmarkMdtestCreateBeeGFS(b *testing.B) {
	benchmarkMdtestCreate(b, bench.BeeGFS)
}

func BenchmarkMdtestCreateIndexFS(b *testing.B) {
	benchmarkMdtestCreate(b, bench.IndexFS)
}

func benchmarkMdtestCreate(b *testing.B, sys bench.System) {
	cfg := bench.Quick()
	cfg.MaxNodes = 2
	cfg.ClientsPerNode = 4
	var totalOps int64
	var totalVirtual float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunMdtest(cfg, sys, bench.MdtestSpec{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		totalOps += res.Create.Ops
		totalVirtual += res.Create.Elapsed.Seconds()
	}
	if totalVirtual > 0 {
		b.ReportMetric(float64(totalOps)/totalVirtual, "vops/s")
	}
	b.ReportMetric(float64(totalOps)/b.Elapsed().Seconds(), "real-ops/s")
}

func BenchmarkSimulationProvision(b *testing.B) {
	// End-to-end cost of standing up a full deployment, the per-point
	// overhead every figure pays.
	for i := 0; i < b.N; i++ {
		sim := pacon.NewSimulation(pacon.SimulationConfig{ClientNodes: 8})
		sim.MustMkdirAll("/w", 0o777)
	}
}
