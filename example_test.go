package pacon_test

import (
	"errors"
	"fmt"

	"pacon"
)

// Example shows the library's core flow: start a region, write at cache
// speed, read back, and observe the asynchronous backup commit.
func Example() {
	sim := pacon.NewSimulation(pacon.SimulationConfig{ClientNodes: 2})
	sim.MustMkdirAll("/proj/demo", 0o777)

	region, err := sim.NewRegion(pacon.RegionConfig{
		Name:      "demo",
		Workspace: "/proj/demo",
		Nodes:     sim.Nodes(),
		Cred:      pacon.Cred{UID: 1000, GID: 1000},
	})
	if err != nil {
		panic(err)
	}
	defer region.Close()

	client, _ := region.NewClient(sim.Nodes()[0])
	now, _ := client.Create(0, "/proj/demo/result.dat", 0o644)
	now, _ = client.WriteAt(now, "/proj/demo/result.dat", 0, []byte("42"))

	data, now, _ := client.ReadAt(now, "/proj/demo/result.dat", 0, 16)
	fmt.Printf("read: %s\n", data)

	// Force the backup copies onto the DFS and confirm.
	now, _ = region.Drain(now)
	verify := sim.DFSClient(sim.Nodes()[1], pacon.Cred{UID: 1000, GID: 1000})
	st, _, _ := verify.Stat(now, "/proj/demo/result.dat")
	fmt.Printf("on DFS: %v, %d bytes\n", st.Type, st.Size)

	// Output:
	// read: 42
	// on DFS: file, 2 bytes
}

// ExamplePlanRegions demonstrates the paper's case-3 guidance for
// overlapping workspaces.
func ExamplePlanRegions() {
	roots := pacon.PlanRegions([]string{"/A/B", "/A", "/C"})
	fmt.Println(roots)
	fmt.Println(pacon.RegionFor(roots, "/A/B/file"))
	// Output:
	// [/A /C]
	// /A
}

// ExampleRegion_Merge shows read-only data sharing across regions.
func ExampleRegion_Merge() {
	sim := pacon.NewSimulation(pacon.SimulationConfig{ClientNodes: 2})
	sim.MustMkdirAll("/a", 0o777)
	sim.MustMkdirAll("/b", 0o777)

	ra, _ := sim.NewRegion(pacon.RegionConfig{
		Name: "a", Workspace: "/a", Nodes: sim.Nodes()[:1],
		Cred: pacon.Cred{UID: 1, GID: 1},
		Perm: pacon.PermSpec{Normal: pacon.PermEntry{Mode: 0o755, UID: 1, GID: 1}},
	})
	defer ra.Close()
	rb, _ := sim.NewRegion(pacon.RegionConfig{
		Name: "b", Workspace: "/b", Nodes: sim.Nodes()[1:],
		Cred: pacon.Cred{UID: 2, GID: 2},
	})
	defer rb.Close()

	ca, _ := ra.NewClient(sim.Nodes()[0])
	now, _ := ca.Create(0, "/a/shared.dat", 0o644)

	rb.Merge(ra)
	cb, _ := rb.NewClient(sim.Nodes()[1])
	st, now, _ := cb.Stat(now, "/a/shared.dat")
	fmt.Printf("merged read: %v\n", st.Type)

	_, err := cb.Create(now, "/a/intruder", 0o644)
	fmt.Println("merged write rejected:", errors.Is(err, pacon.ErrReadOnly))
	// Output:
	// merged read: file
	// merged write rejected: true
}
