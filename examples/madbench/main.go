// MADbench-style HPC application (paper §IV.F): N processes each create
// a component file, generate data, then iterate read/compute/write. The
// example contrasts Pacon's behavior on the two file classes:
//
//   - checkpoint manifests (small) stay inline in the distributed cache;
//   - component data (4 MB) crosses the small-file threshold and is
//     redirected to the DFS data servers, so the data path is untouched.
package main

import (
	"fmt"
	"log"

	"pacon"
)

const (
	procs     = 16
	fileBytes = 4 << 20 // 4 MB, as in the paper's run
	chunk     = 1 << 20
)

func main() {
	sim := pacon.NewSimulation(pacon.SimulationConfig{ClientNodes: 4})
	sim.MustMkdirAll("/scratch/madbench", 0o777)

	region, err := sim.NewRegion(pacon.RegionConfig{
		Name:      "madbench",
		Workspace: "/scratch/madbench",
		Nodes:     sim.Nodes(),
		Cred:      pacon.Cred{UID: 1000, GID: 1000},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer region.Close()

	// One client per working process, spread over the nodes.
	clients := make([]*pacon.Client, procs)
	for i := range clients {
		if clients[i], err = region.NewClient(sim.Nodes()[i%len(sim.Nodes())]); err != nil {
			log.Fatal(err)
		}
	}

	// Init: every process creates its component file and a small
	// manifest describing it.
	var initEnd pacon.Time
	payload := make([]byte, chunk)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i, cl := range clients {
		now, err := cl.Create(0, componentPath(i), 0o644)
		if err != nil {
			log.Fatal(err)
		}
		manifest := fmt.Sprintf("component=%d bytes=%d", i, fileBytes)
		if now, err = cl.Create(now, manifestPath(i), 0o644); err != nil {
			log.Fatal(err)
		}
		if now, err = cl.WriteAt(now, manifestPath(i), 0, []byte(manifest)); err != nil {
			log.Fatal(err)
		}
		if now > initEnd {
			initEnd = now
		}
	}
	fmt.Printf("init: %d component files + manifests created by %v\n", procs, initEnd)

	// Write phase: 4 MB per process — beyond the 4 KB threshold, so the
	// bytes go straight to the striped data servers.
	var writeEnd pacon.Time
	for i, cl := range clients {
		now := initEnd
		for off := 0; off < fileBytes; off += chunk {
			var err error
			if now, err = cl.WriteAt(now, componentPath(i), int64(off), payload); err != nil {
				log.Fatal(err)
			}
		}
		if now > writeEnd {
			writeEnd = now
		}
	}
	fmt.Printf("write: %d MB of component data on the DFS by %v\n",
		procs*fileBytes>>20, writeEnd)

	// Read phase: verify content round-trips through the DFS.
	now := writeEnd
	data, now, err := clients[0].ReadAt(now, componentPath(0), chunk, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read-back at offset %d: % x...\n", chunk, data[:4])

	// The manifests are still inline — a single cache request each.
	m, now, err := clients[procs-1].ReadAt(now, manifestPath(procs-1), 0, 128)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("manifest (inline in cache): %q\n", m)

	// Breakdown: metadata was absorbed by the cache; data went to the
	// DFS. That is why the paper's Fig 12 shows Pacon ≈ BeeGFS overall
	// in this data-intensive run, with only the init slice shrinking.
	fmt.Printf("commit stats: %+v\n", region.Stats())
}

func componentPath(i int) string {
	return fmt.Sprintf("/scratch/madbench/component.%02d.dat", i)
}

func manifestPath(i int) string {
	return fmt.Sprintf("/scratch/madbench/component.%02d.manifest", i)
}
