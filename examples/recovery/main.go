// Failure recovery (paper §III.G): a region checkpoints its workspace
// subtree on the DFS; when a client node dies with uncommitted
// operations, the application rolls the subtree back to the checkpoint
// and rebuilds the distributed cache.
package main

import (
	"errors"
	"fmt"
	"log"

	"pacon"
)

func main() {
	sim := pacon.NewSimulation(pacon.SimulationConfig{ClientNodes: 4})
	sim.MustMkdirAll("/proj/sim", 0o777)

	region, err := sim.NewRegion(pacon.RegionConfig{
		Name:      "sim",
		Workspace: "/proj/sim",
		Nodes:     sim.Nodes(),
		Cred:      pacon.Cred{UID: 1000, GID: 1000},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer region.Close()

	c0, err := region.NewClient(sim.Nodes()[0])
	if err != nil {
		log.Fatal(err)
	}

	// Epoch 1 of the application: results worth keeping.
	now, err := c0.Mkdir(0, "/proj/sim/epoch1", 0o755)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p := fmt.Sprintf("/proj/sim/epoch1/state%d", i)
		if now, err = c0.Create(now, p, 0o644); err != nil {
			log.Fatal(err)
		}
		if now, err = c0.WriteAt(now, p, 0, []byte(fmt.Sprintf("converged-%d", i))); err != nil {
			log.Fatal(err)
		}
	}

	// The application checkpoints its workspace — a subtree copy on the
	// DFS, not a whole-namespace snapshot.
	seq, now, err := region.Checkpoint(c0, now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint %d taken at %v\n", seq, now)

	// Epoch 2 begins: more writes, some still uncommitted...
	if now, err = c0.Mkdir(now, "/proj/sim/epoch2", 0o755); err != nil {
		log.Fatal(err)
	}
	if now, err = c0.Create(now, "/proj/sim/epoch2/partial", 0o644); err != nil {
		log.Fatal(err)
	}

	// ...when node0 crashes. Its queued operations are lost; its cache
	// contents vanish.
	lost := region.SimulateNodeFailure(sim.Nodes()[0])
	fmt.Printf("node %s failed: %d uncommitted operations lost\n", sim.Nodes()[0], lost)

	// A surviving node rolls the workspace back to the checkpoint.
	c1, err := region.NewClient(sim.Nodes()[1])
	if err != nil {
		log.Fatal(err)
	}
	if now, err = region.Restore(c1, now, seq); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored to checkpoint %d at %v\n", seq, now)

	// Checkpointed state is intact — including small-file data, which
	// re-attaches by path.
	data, now, err := c1.ReadAt(now, "/proj/sim/epoch1/state7", 0, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch1/state7: %q\n", data)

	// Post-checkpoint state is gone, as requested.
	if _, _, err := c1.Stat(now, "/proj/sim/epoch2"); errors.Is(err, pacon.ErrNotExist) {
		fmt.Println("epoch2 rolled back")
	} else {
		log.Fatalf("epoch2 still present: %v", err)
	}

	// Note §III.G: checkpoints are optional. Without one, the DFS still
	// holds every committed operation; only uncommitted tail work needs
	// application-level replay.
}
