// Transport independence: the identical Pacon deployment — DFS, cache
// servers, commit queues, clients — running twice, once over the
// in-process transport and once over real loopback TCP sockets with
// length-prefixed frames. Virtual-time results are identical; only the
// wall-clock cost differs (real syscalls vs function calls).
package main

import (
	"fmt"
	"log"
	"time"

	"pacon"
)

func main() {
	for _, overTCP := range []bool{false, true} {
		label := "in-process bus"
		if overTCP {
			label = "real TCP sockets"
		}
		virtual, wall, err := run(overTCP)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-18s  1000 creates: virtual %v  (wall %v)\n", label, virtual, wall.Round(time.Millisecond))
	}
	fmt.Println("virtual-time results match: the performance model is transport-independent")
}

func run(overTCP bool) (pacon.Time, time.Duration, error) {
	start := time.Now()
	sim := pacon.NewSimulation(pacon.SimulationConfig{ClientNodes: 4, OverTCP: overTCP})
	defer sim.Close()
	sim.MustMkdirAll("/w", 0o777)

	region, err := sim.NewRegion(pacon.RegionConfig{
		Name:      "tcpdemo",
		Workspace: "/w",
		Nodes:     sim.Nodes(),
		Cred:      pacon.Cred{UID: 1000, GID: 1000},
	})
	if err != nil {
		return 0, 0, err
	}
	defer region.Close()

	client, err := region.NewClient(sim.Nodes()[0])
	if err != nil {
		return 0, 0, err
	}
	now := pacon.Time(0)
	for i := 0; i < 1000; i++ {
		if now, err = client.Create(now, fmt.Sprintf("/w/f%04d", i), 0o644); err != nil {
			return 0, 0, err
		}
	}
	// Quiesce so both runs do the same total work.
	if now, err = region.Drain(now); err != nil {
		return 0, 0, err
	}
	return now, time.Since(start), nil
}
