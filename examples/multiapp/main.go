// Multi-application sharing: two applications with non-overlapping
// workspaces share data by merging their consistent regions (paper
// §III.B case 2, §III.D.4). The producer's metadata stays strongly
// consistent inside its region; the consumer reads it through the
// producer's distributed cache — read-only — without waiting for DFS
// commits.
package main

import (
	"errors"
	"fmt"
	"log"

	"pacon"
)

func main() {
	sim := pacon.NewSimulation(pacon.SimulationConfig{ClientNodes: 8})
	sim.MustMkdirAll("/proj/producer", 0o777)
	sim.MustMkdirAll("/proj/consumer", 0o777)

	producerCred := pacon.Cred{UID: 1001, GID: 100}
	consumerCred := pacon.Cred{UID: 1002, GID: 100}

	// Producer on nodes 0-3, consumer on nodes 4-7: separate regions.
	producer, err := sim.NewRegion(pacon.RegionConfig{
		Name:      "producer",
		Workspace: "/proj/producer",
		Nodes:     sim.Nodes()[:4],
		Cred:      producerCred,
		// Predefined batch permissions: group-readable so the consumer
		// (same GID) may read the shared outputs (§III.C).
		Perm: pacon.PermSpec{
			Normal: pacon.PermEntry{Mode: 0o750, UID: producerCred.UID, GID: producerCred.GID},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer producer.Close()

	consumer, err := sim.NewRegion(pacon.RegionConfig{
		Name:      "consumer",
		Workspace: "/proj/consumer",
		Nodes:     sim.Nodes()[4:],
		Cred:      consumerCred,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer consumer.Close()

	// The producer writes a result set.
	pc, err := producer.NewClient(sim.Nodes()[0])
	if err != nil {
		log.Fatal(err)
	}
	now, err := pc.Mkdir(0, "/proj/producer/results", 0o750)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		path := fmt.Sprintf("/proj/producer/results/part%d", i)
		if now, err = pc.Create(now, path, 0o640); err != nil {
			log.Fatal(err)
		}
		if now, err = pc.WriteAt(now, path, 0, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("producer wrote 8 parts by %v (still uncommitted: queue depth %d)\n",
		now, producer.QueueDepth())

	// Merge: the consumer's region attaches the producer's region.
	consumer.Merge(producer)

	cc, err := consumer.NewClient(sim.Nodes()[4])
	if err != nil {
		log.Fatal(err)
	}

	// Reads go through the producer's distributed cache — the parts are
	// visible even before their DFS backup copies exist.
	st, now, err := cc.Stat(now, "/proj/producer/results/part3")
	if err != nil {
		log.Fatal(err)
	}
	data, now, err := cc.ReadAt(now, "/proj/producer/results/part3", 0, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consumer read part3 through the merged region: %q (mode %v)\n", data, st.Mode)

	// The merged view is read-only (§III.D.4).
	if _, err := cc.Create(now, "/proj/producer/results/intruder", 0o644); errors.Is(err, pacon.ErrReadOnly) {
		fmt.Println("consumer write into merged region correctly rejected: read-only")
	} else {
		log.Fatalf("expected ErrReadOnly, got %v", err)
	}

	// The consumer's own workspace is unaffected.
	if _, err := cc.Create(now, "/proj/consumer/own.dat", 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("consumer's own workspace still writable")

	// Case 3 (§III.B): overlapping workspaces would simply share the top
	// region — no merge needed.
}
