// Quickstart: one HPC application, one consistent region (paper §III.B
// case 1). The application defines its workspace, Pacon launches the
// distributed metadata cache on its nodes, metadata writes return at
// cache speed, and everything lands on the DFS asynchronously.
package main

import (
	"fmt"
	"log"

	"pacon"
)

func main() {
	// A self-contained deployment: 1 MDS + 3 data servers + 4 client
	// nodes, on the calibrated virtual-time model.
	sim := pacon.NewSimulation(pacon.SimulationConfig{ClientNodes: 4})

	// The administrator allocates the application's workspace (§II.A).
	sim.MustMkdirAll("/proj/app1", 0o777)

	// The application initializes Pacon with its workspace and nodes.
	region, err := sim.NewRegion(pacon.RegionConfig{
		Name:      "app1",
		Workspace: "/proj/app1",
		Nodes:     sim.Nodes(),
		Cred:      pacon.Cred{UID: 1000, GID: 1000},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer region.Close()

	client, err := region.NewClient(sim.Nodes()[0])
	if err != nil {
		log.Fatal(err)
	}

	// Metadata writes are absorbed by the distributed cache.
	now, err := client.Mkdir(0, "/proj/app1/out", 0o755)
	if err != nil {
		log.Fatal(err)
	}
	start := now
	const files = 1000
	for i := 0; i < files; i++ {
		now, err = client.Create(now, fmt.Sprintf("/proj/app1/out/rank%04d.dat", i), 0o644)
		if err != nil {
			log.Fatal(err)
		}
	}
	elapsed := now.Sub(start)
	fmt.Printf("created %d files in %v of virtual time (%.0f creates/s)\n",
		files, elapsed, float64(files)/elapsed.Seconds())

	// Small files ride inline with their metadata in the cache.
	if now, err = client.WriteAt(now, "/proj/app1/out/rank0000.dat", 0, []byte("result=42\n")); err != nil {
		log.Fatal(err)
	}
	data, now, err := client.ReadAt(now, "/proj/app1/out/rank0000.dat", 0, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inline read-back: %q\n", data)

	// readdir is a barrier operation: it drains the commit queues first,
	// so the listing reflects every asynchronous create.
	ents, now, err := client.Readdir(now, "/proj/app1/out")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("readdir sees %d entries at %v\n", len(ents), now)

	// At this point the backup copies are on the DFS too.
	st := region.Stats()
	fmt.Printf("commit module: %d committed, %d retries, %d dropped, queue depth %d\n",
		st.Committed, st.Retries, st.Dropped, region.QueueDepth())

	// And the DFS agrees (verified through a plain DFS client).
	verify := sim.DFSClient(sim.Nodes()[1], pacon.Cred{UID: 1000, GID: 1000})
	vst, _, err := verify.Stat(now, "/proj/app1/out/rank0999.dat")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DFS backup copy of rank0999.dat: type=%v mode=%v\n", vst.Type, vst.Mode)
}
