// Command benchdiff compares two BENCH_*.json artifacts and flags
// regressions, seeding the bench trajectory: CI (or a developer) diffs
// the committed baseline against a fresh run and sees which metrics
// moved more than the threshold in the adverse direction.
//
// Usage:
//
//	benchdiff OLD.json NEW.json              # report, exit 0
//	benchdiff -fail OLD.json NEW.json        # exit 1 on regressions
//	benchdiff -threshold 0.05 OLD NEW        # tighter gate (default 0.10)
//
// The two files may be any BENCH_*.json shapes: both are flattened to
// dotted numeric leaves ("points[2].virtual_ops_per_sec") and compared
// key-by-key. Direction is inferred from the metric name — throughput-
// like metrics (ops_per_sec, speedup, recall, hits...) regress when
// they fall, cost-like metrics (latency, _ns, wait, errors, misses...)
// when they rise; unrecognized metrics are reported as changed but
// never counted as regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 0.10, "relative change counted as a regression")
		failFlag  = flag.Bool("fail", false, "exit 1 when regressions are found")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.10] [-fail] OLD.json NEW.json")
		os.Exit(2)
	}
	oldLeaves, err := loadLeaves(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newLeaves, err := loadLeaves(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	regressions, improvements, changed := diff(oldLeaves, newLeaves, *threshold)

	fmt.Printf("benchdiff: %s -> %s (threshold %.0f%%)\n", flag.Arg(0), flag.Arg(1), 100**threshold)
	if len(regressions) == 0 && len(improvements) == 0 && len(changed) == 0 {
		fmt.Println("  no metric moved past the threshold")
	}
	for _, d := range regressions {
		fmt.Printf("  REGRESSION %-60s %14.4g -> %-14.4g (%+.1f%%)\n", d.key, d.old, d.new, 100*d.rel)
	}
	for _, d := range improvements {
		fmt.Printf("  improved   %-60s %14.4g -> %-14.4g (%+.1f%%)\n", d.key, d.old, d.new, 100*d.rel)
	}
	for _, d := range changed {
		fmt.Printf("  changed    %-60s %14.4g -> %-14.4g (%+.1f%%)\n", d.key, d.old, d.new, 100*d.rel)
	}
	fmt.Printf("  %d regression(s), %d improvement(s), %d neutral change(s)\n",
		len(regressions), len(improvements), len(changed))
	if *failFlag && len(regressions) > 0 {
		os.Exit(1)
	}
}

type delta struct {
	key      string
	old, new float64
	rel      float64
}

// diff buckets every shared numeric leaf whose relative change exceeds
// the threshold: adverse moves on direction-known metrics are
// regressions, favorable ones improvements, direction-unknown ones
// neutral. Keys present in only one file are ignored — shape growth
// (new metrics) is not a regression.
func diff(oldLeaves, newLeaves map[string]float64, threshold float64) (regressions, improvements, changed []delta) {
	keys := make([]string, 0, len(oldLeaves))
	for k := range oldLeaves {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ov := oldLeaves[k]
		nv, ok := newLeaves[k]
		if !ok || ov == nv {
			continue
		}
		if ov == 0 {
			// No baseline to take a ratio against; report as neutral.
			changed = append(changed, delta{k, ov, nv, 0})
			continue
		}
		rel := (nv - ov) / ov
		if abs(rel) < threshold {
			continue
		}
		d := delta{k, ov, nv, rel}
		switch direction(k) {
		case +1: // higher is better
			if rel < 0 {
				regressions = append(regressions, d)
			} else {
				improvements = append(improvements, d)
			}
		case -1: // lower is better
			if rel > 0 {
				regressions = append(regressions, d)
			} else {
				improvements = append(improvements, d)
			}
		default:
			changed = append(changed, d)
		}
	}
	return regressions, improvements, changed
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// direction classifies a metric key: +1 higher-is-better, -1
// lower-is-better, 0 unknown. Cost-like markers are checked first so
// "queue_wait_..._per_op" is not misread via some other substring.
func direction(key string) int {
	k := strings.ToLower(key)
	lower := []string{
		"_ns", "latency", "wait", "lag", "stale", "wall_seconds",
		"errors", "dropped", "misses", "evictions", "fallbacks",
		"p50", "p95", "p99", "divergent", "retries", "discarded",
		"maxmean", "cv_permille",
	}
	for _, m := range lower {
		if strings.Contains(k, m) {
			return -1
		}
	}
	higher := []string{
		"ops_per_sec", "speedup", "recall", "throughput", "hits",
		"coalesced", "share",
	}
	for _, m := range higher {
		if strings.Contains(k, m) {
			return +1
		}
	}
	return 0
}

// loadLeaves flattens a JSON document to its numeric leaves, keyed by
// dotted path ("points[2].virtual_ops_per_sec"). Booleans and strings
// are skipped — this tool compares measurements, not labels.
func loadLeaves(path string) (map[string]float64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64)
	flatten("", doc, out)
	return out, nil
}

func flatten(prefix string, v any, out map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		for k, child := range t {
			key := k
			if prefix != "" {
				key = prefix + "." + k
			}
			flatten(key, child, out)
		}
	case []any:
		for i, child := range t {
			flatten(fmt.Sprintf("%s[%d]", prefix, i), child, out)
		}
	case float64:
		out[prefix] = t
	}
}
