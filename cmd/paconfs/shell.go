package main

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"pacon"
	"pacon/internal/audit"
	"pacon/internal/namespace"
	"pacon/internal/vclock"
)

// shell interprets file-system commands against one consistent region.
// Paths may be absolute or relative to the workspace.
type shell struct {
	sim    *pacon.Simulation
	region *pacon.Region
	client *pacon.Client
	obs    *pacon.Obs
	ws     string
	now    pacon.Time
	ckpts  []uint64
}

func newShell(nodes, shards int, ws string) (*shell, error) {
	o := pacon.NewObs()
	sim := pacon.NewSimulation(pacon.SimulationConfig{
		ClientNodes: nodes,
		Obs:         o,
		ShardCount:  shards,
		SpreadRoots: []string{ws},
	})
	sim.MustMkdirAll(ws, 0o777)
	region, err := sim.NewRegion(pacon.RegionConfig{
		Name:      "shell",
		Workspace: ws,
		Nodes:     sim.Nodes(),
		Cred:      pacon.Cred{UID: 1000, GID: 1000},
	})
	if err != nil {
		return nil, err
	}
	client, err := region.NewClient(sim.Nodes()[0])
	if err != nil {
		region.Close()
		return nil, err
	}
	return &shell{sim: sim, region: region, client: client, obs: o, ws: namespace.Clean(ws)}, nil
}

func (s *shell) close() {
	s.region.Close()
	s.sim.Close()
}

// abs resolves a command argument to a full path.
func (s *shell) abs(p string) string {
	if strings.HasPrefix(p, "/") {
		return namespace.Clean(p)
	}
	return namespace.Join(s.ws, p)
}

const helpText = `commands:
  mkdir PATH            create a directory (async commit)
  create PATH           create an empty file (async commit)
  write PATH TEXT...    write text at offset 0 (inline if small)
  read PATH             read and print file content
  stat PATH             show metadata
  ls [PATH]             list a directory (barrier: exact listing)
  rm PATH               remove a file (async commit)
  mv SRC DST            rename a file or directory (sync + barrier)
  rmdir PATH            remove a directory recursively (sync + barrier)
  drain                 force all queued commits to the DFS
  stats                 region + cache + queue + latency statistics
  shards                per-MDS-shard op counts and utilization
  hot [K]               top-K hot paths, hot subtrees and load skew
  health                region health: status, staleness, queue state
  audit [N]             compare committed cache entries against the DFS
                        (sample at most N keys; default: every key)
  slow [MS] [N]         N slowest traced ops over MS milliseconds
                        (default threshold 20ms; 'slow 0' shows all)
  trace [SPAN]          recently kept spans, or one span's cross-node
                        critical path (segments + ordered timeline)
  time                  current virtual time
  checkpoint            snapshot the workspace on the DFS
  restore N             roll back to checkpoint N
  fail NODE             simulate a client-node failure (lose queued ops)
  help                  this text
  quit                  leave`

// exec runs one command line, returning its output and whether to quit.
func (s *shell) exec(line string) (out string, quit bool, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", false, nil
	}
	cmd, args := fields[0], fields[1:]
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("%s: need %d argument(s)", cmd, n)
		}
		return nil
	}
	switch cmd {
	case "help":
		return helpText, false, nil
	case "quit", "exit":
		return "bye", true, nil
	case "time":
		return fmt.Sprintf("virtual time %v", s.now), false, nil

	case "mkdir":
		if err := need(1); err != nil {
			return "", false, err
		}
		s.now, err = s.client.Mkdir(s.now, s.abs(args[0]), 0o755)
		return "", false, err
	case "create":
		if err := need(1); err != nil {
			return "", false, err
		}
		s.now, err = s.client.Create(s.now, s.abs(args[0]), 0o644)
		return "", false, err
	case "write":
		if err := need(2); err != nil {
			return "", false, err
		}
		data := []byte(strings.Join(args[1:], " "))
		s.now, err = s.client.WriteAt(s.now, s.abs(args[0]), 0, data)
		if err != nil {
			return "", false, err
		}
		return fmt.Sprintf("%d bytes", len(data)), false, nil
	case "read":
		if err := need(1); err != nil {
			return "", false, err
		}
		var data []byte
		data, s.now, err = s.client.ReadAt(s.now, s.abs(args[0]), 0, 1<<20)
		if err != nil {
			return "", false, err
		}
		return string(data), false, nil
	case "stat":
		if err := need(1); err != nil {
			return "", false, err
		}
		var st pacon.Stat
		st, s.now, err = s.client.Stat(s.now, s.abs(args[0]))
		if err != nil {
			return "", false, err
		}
		return fmt.Sprintf("%s mode=%v uid=%d gid=%d size=%d inline=%dB",
			st.Type, st.Mode, st.UID, st.GID, st.Size, len(st.Inline)), false, nil
	case "ls":
		p := s.ws
		if len(args) > 0 {
			p = s.abs(args[0])
		}
		var ents []pacon.DirEntry
		ents, s.now, err = s.client.Readdir(s.now, p)
		if err != nil {
			return "", false, err
		}
		names := make([]string, 0, len(ents))
		for _, e := range ents {
			suffix := ""
			if e.Type == pacon.TypeDir {
				suffix = "/"
			}
			names = append(names, e.Name+suffix)
		}
		sort.Strings(names)
		return strings.Join(names, "  "), false, nil
	case "rm":
		if err := need(1); err != nil {
			return "", false, err
		}
		s.now, err = s.client.Remove(s.now, s.abs(args[0]))
		return "", false, err
	case "mv":
		if err := need(2); err != nil {
			return "", false, err
		}
		s.now, err = s.client.Rename(s.now, s.abs(args[0]), s.abs(args[1]))
		return "", false, err
	case "rmdir":
		if err := need(1); err != nil {
			return "", false, err
		}
		s.now, err = s.client.Rmdir(s.now, s.abs(args[0]))
		return "", false, err

	case "drain":
		s.now, err = s.region.Drain(s.now)
		return "queues drained — backup copies on the DFS", false, err
	case "stats":
		rs := s.region.Stats()
		cs := s.region.CacheStats()
		out := fmt.Sprintf(
			"commit: %d committed, %d retries, %d discarded, %d dropped\nqueue:  %d pending ops\ncache:  %d items, %d bytes, %d hits, %d misses\nevict:  %d rounds; spills pending: %d",
			rs.Committed, rs.Retries, rs.Discarded, rs.Dropped,
			s.region.QueueDepth(),
			cs.Items, cs.UsedBytes, cs.Hits, cs.Misses,
			rs.Evictions, s.region.SpillCount())
		if sum := s.obs.Summary(); sum != "" {
			out += "\n" + sum
		}
		return out, false, nil
	case "shards":
		cluster := s.sim.DFS()
		var sb strings.Builder
		if cluster.Shards != nil {
			fmt.Fprintf(&sb, "%d metadata shard(s), subtree-partitioned (spread root %s)",
				len(cluster.MDSes), s.ws)
		} else {
			fmt.Fprintf(&sb, "%d metadata server(s), shared namespace", len(cluster.MDSes))
		}
		for i, m := range cluster.MDSes {
			st := m.Stats()
			res := m.Resource()
			util := 0.0
			if s.now > 0 {
				util = res.Utilization(vclock.Duration(s.now))
			}
			fmt.Fprintf(&sb, "\n  %-16s lookups=%-8d reads=%-8d writes=%-8d busy=%-14v util=%.0f%%",
				cluster.MDSAddrs[i], st.Lookups, st.Reads, st.Writes, res.BusyTime(), 100*util)
		}
		return sb.String(), false, nil
	case "hot":
		// hot [K]: the merged hotspot snapshot — top-K heavy-hitter
		// paths, subtrees with ≥5% of the load (the split candidates),
		// and per-node op skew. Counts are space-saving upper bounds.
		k := 10
		if len(args) > 0 {
			n, perr := strconv.Atoi(args[0])
			if perr != nil || n < 1 {
				return "", false, fmt.Errorf("hot: bad count %q", args[0])
			}
			k = n
		}
		rep := s.obs.HotReport(k, 0.05)
		if rep == nil {
			return "no ops recorded yet", false, nil
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "hot paths (top %d of %d recorded op(s)):", k, rep.TotalOps)
		for _, hk := range rep.TopPaths {
			fmt.Fprintf(&sb, "\n  %5.1f%% n≤%-8d %s", 100*hk.Share, hk.Count, hk.Path)
		}
		sb.WriteString("\nhot subtrees (≥5% of load):")
		for _, hk := range rep.HotSubtrees {
			fmt.Fprintf(&sb, "\n  %5.1f%% n≤%-8d %s", 100*hk.Share, hk.Count, hk.Path)
		}
		fmt.Fprintf(&sb, "\nnode load: max/mean=%.2fx cv=%.2f over %d node(s)",
			float64(rep.NodeSkew.MaxMeanPermille)/1000, float64(rep.NodeSkew.CVPermille)/1000, rep.NodeSkew.N)
		for _, l := range rep.NodeOps {
			fmt.Fprintf(&sb, "\n  %-16s %d op(s)", l.Node, l.Ops)
		}
		return sb.String(), false, nil
	case "health":
		h := s.region.Health(pacon.HealthThresholds{})
		var sb strings.Builder
		fmt.Fprintf(&sb, "status: %s", h.Status)
		for _, r := range h.Reasons {
			fmt.Fprintf(&sb, "\n  %s", r)
		}
		fmt.Fprintf(&sb, "\nstaleness: max=%v peak-commit-lag=%v queue-head-age=%v",
			time.Duration(h.MaxStalenessNS), time.Duration(h.MaxCommitLagNS),
			time.Duration(h.QueueHeadAgeNS))
		fmt.Fprintf(&sb, "\nqueues: %d pending op(s), %d parked", h.QueueDepth, h.ParkedOps)
		fmt.Fprintf(&sb, "\ncache: %d dirty key(s), %d removed", h.DirtyKeys, h.RemovedKeys)
		if h.NodeOpsMaxMeanPermille > 0 {
			fmt.Fprintf(&sb, "\nskew: node max/mean=%.2fx cv=%.2f",
				float64(h.NodeOpsMaxMeanPermille)/1000, float64(h.NodeOpsCVPermille)/1000)
			if h.HotPath != "" {
				fmt.Fprintf(&sb, " (hottest: %s at %.0f%%)", h.HotPath, 100*h.HotPathShare)
			}
		}
		fmt.Fprintf(&sb, "\ndropped: %d", h.DroppedOps)
		for _, reason := range sortedKeys(h.DroppedByReason) {
			fmt.Fprintf(&sb, "\n  %s: %d", reason, h.DroppedByReason[reason])
		}
		if h.LastAudit != nil {
			fmt.Fprintf(&sb, "\nlast audit: %d sampled — %d match, %d stale-pending, %d divergent",
				h.LastAudit.Sampled, h.LastAudit.Matched,
				h.LastAudit.StalePending, h.LastAudit.Divergent)
		} else {
			sb.WriteString("\nlast audit: never ran (try 'audit')")
		}
		return sb.String(), false, nil
	case "audit":
		cfg := audit.Config{}
		if len(args) > 0 {
			n, perr := strconv.Atoi(args[0])
			if perr != nil || n < 1 {
				return "", false, fmt.Errorf("audit: bad sample limit %q", args[0])
			}
			cfg.SampleLimit = n
		}
		var rep audit.Report
		rep, s.now, err = audit.Run(s.client, s.now, cfg)
		if err != nil {
			return "", false, err
		}
		return rep.String(), false, nil

	case "slow":
		// slow [THRESHOLD_MS] [N]: the N slowest traced ops whose total
		// wall latency exceeded the threshold, with per-stage breakdown.
		max := 10
		if len(args) > 0 {
			ms, perr := strconv.Atoi(args[0])
			if perr != nil || ms < 0 {
				return "", false, fmt.Errorf("slow: bad threshold %q (milliseconds)", args[0])
			}
			d := time.Duration(ms) * time.Millisecond
			if ms == 0 {
				d = time.Nanosecond // 0 means "show every traced op"
			}
			s.obs.SetSlowThreshold(d)
		}
		if len(args) > 1 {
			n, perr := strconv.Atoi(args[1])
			if perr != nil || n < 1 {
				return "", false, fmt.Errorf("slow: bad count %q", args[1])
			}
			max = n
		}
		spans := s.obs.SlowSpans(max)
		if len(spans) == 0 {
			return fmt.Sprintf("no traced ops over %v", s.obs.SlowThreshold()), false, nil
		}
		lines := make([]string, 0, len(spans))
		for _, sp := range spans {
			lines = append(lines, sp.String())
		}
		return strings.Join(lines, "\n"), false, nil

	case "trace":
		// trace [SPAN]: without arguments, the recently kept spans
		// (head-sampled plus tail-kept anomalies), newest first, one
		// line each; with a span ID, that span's full cross-node
		// critical path — per-segment wall attribution and the ordered
		// event timeline across client, cache and DFS nodes.
		if len(args) > 0 {
			id, perr := strconv.ParseUint(args[0], 10, 64)
			if perr != nil || id == 0 {
				return "", false, fmt.Errorf("trace: bad span id %q", args[0])
			}
			cp, ok := s.obs.SpanTrace(id)
			if !ok {
				return fmt.Sprintf("span %d: no events retained (overwritten or never traced)", id), false, nil
			}
			return cp.String(), false, nil
		}
		kept := s.obs.RecentSpans(10)
		if len(kept) == 0 {
			ts := s.obs.TraceStats()
			return fmt.Sprintf("no spans kept yet (head sampling 1-in-%d; anomalies are always kept)", ts.SampleN), false, nil
		}
		lines := make([]string, 0, len(kept))
		for _, cp := range kept {
			lines = append(lines, fmt.Sprintf("span=%d %-8s %-24s total=%v kept=%s",
				cp.Span, cp.Op, cp.Path, cp.Total, cp.Kept))
		}
		lines = append(lines, "('trace SPAN' for the full cross-node timeline)")
		return strings.Join(lines, "\n"), false, nil

	case "checkpoint":
		var seq uint64
		seq, s.now, err = s.region.Checkpoint(s.client, s.now)
		if err != nil {
			return "", false, err
		}
		s.ckpts = append(s.ckpts, seq)
		return fmt.Sprintf("checkpoint %d", seq), false, nil
	case "restore":
		if err := need(1); err != nil {
			return "", false, err
		}
		seq, perr := strconv.ParseUint(args[0], 10, 64)
		if perr != nil {
			return "", false, fmt.Errorf("restore: bad checkpoint id %q", args[0])
		}
		s.now, err = s.region.Restore(s.client, s.now, seq)
		if err != nil {
			return "", false, err
		}
		return fmt.Sprintf("workspace rolled back to checkpoint %d", seq), false, nil
	case "fail":
		if err := need(1); err != nil {
			return "", false, err
		}
		lost := s.region.SimulateNodeFailure(args[0])
		return fmt.Sprintf("node %s failed: %d uncommitted op(s) lost", args[0], lost), false, nil

	default:
		return "", false, fmt.Errorf("unknown command %q (try 'help')", cmd)
	}
}

// sortedKeys orders a counter map's keys for stable shell output.
func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
