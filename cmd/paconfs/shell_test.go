package main

import (
	"strings"
	"testing"
)

func testShell(t *testing.T) *shell {
	t.Helper()
	sh, err := newShell(2, 1, "/w")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sh.close)
	return sh
}

// run executes a command and fails the test on error.
func run(t *testing.T, sh *shell, line string) string {
	t.Helper()
	out, _, err := sh.exec(line)
	if err != nil {
		t.Fatalf("%q: %v", line, err)
	}
	return out
}

func TestShellBasicFlow(t *testing.T) {
	sh := testShell(t)
	run(t, sh, "mkdir out")
	run(t, sh, "create out/result.dat")
	if got := run(t, sh, "write out/result.dat answer=42"); got != "9 bytes" {
		t.Fatalf("write: %q", got)
	}
	if got := run(t, sh, "read out/result.dat"); got != "answer=42" {
		t.Fatalf("read: %q", got)
	}
	if got := run(t, sh, "stat out/result.dat"); !strings.Contains(got, "size=9") {
		t.Fatalf("stat: %q", got)
	}
	if got := run(t, sh, "ls out"); got != "result.dat" {
		t.Fatalf("ls: %q", got)
	}
	if got := run(t, sh, "ls"); got != "out/" {
		t.Fatalf("ls ws: %q", got)
	}
}

func TestShellRemoveAndRmdir(t *testing.T) {
	sh := testShell(t)
	run(t, sh, "mkdir d")
	run(t, sh, "create d/f")
	run(t, sh, "rm d/f")
	if _, _, err := sh.exec("read d/f"); err == nil {
		t.Fatal("read of removed file must fail")
	}
	run(t, sh, "rmdir d")
	if _, _, err := sh.exec("stat d"); err == nil {
		t.Fatal("stat of removed dir must fail")
	}
}

func TestShellStatsAndDrain(t *testing.T) {
	sh := testShell(t)
	run(t, sh, "create f1")
	run(t, sh, "create f2")
	out := run(t, sh, "stats")
	if !strings.Contains(out, "pending ops") || !strings.Contains(out, "cache:") {
		t.Fatalf("stats: %q", out)
	}
	if got := run(t, sh, "drain"); !strings.Contains(got, "drained") {
		t.Fatalf("drain: %q", got)
	}
	out = run(t, sh, "stats")
	if !strings.Contains(out, "queue:  0 pending ops") {
		t.Fatalf("stats after drain: %q", out)
	}
}

func TestShellCheckpointRestoreFail(t *testing.T) {
	sh := testShell(t)
	run(t, sh, "create keep.dat")
	run(t, sh, "write keep.dat precious")
	ck := run(t, sh, "checkpoint")
	if !strings.HasPrefix(ck, "checkpoint ") {
		t.Fatalf("checkpoint: %q", ck)
	}
	seq := strings.Fields(ck)[1]

	run(t, sh, "create volatile.dat")
	if out := run(t, sh, "fail node0"); !strings.Contains(out, "lost") {
		t.Fatalf("fail: %q", out)
	}
	run(t, sh, "restore "+seq)
	if got := run(t, sh, "read keep.dat"); got != "precious" {
		t.Fatalf("restored read: %q", got)
	}
	if _, _, err := sh.exec("stat volatile.dat"); err == nil {
		t.Fatal("post-checkpoint file must be gone after restore")
	}
}

func TestShellErrorsAndHelp(t *testing.T) {
	sh := testShell(t)
	if _, _, err := sh.exec("frobnicate"); err == nil {
		t.Fatal("unknown command must error")
	}
	if _, _, err := sh.exec("mkdir"); err == nil {
		t.Fatal("missing argument must error")
	}
	if _, _, err := sh.exec("restore notanumber"); err == nil {
		t.Fatal("bad checkpoint id must error")
	}
	if out := run(t, sh, "help"); !strings.Contains(out, "checkpoint") {
		t.Fatalf("help: %q", out)
	}
	if out := run(t, sh, "time"); !strings.Contains(out, "virtual time") {
		t.Fatalf("time: %q", out)
	}
	if out, quit, _ := sh.exec("quit"); !quit || out != "bye" {
		t.Fatal("quit must quit")
	}
	// Empty lines are no-ops.
	if out, quit, err := sh.exec("   "); out != "" || quit || err != nil {
		t.Fatal("blank line must be a no-op")
	}
}

func TestShellAbsolutePathsAndRedirect(t *testing.T) {
	sh := testShell(t)
	// Absolute path inside the workspace.
	run(t, sh, "create /w/absolute.dat")
	if got := run(t, sh, "ls /w"); !strings.Contains(got, "absolute.dat") {
		t.Fatalf("ls: %q", got)
	}
	// Outside the workspace: redirected to the DFS (permission-checked
	// there). /.pacon is world-writable in the simulation.
	run(t, sh, "create /.pacon/outside.dat")
	if got := run(t, sh, "stat /.pacon/outside.dat"); !strings.Contains(got, "file") {
		t.Fatalf("stat outside: %q", got)
	}
}

func TestShellRename(t *testing.T) {
	sh := testShell(t)
	run(t, sh, "create a.dat")
	run(t, sh, "write a.dat payload")
	run(t, sh, "mv a.dat b.dat")
	if got := run(t, sh, "read b.dat"); got != "payload" {
		t.Fatalf("read after mv: %q", got)
	}
	if _, _, err := sh.exec("stat a.dat"); err == nil {
		t.Fatal("old name must be gone")
	}
}

func TestShellShards(t *testing.T) {
	sh, err := newShell(2, 2, "/w")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sh.close)
	run(t, sh, "create s1.dat")
	run(t, sh, "create s2.dat")
	run(t, sh, "drain")

	out := run(t, sh, "shards")
	if !strings.Contains(out, "2 metadata shard(s)") || !strings.Contains(out, "subtree-partitioned") {
		t.Fatalf("shards header: %q", out)
	}
	if !strings.Contains(out, "mds0") || !strings.Contains(out, "mds1") {
		t.Fatalf("shards must list every shard: %q", out)
	}
	if !strings.Contains(out, "writes=") || !strings.Contains(out, "util=") {
		t.Fatalf("shards must report op counts and utilization: %q", out)
	}
	// The unsharded shell still answers, with the shared-namespace header.
	sh1 := testShell(t)
	run(t, sh1, "create f.dat")
	if out = run(t, sh1, "shards"); !strings.Contains(out, "shared namespace") {
		t.Fatalf("unsharded shards header: %q", out)
	}
	if out = run(t, sh, "help"); !strings.Contains(out, "shards") {
		t.Fatalf("help missing shards: %q", out)
	}
}

func TestShellHealthAndAudit(t *testing.T) {
	sh := testShell(t)
	run(t, sh, "create h1.dat")
	run(t, sh, "create h2.dat")
	run(t, sh, "drain")

	out := run(t, sh, "health")
	if !strings.Contains(out, "status: ok") {
		t.Fatalf("health on a drained region: %q", out)
	}
	if !strings.Contains(out, "last audit: never ran") {
		t.Fatalf("health before any audit: %q", out)
	}

	out = run(t, sh, "audit")
	if !strings.Contains(out, "0 divergent") || strings.Contains(out, "0 sampled") {
		t.Fatalf("audit on a drained region: %q", out)
	}
	// The verdict must now show up in health.
	if out = run(t, sh, "health"); !strings.Contains(out, "last audit:") ||
		strings.Contains(out, "never ran") {
		t.Fatalf("health after audit: %q", out)
	}

	// A sample limit caps the audited keys.
	if out = run(t, sh, "audit 1"); !strings.Contains(out, "1 sampled") {
		t.Fatalf("audit 1: %q", out)
	}
	if _, _, err := sh.exec("audit zero"); err == nil {
		t.Fatal("bad audit limit must error")
	}
	if out = run(t, sh, "help"); !strings.Contains(out, "audit") {
		t.Fatalf("help missing audit: %q", out)
	}
}
