// Command paconfs is an interactive shell over a simulated Pacon
// deployment: a BeeGFS-like cluster plus one consistent region, driven
// by file-system commands. It exists to poke at the system by hand —
// watch async commits queue and drain, metadata stay cache-resident,
// checkpoints roll the workspace back.
//
// Usage:
//
//	paconfs [-nodes 4] [-ws /w] [-metrics 127.0.0.1:9090]
//
//	pacon:/w> create results.dat
//	pacon:/w> write results.dat hello world
//	pacon:/w> stats
//	pacon:/w> help
//
// With -metrics, the shell also serves Prometheus-text metrics at
// /metrics, region health as JSON at /healthz (503 once stalled),
// kept trace spans at /debug/trace (?span=N for one cross-node
// critical path), the hotspot snapshot at /debug/hot (?k=N), expvar
// at /debug/vars, and pprof at /debug/pprof/ while it runs.
package main

import (
	"bufio"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"

	"pacon"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 4, "client nodes in the region")
		shards  = flag.Int("shards", 1, "MDS shard count (>1 partitions the metadata service by subtree)")
		ws      = flag.String("ws", "/w", "workspace (consistent region root)")
		metrics = flag.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:9090)")
	)
	flag.Parse()

	sh, err := newShell(*nodes, *shards, *ws)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paconfs:", err)
		os.Exit(1)
	}
	defer sh.close()

	if *metrics != "" {
		sh.obs.PublishExpvar("pacon")
		mux := http.NewServeMux()
		mux.Handle("/metrics", sh.obs.Handler())
		// /healthz serves the region's aggregated health as JSON: 200
		// while the region is ok or degraded (still making progress),
		// 503 once it is stalled — the shape load balancers probe.
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			h := sh.region.Health(pacon.HealthThresholds{})
			w.Header().Set("Content-Type", "application/json")
			if h.Status == pacon.HealthStalled {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(h); err != nil {
				fmt.Fprintln(os.Stderr, "paconfs: healthz:", err)
			}
		})
		// /debug/trace serves the recently kept spans (sampled +
		// tail-kept anomalies) as JSON; ?span=N narrows to one span's
		// full cross-node critical path, 404 when nothing is retained.
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if q := r.URL.Query().Get("span"); q != "" {
				id, perr := strconv.ParseUint(q, 10, 64)
				if perr != nil || id == 0 {
					http.Error(w, "bad span id", http.StatusBadRequest)
					return
				}
				cp, ok := sh.obs.SpanTrace(id)
				if !ok {
					http.Error(w, "span not retained", http.StatusNotFound)
					return
				}
				if err := enc.Encode(cp); err != nil {
					fmt.Fprintln(os.Stderr, "paconfs: trace:", err)
				}
				return
			}
			out := struct {
				Stats pacon.TraceStats `json:"stats"`
				Spans []pacon.CritPath `json:"spans"`
			}{sh.obs.TraceStats(), sh.obs.RecentSpans(32)}
			if err := enc.Encode(out); err != nil {
				fmt.Fprintln(os.Stderr, "paconfs: trace:", err)
			}
		})
		// /debug/hot serves the merged hotspot snapshot as JSON: top-K
		// heavy-hitter paths (?k=N, default 16), subtrees with ≥5% of
		// the load, and per-node op skew.
		mux.HandleFunc("/debug/hot", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			k := 16
			if q := r.URL.Query().Get("k"); q != "" {
				n, perr := strconv.Atoi(q)
				if perr != nil || n < 1 {
					http.Error(w, "bad k", http.StatusBadRequest)
					return
				}
				k = n
			}
			rep := sh.obs.HotReport(k, 0.05)
			if rep == nil {
				rep = &pacon.HotReport{}
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintln(os.Stderr, "paconfs: hot:", err)
			}
		})
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*metrics, mux); err != nil {
				fmt.Fprintln(os.Stderr, "paconfs: metrics server:", err)
			}
		}()
		fmt.Printf("metrics on http://%s/metrics\n", *metrics)
	}

	fmt.Printf("paconfs — Pacon shell on %d nodes, workspace %s (type 'help')\n", *nodes, *ws)
	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("pacon:%s> ", *ws)
		if !in.Scan() {
			fmt.Println()
			return
		}
		out, quit, err := sh.exec(in.Text())
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		if out != "" {
			fmt.Println(out)
		}
		if quit {
			return
		}
	}
}
