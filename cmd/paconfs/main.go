// Command paconfs is an interactive shell over a simulated Pacon
// deployment: a BeeGFS-like cluster plus one consistent region, driven
// by file-system commands. It exists to poke at the system by hand —
// watch async commits queue and drain, metadata stay cache-resident,
// checkpoints roll the workspace back.
//
// Usage:
//
//	paconfs [-nodes 4] [-ws /w]
//
//	pacon:/w> create results.dat
//	pacon:/w> write results.dat hello world
//	pacon:/w> stats
//	pacon:/w> help
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		nodes = flag.Int("nodes", 4, "client nodes in the region")
		ws    = flag.String("ws", "/w", "workspace (consistent region root)")
	)
	flag.Parse()

	sh, err := newShell(*nodes, *ws)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paconfs:", err)
		os.Exit(1)
	}
	defer sh.close()

	fmt.Printf("paconfs — Pacon shell on %d nodes, workspace %s (type 'help')\n", *nodes, *ws)
	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("pacon:%s> ", *ws)
		if !in.Scan() {
			fmt.Println()
			return
		}
		out, quit, err := sh.exec(in.Text())
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		if out != "" {
			fmt.Println(out)
		}
		if quit {
			return
		}
	}
}
