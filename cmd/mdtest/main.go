// Command mdtest is a standalone mdtest-like metadata benchmark against
// any of the three systems (BeeGFS-like DFS, IndexFS-like middleware,
// Pacon), mirroring the LLNL tool the paper drives its evaluation with.
//
// Usage:
//
//	mdtest -sys pacon -nodes 16 -clients 20 -items 100
//	mdtest -sys beegfs -depth 6 -fanout 5 -items 50   # path traversal
package main

import (
	"flag"
	"fmt"
	"os"

	"pacon/internal/bench"
	"pacon/internal/workload"
)

func main() {
	var (
		sys     = flag.String("sys", "pacon", "system under test: beegfs | indexfs | pacon")
		nodes   = flag.Int("nodes", 4, "client nodes")
		clients = flag.Int("clients", 10, "clients per node")
		items   = flag.Int("items", 100, "items per client per phase")
		depth   = flag.Int("depth", 0, "if >0, build a tree of this depth and random-stat its leaves")
		fanout  = flag.Int("fanout", 5, "tree fanout for -depth mode")
		seed    = flag.Int64("seed", 1, "random seed")
		trace   = flag.String("trace", "", "replay a trace file instead of the standard phases")
	)
	flag.Parse()

	system, err := parseSystem(*sys)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := bench.Default()
	cfg.MaxNodes = *nodes
	cfg.ClientsPerNode = *clients
	cfg.ItemsPerClient = *items

	if *trace != "" {
		if err := replayTraceFile(cfg, system, *trace); err != nil {
			fmt.Fprintf(os.Stderr, "mdtest: %v\n", err)
			os.Exit(1)
		}
		return
	}

	res, err := bench.RunMdtest(cfg, system, bench.MdtestSpec{
		Depth:  *depth,
		Fanout: *fanout,
		Seed:   *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdtest: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("mdtest on %s: %d nodes x %d clients, %d items/client\n",
		system, *nodes, *clients, *items)
	printPhase := func(name string, r workload.Result) {
		if r.Ops == 0 {
			return
		}
		fmt.Printf("  %-12s %10d ops  %12v  %12.0f OPS\n", name, r.Ops, r.Elapsed, r.OPS())
	}
	printPhase("mkdir", res.Mkdir)
	printPhase("create", res.Create)
	printPhase("stat", res.Stat)
	printPhase("stat-leaves", res.StatLeaves)
	printPhase("remove", res.Remove)
}

func replayTraceFile(cfg bench.Config, system bench.System, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	ops, err := workload.ParseTrace(f)
	if err != nil {
		return err
	}
	res, err := bench.ReplayTrace(cfg, system, ops)
	if err != nil {
		return err
	}
	fmt.Printf("trace %s on %s: %d ops in %v (%.0f OPS), %d errors\n",
		path, system, res.Ops, res.Elapsed, res.OPS(), res.Errors)
	for kind, n := range res.PerKind {
		fmt.Printf("  %-8s %d\n", kind, n)
	}
	return nil
}

func parseSystem(s string) (bench.System, error) {
	switch s {
	case "beegfs":
		return bench.BeeGFS, nil
	case "indexfs":
		return bench.IndexFS, nil
	case "pacon":
		return bench.Pacon, nil
	default:
		return "", fmt.Errorf("mdtest: unknown system %q (beegfs | indexfs | pacon)", s)
	}
}
