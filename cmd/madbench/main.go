// Command madbench runs the MADbench2-like HPC application benchmark
// (paper §IV.F) against BeeGFS or Pacon and prints the runtime breakdown
// the paper's Fig 12 plots (init / read / write / other).
//
// Usage:
//
//	madbench -sys pacon -nodes 16 -procs 16 -mb 4
package main

import (
	"flag"
	"fmt"
	"os"

	"pacon/internal/bench"
)

func main() {
	var (
		sys   = flag.String("sys", "pacon", "system under test: beegfs | pacon")
		nodes = flag.Int("nodes", 16, "client nodes")
		procs = flag.Int("procs", 16, "working processes per node")
		mb    = flag.Int("mb", 4, "component file size in MiB")
	)
	flag.Parse()

	var system bench.System
	switch *sys {
	case "beegfs":
		system = bench.BeeGFS
	case "pacon":
		system = bench.Pacon
	default:
		fmt.Fprintf(os.Stderr, "madbench: unknown system %q (beegfs | pacon)\n", *sys)
		os.Exit(2)
	}

	cfg := bench.Default()
	cfg.MaxNodes = *nodes
	cfg.MADbenchProcsPerNode = *procs
	cfg.MADbenchFileMB = *mb

	res, err := bench.RunMADbench(cfg, system)
	if err != nil {
		fmt.Fprintf(os.Stderr, "madbench: %v\n", err)
		os.Exit(1)
	}

	total := res.Total()
	fmt.Printf("MADbench2 on %s: %d nodes x %d procs, %d files x %d MiB\n",
		system, *nodes, *procs, *nodes**procs, *mb)
	part := func(name string, d interface{ Seconds() float64 }) {
		fmt.Printf("  %-6s %10.3fs  %5.1f%%\n", name, d.Seconds(), 100*d.Seconds()/total.Seconds())
	}
	part("init", res.Init)
	part("read", res.Read)
	part("write", res.Write)
	part("other", res.Other)
	fmt.Printf("  %-6s %10.3fs\n", "total", total.Seconds())
}
