// Command paconbench regenerates the paper's tables and figures. Each
// experiment rebuilds fresh deployments of BeeGFS, IndexFS-on-BeeGFS and
// Pacon-on-BeeGFS per data point and reports the same series the paper
// plots, plus derived headline ratios.
//
// Usage:
//
//	paconbench -all               # every figure at paper scale
//	paconbench -fig fig7          # one figure
//	paconbench -quick -all        # reduced scale (~seconds)
//	paconbench -all -csv out/     # also write CSV files
//	paconbench -list              # list experiment ids
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"pacon/internal/bench"
)

func main() {
	var (
		all    = flag.Bool("all", false, "run every experiment")
		fig    = flag.String("fig", "", "run one experiment (e.g. fig7; 'fig' prefix optional)")
		quick  = flag.Bool("quick", false, "reduced scale for smoke runs")
		csvDir = flag.String("csv", "", "also write <id>.csv files into this directory")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		cjson  = flag.String("commitjson", "", "run the commit experiment and write its JSON report to this path")
		rjson  = flag.String("readjson", "", "run the read experiment and write its JSON report to this path")
		ajson  = flag.String("auditjson", "", "run the divergence-audit experiment and write its JSON report to this path")
		sjson  = flag.String("scalejson", "", "run the scale experiment and write its JSON report to this path")
		shjson = flag.String("shardsjson", "", "run the MDS shard sweep and write its JSON report to this path")
		hjson  = flag.String("hotjson", "", "run the hotspot-telemetry sweep and write its JSON report to this path")
		debug  = flag.String("debug", "", "serve /debug/vars and /debug/pprof on this address while experiments run")
	)
	flag.Parse()

	if *debug != "" {
		mux := http.NewServeMux()
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*debug, mux); err != nil {
				fmt.Fprintln(os.Stderr, "paconbench: debug server:", err)
			}
		}()
	}

	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := bench.Default()
	if *quick {
		cfg = bench.Quick()
	}

	if *cjson != "" {
		rep, figs, err := bench.RunCommit(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paconbench: commit: %v\n", err)
			os.Exit(1)
		}
		for _, f := range figs {
			fmt.Println(f.String())
		}
		data, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*cjson, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *cjson)
		if !*all && *fig == "" && *rjson == "" && *ajson == "" && *sjson == "" && *shjson == "" && *hjson == "" {
			return
		}
	}

	if *sjson != "" {
		rep, figs, err := bench.RunScale(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paconbench: scale: %v\n", err)
			os.Exit(1)
		}
		for _, f := range figs {
			fmt.Println(f.String())
		}
		data, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*sjson, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *sjson)
		if !*all && *fig == "" && *rjson == "" && *ajson == "" && *shjson == "" && *hjson == "" {
			return
		}
	}

	if *ajson != "" {
		rep, figs, err := bench.RunAudit(cfg)
		// A failed gate still writes its report — CI archives the
		// evidence before the step fails.
		if rep != nil {
			if data, jerr := rep.JSON(); jerr == nil {
				if werr := os.WriteFile(*ajson, append(data, '\n'), 0o644); werr == nil {
					fmt.Printf("wrote %s\n", *ajson)
				} else {
					fmt.Fprintln(os.Stderr, werr)
				}
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "paconbench: audit: %v\n", err)
			os.Exit(1)
		}
		for _, f := range figs {
			fmt.Println(f.String())
		}
		if !*all && *fig == "" && *rjson == "" && *shjson == "" && *hjson == "" {
			return
		}
	}

	if *rjson != "" {
		rep, figs, err := bench.RunRead(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paconbench: read: %v\n", err)
			os.Exit(1)
		}
		for _, f := range figs {
			fmt.Println(f.String())
		}
		data, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*rjson, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *rjson)
		if !*all && *fig == "" && *shjson == "" && *hjson == "" {
			return
		}
	}

	if *shjson != "" {
		rep, figs, err := bench.RunShardSweep(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paconbench: shards: %v\n", err)
			os.Exit(1)
		}
		for _, f := range figs {
			fmt.Println(f.String())
		}
		data, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*shjson, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *shjson)
		if !*all && *fig == "" && *hjson == "" {
			return
		}
	}

	if *hjson != "" {
		rep, figs, err := bench.RunHotspot(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paconbench: hotspot: %v\n", err)
			os.Exit(1)
		}
		for _, f := range figs {
			fmt.Println(f.String())
		}
		data, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*hjson, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *hjson)
		if !*all && *fig == "" {
			return
		}
	}

	var ids []string
	switch {
	case *all:
		ids = bench.IDs()
	case *fig != "":
		id := *fig
		// Bare numbers are figures; named experiments pass through as-is.
		if _, err := strconv.Atoi(id); err == nil {
			id = "fig" + id
		}
		ids = []string{id}
	default:
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("# paconbench: %d client nodes x %d clients/node, %d items/client\n\n",
		cfg.MaxNodes, cfg.ClientsPerNode, cfg.ItemsPerClient)

	for _, id := range ids {
		start := time.Now()
		figs, err := bench.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paconbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, f := range figs {
			fmt.Println(f.String())
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				path := filepath.Join(*csvDir, f.ID+".csv")
				if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("  [%s completed in %v wall time]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
