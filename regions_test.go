package pacon_test

import (
	"testing"
	"testing/quick"

	"pacon"
	"pacon/internal/namespace"
)

func TestPlanRegionsCoalescesOverlaps(t *testing.T) {
	got := pacon.PlanRegions([]string{
		"/proj/a/sub", "/proj/a", "/proj/b", "/proj/a/sub/deep", "/scratch/x",
	})
	want := []string{"/proj/a", "/proj/b", "/scratch/x"}
	if len(got) != len(want) {
		t.Fatalf("roots = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("roots = %v, want %v", got, want)
		}
	}
}

func TestPlanRegionsDisjointUnchanged(t *testing.T) {
	got := pacon.PlanRegions([]string{"/b", "/a", "/c"})
	if len(got) != 3 || got[0] != "/a" {
		t.Fatalf("roots = %v", got)
	}
}

func TestPlanRegionsSiblingPrefixNotMerged(t *testing.T) {
	// "/ab" is not under "/a" — byte-prefix must not fool the planner.
	got := pacon.PlanRegions([]string{"/a", "/ab"})
	if len(got) != 2 {
		t.Fatalf("roots = %v", got)
	}
}

func TestRegionFor(t *testing.T) {
	roots := pacon.PlanRegions([]string{"/proj/a", "/proj/b"})
	if r := pacon.RegionFor(roots, "/proj/a/sub/dir"); r != "/proj/a" {
		t.Fatalf("RegionFor = %q", r)
	}
	if r := pacon.RegionFor(roots, "/elsewhere"); r != "" {
		t.Fatalf("uncovered workspace mapped to %q", r)
	}
}

// Property: every input workspace is covered by exactly one root, and
// roots never nest.
func TestPlanRegionsProperty(t *testing.T) {
	f := func(parts [][3]uint8) bool {
		var workspaces []string
		for _, p := range parts {
			w := "/"
			for _, seg := range p[:1+int(p[0])%3] {
				w = namespace.Join(w, string(rune('a'+seg%5)))
			}
			if w == "/" {
				continue
			}
			workspaces = append(workspaces, w)
		}
		roots := pacon.PlanRegions(workspaces)
		for _, w := range workspaces {
			covering := 0
			for _, r := range roots {
				if namespace.IsUnder(w, r) {
					covering++
				}
			}
			// At least one root covers it; multiple covering roots would
			// mean nested roots.
			if covering < 1 {
				return false
			}
		}
		for i, a := range roots {
			for j, b := range roots {
				if i != j && namespace.IsUnder(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
