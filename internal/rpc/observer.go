package rpc

import "time"

// RPCObserver receives one callback per transport round trip with the
// wall-clock time the dispatch took. The signature uses only built-ins
// so internal/obs can implement it without this package importing it
// (and vice versa): latency histograms hook in at the transport seam,
// the one place every cache and DFS round trip passes through, so each
// is measured exactly once regardless of transport.
//
// Observed durations are wall time, not virtual time — the observer
// exists to profile the real process, while vclock continues to own
// throughput math.
type RPCObserver interface {
	ObserveRPC(addr, method string, d time.Duration, err error)
}
