package rpc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"pacon/internal/fsapi"
	"pacon/internal/vclock"
	"pacon/internal/wire"
)

func echoService(t *testing.T, cost vclock.Duration) *Service {
	t.Helper()
	res := vclock.NewResource("echo", 1)
	svc := NewService()
	svc.Handle("echo", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		out := make([]byte, len(body))
		copy(out, body)
		return res.Acquire(at, cost), out, nil
	})
	svc.Handle("fail", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		return at, nil, fsapi.ErrNotExist
	})
	return svc
}

func TestBusCallAddsLatency(t *testing.T) {
	bus := NewBus()
	bus.Register("node1/echo", echoService(t, 10*time.Microsecond))
	model := vclock.LatencyModel{SameNodeRTT: 8 * time.Microsecond, CrossNodeRTT: 80 * time.Microsecond}

	// Cross-node: one-way 40µs out + 10µs service + 40µs back.
	c := NewCaller(bus, model, "node0")
	done, resp, err := c.Call("node1/echo", "echo", 0, []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "hi" {
		t.Fatalf("resp = %q", resp)
	}
	if want := vclock.Time(90 * time.Microsecond); done != want {
		t.Fatalf("done = %v, want %v", done, want)
	}
}

func TestBusSameNodeLatency(t *testing.T) {
	bus := NewBus()
	bus.Register("node1/echo", echoService(t, 10*time.Microsecond))
	model := vclock.LatencyModel{SameNodeRTT: 8 * time.Microsecond, CrossNodeRTT: 80 * time.Microsecond}
	c := NewCaller(bus, model, "node1")
	done, _, err := c.Call("node1/echo", "echo", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 4µs out + 10µs + 4µs back.
	if want := vclock.Time(18 * time.Microsecond); done != want {
		t.Fatalf("done = %v, want %v", done, want)
	}
}

func TestTransferCostCharged(t *testing.T) {
	bus := NewBus()
	bus.Register("n/echo", echoService(t, 0))
	model := vclock.LatencyModel{CrossNodeRTT: 80 * time.Microsecond, PerKB: time.Microsecond}
	c := NewCaller(bus, model, "other")
	payload := make([]byte, 4096)
	done, _, err := c.Call("n/echo", "echo", 0, payload)
	if err != nil {
		t.Fatal(err)
	}
	// 40µs + 4µs transfer out, echo free, 40µs + 4µs transfer back.
	if want := vclock.Time(88 * time.Microsecond); done != want {
		t.Fatalf("done = %v, want %v", done, want)
	}
}

func TestErrorNormalization(t *testing.T) {
	bus := NewBus()
	bus.Register("n/svc", echoService(t, 0))
	c := NewCaller(bus, vclock.Default(), "n")
	_, _, err := c.Call("n/svc", "fail", 0, nil)
	if !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestUnknownMethodAndAddress(t *testing.T) {
	bus := NewBus()
	bus.Register("n/svc", echoService(t, 0))
	c := NewCaller(bus, vclock.Default(), "n")
	if _, _, err := c.Call("n/svc", "nope", 0, nil); err == nil {
		t.Fatal("unknown method must error")
	}
	if _, _, err := c.Call("n/ghost", "echo", 0, nil); !errors.Is(err, fsapi.ErrClosed) {
		t.Fatalf("unknown address err = %v, want ErrClosed", err)
	}
}

func TestUnregisterSimulatesFailure(t *testing.T) {
	bus := NewBus()
	bus.Register("n/svc", echoService(t, 0))
	c := NewCaller(bus, vclock.Default(), "n")
	if _, _, err := c.Call("n/svc", "echo", 0, nil); err != nil {
		t.Fatal(err)
	}
	bus.Unregister("n/svc")
	if _, _, err := c.Call("n/svc", "echo", 0, nil); !errors.Is(err, fsapi.ErrClosed) {
		t.Fatalf("err after unregister = %v", err)
	}
}

func TestNodeOf(t *testing.T) {
	cases := map[string]string{
		"node3/mds":        "node3",
		"node0/cache":      "node0",
		"bare":             "bare",
		"n/deep/structure": "n",
	}
	for addr, want := range cases {
		if got := NodeOf(addr); got != want {
			t.Fatalf("NodeOf(%q) = %q, want %q", addr, got, want)
		}
	}
}

func TestConcurrentCallsSerializeOnResource(t *testing.T) {
	bus := NewBus()
	bus.Register("n/echo", echoService(t, 10*time.Microsecond))
	model := vclock.LatencyModel{CrossNodeRTT: 0, SameNodeRTT: 0}

	const goros = 8
	const per = 50
	var wg sync.WaitGroup
	var wm vclock.Watermark
	for g := 0; g < goros; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewCaller(bus, model, "client")
			var now vclock.Time
			for i := 0; i < per; i++ {
				done, _, err := c.Call("n/echo", "echo", now, nil)
				if err != nil {
					t.Error(err)
					return
				}
				now = done
			}
			wm.Observe(now)
		}()
	}
	wg.Wait()
	// Single-worker echo at 10µs: 400 ops take exactly 4ms of virtual time.
	if want := vclock.Time(goros * per * 10 * time.Microsecond); wm.Load() != want {
		t.Fatalf("horizon = %v, want %v", wm.Load(), want)
	}
	if bus.Calls() != goros*per {
		t.Fatalf("bus calls = %d", bus.Calls())
	}
}

func TestTCPRoundTrip(t *testing.T) {
	svc := echoService(t, 5*time.Microsecond)
	srv, err := ServeTCP("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tr := NewTCPTransport(map[string]string{"node1/echo": srv.Addr()})
	defer tr.Close()
	model := vclock.LatencyModel{CrossNodeRTT: 80 * time.Microsecond}
	c := NewCaller(tr, model, "node0")

	done, resp, err := c.Call("node1/echo", "echo", 0, []byte("over tcp"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "over tcp" {
		t.Fatalf("resp = %q", resp)
	}
	if want := vclock.Time(85 * time.Microsecond); done != want {
		t.Fatalf("done = %v, want %v", done, want)
	}
}

func TestTCPErrorCodesCrossTheWire(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", echoService(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := NewTCPTransport(map[string]string{"n/svc": srv.Addr()})
	defer tr.Close()
	c := NewCaller(tr, vclock.LatencyModel{}, "x")
	_, _, err = c.Call("n/svc", "fail", 0, nil)
	if !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("err over TCP = %v, want ErrNotExist", err)
	}
}

func TestTCPNoRoute(t *testing.T) {
	tr := NewTCPTransport(nil)
	c := NewCaller(tr, vclock.LatencyModel{}, "x")
	if _, _, err := c.Call("ghost", "echo", 0, nil); !errors.Is(err, fsapi.ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", echoService(t, time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := NewTCPTransport(map[string]string{"n/echo": srv.Addr()})
	defer tr.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := NewCaller(tr, vclock.LatencyModel{}, "client")
			e := wire.NewEncoder(8)
			e.Uint32(uint32(g))
			for i := 0; i < 40; i++ {
				_, resp, err := c.Call("n/echo", "echo", 0, e.Bytes())
				if err != nil {
					t.Error(err)
					return
				}
				if wire.NewDecoder(resp).Uint32() != uint32(g) {
					t.Error("response routed to wrong client")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestTCPServerCloseUnblocksClients(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", echoService(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTCPTransport(map[string]string{"n/echo": srv.Addr()})
	defer tr.Close()
	c := NewCaller(tr, vclock.LatencyModel{}, "x")
	if _, _, err := c.Call("n/echo", "echo", 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Call("n/echo", "echo", 0, nil); err == nil {
		t.Fatal("call after server close must fail")
	}
}
