package rpc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pacon/internal/fsapi"
	"pacon/internal/vclock"
	"pacon/internal/wire"
)

// maxFrame bounds a single request/response frame (16 MiB — enough for a
// data-server chunk plus headers).
const maxFrame = 16 << 20

// TCPServer serves one Service mux over a real TCP listener using
// length-prefixed binary frames. Frame layout (request):
//
//	u32 length | method string | i64 at | uvarint trace | blob body
//
// (trace is the packed TraceContext, 0 = untraced) and (response):
//
//	u32 length | i64 done | u8 errcode | detail string | blob body
type TCPServer struct {
	ln  net.Listener
	svc *Service

	// sink, when set, receives the server half of sampled spans whose
	// trace context arrived in the frame (see SetTraceSink).
	sink atomic.Pointer[tcpSink]

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// tcpSink pairs the span observer with the server's logical address —
// the listener only knows its host:port, but span events must carry
// the deployment-level service address ("node3/pacon-app1").
type tcpSink struct {
	addr string
	obs  SpanObserver
}

// SetTraceSink installs the server-side span recorder and tells the
// server which logical address it serves. Safe to call concurrently
// with in-flight requests.
func (s *TCPServer) SetTraceSink(addr string, o SpanObserver) {
	if o == nil {
		s.sink.Store(nil)
		return
	}
	s.sink.Store(&tcpSink{addr: addr, obs: o})
}

// ServeTCP starts a server for svc on hostport ("127.0.0.1:0" to pick a
// free port). Use Addr to discover the bound address.
func ServeTCP(hostport string, svc *Service) (*TCPServer, error) {
	ln, err := net.Listen("tcp", hostport)
	if err != nil {
		return nil, err
	}
	s := &TCPServer{ln: ln, svc: svc, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and all connections.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		frame, err := readFrame(br)
		if err != nil {
			return
		}
		d := wire.NewDecoder(frame)
		method := d.String()
		at := vclock.Time(d.Int64())
		tc := unpackTrace(d.Uvarint())
		body := d.BlobView()
		if d.Err() != nil {
			return
		}
		var start time.Time
		sink := s.sink.Load()
		traced := sink != nil && tc.Span != 0 && tc.Sampled
		if traced {
			start = time.Now()
		}
		done, resp, herr := s.svc.dispatch(method, at, body)
		if traced {
			sink.obs.ObserveServerSpan(tc.Span, tc.Hops, sink.addr, method, start, time.Since(start), herr)
		}

		e := wire.GetEncoder()
		e.Int64(int64(done))
		code := fsapi.CodeOf(herr)
		e.Byte(code)
		if code == fsapi.CodeOther && herr != nil {
			e.String(herr.Error())
		} else {
			e.String("")
		}
		e.Blob(resp)
		werr := writeFrame(bw, e.Bytes())
		wire.PutEncoder(e) // frame fully written (or abandoned) — safe to recycle
		if werr != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(r, frame); err != nil {
		return nil, err
	}
	return frame, nil
}

func writeFrame(w io.Writer, frame []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}

// TCPTransport implements Transport over real TCP connections. Logical
// addresses are resolved to host:port through a static table, mirroring
// the node-address lists an HPC application hands to Pacon at init.
type TCPTransport struct {
	mu      sync.Mutex
	resolve map[string]string // logical addr -> host:port
	pools   map[string]*connPool

	obs atomic.Pointer[RPCObserver]
}

// NewTCPTransport builds a transport with a logical→physical address map.
func NewTCPTransport(resolve map[string]string) *TCPTransport {
	table := make(map[string]string, len(resolve))
	for k, v := range resolve {
		table[k] = v
	}
	return &TCPTransport{resolve: table, pools: make(map[string]*connPool)}
}

// AddRoute maps a logical address to a physical host:port.
func (t *TCPTransport) AddRoute(addr, hostport string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.resolve[addr] = hostport
}

// SetObserver installs (or, with nil, removes) the per-round-trip
// instrumentation hook. Safe to call concurrently with Invoke.
func (t *TCPTransport) SetObserver(o RPCObserver) {
	if o == nil {
		t.obs.Store(nil)
		return
	}
	t.obs.Store(&o)
}

// Invoke implements Transport.
func (t *TCPTransport) Invoke(addr, method string, at vclock.Time, body []byte) (vclock.Time, []byte, error) {
	return t.InvokeTrace(addr, method, at, TraceContext{}, body)
}

// InvokeTrace implements TraceInvoker: the packed trace context rides
// the request frame; the serving TCPServer extracts it and records the
// server half of the span through its own sink.
func (t *TCPTransport) InvokeTrace(addr, method string, at vclock.Time, tc TraceContext, body []byte) (vclock.Time, []byte, error) {
	var start time.Time
	obs := t.obs.Load()
	if obs != nil {
		start = time.Now()
	}
	t.mu.Lock()
	hostport, ok := t.resolve[addr]
	if !ok {
		t.mu.Unlock()
		return at, nil, fmt.Errorf("rpc: no route to %q: %w", addr, fsapi.ErrClosed)
	}
	pool := t.pools[hostport]
	if pool == nil {
		pool = &connPool{hostport: hostport}
		t.pools[hostport] = pool
	}
	t.mu.Unlock()

	c, err := pool.get()
	if err != nil {
		return at, nil, err
	}
	done, resp, rerr, ioErr := c.roundTrip(method, at, tc, body)
	if ioErr != nil {
		c.close()
		if obs != nil {
			(*obs).ObserveRPC(addr, method, time.Since(start), ioErr)
		}
		return at, nil, ioErr
	}
	pool.put(c)
	if obs != nil {
		(*obs).ObserveRPC(addr, method, time.Since(start), rerr)
	}
	return done, resp, rerr
}

// Close tears down all pooled connections.
func (t *TCPTransport) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, p := range t.pools {
		p.closeAll()
	}
}

// connPool keeps a small free list of connections per physical endpoint;
// each connection serves one request at a time.
type connPool struct {
	hostport string
	mu       sync.Mutex
	free     []*tcpConn
	closed   bool
}

func (p *connPool) get() (*tcpConn, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return nil, fsapi.ErrClosed
	}
	conn, err := net.Dial("tcp", p.hostport)
	if err != nil {
		return nil, err
	}
	return &tcpConn{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}, nil
}

func (p *connPool) put(c *tcpConn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || len(p.free) >= 8 {
		c.close()
		return
	}
	p.free = append(p.free, c)
}

func (p *connPool) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for _, c := range p.free {
		c.close()
	}
	p.free = nil
}

type tcpConn struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

func (c *tcpConn) close() { c.conn.Close() }

func (c *tcpConn) roundTrip(method string, at vclock.Time, tc TraceContext, body []byte) (vclock.Time, []byte, error, error) {
	e := wire.GetEncoder()
	e.String(method)
	e.Int64(int64(at))
	e.Uvarint(tc.pack())
	e.Blob(body)
	err := writeFrame(c.bw, e.Bytes())
	wire.PutEncoder(e) // frame written to the socket buffer — safe to recycle
	if err != nil {
		return at, nil, nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return at, nil, nil, err
	}
	frame, err := readFrame(c.br)
	if err != nil {
		return at, nil, nil, err
	}
	d := wire.NewDecoder(frame)
	done := vclock.Time(d.Int64())
	code := d.Byte()
	detail := d.String()
	resp := d.Blob()
	if derr := d.Err(); derr != nil {
		return at, nil, nil, derr
	}
	return done, resp, fsapi.ErrOf(code, detail), nil
}
