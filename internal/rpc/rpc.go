// Package rpc is the transport layer connecting clients to metadata
// services. Two interchangeable transports exist:
//
//   - Bus — an in-process transport used by tests and the bench harness;
//     handlers run in the caller's goroutine, so hundreds of simulated
//     clients cost nothing but goroutines.
//   - TCP — a real length-prefixed-frame protocol over net.Conn, used by
//     the examples to show the system running across OS processes.
//
// Every request carries a virtual arrival timestamp (internal/vclock) and
// every response carries a virtual completion timestamp; the Caller adds
// the latency-model wire costs on both directions. Real wall-clock time
// never enters throughput math.
package rpc

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pacon/internal/fsapi"
	"pacon/internal/vclock"
)

// Handler serves one RPC method. `at` is the virtual time the request
// reaches the service (wire latency already added by the caller); the
// returned time is when the service finished, typically
// resource.Acquire(at, cost).
type Handler func(at vclock.Time, body []byte) (vclock.Time, []byte, error)

// Service is a method mux registered under one address.
type Service struct {
	mu      sync.RWMutex
	methods map[string]Handler
}

// NewService returns an empty method mux.
func NewService() *Service { return &Service{methods: make(map[string]Handler)} }

// Handle registers a handler for method. Re-registering replaces.
func (s *Service) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.methods[method] = h
}

// dispatch runs the handler for method, or errors if unknown.
func (s *Service) dispatch(method string, at vclock.Time, body []byte) (vclock.Time, []byte, error) {
	s.mu.RLock()
	h := s.methods[method]
	s.mu.RUnlock()
	if h == nil {
		return at, nil, fmt.Errorf("rpc: unknown method %q", method)
	}
	return h(at, body)
}

// Transport delivers a request to the service at a logical address.
type Transport interface {
	Invoke(addr, method string, at vclock.Time, body []byte) (vclock.Time, []byte, error)
}

// Bus is the in-process transport: a registry of logical address →
// Service. Safe for concurrent use.
type Bus struct {
	mu       sync.RWMutex
	services map[string]*Service

	calls atomic.Int64
	bytes atomic.Int64
	obs   atomic.Pointer[RPCObserver]
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{services: make(map[string]*Service)} }

// Register binds a service to a logical address like "node3/mds".
func (b *Bus) Register(addr string, svc *Service) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.services[addr] = svc
}

// Unregister removes an address; in-flight calls finish normally. Used to
// simulate node failure.
func (b *Bus) Unregister(addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.services, addr)
}

// SetObserver installs (or, with nil, removes) the per-round-trip
// instrumentation hook. Safe to call concurrently with Invoke.
func (b *Bus) SetObserver(o RPCObserver) {
	if o == nil {
		b.obs.Store(nil)
		return
	}
	b.obs.Store(&o)
}

// Invoke implements Transport.
func (b *Bus) Invoke(addr, method string, at vclock.Time, body []byte) (vclock.Time, []byte, error) {
	b.mu.RLock()
	svc := b.services[addr]
	b.mu.RUnlock()
	if svc == nil {
		return at, nil, fmt.Errorf("rpc: no service at %q: %w", addr, fsapi.ErrClosed)
	}
	b.calls.Add(1)
	b.bytes.Add(int64(len(body)))
	if p := b.obs.Load(); p != nil {
		start := time.Now()
		done, resp, err := svc.dispatch(method, at, body)
		(*p).ObserveRPC(addr, method, time.Since(start), err)
		return done, resp, err
	}
	return svc.dispatch(method, at, body)
}

// InvokeTrace implements TraceInvoker: like Invoke, but a sampled trace
// context additionally reports the dispatch window to the installed
// observer's SpanObserver side, recording the server's part of the span.
func (b *Bus) InvokeTrace(addr, method string, at vclock.Time, tc TraceContext, body []byte) (vclock.Time, []byte, error) {
	b.mu.RLock()
	svc := b.services[addr]
	b.mu.RUnlock()
	if svc == nil {
		return at, nil, fmt.Errorf("rpc: no service at %q: %w", addr, fsapi.ErrClosed)
	}
	b.calls.Add(1)
	b.bytes.Add(int64(len(body)))
	p := b.obs.Load()
	if p == nil {
		return svc.dispatch(method, at, body)
	}
	start := time.Now()
	done, resp, err := svc.dispatch(method, at, body)
	d := time.Since(start)
	(*p).ObserveRPC(addr, method, d, err)
	if tc.Span != 0 && tc.Sampled {
		if so, ok := (*p).(SpanObserver); ok {
			so.ObserveServerSpan(tc.Span, tc.Hops, addr, method, start, d, err)
		}
	}
	return done, resp, err
}

// Calls returns the number of invocations served.
func (b *Bus) Calls() int64 { return b.calls.Load() }

// Bytes returns the total request payload bytes carried.
func (b *Bus) Bytes() int64 { return b.bytes.Load() }

// NodeOf extracts the node component of a logical address
// ("node3/mds" → "node3"). Addresses without a slash are their own node.
func NodeOf(addr string) string {
	if i := strings.IndexByte(addr, '/'); i >= 0 {
		return addr[:i]
	}
	return addr
}

// Caller issues RPCs on behalf of one client process pinned to a node.
// It injects the latency model's wire costs around the transport and
// normalizes errors to the fsapi sentinel set so behavior is identical
// over Bus and TCP.
type Caller struct {
	transport Transport
	// traceInv is the transport's TraceInvoker view, asserted once at
	// construction (nil when the transport cannot carry trace contexts).
	traceInv TraceInvoker
	model    vclock.LatencyModel
	node     string

	pacer   *vclock.Pacer
	pacerID int

	calls atomic.Int64
	// trace is the packed TraceContext tagging outgoing calls
	// (0 = untraced; see trace.go).
	trace atomic.Uint64
}

// NewCaller builds a caller for a client running on `node`.
func NewCaller(t Transport, model vclock.LatencyModel, node string) *Caller {
	ti, _ := t.(TraceInvoker)
	return &Caller{transport: t, traceInv: ti, model: model, node: node}
}

// Node returns the caller's node id.
func (c *Caller) Node() string { return c.node }

// Model returns the caller's latency model.
func (c *Caller) Model() vclock.LatencyModel { return c.model }

// Calls returns the number of RPCs issued by this caller.
func (c *Caller) Calls() int64 { return c.calls.Load() }

// Pace attaches a vclock.Pacer: every Call then synchronizes this
// caller's virtual clock with the other participants before issuing, so
// resource queueing stays accurate under arbitrary goroutine scheduling
// (see vclock.Pacer). id is this caller's participant index.
func (c *Caller) Pace(p *vclock.Pacer, id int) {
	c.pacer = p
	c.pacerID = id
}

// Call sends method to addr with the request body, charging one-way wire
// latency plus per-KiB transfer each direction. It returns the virtual
// time at which the response reaches the caller.
func (c *Caller) Call(addr, method string, at vclock.Time, body []byte) (vclock.Time, []byte, error) {
	if c.pacer != nil {
		// Batched advancement: the common case takes no lock, so the
		// pacer is not a global serialization point across the region's
		// clients (see vclock.Pacer.AdvanceBatched).
		c.pacer.AdvanceBatched(c.pacerID, at)
	}
	c.calls.Add(1)
	same := c.node == NodeOf(addr)
	sendAt := at.Add(c.model.OneWay(same) + c.model.Transfer(len(body)))
	var done vclock.Time
	var resp []byte
	var err error
	if tv := c.trace.Load(); tv != 0 && c.traceInv != nil {
		tc := unpackTrace(tv)
		tc.Hops++
		done, resp, err = c.traceInv.InvokeTrace(addr, method, sendAt, tc, body)
	} else {
		done, resp, err = c.transport.Invoke(addr, method, sendAt, body)
	}
	if done < sendAt {
		done = sendAt
	}
	recvAt := done.Add(c.model.OneWay(same) + c.model.Transfer(len(resp)))
	if err != nil {
		// Normalize to the sentinel set; unknown errors pass through.
		if code := fsapi.CodeOf(err); code != fsapi.CodeOther {
			err = fsapi.ErrOf(code, "")
		}
	}
	return recvAt, resp, err
}
