package rpc

import (
	"time"

	"pacon/internal/vclock"
)

// Wire-propagated trace context. A client op sampled by the obs tail
// sampler tags its Caller with a TraceContext; every RPC the caller
// issues then carries the context to the service, and the serving side
// (Bus dispatch or the TCP server) reports recv/done to its
// SpanObserver — so memcache servers and the DFS backend record events
// into the *same* span as the originating client op, across transports
// and across OS processes.
//
// The context packs into one uint64 (span<<9 | hops<<1 | sampled), and
// rides the existing frame/dispatch path: an untraced call packs to 0
// and costs one uvarint byte on the TCP wire, nothing on the Bus.

// TraceContext is the compact per-RPC trace tag.
type TraceContext struct {
	// Span is the originating op's span ID (0 = untraced).
	Span uint64
	// Sampled marks spans the tail sampler is assembling; only sampled
	// contexts trigger server-side event recording.
	Sampled bool
	// Hops counts RPC boundaries crossed, incremented per forward —
	// a loop guard and a depth signal for the assembled timeline.
	Hops uint8
}

// pack serializes to the one-word wire form. Span IDs are sequence
// numbers; 2^55 of them is out of reach, so the shift is lossless.
func (tc TraceContext) pack() uint64 {
	v := tc.Span<<9 | uint64(tc.Hops)<<1
	if tc.Sampled {
		v |= 1
	}
	return v
}

// unpackTrace reverses pack.
func unpackTrace(v uint64) TraceContext {
	return TraceContext{
		Span:    v >> 9,
		Sampled: v&1 != 0,
		Hops:    uint8(v >> 1),
	}
}

// TraceInvoker is the optional transport extension for trace-carrying
// calls. Bus, TCPTransport and TCPNetwork implement it; a transport
// that does not simply never sees trace contexts (the Caller falls
// back to plain Invoke).
type TraceInvoker interface {
	InvokeTrace(addr, method string, at vclock.Time, tc TraceContext, body []byte) (vclock.Time, []byte, error)
}

// SpanObserver is the optional server-side extension of RPCObserver:
// when the installed observer also implements it, every dispatch that
// carried a sampled trace context reports the span, the serving
// address, and the wall-clock window of the handler run. Built-ins
// only, same as RPCObserver, so internal/obs can implement it without
// an import cycle.
type SpanObserver interface {
	ObserveServerSpan(span uint64, hop uint8, addr, method string, start time.Time, d time.Duration, err error)
}

// SetTrace tags every subsequent Call from this caller with the span's
// trace context (sampled, hop 0). Callers are per-client/per-commit-
// loop, but the tag is atomic so a racing read at worst mis-tags one
// RPC; span 0 clears.
func (c *Caller) SetTrace(span uint64) {
	if span == 0 {
		c.trace.Store(0)
		return
	}
	c.trace.Store(TraceContext{Span: span, Sampled: true}.pack())
}

// ClearTrace removes the tag.
func (c *Caller) ClearTrace() { c.trace.Store(0) }
