package rpc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"pacon/internal/fsapi"
	"pacon/internal/vclock"
)

func TestTCPNetworkServesRegisteredServices(t *testing.T) {
	n := NewTCPNetwork()
	defer n.Close()

	res := vclock.NewResource("svc", 1)
	svc := NewService()
	svc.Handle("echo", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		out := make([]byte, len(body))
		copy(out, body)
		return res.Acquire(at, 5*time.Microsecond), out, nil
	})
	n.Register("node1/svc", svc)

	model := vclock.LatencyModel{CrossNodeRTT: 80 * time.Microsecond}
	c := NewCaller(n, model, "node0")
	done, resp, err := c.Call("node1/svc", "echo", 0, []byte("over real sockets"))
	if err != nil || string(resp) != "over real sockets" {
		t.Fatalf("call = %q, %v", resp, err)
	}
	// Virtual-time math is identical over TCP: RTT + service.
	if want := vclock.Time(85 * time.Microsecond); done != want {
		t.Fatalf("done = %v, want %v", done, want)
	}
	if c.Node() != "node0" || c.Model() != model || c.Calls() != 1 {
		t.Fatal("caller accessors wrong")
	}
}

func TestTCPNetworkUnregisterAndClose(t *testing.T) {
	n := NewTCPNetwork()
	svc := NewService()
	svc.Handle("ping", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		return at, nil, nil
	})
	n.Register("a/svc", svc)
	n.Register("b/svc", svc)
	c := NewCaller(n, vclock.LatencyModel{}, "x")

	n.Unregister("a/svc")
	if _, _, err := c.Call("a/svc", "ping", 0, nil); err == nil {
		t.Fatal("call to unregistered service must fail")
	}
	if _, _, err := c.Call("b/svc", "ping", 0, nil); err != nil {
		t.Fatal(err)
	}
	n.Close()
	if _, _, err := c.Call("b/svc", "ping", 0, nil); err == nil {
		t.Fatal("call after network close must fail")
	}
	// Unknown address entirely.
	if _, _, err := c.Call("ghost/svc", "ping", 0, nil); !errors.Is(err, fsapi.ErrClosed) {
		t.Fatalf("unknown addr err = %v", err)
	}
}

func TestTCPNetworkConcurrentCallers(t *testing.T) {
	n := NewTCPNetwork()
	defer n.Close()
	svc := NewService()
	svc.Handle("inc", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		return at, body, nil
	})
	n.Register("s/svc", svc)

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := NewCaller(n, vclock.LatencyModel{}, "client")
			for i := 0; i < 50; i++ {
				if _, _, err := c.Call("s/svc", "inc", 0, []byte{byte(g)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestBusBytesCounter(t *testing.T) {
	bus := NewBus()
	svc := NewService()
	svc.Handle("sink", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		return at, nil, nil
	})
	bus.Register("n/svc", svc)
	c := NewCaller(bus, vclock.LatencyModel{}, "n")
	c.Call("n/svc", "sink", 0, make([]byte, 100))
	c.Call("n/svc", "sink", 0, make([]byte, 28))
	if bus.Bytes() != 128 {
		t.Fatalf("bytes = %d", bus.Bytes())
	}
}
