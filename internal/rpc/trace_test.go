package rpc

import (
	"sync"
	"testing"
	"time"

	"pacon/internal/vclock"
)

// TestTraceContextPackRoundtrip: the packed uvarint form must carry the
// span, sampled bit and hop counter losslessly, and an untraced context
// must pack to 0 (one wire byte).
func TestTraceContextPackRoundtrip(t *testing.T) {
	cases := []TraceContext{
		{},
		{Span: 1, Sampled: true},
		{Span: 1<<55 - 1, Sampled: true, Hops: 255},
		{Span: 42, Sampled: false, Hops: 3},
	}
	for _, tc := range cases {
		got := unpackTrace(tc.pack())
		if got != tc {
			t.Fatalf("roundtrip %+v → %+v", tc, got)
		}
	}
	if (TraceContext{}).pack() != 0 {
		t.Fatal("untraced context must pack to 0")
	}
}

// spanRecorder records ObserveServerSpan callbacks.
type spanRecorder struct {
	mu    sync.Mutex
	spans []uint64
	hops  []uint8
	addrs []string
	errs  int
}

func (r *spanRecorder) ObserveRPC(addr, method string, d time.Duration, err error) {}

func (r *spanRecorder) ObserveServerSpan(span uint64, hop uint8, addr, method string, start time.Time, d time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = append(r.spans, span)
	r.hops = append(r.hops, hop)
	r.addrs = append(r.addrs, addr)
	if err != nil {
		r.errs++
	}
}

// TestBusTracePropagation: a caller with a span set must deliver the
// trace context to the bus observer's server-span hook, with the hop
// counter incremented per forward; clearing the span stops it; an
// unsampled caller never fires the hook.
func TestBusTracePropagation(t *testing.T) {
	bus := NewBus()
	svc := NewService()
	svc.Handle("ping", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		return at, []byte("pong"), nil
	})
	bus.Register("n1/pacon-r", svc)

	rec := &spanRecorder{}
	bus.SetObserver(rec)

	c := NewCaller(bus, vclock.LatencyModel{}, "n0")
	c.SetTrace(99)
	if _, _, err := c.Call("n1/pacon-r", "ping", 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Call("n1/pacon-r", "ping", 0, nil); err != nil {
		t.Fatal(err)
	}
	c.ClearTrace()
	if _, _, err := c.Call("n1/pacon-r", "ping", 0, nil); err != nil {
		t.Fatal(err)
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.spans) != 2 {
		t.Fatalf("server-span hook fired %d times, want 2 (cleared caller must not trace)", len(rec.spans))
	}
	for i, sp := range rec.spans {
		if sp != 99 {
			t.Fatalf("call %d delivered span %d, want 99", i, sp)
		}
		if rec.hops[i] != 1 {
			t.Fatalf("call %d hop = %d, want 1 (incremented once en route)", i, rec.hops[i])
		}
		if rec.addrs[i] != "n1/pacon-r" {
			t.Fatalf("call %d addr = %q", i, rec.addrs[i])
		}
	}
}

// TestTCPTracePropagation: the trace context must survive the TCP frame
// encoding — a caller over a real socket delivers the same span and hop
// count to the server-side sink as the in-process bus does.
func TestTCPTracePropagation(t *testing.T) {
	net := NewTCPNetwork()
	defer net.Close()
	svc := NewService()
	svc.Handle("ping", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		return at, []byte("pong"), nil
	})
	net.Register("n1/mds", svc)

	rec := &spanRecorder{}
	net.SetObserver(rec)

	c := NewCaller(net, vclock.LatencyModel{}, "n0")
	c.SetTrace(12345)
	if _, _, err := c.Call("n1/mds", "ping", 0, nil); err != nil {
		t.Fatal(err)
	}
	c.ClearTrace()
	if _, _, err := c.Call("n1/mds", "ping", 0, nil); err != nil {
		t.Fatal(err)
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.spans) != 1 {
		t.Fatalf("server-span hook fired %d times, want 1", len(rec.spans))
	}
	if rec.spans[0] != 12345 || rec.hops[0] != 1 || rec.addrs[0] != "n1/mds" {
		t.Fatalf("got span=%d hop=%d addr=%q, want 12345/1/n1/mds",
			rec.spans[0], rec.hops[0], rec.addrs[0])
	}
}
