package rpc

import (
	"sync"
	"testing"
	"time"

	"pacon/internal/vclock"
)

// recObserver records observed round trips.
type recObserver struct {
	mu    sync.Mutex
	calls []string
	errs  int
}

func (r *recObserver) ObserveRPC(addr, method string, d time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls = append(r.calls, addr+"."+method)
	if err != nil {
		r.errs++
	}
	if d < 0 {
		panic("negative duration")
	}
}

func TestBusObserver(t *testing.T) {
	bus := NewBus()
	svc := NewService()
	svc.Handle("ping", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		return at, []byte("pong"), nil
	})
	bus.Register("n0/pacon-r", svc)

	rec := &recObserver{}
	bus.SetObserver(rec)
	if _, _, err := bus.Invoke("n0/pacon-r", "ping", 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bus.Invoke("n0/pacon-r", "bogus", 0, nil); err == nil {
		t.Fatal("expected unknown-method error")
	}
	rec.mu.Lock()
	calls, errs := len(rec.calls), rec.errs
	rec.mu.Unlock()
	if calls != 2 || errs != 1 {
		t.Fatalf("observed %d calls / %d errors, want 2 / 1", calls, errs)
	}

	// Removing the observer stops the callbacks.
	bus.SetObserver(nil)
	if _, _, err := bus.Invoke("n0/pacon-r", "ping", 0, nil); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	after := len(rec.calls)
	rec.mu.Unlock()
	if after != 2 {
		t.Fatalf("observer still firing after removal: %d calls", after)
	}
}

func TestTCPNetworkObserver(t *testing.T) {
	net := NewTCPNetwork()
	defer net.Close()
	svc := NewService()
	svc.Handle("ping", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		return at, []byte("pong"), nil
	})
	net.Register("n0/mds", svc)

	rec := &recObserver{}
	net.SetObserver(rec)
	if _, _, err := net.Invoke("n0/mds", "ping", 0, nil); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.calls) != 1 || rec.calls[0] != "n0/mds.ping" {
		t.Fatalf("observed %v, want one n0/mds.ping", rec.calls)
	}
}
