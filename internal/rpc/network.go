package rpc

import (
	"sync"

	"pacon/internal/vclock"
)

// Network couples a Transport with service registration: enough for a
// whole deployment (DFS, IndexFS, Pacon regions) to be wired up without
// knowing whether it runs in-process or across real sockets. Bus
// implements it for in-process runs; TCPNetwork implements it over real
// listeners.
type Network interface {
	Transport
	// Register binds a service to a logical address.
	Register(addr string, svc *Service)
	// Unregister removes a service (simulates failure/shutdown).
	Unregister(addr string)
}

var (
	_ Network = (*Bus)(nil)
	_ Network = (*TCPNetwork)(nil)
)

// TCPNetwork is a Network where every registered service listens on a
// real TCP socket (127.0.0.1, kernel-assigned ports) and every call
// crosses the loopback stack with length-prefixed frames. It exists to
// prove the layers above are transport-agnostic: the full Pacon stack
// runs unchanged over it (see TestRegionOverTCP).
type TCPNetwork struct {
	transport *TCPTransport

	mu      sync.Mutex
	servers map[string]*TCPServer
	obs     RPCObserver
}

// NewTCPNetwork returns an empty TCP-backed network.
func NewTCPNetwork() *TCPNetwork {
	return &TCPNetwork{
		transport: NewTCPTransport(nil),
		servers:   make(map[string]*TCPServer),
	}
}

// Register implements Network: it starts a real listener for svc and
// routes the logical address to it. Registration failures panic — they
// indicate an unusable host environment, matching Bus's can't-fail
// contract.
func (n *TCPNetwork) Register(addr string, svc *Service) {
	srv, err := ServeTCP("127.0.0.1:0", svc)
	if err != nil {
		panic("rpc: tcp network register " + addr + ": " + err.Error())
	}
	n.mu.Lock()
	if old, ok := n.servers[addr]; ok {
		old.Close()
	}
	n.servers[addr] = srv
	if so, ok := n.obs.(SpanObserver); ok {
		srv.SetTraceSink(addr, so)
	}
	n.mu.Unlock()
	n.transport.AddRoute(addr, srv.Addr())
}

// Unregister implements Network.
func (n *TCPNetwork) Unregister(addr string) {
	n.mu.Lock()
	srv, ok := n.servers[addr]
	delete(n.servers, addr)
	n.mu.Unlock()
	if ok {
		srv.Close()
	}
}

// SetObserver installs the per-round-trip instrumentation hook on the
// underlying TCP transport and — when the observer also implements
// SpanObserver — as every server's trace sink, so sampled spans get
// their server-side events recorded under the serving logical address.
func (n *TCPNetwork) SetObserver(o RPCObserver) {
	n.transport.SetObserver(o)
	so, _ := o.(SpanObserver)
	n.mu.Lock()
	n.obs = o
	for addr, srv := range n.servers {
		srv.SetTraceSink(addr, so)
	}
	n.mu.Unlock()
}

// Invoke implements Transport.
func (n *TCPNetwork) Invoke(addr, method string, at vclock.Time, body []byte) (vclock.Time, []byte, error) {
	return n.transport.Invoke(addr, method, at, body)
}

// InvokeTrace implements TraceInvoker.
func (n *TCPNetwork) InvokeTrace(addr, method string, at vclock.Time, tc TraceContext, body []byte) (vclock.Time, []byte, error) {
	return n.transport.InvokeTrace(addr, method, at, tc, body)
}

// Close shuts every listener and pooled connection down.
func (n *TCPNetwork) Close() {
	n.mu.Lock()
	servers := n.servers
	n.servers = make(map[string]*TCPServer)
	n.mu.Unlock()
	for _, s := range servers {
		s.Close()
	}
	n.transport.Close()
}
