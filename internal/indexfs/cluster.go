package indexfs

import (
	"time"

	"pacon/internal/fsapi"
	"pacon/internal/lsmkv"
	"pacon/internal/rpc"
	"pacon/internal/vclock"
)

// DefaultLeaseTTL matches IndexFS's short dentry leases: long enough to
// cover a burst of operations under one directory, short enough that the
// bounded client cache keeps churning under random access.
const DefaultLeaseTTL = 2 * time.Millisecond

// Cluster assembles an IndexFS deployment: one metadata server
// co-located with each client node (the paper's fair-comparison
// configuration).
type Cluster struct {
	Net     rpc.Network
	Model   vclock.LatencyModel
	Servers []*Server
	Addrs   []string
}

// ClusterConfig tunes a deployment.
type ClusterConfig struct {
	// LeaseTTL overrides DefaultLeaseTTL when > 0.
	LeaseTTL vclock.Duration
	// StoreFor, when set, supplies per-server LSM options (e.g. OS-backed
	// stores); by default each server gets an in-memory store.
	StoreFor func(i int) lsmkv.Options
}

// NewCluster starts one server per node in nodes.
func NewCluster(net rpc.Network, model vclock.LatencyModel, nodes []string, cfg ClusterConfig) (*Cluster, error) {
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	c := &Cluster{Net: net, Model: model}
	for i, node := range nodes {
		addr := node + "/indexfs"
		store := lsmkv.Options{}
		if cfg.StoreFor != nil {
			store = cfg.StoreFor(i)
		}
		s, err := NewServer(addr, ServerConfig{
			Index:    i,
			Store:    store,
			Model:    model,
			Workers:  model.IndexFSWorkers,
			LeaseTTL: ttl,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		net.Register(addr, s.Service())
		c.Servers = append(c.Servers, s)
		c.Addrs = append(c.Addrs, addr)
	}
	return c, nil
}

// NewClient builds a client on node. leaseCap 0 disables the client
// dentry cache.
func (c *Cluster) NewClient(node string, cred fsapi.Cred, leaseCap int, bulk bool) *Client {
	return NewClient(c.Net, ClientConfig{
		Node:          node,
		ServerAddrs:   c.Addrs,
		Cred:          cred,
		Model:         c.Model,
		LeaseCacheCap: leaseCap,
		Bulk:          bulk,
	})
}

// Close shuts every server down.
func (c *Cluster) Close() error {
	var first error
	for _, s := range c.Servers {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
