package indexfs

import (
	"fmt"
	"sort"
	"sync"

	"pacon/internal/fsapi"
	"pacon/internal/namespace"
	"pacon/internal/rpc"
	"pacon/internal/vclock"
	"pacon/internal/wire"
)

// ClientConfig configures one IndexFS client process.
type ClientConfig struct {
	// Node the client runs on.
	Node string
	// ServerAddrs lists every metadata server; directories map to
	// servers by hashing their directory ID.
	ServerAddrs []string
	// Cred is the system user.
	Cred fsapi.Cred
	// Model is the latency model.
	Model vclock.LatencyModel
	// LeaseCacheCap bounds the client's dentry lease cache (entries);
	// 0 disables caching. IndexFS's "stateless caching" keeps this
	// bounded and small.
	LeaseCacheCap int
	// Bulk enables bulk insertion (BatchFS mode): creates are buffered
	// locally and merged into the owning servers in batches.
	Bulk bool
	// BulkBatch is the flush threshold in buffered creates (default 128).
	BulkBatch int
}

// Client is an IndexFS client: it resolves paths against the partitioned
// servers with lease-cached directory entries.
type Client struct {
	cfg    ClientConfig
	caller *rpc.Caller

	mu     sync.Mutex
	leases map[string]lease

	pending map[string][]bulkRow // server addr -> buffered creates (bulk mode)
	nbuf    int

	lookupRPCs int64
}

type lease struct {
	stat    fsapi.Stat
	child   DirID
	expires vclock.Time
}

type bulkRow struct {
	key   []byte
	value []byte
}

// NewClient builds a client over the transport.
func NewClient(t rpc.Transport, cfg ClientConfig) *Client {
	if cfg.BulkBatch <= 0 {
		cfg.BulkBatch = 128
	}
	return &Client{
		cfg:     cfg,
		caller:  rpc.NewCaller(t, cfg.Model, cfg.Node),
		leases:  make(map[string]lease),
		pending: make(map[string][]bulkRow),
	}
}

// Pace attaches a virtual-time pacer (see vclock.Pacer).
func (c *Client) Pace(p *vclock.Pacer, id int) { c.caller.Pace(p, id) }

// LookupRPCs reports issued per-component lookup RPCs.
func (c *Client) LookupRPCs() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lookupRPCs
}

func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x
}

func strhash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// serverFor routes one directory entry to its owner. Directories are
// fully split (GIGA+ at maximum split level, which IndexFS inherits):
// a directory's entries spread across every server by name hash, so a
// single hot directory — the paper's mdtest shared parent — scales with
// the server count instead of bottlenecking on one owner.
func (c *Client) serverFor(dir DirID, name string) string {
	return c.cfg.ServerAddrs[mix(dir^strhash(name))%uint64(len(c.cfg.ServerAddrs))]
}

func (c *Client) leaseGet(p string, at vclock.Time) (lease, bool) {
	if c.cfg.LeaseCacheCap <= 0 {
		return lease{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.leases[p]
	if !ok || at > l.expires {
		return lease{}, false
	}
	return l, true
}

func (c *Client) leasePut(p string, l lease) {
	if c.cfg.LeaseCacheCap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.leases) >= c.cfg.LeaseCacheCap {
		for k := range c.leases {
			delete(c.leases, k)
			break
		}
	}
	c.leases[p] = l
}

func (c *Client) leaseDrop(p string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.leases, p)
}

// lookupEntry fetches (dir, name) from its owner, caching the lease
// under fullPath.
func (c *Client) lookupEntry(at vclock.Time, dir DirID, name, fullPath string) (lease, vclock.Time, error) {
	c.mu.Lock()
	c.lookupRPCs++
	c.mu.Unlock()
	e := wire.NewEncoder(len(name) + 12)
	e.Uint64(dir)
	e.String(name)
	done, resp, err := c.caller.Call(c.serverFor(dir, name), "lookup", at, e.Bytes())
	if err != nil {
		return lease{}, done, err
	}
	d := wire.NewDecoder(resp)
	st := fsapi.DecodeStat(d)
	child := d.Uvarint()
	ttl := vclock.Duration(d.Int64())
	if derr := d.Finish(); derr != nil {
		return lease{}, done, derr
	}
	l := lease{stat: st, child: child, expires: done.Add(ttl)}
	c.leasePut(fullPath, l)
	return l, done, nil
}

// resolveDir walks p's components to its directory ID, charging one
// lookup RPC per lease miss and checking traversal permission.
func (c *Client) resolveDir(at vclock.Time, p string) (DirID, vclock.Time, error) {
	cur := RootDirID
	full := ""
	for _, comp := range namespace.Components(p) {
		full += "/" + comp
		var l lease
		if cached, ok := c.leaseGet(full, at); ok {
			l = cached
		} else {
			var err error
			l, at, err = c.lookupEntry(at, cur, comp, full)
			if err != nil {
				return 0, at, fsapi.WrapPath("traverse", full, err)
			}
		}
		if !l.stat.IsDir() {
			return 0, at, fsapi.WrapPath("traverse", full, fsapi.ErrNotDir)
		}
		if !l.stat.Mode.Allows(c.cfg.Cred.ClassFor(l.stat.UID, l.stat.GID), fsapi.WantExec) {
			return 0, at, fsapi.WrapPath("traverse", full, fsapi.ErrPermission)
		}
		cur = l.child
	}
	return cur, at, nil
}

// Mkdir creates a directory.
func (c *Client) Mkdir(at vclock.Time, p string, mode fsapi.Mode) (vclock.Time, error) {
	p = namespace.Clean(p)
	dir, name := namespace.Split(p)
	parent, at, err := c.resolveDir(at, dir)
	if err != nil {
		return at, err
	}
	st := fsapi.NewDirStat(c.cfg.Cred, mode)
	e := wire.NewEncoder(len(name) + 96)
	e.Uint64(parent)
	e.String(name)
	fsapi.EncodeStat(e, st)
	done, resp, err := c.caller.Call(c.serverFor(parent, name), "mkdir", at, e.Bytes())
	if err != nil {
		return done, fsapi.WrapPath("mkdir", p, err)
	}
	d := wire.NewDecoder(resp)
	child := d.Uvarint()
	if derr := d.Finish(); derr != nil {
		return done, derr
	}
	c.leasePut(p, lease{stat: st, child: child, expires: done.Add(vclock.Duration(1 << 40))})
	return done, nil
}

// Create creates an empty file (buffered locally in bulk mode).
func (c *Client) Create(at vclock.Time, p string, mode fsapi.Mode) (vclock.Time, error) {
	return c.CreateWithStat(at, p, fsapi.NewFileStat(c.cfg.Cred, mode))
}

// CreateWithStat creates a file with a caller-built stat.
func (c *Client) CreateWithStat(at vclock.Time, p string, st fsapi.Stat) (vclock.Time, error) {
	p = namespace.Clean(p)
	dir, name := namespace.Split(p)
	parent, at, err := c.resolveDir(at, dir)
	if err != nil {
		return at, err
	}
	if c.cfg.Bulk {
		// Bulk insertion: buffer the row locally; the only cost now is
		// client-side marshaling.
		at = at.Add(c.cfg.Model.ClientOverhead)
		addr := c.serverFor(parent, name)
		c.mu.Lock()
		c.pending[addr] = append(c.pending[addr], bulkRow{key: entryKey(parent, name), value: encodeEntry(st, 0)})
		c.nbuf++
		flush := c.nbuf >= c.cfg.BulkBatch
		c.mu.Unlock()
		if flush {
			return c.FlushBulk(at)
		}
		return at, nil
	}
	e := wire.NewEncoder(len(name) + 96)
	e.Uint64(parent)
	e.String(name)
	fsapi.EncodeStat(e, st)
	done, _, err := c.caller.Call(c.serverFor(parent, name), "create", at, e.Bytes())
	if err != nil {
		return done, fsapi.WrapPath("create", p, err)
	}
	return done, nil
}

// FlushBulk pushes buffered creates to their owning servers as sorted
// batches.
func (c *Client) FlushBulk(at vclock.Time) (vclock.Time, error) {
	c.mu.Lock()
	pending := c.pending
	c.pending = make(map[string][]bulkRow)
	c.nbuf = 0
	c.mu.Unlock()

	latest := at
	for addr, rows := range pending {
		// Rows must ascend by key for SSTable ingestion.
		sortBulkRows(rows)
		e := wire.NewEncoder(64 * len(rows))
		e.Uvarint(uint64(len(rows)))
		for _, r := range rows {
			e.Blob(r.key)
			e.Blob(r.value)
		}
		done, _, err := c.caller.Call(addr, "bulk", at, e.Bytes())
		if err != nil {
			return done, err
		}
		latest = vclock.Max(latest, done)
	}
	return latest, nil
}

// Stat resolves a path's metadata.
func (c *Client) Stat(at vclock.Time, p string) (fsapi.Stat, vclock.Time, error) {
	p = namespace.Clean(p)
	if p == "/" {
		return fsapi.NewDirStat(fsapi.Cred{}, 0o777), at, nil
	}
	dir, name := namespace.Split(p)
	parent, at, err := c.resolveDir(at, dir)
	if err != nil {
		return fsapi.Stat{}, at, err
	}
	if l, ok := c.leaseGet(p, at); ok {
		return l.stat, at, nil
	}
	l, done, err := c.lookupEntry(at, parent, name, p)
	if err != nil {
		return fsapi.Stat{}, done, fsapi.WrapPath("stat", p, err)
	}
	return l.stat, done, nil
}

// StatBatch resolves a batch of paths with one "lookup_batch" RPC per
// owning server instead of one "lookup" per path. Directory resolution
// still walks each path's ancestors (lease misses cost their usual
// RPCs); only the final-component lookups batch. Results align with
// paths; a non-nil batch error means a transport failure left the whole
// batch's disposition unknown.
func (c *Client) StatBatch(at vclock.Time, paths []string) ([]fsapi.StatResult, vclock.Time, error) {
	if len(paths) == 0 {
		return nil, at, nil
	}
	out := make([]fsapi.StatResult, len(paths))
	type pending struct {
		idx  int
		dir  DirID
		name string
		full string
	}
	groups := make(map[string][]pending)
	var order []string
	for i, p := range paths {
		p = namespace.Clean(p)
		if p == "/" {
			out[i].Stat = fsapi.NewDirStat(fsapi.Cred{}, 0o777)
			continue
		}
		dir, name := namespace.Split(p)
		parent, done, err := c.resolveDir(at, dir)
		at = done
		if err != nil {
			out[i].Err = err
			continue
		}
		if l, ok := c.leaseGet(p, at); ok {
			out[i].Stat = l.stat
			continue
		}
		addr := c.serverFor(parent, name)
		if _, ok := groups[addr]; !ok {
			order = append(order, addr)
		}
		groups[addr] = append(groups[addr], pending{idx: i, dir: parent, name: name, full: p})
	}
	// One RPC per owning server, all at the same virtual instant.
	latest := at
	for _, addr := range order {
		batch := groups[addr]
		c.mu.Lock()
		c.lookupRPCs += int64(len(batch))
		c.mu.Unlock()
		e := wire.NewEncoder(24 * len(batch))
		e.Uvarint(uint64(len(batch)))
		for _, pe := range batch {
			e.Uint64(pe.dir)
			e.String(pe.name)
		}
		done, resp, err := c.caller.Call(addr, "lookup_batch", at, e.Bytes())
		if err != nil {
			return nil, done, err
		}
		latest = vclock.Max(latest, done)
		d := wire.NewDecoder(resp)
		if n := d.Uvarint(); n != uint64(len(batch)) {
			return nil, latest, fmt.Errorf("indexfs: lookup_batch returned %d results for %d entries", n, len(batch))
		}
		for _, pe := range batch {
			code := d.Byte()
			if code == fsapi.CodeOK {
				st := fsapi.DecodeStat(d)
				child := d.Uvarint()
				ttl := vclock.Duration(d.Int64())
				if d.Err() == nil {
					out[pe.idx].Stat = st
					c.leasePut(pe.full, lease{stat: st, child: child, expires: done.Add(ttl)})
				}
			} else {
				out[pe.idx].Err = fsapi.WrapPath("stat", pe.full, fsapi.ErrOf(code, ""))
			}
		}
		if derr := d.Finish(); derr != nil {
			return nil, latest, derr
		}
	}
	return out, latest, nil
}

// SetStat overwrites a path's metadata.
func (c *Client) SetStat(at vclock.Time, p string, st fsapi.Stat) (vclock.Time, error) {
	p = namespace.Clean(p)
	dir, name := namespace.Split(p)
	parent, at, err := c.resolveDir(at, dir)
	if err != nil {
		return at, err
	}
	e := wire.NewEncoder(len(name) + 96)
	e.Uint64(parent)
	e.String(name)
	fsapi.EncodeStat(e, st)
	done, _, err := c.caller.Call(c.serverFor(parent, name), "setattr", at, e.Bytes())
	if err == nil {
		c.leaseDrop(p)
	}
	return done, err
}

// Remove unlinks a file.
func (c *Client) Remove(at vclock.Time, p string) (vclock.Time, error) {
	p = namespace.Clean(p)
	dir, name := namespace.Split(p)
	parent, at, err := c.resolveDir(at, dir)
	if err != nil {
		return at, err
	}
	e := wire.NewEncoder(len(name) + 12)
	e.Uint64(parent)
	e.String(name)
	done, _, err := c.caller.Call(c.serverFor(parent, name), "remove", at, e.Bytes())
	if err != nil {
		return done, fsapi.WrapPath("remove", p, err)
	}
	c.leaseDrop(p)
	return done, nil
}

// Rmdir removes an empty directory: an emptiness check on the child's
// owner followed by the row delete on the parent's owner.
func (c *Client) Rmdir(at vclock.Time, p string) (vclock.Time, error) {
	p = namespace.Clean(p)
	dir, name := namespace.Split(p)
	parent, at, err := c.resolveDir(at, dir)
	if err != nil {
		return at, err
	}
	var self DirID
	if l, ok := c.leaseGet(p, at); ok {
		self = l.child
	} else {
		l, done, err := c.lookupEntry(at, parent, name, p)
		at = done
		if err != nil {
			return at, fsapi.WrapPath("rmdir", p, err)
		}
		if !l.stat.IsDir() {
			return at, fsapi.WrapPath("rmdir", p, fsapi.ErrNotDir)
		}
		self = l.child
	}
	// Split directories keep rows on every server: emptiness is the
	// conjunction across the cluster.
	for _, addr := range c.cfg.ServerAddrs {
		e := wire.NewEncoder(9)
		e.Uint64(self)
		done, resp, err := c.caller.Call(addr, "empty", at, e.Bytes())
		at = done
		if err != nil {
			return at, err
		}
		if !wire.NewDecoder(resp).Bool() {
			return at, fsapi.WrapPath("rmdir", p, fsapi.ErrNotEmpty)
		}
	}
	e := wire.NewEncoder(len(name) + 12)
	e.Uint64(parent)
	e.String(name)
	done, _, err := c.caller.Call(c.serverFor(parent, name), "removedir", at, e.Bytes())
	if err != nil {
		return done, fsapi.WrapPath("rmdir", p, err)
	}
	c.leaseDrop(p)
	return done, nil
}

// Readdir lists a directory.
func (c *Client) Readdir(at vclock.Time, p string) ([]fsapi.DirEntry, vclock.Time, error) {
	p = namespace.Clean(p)
	dir, at, err := c.resolveDir(at, p)
	if err != nil {
		return nil, at, err
	}
	// Gather the split directory's rows from every server and merge.
	var ents []fsapi.DirEntry
	for _, addr := range c.cfg.ServerAddrs {
		e := wire.NewEncoder(9)
		e.Uint64(dir)
		done, resp, err := c.caller.Call(addr, "readdir", at, e.Bytes())
		at = done
		if err != nil {
			return nil, at, fsapi.WrapPath("readdir", p, err)
		}
		d := wire.NewDecoder(resp)
		n := d.Uvarint()
		for i := uint64(0); i < n; i++ {
			ents = append(ents, fsapi.DirEntry{Name: d.String(), Type: fsapi.FileType(d.Byte())})
		}
		if derr := d.Finish(); derr != nil {
			return nil, at, derr
		}
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
	return ents, at, nil
}

// sortBulkRows orders rows by key ascending (insertion sort — batches
// are small and nearly sorted).
func sortBulkRows(rows []bulkRow) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && string(rows[j].key) < string(rows[j-1].key); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}
