package indexfs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pacon/internal/fsapi"
	"pacon/internal/rpc"
	"pacon/internal/vclock"
)

var appCred = fsapi.Cred{UID: 1000, GID: 1000}

func testCluster(t *testing.T, nodes int) *Cluster {
	t.Helper()
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("node%d", i)
	}
	c, err := NewCluster(rpc.NewBus(), vclock.Default(), names, ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestMkdirCreateStat(t *testing.T) {
	c := testCluster(t, 4)
	cl := c.NewClient("node0", appCred, 1024, false)
	if _, err := cl.Mkdir(0, "/w", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Mkdir(0, "/w/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Create(0, "/w/d/f", 0o644); err != nil {
		t.Fatal(err)
	}
	st, _, err := cl.Stat(0, "/w/d/f")
	if err != nil || st.Type != fsapi.TypeFile {
		t.Fatalf("stat = %+v, %v", st, err)
	}
	st, _, err = cl.Stat(0, "/")
	if err != nil || !st.IsDir() {
		t.Fatalf("root stat = %v", err)
	}
}

func TestNamespaceConventions(t *testing.T) {
	c := testCluster(t, 2)
	cl := c.NewClient("node0", appCred, 1024, false)
	cl.Mkdir(0, "/w", 0o755)
	cl.Create(0, "/w/f", 0o644)
	if _, err := cl.Create(0, "/w/f", 0o644); !errors.Is(err, fsapi.ErrExist) {
		t.Fatalf("dup create = %v", err)
	}
	if _, err := cl.Create(0, "/ghost/f", 0o644); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("orphan create = %v", err)
	}
	if _, err := cl.Remove(0, "/w/ghost"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("remove missing = %v", err)
	}
	if _, err := cl.Remove(0, "/w/d"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("remove missing dir = %v", err)
	}
}

func TestCrossClientVisibility(t *testing.T) {
	c := testCluster(t, 4)
	a := c.NewClient("node0", appCred, 1024, false)
	b := c.NewClient("node3", appCred, 1024, false)
	a.Mkdir(0, "/w", 0o755)
	a.Create(0, "/w/shared", 0o644)
	// IndexFS is a centralized (if partitioned) service: other clients
	// see writes immediately.
	if _, _, err := b.Stat(0, "/w/shared"); err != nil {
		t.Fatalf("cross-client stat = %v", err)
	}
}

func TestDirectoriesPartitionAcrossServers(t *testing.T) {
	c := testCluster(t, 4)
	cl := c.NewClient("node0", appCred, 1024, false)
	cl.Mkdir(0, "/w", 0o755)
	for i := 0; i < 32; i++ {
		if _, err := cl.Mkdir(0, fmt.Sprintf("/w/d%02d", i), 0o755); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Create(0, fmt.Sprintf("/w/d%02d/f", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// The created subdirectories' files should spread across servers.
	busy := 0
	for _, s := range c.Servers {
		if s.Stats().Inserts > 0 {
			busy++
		}
	}
	if busy < 3 {
		t.Fatalf("only %d of 4 servers received inserts", busy)
	}
}

func TestReaddir(t *testing.T) {
	c := testCluster(t, 2)
	cl := c.NewClient("node0", appCred, 1024, false)
	cl.Mkdir(0, "/w", 0o755)
	cl.Create(0, "/w/b", 0o644)
	cl.Mkdir(0, "/w/a", 0o755)
	ents, _, err := cl.Readdir(0, "/w")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 || ents[0].Name != "a" || ents[0].Type != fsapi.TypeDir || ents[1].Name != "b" {
		t.Fatalf("readdir = %v", ents)
	}
	// Empty dir lists empty.
	ents, _, err = cl.Readdir(0, "/w/a")
	if err != nil || len(ents) != 0 {
		t.Fatalf("empty readdir = %v, %v", ents, err)
	}
}

func TestRmdirSemantics(t *testing.T) {
	c := testCluster(t, 3)
	cl := c.NewClient("node0", appCred, 1024, false)
	cl.Mkdir(0, "/w", 0o755)
	cl.Mkdir(0, "/w/d", 0o755)
	cl.Create(0, "/w/d/f", 0o644)
	if _, err := cl.Rmdir(0, "/w/d"); !errors.Is(err, fsapi.ErrNotEmpty) {
		t.Fatalf("rmdir non-empty = %v", err)
	}
	if _, err := cl.Remove(0, "/w/d/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Rmdir(0, "/w/d"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Stat(0, "/w/d"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatal("dir still visible after rmdir")
	}
	// Removing a file via Rmdir fails.
	cl.Create(0, "/w/f", 0o644)
	if _, err := cl.Rmdir(0, "/w/f"); !errors.Is(err, fsapi.ErrNotDir) {
		t.Fatalf("rmdir on file = %v", err)
	}
}

func TestPermissionTraversal(t *testing.T) {
	c := testCluster(t, 2)
	root := c.NewClient("node0", fsapi.Cred{UID: 0, GID: 0}, 0, false)
	root.Mkdir(0, "/locked", 0o700)
	app := c.NewClient("node0", appCred, 0, false)
	if _, err := app.Create(0, "/locked/f", 0o644); !errors.Is(err, fsapi.ErrPermission) {
		t.Fatalf("create under locked dir = %v", err)
	}
}

func TestLeaseCacheCutsLookups(t *testing.T) {
	c := testCluster(t, 2)
	cl := c.NewClient("node0", appCred, 1024, false)
	cl.Mkdir(0, "/w", 0o755)
	at := vclock.Time(0)
	var err error
	for i := 0; i < 50; i++ {
		// All creates resolve the same parent; the lease (2ms TTL at
		// these op latencies) keeps traversal local after the first.
		at, err = cl.Create(at, fmt.Sprintf("/w/f%d", i), 0o644)
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := cl.LookupRPCs(); got > 5 {
		t.Fatalf("lookup RPCs with leases = %d, want few", got)
	}

	uncached := c.NewClient("node0", appCred, 0, false)
	at = 0
	for i := 0; i < 50; i++ {
		at, err = uncached.Create(at, fmt.Sprintf("/w/u%d", i), 0o644)
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := uncached.LookupRPCs(); got != 50 {
		t.Fatalf("uncached lookups = %d, want 50", got)
	}
}

func TestLeaseExpiry(t *testing.T) {
	c := testCluster(t, 2)
	cl := c.NewClient("node0", appCred, 1024, false)
	cl.Mkdir(0, "/w", 0o755)
	cl.Create(0, "/w/f", 0o644)
	before := cl.LookupRPCs()
	// Far beyond the lease TTL, the same stat must re-fetch.
	cl.Stat(vclock.Time(time.Hour), "/w/f")
	if cl.LookupRPCs() <= before {
		t.Fatal("expired lease did not trigger re-lookup")
	}
}

func TestBulkInsertionMode(t *testing.T) {
	c := testCluster(t, 4)
	setup := c.NewClient("node0", appCred, 1024, false)
	setup.Mkdir(0, "/w", 0o755)

	bulk := c.NewClient("node0", appCred, 1024, true)
	at := vclock.Time(0)
	var err error
	const n = 500
	for i := 0; i < n; i++ {
		at, err = bulk.Create(at, fmt.Sprintf("/w/f%06d", i), 0o644)
		if err != nil {
			t.Fatal(err)
		}
	}
	if at, err = bulk.FlushBulk(at); err != nil {
		t.Fatal(err)
	}
	// Every file visible to a normal client afterwards.
	reader := c.NewClient("node1", appCred, 1024, false)
	for i := 0; i < n; i += 37 {
		if _, _, err := reader.Stat(0, fmt.Sprintf("/w/f%06d", i)); err != nil {
			t.Fatalf("bulk file %d invisible: %v", i, err)
		}
	}
	ents, _, err := reader.Readdir(0, "/w")
	if err != nil || len(ents) != n {
		t.Fatalf("readdir after bulk = %d entries, %v", len(ents), err)
	}
}

func TestBulkFasterThanSynchronousInVirtualTime(t *testing.T) {
	// Separate clusters: virtual-time resource schedules persist within
	// a cluster, so the two phases must not share servers.
	const n = 256
	runPhase := func(bulkMode bool) vclock.Time {
		c := testCluster(t, 2)
		setup := c.NewClient("node0", appCred, 1024, false)
		if _, err := setup.Mkdir(0, "/w", 0o755); err != nil {
			t.Fatal(err)
		}
		cl := c.NewClient("node0", appCred, 1024, bulkMode)
		at := vclock.Time(0)
		var err error
		for i := 0; i < n; i++ {
			at, err = cl.Create(at, fmt.Sprintf("/w/f%d", i), 0o644)
			if err != nil {
				t.Fatal(err)
			}
		}
		if bulkMode {
			at, err = cl.FlushBulk(at)
			if err != nil {
				t.Fatal(err)
			}
		}
		return at
	}
	syncTime := runPhase(false)
	bulkTime := runPhase(true)
	if bulkTime*5 >= syncTime {
		t.Fatalf("bulk insertion (%v) should be >5x faster than synchronous (%v)", bulkTime, syncTime)
	}
}

func TestConcurrentClientsSaturateServers(t *testing.T) {
	c := testCluster(t, 4)
	setup := c.NewClient("node0", appCred, 1024, false)
	setup.Mkdir(0, "/w", 0o755)

	const clients = 16
	const per = 50
	var wg sync.WaitGroup
	var wm vclock.Watermark
	pacer := vclock.NewPacer(clients, 0)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			defer pacer.Done(g)
			cl := c.NewClient(fmt.Sprintf("node%d", g%4), appCred, 1024, false)
			cl.Pace(pacer, g)
			now := vclock.Time(0)
			var err error
			for i := 0; i < per; i++ {
				now, err = cl.Create(now, fmt.Sprintf("/w/c%d-f%d", g, i), 0o644)
				if err != nil {
					t.Error(err)
					return
				}
			}
			wm.Observe(now)
		}(g)
	}
	wg.Wait()
	// A single hot directory is bound by its per-server partition
	// critical sections (GIGA+ dirent contention): aggregate throughput
	// approaches servers/PartitionCost and cannot exceed it.
	horizon := wm.Load().Sub(0)
	ops := float64(clients * per)
	got := ops / horizon.Seconds()
	bound := float64(len(c.Servers)) / vclock.Default().PartitionCost.Seconds()
	if got > 1.05*bound {
		t.Fatalf("single-dir create OPS %.0f exceeds the partition bound %.0f", got, bound)
	}
	if got < 0.6*bound {
		t.Fatalf("single-dir create OPS %.0f far below the partition bound %.0f — wrong bottleneck", got, bound)
	}
}

func TestSetStatOverwritesRow(t *testing.T) {
	c := testCluster(t, 2)
	cl := c.NewClient("node0", appCred, 1024, false)
	cl.Mkdir(0, "/w", 0o755)
	cl.Create(0, "/w/f", 0o644)
	st, _, _ := cl.Stat(0, "/w/f")
	st.Size = 777
	if _, err := cl.SetStat(0, "/w/f", st); err != nil {
		t.Fatal(err)
	}
	got, _, err := cl.Stat(0, "/w/f")
	if err != nil || got.Size != 777 {
		t.Fatalf("stat after setattr = %+v, %v", got, err)
	}
	if _, err := cl.SetStat(0, "/w/ghost", st); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("setattr missing = %v", err)
	}
}

func TestDeepChainTraversal(t *testing.T) {
	c := testCluster(t, 4)
	cl := c.NewClient("node0", appCred, 1024, false)
	p := ""
	for i := 0; i < 8; i++ {
		p += fmt.Sprintf("/lvl%d", i)
		if _, err := cl.Mkdir(0, p, 0o755); err != nil {
			t.Fatalf("mkdir %s: %v", p, err)
		}
	}
	if _, err := cl.Create(0, p+"/leaf", 0o644); err != nil {
		t.Fatal(err)
	}
	// A cold client resolves the whole chain.
	cold := c.NewClient("node3", appCred, 0, false)
	st, _, err := cold.Stat(0, p+"/leaf")
	if err != nil || st.Type != fsapi.TypeFile {
		t.Fatalf("deep stat = %+v, %v", st, err)
	}
	if got := cold.LookupRPCs(); got != 9 { // 8 dirs + leaf
		t.Fatalf("cold lookups = %d, want 9", got)
	}
}

func TestRootReaddir(t *testing.T) {
	c := testCluster(t, 2)
	cl := c.NewClient("node0", appCred, 1024, false)
	cl.Mkdir(0, "/a", 0o755)
	cl.Mkdir(0, "/b", 0o755)
	ents, _, err := cl.Readdir(0, "/")
	if err != nil || len(ents) != 2 {
		t.Fatalf("root readdir = %v, %v", ents, err)
	}
}
