// Package indexfs implements the IndexFS-like metadata middleware the
// paper compares against (§II.B, §IV): the namespace is flattened into
// (parent directory ID, name) rows stored in an LSM KV store (LevelDB in
// IndexFS, internal/lsmkv here), directories are partitioned across
// metadata servers co-located with the client nodes, and clients cache
// directory entries with leases ("stateless caching"). Optional bulk
// insertion buffers creates client-side and merges them as SSTables —
// the BatchFS/DeltaFS mode.
//
// Simplification vs IndexFS: leases here bound client cache validity
// only; the server does not block mutations until lease expiry, because
// the looked-up components (directories on a path) are immutable in
// every workload the paper evaluates.
package indexfs

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"pacon/internal/fsapi"
	"pacon/internal/lsmkv"
	"pacon/internal/rpc"
	"pacon/internal/vclock"
	"pacon/internal/vfs"
	"pacon/internal/wire"
)

// RootDirID is the well-known directory ID of "/".
const RootDirID uint64 = 1

// DirID identifies a directory in the flattened namespace.
type DirID = uint64

// entryKey builds the LSM key for (dir, name): 8-byte big-endian dir ID
// (so one directory's rows are a contiguous prefix range) + '/' + name.
func entryKey(dir DirID, name string) []byte {
	k := make([]byte, 0, 9+len(name))
	k = binary.BigEndian.AppendUint64(k, dir)
	k = append(k, '/')
	k = append(k, name...)
	return k
}

// dirPrefix is the scan prefix covering every row of a directory.
func dirPrefix(dir DirID) []byte {
	k := make([]byte, 0, 9)
	k = binary.BigEndian.AppendUint64(k, dir)
	return append(k, '/')
}

// entryValue is the row payload: the stat plus, for directories, the
// child's own directory ID.
func encodeEntry(st fsapi.Stat, child DirID) []byte {
	e := wire.NewEncoder(80 + len(st.Inline))
	fsapi.EncodeStat(e, st)
	e.Uvarint(child)
	return e.Bytes()
}

func decodeEntry(b []byte) (fsapi.Stat, DirID, error) {
	d := wire.NewDecoder(b)
	st := fsapi.DecodeStat(d)
	child := d.Uvarint()
	if err := d.Finish(); err != nil {
		return fsapi.Stat{}, 0, err
	}
	return st, child, nil
}

// ServerConfig configures one IndexFS metadata server.
type ServerConfig struct {
	// Index is this server's position in the deployment (used to
	// allocate globally unique directory IDs).
	Index int
	// Store is the backing LSM options; FS defaults to an in-memory
	// backend.
	Store lsmkv.Options
	// Model supplies service costs; Workers the pool width.
	Model   vclock.LatencyModel
	Workers int
	// LeaseTTL is the dentry lease duration granted to clients.
	LeaseTTL vclock.Duration
}

// Server is one IndexFS metadata server.
type Server struct {
	cfg ServerConfig
	db  *lsmkv.DB
	res *vclock.Resource

	partMu sync.Mutex
	parts  map[DirID]*vclock.Resource // per-directory partition critical section

	nextDir atomic.Uint64

	inserts atomic.Int64
	lookups atomic.Int64
	scans   atomic.Int64
}

// NewServer opens a server (creating its store).
func NewServer(name string, cfg ServerConfig) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Store.FS == nil {
		cfg.Store.FS = vfs.NewMemFS()
	}
	db, err := lsmkv.Open(cfg.Store)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		db:    db,
		res:   vclock.NewResource(name, cfg.Workers),
		parts: make(map[DirID]*vclock.Resource),
	}
	// Directory IDs: high bits carry the server index, low bits a local
	// counter — globally unique without coordination.
	s.nextDir.Store(uint64(cfg.Index)<<40 | 2)
	return s, nil
}

// Close releases the store.
func (s *Server) Close() error { return s.db.Close() }

// Resource exposes the service pool.
func (s *Server) Resource() *vclock.Resource { return s.res }

// DB exposes the LSM store for white-box tests.
func (s *Server) DB() *lsmkv.DB { return s.db }

// ServerStats counts served operations.
type ServerStats struct {
	Inserts, Lookups, Scans int64
}

// Stats returns counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{Inserts: s.inserts.Load(), Lookups: s.lookups.Load(), Scans: s.scans.Load()}
}

// partition returns the directory's partition resource on this server:
// the serialized dirent-block/GIGA+ critical section every insert into
// the directory holds (see vclock.LatencyModel.PartitionCost).
func (s *Server) partition(dir DirID) *vclock.Resource {
	s.partMu.Lock()
	defer s.partMu.Unlock()
	p, ok := s.parts[dir]
	if !ok {
		p = vclock.NewResource(fmt.Sprintf("part-%d", dir), 1)
		s.parts[dir] = p
	}
	return p
}

func (s *Server) get(dir DirID, name string) (fsapi.Stat, DirID, bool, error) {
	v, ok, err := s.db.Get(entryKey(dir, name))
	if err != nil || !ok {
		return fsapi.Stat{}, 0, false, err
	}
	st, child, err := decodeEntry(v)
	if err != nil {
		return fsapi.Stat{}, 0, false, err
	}
	return st, child, true, nil
}

// Service exposes the server's RPC methods.
func (s *Server) Service() *rpc.Service {
	svc := rpc.NewService()

	// lookup: (dir, name) → (stat, childDirID, leaseTTL).
	svc.Handle("lookup", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		dir := d.Uint64()
		name := d.String()
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		s.lookups.Add(1)
		st, child, ok, err := s.get(dir, name)
		cost := s.cfg.Model.LSMGetHitCost
		if !ok {
			cost = s.cfg.Model.LSMGetMissCost
		}
		done := s.res.Acquire(at, cost)
		if err != nil {
			return done, nil, err
		}
		if !ok {
			return done, nil, fsapi.ErrNotExist
		}
		e := wire.NewEncoder(96)
		fsapi.EncodeStat(e, st)
		e.Uvarint(child)
		e.Int64(int64(s.cfg.LeaseTTL))
		return done, e.Bytes(), nil
	})

	// lookup_batch: resolve a batch of (dir, name) entries in one round
	// trip (the read-path analogue of "bulk"): per-entry result codes,
	// one service acquisition for the summed LSM-get cost.
	svc.Handle("lookup_batch", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		n := d.Uvarint()
		type req struct {
			dir  DirID
			name string
		}
		reqs := make([]req, 0, n)
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			reqs = append(reqs, req{dir: d.Uint64(), name: d.String()})
		}
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		s.lookups.Add(int64(len(reqs)))
		e := wire.NewEncoder(112 * len(reqs))
		e.Uvarint(uint64(len(reqs)))
		var cost vclock.Duration
		for _, rq := range reqs {
			st, child, ok, err := s.get(rq.dir, rq.name)
			if !ok && err == nil {
				err = fsapi.ErrNotExist
			}
			if ok {
				cost += s.cfg.Model.LSMGetHitCost
			} else {
				cost += s.cfg.Model.LSMGetMissCost
			}
			e.Byte(fsapi.CodeOf(err))
			if err == nil {
				fsapi.EncodeStat(e, st)
				e.Uvarint(child)
				e.Int64(int64(s.cfg.LeaseTTL))
			}
		}
		done := s.res.Acquire(at, cost)
		return done, e.Bytes(), nil
	})

	// create / mkdir: (dir, name, stat) → childDirID (0 for files).
	insert := func(mkdir bool) rpc.Handler {
		return func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
			d := wire.NewDecoder(body)
			dir := d.Uint64()
			name := d.String()
			st := fsapi.DecodeStat(d)
			if err := d.Finish(); err != nil {
				return at, nil, err
			}
			s.inserts.Add(1)
			// Existence check (bloom-filtered miss in the common case) +
			// WAL/memtable insert on the pool, then the directory's
			// partition critical section.
			done := s.res.Acquire(at, s.cfg.Model.LSMGetMissCost+s.cfg.Model.LSMPutCost)
			done = s.partition(dir).Acquire(done, s.cfg.Model.PartitionCost)
			key := entryKey(dir, name)
			if _, ok, err := s.db.Get(key); err != nil {
				return done, nil, err
			} else if ok {
				return done, nil, fsapi.ErrExist
			}
			var child DirID
			if mkdir {
				child = s.nextDir.Add(1)
				st.Type = fsapi.TypeDir
			} else {
				st.Type = fsapi.TypeFile
			}
			if err := s.db.Put(key, encodeEntry(st, child)); err != nil {
				return done, nil, err
			}
			e := wire.NewEncoder(9)
			e.Uvarint(child)
			return done, e.Bytes(), nil
		}
	}
	svc.Handle("create", insert(false))
	svc.Handle("mkdir", insert(true))

	// setattr: overwrite an existing row's stat.
	svc.Handle("setattr", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		dir := d.Uint64()
		name := d.String()
		st := fsapi.DecodeStat(d)
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		done := s.res.Acquire(at, s.cfg.Model.LSMGetHitCost+s.cfg.Model.LSMPutCost)
		old, child, ok, err := s.get(dir, name)
		if err != nil {
			return done, nil, err
		}
		if !ok {
			return done, nil, fsapi.ErrNotExist
		}
		st.Type = old.Type
		return done, nil, s.db.Put(entryKey(dir, name), encodeEntry(st, child))
	})

	// remove: delete a file row.
	svc.Handle("remove", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		dir := d.Uint64()
		name := d.String()
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		done := s.res.Acquire(at, s.cfg.Model.LSMGetHitCost+s.cfg.Model.LSMPutCost)
		done = s.partition(dir).Acquire(done, s.cfg.Model.PartitionCost)
		st, _, ok, err := s.get(dir, name)
		if err != nil {
			return done, nil, err
		}
		if !ok {
			return done, nil, fsapi.ErrNotExist
		}
		if st.IsDir() {
			return done, nil, fsapi.ErrIsDir
		}
		return done, nil, s.db.Delete(entryKey(dir, name))
	})

	// removedir: delete a directory row (the emptiness check runs
	// against the child dir's owner via "empty").
	svc.Handle("removedir", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		dir := d.Uint64()
		name := d.String()
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		done := s.res.Acquire(at, s.cfg.Model.LSMGetHitCost+s.cfg.Model.LSMPutCost)
		done = s.partition(dir).Acquire(done, s.cfg.Model.PartitionCost)
		st, _, ok, err := s.get(dir, name)
		if err != nil {
			return done, nil, err
		}
		if !ok {
			return done, nil, fsapi.ErrNotExist
		}
		if !st.IsDir() {
			return done, nil, fsapi.ErrNotDir
		}
		return done, nil, s.db.Delete(entryKey(dir, name))
	})

	// empty: does the directory with this ID have any rows here?
	svc.Handle("empty", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		dir := d.Uint64()
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		done := s.res.Acquire(at, s.cfg.Model.LSMGetHitCost)
		it := s.db.Scan(dirPrefix(dir))
		empty := !it.Next()
		if err := it.Err(); err != nil {
			return done, nil, err
		}
		e := wire.NewEncoder(1)
		e.Bool(empty)
		return done, e.Bytes(), nil
	})

	// readdir: list a directory's rows.
	svc.Handle("readdir", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		dir := d.Uint64()
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		s.scans.Add(1)
		prefix := dirPrefix(dir)
		it := s.db.Scan(prefix)
		e := wire.NewEncoder(256)
		n := 0
		var entries []fsapi.DirEntry
		for it.Next() {
			st, _, derr := decodeEntry(it.Value())
			if derr != nil {
				return at, nil, derr
			}
			entries = append(entries, fsapi.DirEntry{Name: string(it.Key()[len(prefix):]), Type: st.Type})
			n++
		}
		if err := it.Err(); err != nil {
			return at, nil, err
		}
		done := s.res.Acquire(at, s.cfg.Model.LSMGetHitCost+vclock.Duration(n)*s.cfg.Model.LSMScanEntryCost)
		e.Uvarint(uint64(n))
		for _, ent := range entries {
			e.String(ent.Name)
			e.Byte(byte(ent.Type))
		}
		return done, e.Bytes(), nil
	})

	// bulk: ingest pre-sorted rows (bulk insertion / BatchFS mode).
	svc.Handle("bulk", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		n := d.Uvarint()
		pairs := make([]lsmkv.KV, 0, n)
		for i := uint64(0); i < n; i++ {
			k := d.Blob()
			v := d.Blob()
			pairs = append(pairs, lsmkv.KV{Key: k, Value: v})
		}
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		s.inserts.Add(int64(n))
		// Bulk ingestion amortizes the WAL: one table write for the batch.
		done := s.res.Acquire(at, s.cfg.Model.LSMPutCost+vclock.Duration(n)*s.cfg.Model.LSMScanEntryCost)
		return done, nil, s.db.BulkIngest(pairs)
	})

	return svc
}
