// Package audit implements Pacon's cache↔DFS divergence auditor: an
// online scrubber that samples committed (clean) keys from the region's
// distributed cache and compares them against the authoritative DFS
// state. Pacon's partial consistency promises a *bounded* window in
// which the DFS backup copy trails the cache's primary copy; the
// auditor measures whether that promise holds. Each sampled key is
// classified as
//
//   - match:         region view and DFS agree;
//   - stale-pending: they disagree, but an operation for the key is
//     still in some node's commit pipeline — the disagreement is the
//     inconsistency window working as designed, and the finding carries
//     the in-flight op's age;
//   - divergent:     they disagree and nothing is in flight to repair
//     it — a real consistency violation (lost commit, external
//     mutation, a bug).
//
// The comparison deliberately reuses the production read paths on both
// sides: Client.StatMulti (the batched cache read) for the region view
// and Client.StatBackend (the batched authoritative miss-load) for the
// DFS, so an audit exercises exactly the code applications trust.
//
// On a quiesced (drained) region every sampled key must be a match; the
// chaos harness runs the auditor after each fault schedule as a
// correctness oracle.
package audit

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"pacon/internal/core"
	"pacon/internal/fsapi"
	"pacon/internal/vclock"
)

// Verdict classifies one audited key.
type Verdict int

const (
	Match Verdict = iota
	StalePending
	Divergent
)

func (v Verdict) String() string {
	switch v {
	case Match:
		return "match"
	case StalePending:
		return "stale-pending"
	case Divergent:
		return "divergent"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// MarshalText renders the verdict by name in JSON reports.
func (v Verdict) MarshalText() ([]byte, error) { return []byte(v.String()), nil }

// Finding is one non-match key with its classification.
type Finding struct {
	Path    string  `json:"path"`
	Verdict Verdict `json:"verdict"`
	// AgeNS is how long the key's oldest in-flight op has been pending
	// (stale-pending; 0 when observability is disabled) — the staleness
	// age of the disagreement.
	AgeNS int64 `json:"age_ns,omitempty"`
	// Detail says what disagreed (missing on DFS, size mismatch, ...).
	Detail string `json:"detail,omitempty"`
}

// Report is one audit run's outcome.
type Report struct {
	// Wall is the unix-ns wall-clock completion time of the run.
	Wall         int64 `json:"wall_ns"`
	Sampled      int   `json:"sampled"`
	Matched      int   `json:"matched"`
	StalePending int   `json:"stale_pending"`
	Divergent    int   `json:"divergent"`
	// Findings lists every non-match key, sorted by path.
	Findings []Finding `json:"findings,omitempty"`
}

// Clean reports whether the run found no divergence. Stale-pending keys
// are clean: they are the bounded window, not a violation.
func (r Report) Clean() bool { return r.Divergent == 0 }

// String renders a one-look summary plus the worst findings.
func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "audit: %d sampled — %d match, %d stale-pending, %d divergent",
		r.Sampled, r.Matched, r.StalePending, r.Divergent)
	for i, f := range r.Findings {
		if i >= 10 {
			fmt.Fprintf(&sb, "\n  ... and %d more", len(r.Findings)-i)
			break
		}
		fmt.Fprintf(&sb, "\n  %-13s %s", f.Verdict, f.Path)
		if f.Detail != "" {
			fmt.Fprintf(&sb, " (%s)", f.Detail)
		}
		if f.AgeNS > 0 {
			fmt.Fprintf(&sb, " age=%s", time.Duration(f.AgeNS))
		}
	}
	return sb.String()
}

// Config tunes one audit run.
type Config struct {
	// SampleLimit caps how many committed keys are sampled; <= 0 audits
	// every committed entry resident in the cache.
	SampleLimit int
}

// Run performs one audit through cl. It charges virtual time like any
// client reads (the sampling itself is server-side and free), records
// its verdict with the region for Health, and returns the report.
func Run(cl *core.Client, at vclock.Time, cfg Config) (Report, vclock.Time, error) {
	region := cl.Region()
	entries := region.SampleCommitted(cfg.SampleLimit)
	paths := make([]string, len(entries))
	large := make(map[string]bool, len(entries))
	for i, e := range entries {
		paths[i] = e.Path
		if e.Large {
			large[e.Path] = true
		}
	}

	rep := Report{Sampled: len(entries)}
	var findings []Finding
	if len(paths) > 0 {
		cacheRes, done, err := cl.StatMulti(at, paths)
		at = done
		if err != nil {
			return rep, at, err
		}
		backRes, done := cl.StatBackend(at, paths)
		at = done

		// First pass: every disagreement with an op still in flight is
		// stale-pending; the rest are divergence *candidates*.
		var candidates []int
		for i, p := range paths {
			detail := compare(cacheRes[i], backRes[i], large[p])
			if detail == "" {
				rep.Matched++
				continue
			}
			if region.PathPending(p) {
				findings = append(findings, Finding{
					Path: p, Verdict: StalePending, AgeNS: region.OldestPendingAge(p), Detail: detail,
				})
				continue
			}
			candidates = append(candidates, i)
		}

		// Second look at the candidates: a key can reach here through a
		// benign race — its op committed (and left the pending trackers)
		// between our DFS read and the pending check, or a new write
		// landed after the sample. Re-reading both sides now and
		// re-checking pending separates those from real divergence.
		for _, i := range candidates {
			p := paths[i]
			cr, done, err := cl.StatMulti(at, []string{p})
			at = done
			if err != nil {
				return rep, at, err
			}
			br, done := cl.StatBackend(at, []string{p})
			at = done
			detail := compare(cr[0], br[0], large[p])
			if detail == "" {
				rep.Matched++
				continue
			}
			if region.PathPending(p) {
				findings = append(findings, Finding{
					Path: p, Verdict: StalePending, AgeNS: region.OldestPendingAge(p), Detail: detail,
				})
				continue
			}
			findings = append(findings, Finding{Path: p, Verdict: Divergent, Detail: detail})
		}
	}

	sort.Slice(findings, func(i, j int) bool { return findings[i].Path < findings[j].Path })
	for _, f := range findings {
		switch f.Verdict {
		case StalePending:
			rep.StalePending++
		case Divergent:
			rep.Divergent++
		}
	}
	rep.Findings = findings
	rep.Wall = time.Now().UnixNano()
	region.RecordAudit(core.AuditVerdict{
		Wall:         rep.Wall,
		Sampled:      rep.Sampled,
		Matched:      rep.Matched,
		StalePending: rep.StalePending,
		Divergent:    rep.Divergent,
	})
	return rep, at, nil
}

// compare returns "" when the region view and the DFS agree, else a
// description of the disagreement. Comparison rules follow the chaos
// oracle: kind must match; size is compared only for small regular
// files (a Large file's authoritative size lives on the DFS data path,
// and directory sizes are DFS-implementation-defined).
func compare(cache, dfs fsapi.StatResult, large bool) string {
	cacheAbsent := cache.Err != nil && errors.Is(cache.Err, fsapi.ErrNotExist)
	dfsAbsent := dfs.Err != nil && errors.Is(dfs.Err, fsapi.ErrNotExist)
	switch {
	case cache.Err != nil && !cacheAbsent:
		return fmt.Sprintf("region read failed: %v", cache.Err)
	case dfs.Err != nil && !dfsAbsent:
		return fmt.Sprintf("DFS read failed: %v", dfs.Err)
	case cacheAbsent && dfsAbsent:
		return "" // absent on both sides is agreement
	case dfsAbsent:
		return "missing on DFS"
	case cacheAbsent:
		return "absent in region view but present on DFS"
	case cache.Stat.IsDir() != dfs.Stat.IsDir():
		return fmt.Sprintf("kind mismatch: region %v, DFS %v", cache.Stat.Type, dfs.Stat.Type)
	case !cache.Stat.IsDir() && !large && cache.Stat.Size != dfs.Stat.Size:
		return fmt.Sprintf("size mismatch: region %d, DFS %d", cache.Stat.Size, dfs.Stat.Size)
	}
	return ""
}

// Auditor runs paced audits: MaybeRun is cheap to call from any
// convenient point (a metrics scrape, a request path) and performs a
// real audit at most once per MinInterval of wall time.
type Auditor struct {
	cl  *core.Client
	cfg Config
	// MinInterval is the minimum wall-clock spacing between runs
	// (default 5s).
	MinInterval time.Duration

	mu       sync.Mutex
	lastWall int64
	last     Report
	ran      bool
}

// NewAuditor builds a paced auditor over cl.
func NewAuditor(cl *core.Client, cfg Config) *Auditor {
	return &Auditor{cl: cl, cfg: cfg, MinInterval: 5 * time.Second}
}

// MaybeRun audits if MinInterval has elapsed since the previous run.
// ran=false means the pacer suppressed it (at is returned unchanged,
// rep is the previous report if any).
func (a *Auditor) MaybeRun(at vclock.Time) (rep Report, done vclock.Time, ran bool, err error) {
	a.mu.Lock()
	now := time.Now().UnixNano()
	if a.ran && now-a.lastWall < int64(a.MinInterval) {
		rep = a.last
		a.mu.Unlock()
		return rep, at, false, nil
	}
	a.mu.Unlock()

	rep, done, err = Run(a.cl, at, a.cfg)
	if err != nil {
		return rep, done, false, err
	}
	a.mu.Lock()
	a.lastWall = now
	a.last = rep
	a.ran = true
	a.mu.Unlock()
	return rep, done, true, nil
}

// Last returns the most recent report, if any run has completed.
func (a *Auditor) Last() (Report, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.last, a.ran
}
