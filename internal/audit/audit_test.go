package audit

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"pacon/internal/core"
	"pacon/internal/dfs"
	"pacon/internal/fsapi"
	"pacon/internal/rpc"
	"pacon/internal/vclock"
)

var (
	rootCred = fsapi.Cred{UID: 0, GID: 0}
	appCred  = fsapi.Cred{UID: 1000, GID: 1000}
)

// newTestRegion builds a one-node region over a DFS cluster; wrap (when
// non-nil) decorates every backend the region builds.
func newTestRegion(t *testing.T, wrap func(core.Backend) core.Backend) (*core.Region, *core.Client) {
	t.Helper()
	bus := rpc.NewBus()
	model := vclock.Default()
	cluster := dfs.NewCluster(bus, model, rootCred, "storage0", []string{"storage1"})
	admin := cluster.NewClient("admin", rootCred, 0, 0)
	if _, err := admin.Mkdir(0, "/w", 0o777); err != nil {
		t.Fatal(err)
	}
	region, err := core.NewRegion(core.RegionConfig{
		Name:      "audit",
		Workspace: "/w",
		Nodes:     []string{"node0"},
		Cred:      appCred,
		Model:     model,
	}, core.Deps{
		Bus: bus,
		NewBackend: func(node string) core.Backend {
			b := core.Backend(cluster.NewClient(node, appCred, 4096, vclock.Duration(time.Hour)))
			if wrap != nil {
				b = wrap(b)
			}
			return b
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { region.Close() })
	cl, err := region.NewClient("node0")
	if err != nil {
		t.Fatal(err)
	}
	return region, cl
}

// TestQuiescedAuditAllMatch: after a drain every sampled committed key
// must match the DFS — the paconfs-audit acceptance bar.
func TestQuiescedAuditAllMatch(t *testing.T) {
	region, cl := newTestRegion(t, nil)
	var at vclock.Time
	var err error
	if at, err = cl.Mkdir(at, "/w/dir", 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if at, err = cl.Create(at, fmt.Sprintf("/w/dir/f%d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	at, err = region.Drain(at)
	if err != nil {
		t.Fatal(err)
	}

	rep, _, err := Run(cl, at, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sampled == 0 {
		t.Fatal("audit sampled nothing on a populated region")
	}
	if rep.Matched != rep.Sampled || rep.Divergent != 0 || rep.StalePending != 0 {
		t.Fatalf("quiesced audit not 100%% match: %s", rep)
	}
	if !rep.Clean() {
		t.Fatal("Clean() false on a matching report")
	}
	v, ok := region.LastAudit()
	if !ok || v.Sampled != rep.Sampled || v.Divergent != 0 {
		t.Fatalf("verdict not recorded with the region: %+v ok=%v", v, ok)
	}
	if h := region.Health(core.HealthThresholds{}); h.Status != core.HealthOK {
		t.Fatalf("health %v after clean audit, want ok (%v)", h.Status, h.Reasons)
	}
}

// skipBackend is the deliberately broken commit: creations report
// success without ever reaching the DFS. The cache ends up with clean
// entries that have no backing — exactly the lost-commit failure mode
// the auditor exists to catch.
type skipBackend struct {
	core.Backend
}

func (s *skipBackend) CreateWithStat(at vclock.Time, p string, st fsapi.Stat) (vclock.Time, error) {
	return at, nil // lie: committed nothing
}

func (s *skipBackend) ApplyBatch(at vclock.Time, ops []fsapi.BatchOp) ([]error, vclock.Time, error) {
	return make([]error, len(ops)), at, nil // lie: all ops "applied"
}

// StatFresh/StatBatch/InvalidateSubtree must be forwarded explicitly —
// interface embedding does not promote the wrapped client's
// non-interface methods, and the auditor's ground-truth read depends on
// them staying authoritative.
func (s *skipBackend) StatFresh(at vclock.Time, p string) (fsapi.Stat, vclock.Time, error) {
	if f, ok := s.Backend.(interface {
		StatFresh(vclock.Time, string) (fsapi.Stat, vclock.Time, error)
	}); ok {
		return f.StatFresh(at, p)
	}
	return s.Backend.Stat(at, p)
}

func (s *skipBackend) StatBatch(at vclock.Time, paths []string) ([]fsapi.StatResult, vclock.Time, error) {
	if b, ok := s.Backend.(interface {
		StatBatch(vclock.Time, []string) ([]fsapi.StatResult, vclock.Time, error)
	}); ok {
		return b.StatBatch(at, paths)
	}
	return nil, at, errors.New("no batch capability")
}

func (s *skipBackend) InvalidateSubtree(root string) {
	if inv, ok := s.Backend.(interface{ InvalidateSubtree(string) }); ok {
		inv.InvalidateSubtree(root)
	}
}

// TestCommitSkipFaultDetected: the injected commit-skip fault must
// surface as divergent findings and push region health to stalled.
func TestCommitSkipFaultDetected(t *testing.T) {
	region, cl := newTestRegion(t, func(b core.Backend) core.Backend {
		return &skipBackend{Backend: b}
	})
	var at vclock.Time
	var err error
	for i := 0; i < 5; i++ {
		if at, err = cl.Create(at, fmt.Sprintf("/w/lost%d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	at, err = region.Drain(at)
	if err != nil {
		t.Fatal(err)
	}

	rep, _, err := Run(cl, at, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Divergent == 0 {
		t.Fatalf("commit-skip fault not detected: %s", rep)
	}
	if rep.Clean() {
		t.Fatal("Clean() true with divergent keys")
	}
	found := false
	for _, f := range rep.Findings {
		if f.Verdict == Divergent && strings.Contains(f.Detail, "missing on DFS") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no divergent missing-on-DFS finding: %s", rep)
	}
	if h := region.Health(core.HealthThresholds{}); h.Status != core.HealthStalled {
		t.Fatalf("health %v after divergent audit, want stalled", h.Status)
	}
	if !strings.Contains(rep.String(), "divergent") {
		t.Fatalf("report summary does not mention divergence: %s", rep)
	}
}

// TestSampleLimit caps the audited key count.
func TestSampleLimit(t *testing.T) {
	region, cl := newTestRegion(t, nil)
	var at vclock.Time
	var err error
	for i := 0; i < 10; i++ {
		if at, err = cl.Create(at, fmt.Sprintf("/w/s%d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	at, err = region.Drain(at)
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := Run(cl, at, Config{SampleLimit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sampled != 3 {
		t.Fatalf("sampled %d keys with limit 3", rep.Sampled)
	}
	if rep.Matched != 3 {
		t.Fatalf("limited audit not clean: %s", rep)
	}
}

// TestAuditorPacer: MaybeRun must audit at most once per MinInterval.
func TestAuditorPacer(t *testing.T) {
	region, cl := newTestRegion(t, nil)
	var at vclock.Time
	at, err := cl.Create(at, "/w/paced", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if at, err = region.Drain(at); err != nil {
		t.Fatal(err)
	}

	a := NewAuditor(cl, Config{})
	if _, ok := a.Last(); ok {
		t.Fatal("Last() reports a run before any happened")
	}
	rep, at, ran, err := a.MaybeRun(at)
	if err != nil || !ran {
		t.Fatalf("first MaybeRun: ran=%v err=%v", ran, err)
	}
	if rep.Sampled == 0 {
		t.Fatal("paced audit sampled nothing")
	}
	if _, _, ran, _ := a.MaybeRun(at); ran {
		t.Fatal("second MaybeRun inside MinInterval still ran")
	}
	a.MinInterval = 0
	if _, _, ran, _ := a.MaybeRun(at); !ran {
		t.Fatal("MaybeRun with zero interval suppressed")
	}
	if last, ok := a.Last(); !ok || last.Sampled == 0 {
		t.Fatalf("Last() lost the report: %+v ok=%v", last, ok)
	}
}

// TestCompareClassification pins the per-key comparison rules.
func TestCompareClassification(t *testing.T) {
	file := func(size int64) fsapi.StatResult {
		return fsapi.StatResult{Stat: fsapi.Stat{Type: fsapi.TypeFile, Size: size}}
	}
	dir := fsapi.StatResult{Stat: fsapi.Stat{Type: fsapi.TypeDir}}
	absent := fsapi.StatResult{Err: fsapi.ErrNotExist}
	cases := []struct {
		name        string
		cache, dfs  fsapi.StatResult
		large, want bool // want: agreement
	}{
		{"equal files", file(7), file(7), false, true},
		{"both absent", absent, absent, false, true},
		{"missing on dfs", file(7), absent, false, false},
		{"missing in region", absent, file(7), false, false},
		{"kind mismatch", file(0), dir, false, false},
		{"size mismatch", file(7), file(9), false, false},
		{"size ignored for large", file(7), file(9), true, true},
		{"dir sizes ignored", dir, dir, false, true},
	}
	for _, tc := range cases {
		if got := compare(tc.cache, tc.dfs, tc.large) == ""; got != tc.want {
			t.Errorf("%s: agreement=%v, want %v (detail %q)",
				tc.name, got, tc.want, compare(tc.cache, tc.dfs, tc.large))
		}
	}
}
