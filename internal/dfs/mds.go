// Package dfs is the BeeGFS-like distributed file system the experiments
// deploy Pacon on: a centralized metadata server (MDS) holding the
// global namespace, a set of data servers striping file contents, and a
// client library that resolves paths component by component against the
// MDS — the synchronous, traversal-heavy metadata path whose saturation
// the paper's Figures 1, 2, 7 and 11 measure.
package dfs

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"pacon/internal/fsapi"
	"pacon/internal/namespace"
	"pacon/internal/rpc"
	"pacon/internal/vclock"
	"pacon/internal/wire"
)

// MDS is the centralized metadata server. All metadata operations pass
// through its single service pool (cfg.Model.MDSWorkers wide), which is
// what limits client scalability in the BeeGFS baseline.
type MDS struct {
	tree  *namespace.Tree
	model vclock.LatencyModel
	res   *vclock.Resource

	lookups atomic.Int64
	reads   atomic.Int64
	writes  atomic.Int64

	// Cross-shard intent log (shardrpc.go): subtree root → protocol id.
	// intentN gates the per-op overlap check so deployments that never
	// shard (or never rename across shards) pay one atomic load.
	intentN  atomic.Int32
	intentMu sync.Mutex
	intents  map[string]uint64
}

// NewMDS creates a metadata server whose root is owned by cred.
func NewMDS(name string, model vclock.LatencyModel, cred fsapi.Cred) *MDS {
	return NewMDSWithTree(name, model, namespace.NewTree(cred))
}

// NewMDSWithTree creates a metadata server over an existing namespace —
// the multi-MDS deployment (paper §II.B / §V: BeeGFS, Lustre and CephFS
// scale the metadata service cluster): servers share the namespace state
// while each contributes its own service pool, and clients spread
// requests across them by path hash.
func NewMDSWithTree(name string, model vclock.LatencyModel, tree *namespace.Tree) *MDS {
	workers := model.MDSWorkers
	if workers <= 0 {
		workers = 4
	}
	return &MDS{
		tree:  tree,
		model: model,
		res:   vclock.NewResource(name, workers),
	}
}

// Tree exposes the namespace for white-box assertions in tests and for
// checkpoint verification.
func (m *MDS) Tree() *namespace.Tree { return m.tree }

// Resource exposes the MDS service pool for utilization reporting.
func (m *MDS) Resource() *vclock.Resource { return m.res }

// MDSStats reports served op counts.
type MDSStats struct {
	Lookups, Reads, Writes int64
}

// Stats returns counters.
func (m *MDS) Stats() MDSStats {
	return MDSStats{Lookups: m.lookups.Load(), Reads: m.reads.Load(), Writes: m.writes.Load()}
}

// lookupCost models a dentry lookup at the given path depth: deeper
// entries are colder in the MDS-local file system (DESIGN.md §5), which
// is what makes the paper's Fig 2 loss super-linear.
func (m *MDS) lookupCost(depth int) vclock.Duration {
	return m.model.MDSReadCost + vclock.Duration(depth)*m.model.MDSLookupDepthCost
}

// checkParentWritable enforces the write permission on a mutation's
// parent directory.
func (m *MDS) checkParentWritable(op, p string, cred fsapi.Cred) error {
	dir, _ := namespace.Split(p)
	st, err := m.tree.Lookup(dir)
	if err != nil {
		return err
	}
	if !st.IsDir() {
		return fsapi.WrapPath(op, p, fsapi.ErrNotDir)
	}
	if !st.Mode.Allows(cred.ClassFor(st.UID, st.GID), fsapi.WantWrite|fsapi.WantExec) {
		return fsapi.WrapPath(op, p, fsapi.ErrPermission)
	}
	return nil
}

// applyOne applies a single batched mutation, mirroring the semantics of
// the corresponding singleton handler exactly.
func (m *MDS) applyOne(op fsapi.BatchOp, cred fsapi.Cred) error {
	if err := m.intentBlocked("apply", op.Path); err != nil {
		return err
	}
	switch op.Kind {
	case fsapi.BatchCreate:
		if m.tree.Exists(op.Path) {
			return fsapi.WrapPath("create", op.Path, fsapi.ErrExist)
		}
		if err := m.checkParentWritable("create", op.Path, cred); err != nil {
			return err
		}
		return m.tree.Create(op.Path, op.Stat)
	case fsapi.BatchMkdir:
		if m.tree.Exists(op.Path) {
			return fsapi.WrapPath("mkdir", op.Path, fsapi.ErrExist)
		}
		if err := m.checkParentWritable("mkdir", op.Path, cred); err != nil {
			return err
		}
		return m.tree.Mkdir(op.Path, op.Stat)
	case fsapi.BatchSetStat:
		return m.tree.SetStat(op.Path, op.Stat)
	case fsapi.BatchRemove:
		if err := m.checkParentWritable("remove", op.Path, cred); err != nil {
			return err
		}
		err := m.tree.Remove(op.Path)
		if op.IfExists && errors.Is(err, fsapi.ErrNotExist) {
			// Net-absence remove: the coalescer folded a create+remove
			// pair, so the object may never have reached the DFS.
			return nil
		}
		return err
	default:
		return fsapi.WrapPath("apply_batch", op.Path, fmt.Errorf("unknown batch op kind %d", op.Kind))
	}
}

// Service exposes the MDS RPC methods.
func (m *MDS) Service() *rpc.Service {
	svc := rpc.NewService()

	// lookup: resolve one path (used per component by the client). The
	// service cost grows with the looked-up depth.
	svc.Handle("lookup", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		p := d.String()
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		m.lookups.Add(1)
		done := m.res.Acquire(at, m.lookupCost(namespace.Depth(p)))
		st, err := m.tree.Lookup(p)
		if err != nil {
			return done, nil, err
		}
		return done, fsapi.MarshalStat(st), nil
	})

	// stat_batch: resolve a batch of paths in one round trip — the
	// bulk miss-load of Pacon's read path. Each path reports its own
	// result code; the service pool is held once for the batch, but the
	// per-path lookup work (depth-dependent, like "lookup") still
	// accumulates.
	svc.Handle("stat_batch", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		paths := d.Strings()
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		m.lookups.Add(int64(len(paths)))
		var cost vclock.Duration
		for _, p := range paths {
			cost += m.lookupCost(namespace.Depth(p))
		}
		done := m.res.Acquire(at, cost)
		e := wire.NewEncoder(8 + 96*len(paths))
		e.Uvarint(uint64(len(paths)))
		for _, p := range paths {
			st, err := m.tree.Lookup(p)
			code := fsapi.CodeOf(err)
			e.Byte(code)
			if code == fsapi.CodeOK {
				fsapi.EncodeStat(e, st)
			} else if code == fsapi.CodeOther && err != nil {
				e.String(err.Error())
			} else {
				e.String("")
			}
		}
		return done, e.Bytes(), nil
	})

	// mutation ops: create, mkdir, setstat, remove, rmdir.
	mutate := func(op string, fn func(p string, cred fsapi.Cred, st fsapi.Stat) error) rpc.Handler {
		return func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
			d := wire.NewDecoder(body)
			p := d.String()
			cred := fsapi.Cred{UID: d.Uint32(), GID: d.Uint32()}
			st := fsapi.DecodeStat(d)
			if err := d.Finish(); err != nil {
				return at, nil, err
			}
			m.writes.Add(1)
			done := m.res.Acquire(at, m.model.MDSWriteCost)
			if err := m.intentBlocked(op, p); err != nil {
				return done, nil, err
			}
			return done, nil, fn(p, cred, st)
		}
	}
	svc.Handle("create", mutate("create", func(p string, cred fsapi.Cred, st fsapi.Stat) error {
		// Existence first (POSIX: mkdir/creat of an existing name is
		// EEXIST even in an unwritable parent).
		if m.tree.Exists(p) {
			return fsapi.WrapPath("create", p, fsapi.ErrExist)
		}
		if err := m.checkParentWritable("create", p, cred); err != nil {
			return err
		}
		return m.tree.Create(p, st)
	}))
	svc.Handle("mkdir", mutate("mkdir", func(p string, cred fsapi.Cred, st fsapi.Stat) error {
		if m.tree.Exists(p) {
			return fsapi.WrapPath("mkdir", p, fsapi.ErrExist)
		}
		if err := m.checkParentWritable("mkdir", p, cred); err != nil {
			return err
		}
		return m.tree.Mkdir(p, st)
	}))
	svc.Handle("setstat", mutate("setstat", func(p string, cred fsapi.Cred, st fsapi.Stat) error {
		return m.tree.SetStat(p, st)
	}))
	svc.Handle("remove", mutate("remove", func(p string, cred fsapi.Cred, _ fsapi.Stat) error {
		if err := m.checkParentWritable("remove", p, cred); err != nil {
			return err
		}
		return m.tree.Remove(p)
	}))
	svc.Handle("rmdir", mutate("rmdir", func(p string, cred fsapi.Cred, _ fsapi.Stat) error {
		if err := m.checkParentWritable("rmdir", p, cred); err != nil {
			return err
		}
		return m.tree.Rmdir(p)
	}))

	// apply_batch: a batch of independent-path mutations in one round
	// trip — the batched commit path of Pacon's commit module. Each op is
	// applied independently and reports its own result code; the batch
	// succeeds at the RPC level even when individual ops fail, so one
	// ErrExist does not force the whole batch through the retry path.
	svc.Handle("apply_batch", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		cred := fsapi.Cred{UID: d.Uint32(), GID: d.Uint32()}
		n := int(d.Uvarint())
		ops := make([]fsapi.BatchOp, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			op := fsapi.BatchOp{Kind: fsapi.BatchKind(d.Byte())}
			op.IfExists = d.Bool()
			op.Path = d.String()
			op.Stat = fsapi.DecodeStat(d)
			ops = append(ops, op)
		}
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		m.writes.Add(int64(len(ops)))
		// The service pool is held once for the whole batch: server-side
		// work still scales with the op count, but the per-request
		// dispatch overhead is paid once.
		done := m.res.Acquire(at, m.model.MDSWriteCost*vclock.Duration(len(ops)))
		e := wire.NewEncoder(8 + 2*len(ops))
		e.Uvarint(uint64(len(ops)))
		for _, op := range ops {
			err := m.applyOne(op, cred)
			code := fsapi.CodeOf(err)
			e.Byte(code)
			if code == fsapi.CodeOther && err != nil {
				e.String(err.Error())
			} else {
				e.String("")
			}
		}
		return done, e.Bytes(), nil
	})

	// rename: move a file or subtree (extension; the paper's evaluation
	// never renames, but the substrate supports it so Pacon can treat it
	// as a dependent operation).
	svc.Handle("rename", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		src := d.String()
		dst := d.String()
		cred := fsapi.Cred{UID: d.Uint32(), GID: d.Uint32()}
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		m.writes.Add(1)
		done := m.res.Acquire(at, m.model.MDSWriteCost)
		if err := m.intentBlocked("rename", src); err != nil {
			return done, nil, err
		}
		if err := m.intentBlocked("rename", dst); err != nil {
			return done, nil, err
		}
		if err := m.checkParentWritable("rename", src, cred); err != nil {
			return done, nil, err
		}
		if err := m.checkParentWritable("rename", dst, cred); err != nil {
			return done, nil, err
		}
		return done, nil, m.tree.Rename(src, dst)
	})

	// rmtree: recursive removal, used by Pacon's commit module for
	// directory removal. Returns the removed paths (the commit module
	// mirrors the cleanup into the distributed cache). Cost scales with
	// the subtree size.
	svc.Handle("rmtree", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		p := d.String()
		cred := fsapi.Cred{UID: d.Uint32(), GID: d.Uint32()}
		// A multi-shard sweep brackets itself with an intent on p; the
		// optional trailing id lets that sweep pass its own barrier.
		var selfID uint64
		if d.Remaining() > 0 {
			selfID = d.Uvarint()
		}
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		m.writes.Add(1)
		if err := m.intentBlockedExcept("rmtree", p, selfID); err != nil {
			return m.res.Acquire(at, m.model.MDSReadCost), nil, err
		}
		if err := m.checkParentWritable("rmdir", p, cred); err != nil {
			return m.res.Acquire(at, m.model.MDSReadCost), nil, err
		}
		removed, err := m.tree.RemoveSubtree(p)
		cost := m.model.MDSWriteCost * vclock.Duration(1+len(removed))
		done := m.res.Acquire(at, cost)
		if err != nil {
			return done, nil, err
		}
		e := wire.NewEncoder(32 * len(removed))
		e.Uvarint(uint64(len(removed)))
		for _, rp := range removed {
			e.String(rp)
		}
		return done, e.Bytes(), nil
	})

	// readdir: list a directory; cost scales with the entry count.
	svc.Handle("readdir", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		p := d.String()
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		m.reads.Add(1)
		ents, err := m.tree.Readdir(p)
		cost := m.model.MDSReadCost + vclock.Duration(len(ents))*m.model.MDSReaddirEntryCost
		done := m.res.Acquire(at, cost)
		if err != nil {
			return done, nil, err
		}
		e := wire.NewEncoder(16 * len(ents))
		e.Uvarint(uint64(len(ents)))
		for _, ent := range ents {
			e.String(ent.Name)
			e.Byte(byte(ent.Type))
		}
		return done, e.Bytes(), nil
	})

	// Cross-shard coordination endpoints (shardrpc.go): two-phase
	// rename/rmdir and intent bracketing. Registered unconditionally —
	// they are inert unless a shard router drives them.
	m.shardHandlers(svc)

	return svc
}
