package dfs

import (
	"errors"

	"pacon/internal/fsapi"
	"pacon/internal/namespace"
	"pacon/internal/rpc"
	"pacon/internal/vclock"
	"pacon/internal/wire"
)

// Cross-shard coordination endpoints. A cross-shard rename moves a
// subtree between two shards' namespaces through a client-driven
// two-phase protocol:
//
//	xfer_prepare (src shard)  — validate the source, log an intent
//	                            blocking mutations under it, export the
//	                            subtree pre-order
//	xfer_apply   (dst shard)  — validate the destination, insert the
//	                            exported entries (rolled back on partial
//	                            failure)
//	xfer_finalize (src shard) — unlink the source subtree, release the
//	                            intent
//	xfer_abort   (src shard)  — release the intent without mutating
//
// A structural rmdir (a directory mirrored on every shard) runs
// rmdir_prepare / rmdir_commit / rmdir_abort across the pool, and
// multi-shard rmtree brackets its sweeps with intent_put / intent_del.
//
// Intents are volatile: they live in MDS memory and are cleared on
// shard recovery (ClearIntents), which gives crash-restart the
// semantics of an implicit abort — a restarted source shard still holds
// its subtree and accepts mutations again. See DESIGN.md §12.

// intentBlocked reports whether p overlaps any active intent subtree:
// p inside an intent's root, or an intent's root inside p's subtree.
// Blocked operations fail with ErrStale, which the Pacon commit loop
// treats as resubmittable — the op retries after the intent releases.
func (m *MDS) intentBlocked(op, p string) error {
	if m.intentN.Load() == 0 {
		return nil
	}
	m.intentMu.Lock()
	defer m.intentMu.Unlock()
	for root := range m.intents {
		if root == p || namespace.IsUnder(p, root) || namespace.IsUnder(root, p) {
			return fsapi.WrapPath(op, p, fsapi.ErrStale)
		}
	}
	return nil
}

// intentBlockedExcept is intentBlocked, except an intent rooted exactly
// at p carrying the given id does not block — the operation is the
// protocol step that logged it.
func (m *MDS) intentBlockedExcept(op, p string, id uint64) error {
	if m.intentN.Load() == 0 {
		return nil
	}
	m.intentMu.Lock()
	defer m.intentMu.Unlock()
	for root, rid := range m.intents {
		if root == p && rid == id && id != 0 {
			continue
		}
		if root == p || namespace.IsUnder(p, root) || namespace.IsUnder(root, p) {
			return fsapi.WrapPath(op, p, fsapi.ErrStale)
		}
	}
	return nil
}

// putIntent logs an intent for root. It fails with ErrStale when a
// different intent already covers an overlapping subtree; re-putting
// the same (root, id) pair is idempotent.
func (m *MDS) putIntent(op, root string, id uint64) error {
	m.intentMu.Lock()
	defer m.intentMu.Unlock()
	for r, rid := range m.intents {
		if r == root && rid == id {
			return nil
		}
		if r == root || namespace.IsUnder(root, r) || namespace.IsUnder(r, root) {
			return fsapi.WrapPath(op, root, fsapi.ErrStale)
		}
	}
	if m.intents == nil {
		m.intents = make(map[string]uint64)
	}
	m.intents[root] = id
	m.intentN.Add(1)
	return nil
}

// delIntent releases the intent for root if it carries the given id.
func (m *MDS) delIntent(root string, id uint64) {
	m.intentMu.Lock()
	if rid, ok := m.intents[root]; ok && rid == id {
		delete(m.intents, root)
		m.intentN.Add(-1)
	}
	m.intentMu.Unlock()
}

// ClearIntents drops every active intent — the crash-restart rule: the
// intent log is volatile, so a recovered shard comes back with every
// in-flight cross-shard protocol implicitly aborted on its side.
func (m *MDS) ClearIntents() {
	m.intentMu.Lock()
	n := len(m.intents)
	m.intents = nil
	m.intentN.Add(int32(-n))
	m.intentMu.Unlock()
}

// Intents returns the active intent count (white-box test hook).
func (m *MDS) Intents() int { return int(m.intentN.Load()) }

// shardHandlers registers the cross-shard coordination endpoints on the
// MDS service.
func (m *MDS) shardHandlers(svc *rpc.Service) {
	// xfer_prepare: validate src, log the intent, export the subtree
	// pre-order as (relative path, stat) pairs. Read-cost per exported
	// entry — the export is a scan, not a mutation.
	svc.Handle("xfer_prepare", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		src := d.String()
		cred := fsapi.Cred{UID: d.Uint32(), GID: d.Uint32()}
		id := d.Uvarint()
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		m.reads.Add(1)
		if err := m.checkParentWritable("rename", src, cred); err != nil {
			return m.res.Acquire(at, m.model.MDSReadCost), nil, err
		}
		if !m.tree.Exists(src) {
			return m.res.Acquire(at, m.model.MDSReadCost), nil, fsapi.WrapPath("rename", src, fsapi.ErrNotExist)
		}
		if err := m.putIntent("rename", src, id); err != nil {
			return m.res.Acquire(at, m.model.MDSReadCost), nil, err
		}
		n := 0
		if err := m.tree.Walk(src, func(string, fsapi.Stat) error { n++; return nil }); err != nil {
			m.delIntent(src, id)
			return m.res.Acquire(at, m.model.MDSReadCost), nil, err
		}
		e := wire.NewEncoder(8 + 96*n)
		e.Uvarint(uint64(n))
		err := m.tree.Walk(src, func(p string, st fsapi.Stat) error {
			e.String(p[len(src):]) // "" for src itself
			fsapi.EncodeStat(e, st)
			return nil
		})
		done := m.res.Acquire(at, m.model.MDSReadCost*vclock.Duration(1+n))
		if err != nil {
			m.delIntent(src, id)
			return done, nil, err
		}
		return done, e.Bytes(), nil
	})

	// xfer_apply: insert the exported subtree under dst. Pre-order
	// arrival means parents land before children; a mid-stream failure
	// rolls the partial copy back so the destination never exposes a
	// half-materialized subtree.
	svc.Handle("xfer_apply", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		dst := d.String()
		cred := fsapi.Cred{UID: d.Uint32(), GID: d.Uint32()}
		n := int(d.Uvarint())
		rels := make([]string, 0, n)
		stats := make([]fsapi.Stat, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			rels = append(rels, d.String())
			stats = append(stats, fsapi.DecodeStat(d))
		}
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		m.writes.Add(int64(n))
		done := m.res.Acquire(at, m.model.MDSWriteCost*vclock.Duration(1+n))
		if err := m.intentBlocked("rename", dst); err != nil {
			return done, nil, err
		}
		if m.tree.Exists(dst) {
			return done, nil, fsapi.WrapPath("rename", dst, fsapi.ErrExist)
		}
		if err := m.checkParentWritable("rename", dst, cred); err != nil {
			return done, nil, err
		}
		for i := range rels {
			p := dst + rels[i]
			var err error
			if stats[i].IsDir() {
				err = m.tree.Mkdir(p, stats[i])
			} else {
				err = m.tree.Create(p, stats[i])
			}
			if err != nil {
				m.tree.RemoveSubtree(dst)
				return done, nil, err
			}
		}
		return done, nil, nil
	})

	// xfer_finalize: unlink the source subtree and release the intent.
	// Idempotent — a retried finalize after the subtree is already gone
	// still releases the intent and succeeds.
	svc.Handle("xfer_finalize", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		src := d.String()
		id := d.Uvarint()
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		m.writes.Add(1)
		removed, err := m.tree.RemoveSubtree(src)
		if errors.Is(err, fsapi.ErrNotDir) {
			// src is a plain file, not a subtree — unlink it directly.
			removed, err = []string{src}, m.tree.Remove(src)
		}
		if err != nil && !errors.Is(err, fsapi.ErrNotExist) {
			return m.res.Acquire(at, m.model.MDSWriteCost), nil, err
		}
		m.delIntent(src, id)
		return m.res.Acquire(at, m.model.MDSWriteCost*vclock.Duration(1+len(removed))), nil, nil
	})

	// xfer_abort: release the intent without mutating.
	svc.Handle("xfer_abort", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		src := d.String()
		id := d.Uvarint()
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		m.delIntent(src, id)
		return m.res.Acquire(at, m.model.MDSReadCost), nil, nil
	})

	// rmdir_prepare: this shard's vote on a multi-shard rmdir. The
	// directory must be locally a dir and locally empty (a shard that
	// never materialized it votes yes — nothing under it can exist
	// here), and the intent blocks creates under it until commit/abort.
	svc.Handle("rmdir_prepare", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		p := d.String()
		cred := fsapi.Cred{UID: d.Uint32(), GID: d.Uint32()}
		id := d.Uvarint()
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		m.reads.Add(1)
		done := m.res.Acquire(at, m.model.MDSReadCost)
		if m.tree.Exists(p) {
			if err := m.checkParentWritable("rmdir", p, cred); err != nil {
				return done, nil, err
			}
			st, err := m.tree.Lookup(p)
			if err != nil {
				return done, nil, err
			}
			if !st.IsDir() {
				return done, nil, fsapi.WrapPath("rmdir", p, fsapi.ErrNotDir)
			}
			ents, err := m.tree.Readdir(p)
			if err != nil {
				return done, nil, err
			}
			if len(ents) > 0 {
				return done, nil, fsapi.WrapPath("rmdir", p, fsapi.ErrNotEmpty)
			}
		}
		return done, nil, m.putIntent("rmdir", p, id)
	})

	// rmdir_commit: unlink the local mirror and release the intent. The
	// removal is a subtree sweep, not a bare rmdir: every shard voted
	// "empty" at prepare, so anything that appeared since is a straggler
	// that lost the race to the committed removal.
	svc.Handle("rmdir_commit", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		p := d.String()
		id := d.Uvarint()
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		m.writes.Add(1)
		if m.tree.Exists(p) {
			if _, err := m.tree.RemoveSubtree(p); err != nil && !errors.Is(err, fsapi.ErrNotExist) {
				m.delIntent(p, id)
				return m.res.Acquire(at, m.model.MDSWriteCost), nil, err
			}
		}
		m.delIntent(p, id)
		return m.res.Acquire(at, m.model.MDSWriteCost), nil, nil
	})

	// rmdir_abort: release the intent, leaving the mirror untouched.
	svc.Handle("rmdir_abort", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		p := d.String()
		id := d.Uvarint()
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		m.delIntent(p, id)
		return m.res.Acquire(at, m.model.MDSReadCost), nil, nil
	})

	// intent_put / intent_del: bare intent bracketing for multi-shard
	// rmtree — block creates under the doomed subtree on every involved
	// shard while the sweeps run.
	svc.Handle("intent_put", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		root := d.String()
		id := d.Uvarint()
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		return m.res.Acquire(at, m.model.MDSReadCost), nil, m.putIntent("rmtree", root, id)
	})
	svc.Handle("intent_del", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		root := d.String()
		id := d.Uvarint()
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		m.delIntent(root, id)
		return m.res.Acquire(at, m.model.MDSReadCost), nil, nil
	})
}
