package dfs

import (
	"pacon/internal/fsapi"
	"pacon/internal/namespace"
	"pacon/internal/rpc"
	"pacon/internal/vclock"
)

// Cluster assembles one BeeGFS-like deployment on a transport: one or
// more MDSes plus data servers, mirroring the paper's testbed (1 MDS, 3
// data servers on dedicated storage nodes). Multiple MDSes share the
// namespace and split the service load (§II.B's "scale the metadata
// server cluster" approach).
type Cluster struct {
	Net       rpc.Network
	Model     vclock.LatencyModel
	MDS       *MDS // first metadata server (kept for white-box access)
	MDSes     []*MDS
	MDSAddr   string // first MDS address
	MDSAddrs  []string
	Data      []*DataServer
	DataAddrs []string
	RootCred  fsapi.Cred
}

// NewCluster registers an MDS on mdsNode and one data server per entry
// of dataNodes. The namespace root is owned by rootCred.
func NewCluster(net rpc.Network, model vclock.LatencyModel, rootCred fsapi.Cred, mdsNode string, dataNodes []string) *Cluster {
	return NewClusterMulti(net, model, rootCred, []string{mdsNode}, dataNodes)
}

// NewClusterMulti deploys one metadata server per node in mdsNodes, all
// sharing one namespace; clients spread their RPCs across the pool by
// path hash.
func NewClusterMulti(net rpc.Network, model vclock.LatencyModel, rootCred fsapi.Cred, mdsNodes []string, dataNodes []string) *Cluster {
	c := &Cluster{Net: net, Model: model, RootCred: rootCred}
	tree := namespace.NewTree(rootCred)
	for _, node := range mdsNodes {
		addr := node + "/mds"
		m := NewMDSWithTree(addr, model, tree)
		net.Register(addr, m.Service())
		c.MDSes = append(c.MDSes, m)
		c.MDSAddrs = append(c.MDSAddrs, addr)
	}
	c.MDS = c.MDSes[0]
	c.MDSAddr = c.MDSAddrs[0]
	for _, node := range dataNodes {
		addr := node + "/data"
		ds := NewDataServer(addr, model)
		c.Data = append(c.Data, ds)
		c.DataAddrs = append(c.DataAddrs, addr)
		net.Register(addr, ds.Service())
	}
	return c
}

// NewClient builds a client on the given node. TTL 0 gives the paper's
// strong-consistency baseline behavior.
func (c *Cluster) NewClient(node string, cred fsapi.Cred, cacheCap int, ttl vclock.Duration) *Client {
	return NewClient(c.Net, ClientConfig{
		Node:           node,
		MDSAddrs:       c.MDSAddrs,
		DataAddrs:      c.DataAddrs,
		Cred:           cred,
		Model:          c.Model,
		DentryCacheCap: cacheCap,
		DentryTTL:      ttl,
	})
}
