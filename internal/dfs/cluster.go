package dfs

import (
	"fmt"

	"pacon/internal/fsapi"
	"pacon/internal/namespace"
	"pacon/internal/rpc"
	"pacon/internal/vclock"
)

// Cluster assembles one BeeGFS-like deployment on a transport: one or
// more MDSes plus data servers, mirroring the paper's testbed (1 MDS, 3
// data servers on dedicated storage nodes). Multiple MDSes share the
// namespace and split the service load (§II.B's "scale the metadata
// server cluster" approach).
type Cluster struct {
	Net       rpc.Network
	Model     vclock.LatencyModel
	MDS       *MDS // first metadata server (kept for white-box access)
	MDSes     []*MDS
	MDSAddr   string // first MDS address
	MDSAddrs  []string
	Data      []*DataServer
	DataAddrs []string
	RootCred  fsapi.Cred

	// Shards is set by NewClusterSharded: the MDSes hold independent
	// subtree-partitioned namespaces instead of one shared tree, and
	// clients route through this map. Nil for shared-tree clusters.
	Shards *ShardMap
}

// NewCluster registers an MDS on mdsNode and one data server per entry
// of dataNodes. The namespace root is owned by rootCred.
func NewCluster(net rpc.Network, model vclock.LatencyModel, rootCred fsapi.Cred, mdsNode string, dataNodes []string) *Cluster {
	return NewClusterMulti(net, model, rootCred, []string{mdsNode}, dataNodes)
}

// NewClusterMulti deploys one metadata server per node in mdsNodes, all
// sharing one namespace; clients spread their RPCs across the pool by
// path hash.
func NewClusterMulti(net rpc.Network, model vclock.LatencyModel, rootCred fsapi.Cred, mdsNodes []string, dataNodes []string) *Cluster {
	c := &Cluster{Net: net, Model: model, RootCred: rootCred}
	tree := namespace.NewTree(rootCred)
	for _, node := range mdsNodes {
		addr := node + "/mds"
		m := NewMDSWithTree(addr, model, tree)
		net.Register(addr, m.Service())
		c.MDSes = append(c.MDSes, m)
		c.MDSAddrs = append(c.MDSAddrs, addr)
	}
	c.MDS = c.MDSes[0]
	c.MDSAddr = c.MDSAddrs[0]
	for _, node := range dataNodes {
		addr := node + "/data"
		ds := NewDataServer(addr, model)
		c.Data = append(c.Data, ds)
		c.DataAddrs = append(c.DataAddrs, addr)
		net.Register(addr, ds.Service())
	}
	return c
}

// NewClusterSharded deploys a subtree-partitioned metadata service:
// `shards` MDSes on mdsNode, each owning an independent namespace tree.
// Structural paths (the given spread roots plus their ancestors and "/")
// are mirrored on every shard; each immediate child subtree of a spread
// root hashes to one shard and everything deeper inherits it (parent
// affinity). Cross-shard renames run the two-phase xfer protocol.
func NewClusterSharded(net rpc.Network, model vclock.LatencyModel, rootCred fsapi.Cred, mdsNode string, shards int, spreadRoots []string, dataNodes []string) *Cluster {
	if shards < 1 {
		shards = 1
	}
	c := &Cluster{Net: net, Model: model, RootCred: rootCred}
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		addrs[i] = fmt.Sprintf("%s/mds%d", mdsNode, i)
	}
	c.Shards = NewShardMap(addrs, spreadRoots)
	for i := 0; i < shards; i++ {
		m := NewMDSWithTree(addrs[i], model, namespace.NewTree(rootCred))
		net.Register(addrs[i], m.Service())
		c.MDSes = append(c.MDSes, m)
		c.MDSAddrs = append(c.MDSAddrs, addrs[i])
	}
	c.MDS = c.MDSes[0]
	c.MDSAddr = c.MDSAddrs[0]
	for _, node := range dataNodes {
		addr := node + "/data"
		ds := NewDataServer(addr, model)
		c.Data = append(c.Data, ds)
		c.DataAddrs = append(c.DataAddrs, addr)
		net.Register(addr, ds.Service())
	}
	return c
}

// KillShard unregisters shard i's service — calls to it fail with
// ErrClosed until RecoverShard. In-flight calls finish normally.
func (c *Cluster) KillShard(i int) {
	c.Net.Unregister(c.MDSAddrs[i])
}

// RecoverShard re-registers shard i. Its namespace tree survives (the
// on-disk state), but the volatile intent log is cleared — every
// in-flight cross-shard protocol is implicitly aborted on this side.
func (c *Cluster) RecoverShard(i int) {
	c.MDSes[i].ClearIntents()
	c.Net.Register(c.MDSAddrs[i], c.MDSes[i].Service())
}

// OracleLookup resolves p directly against the authoritative tree —
// shard-aware: in sharded mode it consults the shard owning p. Used by
// convergence checkers that must bypass the RPC layer.
func (c *Cluster) OracleLookup(p string) (fsapi.Stat, error) {
	p = namespace.Clean(p)
	return c.oracleTree(p).Lookup(p)
}

// OracleExists reports whether p exists in the authoritative namespace,
// shard-aware like OracleLookup.
func (c *Cluster) OracleExists(p string) bool {
	p = namespace.Clean(p)
	return c.oracleTree(p).Exists(p)
}

func (c *Cluster) oracleTree(p string) *namespace.Tree {
	if c.Shards == nil || c.Shards.N() == 1 {
		return c.MDS.Tree()
	}
	if c.Shards.Structural(p) {
		return c.MDS.Tree() // every mirror agrees; shard 0 is canonical
	}
	return c.MDSes[c.Shards.Owner(p)].Tree()
}

// Delegate migrates the subtree rooted at p onto the given shard and
// registers the delegation in the shard map. This is the administrative
// rebalancing operation: it materializes p's ancestor chain on the
// target (copying stats from the authoritative mirrors), exports the
// subtree from its current owner into the target tree, removes it from
// the old owner, and only then flips routing. It is an offline/quiesced
// operation — callers must not race it against client traffic to the
// moving subtree.
func (c *Cluster) Delegate(p string, shard int) error {
	if c.Shards == nil {
		return fmt.Errorf("dfs: delegate %s: cluster is not sharded", p)
	}
	p = namespace.Clean(p)
	if shard < 0 || shard >= len(c.MDSes) {
		return fmt.Errorf("dfs: delegate %s: shard %d out of range [0,%d)", p, shard, len(c.MDSes))
	}
	if c.Shards.Structural(p) {
		return fmt.Errorf("dfs: delegate %s: structural paths are mirrored, not delegated", p)
	}
	old := c.Shards.Owner(p)
	dst := c.MDSes[shard].Tree()
	// Materialize the ancestor chain on the target so future creates
	// under p can resolve their parents locally. Structural ancestors are
	// already mirrored; hash-zone ancestors are copied from their owner.
	for i := 1; i < len(p); i++ {
		if p[i] != '/' {
			continue
		}
		a := p[:i]
		if dst.Exists(a) {
			continue
		}
		st, err := c.oracleTree(a).Lookup(a)
		if err != nil {
			return fmt.Errorf("dfs: delegate %s: ancestor %s: %w", p, a, err)
		}
		if err := dst.Mkdir(a, st); err != nil {
			return fmt.Errorf("dfs: delegate %s: mirror ancestor %s: %w", p, a, err)
		}
	}
	// Move the subtree itself, if it already exists on the old owner.
	if old != shard {
		src := c.MDSes[old].Tree()
		if src.Exists(p) {
			if dst.Exists(p) {
				return fsapi.WrapPath("delegate", p, fsapi.ErrExist)
			}
			err := src.Walk(p, func(q string, st fsapi.Stat) error {
				if st.IsDir() {
					return dst.Mkdir(q, st)
				}
				return dst.Create(q, st)
			})
			if err != nil {
				dst.RemoveSubtree(p)
				return fmt.Errorf("dfs: delegate %s: export: %w", p, err)
			}
			if _, err := src.RemoveSubtree(p); err != nil {
				return fmt.Errorf("dfs: delegate %s: unlink old owner: %w", p, err)
			}
		}
	}
	return c.Shards.Delegate(p, shard)
}

// NewClient builds a client on the given node. TTL 0 gives the paper's
// strong-consistency baseline behavior.
func (c *Cluster) NewClient(node string, cred fsapi.Cred, cacheCap int, ttl vclock.Duration) *Client {
	return NewClient(c.Net, ClientConfig{
		Node:           node,
		MDSAddrs:       c.MDSAddrs,
		DataAddrs:      c.DataAddrs,
		Cred:           cred,
		Model:          c.Model,
		DentryCacheCap: cacheCap,
		DentryTTL:      ttl,
		Shards:         c.Shards,
	})
}
