package dfs

import (
	"sync/atomic"

	"pacon/internal/fsapi"
	"pacon/internal/vclock"
	"pacon/internal/wire"
)

// Client-side shard routing. With ClientConfig.Shards set, the client
// fronts a pool of independent MDS shards (each with its own namespace
// tree and service pool) instead of one shared-tree MDS group:
//
//   - single-subtree operations route to the owning shard (ShardMap);
//   - structural (mirrored) mutations fan out to every shard;
//   - directory-wide operations (readdir, rmdir, rmtree) fan out to the
//     owner plus any shard holding a delegation under the directory,
//     and merge;
//   - cross-shard rename runs the two-phase xfer protocol (shardrpc.go).
//
// protoSeq numbers the two-phase protocols; ids only need to be unique
// among concurrently active intents, so a process-wide counter serves
// every client.
var protoSeq atomic.Uint64

// sharded reports whether this client routes through a shard map with
// real fan-out (a 1-shard map behaves exactly like a single MDS).
func (c *Client) sharded() bool {
	return c.cfg.Shards != nil && c.cfg.Shards.N() > 1
}

// shardTargets returns the shard addresses a directory-wide operation
// on p must touch: every shard for structural paths, otherwise the
// owner plus any shards holding delegations under p. len==1 means the
// operation degenerates to the single-shard path.
func (c *Client) shardTargets(p string) []string {
	s := c.cfg.Shards
	if s.Structural(p) {
		return s.Addrs()
	}
	owner := s.Owner(p)
	under := s.DelegationShardsUnder(p)
	out := []string{s.AddrOf(owner)}
	for _, sh := range under {
		if sh != owner {
			out = append(out, s.AddrOf(sh))
		}
	}
	return out
}

// mutateAllShards applies one mutation to every shard's mirror of a
// structural path. All calls are issued at the same virtual instant; the
// mutation completes when the slowest mirror does. Every mirror is
// attempted even after an error, keeping the mirrors lockstep; the
// first error is reported.
func (c *Client) mutateAllShards(method string, at vclock.Time, p string, st fsapi.Stat) (vclock.Time, error) {
	latest := at
	var first error
	for _, addr := range c.cfg.Shards.Addrs() {
		e := c.mutateBody(p, st)
		done, _, err := c.caller.Call(addr, method, at, e.Bytes())
		wire.PutEncoder(e)
		latest = vclock.Max(latest, done)
		if err != nil && first == nil {
			first = err
		}
	}
	return latest, first
}

// applyOpAllShards mirrors one batched mutation of a structural path to
// every shard via a one-op apply_batch (preserving IfExists semantics).
func (c *Client) applyOpAllShards(at vclock.Time, op fsapi.BatchOp) (vclock.Time, error) {
	latest := at
	var first error
	for _, addr := range c.cfg.Shards.Addrs() {
		e := wire.GetEncoder()
		e.Uint32(c.cfg.Cred.UID)
		e.Uint32(c.cfg.Cred.GID)
		e.Uvarint(1)
		e.Byte(byte(op.Kind))
		e.Bool(op.IfExists)
		e.String(op.Path)
		fsapi.EncodeStat(e, op.Stat)
		done, resp, err := c.caller.Call(addr, "apply_batch", at, e.Bytes())
		wire.PutEncoder(e)
		latest = vclock.Max(latest, done)
		if err == nil {
			d := wire.NewDecoder(resp)
			if d.Uvarint() == 1 {
				code := d.Byte()
				detail := d.String()
				err = fsapi.ErrOf(code, detail)
			}
		}
		if err != nil && first == nil {
			first = err
		}
	}
	return latest, first
}

// shardedRename implements Rename over the shard pool. Same-shard moves
// are a single "rename" RPC to the owner; cross-shard moves run the
// two-phase xfer protocol. Structural endpoints and subtrees spanning a
// delegation boundary are refused — moving a mirrored directory (or
// silently re-homing a pinned subtree) has no atomic implementation.
func (c *Client) shardedRename(at vclock.Time, src, dst string) (vclock.Time, error) {
	s := c.cfg.Shards
	if s.Structural(src) || s.Structural(dst) {
		return at, fsapi.WrapPath("rename", src, fsapi.ErrPermission)
	}
	if s.CrossesDelegation(src) {
		return at, fsapi.WrapPath("rename", src, fsapi.ErrPermission)
	}
	srcSh, dstSh := s.Owner(src), s.Owner(dst)
	if srcSh == dstSh {
		e := wire.GetEncoder()
		e.String(src)
		e.String(dst)
		e.Uint32(c.cfg.Cred.UID)
		e.Uint32(c.cfg.Cred.GID)
		done, _, err := c.caller.Call(s.AddrOf(srcSh), "rename", at, e.Bytes())
		wire.PutEncoder(e)
		return done, err
	}
	srcAddr, dstAddr := s.AddrOf(srcSh), s.AddrOf(dstSh)
	id := protoSeq.Add(1)

	// Phase 1: prepare on the source — intent logged, subtree exported.
	e := wire.GetEncoder()
	e.String(src)
	e.Uint32(c.cfg.Cred.UID)
	e.Uint32(c.cfg.Cred.GID)
	e.Uvarint(id)
	at, resp, err := c.caller.Call(srcAddr, "xfer_prepare", at, e.Bytes())
	wire.PutEncoder(e)
	if err != nil {
		return at, err
	}
	d := wire.NewDecoder(resp)
	n := int(d.Uvarint())
	rels := make([]string, 0, n)
	stats := make([]fsapi.Stat, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		rels = append(rels, d.String())
		stats = append(stats, fsapi.DecodeStat(d))
	}
	if derr := d.Finish(); derr != nil {
		return c.xferAbort(at, srcAddr, src, id), derr
	}

	// Phase 2: apply on the destination. Failure aborts the source
	// intent — the subtree never moved.
	e = wire.GetEncoder()
	e.String(dst)
	e.Uint32(c.cfg.Cred.UID)
	e.Uint32(c.cfg.Cred.GID)
	e.Uvarint(uint64(n))
	for i := range rels {
		e.String(rels[i])
		fsapi.EncodeStat(e, stats[i])
	}
	at, _, err = c.caller.Call(dstAddr, "xfer_apply", at, e.Bytes())
	wire.PutEncoder(e)
	if err != nil {
		return c.xferAbort(at, srcAddr, src, id), err
	}

	// Phase 3: finalize on the source — unlink and release the intent.
	// Finalize is idempotent, so a transient failure is retried once;
	// if the source shard stays unreachable its volatile intent log
	// clears on recovery (implicit abort of its side — see DESIGN.md §12
	// for the recovery rules).
	for attempt := 0; ; attempt++ {
		e = wire.GetEncoder()
		e.String(src)
		e.Uvarint(id)
		done, _, ferr := c.caller.Call(srcAddr, "xfer_finalize", at, e.Bytes())
		wire.PutEncoder(e)
		at = done
		if ferr == nil {
			break
		}
		if attempt >= 1 {
			return at, ferr
		}
	}
	return at, nil
}

// xferAbort releases the source intent after a failed cross-shard
// rename; best-effort (an unreachable source clears its intents on
// recovery).
func (c *Client) xferAbort(at vclock.Time, srcAddr, src string, id uint64) vclock.Time {
	e := wire.GetEncoder()
	e.String(src)
	e.Uvarint(id)
	done, _, err := c.caller.Call(srcAddr, "xfer_abort", at, e.Bytes())
	wire.PutEncoder(e)
	if err != nil {
		return at
	}
	return done
}

// shardedRmdir removes an empty directory that spans shards (mirrored,
// or holding delegations) with a prepare/commit round: every involved
// shard votes (locally a dir, locally empty) and logs an intent
// blocking creates under it; unanimous yes commits the unlink
// everywhere, any no aborts and releases the intents.
func (c *Client) shardedRmdir(at vclock.Time, p string, targets []string) (vclock.Time, error) {
	id := protoSeq.Add(1)
	latest := at
	prepared := make([]string, 0, len(targets))
	var first error
	for _, addr := range targets {
		e := wire.GetEncoder()
		e.String(p)
		e.Uint32(c.cfg.Cred.UID)
		e.Uint32(c.cfg.Cred.GID)
		e.Uvarint(id)
		done, _, err := c.caller.Call(addr, "rmdir_prepare", at, e.Bytes())
		wire.PutEncoder(e)
		latest = vclock.Max(latest, done)
		if err != nil {
			first = err
			break
		}
		prepared = append(prepared, addr)
	}
	if first != nil {
		for _, addr := range prepared {
			e := wire.GetEncoder()
			e.String(p)
			e.Uvarint(id)
			done, _, err := c.caller.Call(addr, "rmdir_abort", latest, e.Bytes())
			wire.PutEncoder(e)
			if err == nil {
				latest = vclock.Max(latest, done)
			}
		}
		return latest, first
	}
	commitAt := latest
	for _, addr := range targets {
		e := wire.GetEncoder()
		e.String(p)
		e.Uvarint(id)
		done, _, err := c.caller.Call(addr, "rmdir_commit", commitAt, e.Bytes())
		wire.PutEncoder(e)
		latest = vclock.Max(latest, done)
		if err != nil && first == nil {
			first = err
		}
	}
	return latest, first
}

// shardedRmTree sweeps a subtree off every involved shard. Intents
// bracket the sweeps so a racing create into the doomed subtree fails
// with ErrStale instead of landing on a shard that was already swept.
func (c *Client) shardedRmTree(at vclock.Time, p string, targets []string) ([]string, vclock.Time, error) {
	id := protoSeq.Add(1)
	latest := at
	marked := make([]string, 0, len(targets))
	var first error
	for _, addr := range targets {
		e := wire.GetEncoder()
		e.String(p)
		e.Uvarint(id)
		done, _, err := c.caller.Call(addr, "intent_put", at, e.Bytes())
		wire.PutEncoder(e)
		latest = vclock.Max(latest, done)
		if err != nil {
			first = err
			break
		}
		marked = append(marked, addr)
	}
	var removed []string
	notExist := 0
	if first == nil {
		seen := make(map[string]bool)
		sweepAt := latest
		for _, addr := range targets {
			e := wire.GetEncoder()
			e.String(p)
			e.Uint32(c.cfg.Cred.UID)
			e.Uint32(c.cfg.Cred.GID)
			e.Uvarint(id) // lets the sweep bypass its own intent
			done, resp, err := c.caller.Call(addr, "rmtree", sweepAt, e.Bytes())
			wire.PutEncoder(e)
			latest = vclock.Max(latest, done)
			if err != nil {
				if fsapi.CodeOf(err) == fsapi.CodeNotExist {
					notExist++
					continue
				}
				if first == nil {
					first = err
				}
				continue
			}
			d := wire.NewDecoder(resp)
			n := d.Uvarint()
			for i := uint64(0); i < n; i++ {
				rp := d.String()
				if !seen[rp] {
					seen[rp] = true
					removed = append(removed, rp)
				}
			}
			if derr := d.Finish(); derr != nil && first == nil {
				first = derr
			}
		}
		if first == nil && notExist == len(targets) {
			first = fsapi.WrapPath("rmdir", p, fsapi.ErrNotExist)
		}
	}
	for _, addr := range marked {
		e := wire.GetEncoder()
		e.String(p)
		e.Uvarint(id)
		done, _, err := c.caller.Call(addr, "intent_del", latest, e.Bytes())
		wire.PutEncoder(e)
		if err == nil {
			latest = vclock.Max(latest, done)
		}
	}
	if first != nil {
		return nil, latest, first
	}
	c.cacheDropSubtree(p)
	return removed, latest, nil
}

// shardedReaddir merges a directory listing across shards: mirrored
// directories list their hashed children on every shard, and delegated
// subtrees contribute their entries from the delegate. Entries are
// deduplicated by name (mirrored subdirectories appear on several
// shards) and the per-shard name-sorted order is preserved by a merge.
func (c *Client) shardedReaddir(at vclock.Time, p string, targets []string) ([]fsapi.DirEntry, vclock.Time, error) {
	latest := at
	var lists [][]fsapi.DirEntry
	notExist := 0
	for _, addr := range targets {
		e := wire.GetEncoder()
		e.String(p)
		done, resp, err := c.caller.Call(addr, "readdir", at, e.Bytes())
		wire.PutEncoder(e)
		if err != nil {
			if fsapi.CodeOf(err) == fsapi.CodeNotExist {
				notExist++
				continue
			}
			return nil, done, err
		}
		latest = vclock.Max(latest, done)
		d := wire.NewDecoder(resp)
		n := d.Uvarint()
		ents := make([]fsapi.DirEntry, 0, n)
		for i := uint64(0); i < n; i++ {
			ents = append(ents, fsapi.DirEntry{Name: d.String(), Type: fsapi.FileType(d.Byte())})
		}
		if derr := d.Finish(); derr != nil {
			return nil, latest, derr
		}
		lists = append(lists, ents)
	}
	if notExist == len(targets) {
		return nil, latest, fsapi.WrapPath("readdir", p, fsapi.ErrNotExist)
	}
	return mergeDirEntries(lists), latest, nil
}

// mergeDirEntries k-way merges name-sorted listings, dropping duplicate
// names (mirrored structural subdirectories).
func mergeDirEntries(lists [][]fsapi.DirEntry) []fsapi.DirEntry {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	idx := make([]int, len(lists))
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]fsapi.DirEntry, 0, total)
	for {
		best := -1
		for li, l := range lists {
			if idx[li] >= len(l) {
				continue
			}
			if best < 0 || l[idx[li]].Name < lists[best][idx[best]].Name {
				best = li
			}
		}
		if best < 0 {
			return out
		}
		ent := lists[best][idx[best]]
		idx[best]++
		if len(out) == 0 || out[len(out)-1].Name != ent.Name {
			out = append(out, ent)
		}
	}
}
