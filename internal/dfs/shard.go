package dfs

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pacon/internal/namespace"
)

// ShardMap partitions the namespace across a set of MDS shards by
// directory subtree, with parent affinity: a dirent and its parent
// resolve to the same shard unless a subtree has been explicitly
// delegated elsewhere. The map distinguishes three zones:
//
//   - Structural paths — the spread roots (workspace-style directories
//     registered at deployment time, plus "/" always) and their
//     ancestors. These directories are mirrored on every shard, so any
//     shard can check parent writability locally and any mirror answers
//     a read. Mutating a structural path fans out to all shards.
//
//   - Hash zone — each immediate child subtree of a spread root is an
//     implicit delegation point: the whole subtree hashes as one unit
//     (FNV-32a of the child prefix, mod shard count). Everything deeper
//     inherits that shard — the MIDAS-style parent affinity that keeps a
//     hot directory's traversal on one server — while sibling subtrees
//     under the spread root still spread across the pool.
//
//   - Explicit delegations — an operator (or test) may pin a subtree to
//     a chosen shard; the longest delegated prefix wins over the hash.
//
// The shard addresses are immutable after construction; delegations may
// be added concurrently with routing.
type ShardMap struct {
	addrs  []string
	spread []string // mirrored structural roots, each cleaned; "/" implied

	ndeleg atomic.Int32
	mu     sync.RWMutex
	deleg  map[string]int
}

// NewShardMap builds a shard map over the given shard service addresses.
// spreadRoots lists the directories whose children should spread across
// the pool (the root "/" always behaves as one).
func NewShardMap(addrs []string, spreadRoots []string) *ShardMap {
	s := &ShardMap{
		addrs: append([]string(nil), addrs...),
		deleg: make(map[string]int),
	}
	for _, r := range spreadRoots {
		r = namespace.Clean(r)
		if r != "/" {
			s.spread = append(s.spread, r)
		}
	}
	return s
}

// Addrs returns the shard service addresses in shard order.
func (s *ShardMap) Addrs() []string { return s.addrs }

// N returns the shard count.
func (s *ShardMap) N() int { return len(s.addrs) }

// Structural reports whether p is mirrored on every shard: a spread
// root, an ancestor of one, or the root itself.
func (s *ShardMap) Structural(p string) bool {
	if p == "/" {
		return true
	}
	for _, r := range s.spread {
		if r == p || namespace.IsUnder(r, p) {
			return true
		}
	}
	return false
}

// hashPrefix returns the length of p's hash unit: the prefix covering
// the first component below p's deepest structural ancestor. Hashing
// p[:hashPrefix(p)] gives every path in a subtree the same shard.
func (s *ShardMap) hashPrefix(p string) int {
	base := 0 // length of "/"-rooted structural ancestor, 0 means root
	for _, r := range s.spread {
		if len(r) > base && (r == p || namespace.IsUnder(p, r)) {
			base = len(r)
		}
	}
	// The hash unit ends at the first '/' after the structural ancestor.
	for i := base + 1; i < len(p); i++ {
		if p[i] == '/' {
			return i
		}
	}
	return len(p)
}

// Owner returns the shard index owning p. Structural paths report
// shard 0 (their canonical mirror); use Structural to detect them.
func (s *ShardMap) Owner(p string) int {
	if s.Structural(p) {
		return 0
	}
	if s.ndeleg.Load() > 0 {
		s.mu.RLock()
		best, bestLen := -1, -1
		for root, shard := range s.deleg {
			if (root == p || namespace.IsUnder(p, root)) && len(root) > bestLen {
				best, bestLen = shard, len(root)
			}
		}
		s.mu.RUnlock()
		if best >= 0 {
			return best
		}
	}
	// Inline FNV-32a over the hash unit: zero-alloc on the hot path.
	end := s.hashPrefix(p)
	h := uint32(2166136261)
	for i := 0; i < end; i++ {
		h ^= uint32(p[i])
		h *= 16777619
	}
	return int(h % uint32(len(s.addrs)))
}

// AddrOf returns the shard address for index i.
func (s *ShardMap) AddrOf(i int) string { return s.addrs[i] }

// Delegate pins the subtree rooted at p to the given shard, overriding
// the hash. Structural paths cannot be delegated (they are mirrored
// everywhere by definition).
func (s *ShardMap) Delegate(p string, shard int) error {
	p = namespace.Clean(p)
	if shard < 0 || shard >= len(s.addrs) {
		return fmt.Errorf("dfs: delegate %s: shard %d out of range [0,%d)", p, shard, len(s.addrs))
	}
	if s.Structural(p) {
		return fmt.Errorf("dfs: delegate %s: structural paths are mirrored, not delegated", p)
	}
	s.mu.Lock()
	if _, ok := s.deleg[p]; !ok {
		s.ndeleg.Add(1)
	}
	s.deleg[p] = shard
	s.mu.Unlock()
	return nil
}

// DelegationShardsUnder returns the distinct shards holding explicit
// delegations strictly under dir (excluding dir itself). A directory
// operation (readdir, rmdir, rmtree) must include these shards in its
// fan-out, since delegated children live outside dir's owner shard.
func (s *ShardMap) DelegationShardsUnder(dir string) []int {
	if s.ndeleg.Load() == 0 {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []int
	for root, shard := range s.deleg {
		if !namespace.IsUnder(root, dir) {
			continue
		}
		dup := false
		for _, sh := range out {
			if sh == shard {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, shard)
		}
	}
	return out
}

// CrossesDelegation reports whether any explicit delegation boundary
// lies strictly inside the subtree rooted at p — renaming such a
// subtree would silently re-home the delegated part, so it is refused.
func (s *ShardMap) CrossesDelegation(p string) bool {
	if s.ndeleg.Load() == 0 {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for root := range s.deleg {
		if namespace.IsUnder(root, p) && root != p {
			return true
		}
	}
	return false
}
