package dfs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pacon/internal/fsapi"
	"pacon/internal/rpc"
	"pacon/internal/vclock"
)

// shardedCluster deploys a sharded cluster with /w as the spread root
// and returns it alongside an app client.
func shardedCluster(t *testing.T, shards int) (*Cluster, *Client) {
	t.Helper()
	c := NewClusterSharded(rpc.NewBus(), vclock.Default(), rootCred, "storage0", shards, []string{"/w"}, []string{"storage1"})
	root := c.NewClient("node0", rootCred, 0, 0)
	if _, err := root.Mkdir(0, "/w", 0o777); err != nil {
		t.Fatal(err)
	}
	return c, c.NewClient("node0", appCred, 0, 0)
}

// nameOwnedBy returns a fresh /w child path whose subtree hashes to
// shard k.
func nameOwnedBy(t *testing.T, sm *ShardMap, k int, tag string) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		p := fmt.Sprintf("/w/%s%d", tag, i)
		if sm.Owner(p) == k {
			return p
		}
	}
	t.Fatalf("no /w child hashing to shard %d", k)
	return ""
}

func allIntentsDrained(t *testing.T, c *Cluster) {
	t.Helper()
	for i, m := range c.MDSes {
		if n := m.Intents(); n != 0 {
			t.Fatalf("shard %d holds %d intents after the protocol finished", i, n)
		}
	}
}

func TestShardMapPartition(t *testing.T) {
	sm := NewShardMap([]string{"a", "b", "c", "d"}, []string{"/w"})

	for _, p := range []string{"/", "/w"} {
		if !sm.Structural(p) {
			t.Fatalf("Structural(%s) = false, want true", p)
		}
	}
	if sm.Structural("/w/x") {
		t.Fatal("Structural(/w/x) = true, want false (hash zone)")
	}

	// Parent affinity: everything under one /w child shares its shard.
	for _, sub := range []string{"/w/x/y", "/w/x/y/z", "/w/x/deep/er/file"} {
		if sm.Owner(sub) != sm.Owner("/w/x") {
			t.Fatalf("Owner(%s) = %d, want %d (parent affinity)", sub, sm.Owner(sub), sm.Owner("/w/x"))
		}
	}

	// Sibling subtrees spread: 64 names must hit more than one shard.
	owners := map[int]bool{}
	for i := 0; i < 64; i++ {
		owners[sm.Owner(fmt.Sprintf("/w/s%d", i))] = true
	}
	if len(owners) < 2 {
		t.Fatalf("64 sibling subtrees all hashed to one shard: %v", owners)
	}

	// Explicit delegation overrides the hash by longest prefix.
	hashOwner := sm.Owner("/w/x")
	deleg := (hashOwner + 1) % 4
	if err := sm.Delegate("/w/x/sub", deleg); err != nil {
		t.Fatal(err)
	}
	if got := sm.Owner("/w/x/sub/file"); got != deleg {
		t.Fatalf("delegated Owner = %d, want %d", got, deleg)
	}
	if got := sm.Owner("/w/x/other"); got != hashOwner {
		t.Fatalf("sibling of delegation moved: Owner = %d, want %d", got, hashOwner)
	}
	if got := sm.DelegationShardsUnder("/w/x"); len(got) != 1 || got[0] != deleg {
		t.Fatalf("DelegationShardsUnder(/w/x) = %v, want [%d]", got, deleg)
	}
	if !sm.CrossesDelegation("/w/x") {
		t.Fatal("CrossesDelegation(/w/x) = false with a delegation inside")
	}
	if sm.CrossesDelegation("/w/x/sub") {
		t.Fatal("CrossesDelegation(/w/x/sub) = true for the delegation root itself")
	}
	if err := sm.Delegate("/w", 0); err == nil {
		t.Fatal("delegating a structural path must be refused")
	}
}

// TestShardedCreateSpreadAndReaddir: files under the spread root land on
// their owner shard only; a structural readdir merges every shard's
// listing back into one namespace view.
func TestShardedCreateSpreadAndReaddir(t *testing.T) {
	c, cl := shardedCluster(t, 4)

	// The structural root must be mirrored everywhere.
	for i, m := range c.MDSes {
		if !m.Tree().Exists("/w") {
			t.Fatalf("shard %d missing the mirrored /w", i)
		}
	}

	const n = 32
	for i := 0; i < n; i++ {
		if _, err := cl.Create(0, fmt.Sprintf("/w/f%d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("/w/f%d", i)
		owner := c.Shards.Owner(p)
		for s, m := range c.MDSes {
			if got := m.Tree().Exists(p); got != (s == owner) {
				t.Fatalf("%s on shard %d: exists=%v, owner=%d", p, s, got, owner)
			}
		}
		if _, _, err := cl.Stat(0, p); err != nil {
			t.Fatalf("stat %s through the router: %v", p, err)
		}
	}

	ents, _, err := cl.Readdir(0, "/w")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != n {
		t.Fatalf("merged readdir listed %d entries, want %d", len(ents), n)
	}
	for i := 1; i < len(ents); i++ {
		if ents[i-1].Name >= ents[i].Name {
			t.Fatalf("merged listing out of order at %d: %q >= %q", i, ents[i-1].Name, ents[i].Name)
		}
	}
}

// TestCrossShardRenameMovesSubtree: a rename whose source and
// destination hash to different shards must move the whole subtree
// through the two-phase protocol and leave no intents behind.
func TestCrossShardRenameMovesSubtree(t *testing.T) {
	c, cl := shardedCluster(t, 4)
	src := nameOwnedBy(t, c.Shards, 0, "src")
	dst := nameOwnedBy(t, c.Shards, 1, "dst")

	if _, err := cl.Mkdir(0, src, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Create(0, src+"/a", 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Mkdir(0, src+"/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Create(0, src+"/sub/b", 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := cl.Rename(0, src, dst); err != nil {
		t.Fatalf("cross-shard rename: %v", err)
	}

	for _, p := range []string{dst, dst + "/a", dst + "/sub", dst + "/sub/b"} {
		if _, _, err := cl.Stat(0, p); err != nil {
			t.Fatalf("after rename, stat %s: %v", p, err)
		}
	}
	if _, _, err := cl.Stat(0, src); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("source still visible after rename: %v", err)
	}
	if c.MDSes[0].Tree().Exists(src) {
		t.Fatal("source shard still holds the moved subtree")
	}
	if !c.MDSes[1].Tree().Exists(dst + "/sub/b") {
		t.Fatal("destination shard missing a moved descendant")
	}
	allIntentsDrained(t, c)
}

// TestCrossShardRenamePlainFile: the moved object can be a single
// regular file, not just a directory subtree — finalize must unlink it
// on the source shard (RemoveSubtree alone would refuse a non-directory,
// stranding both copies with the intent held).
func TestCrossShardRenamePlainFile(t *testing.T) {
	c, cl := shardedCluster(t, 2)
	srcDir := nameOwnedBy(t, c.Shards, 0, "sd")
	dstDir := nameOwnedBy(t, c.Shards, 1, "dd")

	now, err := cl.Mkdir(0, srcDir, 0o755)
	if err != nil {
		t.Fatal(err)
	}
	if now, err = cl.Mkdir(now, dstDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if now, err = cl.Create(now, srcDir+"/f", 0o644); err != nil {
		t.Fatal(err)
	}
	if now, err = cl.Rename(now, srcDir+"/f", dstDir+"/g"); err != nil {
		t.Fatalf("cross-shard file rename: %v", err)
	}
	st, _, err := cl.Stat(now, dstDir+"/g")
	if err != nil {
		t.Fatalf("stat moved file: %v", err)
	}
	if st.IsDir() {
		t.Fatal("moved file arrived as a directory")
	}
	if _, _, err = cl.Stat(now, srcDir+"/f"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("source still visible after rename: %v", err)
	}
	if c.MDSes[0].Tree().Exists(srcDir + "/f") {
		t.Fatal("source shard still holds the moved file")
	}
	allIntentsDrained(t, c)
}

// TestCrossShardRenameDstExistsAborts: phase 2 failing (destination
// occupied) must abort the protocol, releasing the source intent and
// leaving the source subtree intact and mutable.
func TestCrossShardRenameDstExistsAborts(t *testing.T) {
	c, cl := shardedCluster(t, 4)
	src := nameOwnedBy(t, c.Shards, 0, "src")
	dst := nameOwnedBy(t, c.Shards, 1, "dst")

	if _, err := cl.Mkdir(0, src, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Mkdir(0, dst, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Rename(0, src, dst); !errors.Is(err, fsapi.ErrExist) {
		t.Fatalf("rename onto occupied destination = %v, want ErrExist", err)
	}
	allIntentsDrained(t, c)
	if _, err := cl.Create(0, src+"/alive", 0o644); err != nil {
		t.Fatalf("source not mutable after aborted rename: %v", err)
	}
}

// TestShardedRmdirWithDelegation: a directory whose children span
// shards (via delegation) must refuse rmdir while any shard still holds
// entries, then remove its mirror from every involved shard once empty.
func TestShardedRmdirWithDelegation(t *testing.T) {
	c, cl := shardedCluster(t, 4)
	dir := nameOwnedBy(t, c.Shards, 0, "d")
	if _, err := cl.Mkdir(0, dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Delegate(dir+"/sub", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Mkdir(0, dir+"/sub", 0o755); err != nil {
		t.Fatalf("mkdir on delegated shard: %v", err)
	}
	if !c.MDSes[2].Tree().Exists(dir + "/sub") {
		t.Fatal("delegated child did not land on its shard")
	}

	if _, err := cl.Rmdir(0, dir); !errors.Is(err, fsapi.ErrNotEmpty) {
		t.Fatalf("rmdir with a delegated child = %v, want ErrNotEmpty", err)
	}
	allIntentsDrained(t, c)

	if _, err := cl.Rmdir(0, dir+"/sub"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Rmdir(0, dir); err != nil {
		t.Fatalf("rmdir of emptied spanning dir: %v", err)
	}
	for i, m := range c.MDSes {
		if m.Tree().Exists(dir) {
			t.Fatalf("shard %d still holds the removed dir", i)
		}
	}
	allIntentsDrained(t, c)
}

// TestShardedRmTreeWithDelegation: a recursive removal must sweep the
// owner shard and every delegate, returning the union of removed paths.
func TestShardedRmTreeWithDelegation(t *testing.T) {
	c, cl := shardedCluster(t, 4)
	dir := nameOwnedBy(t, c.Shards, 1, "d")
	if _, err := cl.Mkdir(0, dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Create(0, dir+"/own", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Delegate(dir+"/sub", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Mkdir(0, dir+"/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Create(0, dir+"/sub/leaf", 0o644); err != nil {
		t.Fatal(err)
	}

	removed, _, err := cl.RmTree(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{dir: true, dir + "/own": true, dir + "/sub": true, dir + "/sub/leaf": true}
	for _, p := range removed {
		delete(want, p)
	}
	if len(want) != 0 {
		t.Fatalf("rmtree union missing %v (got %v)", want, removed)
	}
	for i, m := range c.MDSes {
		if m.Tree().Exists(dir) {
			t.Fatalf("shard %d still holds the swept dir", i)
		}
	}
	allIntentsDrained(t, c)
}

// TestShardIntentInterleavings drives the documented interleavings of
// the two-phase protocols against concurrent mutations, each staged
// deterministically by planting the protocol's intent by hand.
func TestShardIntentInterleavings(t *testing.T) {
	cases := []struct {
		name string
		op   string // intent op label
		run  func(t *testing.T, c *Cluster, cl *Client, dir string)
	}{
		{
			// A create into a directory mid-cross-shard-rename must fail
			// ErrStale while the source intent is held, and succeed the
			// moment it releases.
			name: "create into renaming dir",
			op:   "rename",
			run: func(t *testing.T, c *Cluster, cl *Client, dir string) {
				m := c.MDSes[c.Shards.Owner(dir)]
				if err := m.putIntent("rename", dir, 900); err != nil {
					t.Fatal(err)
				}
				if _, err := cl.Create(0, dir+"/x", 0o644); !errors.Is(err, fsapi.ErrStale) {
					t.Fatalf("create under renaming dir = %v, want ErrStale", err)
				}
				m.delIntent(dir, 900)
				if _, err := cl.Create(0, dir+"/x", 0o644); err != nil {
					t.Fatalf("create after intent release: %v", err)
				}
			},
		},
		{
			// A delegated-child create racing a multi-shard rmdir vote
			// must fail ErrStale while the vote's intent is held — it
			// cannot sneak an entry onto a shard that already voted
			// "empty".
			name: "rmdir vote racing delegated create",
			op:   "rmdir",
			run: func(t *testing.T, c *Cluster, cl *Client, dir string) {
				deleg := (c.Shards.Owner(dir) + 1) % c.Shards.N()
				if err := c.Delegate(dir+"/sub", deleg); err != nil {
					t.Fatal(err)
				}
				m := c.MDSes[deleg]
				if err := m.putIntent("rmdir", dir, 901); err != nil {
					t.Fatal(err)
				}
				if _, err := cl.Mkdir(0, dir+"/sub", 0o755); !errors.Is(err, fsapi.ErrStale) {
					t.Fatalf("delegated create under rmdir vote = %v, want ErrStale", err)
				}
				m.delIntent(dir, 901)
				if _, err := cl.Mkdir(0, dir+"/sub", 0o755); err != nil {
					t.Fatalf("delegated create after vote release: %v", err)
				}
			},
		},
		{
			// An aborted cross-shard rename (occupied destination) must
			// release its intent: the very next create under the source
			// succeeds with no manual cleanup.
			name: "abort releases intent",
			op:   "rename",
			run: func(t *testing.T, c *Cluster, cl *Client, dir string) {
				dst := nameOwnedBy(t, c.Shards, (c.Shards.Owner(dir)+1)%c.Shards.N(), "blk")
				if _, err := cl.Create(0, dst, 0o644); err != nil {
					t.Fatal(err)
				}
				if _, err := cl.Rename(0, dir, dst); !errors.Is(err, fsapi.ErrExist) {
					t.Fatalf("rename onto occupied dst = %v, want ErrExist", err)
				}
				if _, err := cl.Create(0, dir+"/alive", 0o644); err != nil {
					t.Fatalf("create after aborted rename: %v", err)
				}
			},
		},
	}
	for i, tc := range cases {
		tc, i := tc, i
		t.Run(tc.name, func(t *testing.T) {
			c, cl := shardedCluster(t, 4)
			dir := nameOwnedBy(t, c.Shards, i%4, "t")
			if _, err := cl.Mkdir(0, dir, 0o755); err != nil {
				t.Fatal(err)
			}
			tc.run(t, c, cl, dir)
			allIntentsDrained(t, c)
		})
	}
}

// TestCrossShardRenameConcurrentCreate races real cross-shard renames
// against creates into the moving directory (run under -race). Every
// outcome in the protocol's contract is tolerated; afterwards the file
// must exist in exactly one place and no intent may linger.
func TestCrossShardRenameConcurrentCreate(t *testing.T) {
	c, cl := shardedCluster(t, 2)
	cl2 := c.NewClient("node1", appCred, 0, 0)
	for round := 0; round < 24; round++ {
		src := nameOwnedBy(t, c.Shards, 0, fmt.Sprintf("r%dsrc", round))
		dst := nameOwnedBy(t, c.Shards, 1, fmt.Sprintf("r%ddst", round))
		if _, err := cl.Mkdir(0, src, 0o755); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		var renameErr, createErr error
		wg.Add(2)
		go func() {
			defer wg.Done()
			_, renameErr = cl.Rename(0, src, dst)
		}()
		go func() {
			defer wg.Done()
			_, createErr = cl2.Create(0, src+"/f", 0o644)
		}()
		wg.Wait()
		if renameErr != nil && !errors.Is(renameErr, fsapi.ErrStale) {
			t.Fatalf("round %d: rename = %v", round, renameErr)
		}
		if createErr != nil && !errors.Is(createErr, fsapi.ErrStale) && !errors.Is(createErr, fsapi.ErrNotExist) {
			t.Fatalf("round %d: create = %v", round, createErr)
		}
		atSrc := c.OracleExists(src + "/f")
		atDst := c.OracleExists(dst + "/f")
		if atSrc && atDst {
			t.Fatalf("round %d: created file duplicated across shards", round)
		}
		if createErr == nil && renameErr == nil && !atSrc && !atDst {
			t.Fatalf("round %d: created file lost by the rename", round)
		}
		if renameErr == nil && c.OracleExists(src) {
			t.Fatalf("round %d: source survived a successful rename", round)
		}
		allIntentsDrained(t, c)
	}
}

// shardSpanRecorder mirrors internal/rpc's trace_test recorder: it
// captures which service address handled each traced RPC.
type shardSpanRecorder struct {
	mu    sync.Mutex
	spans []uint64
	addrs []string
}

func (r *shardSpanRecorder) ObserveRPC(addr, method string, d time.Duration, err error) {}

func (r *shardSpanRecorder) ObserveServerSpan(span uint64, hop uint8, addr, method string, start time.Time, d time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = append(r.spans, span)
	r.addrs = append(r.addrs, addr)
}

// TestShardedTraceAttribution: with a traced client, ops routed to
// different shards must surface their server-side span events under the
// distinct shard addresses — the per-shard attribution the profiler's
// dfs_apply breakdown keys on.
func TestShardedTraceAttribution(t *testing.T) {
	bus := rpc.NewBus()
	c := NewClusterSharded(bus, vclock.Default(), rootCred, "storage0", 2, []string{"/w"}, nil)
	root := c.NewClient("node0", rootCred, 0, 0)
	if _, err := root.Mkdir(0, "/w", 0o777); err != nil {
		t.Fatal(err)
	}
	rec := &shardSpanRecorder{}
	bus.SetObserver(rec)

	cl := c.NewClient("node0", appCred, 0, 0)
	cl.SetTrace(77)
	p0 := nameOwnedBy(t, c.Shards, 0, "a")
	p1 := nameOwnedBy(t, c.Shards, 1, "b")
	if _, err := cl.Create(0, p0, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Create(0, p1, 0o644); err != nil {
		t.Fatal(err)
	}
	cl.ClearTrace()
	if _, err := cl.Create(0, nameOwnedBy(t, c.Shards, 0, "c"), 0o644); err != nil {
		t.Fatal(err)
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	seen := map[string]bool{}
	for i, sp := range rec.spans {
		if sp != 77 {
			t.Fatalf("event %d carries span %d, want 77 (cleared caller must not trace)", i, sp)
		}
		seen[rec.addrs[i]] = true
	}
	for _, addr := range c.MDSAddrs {
		if !seen[addr] {
			t.Fatalf("no span event attributed to shard %s (saw %v)", addr, seen)
		}
	}
}
