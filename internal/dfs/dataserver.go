package dfs

import (
	"sync"
	"sync/atomic"

	"pacon/internal/rpc"
	"pacon/internal/vclock"
	"pacon/internal/wire"
)

// ChunkSize is the stripe unit: consecutive chunks of a file land on
// consecutive data servers (BeeGFS default striping).
const ChunkSize = 512 << 10

// DataServer stores file chunks. Chunks hold real bytes so data-path
// tests verify content, while the virtual-time model charges the device
// cost per chunk plus per KiB.
type DataServer struct {
	model vclock.LatencyModel
	res   *vclock.Resource

	mu     sync.Mutex
	chunks map[chunkKey][]byte

	bytesIn  atomic.Int64
	bytesOut atomic.Int64
}

type chunkKey struct {
	path string
	idx  int64
}

// NewDataServer creates a data server.
func NewDataServer(name string, model vclock.LatencyModel) *DataServer {
	workers := model.DataWorkers
	if workers <= 0 {
		workers = 8
	}
	return &DataServer{
		model:  model,
		res:    vclock.NewResource(name, workers),
		chunks: make(map[chunkKey][]byte),
	}
}

func (s *DataServer) ioCost(n int) vclock.Duration {
	return s.model.DataChunkCost + vclock.Duration(int64(s.model.DataPerKB)*int64(n)/1024)
}

// writeChunk stores data at [off, off+len) within one chunk.
func (s *DataServer) writeChunk(path string, idx int64, off int, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := chunkKey{path: path, idx: idx}
	chunk := s.chunks[key]
	if need := off + len(data); len(chunk) < need {
		grown := make([]byte, need)
		copy(grown, chunk)
		chunk = grown
	}
	copy(chunk[off:], data)
	s.chunks[key] = chunk
}

// readChunk returns up to n bytes at off within one chunk.
func (s *DataServer) readChunk(path string, idx int64, off, n int) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	chunk := s.chunks[chunkKey{path: path, idx: idx}]
	if off >= len(chunk) {
		return nil
	}
	end := off + n
	if end > len(chunk) {
		end = len(chunk)
	}
	out := make([]byte, end-off)
	copy(out, chunk[off:end])
	return out
}

// dropFile removes all chunks of path on this server.
func (s *DataServer) dropFile(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range s.chunks {
		if k.path == path {
			delete(s.chunks, k)
		}
	}
}

// ChunkCount reports resident chunks (test/diagnostic use).
func (s *DataServer) ChunkCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.chunks)
}

// Service exposes the data-server RPC methods.
func (s *DataServer) Service() *rpc.Service {
	svc := rpc.NewService()
	svc.Handle("write", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		path := d.String()
		idx := d.Int64()
		off := int(d.Uint32())
		data := d.BlobView()
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		done := s.res.Acquire(at, s.ioCost(len(data)))
		s.writeChunk(path, idx, off, data)
		s.bytesIn.Add(int64(len(data)))
		return done, nil, nil
	})
	svc.Handle("read", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		path := d.String()
		idx := d.Int64()
		off := int(d.Uint32())
		n := int(d.Uint32())
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		out := s.readChunk(path, idx, off, n)
		done := s.res.Acquire(at, s.ioCost(len(out)))
		s.bytesOut.Add(int64(len(out)))
		e := wire.NewEncoder(len(out) + 8)
		e.Blob(out)
		return done, e.Bytes(), nil
	})
	svc.Handle("drop", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		d := wire.NewDecoder(body)
		path := d.String()
		if err := d.Finish(); err != nil {
			return at, nil, err
		}
		done := s.res.Acquire(at, s.model.DataChunkCost)
		s.dropFile(path)
		return done, nil, nil
	})
	svc.Handle("sync", func(at vclock.Time, body []byte) (vclock.Time, []byte, error) {
		// fsync: charge one device op.
		return s.res.Acquire(at, s.model.DataChunkCost), nil, nil
	})
	return svc
}
