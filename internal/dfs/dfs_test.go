package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pacon/internal/fsapi"
	"pacon/internal/rpc"
	"pacon/internal/vclock"
)

var (
	rootCred = fsapi.Cred{UID: 0, GID: 0}
	appCred  = fsapi.Cred{UID: 1000, GID: 1000}
)

func testCluster(t *testing.T) *Cluster {
	t.Helper()
	return NewCluster(rpc.NewBus(), vclock.Default(), rootCred, "storage0", []string{"storage1", "storage2", "storage3"})
}

// appClient returns a client with an app workspace prepared at /w.
func appClient(t *testing.T, c *Cluster) *Client {
	t.Helper()
	root := c.NewClient("node0", rootCred, 0, 0)
	if _, err := root.Mkdir(0, "/w", 0o777); err != nil {
		t.Fatal(err)
	}
	return c.NewClient("node0", appCred, 0, 0)
}

func TestMkdirCreateStat(t *testing.T) {
	c := testCluster(t)
	cl := appClient(t, c)
	if _, err := cl.Mkdir(0, "/w/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Create(0, "/w/d/f", 0o644); err != nil {
		t.Fatal(err)
	}
	st, _, err := cl.Stat(0, "/w/d/f")
	if err != nil || st.Type != fsapi.TypeFile || st.UID != appCred.UID {
		t.Fatalf("stat = %+v, %v", st, err)
	}
	st, _, err = cl.Stat(0, "/w/d")
	if err != nil || !st.IsDir() {
		t.Fatalf("dir stat = %+v, %v", st, err)
	}
}

func TestNamespaceConventionsOverRPC(t *testing.T) {
	c := testCluster(t)
	cl := appClient(t, c)
	cl.Create(0, "/w/f", 0o644)
	if _, err := cl.Create(0, "/w/f", 0o644); !errors.Is(err, fsapi.ErrExist) {
		t.Fatalf("dup create = %v", err)
	}
	if _, err := cl.Create(0, "/w/ghost/f", 0o644); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("orphan create = %v", err)
	}
	if _, err := cl.Remove(0, "/w/ghost"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("remove missing = %v", err)
	}
	if _, _, err := cl.Stat(0, "/w/nothing"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("stat missing = %v", err)
	}
}

func TestPermissionEnforcement(t *testing.T) {
	c := testCluster(t)
	root := c.NewClient("node0", rootCred, 0, 0)
	// /private is root-owned, no access for others.
	if _, err := root.Mkdir(0, "/private", 0o700); err != nil {
		t.Fatal(err)
	}
	app := c.NewClient("node0", appCred, 0, 0)
	if _, err := app.Create(0, "/private/f", 0o644); !errors.Is(err, fsapi.ErrPermission) {
		t.Fatalf("create in private dir = %v", err)
	}
	if _, _, err := app.Stat(0, "/private/f"); !errors.Is(err, fsapi.ErrPermission) {
		t.Fatalf("stat through private dir = %v", err)
	}
	// A world-writable dir admits the app user.
	if _, err := root.Mkdir(0, "/shared", 0o777); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Create(0, "/shared/f", 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestReaddir(t *testing.T) {
	c := testCluster(t)
	cl := appClient(t, c)
	cl.Create(0, "/w/b", 0o644)
	cl.Mkdir(0, "/w/a", 0o755)
	ents, _, err := cl.Readdir(0, "/w")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 || ents[0].Name != "a" || !((ents[0].Type == fsapi.TypeDir) && (ents[1].Type == fsapi.TypeFile)) {
		t.Fatalf("readdir = %v", ents)
	}
}

func TestRmdirAndRmTree(t *testing.T) {
	c := testCluster(t)
	cl := appClient(t, c)
	cl.Mkdir(0, "/w/d", 0o755)
	cl.Create(0, "/w/d/f1", 0o644)
	if _, err := cl.Rmdir(0, "/w/d"); !errors.Is(err, fsapi.ErrNotEmpty) {
		t.Fatalf("rmdir non-empty = %v", err)
	}
	removed, _, err := cl.RmTree(0, "/w/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 || removed[len(removed)-1] != "/w/d" {
		t.Fatalf("rmtree removed = %v", removed)
	}
	if _, _, err := cl.Stat(0, "/w/d"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatal("dir survived rmtree")
	}
}

func TestTraversalCostGrowsWithDepth(t *testing.T) {
	c := testCluster(t)
	cl := appClient(t, c)
	// Build /w/d1/d2/d3/d4/d5.
	p := "/w"
	for i := 1; i <= 5; i++ {
		p = fmt.Sprintf("%s/d%d", p, i)
		if _, err := cl.Mkdir(0, p, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	// Stat at depth 2 vs depth 6; each uses a fresh client (cold cache)
	// and an idle MDS (at well past previous completions).
	base := vclock.Time(time.Second)
	c2 := c.NewClient("node9", appCred, 0, 0)
	_, d2done, err := c2.Stat(base, "/w/d1")
	if err != nil {
		t.Fatal(err)
	}
	c6 := c.NewClient("node9", appCred, 0, 0)
	_, d6done, err := c6.Stat(base+vclock.Time(time.Second), p)
	if err != nil {
		t.Fatal(err)
	}
	lat2 := d2done.Sub(base)
	lat6 := d6done.Sub(base + vclock.Time(time.Second))
	if lat6 <= lat2 {
		t.Fatalf("deep stat (%v) must cost more than shallow stat (%v)", lat6, lat2)
	}
	// Depth 6 resolves 7 components vs 3 — at least twice the RPCs.
	if float64(lat6) < 1.8*float64(lat2) {
		t.Fatalf("depth cost ratio too small: %v vs %v", lat6, lat2)
	}
}

func TestDentryCacheCutsLookups(t *testing.T) {
	c := testCluster(t)
	root := c.NewClient("node0", rootCred, 0, 0)
	root.Mkdir(0, "/w", 0o777)
	cached := c.NewClient("node0", appCred, 1024, time.Hour)
	at := vclock.Time(0)
	var err error
	for i := 0; i < 50; i++ {
		at, err = cached.Create(at, fmt.Sprintf("/w/f%d", i), 0o644)
		if err != nil {
			t.Fatal(err)
		}
	}
	// 2 ancestor lookups on the first create, none after.
	if got := cached.LookupRPCs(); got != 2 {
		t.Fatalf("cached client lookups = %d, want 2", got)
	}

	uncached := c.NewClient("node0", appCred, 0, 0)
	at = 0
	for i := 0; i < 50; i++ {
		at, err = uncached.Create(at, fmt.Sprintf("/w/u%d", i), 0o644)
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := uncached.LookupRPCs(); got != 100 {
		t.Fatalf("uncached client lookups = %d, want 100", got)
	}
}

func TestMDSSaturationLimitsAggregateThroughput(t *testing.T) {
	c := testCluster(t)
	root := c.NewClient("node0", rootCred, 0, 0)
	root.Mkdir(0, "/w", 0o777)

	const clients = 32
	const per = 40
	var wg sync.WaitGroup
	var wm vclock.Watermark
	pacer := vclock.NewPacer(clients, 0)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			defer pacer.Done(g)
			cl := c.NewClient(fmt.Sprintf("node%d", g%16), appCred, 0, 0)
			cl.Pace(pacer, g)
			now := vclock.Time(0)
			var err error
			for i := 0; i < per; i++ {
				now, err = cl.Create(now, fmt.Sprintf("/w/c%d-f%d", g, i), 0o644)
				if err != nil {
					t.Error(err)
					return
				}
			}
			wm.Observe(now)
		}(g)
	}
	wg.Wait()

	// The MDS pool must be the bottleneck: its busy time across workers
	// should dominate the horizon.
	horizon := wm.Load().Sub(0)
	util := c.MDS.Resource().Utilization(horizon)
	if util < 0.8 {
		t.Fatalf("MDS utilization %.2f — expected saturation under 32 concurrent clients", util)
	}
	if c.MDS.Tree().Len() != clients*per+1 {
		t.Fatalf("namespace has %d objects", c.MDS.Tree().Len())
	}
}

func TestDataPathWriteReadRoundTrip(t *testing.T) {
	c := testCluster(t)
	cl := appClient(t, c)
	cl.Create(0, "/w/data.bin", 0o644)

	// 1.2 MB spans 3 chunks across the 3 data servers.
	payload := make([]byte, 1200*1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	at, err := cl.WriteAt(0, "/w/data.bin", 0, payload)
	if err != nil {
		t.Fatal(err)
	}
	st, at, err := cl.Stat(at, "/w/data.bin")
	if err != nil || st.Size != int64(len(payload)) {
		t.Fatalf("size = %d, err %v", st.Size, err)
	}
	got, _, err := cl.ReadAt(at, "/w/data.bin", 0, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read-back mismatch")
	}
	// Unaligned read across a chunk boundary.
	got, _, err = cl.ReadAt(at, "/w/data.bin", ChunkSize-100, 200)
	if err != nil || len(got) != 200 {
		t.Fatalf("boundary read len=%d err=%v", len(got), err)
	}
	if !bytes.Equal(got, payload[ChunkSize-100:ChunkSize+100]) {
		t.Fatal("boundary read mismatch")
	}
}

func TestDataStripingUsesAllServers(t *testing.T) {
	c := testCluster(t)
	cl := appClient(t, c)
	cl.Create(0, "/w/big", 0o644)
	if _, err := cl.WriteAt(0, "/w/big", 0, make([]byte, 3*ChunkSize)); err != nil {
		t.Fatal(err)
	}
	for i, ds := range c.Data {
		if ds.ChunkCount() == 0 {
			t.Fatalf("data server %d received no chunks", i)
		}
	}
	// RemoveData clears them all.
	if _, err := cl.RemoveData(0, "/w/big"); err != nil {
		t.Fatal(err)
	}
	for i, ds := range c.Data {
		if ds.ChunkCount() != 0 {
			t.Fatalf("data server %d still holds chunks", i)
		}
	}
}

func TestReadPastEOFAndSparse(t *testing.T) {
	c := testCluster(t)
	cl := appClient(t, c)
	cl.Create(0, "/w/f", 0o644)
	cl.WriteAt(0, "/w/f", 0, []byte("abc"))
	got, _, err := cl.ReadAt(0, "/w/f", 10, 5)
	if err != nil || got != nil {
		t.Fatalf("past-EOF read = %q, %v", got, err)
	}
	// Sparse write at an offset: the gap reads back as zeros.
	cl.WriteAt(0, "/w/f", 100, []byte("xyz"))
	got, _, err = cl.ReadAt(0, "/w/f", 0, 103)
	if err != nil || len(got) != 103 {
		t.Fatalf("sparse read len=%d err=%v", len(got), err)
	}
	if string(got[:3]) != "abc" || got[50] != 0 || string(got[100:]) != "xyz" {
		t.Fatal("sparse content wrong")
	}
}

func TestWriteToDirectoryFails(t *testing.T) {
	c := testCluster(t)
	cl := appClient(t, c)
	if _, err := cl.WriteAt(0, "/w", 0, []byte("x")); !errors.Is(err, fsapi.ErrIsDir) {
		t.Fatalf("write to dir = %v", err)
	}
}

func TestFsyncCharges(t *testing.T) {
	c := testCluster(t)
	cl := appClient(t, c)
	cl.Create(0, "/w/f", 0o644)
	done, err := cl.Fsync(vclock.Time(time.Millisecond), "/w/f")
	if err != nil {
		t.Fatal(err)
	}
	if done <= vclock.Time(time.Millisecond) {
		t.Fatal("fsync must advance virtual time")
	}
}

func TestMDSStatsCount(t *testing.T) {
	c := testCluster(t)
	cl := appClient(t, c)
	cl.Create(0, "/w/f", 0o644)
	cl.Stat(0, "/w/f")
	cl.Readdir(0, "/w")
	st := c.MDS.Stats()
	if st.Writes < 2 { // /w mkdir + create
		t.Fatalf("writes = %d", st.Writes)
	}
	if st.Lookups == 0 || st.Reads == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClientRenameMovesDataChunks(t *testing.T) {
	c := testCluster(t)
	cl := appClient(t, c)
	cl.Create(0, "/w/src.bin", 0o644)
	payload := bytes.Repeat([]byte{7}, 600*1024) // spans two chunks
	at, err := cl.WriteAt(0, "/w/src.bin", 0, payload)
	if err != nil {
		t.Fatal(err)
	}
	if at, err = cl.Rename(at, "/w/src.bin", "/w/dst.bin"); err != nil {
		t.Fatal(err)
	}
	got, _, err := cl.ReadAt(at, "/w/dst.bin", 0, len(payload))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("data after rename: len=%d err=%v", len(got), err)
	}
	if _, _, err := cl.Stat(at, "/w/src.bin"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("source still present: %v", err)
	}
}

func TestDentryTTLExpiry(t *testing.T) {
	c := testCluster(t)
	root := c.NewClient("node0", rootCred, 0, 0)
	root.Mkdir(0, "/w", 0o777)
	// TTL-limited cache: lookups repeat once entries expire.
	cl := c.NewClient("node0", appCred, 1024, 100*time.Microsecond)
	at := vclock.Time(0)
	var err error
	if at, err = cl.Create(at, "/w/f0", 0o644); err != nil {
		t.Fatal(err)
	}
	first := cl.LookupRPCs()
	// Well past the TTL: ancestors must be re-fetched.
	if _, err = cl.Create(at+vclock.Time(time.Second), "/w/f1", 0o644); err != nil {
		t.Fatal(err)
	}
	if cl.LookupRPCs() <= first {
		t.Fatal("expired dentries were reused")
	}
}

func TestMultiMDSSharesNamespaceAndScales(t *testing.T) {
	bus := rpc.NewBus()
	c := NewClusterMulti(bus, vclock.Default(), rootCred,
		[]string{"m0", "m1", "m2", "m3"}, []string{"s1"})
	root := c.NewClient("node0", rootCred, 0, 0)
	if _, err := root.Mkdir(0, "/w", 0o777); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient("node0", appCred, 0, 0)
	at := vclock.Time(0)
	var err error
	for i := 0; i < 200; i++ {
		if at, err = cl.Create(at, fmt.Sprintf("/w/f%03d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// One shared namespace: every file visible regardless of which MDS
	// served it, and all four MDSes carried load.
	if c.MDS.Tree().Len() != 201 {
		t.Fatalf("namespace objects = %d", c.MDS.Tree().Len())
	}
	for i, m := range c.MDSes {
		if m.Stats().Writes == 0 && m.Stats().Lookups == 0 {
			t.Fatalf("MDS %d idle — path-hash routing broken", i)
		}
	}
	// And a saturated multi-MDS run outpaces a single MDS.
	single := NewCluster(rpc.NewBus(), vclock.Default(), rootCred, "m0", []string{"s1"})
	sr := single.NewClient("node0", rootCred, 0, 0)
	sr.Mkdir(0, "/w", 0o777)

	run := func(cluster *Cluster) vclock.Duration {
		const clients, per = 24, 30
		var wg sync.WaitGroup
		var wm vclock.Watermark
		pacer := vclock.NewPacer(clients, 0)
		for g := 0; g < clients; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				defer pacer.Done(g)
				cl := cluster.NewClient(fmt.Sprintf("node%d", g%8), appCred, 0, 0)
				cl.Pace(pacer, g)
				now := vclock.Time(0)
				var err error
				for i := 0; i < per; i++ {
					now, err = cl.Create(now, fmt.Sprintf("/w/c%d-%d", g, i), 0o644)
					if err != nil {
						t.Error(err)
						return
					}
				}
				wm.Observe(now)
			}(g)
		}
		wg.Wait()
		return wm.Load().Sub(0)
	}
	multiTime := run(c)
	singleTime := run(single)
	if float64(singleTime) < 1.5*float64(multiTime) {
		t.Fatalf("4 MDSes (%v) should be well faster than 1 (%v)", multiTime, singleTime)
	}
}

func TestApplyBatchMixedOps(t *testing.T) {
	c := testCluster(t)
	cl := appClient(t, c)
	if _, err := cl.Create(0, "/w/old", 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Create(0, "/w/resize", 0o644); err != nil {
		t.Fatal(err)
	}
	newStat := fsapi.NewFileStat(appCred, 0o600)
	newStat.Size = 999
	ops := []fsapi.BatchOp{
		{Kind: fsapi.BatchCreate, Path: "/w/new", Stat: fsapi.NewFileStat(appCred, 0o644)},
		{Kind: fsapi.BatchMkdir, Path: "/w/dir", Stat: fsapi.NewDirStat(appCred, 0o755)},
		{Kind: fsapi.BatchSetStat, Path: "/w/resize", Stat: newStat},
		{Kind: fsapi.BatchRemove, Path: "/w/old"},
	}
	errs, _, err := cl.ApplyBatch(0, ops)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("op %d: %v", i, e)
		}
	}
	if st, _, err := cl.Stat(0, "/w/new"); err != nil || st.Type != fsapi.TypeFile {
		t.Fatalf("new: %+v, %v", st, err)
	}
	if st, _, err := cl.Stat(0, "/w/dir"); err != nil || !st.IsDir() {
		t.Fatalf("dir: %+v, %v", st, err)
	}
	if st, _, err := cl.Stat(0, "/w/resize"); err != nil || st.Size != 999 {
		t.Fatalf("resize: %+v, %v", st, err)
	}
	if _, _, err := cl.Stat(0, "/w/old"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("old still present: %v", err)
	}
}

func TestApplyBatchPerOpErrors(t *testing.T) {
	c := testCluster(t)
	cl := appClient(t, c)
	if _, err := cl.Create(0, "/w/dup", 0o644); err != nil {
		t.Fatal(err)
	}
	ops := []fsapi.BatchOp{
		{Kind: fsapi.BatchCreate, Path: "/w/dup", Stat: fsapi.NewFileStat(appCred, 0o644)},
		{Kind: fsapi.BatchRemove, Path: "/w/ghost"},
		{Kind: fsapi.BatchRemove, Path: "/w/ghost2", IfExists: true},
		{Kind: fsapi.BatchCreate, Path: "/w/ok", Stat: fsapi.NewFileStat(appCred, 0o644)},
	}
	errs, _, err := cl.ApplyBatch(0, ops)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(errs[0], fsapi.ErrExist) {
		t.Fatalf("dup create = %v, want ErrExist", errs[0])
	}
	if !errors.Is(errs[1], fsapi.ErrNotExist) {
		t.Fatalf("ghost remove = %v, want ErrNotExist", errs[1])
	}
	if errs[2] != nil {
		t.Fatalf("IfExists remove of absent path = %v, want nil", errs[2])
	}
	if errs[3] != nil {
		t.Fatalf("independent create = %v, want nil (batch survives sibling failures)", errs[3])
	}
	if _, _, err := cl.Stat(0, "/w/ok"); err != nil {
		t.Fatalf("ok not created: %v", err)
	}
}

func TestApplyBatchGroupsAcrossMDSes(t *testing.T) {
	net := rpc.NewBus()
	c := NewClusterMulti(net, vclock.Default(), rootCred, []string{"node0", "node1"}, nil)
	root := c.NewClient("node0", rootCred, 0, 0)
	if _, err := root.Mkdir(0, "/w", 0o777); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient("node0", appCred, 64, vclock.Duration(1<<50))
	// Warm the ancestor cache so the batch itself is pure mutation RPCs.
	if _, _, err := cl.Stat(0, "/w"); err != nil {
		t.Fatal(err)
	}
	base := cl.caller.Calls()
	ops := make([]fsapi.BatchOp, 8)
	for i := range ops {
		ops[i] = fsapi.BatchOp{Kind: fsapi.BatchCreate, Path: fmt.Sprintf("/w/f%d", i), Stat: fsapi.NewFileStat(appCred, 0o644)}
	}
	errs, _, err := cl.ApplyBatch(0, ops)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("op %d: %v", i, e)
		}
	}
	rpcs := cl.caller.Calls() - base
	if rpcs > 2 {
		t.Fatalf("8 ops over 2 MDSes took %d RPCs, want at most one per MDS", rpcs)
	}
	for i := range ops {
		if _, _, err := cl.Stat(0, ops[i].Path); err != nil {
			t.Fatalf("f%d missing: %v", i, err)
		}
	}
}
