package dfs

import (
	"fmt"
	"hash/fnv"
	"sync"

	"pacon/internal/fsapi"
	"pacon/internal/namespace"
	"pacon/internal/rpc"
	"pacon/internal/vclock"
	"pacon/internal/wire"
)

// ClientConfig configures a DFS client instance (one per client process).
type ClientConfig struct {
	// Node is the node this client runs on (for latency selection).
	Node string
	// MDSAddr is the metadata server's RPC address. For multi-MDS
	// deployments set MDSAddrs instead; requests then spread across the
	// pool by path hash.
	MDSAddr  string
	MDSAddrs []string
	// Shards, when set, routes metadata operations through a
	// subtree-partitioned shard pool instead of the shared-tree MDSAddrs
	// group: each shard owns a disjoint slice of the namespace (see
	// ShardMap), structural directories are mirrored everywhere, and
	// cross-shard rename/rmdir run two-phase protocols (router.go).
	Shards *ShardMap
	// DataAddrs are the data servers' RPC addresses in stripe order.
	DataAddrs []string
	// Cred is the system user the client acts as.
	Cred fsapi.Cred
	// Model is the latency model.
	Model vclock.LatencyModel
	// DentryCacheCap bounds the client dentry cache (entries). 0 disables
	// caching entirely.
	DentryCacheCap int
	// DentryTTL is the virtual-time validity of a cached dentry. The
	// default 0 disables reuse — the strong-consistency behavior of the
	// paper's BeeGFS baseline, where the client revalidates against the
	// MDS on every access. Pacon's internal commit clients set a long TTL
	// (Pacon owns consistency above the DFS).
	DentryTTL vclock.Duration
}

// Client is a DFS client: it resolves paths component by component
// against the MDS (costing one RPC per uncached component — the
// traversal the paper's Fig 2 measures) and stripes file data across the
// data servers.
type Client struct {
	cfg    ClientConfig
	caller *rpc.Caller

	// mirrorPick is this client's stable choice among the mirrors of a
	// structural path (sharded mode): any mirror answers reads, and a
	// per-client stable pick spreads the load without ping-ponging the
	// shards' dentry working sets.
	mirrorPick int

	mu       sync.Mutex
	dentries map[string]dentry

	lookupRPCs int64
}

type dentry struct {
	stat    fsapi.Stat
	expires vclock.Time
}

// NewClient builds a client over the given transport.
func NewClient(t rpc.Transport, cfg ClientConfig) *Client {
	if len(cfg.MDSAddrs) == 0 && cfg.MDSAddr != "" {
		cfg.MDSAddrs = []string{cfg.MDSAddr}
	}
	c := &Client{
		cfg:      cfg,
		caller:   rpc.NewCaller(t, cfg.Model, cfg.Node),
		dentries: make(map[string]dentry),
	}
	if cfg.Shards != nil && cfg.Shards.N() > 0 {
		h := fnv.New32a()
		h.Write([]byte(cfg.Node))
		c.mirrorPick = int(h.Sum32() % uint32(cfg.Shards.N()))
	}
	return c
}

// Cred returns the client's credential.
func (c *Client) Cred() fsapi.Cred { return c.cfg.Cred }

// Pace attaches a virtual-time pacer to this client's RPC caller (see
// vclock.Pacer); id is the client's participant index.
func (c *Client) Pace(p *vclock.Pacer, id int) { c.caller.Pace(p, id) }

// SetTrace tags subsequent DFS RPCs with the span's trace context so
// the MDS handler timings land in the originating op's span.
func (c *Client) SetTrace(span uint64) { c.caller.SetTrace(span) }

// ClearTrace removes the trace context set by SetTrace.
func (c *Client) ClearTrace() { c.caller.ClearTrace() }

// LookupRPCs returns the number of per-component lookup RPCs issued —
// the path-traversal overhead metric.
func (c *Client) LookupRPCs() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lookupRPCs
}

func (c *Client) cacheGet(p string, at vclock.Time) (fsapi.Stat, bool) {
	if c.cfg.DentryCacheCap <= 0 || c.cfg.DentryTTL <= 0 {
		return fsapi.Stat{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.dentries[p]
	if !ok || at > d.expires {
		return fsapi.Stat{}, false
	}
	return d.stat, true
}

func (c *Client) cachePut(p string, st fsapi.Stat, at vclock.Time) {
	if c.cfg.DentryCacheCap <= 0 || c.cfg.DentryTTL <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.dentries) >= c.cfg.DentryCacheCap {
		// Capacity eviction: drop an arbitrary entry (map order), the
		// thrashing behavior random stats exhibit on a bounded dcache.
		for k := range c.dentries {
			delete(c.dentries, k)
			break
		}
	}
	c.dentries[p] = dentry{stat: st, expires: at.Add(c.cfg.DentryTTL)}
}

func (c *Client) cacheDrop(p string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.dentries, p)
}

// InvalidateSubtree drops every cached dentry at or under root. Pacon
// calls this on all of a region's DFS clients when a dependent
// operation (rmdir, rename) unlinks a subtree: internal clients run
// with long dentry TTLs (Pacon owns consistency above the DFS), so
// without the fan-out the other nodes' clients would keep serving
// positive Stats for the removed paths until the TTL lapsed.
func (c *Client) InvalidateSubtree(root string) { c.cacheDropSubtree(root) }

func (c *Client) cacheDropSubtree(root string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.dentries {
		if namespace.IsUnder(k, root) {
			delete(c.dentries, k)
		}
	}
}

// mdsFor routes a path's metadata operation to its MDS (single-MDS
// deployments always return the one server). In sharded mode the shard
// map owns the routing: structural paths go to this client's stable
// mirror, everything else to the owning shard.
func (c *Client) mdsFor(p string) string {
	if s := c.cfg.Shards; s != nil {
		if s.Structural(p) {
			return s.AddrOf(c.mirrorPick)
		}
		return s.AddrOf(s.Owner(p))
	}
	if len(c.cfg.MDSAddrs) == 1 {
		return c.cfg.MDSAddrs[0]
	}
	h := fnv.New32a()
	h.Write([]byte(p))
	return c.cfg.MDSAddrs[h.Sum32()%uint32(len(c.cfg.MDSAddrs))]
}

// lookupRPC issues one lookup to the MDS.
func (c *Client) lookupRPC(at vclock.Time, p string) (fsapi.Stat, vclock.Time, error) {
	c.mu.Lock()
	c.lookupRPCs++
	c.mu.Unlock()
	e := wire.GetEncoder()
	e.String(p)
	done, resp, err := c.caller.Call(c.mdsFor(p), "lookup", at, e.Bytes())
	wire.PutEncoder(e)
	if err != nil {
		return fsapi.Stat{}, done, err
	}
	st, derr := fsapi.UnmarshalStat(resp)
	if derr != nil {
		return fsapi.Stat{}, done, derr
	}
	return st, done, nil
}

// resolveAncestors walks every proper ancestor of p, charging one lookup
// RPC per uncached component and checking traversal (exec) permission —
// the layer-by-layer path traversal Pacon's batch permissions avoid.
func (c *Client) resolveAncestors(at vclock.Time, p string) (vclock.Time, error) {
	var rerr error
	namespace.VisitAncestors(p, func(anc string) bool {
		if st, ok := c.cacheGet(anc, at); ok {
			if !st.IsDir() {
				rerr = fsapi.WrapPath("traverse", anc, fsapi.ErrNotDir)
				return false
			}
			return true
		}
		st, done, err := c.lookupRPC(at, anc)
		at = done
		if err != nil {
			rerr = err
			return false
		}
		if !st.IsDir() {
			rerr = fsapi.WrapPath("traverse", anc, fsapi.ErrNotDir)
			return false
		}
		if !st.Mode.Allows(c.cfg.Cred.ClassFor(st.UID, st.GID), fsapi.WantExec) {
			rerr = fsapi.WrapPath("traverse", anc, fsapi.ErrPermission)
			return false
		}
		c.cachePut(anc, st, at)
		return true
	})
	return at, rerr
}

// mutateBody builds the standard mutation request frame in a pooled
// encoder; the caller must wire.PutEncoder it once the RPC returned.
func (c *Client) mutateBody(p string, st fsapi.Stat) *wire.Encoder {
	e := wire.GetEncoder()
	e.String(p)
	e.Uint32(c.cfg.Cred.UID)
	e.Uint32(c.cfg.Cred.GID)
	fsapi.EncodeStat(e, st)
	return e
}

// callMutate issues one mutation RPC with the standard body. Mutating a
// structural path in sharded mode fans out to every mirror.
func (c *Client) callMutate(method string, at vclock.Time, p string, st fsapi.Stat) (vclock.Time, error) {
	if c.sharded() && c.cfg.Shards.Structural(p) {
		return c.mutateAllShards(method, at, p, st)
	}
	e := c.mutateBody(p, st)
	done, _, err := c.caller.Call(c.mdsFor(p), method, at, e.Bytes())
	wire.PutEncoder(e)
	return done, err
}

// Mkdir creates a directory.
func (c *Client) Mkdir(at vclock.Time, p string, mode fsapi.Mode) (vclock.Time, error) {
	p = namespace.Clean(p)
	at, err := c.resolveAncestors(at, p)
	if err != nil {
		return at, err
	}
	st := fsapi.NewDirStat(c.cfg.Cred, mode)
	return c.callMutate("mkdir", at, p, st)
}

// Create creates an empty regular file.
func (c *Client) Create(at vclock.Time, p string, mode fsapi.Mode) (vclock.Time, error) {
	p = namespace.Clean(p)
	at, err := c.resolveAncestors(at, p)
	if err != nil {
		return at, err
	}
	st := fsapi.NewFileStat(c.cfg.Cred, mode)
	return c.callMutate("create", at, p, st)
}

// CreateWithStat creates a file carrying a prebuilt stat (used by the
// Pacon commit module to preserve cached metadata exactly).
func (c *Client) CreateWithStat(at vclock.Time, p string, st fsapi.Stat) (vclock.Time, error) {
	p = namespace.Clean(p)
	at, err := c.resolveAncestors(at, p)
	if err != nil {
		return at, err
	}
	method := "create"
	if st.IsDir() {
		method = "mkdir"
	}
	return c.callMutate(method, at, p, st)
}

// SetStat replaces an object's metadata.
func (c *Client) SetStat(at vclock.Time, p string, st fsapi.Stat) (vclock.Time, error) {
	p = namespace.Clean(p)
	at, err := c.resolveAncestors(at, p)
	if err != nil {
		return at, err
	}
	done, err := c.callMutate("setstat", at, p, st)
	if err == nil {
		c.cacheDrop(p)
	}
	return done, err
}

// Stat resolves a path's metadata (traversal plus final lookup).
func (c *Client) Stat(at vclock.Time, p string) (fsapi.Stat, vclock.Time, error) {
	p = namespace.Clean(p)
	at, err := c.resolveAncestors(at, p)
	if err != nil {
		return fsapi.Stat{}, at, err
	}
	if st, ok := c.cacheGet(p, at); ok {
		return st, at, nil
	}
	st, done, err := c.lookupRPC(at, p)
	if err != nil {
		return fsapi.Stat{}, done, err
	}
	c.cachePut(p, st, done)
	return st, done, nil
}

// StatFresh stats p bypassing the positive dentry cache for the final
// component: the answer always comes from the MDS, and refreshes the
// cached dentry. Pacon's cache-miss loads use this — a miss-load's
// result becomes the region's primary copy, so it must reflect the
// authoritative backup state, not a dentry snapshot that may predate
// any number of asynchronously committed updates (a stale size here
// does not merely lag: it gets installed in the region cache as truth
// after the real entry was evicted, silently shadowing committed
// writes).
func (c *Client) StatFresh(at vclock.Time, p string) (fsapi.Stat, vclock.Time, error) {
	p = namespace.Clean(p)
	at, err := c.resolveAncestors(at, p)
	if err != nil {
		return fsapi.Stat{}, at, err
	}
	st, done, err := c.lookupRPC(at, p)
	if err != nil {
		c.cacheDrop(p)
		return fsapi.Stat{}, done, err
	}
	c.cachePut(p, st, done)
	return st, done, nil
}

// Remove unlinks a file (metadata; chunks are dropped separately by
// RemoveData for files that had content).
func (c *Client) Remove(at vclock.Time, p string) (vclock.Time, error) {
	p = namespace.Clean(p)
	at, err := c.resolveAncestors(at, p)
	if err != nil {
		return at, err
	}
	done, err := c.callMutate("remove", at, p, fsapi.Stat{})
	if err == nil {
		c.cacheDrop(p)
	}
	return done, err
}

// Rmdir removes an empty directory. In sharded mode a directory that
// spans shards (mirrored, or holding delegations) removes through the
// prepare/commit vote so no shard unlinks a mirror the others keep.
func (c *Client) Rmdir(at vclock.Time, p string) (vclock.Time, error) {
	p = namespace.Clean(p)
	at, err := c.resolveAncestors(at, p)
	if err != nil {
		return at, err
	}
	if c.sharded() {
		if targets := c.shardTargets(p); len(targets) > 1 {
			done, err := c.shardedRmdir(at, p, targets)
			if err == nil {
				c.cacheDrop(p)
			}
			return done, err
		}
	}
	done, err := c.callMutate("rmdir", at, p, fsapi.Stat{})
	if err == nil {
		c.cacheDrop(p)
	}
	return done, err
}

// RmTree removes a directory recursively, returning the removed paths.
func (c *Client) RmTree(at vclock.Time, p string) ([]string, vclock.Time, error) {
	p = namespace.Clean(p)
	at, err := c.resolveAncestors(at, p)
	if err != nil {
		return nil, at, err
	}
	if c.sharded() {
		if targets := c.shardTargets(p); len(targets) > 1 {
			return c.shardedRmTree(at, p, targets)
		}
	}
	e := wire.GetEncoder()
	e.String(p)
	e.Uint32(c.cfg.Cred.UID)
	e.Uint32(c.cfg.Cred.GID)
	done, resp, err := c.caller.Call(c.mdsFor(p), "rmtree", at, e.Bytes())
	wire.PutEncoder(e)
	if err != nil {
		return nil, done, err
	}
	d := wire.NewDecoder(resp)
	n := d.Uvarint()
	removed := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		removed = append(removed, d.String())
	}
	if derr := d.Finish(); derr != nil {
		return nil, done, derr
	}
	c.cacheDropSubtree(p)
	return removed, done, nil
}

// Rename moves a file or subtree. Data chunks are keyed by path, so a
// renamed file's bytes are re-homed too.
func (c *Client) Rename(at vclock.Time, src, dst string) (vclock.Time, error) {
	src, dst = namespace.Clean(src), namespace.Clean(dst)
	at, err := c.resolveAncestors(at, src)
	if err != nil {
		return at, err
	}
	if at, err = c.resolveAncestors(at, dst); err != nil {
		return at, err
	}
	if c.sharded() {
		done, err := c.shardedRename(at, src, dst)
		at = done
		if err != nil {
			return at, err
		}
	} else {
		e := wire.GetEncoder()
		e.String(src)
		e.String(dst)
		e.Uint32(c.cfg.Cred.UID)
		e.Uint32(c.cfg.Cred.GID)
		done, _, err := c.caller.Call(c.mdsFor(src), "rename", at, e.Bytes())
		wire.PutEncoder(e)
		at = done
		if err != nil {
			return at, err
		}
	}
	c.cacheDropSubtree(src)
	// Re-home data chunks (they are keyed by path): walk the moved
	// subtree and copy each file's bytes. Renames are rare in the
	// workloads; a copy keeps the data servers' layout simple.
	if len(c.cfg.DataAddrs) > 0 {
		at = c.moveData(at, src, dst)
	}
	return at, nil
}

// moveData recursively copies the chunks of every file under the moved
// subtree from its old path to its new one.
func (c *Client) moveData(at vclock.Time, src, dst string) vclock.Time {
	st, done, err := c.Stat(at, dst)
	at = done
	if err != nil {
		return at
	}
	if st.IsDir() {
		ents, done, err := c.Readdir(at, dst)
		at = done
		if err != nil {
			return at
		}
		for _, ent := range ents {
			at = c.moveData(at, namespace.Join(src, ent.Name), namespace.Join(dst, ent.Name))
		}
		return at
	}
	if st.Size == 0 {
		return at
	}
	data, done, err := c.readAtPath(at, src, st.Size)
	at = done
	if err != nil || len(data) == 0 {
		return at
	}
	if done, werr := c.WriteAt(at, dst, 0, data); werr == nil {
		at = done
	}
	if done, derr := c.RemoveData(at, src); derr == nil {
		at = done
	}
	return at
}

// readAtPath reads a file's chunks by path without consulting its
// metadata (used during rename, when the metadata already moved).
func (c *Client) readAtPath(at vclock.Time, p string, size int64) ([]byte, vclock.Time, error) {
	out := make([]byte, 0, size)
	for int64(len(out)) < size {
		pos := int64(len(out))
		chunk := pos / ChunkSize
		inOff := int(pos % ChunkSize)
		want := int(size - pos)
		if room := ChunkSize - inOff; want > room {
			want = room
		}
		e := wire.GetEncoder()
		e.String(p)
		e.Int64(chunk)
		e.Uint32(uint32(inOff))
		e.Uint32(uint32(want))
		done, resp, err := c.caller.Call(c.serverFor(p, chunk), "read", at, e.Bytes())
		wire.PutEncoder(e)
		at = done
		if err != nil {
			return nil, at, err
		}
		d := wire.NewDecoder(resp)
		part := d.Blob()
		if derr := d.Finish(); derr != nil {
			return nil, at, derr
		}
		if len(part) < want {
			part = append(part, make([]byte, want-len(part))...)
		}
		out = append(out, part...)
	}
	return out, at, nil
}

// Readdir lists a directory. In sharded mode a directory that spans
// shards merges the per-shard listings.
func (c *Client) Readdir(at vclock.Time, p string) ([]fsapi.DirEntry, vclock.Time, error) {
	p = namespace.Clean(p)
	at, err := c.resolveAncestors(at, p)
	if err != nil {
		return nil, at, err
	}
	if c.sharded() {
		if targets := c.shardTargets(p); len(targets) > 1 {
			return c.shardedReaddir(at, p, targets)
		}
	}
	e := wire.GetEncoder()
	e.String(p)
	done, resp, err := c.caller.Call(c.mdsFor(p), "readdir", at, e.Bytes())
	wire.PutEncoder(e)
	if err != nil {
		return nil, done, err
	}
	d := wire.NewDecoder(resp)
	n := d.Uvarint()
	ents := make([]fsapi.DirEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		ents = append(ents, fsapi.DirEntry{Name: d.String(), Type: fsapi.FileType(d.Byte())})
	}
	if derr := d.Finish(); derr != nil {
		return nil, done, derr
	}
	return ents, done, nil
}

// serverFor maps a chunk of a path to its data server, striping
// consecutive chunks round-robin from a per-file starting server.
func (c *Client) serverFor(p string, chunk int64) string {
	h := fnv.New32a()
	h.Write([]byte(p))
	i := (int64(h.Sum32()) + chunk) % int64(len(c.cfg.DataAddrs))
	return c.cfg.DataAddrs[i]
}

// WriteAt stripes data across the data servers and bumps the file size
// at the MDS if the write extends it.
func (c *Client) WriteAt(at vclock.Time, p string, off int64, data []byte) (vclock.Time, error) {
	p = namespace.Clean(p)
	if len(c.cfg.DataAddrs) == 0 {
		return at, fmt.Errorf("dfs: no data servers configured")
	}
	st, at, err := c.Stat(at, p)
	if err != nil {
		return at, err
	}
	if st.IsDir() {
		return at, fsapi.WrapPath("write", p, fsapi.ErrIsDir)
	}
	for n := 0; n < len(data); {
		chunk := (off + int64(n)) / ChunkSize
		inOff := int((off + int64(n)) % ChunkSize)
		room := ChunkSize - inOff
		if room > len(data)-n {
			room = len(data) - n
		}
		e := wire.GetEncoder()
		e.String(p)
		e.Int64(chunk)
		e.Uint32(uint32(inOff))
		e.Blob(data[n : n+room])
		done, _, err := c.caller.Call(c.serverFor(p, chunk), "write", at, e.Bytes())
		wire.PutEncoder(e)
		if err != nil {
			return done, err
		}
		at = done
		n += room
	}
	if end := off + int64(len(data)); end > st.Size {
		st.Size = end
		return c.SetStat(at, p, st)
	}
	return at, nil
}

// ReadAt reads up to n bytes from the striped chunks.
func (c *Client) ReadAt(at vclock.Time, p string, off int64, n int) ([]byte, vclock.Time, error) {
	p = namespace.Clean(p)
	if len(c.cfg.DataAddrs) == 0 {
		return nil, at, fmt.Errorf("dfs: no data servers configured")
	}
	st, at, err := c.Stat(at, p)
	if err != nil {
		return nil, at, err
	}
	if off >= st.Size {
		return nil, at, nil
	}
	if max := st.Size - off; int64(n) > max {
		n = int(max)
	}
	out := make([]byte, 0, n)
	for len(out) < n {
		pos := off + int64(len(out))
		chunk := pos / ChunkSize
		inOff := int(pos % ChunkSize)
		want := n - len(out)
		if room := ChunkSize - inOff; want > room {
			want = room
		}
		e := wire.GetEncoder()
		e.String(p)
		e.Int64(chunk)
		e.Uint32(uint32(inOff))
		e.Uint32(uint32(want))
		done, resp, err := c.caller.Call(c.serverFor(p, chunk), "read", at, e.Bytes())
		wire.PutEncoder(e)
		if err != nil {
			return nil, done, err
		}
		at = done
		d := wire.NewDecoder(resp)
		part := d.Blob()
		if derr := d.Finish(); derr != nil {
			return nil, at, derr
		}
		if len(part) < want {
			// Sparse region: zero-fill to the requested length.
			part = append(part, make([]byte, want-len(part))...)
		}
		out = append(out, part...)
	}
	return out, at, nil
}

// Fsync flushes a file's chunks (one device sync on its first stripe
// server).
func (c *Client) Fsync(at vclock.Time, p string) (vclock.Time, error) {
	p = namespace.Clean(p)
	if len(c.cfg.DataAddrs) == 0 {
		return at, nil
	}
	done, _, err := c.caller.Call(c.serverFor(p, 0), "sync", at, nil)
	return done, err
}

// RemoveData drops a file's chunks from every data server.
func (c *Client) RemoveData(at vclock.Time, p string) (vclock.Time, error) {
	p = namespace.Clean(p)
	latest := at
	for _, addr := range c.cfg.DataAddrs {
		e := wire.GetEncoder()
		e.String(p)
		done, _, err := c.caller.Call(addr, "drop", at, e.Bytes())
		wire.PutEncoder(e)
		if err != nil {
			return done, err
		}
		latest = vclock.Max(latest, done)
	}
	return latest, nil
}

// StatBatch resolves a set of paths in as few MDS round trips as
// possible: one "stat_batch" RPC per metadata server touched. It has
// StatFresh's semantics per path — the final component always comes
// from the MDS (never a dentry snapshot) and refreshes the dentry
// cache — because Pacon's bulk miss-loads install the results as the
// region's primary copies. Ancestor resolution still happens per path.
// The returned slice has one entry per path; a non-nil batch error
// means the whole batch's disposition is unknown (transport failure)
// and the caller should fall back to singleton StatFresh calls.
func (c *Client) StatBatch(at vclock.Time, paths []string) ([]fsapi.StatResult, vclock.Time, error) {
	if len(paths) == 0 {
		return nil, at, nil
	}
	out := make([]fsapi.StatResult, len(paths))
	cleaned := make([]string, len(paths))
	send := make([]int, 0, len(paths))
	for i, p := range paths {
		cleaned[i] = namespace.Clean(p)
		done, err := c.resolveAncestors(at, cleaned[i])
		at = done
		if err != nil {
			out[i].Err = err
			continue
		}
		send = append(send, i)
	}
	if len(send) == 0 {
		return out, at, nil
	}
	groups := make(map[string][]int)
	var order []string
	for _, i := range send {
		addr := c.mdsFor(cleaned[i])
		if _, ok := groups[addr]; !ok {
			order = append(order, addr)
		}
		groups[addr] = append(groups[addr], i)
	}
	// One RPC per MDS, all issued at the same virtual instant; the
	// batch completes when the slowest group does. Multiple groups fan
	// out concurrently — each fills a disjoint slice of out.
	statGroup := func(addr string, idxs []int) (vclock.Time, error) {
		c.mu.Lock()
		c.lookupRPCs += int64(len(idxs))
		c.mu.Unlock()
		e := wire.GetEncoder()
		ps := make([]string, len(idxs))
		for j, i := range idxs {
			ps[j] = cleaned[i]
		}
		e.Strings(ps)
		done, resp, err := c.caller.Call(addr, "stat_batch", at, e.Bytes())
		wire.PutEncoder(e)
		if err != nil {
			return done, err
		}
		d := wire.NewDecoder(resp)
		n := d.Uvarint()
		if n != uint64(len(idxs)) {
			return done, fmt.Errorf("dfs: stat_batch returned %d results for %d paths", n, len(idxs))
		}
		for _, i := range idxs {
			code := d.Byte()
			if code == fsapi.CodeOK {
				out[i].Stat = fsapi.DecodeStat(d)
				if d.Err() == nil {
					c.cachePut(cleaned[i], out[i].Stat, done)
				}
			} else {
				detail := d.String()
				out[i].Err = fsapi.ErrOf(code, detail)
				c.cacheDrop(cleaned[i])
			}
		}
		return done, d.Finish()
	}
	latest := at
	if len(order) == 1 {
		done, err := statGroup(order[0], groups[order[0]])
		if err != nil {
			return nil, done, err
		}
		latest = vclock.Max(latest, done)
	} else {
		dones := make([]vclock.Time, len(order))
		gerrs := make([]error, len(order))
		var wg sync.WaitGroup
		for gi, addr := range order {
			wg.Add(1)
			go func(gi int, addr string) {
				defer wg.Done()
				dones[gi], gerrs[gi] = statGroup(addr, groups[addr])
			}(gi, addr)
		}
		wg.Wait()
		for gi := range order {
			latest = vclock.Max(latest, dones[gi])
			if gerrs[gi] != nil {
				return nil, latest, gerrs[gi]
			}
		}
	}
	return out, latest, nil
}

// ApplyBatch applies a set of independent-path mutations in as few MDS
// round trips as possible: one RPC per metadata server touched, instead
// of one per op. Ancestor resolution still happens per op (the cached
// dentries make it nearly free for the commit module's long-TTL
// clients). The returned slice has one entry per op — nil for success —
// and a non-nil batch error means the whole batch's disposition is
// unknown (transport failure) and the caller should fall back to
// singleton application.
func (c *Client) ApplyBatch(at vclock.Time, ops []fsapi.BatchOp) ([]error, vclock.Time, error) {
	if len(ops) == 0 {
		return nil, at, nil
	}
	errs := make([]error, len(ops))
	// Resolve ancestors first (serially — each resolve advances the
	// virtual clock like any client-side traversal would).
	send := make([]int, 0, len(ops))
	for i := range ops {
		ops[i].Path = namespace.Clean(ops[i].Path)
		done, err := c.resolveAncestors(at, ops[i].Path)
		at = done
		if err != nil {
			errs[i] = err
			continue
		}
		send = append(send, i)
	}
	if len(send) == 0 {
		return errs, at, nil
	}
	// Group the survivors by owning MDS, preserving order within a
	// group. Ops on structural (mirrored) paths divert to the
	// all-shards path — rare, since Pacon mutates workspace-interior
	// paths, not the workspace skeleton.
	groups := make(map[string][]int)
	var order []string
	var structural []int
	for _, i := range send {
		if c.sharded() && c.cfg.Shards.Structural(ops[i].Path) {
			structural = append(structural, i)
			continue
		}
		addr := c.mdsFor(ops[i].Path)
		if _, ok := groups[addr]; !ok {
			order = append(order, addr)
		}
		groups[addr] = append(groups[addr], i)
	}
	latest := at
	for _, i := range structural {
		done, err := c.applyOpAllShards(at, ops[i])
		latest = vclock.Max(latest, done)
		errs[i] = err
	}
	// One RPC per MDS, all issued at the same virtual instant; the batch
	// completes when the slowest group does. Multiple groups fan out
	// concurrently — each fills a disjoint slice of errs.
	applyGroup := func(addr string, idxs []int) (vclock.Time, error) {
		e := wire.GetEncoder()
		e.Uint32(c.cfg.Cred.UID)
		e.Uint32(c.cfg.Cred.GID)
		e.Uvarint(uint64(len(idxs)))
		for _, i := range idxs {
			op := ops[i]
			e.Byte(byte(op.Kind))
			e.Bool(op.IfExists)
			e.String(op.Path)
			fsapi.EncodeStat(e, op.Stat)
		}
		done, resp, err := c.caller.Call(addr, "apply_batch", at, e.Bytes())
		wire.PutEncoder(e)
		if err != nil {
			return done, err
		}
		d := wire.NewDecoder(resp)
		n := d.Uvarint()
		if n != uint64(len(idxs)) {
			return done, fmt.Errorf("dfs: apply_batch returned %d results for %d ops", n, len(idxs))
		}
		for _, i := range idxs {
			code := d.Byte()
			detail := d.String()
			errs[i] = fsapi.ErrOf(code, detail)
			if errs[i] == nil {
				switch ops[i].Kind {
				case fsapi.BatchSetStat, fsapi.BatchRemove:
					c.cacheDrop(ops[i].Path)
				}
			}
		}
		return done, d.Finish()
	}
	if len(order) == 1 {
		done, err := applyGroup(order[0], groups[order[0]])
		if err != nil {
			return nil, done, err
		}
		latest = vclock.Max(latest, done)
	} else if len(order) > 1 {
		dones := make([]vclock.Time, len(order))
		gerrs := make([]error, len(order))
		var wg sync.WaitGroup
		for gi, addr := range order {
			wg.Add(1)
			go func(gi int, addr string) {
				defer wg.Done()
				dones[gi], gerrs[gi] = applyGroup(addr, groups[addr])
			}(gi, addr)
		}
		wg.Wait()
		for gi := range order {
			latest = vclock.Max(latest, dones[gi])
			if gerrs[gi] != nil {
				return nil, latest, gerrs[gi]
			}
		}
	}
	return errs, latest, nil
}
