package dfs

import (
	"pacon/internal/obs"
)

// RegisterHotMetrics exports the metadata-service pool's load-skew
// gauges through an observability registry: imbalance of served ops and
// of accumulated virtual queue wait across the MDS shards. Both are
// permille ratios (see obs.Skew) — a hot subtree concentrates its
// traffic on the shard that owns it, so a max/mean well above 1000 on a
// sharded cluster is the shard-side face of a path hotspot and the
// signal a rebalancer would act on. No-op on a nil registry; on a
// single-MDS cluster the gauges read a flat 1000.
func (c *Cluster) RegisterHotMetrics(o *obs.Obs) {
	if o == nil {
		return
	}
	shardLoads := func(read func(m *MDS) int64) []int64 {
		loads := make([]int64, len(c.MDSes))
		for i, m := range c.MDSes {
			loads[i] = read(m)
		}
		return loads
	}
	servedOps := func(m *MDS) int64 {
		st := m.Stats()
		return st.Lookups + st.Reads + st.Writes
	}
	queueWait := func(m *MDS) int64 { return int64(m.Resource().QueueWait()) }
	o.RegisterGauge("hot_shard_ops_maxmean_permille", func() int64 {
		return obs.Skew(shardLoads(servedOps)).MaxMeanPermille
	})
	o.RegisterGauge("hot_shard_ops_cv_permille", func() int64 {
		return obs.Skew(shardLoads(servedOps)).CVPermille
	})
	o.RegisterGauge("hot_shard_queue_wait_maxmean_permille", func() int64 {
		return obs.Skew(shardLoads(queueWait)).MaxMeanPermille
	})
	o.RegisterGauge("hot_shard_queue_wait_cv_permille", func() int64 {
		return obs.Skew(shardLoads(queueWait)).CVPermille
	})
}
