package wire

import "testing"

// FuzzDecoder feeds arbitrary bytes through every decode method; the
// contract is "no panics, errors reported via Err" regardless of input.
func FuzzDecoder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x05, 'h', 'e', 'l', 'l', 'o'})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	e := NewEncoder(64)
	e.String("/w/dir/file")
	e.Uint64(42)
	e.Blob([]byte{1, 2, 3})
	f.Add(append([]byte(nil), e.Bytes()...))

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		_ = d.String()
		_ = d.Blob()
		_ = d.BlobView()
		_ = d.Uvarint()
		_ = d.Uint64()
		_ = d.Uint32()
		_ = d.Uint16()
		_ = d.Int64()
		_ = d.Byte()
		_ = d.Bool()
		_ = d.Finish()
		_ = d.Remaining()
	})
}

// FuzzRoundTrip checks encode→decode identity for arbitrary content.
func FuzzRoundTrip(f *testing.F) {
	f.Add("path", []byte("value"), uint64(7))
	f.Add("", []byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, s string, b []byte, u uint64) {
		e := NewEncoder(16)
		e.String(s)
		e.Blob(b)
		e.Uvarint(u)
		d := NewDecoder(e.Bytes())
		if got := d.String(); got != s {
			t.Fatalf("string %q -> %q", s, got)
		}
		if got := d.Blob(); string(got) != string(b) {
			t.Fatalf("blob mismatch")
		}
		if got := d.Uvarint(); got != u {
			t.Fatalf("uvarint %d -> %d", u, got)
		}
		if err := d.Finish(); err != nil {
			t.Fatal(err)
		}
	})
}
