// Package wire implements the compact binary codec used on every RPC
// payload in this repository: uvarint-length framing for strings and
// blobs, fixed-width integers in little-endian, and a sticky-error
// Decoder so call sites can decode whole messages before checking one
// error. The codec is deliberately reflection-free: metadata records are
// tiny and encode/decode sits on the hot path of every simulated op.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrTruncated reports a decode past the end of the buffer.
var ErrTruncated = errors.New("wire: truncated message")

// ErrTooLong reports a string/blob length field that exceeds the
// remaining buffer (corrupt or hostile input).
var ErrTooLong = errors.New("wire: declared length exceeds buffer")

// Encoder appends primitive values to a growing buffer. The zero value
// is ready to use; Reuse with Reset to amortize allocations.
type Encoder struct{ buf []byte }

// NewEncoder returns an encoder with the given capacity hint.
func NewEncoder(capHint int) *Encoder { return &Encoder{buf: make([]byte, 0, capHint)} }

// encoderPool recycles request-side encoders across RPCs. Every simulated
// op builds at least one tiny wire message, so the allocations otherwise
// dominate the encode hot path (see BenchmarkEncoderPooled).
var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// poolMaxCap bounds the buffers the pool retains: one oversized frame
// (a data chunk, a big readdir) must not pin megabytes forever.
const poolMaxCap = 64 << 10

// GetEncoder returns an empty encoder from the pool. Pair with
// PutEncoder once the encoded bytes have been handed off.
func GetEncoder() *Encoder {
	e := encoderPool.Get().(*Encoder)
	e.Reset()
	return e
}

// PutEncoder recycles e. The caller must be done with every slice
// obtained from e.Bytes(): in this repository that holds for request
// bodies (transports consume the frame synchronously — the in-process
// bus dispatches before Call returns, the TCP transport writes the frame
// to the socket) but NOT for handler responses, which the RPC layer
// retains after the handler returns.
func PutEncoder(e *Encoder) {
	if cap(e.buf) > poolMaxCap {
		return
	}
	encoderPool.Put(e)
}

// Bytes returns the encoded message. The slice aliases the encoder's
// buffer; callers that retain it across Reset must copy.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the current encoded length.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset clears the buffer for reuse.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Byte appends a raw byte.
func (e *Encoder) Byte(v byte) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Byte(1)
	} else {
		e.Byte(0)
	}
}

// Uint16 appends a fixed-width little-endian uint16.
func (e *Encoder) Uint16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// Uint32 appends a fixed-width little-endian uint32.
func (e *Encoder) Uint32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// Uint64 appends a fixed-width little-endian uint64.
func (e *Encoder) Uint64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// Int64 appends a fixed-width int64 (two's complement).
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Uvarint appends a varint-encoded unsigned integer.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// String appends a uvarint length followed by the raw bytes.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes appends a uvarint length followed by the blob. A nil slice
// round-trips as an empty one.
func (e *Encoder) Blob(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Strings appends a uvarint count followed by each string. A nil slice
// round-trips as an empty one.
func (e *Encoder) Strings(ss []string) {
	e.Uvarint(uint64(len(ss)))
	for _, s := range ss {
		e.String(s)
	}
}

// Decoder consumes a buffer produced by Encoder. The first failure
// sticks: subsequent reads return zero values and Err reports the cause.
type Decoder struct {
	b   []byte
	off int
	err error
}

// NewDecoder wraps a buffer for decoding.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// decoderPool recycles decoders across RPCs, symmetrically with
// encoderPool: every request is decoded at least once (server side) and
// most responses once more (client side), so the per-op Decoder
// allocations otherwise rival the encoder's on the hot path.
var decoderPool = sync.Pool{New: func() any { return new(Decoder) }}

// GetDecoder returns a pooled decoder wrapping b. Pair with PutDecoder
// once every value read from it has been consumed or copied.
func GetDecoder(b []byte) *Decoder {
	d := decoderPool.Get().(*Decoder)
	d.Reset(b)
	return d
}

// PutDecoder recycles d. The caller must be done with the decoder itself
// (values read from it are unaffected: String/Blob copy out of the
// buffer, and BlobView slices alias the input buffer, not the Decoder).
func PutDecoder(d *Decoder) {
	d.Reset(nil)
	decoderPool.Put(d)
}

// Reset rewinds the decoder onto a new buffer, clearing any sticky
// error.
func (d *Decoder) Reset(b []byte) { d.b, d.off, d.err = b, 0, nil }

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

// Finish returns an error if decoding failed or bytes remain unread —
// useful to catch schema drift between encoder and decoder.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("wire: %d trailing bytes", len(d.b)-d.off)
	}
	return nil
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.b) {
		d.fail(ErrTruncated)
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

// Byte reads one raw byte.
func (d *Decoder) Byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte boolean.
func (d *Decoder) Bool() bool { return d.Byte() != 0 }

// Uint16 reads a fixed-width little-endian uint16.
func (d *Decoder) Uint16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// Uint32 reads a fixed-width little-endian uint32.
func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Uint64 reads a fixed-width little-endian uint64.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int64 reads a fixed-width int64.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Uvarint reads a varint-encoded unsigned integer.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail(ErrTruncated)
		return 0
	}
	d.off += n
	return v
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > math.MaxInt32 || int(n) > d.Remaining() {
		d.fail(ErrTooLong)
		return ""
	}
	return string(d.take(int(n)))
}

// Blob reads a length-prefixed byte slice. The result is a copy, safe to
// retain after the underlying buffer is reused.
func (d *Decoder) Blob() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > math.MaxInt32 || int(n) > d.Remaining() {
		d.fail(ErrTooLong)
		return nil
	}
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// Strings reads a uvarint count followed by that many strings.
func (d *Decoder) Strings() []string {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) {
		// Every string costs at least its one-byte length prefix, so a
		// count beyond Remaining is corrupt — reject before allocating.
		d.fail(ErrTooLong)
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, d.String())
	}
	if d.err != nil {
		return nil
	}
	return out
}

// BlobView is Blob without the defensive copy, for hot paths where the
// caller promises not to retain the slice past the buffer's lifetime.
func (d *Decoder) BlobView() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > math.MaxInt32 || int(n) > d.Remaining() {
		d.fail(ErrTooLong)
		return nil
	}
	return d.take(int(n))
}
