package wire

import "testing"

func BenchmarkEncodeStatSized(b *testing.B) {
	e := NewEncoder(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.Byte(1)
		e.Uint16(0o644)
		e.Uint32(1000)
		e.Uint32(1000)
		e.Int64(4096)
		e.Uint32(1)
		e.Int64(123456789)
		e.Int64(987654321)
		e.Blob(nil)
	}
}

func BenchmarkDecodeStatSized(b *testing.B) {
	e := NewEncoder(128)
	e.Byte(1)
	e.Uint16(0o644)
	e.Uint32(1000)
	e.Uint32(1000)
	e.Int64(4096)
	e.Uint32(1)
	e.Int64(123456789)
	e.Int64(987654321)
	e.Blob(nil)
	buf := e.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(buf)
		_ = d.Byte()
		_ = d.Uint16()
		_ = d.Uint32()
		_ = d.Uint32()
		_ = d.Int64()
		_ = d.Uint32()
		_ = d.Int64()
		_ = d.Int64()
		_ = d.BlobView()
		if d.Err() != nil {
			b.Fatal(d.Err())
		}
	}
}

func BenchmarkStringRoundTrip(b *testing.B) {
	const path = "/scratch/app1/output/rank0042/checkpoint.0017.dat"
	e := NewEncoder(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.String(path)
		d := NewDecoder(e.Bytes())
		if d.String() != path {
			b.Fatal("mismatch")
		}
	}
}

// The two benchmarks below measure the allocation cost of building one
// typical request frame (a memcache store body: key + flags + expect +
// value blob). Run with -benchmem: the fresh-encoder variant allocates a
// buffer per message, the pooled variant amortizes it away — the
// difference is the per-RPC garbage the pool removes from the encode hot
// path.

func buildStoreBody(e *Encoder, key string, value []byte) {
	e.String(key)
	e.Uint32(0)
	e.Uint64(42)
	e.Blob(value)
}

func BenchmarkEncoderFresh(b *testing.B) {
	value := make([]byte, 96)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEncoder(len(value) + 20)
		buildStoreBody(e, "/w/some/metadata/path", value)
		_ = e.Bytes()
	}
}

func BenchmarkEncoderPooled(b *testing.B) {
	value := make([]byte, 96)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := GetEncoder()
		buildStoreBody(e, "/w/some/metadata/path", value)
		_ = e.Bytes()
		PutEncoder(e)
	}
}

// BenchmarkPooledRoundTrip is the codec's full hot-path shape: build a
// store body from the pool, then decode it back with a pooled decoder
// reading views. Run with -benchmem; the expected figure is 0 allocs/op
// (gated by TestPooledRoundTripZeroAlloc).
func BenchmarkPooledRoundTrip(b *testing.B) {
	value := make([]byte, 96)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := GetEncoder()
		buildStoreBody(e, "/w/some/metadata/path", value)
		d := GetDecoder(e.Bytes())
		_ = d.BlobView()
		_ = d.Uint32()
		_ = d.Uint64()
		_ = d.BlobView()
		if err := d.Finish(); err != nil {
			b.Fatal(err)
		}
		PutDecoder(d)
		PutEncoder(e)
	}
}
