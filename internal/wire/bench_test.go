package wire

import "testing"

func BenchmarkEncodeStatSized(b *testing.B) {
	e := NewEncoder(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.Byte(1)
		e.Uint16(0o644)
		e.Uint32(1000)
		e.Uint32(1000)
		e.Int64(4096)
		e.Uint32(1)
		e.Int64(123456789)
		e.Int64(987654321)
		e.Blob(nil)
	}
}

func BenchmarkDecodeStatSized(b *testing.B) {
	e := NewEncoder(128)
	e.Byte(1)
	e.Uint16(0o644)
	e.Uint32(1000)
	e.Uint32(1000)
	e.Int64(4096)
	e.Uint32(1)
	e.Int64(123456789)
	e.Int64(987654321)
	e.Blob(nil)
	buf := e.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(buf)
		_ = d.Byte()
		_ = d.Uint16()
		_ = d.Uint32()
		_ = d.Uint32()
		_ = d.Int64()
		_ = d.Uint32()
		_ = d.Int64()
		_ = d.Int64()
		_ = d.BlobView()
		if d.Err() != nil {
			b.Fatal(d.Err())
		}
	}
}

func BenchmarkStringRoundTrip(b *testing.B) {
	const path = "/scratch/app1/output/rank0042/checkpoint.0017.dat"
	e := NewEncoder(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.String(path)
		d := NewDecoder(e.Bytes())
		if d.String() != path {
			b.Fatal("mismatch")
		}
	}
}
