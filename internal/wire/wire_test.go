package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTripAllTypes(t *testing.T) {
	e := NewEncoder(64)
	e.Byte(0xAB)
	e.Bool(true)
	e.Bool(false)
	e.Uint16(0xBEEF)
	e.Uint32(0xDEADBEEF)
	e.Uint64(1 << 62)
	e.Int64(-12345)
	e.Uvarint(300)
	e.String("hello/world")
	e.Blob([]byte{1, 2, 3})
	e.Blob(nil)

	d := NewDecoder(e.Bytes())
	if got := d.Byte(); got != 0xAB {
		t.Fatalf("Byte = %x", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool mismatch")
	}
	if got := d.Uint16(); got != 0xBEEF {
		t.Fatalf("Uint16 = %x", got)
	}
	if got := d.Uint32(); got != 0xDEADBEEF {
		t.Fatalf("Uint32 = %x", got)
	}
	if got := d.Uint64(); got != 1<<62 {
		t.Fatalf("Uint64 = %x", got)
	}
	if got := d.Int64(); got != -12345 {
		t.Fatalf("Int64 = %d", got)
	}
	if got := d.Uvarint(); got != 300 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := d.String(); got != "hello/world" {
		t.Fatalf("String = %q", got)
	}
	if got := d.Blob(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Blob = %v", got)
	}
	if got := d.Blob(); len(got) != 0 {
		t.Fatalf("nil Blob = %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedDecodeSticks(t *testing.T) {
	e := NewEncoder(8)
	e.Uint64(42)
	d := NewDecoder(e.Bytes()[:4])
	if got := d.Uint64(); got != 0 {
		t.Fatalf("truncated Uint64 = %d, want 0", got)
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("err = %v", d.Err())
	}
	// Error sticks: later reads stay zero and don't panic.
	if d.Byte() != 0 || d.String() != "" || d.Blob() != nil {
		t.Fatal("reads after error must return zero values")
	}
	if d.Finish() == nil {
		t.Fatal("Finish must report the sticky error")
	}
}

func TestDeclaredLengthBeyondBuffer(t *testing.T) {
	e := NewEncoder(8)
	e.Uvarint(1000) // claims 1000-byte string
	e.buf = append(e.buf, "short"...)
	d := NewDecoder(e.Bytes())
	if got := d.String(); got != "" {
		t.Fatalf("String = %q", got)
	}
	if !errors.Is(d.Err(), ErrTooLong) {
		t.Fatalf("err = %v", d.Err())
	}
}

func TestTrailingBytesDetected(t *testing.T) {
	e := NewEncoder(8)
	e.Uint32(7)
	e.Byte(9)
	d := NewDecoder(e.Bytes())
	d.Uint32()
	if err := d.Finish(); err == nil {
		t.Fatal("Finish must flag trailing bytes")
	}
}

func TestBlobCopiesButViewAliases(t *testing.T) {
	e := NewEncoder(8)
	e.Blob([]byte{1, 2, 3})
	buf := e.Bytes()

	d := NewDecoder(buf)
	got := d.Blob()
	buf[len(buf)-1] = 99
	if got[2] != 3 {
		t.Fatal("Blob must copy out of the buffer")
	}

	d2 := NewDecoder(buf)
	view := d2.BlobView()
	if view[2] != 99 {
		t.Fatal("BlobView must alias the buffer")
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(8)
	e.String("abc")
	e.Reset()
	if e.Len() != 0 {
		t.Fatal("Reset must clear")
	}
	e.String("xy")
	d := NewDecoder(e.Bytes())
	if d.String() != "xy" {
		t.Fatal("reuse after Reset broken")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(s string, b []byte, u uint64, i int64, flag bool) bool {
		e := NewEncoder(32)
		e.String(s)
		e.Blob(b)
		e.Uvarint(u)
		e.Int64(i)
		e.Bool(flag)
		d := NewDecoder(e.Bytes())
		gs := d.String()
		gb := d.Blob()
		gu := d.Uvarint()
		gi := d.Int64()
		gf := d.Bool()
		if d.Finish() != nil {
			return false
		}
		return gs == s && bytes.Equal(gb, b) && gu == u && gi == i && gf == flag
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRandomGarbageNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		d := NewDecoder(b)
		_ = d.String()
		d.Blob()
		d.Uvarint()
		d.Uint64()
		d.Uint32()
		d.Uint16()
		d.Byte()
		d.Bool()
		return true // reaching here without panic is the property
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
