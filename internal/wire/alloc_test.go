// Allocation gates for the pooled codec. testing.AllocsPerRun is
// meaningless under the race detector (instrumentation allocates), so
// this file is excluded from -race builds; `make check` runs the
// package both ways.
//go:build !race

package wire

import "testing"

// TestPooledRoundTripZeroAlloc pins the pooled encode+decode round trip
// of a small op frame (string key, flags, cas, value blob — the shape
// every cache RPC pushes through the codec) at zero heap allocations.
// The decode side reads the key and value as views into the frame;
// copying out (String/Blob) is the caller's explicit choice and cost.
func TestPooledRoundTripZeroAlloc(t *testing.T) {
	const key = "/w/some/metadata/path"
	value := make([]byte, 96)
	allocs := testing.AllocsPerRun(1000, func() {
		e := GetEncoder()
		e.String(key)
		e.Uint32(7)
		e.Uint64(42)
		e.Blob(value)

		d := GetDecoder(e.Bytes())
		k := d.BlobView() // strings and blobs share framing
		flags := d.Uint32()
		cas := d.Uint64()
		v := d.BlobView()
		err := d.Finish()
		PutDecoder(d)
		PutEncoder(e)
		if err != nil || string(k) != key || flags != 7 || cas != 42 || len(v) != 96 {
			t.Fatal("round trip mismatch")
		}
	})
	if allocs != 0 {
		t.Fatalf("pooled round trip allocates %.1f/op, want 0", allocs)
	}
}

// TestDecoderPoolReset guards the pool contract: a recycled decoder
// carries no state from its previous frame.
func TestDecoderPoolReset(t *testing.T) {
	e := GetEncoder()
	defer PutEncoder(e)
	e.String("stale")
	d := GetDecoder(e.Bytes())
	_ = d.String()
	_ = d.Byte() // drive it into an error state past the end
	if d.Err() == nil {
		t.Fatal("expected overrun error")
	}
	PutDecoder(d)

	d2 := GetDecoder([]byte{1, 'x'})
	defer PutDecoder(d2)
	if got := d2.String(); got != "x" || d2.Err() != nil {
		t.Fatalf("recycled decoder: %q err=%v", got, d2.Err())
	}
}
