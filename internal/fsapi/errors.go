package fsapi

import (
	"errors"
	"fmt"
)

// Sentinel errors shared by all metadata services. They mirror the POSIX
// errno vocabulary the paper's "namespace conventions" (§III.E.1) are
// phrased in: the object to be created must not exist (ErrExist), the
// parent must exist (ErrNotExist), the deleted object must have been
// created (ErrNotExist), rmdir requires an empty directory (ErrNotEmpty).
var (
	ErrNotExist   = errors.New("no such file or directory")
	ErrExist      = errors.New("file exists")
	ErrNotDir     = errors.New("not a directory")
	ErrIsDir      = errors.New("is a directory")
	ErrNotEmpty   = errors.New("directory not empty")
	ErrPermission = errors.New("permission denied")
	// ErrStale signals a CAS version conflict in the distributed cache;
	// callers retry the read-modify-write loop (§III.D.3).
	ErrStale = errors.New("stale version (cas conflict)")
	// ErrReadOnly signals a write into a merged consistent region, which
	// Pacon only supports read-only access to (§III.D.4).
	ErrReadOnly = errors.New("merged region is read-only")
	// ErrOutOfSpace signals that a cache or store refused an insert.
	ErrOutOfSpace = errors.New("out of space")
	// ErrClosed signals use of a closed service.
	ErrClosed = errors.New("service closed")
	// ErrTooLarge signals an inline write beyond the small-file threshold
	// on a path that must stay inline.
	ErrTooLarge = errors.New("object too large")
)

// PathError decorates a sentinel error with the operation and path, like
// os.PathError, so test failures and example output read naturally.
type PathError struct {
	Op   string
	Path string
	Err  error
}

// Error implements error.
func (e *PathError) Error() string { return fmt.Sprintf("%s %s: %v", e.Op, e.Path, e.Err) }

// Unwrap exposes the sentinel for errors.Is.
func (e *PathError) Unwrap() error { return e.Err }

// WrapPath wraps err with op/path context; nil stays nil.
func WrapPath(op, path string, err error) error {
	if err == nil {
		return nil
	}
	return &PathError{Op: op, Path: path, Err: err}
}

// Errno-style codes used on the wire. RPC responses carry a code instead
// of a free-form string so errors.Is keeps working across transports.
const (
	CodeOK uint8 = iota
	CodeNotExist
	CodeExist
	CodeNotDir
	CodeIsDir
	CodeNotEmpty
	CodePermission
	CodeStale
	CodeReadOnly
	CodeOutOfSpace
	CodeClosed
	CodeTooLarge
	CodeOther
)

// CodeOf maps an error chain to its wire code.
func CodeOf(err error) uint8 {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, ErrNotExist):
		return CodeNotExist
	case errors.Is(err, ErrExist):
		return CodeExist
	case errors.Is(err, ErrNotDir):
		return CodeNotDir
	case errors.Is(err, ErrIsDir):
		return CodeIsDir
	case errors.Is(err, ErrNotEmpty):
		return CodeNotEmpty
	case errors.Is(err, ErrPermission):
		return CodePermission
	case errors.Is(err, ErrStale):
		return CodeStale
	case errors.Is(err, ErrReadOnly):
		return CodeReadOnly
	case errors.Is(err, ErrOutOfSpace):
		return CodeOutOfSpace
	case errors.Is(err, ErrClosed):
		return CodeClosed
	case errors.Is(err, ErrTooLarge):
		return CodeTooLarge
	default:
		return CodeOther
	}
}

// ErrOf maps a wire code back to the sentinel error (nil for CodeOK).
// CodeOther round-trips as a generic error carrying the supplied detail.
func ErrOf(code uint8, detail string) error {
	switch code {
	case CodeOK:
		return nil
	case CodeNotExist:
		return ErrNotExist
	case CodeExist:
		return ErrExist
	case CodeNotDir:
		return ErrNotDir
	case CodeIsDir:
		return ErrIsDir
	case CodeNotEmpty:
		return ErrNotEmpty
	case CodePermission:
		return ErrPermission
	case CodeStale:
		return ErrStale
	case CodeReadOnly:
		return ErrReadOnly
	case CodeOutOfSpace:
		return ErrOutOfSpace
	case CodeClosed:
		return ErrClosed
	case CodeTooLarge:
		return ErrTooLarge
	default:
		if detail == "" {
			detail = "remote error"
		}
		return errors.New(detail)
	}
}
