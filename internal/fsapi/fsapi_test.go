package fsapi

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"pacon/internal/wire"
)

func TestModeAllows(t *testing.T) {
	m := Mode(0o754) // user rwx, group r-x, other r--
	cases := []struct {
		class AccessClass
		want  AccessWant
		ok    bool
	}{
		{ClassUser, WantRead | WantWrite | WantExec, true},
		{ClassGroup, WantRead | WantExec, true},
		{ClassGroup, WantWrite, false},
		{ClassOther, WantRead, true},
		{ClassOther, WantExec, false},
		{ClassOther, WantRead | WantWrite, false},
	}
	for _, c := range cases {
		if got := m.Allows(c.class, c.want); got != c.ok {
			t.Errorf("Allows(%v, %v) = %v, want %v", c.class, c.want, got, c.ok)
		}
	}
}

func TestCredClassFor(t *testing.T) {
	c := Cred{UID: 10, GID: 20}
	if c.ClassFor(10, 99) != ClassUser {
		t.Fatal("uid match must be user class")
	}
	if c.ClassFor(99, 20) != ClassGroup {
		t.Fatal("gid match must be group class")
	}
	if c.ClassFor(99, 99) != ClassOther {
		t.Fatal("no match must be other class")
	}
}

func TestNewStatDefaults(t *testing.T) {
	cred := Cred{UID: 1, GID: 2}
	d := NewDirStat(cred, 0o755)
	if !d.IsDir() || d.UID != 1 || d.GID != 2 || d.Nlink != 2 || d.Mtime == 0 {
		t.Fatalf("dir stat = %+v", d)
	}
	f := NewFileStat(cred, 0o644)
	if f.IsDir() || f.Nlink != 1 {
		t.Fatalf("file stat = %+v", f)
	}
}

func TestStringers(t *testing.T) {
	if TypeFile.String() != "file" || TypeDir.String() != "dir" {
		t.Fatal("FileType.String wrong")
	}
	if FileType(9).String() == "" {
		t.Fatal("unknown type must still render")
	}
	if Mode(0o755).String() != "0755" {
		t.Fatalf("mode string = %s", Mode(0o755).String())
	}
}

func TestErrorCodesRoundTrip(t *testing.T) {
	sentinels := []error{
		nil, ErrNotExist, ErrExist, ErrNotDir, ErrIsDir, ErrNotEmpty,
		ErrPermission, ErrStale, ErrReadOnly, ErrOutOfSpace, ErrClosed, ErrTooLarge,
	}
	for _, err := range sentinels {
		code := CodeOf(err)
		back := ErrOf(code, "")
		if err == nil {
			if back != nil {
				t.Fatal("nil must round-trip to nil")
			}
			continue
		}
		if !errors.Is(back, err) {
			t.Fatalf("%v round-tripped to %v", err, back)
		}
	}
	// Wrapped errors map to their sentinel's code.
	wrapped := WrapPath("stat", "/x", ErrNotExist)
	if CodeOf(wrapped) != CodeNotExist {
		t.Fatal("wrapped error lost its code")
	}
	// Unknown errors keep their message through CodeOther.
	odd := errors.New("weird failure")
	if CodeOf(odd) != CodeOther {
		t.Fatal("unknown error must be CodeOther")
	}
	if got := ErrOf(CodeOther, "weird failure"); got.Error() != "weird failure" {
		t.Fatalf("detail lost: %v", got)
	}
	if got := ErrOf(CodeOther, ""); got == nil {
		t.Fatal("CodeOther with no detail must still be an error")
	}
}

func TestPathError(t *testing.T) {
	err := WrapPath("mkdir", "/a/b", ErrExist)
	if err.Error() != "mkdir /a/b: file exists" {
		t.Fatalf("message = %q", err.Error())
	}
	if !errors.Is(err, ErrExist) {
		t.Fatal("unwrap broken")
	}
	if WrapPath("op", "/p", nil) != nil {
		t.Fatal("nil must stay nil")
	}
}

func TestStatCodecRoundTrip(t *testing.T) {
	in := Stat{
		Type: TypeFile, Mode: 0o640, UID: 7, GID: 8,
		Size: 12345, Nlink: 3, Mtime: 111, Ctime: 222,
		Inline: []byte("inline-data"),
	}
	out, err := UnmarshalStat(MarshalStat(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.Mode != in.Mode || out.Size != in.Size ||
		out.UID != in.UID || out.GID != in.GID || out.Nlink != in.Nlink ||
		out.Mtime != in.Mtime || out.Ctime != in.Ctime || string(out.Inline) != string(in.Inline) {
		t.Fatalf("round trip: %+v vs %+v", in, out)
	}
}

func TestStatCodecProperty(t *testing.T) {
	f := func(typ bool, mode uint16, uid, gid uint32, size int64, inline []byte) bool {
		in := Stat{Mode: Mode(mode & 0o777), UID: uid, GID: gid, Size: size, Inline: inline}
		if typ {
			in.Type = TypeDir
		}
		out, err := UnmarshalStat(MarshalStat(in))
		if err != nil {
			return false
		}
		return out.Type == in.Type && out.Mode == in.Mode && out.Size == in.Size &&
			out.UID == in.UID && string(out.Inline) == string(in.Inline)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatCodecRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalStat([]byte{1, 2}); err == nil {
		t.Fatal("truncated stat must fail")
	}
	// Trailing junk is schema drift, not silently ignored.
	e := wire.NewEncoder(64)
	EncodeStat(e, Stat{})
	e.Byte(0xFF)
	if _, err := UnmarshalStat(e.Bytes()); err == nil {
		t.Fatal("trailing bytes must fail")
	}
}

func TestDirEntryUsage(t *testing.T) {
	ents := []DirEntry{{Name: "a", Type: TypeDir}, {Name: "b", Type: TypeFile}}
	if fmt.Sprintf("%s/%s", ents[0].Name, ents[0].Type) != "a/dir" {
		t.Fatal("DirEntry fields wrong")
	}
}
