// Package fsapi holds the file-system types shared by every metadata
// service in this repository: the BeeGFS-like DFS (internal/dfs), the
// IndexFS-like middleware (internal/indexfs) and the Pacon core
// (internal/core). Keeping one Stat/Mode/error vocabulary lets the bench
// harness drive all three systems through the same workload code.
package fsapi

import (
	"fmt"
	"time"
)

// FileType distinguishes regular files from directories. The paper's
// metadata operations (Table I) only concern these two kinds.
type FileType uint8

const (
	// TypeFile is a regular file.
	TypeFile FileType = iota
	// TypeDir is a directory.
	TypeDir
)

// String implements fmt.Stringer.
func (t FileType) String() string {
	switch t {
	case TypeFile:
		return "file"
	case TypeDir:
		return "dir"
	default:
		return fmt.Sprintf("filetype(%d)", uint8(t))
	}
}

// Mode is a POSIX-style permission bit set (lower 9 bits: rwxrwxrwx).
type Mode uint16

// Permission bit masks, mirroring POSIX octal classes.
const (
	ModeUserRead   Mode = 0o400
	ModeUserWrite  Mode = 0o200
	ModeUserExec   Mode = 0o100
	ModeGroupRead  Mode = 0o040
	ModeGroupWrite Mode = 0o020
	ModeGroupExec  Mode = 0o010
	ModeOtherRead  Mode = 0o004
	ModeOtherWrite Mode = 0o002
	ModeOtherExec  Mode = 0o001

	// ModeDefaultDir is the mode Pacon assigns to directories when the
	// application does not predefine permissions: full access for the
	// creator (paper §III.C "default permission settings similar to Linux").
	ModeDefaultDir Mode = 0o755
	// ModeDefaultFile is the default mode for regular files.
	ModeDefaultFile Mode = 0o644
)

// String renders the mode in octal, e.g. "0755".
func (m Mode) String() string { return fmt.Sprintf("0%o", uint16(m)) }

// AccessClass selects which permission triplet applies for a credential.
type AccessClass uint8

// Access classes in precedence order.
const (
	ClassUser AccessClass = iota
	ClassGroup
	ClassOther
)

// AccessWant is a requested access kind for permission checks.
type AccessWant uint8

// Requested access kinds.
const (
	WantRead AccessWant = 1 << iota
	WantWrite
	WantExec
)

// Allows reports whether mode m grants access "want" to class "class".
func (m Mode) Allows(class AccessClass, want AccessWant) bool {
	var shift uint
	switch class {
	case ClassUser:
		shift = 6
	case ClassGroup:
		shift = 3
	default:
		shift = 0
	}
	triplet := (uint16(m) >> shift) & 0o7
	if want&WantRead != 0 && triplet&0o4 == 0 {
		return false
	}
	if want&WantWrite != 0 && triplet&0o2 == 0 {
		return false
	}
	if want&WantExec != 0 && triplet&0o1 == 0 {
		return false
	}
	return true
}

// Cred identifies the system user an HPC application runs as. The paper
// assumes one system user per application (§II.A), so a Cred is carried by
// every client and checked against Stat.UID/GID.
type Cred struct {
	UID uint32
	GID uint32
}

// ClassFor returns the access class cred falls into for an object owned by
// (uid, gid).
func (c Cred) ClassFor(uid, gid uint32) AccessClass {
	switch {
	case c.UID == uid:
		return ClassUser
	case c.GID == gid:
		return ClassGroup
	default:
		return ClassOther
	}
}

// Stat is the metadata record for a file or directory. It is the value
// stored (encoded) in the Pacon distributed cache, in the IndexFS LSM
// tables and in the DFS namespace tree.
type Stat struct {
	Type  FileType
	Mode  Mode
	UID   uint32
	GID   uint32
	Size  int64
	Nlink uint32
	// Mtime/Ctime are wall-clock stamps in nanoseconds. They are carried
	// for fidelity; experiments use virtual time separately.
	Mtime int64
	Ctime int64
	// Inline holds small-file data stored together with the metadata
	// (paper §III.D.2: files at or below the threshold keep their data in
	// the same KV value so one request returns both).
	Inline []byte
}

// IsDir reports whether the stat describes a directory.
func (s Stat) IsDir() bool { return s.Type == TypeDir }

// NewDirStat builds a directory Stat with the supplied ownership.
func NewDirStat(cred Cred, mode Mode) Stat {
	now := time.Now().UnixNano()
	return Stat{Type: TypeDir, Mode: mode, UID: cred.UID, GID: cred.GID, Nlink: 2, Mtime: now, Ctime: now}
}

// NewFileStat builds a regular-file Stat with the supplied ownership.
func NewFileStat(cred Cred, mode Mode) Stat {
	now := time.Now().UnixNano()
	return Stat{Type: TypeFile, Mode: mode, UID: cred.UID, GID: cred.GID, Nlink: 1, Mtime: now, Ctime: now}
}

// DirEntry is one row of a readdir result.
type DirEntry struct {
	Name string
	Type FileType
}
