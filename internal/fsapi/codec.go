package fsapi

import "pacon/internal/wire"

// EncodeStat appends a Stat's wire form to e. Layout is shared by the
// DFS, IndexFS and the Pacon cache values so a record can migrate
// between systems without translation.
func EncodeStat(e *wire.Encoder, s Stat) {
	e.Byte(byte(s.Type))
	e.Uint16(uint16(s.Mode))
	e.Uint32(s.UID)
	e.Uint32(s.GID)
	e.Int64(s.Size)
	e.Uint32(s.Nlink)
	e.Int64(s.Mtime)
	e.Int64(s.Ctime)
	e.Blob(s.Inline)
}

// DecodeStat reads a Stat written by EncodeStat.
func DecodeStat(d *wire.Decoder) Stat {
	return Stat{
		Type:   FileType(d.Byte()),
		Mode:   Mode(d.Uint16()),
		UID:    d.Uint32(),
		GID:    d.Uint32(),
		Size:   d.Int64(),
		Nlink:  d.Uint32(),
		Mtime:  d.Int64(),
		Ctime:  d.Int64(),
		Inline: d.Blob(),
	}
}

// MarshalStat returns a Stat's standalone wire form.
func MarshalStat(s Stat) []byte {
	e := wire.NewEncoder(64 + len(s.Inline))
	EncodeStat(e, s)
	return e.Bytes()
}

// UnmarshalStat parses a standalone Stat.
func UnmarshalStat(b []byte) (Stat, error) {
	d := wire.NewDecoder(b)
	s := DecodeStat(d)
	if err := d.Finish(); err != nil {
		return Stat{}, err
	}
	return s, nil
}
