package fsapi

// BatchKind names a mutation inside a batched commit (one element of an
// apply_batch RPC). Only the four queue-carried mutations batch; rmtree
// and rename stay singleton dependent operations.
type BatchKind uint8

const (
	BatchCreate BatchKind = iota
	BatchMkdir
	BatchSetStat
	BatchRemove
)

// StatResult is one per-path outcome of a batched stat (the read-path
// analogue of ApplyBatch's per-op error slice): Stat is valid only when
// Err is nil.
type StatResult struct {
	Stat Stat
	Err  error
}

// BatchOp is one mutation of a batched DFS commit. Paths within a batch
// are independent (the commit module ships at most one op per path per
// batch), so the server may apply them in any order.
type BatchOp struct {
	Kind BatchKind
	Path string
	// Stat carries the full metadata for create/mkdir/setstat; unused for
	// remove.
	Stat Stat
	// IfExists marks a remove whose target may legitimately be absent:
	// the commit module's coalescer folds a queued create+remove pair
	// into one "ensure absent" remove, and the create may or may not have
	// reached the DFS (an earlier attempt could have been applied before
	// a retried batch). ErrNotExist is success for such a remove.
	IfExists bool
}
