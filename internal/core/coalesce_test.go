package core

import (
	"fmt"
	"testing"

	"pacon/internal/fsapi"
	"pacon/internal/vclock"
)

// --- mergeOps: one test per legality rule -------------------------------

func TestMergeCreateSetStat(t *testing.T) {
	for _, kind := range []OpKind{OpCreate, OpMkdir} {
		prev := Op{Kind: kind, Path: "/w/a", Stat: fsapi.Stat{Size: 1}, Seq: 1, Time: 10, AfterRm: true}
		next := Op{Kind: OpSetStat, Path: "/w/a", Stat: fsapi.Stat{Size: 9}, Seq: 2, Time: 20}
		m, ok := mergeOps(prev, next)
		if !ok {
			t.Fatalf("%v+setstat did not merge", kind)
		}
		if m.Kind != kind || m.Stat.Size != 9 || m.Seq != 2 || m.Time != 20 {
			t.Fatalf("%v+setstat merged to %+v", kind, m)
		}
		if !m.AfterRm {
			t.Fatalf("%v+setstat dropped AfterRm — the ErrExist disambiguation would break", kind)
		}
	}
}

func TestMergeSetStatSetStat(t *testing.T) {
	prev := Op{Kind: OpSetStat, Path: "/w/a", Stat: fsapi.Stat{Size: 1}, Seq: 1, Time: 30}
	next := Op{Kind: OpSetStat, Path: "/w/a", Stat: fsapi.Stat{Size: 2}, Seq: 2, Time: 20}
	m, ok := mergeOps(prev, next)
	if !ok || m.Kind != OpSetStat || m.Stat.Size != 2 || m.Seq != 2 {
		t.Fatalf("setstat+setstat = %+v, %v", m, ok)
	}
	if m.Time != 30 {
		t.Fatalf("merged time %d regressed below the pair's max 30", m.Time)
	}
}

func TestMergeSetStatRemove(t *testing.T) {
	prev := Op{Kind: OpSetStat, Path: "/w/a", Seq: 1, Time: 10}
	next := Op{Kind: OpRemove, Path: "/w/a", Seq: 2, Time: 20}
	m, ok := mergeOps(prev, next)
	if !ok || m.Kind != OpRemove || m.Seq != 2 || m.NetAbsent {
		t.Fatalf("setstat+remove = %+v, %v (remove must stay a real remove: the setstat's object exists on the DFS)", m, ok)
	}
}

func TestMergeCreateRemoveAnnihilates(t *testing.T) {
	prev := Op{Kind: OpCreate, Path: "/w/a", Seq: 1, Time: 10}
	next := Op{Kind: OpRemove, Path: "/w/a", Seq: 2, Time: 20}
	m, ok := mergeOps(prev, next)
	if !ok || m.Kind != OpRemove || !m.NetAbsent {
		t.Fatalf("create+remove = %+v, %v — expected a net-absence remove", m, ok)
	}
	if m.Seq != 2 || m.Time != 20 {
		t.Fatalf("net-absence remove lost seq/time: %+v", m)
	}
}

func TestMergeCreateAfterRmRemoveRefused(t *testing.T) {
	// The create replaced a removed marker: an older incarnation's remove
	// may still be queued on another node, and annihilating here would
	// strand it retrying against an absent path.
	prev := Op{Kind: OpCreate, Path: "/w/a", Seq: 3, Time: 10, AfterRm: true}
	next := Op{Kind: OpRemove, Path: "/w/a", Seq: 4, Time: 20}
	if m, ok := mergeOps(prev, next); ok {
		t.Fatalf("create(after-rm)+remove merged to %+v — unsound", m)
	}
}

func TestMergeRemoveNeverPrev(t *testing.T) {
	prev := Op{Kind: OpRemove, Path: "/w/a", Seq: 1, Time: 10}
	for _, next := range []Op{
		{Kind: OpCreate, Path: "/w/a", Seq: 2, Time: 20},
		{Kind: OpSetStat, Path: "/w/a", Seq: 2, Time: 20},
		{Kind: OpRemove, Path: "/w/a", Seq: 2, Time: 20},
	} {
		if m, ok := mergeOps(prev, next); ok {
			t.Fatalf("remove+%v merged to %+v — a remove must commit before its successor", next.Kind, m)
		}
	}
}

// --- coalesceOps: batch-level behaviour ---------------------------------

func TestCoalesceChainCollapsesToOne(t *testing.T) {
	ops := []Op{
		{Kind: OpCreate, Path: "/w/a", Seq: 1, Time: 1},
		{Kind: OpSetStat, Path: "/w/b", Seq: 1, Time: 2},
		{Kind: OpSetStat, Path: "/w/a", Stat: fsapi.Stat{Size: 5}, Seq: 2, Time: 3},
		{Kind: OpSetStat, Path: "/w/a", Stat: fsapi.Stat{Size: 7}, Seq: 3, Time: 4},
	}
	out, merged := coalesceOps(ops, nil, nil)
	if merged != 2 || len(out) != 2 {
		t.Fatalf("got %d ops, %d merged: %+v", len(out), merged, out)
	}
	if out[0].Kind != OpCreate || out[0].Path != "/w/a" || out[0].Stat.Size != 7 || out[0].Seq != 3 {
		t.Fatalf("chain collapsed to %+v, want create carrying the final stat", out[0])
	}
	if out[1].Path != "/w/b" {
		t.Fatalf("unrelated path disturbed: %+v", out[1])
	}
}

func TestCoalesceCreateSetStatRemoveIsNetAbsent(t *testing.T) {
	ops := []Op{
		{Kind: OpCreate, Path: "/w/a", Seq: 1, Time: 1},
		{Kind: OpSetStat, Path: "/w/a", Seq: 2, Time: 2},
		{Kind: OpRemove, Path: "/w/a", Seq: 3, Time: 3},
	}
	out, merged := coalesceOps(ops, nil, nil)
	if merged != 2 || len(out) != 1 || out[0].Kind != OpRemove || !out[0].NetAbsent {
		t.Fatalf("create+setstat+remove = %+v (merged %d), want one net-absence remove", out, merged)
	}
}

func TestCoalesceRemoveCreateStaysTwo(t *testing.T) {
	ops := []Op{
		{Kind: OpRemove, Path: "/w/a", Seq: 1, Time: 1},
		{Kind: OpCreate, Path: "/w/a", Seq: 2, Time: 2, AfterRm: true},
		{Kind: OpSetStat, Path: "/w/a", Stat: fsapi.Stat{Size: 3}, Seq: 3, Time: 3},
	}
	out, merged := coalesceOps(ops, nil, nil)
	if merged != 1 || len(out) != 2 {
		t.Fatalf("got %+v (merged %d), want remove then create", out, merged)
	}
	if out[0].Kind != OpRemove || out[1].Kind != OpCreate || !out[1].AfterRm || out[1].Stat.Size != 3 {
		t.Fatalf("remove/create ordering broken: %+v", out)
	}
}

func TestCoalesceSingletonUntouched(t *testing.T) {
	ops := []Op{{Kind: OpCreate, Path: "/w/a", Seq: 1}}
	out, merged := coalesceOps(ops, nil, nil)
	if merged != 0 || len(out) != 1 {
		t.Fatalf("singleton batch changed: %+v, %d", out, merged)
	}
}

// --- region-level: round-trip reduction ---------------------------------

// runCommitWorkload creates files, rewrites each once and removes a
// quarter of them, then drains, returning the region's commit-path stats.
func runCommitWorkload(t *testing.T, mutate func(*RegionConfig)) RegionStats {
	t.Helper()
	e := newEnv(t, 2, mutate)
	c := e.client(t, "node0")
	at := vclock.Time(0)
	var err error
	const files = 24
	for i := 0; i < files; i++ {
		p := fmt.Sprintf("/w/f%02d", i)
		if at, err = c.Create(at, p, 0o644); err != nil {
			t.Fatal(err)
		}
		if at, err = c.WriteAt(at, p, 0, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if i%4 == 0 {
			if at, err = c.Remove(at, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := e.region.Drain(at); err != nil {
		t.Fatal(err)
	}
	return e.region.Stats()
}

// TestCommitPathRoundTripReduction pins the PR's headline number: the
// batched+coalesced+conditional commit path spends at most half the cache
// round trips per committed op that the legacy path (client-side Get+CAS
// loops, no coalescing, op-at-a-time dequeue) does on the same workload.
func TestCommitPathRoundTripReduction(t *testing.T) {
	legacy := runCommitWorkload(t, func(cfg *RegionConfig) {
		cfg.ClientSideCommitOps = true
		cfg.DisableCoalesce = true
		cfg.CommitBatchSize = 1
	})
	tuned := runCommitWorkload(t, nil)

	if legacy.Committed == 0 || tuned.Committed == 0 {
		t.Fatalf("workload committed nothing: legacy %+v tuned %+v", legacy, tuned)
	}
	if tuned.Coalesced == 0 {
		t.Fatalf("tuned run never coalesced: %+v", tuned)
	}
	if tuned.BatchRPCs == 0 || tuned.BatchedOps == 0 {
		t.Fatalf("tuned run never used apply_batch: %+v", tuned)
	}
	// Both runs execute the identical client workload, so total cache
	// round trips spent committing it are directly comparable. (Per
	// committed op would be unfair to coalescing, which shrinks the
	// denominator too: a merged create+setstat is one committed op.)
	t.Logf("cache RPCs for the workload: legacy %d over %d commits, tuned %d over %d commits",
		legacy.CacheRPCs, legacy.Committed, tuned.CacheRPCs, tuned.Committed)
	if legacy.CacheRPCs < 2*tuned.CacheRPCs {
		t.Fatalf("cache round trips only dropped %.2fx (legacy %d, tuned %d), want >=2x",
			float64(legacy.CacheRPCs)/float64(tuned.CacheRPCs), legacy.CacheRPCs, tuned.CacheRPCs)
	}
	if tuned.BackendRPCs >= legacy.BackendRPCs {
		t.Fatalf("batching did not reduce backend RPCs: legacy %d, tuned %d", legacy.BackendRPCs, tuned.BackendRPCs)
	}
}
