package core

import (
	"sync"
	"time"
)

// This file is the consistency-lag half of the observability seam: it
// tracks, per node, the wall-clock enqueue times of every operation that
// entered the commit pipeline and has not yet reached a terminal state
// (committed, discarded, dropped, or absorbed by the coalescer). The
// oldest resident timestamp bounds how far the DFS backup copy trails
// the primary cache copy — the paper's inconsistency window, made
// measurable. Everything here is wall clock only and nil-safe: with
// Deps.Obs unset no op carries an EnqWall, every hook is one branch,
// and the trackers stay empty.

// lagTracker holds the in-flight enqueue timestamps of one node's
// pipeline, keyed by path. Parked and retrying ops keep their entry —
// they have not reached a terminal — so the max-staleness watermark
// covers them, unlike a queue-head gauge which forgets an op at dequeue.
type lagTracker struct {
	mu    sync.Mutex
	walls map[string][]int64
}

func (t *lagTracker) add(p string, wall int64) {
	t.mu.Lock()
	if t.walls == nil {
		t.walls = make(map[string][]int64)
	}
	t.walls[p] = append(t.walls[p], wall)
	t.mu.Unlock()
}

// remove drops one instance of wall for p; tolerant of a missing entry
// (an op enqueued before observability was attached terminates without
// a record).
func (t *lagTracker) remove(p string, wall int64) {
	t.mu.Lock()
	ws := t.walls[p]
	for i, w := range ws {
		if w == wall {
			ws[i] = ws[len(ws)-1]
			ws = ws[:len(ws)-1]
			break
		}
	}
	if len(ws) == 0 {
		delete(t.walls, p)
	} else {
		t.walls[p] = ws
	}
	t.mu.Unlock()
}

// oldest returns the minimum resident timestamp, or 0 when nothing is
// in flight.
func (t *lagTracker) oldest() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var min int64
	for _, ws := range t.walls {
		for _, w := range ws {
			if min == 0 || w < min {
				min = w
			}
		}
	}
	return min
}

// oldestFor returns the minimum resident timestamp for exactly path p,
// or 0 when p has nothing in flight.
func (t *lagTracker) oldestFor(p string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var min int64
	for _, w := range t.walls[p] {
		if min == 0 || w < min {
			min = w
		}
	}
	return min
}

// lagAdd registers an op's enqueue timestamp; called before the queue
// push (same ordering contract as the path tracker: the reverse order
// would let a fast commit process reach the terminal before the add and
// leak the entry forever, pinning the watermark).
func (r *Region) lagAdd(op Op) {
	if op.EnqWall == 0 {
		return
	}
	if t := r.lags[op.Node]; t != nil {
		t.add(op.Path, op.EnqWall)
	}
}

// lagRemove releases an op's timestamp at its terminal.
func (r *Region) lagRemove(op Op) {
	if op.EnqWall == 0 {
		return
	}
	if t := r.lags[op.Node]; t != nil {
		t.remove(op.Path, op.EnqWall)
	}
}

// OldestUnacked returns the age (ns of wall time) of the oldest
// operation in node's commit pipeline that has not reached the DFS —
// queued, in-flight, parked or retrying alike. 0 means the pipeline is
// empty or observability is disabled.
func (r *Region) OldestUnacked(node string) int64 {
	t := r.lags[node]
	if t == nil {
		return 0
	}
	w := t.oldest()
	if w == 0 {
		return 0
	}
	return time.Now().UnixNano() - w
}

// MaxStaleness is the region-wide consistency-lag watermark: the age of
// the oldest unacknowledged operation across every node's pipeline —
// an upper bound on how far any DFS backup copy currently trails its
// primary cache copy. 0 means fully converged (or observability off).
func (r *Region) MaxStaleness() int64 {
	var oldest int64
	for _, t := range r.lags {
		if w := t.oldest(); w != 0 && (oldest == 0 || w < oldest) {
			oldest = w
		}
	}
	if oldest == 0 {
		return 0
	}
	return time.Now().UnixNano() - oldest
}

// MaxCommitLag returns the largest single enqueue→durable latency
// observed so far (ns): the peak width of the inconsistency window for
// any op that did reach the DFS.
func (r *Region) MaxCommitLag() int64 { return r.maxLagNS.Load() }

// noteCommitLag folds one committed op's lag into the peak watermark.
func (r *Region) noteCommitLag(lag int64) {
	for {
		cur := r.maxLagNS.Load()
		if lag <= cur || r.maxLagNS.CompareAndSwap(cur, lag) {
			return
		}
	}
}

// QueueHeadAge returns the age (ns) of the oldest still-queued message
// across the region's commit queues — residency of the message each
// commit process will dequeue next. Narrower than MaxStaleness (an op
// leaves the queue long before it is durable); useful for telling
// "queue is backed up" from "commits are failing". 0 when queues are
// empty or wall tracking is off.
func (r *Region) QueueHeadAge() int64 {
	var oldest int64
	for _, q := range r.queues {
		if w, ok := q.OldestWall(); ok && (oldest == 0 || w < oldest) {
			oldest = w
		}
	}
	if oldest == 0 {
		return 0
	}
	return time.Now().UnixNano() - oldest
}

// PathPending reports whether any op for exactly path p is still in
// some node's commit pipeline. Unlike the lag trackers this is fed by
// the path trackers, which run regardless of observability — the
// auditor uses it to tell stale-pending from divergent even on a region
// with Deps.Obs unset.
func (r *Region) PathPending(p string) bool {
	for _, t := range r.trackers {
		t.mu.Lock()
		n := t.paths[p]
		t.mu.Unlock()
		if n > 0 {
			return true
		}
	}
	return false
}

// OldestPendingAge returns the age (ns) of the oldest in-flight op for
// exactly path p across all nodes, or 0 when none is tracked (path not
// pending, or observability disabled).
func (r *Region) OldestPendingAge(p string) int64 {
	var oldest int64
	for _, t := range r.lags {
		if w := t.oldestFor(p); w != 0 && (oldest == 0 || w < oldest) {
			oldest = w
		}
	}
	if oldest == 0 {
		return 0
	}
	return time.Now().UnixNano() - oldest
}

// Drop reasons label the ops_dropped_* counters and StageDrop trace
// notes: without them, an op that never reached the DFS silently
// narrows the commit_lag histogram (dropped ops record no lag) and the
// operator cannot tell budget exhaustion from a poisoned op.
const (
	dropReasonRetryBudget  = "retry_budget"  // CommitRetryLimit exhausted
	dropReasonKindConflict = "kind_conflict" // file/dir kind mismatch: creation can never apply
	dropReasonBackendError = "backend_error" // non-retryable DFS error
)

// DroppedByReason breaks the dropped-op total down by terminal reason.
func (r *Region) DroppedByReason() map[string]int64 {
	return map[string]int64{
		dropReasonRetryBudget:  r.droppedRetry.Load(),
		dropReasonKindConflict: r.droppedConflict.Load(),
		dropReasonBackendError: r.droppedBackend.Load(),
	}
}

// SampleCommitted returns up to limit committed (clean, non-removed)
// cache entries across the region's servers, decoded. This is the
// divergence auditor's sampling source: clean entries are exactly the
// ones the region claims are durable on the DFS, so any mismatch found
// for them is a real consistency violation, not in-flight lag.
// Server-side header iteration picks the keys; the values are then
// fetched via ForEach-style snapshots. limit <= 0 means everything.
func (r *Region) SampleCommitted(limit int) []CacheEntry {
	var out []CacheEntry
	for _, s := range r.servers {
		want := -1
		if limit > 0 {
			want = limit - len(out)
			if want <= 0 {
				return out
			}
		}
		for _, kv := range s.CommittedItems(want) {
			v, err := decodeCacheVal(kv.Value)
			if err != nil || v.dirty || v.removed {
				continue // raced a mutation between header scan and decode
			}
			out = append(out, CacheEntry{
				Path:  kv.Key,
				Large: v.large,
				Seq:   v.seq,
				Stat:  v.stat,
			})
		}
	}
	return out
}
