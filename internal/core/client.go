package core

import (
	"errors"
	"fmt"
	"time"

	"pacon/internal/fsapi"
	"pacon/internal/memcache"
	"pacon/internal/namespace"
	"pacon/internal/obs"
	"pacon/internal/rpc"
	"pacon/internal/vclock"
	"pacon/internal/wire"
)

// Client is one application process's handle on a consistent region. It
// implements the paper's Table I: create/mkdir/rm execute on the
// distributed cache and commit asynchronously; getattr reads the cache
// (loading from the DFS on miss); rmdir and readdir are synchronous
// barrier operations; everything outside the workspace is redirected to
// the DFS unchanged.
type Client struct {
	region  *Region
	node    string
	cache   *memcache.Client
	caller  *rpc.Caller
	backend Backend
	// ring is this node's observability event ring (nil when disabled).
	ring *obs.Ring
	// hot is this node's hotspot recorder (nil when disabled): every
	// top-level op records its path into the heavy-hitter sketch and
	// subtree rollup.
	hot *obs.NodeHot

	// parentMemo caches positive parent-existence checks per barrier
	// epoch: monotone until a dependent op can remove directories, at
	// which point the epoch changes and the memo resets. memoEpoch is
	// the epoch of the newest entry; when it advances, the stale
	// entries are swept so the memo stays bounded by the directories
	// touched in one epoch rather than growing for the client's
	// lifetime.
	parentMemo map[string]uint64
	memoEpoch  uint64

	// remoteCaches lazily built per merged peer ring.
	remoteCaches map[string]*memcache.Client

	// curSpan/curSampled are the active client op's trace state, set by
	// traceBegin at the public entry points. A Client already serves
	// one call at a time (parentMemo), so plain fields suffice;
	// spanPushed records that the span was handed to the commit queue,
	// which then owns its finalization.
	curSpan    uint64
	curSampled bool
	spanPushed bool
}

// NewClient builds a client bound to one of the region's nodes.
func (r *Region) NewClient(node string) (*Client, error) {
	if _, ok := r.queues[node]; !ok {
		return nil, fmt.Errorf("core: node %q is not part of region %q", node, r.cfg.Name)
	}
	caller := rpc.NewCaller(r.deps.Bus, r.cfg.Model, node)
	return &Client{
		region:       r,
		node:         node,
		cache:        memcache.NewClient(caller, r.ring),
		caller:       caller,
		backend:      r.newBackend(node),
		ring:         r.obsRing(node),
		hot:          r.obs.HotNode(node),
		parentMemo:   make(map[string]uint64),
		remoteCaches: make(map[string]*memcache.Client),
	}, nil
}

// opStart begins a client-visible-latency sample (0 when observability
// is disabled); opEnd records it. The pair measures the synchronous
// part of a client call in wall time — for async ops that is exactly
// the latency Pacon hides from the application.
func (c *Client) opStart() int64 {
	if c.region.obs == nil {
		return 0
	}
	return time.Now().UnixNano()
}

func (c *Client) opEnd(start int64) {
	if start != 0 {
		c.region.obs.Hist(obs.HistClientOp).RecordN(time.Now().UnixNano() - start)
	}
}

// traceBegin opens the op's trace at a public entry point: every op
// gets a span ID (as before), and the tail sampler decides whether this
// one is assembled end to end. Sampled ops tag the client's cache and
// backend callers with the span's trace context, so the servers they
// talk to record their side into the same span. Returns the span for
// the matching traceEnd, or 0 when disabled or nested (an op calling
// another op, e.g. Rmdir→Stat, keeps the outer trace).
func (c *Client) traceBegin(op, path string) uint64 {
	o := c.region.obs
	if o == nil || c.curSpan != 0 {
		return 0
	}
	// Hotspot attribution piggybacks on the same top-level-op gate: the
	// o==nil branch above is the entire cost when observability is off,
	// and nested ops don't double-count their outer op's path.
	c.hot.Record(path)
	span := o.Trace.NewSpan()
	c.curSpan = span
	c.curSampled = o.SampleNext()
	c.spanPushed = false
	if c.curSampled {
		o.BeginSpan(span)
		o.RecordSpanEvent(c.ring, obs.Event{
			Span: span, Stage: obs.StageClientStart,
			Op: op, Path: path, Wall: time.Now().UnixNano(),
		})
		c.caller.SetTrace(span)
		if tc, ok := c.backend.(traceCarrier); ok {
			tc.SetTrace(span)
		}
	}
	return span
}

// traceEnd closes the client side of the op's trace. Spans that never
// entered the commit queue (sync ops, failed calls) finalize here;
// enqueued spans finalize at their commit terminal.
func (c *Client) traceEnd(span uint64) {
	if span == 0 || span != c.curSpan {
		return
	}
	if c.curSampled {
		c.caller.ClearTrace()
		if tc, ok := c.backend.(traceCarrier); ok {
			tc.ClearTrace()
		}
		if !c.spanPushed {
			c.region.obs.FinalizeSpan(span)
		}
	}
	c.curSpan, c.curSampled, c.spanPushed = 0, false, false
}

// traceStage records a client-side stage event (e.g. the barrier
// return) on the active sampled span.
func (c *Client) traceStage(stage obs.Stage, op, path, note string) {
	if !c.curSampled {
		return
	}
	c.region.obs.RecordSpanEvent(c.ring, obs.Event{
		Span: c.curSpan, Stage: stage,
		Op: op, Path: path, Wall: time.Now().UnixNano(), Note: note,
	})
}

// Pace attaches a virtual-time pacer to the client's cache RPCs and, if
// the backend supports it, its DFS RPCs.
func (c *Client) Pace(p *vclock.Pacer, id int) {
	c.caller.Pace(p, id)
	if pb, ok := c.backend.(interface{ Pace(*vclock.Pacer, int) }); ok {
		pb.Pace(p, id)
	}
}

// Region returns the client's region.
func (c *Client) Region() *Region { return c.region }

// inWorkspace reports whether p belongs to this client's region.
func (c *Client) inWorkspace(p string) bool {
	return namespace.IsUnder(p, c.region.cfg.Workspace)
}

// overhead charges the per-op client-side cost.
func (c *Client) overhead(at vclock.Time) vclock.Time {
	return at.Add(c.region.cfg.Model.ClientOverhead)
}

// pushOp enqueues a commit operation on this node's queue, charging the
// publish cost (§III.D.1).
func (c *Client) pushOp(at vclock.Time, kind OpKind, p string, st fsapi.Stat, seq uint64) (vclock.Time, error) {
	return c.pushOpFlagged(at, kind, p, st, seq, false)
}

// pushOpFlagged is pushOp with the create-after-rm marker (see
// Op.AfterRm); only insert() sets it.
func (c *Client) pushOpFlagged(at vclock.Time, kind OpKind, p string, st fsapi.Stat, seq uint64, afterRm bool) (vclock.Time, error) {
	op := Op{Kind: kind, Path: p, Stat: st, Time: at, Seq: seq, Node: c.node, AfterRm: afterRm}
	if o := c.region.obs; o != nil {
		// The op carries the span traceBegin opened at the client entry
		// point (so the cache RPCs issued before the push already
		// belong to it); pushes outside a traced entry point still get
		// their own span. It follows the op through dequeue, coalescing,
		// parking and apply on whatever node commits it.
		op.Span = c.curSpan
		op.Sampled = c.curSampled
		if op.Span == 0 {
			op.Span = o.Trace.NewSpan()
		}
		op.EnqWall = time.Now().UnixNano()
	}
	// Track the path before the push: a scoped barrier that snapshots
	// the tracker between the two sees the op it might have to wait
	// for; the reverse order would let a marker slip ahead of an
	// already-queued, still-untracked op. The lag tracker follows the
	// same contract for the same reason — a commit process could reach
	// the op's terminal before a post-push add, leaking the timestamp.
	c.region.trackers[c.node].add(p)
	c.region.lagAdd(op)
	if err := c.region.queues[c.node].Push(op); err != nil {
		c.region.trackers[c.node].remove(p)
		c.region.lagRemove(op)
		return at, err
	}
	if op.Span != 0 && op.Span == c.curSpan {
		c.spanPushed = true
	}
	c.region.traceOp(c.ring, op, obs.StageEnqueue, "")
	return at.Add(c.region.cfg.Model.QueuePushCost), nil
}

// checkParent verifies the parent directory exists (§III.C): first in
// the distributed cache, then — if uncached — synchronously on the DFS.
// Positive results are memoized per barrier epoch: directory existence
// is monotone between dependent operations.
func (c *Client) checkParent(at vclock.Time, p string) (vclock.Time, error) {
	if c.region.cfg.DisableParentCheck {
		return at, nil
	}
	dir, _ := namespace.Split(p)
	if dir == c.region.cfg.Workspace {
		return at, nil // verified at region init
	}
	epoch := c.region.barrier.Epoch()
	if e, ok := c.parentMemo[dir]; ok && e == epoch {
		return at, nil
	}
	item, done, err := c.cache.Get(at, dir)
	at = done
	switch {
	case err == nil:
		v, derr := decodeCacheVal(item.Value)
		if derr != nil {
			return at, derr
		}
		if v.removed {
			return at, fsapi.WrapPath("parent-check", dir, fsapi.ErrNotExist)
		}
		if !v.stat.IsDir() {
			return at, fsapi.WrapPath("parent-check", dir, fsapi.ErrNotDir)
		}
	case errors.Is(err, fsapi.ErrNotExist):
		// Miss: the parent may exist on the DFS but not in the cache
		// (§III.C). Load it synchronously.
		gen := c.region.invalGen.Load()
		st, done, berr := c.statFresh(at, dir)
		at = done
		if berr != nil {
			return at, fsapi.WrapPath("parent-check", dir, berr)
		}
		if !st.IsDir() {
			return at, fsapi.WrapPath("parent-check", dir, fsapi.ErrNotDir)
		}
		at = c.cacheLoad(at, dir, st, gen)
	default:
		return at, err
	}
	if epoch != c.memoEpoch {
		// The epoch advanced since the last memoization: every older
		// entry is dead weight (the lookup above ignores them) — sweep
		// so the memo cannot grow by one stale entry per directory per
		// barrier epoch.
		for d, e := range c.parentMemo {
			if e != epoch {
				delete(c.parentMemo, d)
			}
		}
		c.memoEpoch = epoch
	}
	c.parentMemo[dir] = epoch
	return at, nil
}

// checkPerm authorizes an operation on p. Normally this is the batch
// permission match — a local lookup, zero RPCs (§III.C). Under the
// HierarchicalPermCheck ablation it instead walks every component from
// the workspace root to p's parent through the distributed cache,
// checking traversal permission per level — the traditional
// layer-by-layer scheme whose cost the paper's design removes.
func (c *Client) checkPerm(at vclock.Time, p string, want fsapi.AccessWant) (vclock.Time, error) {
	r := c.region
	if !r.cfg.HierarchicalPermCheck {
		return at, r.cfg.Perm.Check(r.cfg.Cred, p, want)
	}
	ws := r.cfg.Workspace
	for _, anc := range namespace.Ancestors(p) {
		if !namespace.IsUnder(anc, ws) {
			continue // components above the workspace belong to the DFS
		}
		item, done, err := c.cache.Get(at, anc)
		at = done
		var st fsapi.Stat
		switch {
		case err == nil:
			v, derr := decodeCacheVal(item.Value)
			if derr != nil {
				return at, derr
			}
			if v.removed {
				return at, fsapi.WrapPath("traverse", anc, fsapi.ErrNotExist)
			}
			st = v.stat
		case errors.Is(err, fsapi.ErrNotExist):
			gen := c.region.invalGen.Load()
			var berr error
			st, at, berr = c.statFresh(at, anc)
			if berr != nil {
				return at, fsapi.WrapPath("traverse", anc, berr)
			}
			at = c.cacheLoad(at, anc, st, gen)
		default:
			return at, err
		}
		if !st.IsDir() {
			return at, fsapi.WrapPath("traverse", anc, fsapi.ErrNotDir)
		}
		if !st.Mode.Allows(r.cfg.Cred.ClassFor(st.UID, st.GID), fsapi.WantExec) {
			return at, fsapi.WrapPath("traverse", anc, fsapi.ErrPermission)
		}
	}
	return at, r.cfg.Perm.Check(r.cfg.Cred, p, want)
}

// statFresh reads p's authoritative stat from the DFS, bypassing any
// client-local lookup cache the backend keeps (dfs.Client's dentry
// cache; see StatFresh there). Every cache-miss load must come through
// here: the result is installed in the region cache as the primary
// copy, and the backup copy moves underneath long-TTL dentry snapshots
// with every asynchronous commit — a stale stat would shadow committed
// state (size, mode) until the next eviction, or resurrect paths a
// dependent operation removed.
func (c *Client) statFresh(at vclock.Time, p string) (fsapi.Stat, vclock.Time, error) {
	if f, ok := c.backend.(interface {
		StatFresh(vclock.Time, string) (fsapi.Stat, vclock.Time, error)
	}); ok {
		return f.StatFresh(at, p)
	}
	return c.backend.Stat(at, p)
}

// cacheLoad inserts a clean (committed) entry, evicting on cache
// pressure. Insert races are benign — someone else loaded it. gen is the
// region's invalidation generation read before the DFS stat that
// produced st; see cacheLoadVal.
func (c *Client) cacheLoad(at vclock.Time, p string, st fsapi.Stat, gen uint64) vclock.Time {
	return c.cacheLoadVal(at, p, cacheVal{stat: st, large: st.Size > int64(c.region.cfg.SmallFileThreshold)}, gen)
}

// insert is the shared create/mkdir path: batch permission check, parent
// check, cache add (CAS-replacing a removed marker), async commit.
func (c *Client) insert(at vclock.Time, kind OpKind, p string, st fsapi.Stat) (vclock.Time, error) {
	r := c.region
	at = c.overhead(at)
	op := kind.String()

	at, err := c.checkPerm(at, p, fsapi.WantWrite)
	if err != nil {
		return at, err
	}
	at, err = c.checkParent(at, p)
	if err != nil {
		return at, err
	}

	seq := r.seq.Add(1)
	v := cacheVal{dirty: true, seq: seq, stat: st}
	afterRm := false
	// v is loop-invariant: encode it once into a pooled buffer shared by
	// every Add/CAS attempt (the cache client copies the value into its
	// request frame before returning).
	enc := wire.GetEncoder()
	v.encodeTo(enc)
	defer wire.PutEncoder(enc)
	for {
		_, done, err := c.cache.Add(at, p, enc.Bytes(), 0)
		at = done
		if err == nil {
			break
		}
		if errors.Is(err, fsapi.ErrOutOfSpace) {
			if at, err = r.evictRound(c, at); err != nil {
				return at, err
			}
			continue
		}
		if !errors.Is(err, fsapi.ErrExist) {
			return at, fsapi.WrapPath(op, p, err)
		}
		// Existing entry: only a removed marker may be overwritten
		// (create-after-rm); a live entry is EEXIST.
		item, done, gerr := c.cache.Get(at, p)
		at = done
		if gerr != nil {
			if errors.Is(gerr, fsapi.ErrNotExist) {
				continue // raced with the remove's commit; re-add
			}
			return at, gerr
		}
		old, derr := decodeCacheVal(item.Value)
		if derr != nil {
			return at, derr
		}
		if !old.removed {
			return at, fsapi.WrapPath(op, p, fsapi.ErrExist)
		}
		afterRm = true // replacing a removed marker: a remove is queued
		_, done, cerr := c.cache.CAS(at, p, enc.Bytes(), 0, item.CAS)
		at = done
		if cerr == nil {
			break
		}
		if !errors.Is(cerr, fsapi.ErrStale) && !errors.Is(cerr, fsapi.ErrNotExist) {
			return at, cerr
		}
		// CAS conflict — or the removed marker was cleaned underneath us
		// (the remove's commit racing this create-after-rm): re-examine
		// from the top (§III.D.3 — retry until success).
	}
	if r.cfg.SyncCommit {
		return c.commitSyncInsert(at, p, st, seq)
	}
	return c.pushOpFlagged(at, kind, p, st, seq, afterRm)
}

// commitSyncInsert is the SyncCommit ablation: apply the creation to the
// DFS before returning, then mark the cache entry clean.
func (c *Client) commitSyncInsert(at vclock.Time, p string, st fsapi.Stat, seq uint64) (vclock.Time, error) {
	dfsStat := st
	inline := dfsStat.Inline
	dfsStat.Inline = nil
	done, err := c.backend.CreateWithStat(at, p, dfsStat)
	at = done
	if err != nil {
		return at, fsapi.WrapPath("sync-commit", p, err)
	}
	if len(inline) > 0 {
		if done, err = c.backend.WriteAt(at, p, 0, inline); err != nil {
			return done, err
		}
		at = done
	}
	for {
		item, done, gerr := c.cache.Get(at, p)
		at = done
		if gerr != nil {
			return at, nil
		}
		v, derr := decodeCacheVal(item.Value)
		if derr != nil || v.seq != seq {
			return at, nil
		}
		v.dirty = false
		if _, done, cerr := c.cache.CAS(at, p, v.encode(), 0, item.CAS); cerr == nil || !errors.Is(cerr, fsapi.ErrStale) {
			return done, nil
		}
	}
}

// Mkdir creates a directory in the workspace (async commit); outside the
// workspace it is redirected to the DFS.
func (c *Client) Mkdir(at vclock.Time, p string, mode fsapi.Mode) (vclock.Time, error) {
	defer c.opEnd(c.opStart())
	p = namespace.Clean(p)
	defer c.traceEnd(c.traceBegin("mkdir", p))
	if !c.inWorkspace(p) {
		if _, merged := c.region.mergedFor(p); merged {
			return at, fsapi.WrapPath("mkdir", p, fsapi.ErrReadOnly)
		}
		return c.backend.Mkdir(at, p, mode)
	}
	return c.insert(at, OpMkdir, p, fsapi.NewDirStat(c.region.cfg.Cred, mode))
}

// Create creates an empty file in the workspace (async commit).
func (c *Client) Create(at vclock.Time, p string, mode fsapi.Mode) (vclock.Time, error) {
	defer c.opEnd(c.opStart())
	p = namespace.Clean(p)
	defer c.traceEnd(c.traceBegin("create", p))
	if !c.inWorkspace(p) {
		if _, merged := c.region.mergedFor(p); merged {
			return at, fsapi.WrapPath("create", p, fsapi.ErrReadOnly)
		}
		return c.backend.CreateWithStat(at, p, fsapi.NewFileStat(c.region.cfg.Cred, fsapi.ModeDefaultFile))
	}
	return c.insert(at, OpCreate, p, fsapi.NewFileStat(c.region.cfg.Cred, mode))
}

// Stat is Table I's getattr: a cache get, with a synchronous DFS load on
// miss. Merged workspaces are read through the peer's distributed cache.
func (c *Client) Stat(at vclock.Time, p string) (fsapi.Stat, vclock.Time, error) {
	defer c.opEnd(c.opStart())
	p = namespace.Clean(p)
	defer c.traceEnd(c.traceBegin("stat", p))
	at = c.overhead(at)
	if !c.inWorkspace(p) {
		if m, ok := c.region.mergedFor(p); ok {
			return c.statMerged(at, m, p)
		}
		return c.backend.Stat(at, p)
	}
	at, err := c.checkPerm(at, p, fsapi.WantRead)
	if err != nil {
		return fsapi.Stat{}, at, err
	}
	item, done, err := c.cache.Get(at, p)
	at = done
	switch {
	case err == nil:
		v, derr := decodeCacheVal(item.Value)
		if derr != nil {
			return fsapi.Stat{}, at, derr
		}
		if v.removed {
			return fsapi.Stat{}, at, fsapi.WrapPath("stat", p, fsapi.ErrNotExist)
		}
		return v.stat, at, nil
	case errors.Is(err, fsapi.ErrNotExist):
		// Miss: load from the DFS into the cache (§III.D.1 getattr).
		gen := c.region.invalGen.Load()
		st, done, berr := c.statFresh(at, p)
		at = done
		if berr != nil {
			return fsapi.Stat{}, at, fsapi.WrapPath("stat", p, berr)
		}
		at = c.cacheLoad(at, p, st, gen)
		return st, at, nil
	default:
		return fsapi.Stat{}, at, err
	}
}

// remoteCache lazily builds the read-only cache client for a merged
// peer's ring.
func (c *Client) remoteCache(m remoteRegion) *memcache.Client {
	rc, ok := c.remoteCaches[m.workspace]
	if !ok {
		rc = memcache.NewClient(c.caller, m.ring)
		c.remoteCaches[m.workspace] = rc
	}
	return rc
}

// statMerged reads a merged peer's cache (read-only, no load-on-miss:
// we must not write into the peer's cache).
func (c *Client) statMerged(at vclock.Time, m remoteRegion, p string) (fsapi.Stat, vclock.Time, error) {
	if err := m.perm.Check(c.region.cfg.Cred, p, fsapi.WantRead); err != nil {
		return fsapi.Stat{}, at, err
	}
	item, done, err := c.remoteCache(m).Get(at, p)
	at = done
	if err == nil {
		v, derr := decodeCacheVal(item.Value)
		if derr != nil {
			return fsapi.Stat{}, at, derr
		}
		if v.removed {
			return fsapi.Stat{}, at, fsapi.WrapPath("stat", p, fsapi.ErrNotExist)
		}
		return v.stat, at, nil
	}
	if !errors.Is(err, fsapi.ErrNotExist) {
		return fsapi.Stat{}, at, err
	}
	return c.backend.Stat(at, p)
}

// StatMulti is the batched form of Stat: workspace paths resolve with
// one get_multi per owning cache server, misses bulk-load from the DFS
// (the backend's stat_batch when it has one) and warm the cache for
// the next reader; merged-peer paths read the peer's cache the same
// way but stay strictly read-only; everything else goes to the DFS
// per path. Results align with paths — per-path failures land in their
// StatResult, they never fail the batch. With ReadBatchSize 1 (the
// ablation baseline) every path takes the per-key Stat path instead.
func (c *Client) StatMulti(at vclock.Time, paths []string) ([]fsapi.StatResult, vclock.Time, error) {
	defer c.opEnd(c.opStart())
	r := c.region
	out := make([]fsapi.StatResult, len(paths))
	cleaned := make([]string, len(paths))
	for i, p := range paths {
		cleaned[i] = namespace.Clean(p)
	}
	if r.cfg.ReadBatchSize <= 1 {
		// Per-key baseline: exactly what N application Stat calls cost.
		for i, p := range cleaned {
			st, done, err := c.Stat(at, p)
			at = done
			out[i] = fsapi.StatResult{Stat: st, Err: err}
		}
		return out, at, nil
	}
	at = c.overhead(at)

	// Classify. Workspace paths batch through our own cache; merged
	// workspaces batch through the peer's (grouped per peer); paths
	// outside any region redirect to the DFS one by one.
	var wsIdx []int
	var wsPaths []string
	type mergedGroup struct {
		m     remoteRegion
		idx   []int
		paths []string
	}
	var mgroups []mergedGroup
	for i, p := range cleaned {
		if c.inWorkspace(p) {
			var err error
			if at, err = c.checkPerm(at, p, fsapi.WantRead); err != nil {
				out[i] = fsapi.StatResult{Err: err}
				continue
			}
			wsIdx = append(wsIdx, i)
			wsPaths = append(wsPaths, p)
			continue
		}
		if m, ok := r.mergedFor(p); ok {
			if err := m.perm.Check(r.cfg.Cred, p, fsapi.WantRead); err != nil {
				out[i] = fsapi.StatResult{Err: err}
				continue
			}
			gi := -1
			for j := range mgroups {
				if mgroups[j].m.workspace == m.workspace {
					gi = j
					break
				}
			}
			if gi < 0 {
				mgroups = append(mgroups, mergedGroup{m: m})
				gi = len(mgroups) - 1
			}
			mgroups[gi].idx = append(mgroups[gi].idx, i)
			mgroups[gi].paths = append(mgroups[gi].paths, p)
			continue
		}
		st, done, err := c.backend.Stat(at, p)
		at = done
		out[i] = fsapi.StatResult{Stat: st, Err: err}
	}

	if len(wsPaths) > 0 {
		res, done := c.statBatchCached(at, wsPaths)
		at = done
		for j, i := range wsIdx {
			out[i] = res[j]
		}
	}
	for _, g := range mgroups {
		res, done := c.statMultiMerged(at, g.m, g.paths)
		at = done
		for j, i := range g.idx {
			out[i] = res[j]
		}
	}
	return out, at, nil
}

// decodeStatResult turns one cache hit into a StatResult (a removed
// marker reads as absence, exactly like Stat).
func decodeStatResult(p string, raw []byte) fsapi.StatResult {
	v, derr := decodeCacheVal(raw)
	if derr != nil {
		return fsapi.StatResult{Err: derr}
	}
	if v.removed {
		return fsapi.StatResult{Err: fsapi.WrapPath("stat", p, fsapi.ErrNotExist)}
	}
	return fsapi.StatResult{Stat: v.stat}
}

// statBatchCached resolves cleaned, permission-checked workspace paths
// with the batched read pipeline: get_multi over the owning cache
// servers (chunked by ReadBatchSize), a bulk authoritative miss-load,
// and an add_multi warm of what the misses produced. A dead owner
// degrades only its own keys — they fall back to one per-key get each
// and, failing that, to the DFS load, so a partial cache outage slows
// the batch instead of failing it.
func (c *Client) statBatchCached(at vclock.Time, paths []string) ([]fsapi.StatResult, vclock.Time) {
	r := c.region
	out := make([]fsapi.StatResult, len(paths))
	size := r.cfg.ReadBatchSize
	for start := 0; start < len(paths); start += size {
		end := start + size
		if end > len(paths) {
			end = len(paths)
		}
		chunk := paths[start:end]
		res, done := c.cache.GetMulti(at, chunk)
		at = done
		var missIdx []int
		for i, mr := range res {
			switch {
			case mr.Err != nil:
				// This key's owner failed the batched call; the singleton
				// path has its own retry/ErrNotExist semantics.
				item, done, gerr := c.cache.Get(at, chunk[i])
				at = done
				if gerr == nil {
					out[start+i] = decodeStatResult(chunk[i], item.Value)
				} else {
					missIdx = append(missIdx, i)
				}
			case mr.Hit:
				out[start+i] = decodeStatResult(chunk[i], mr.Item.Value)
			default:
				missIdx = append(missIdx, i)
			}
		}
		if len(missIdx) == 0 {
			continue
		}
		// Bulk miss-load. The generation is read before the DFS reads,
		// per the cacheLoadVal contract: if a dependent operation bumps
		// it before the warm lands, the warm revokes itself.
		gen := r.invalGen.Load()
		missPaths := make([]string, len(missIdx))
		for j, i := range missIdx {
			missPaths[j] = chunk[i]
		}
		stats, done := c.statBatchFresh(at, missPaths)
		at = done
		entries := make([]memcache.AddEntry, 0, len(missIdx))
		for j, i := range missIdx {
			sr := stats[j]
			if sr.Err != nil {
				out[start+i] = fsapi.StatResult{Err: fsapi.WrapPath("stat", chunk[i], sr.Err)}
				continue
			}
			out[start+i] = fsapi.StatResult{Stat: sr.Stat}
			v := cacheVal{stat: sr.Stat, large: sr.Stat.Size > int64(r.cfg.SmallFileThreshold)}
			entries = append(entries, memcache.AddEntry{Key: chunk[i], Value: v.encode()})
		}
		at = c.warmEntries(at, entries, gen)
	}
	return out, at
}

// StatBackend bulk-reads authoritative per-path stats straight from the
// DFS backend, bypassing the distributed cache entirely. The divergence
// auditor uses it as the ground-truth side of a cache↔DFS comparison;
// it is statBatchFresh exported, so the authority read is the same code
// the production miss path trusts. A per-path error (e.g. ErrNotExist)
// lands in that entry's Err.
func (c *Client) StatBackend(at vclock.Time, paths []string) ([]fsapi.StatResult, vclock.Time) {
	clean := make([]string, len(paths))
	for i, p := range paths {
		clean[i] = namespace.Clean(p)
	}
	return c.statBatchFresh(at, clean)
}

// statBatchFresh bulk-loads authoritative stats: the backend's
// StatBatch capability when present (dfs.Client's consults the MDS for
// every final component — the StatFresh contract in batched form),
// otherwise a per-path statFresh loop. A batch-level transport error
// also falls back to the loop: the singletons re-establish each path's
// disposition individually.
func (c *Client) statBatchFresh(at vclock.Time, paths []string) ([]fsapi.StatResult, vclock.Time) {
	if sb, ok := c.backend.(interface {
		StatBatch(vclock.Time, []string) ([]fsapi.StatResult, vclock.Time, error)
	}); ok {
		res, done, err := sb.StatBatch(at, paths)
		at = done
		if err == nil {
			return res, at
		}
	}
	out := make([]fsapi.StatResult, len(paths))
	for i, p := range paths {
		st, done, err := c.statFresh(at, p)
		at = done
		out[i] = fsapi.StatResult{Stat: st, Err: err}
	}
	return out, at
}

// warmEntries inserts clean loaded values add-if-absent in one
// add_multi fan-out, then revokes its own inserts (CAS-guarded) if the
// invalidation generation moved since gen — the batched form of
// cacheLoadVal. Unlike the synchronous miss path, warming never runs
// eviction rounds: per-entry ErrOutOfSpace (like ErrExist) just skips
// the key — a warm is an optimization, not worth evicting for.
func (c *Client) warmEntries(at vclock.Time, entries []memcache.AddEntry, gen uint64) vclock.Time {
	if len(entries) == 0 {
		return at
	}
	r := c.region
	res, done := c.cache.AddMulti(at, entries)
	at = done
	revoke := r.invalGen.Load() != gen
	var warmed int64
	for i, ar := range res {
		if ar.Err != nil {
			continue
		}
		if revoke {
			if done, derr := c.cache.DeleteCAS(at, entries[i].Key, ar.CAS); derr == nil ||
				errors.Is(derr, fsapi.ErrNotExist) || errors.Is(derr, fsapi.ErrStale) {
				at = done
			}
			continue
		}
		warmed++
	}
	r.cacheWarms.Add(warmed)
	return at
}

// statMultiMerged resolves permission-checked paths of one merged peer
// through the peer's distributed cache in get_multi chunks. Strictly
// read-only (§III.D.4): a miss — or an unreachable peer owner — falls
// through to the DFS without ever writing the peer's cache.
func (c *Client) statMultiMerged(at vclock.Time, m remoteRegion, paths []string) ([]fsapi.StatResult, vclock.Time) {
	out := make([]fsapi.StatResult, len(paths))
	rc := c.remoteCache(m)
	size := c.region.cfg.ReadBatchSize
	for start := 0; start < len(paths); start += size {
		end := start + size
		if end > len(paths) {
			end = len(paths)
		}
		chunk := paths[start:end]
		res, done := rc.GetMulti(at, chunk)
		at = done
		for i, mr := range res {
			if mr.Err == nil && mr.Hit {
				out[start+i] = decodeStatResult(chunk[i], mr.Item.Value)
				continue
			}
			st, done, err := c.backend.Stat(at, chunk[i])
			at = done
			out[start+i] = fsapi.StatResult{Stat: st, Err: err}
		}
	}
	return out, at
}

// CacheRPCs reports this client's cumulative metadata-cache round
// trips (a multi-key call counts once per owner contacted) — the read
// bench's cache-RPCs-per-op numerator.
func (c *Client) CacheRPCs() int64 { return c.cache.Calls() }

// Remove is Table I's rm: mark the cached entry removed (CAS retry
// loop), commit asynchronously; the commit process deletes the cache
// entry once the DFS applied it.
func (c *Client) Remove(at vclock.Time, p string) (vclock.Time, error) {
	defer c.opEnd(c.opStart())
	p = namespace.Clean(p)
	defer c.traceEnd(c.traceBegin("rm", p))
	at = c.overhead(at)
	r := c.region
	if !c.inWorkspace(p) {
		if _, merged := r.mergedFor(p); merged {
			return at, fsapi.WrapPath("rm", p, fsapi.ErrReadOnly)
		}
		return c.backend.Remove(at, p)
	}
	at, err := c.checkPerm(at, p, fsapi.WantWrite)
	if err != nil {
		return at, err
	}
	seq := r.seq.Add(1)
	for {
		item, done, err := c.cache.Get(at, p)
		at = done
		switch {
		case err == nil:
			v, derr := decodeCacheVal(item.Value)
			if derr != nil {
				return at, derr
			}
			if v.removed {
				return at, fsapi.WrapPath("rm", p, fsapi.ErrNotExist)
			}
			if v.stat.IsDir() {
				return at, fsapi.WrapPath("rm", p, fsapi.ErrIsDir)
			}
			v.removed, v.dirty, v.seq = true, true, seq
			enc := wire.GetEncoder()
			v.encodeTo(enc)
			_, done, cerr := c.cache.CAS(at, p, enc.Bytes(), 0, item.CAS)
			wire.PutEncoder(enc)
			at = done
			if cerr == nil {
				return c.pushOp(at, OpRemove, p, fsapi.Stat{}, seq)
			}
			if !errors.Is(cerr, fsapi.ErrStale) && !errors.Is(cerr, fsapi.ErrNotExist) {
				return at, cerr
			}
			// Conflict: retry the read-modify-write (§III.D.3).
		case errors.Is(err, fsapi.ErrNotExist):
			// Not cached: the file may live only on the DFS.
			st, done, berr := c.statFresh(at, p)
			at = done
			if berr != nil {
				return at, fsapi.WrapPath("rm", p, berr)
			}
			if st.IsDir() {
				return at, fsapi.WrapPath("rm", p, fsapi.ErrIsDir)
			}
			v := cacheVal{removed: true, dirty: true, seq: seq, stat: st}
			enc := wire.GetEncoder()
			v.encodeTo(enc)
			_, done, aerr := c.cache.Add(at, p, enc.Bytes(), 0)
			wire.PutEncoder(enc)
			at = done
			if aerr == nil {
				return c.pushOp(at, OpRemove, p, fsapi.Stat{}, seq)
			}
			if !errors.Is(aerr, fsapi.ErrExist) {
				return at, aerr
			}
			// Raced with a concurrent insert; re-examine.
		default:
			return at, err
		}
	}
}

// Rmdir is Table I's rmdir: synchronous, barrier-committed, recursive —
// it removes all metadata under the target on both the DFS and the
// distributed cache (§III.D.1).
func (c *Client) Rmdir(at vclock.Time, p string) (vclock.Time, error) {
	defer c.opEnd(c.opStart())
	p = namespace.Clean(p)
	defer c.traceEnd(c.traceBegin("rmdir", p))
	at = c.overhead(at)
	r := c.region
	if !c.inWorkspace(p) {
		if _, merged := r.mergedFor(p); merged {
			return at, fsapi.WrapPath("rmdir", p, fsapi.ErrReadOnly)
		}
		_, done, err := c.backend.RmTree(at, p)
		return done, err
	}
	if p == r.cfg.Workspace {
		return at, fsapi.WrapPath("rmdir", p, fsapi.ErrPermission)
	}
	at, err := c.checkPerm(at, p, fsapi.WantWrite)
	if err != nil {
		return at, err
	}
	// The target must exist (in the cache or on the DFS) and be a
	// directory before we start discarding work under it.
	st, at, err := c.Stat(at, p)
	if err != nil {
		return at, fsapi.WrapPath("rmdir", p, err)
	}
	if !st.IsDir() {
		return at, fsapi.WrapPath("rmdir", p, fsapi.ErrNotDir)
	}

	// Discard concurrent creations under the target for the duration —
	// including the target's own pending mkdir, which then never
	// materializes on the DFS.
	r.addRemoving(p)
	defer r.delRemoving(p)

	// The barrier only needs the queues with pending work under the
	// doomed subtree: RmTree touches nothing outside it, and creations
	// racing into it are handled by the removing-set discard above.
	epoch, drain, err := r.syncBarrier(at, p)
	if err != nil {
		return at, err
	}
	at = drain
	c.traceStage(obs.StageBarrier, "rmdir", p, "")
	removed, done, rerr := c.backend.RmTree(at, p)
	at = done
	// Drop the subtree's dentries on every backend in the region, not
	// just this client's (RmTree only cleans its own instance). Internal
	// DFS clients run long dentry TTLs, so a skipped node would keep
	// serving positive Stats for the removed paths and a later
	// cache-miss load there would resurrect the directory.
	r.invalidateBackendSubtrees(p)
	// Bump the invalidation generation AFTER the dentry fan-out and
	// BEFORE cleaning the cache. After: a stale positive Stat can only
	// come from a dentry read before its drop, hence before the bump, so
	// the load's generation re-check fires and it revokes itself. Before
	// the cache deletes: a
	// cache-miss load whose DFS read predates the RmTree either inserts
	// before our deletes below (we delete it) or re-checks the generation
	// after them (it sees the bump and revokes itself). Bumping after the
	// deletes would leave a window where such a load resurrects the
	// removed directory with nothing left to clean it up.
	r.invalGen.Add(1)
	switch {
	case rerr == nil:
		// Clean the removed subtree out of the distributed cache.
		for _, rp := range removed {
			done, _ := c.cache.Delete(at, rp)
			at = done
		}
	case errors.Is(rerr, fsapi.ErrNotExist):
		// Everything under the target was discarded before reaching the
		// DFS (the directory itself included): nothing left to remove.
		rerr = nil
	}
	// The target's own cache entry may be a clean (committed-earlier)
	// copy the commit processes never touched.
	if rerr == nil {
		done, _ := c.cache.Delete(at, p)
		at = done
	}
	r.barrier.Release(epoch, at)
	if rerr != nil {
		return at, fsapi.WrapPath("rmdir", p, rerr)
	}
	return at, nil
}

// Readdir is Table I's readdir: a barrier (scoped to the listed
// subtree) then the DFS's own listing — the cache is never scanned
// ("avoid the costly full table scan"). The post-barrier listing is the
// freshest view of the directory the region can produce, so its
// children are bulk-loaded into the distributed cache afterwards:
// follow-up stats (the ls -l pattern) then hit the cache instead of
// each paying a DFS round trip.
func (c *Client) Readdir(at vclock.Time, p string) ([]fsapi.DirEntry, vclock.Time, error) {
	defer c.opEnd(c.opStart())
	p = namespace.Clean(p)
	defer c.traceEnd(c.traceBegin("readdir", p))
	at = c.overhead(at)
	r := c.region
	if !c.inWorkspace(p) {
		// Outside (including merged peers) readdir goes to the DFS: we
		// cannot drain another region's queues, so the listing is only
		// as fresh as that region's commits (weak consistency across
		// regions, §III.A).
		return c.backend.Readdir(at, p)
	}
	at, err := c.checkPerm(at, p, fsapi.WantRead|fsapi.WantExec)
	if err != nil {
		return nil, at, err
	}
	epoch, drain, err := r.syncBarrier(at, p)
	if err != nil {
		return nil, at, err
	}
	at = drain
	c.traceStage(obs.StageBarrier, "readdir", p, "")
	ents, done, rerr := c.backend.Readdir(at, p)
	at = done
	r.barrier.Release(epoch, at)
	if rerr != nil {
		return nil, at, fsapi.WrapPath("readdir", p, rerr)
	}
	if o := r.obs; o != nil {
		o.Hist(obs.HistReaddirEntries).RecordN(int64(len(ents)))
	}
	if r.cfg.ReadBatchSize > 1 && len(ents) > 0 {
		// Warm the cache from the listing. Safe after the release: the
		// stats come from fresh DFS reads under statBatchCached's
		// invalidation-generation guard, and the inserts are
		// add-if-absent, so they can neither mask a newer queued
		// mutation nor resurrect a concurrently removed subtree.
		children := make([]string, len(ents))
		for i, ent := range ents {
			children[i] = namespace.Join(p, ent.Name)
		}
		_, at = c.statBatchCached(at, children)
	}
	return ents, at, nil
}

// Rename moves a file or directory inside the workspace. The paper's
// Table I does not define rename; this extension treats it as a
// dependent operation (like rmdir): a barrier drains all earlier
// asynchronous operations, the DFS applies the move synchronously, and
// the renamed subtree's cache entries are invalidated (they reload under
// the new path on demand).
func (c *Client) Rename(at vclock.Time, src, dst string) (vclock.Time, error) {
	defer c.opEnd(c.opStart())
	src, dst = namespace.Clean(src), namespace.Clean(dst)
	defer c.traceEnd(c.traceBegin("rename", src))
	at = c.overhead(at)
	r := c.region
	if !c.inWorkspace(src) || !c.inWorkspace(dst) {
		if _, m := r.mergedFor(src); m {
			return at, fsapi.WrapPath("rename", src, fsapi.ErrReadOnly)
		}
		if _, m := r.mergedFor(dst); m {
			return at, fsapi.WrapPath("rename", dst, fsapi.ErrReadOnly)
		}
		if c.inWorkspace(src) != c.inWorkspace(dst) {
			// Cross-boundary moves would need cross-consistency-domain
			// coordination the model does not define.
			return at, fsapi.WrapPath("rename", dst, fsapi.ErrPermission)
		}
		return c.backend.Rename(at, src, dst)
	}
	if src == r.cfg.Workspace {
		return at, fsapi.WrapPath("rename", src, fsapi.ErrPermission)
	}
	at, err := c.checkPerm(at, src, fsapi.WantWrite)
	if err != nil {
		return at, err
	}
	if at, err = c.checkPerm(at, dst, fsapi.WantWrite); err != nil {
		return at, err
	}

	// Rename's footprint is two subtrees plus both parents' listings —
	// not one prefix — so it always drains every queue.
	epoch, drain, err := r.syncBarrier(at, "")
	if err != nil {
		return at, err
	}
	at = drain
	c.traceStage(obs.StageBarrier, "rename", src, "")
	done, rerr := c.backend.Rename(at, src, dst)
	at = done
	if rerr == nil {
		// Invalidate the moved subtree's old-path entries: enumerate on
		// the DFS (authoritative after the drain) from the new location.
		// Dentry fan-out first (both ends — src dentries are gone, dst
		// dentries changed), then the generation bump, then the cache
		// cleanup: same load-resurrection race as rmdir's.
		r.invalidateBackendSubtrees(src)
		r.invalidateBackendSubtrees(dst)
		r.invalGen.Add(1)
		at = c.invalidateMoved(at, src, dst)
	}
	r.barrier.Release(epoch, at)
	if rerr != nil {
		return at, fsapi.WrapPath("rename", src, rerr)
	}
	return at, nil
}

// invalidateMoved deletes cache entries under the old path of a renamed
// subtree, discovering its shape from the new location on the DFS.
func (c *Client) invalidateMoved(at vclock.Time, src, dst string) vclock.Time {
	done, _ := c.cache.Delete(at, src)
	at = done
	st, done, err := c.backend.Stat(at, dst)
	at = done
	if err != nil || !st.IsDir() {
		return at
	}
	ents, done, err := c.backend.Readdir(at, dst)
	at = done
	if err != nil {
		return at
	}
	for _, ent := range ents {
		at = c.invalidateMoved(at,
			namespace.Join(src, ent.Name), namespace.Join(dst, ent.Name))
	}
	return at
}
