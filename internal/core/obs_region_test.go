package core

import (
	"fmt"
	"sync"
	"testing"

	"pacon/internal/memcache"
	"pacon/internal/obs"
	"pacon/internal/vclock"
)

// TestSpanLifecycleOrdering drives one create through the full pipeline
// and checks its trace: enqueue happens-before dequeue happens-before
// apply, all on one span, and the stage histograms saw the op.
func TestSpanLifecycleOrdering(t *testing.T) {
	o := obs.New()
	e := newEnvDeps(t, 1, nil, func(d *Deps) { d.Obs = o })
	c := e.client(t, "node0")

	at, err := c.Create(0, "/w/traced", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.region.Drain(at); err != nil {
		t.Fatal(err)
	}

	evs := o.Trace.Filter(func(ev obs.Event) bool { return ev.Path == "/w/traced" })
	if len(evs) == 0 {
		t.Fatal("no trace events for the create")
	}
	span := evs[0].Span
	if span == 0 {
		t.Fatal("span id zero with obs enabled")
	}
	var order []obs.Stage
	lastWall := int64(0)
	for _, ev := range evs {
		if ev.Span != span {
			t.Fatalf("mixed spans in single-op trace: %d vs %d", ev.Span, span)
		}
		if ev.Wall < lastWall {
			t.Fatalf("events out of wall order: %v", evs)
		}
		lastWall = ev.Wall
		order = append(order, ev.Stage)
	}
	idx := func(s obs.Stage) int {
		for i, st := range order {
			if st == s {
				return i
			}
		}
		return -1
	}
	enq, deq, app := idx(obs.StageEnqueue), idx(obs.StageDequeue), idx(obs.StageApply)
	if enq == -1 || deq == -1 || app == -1 {
		t.Fatalf("missing lifecycle stage: stages=%v", order)
	}
	if !(enq < deq && deq < app) {
		t.Fatalf("stage order wrong: enqueue=%d dequeue=%d apply=%d", enq, deq, app)
	}

	q := o.HistQuantiles()
	for _, h := range []string{obs.HistClientOp, obs.HistQueueWait, obs.HistCommitLag} {
		if q[h].Count == 0 {
			t.Fatalf("histogram %q empty after a committed op; have %v", h, q)
		}
	}
}

// TestCoalesceTracedAsMerge checks that an op absorbed by dequeue-time
// coalescing closes with a coalesce event rather than an apply.
func TestCoalesceTracedAsMerge(t *testing.T) {
	o := obs.New()
	e := newEnvDeps(t, 1, func(cfg *RegionConfig) {
		cfg.CommitBatchSize = 64
	}, func(d *Deps) { d.Obs = o })
	c := e.client(t, "node0")

	at, err := c.Create(0, "/w/burst", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Back-to-back setstats on one path coalesce inside a dequeue batch
	// (create+setstat and setstat+setstat rules both fold).
	for i := 0; i < 8; i++ {
		if at, err = c.WriteAt(at, "/w/burst", 0, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.region.Drain(at); err != nil {
		t.Fatal(err)
	}
	if e.region.Stats().Coalesced == 0 {
		t.Skip("batch committed without coalescing (timing-dependent)")
	}
	merged := o.Trace.Filter(func(ev obs.Event) bool {
		return ev.Path == "/w/burst" && ev.Stage == obs.StageCoalesce
	})
	if len(merged) == 0 {
		t.Fatal("coalesced ops but no coalesce trace events")
	}
}

// TestCacheStatsMatchesPerServerSums: the concurrent fan-out aggregation
// must equal the plain sum of each server's stats on a quiescent region.
func TestCacheStatsMatchesPerServerSums(t *testing.T) {
	e := newEnv(t, 3, nil)
	c := e.client(t, "node0")

	at := vclock.Time(0)
	var err error
	for i := 0; i < 40; i++ {
		if at, err = c.Create(at, fmt.Sprintf("/w/s%d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if _, at, err = c.Stat(at, fmt.Sprintf("/w/s%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if at, err = e.region.Drain(at); err != nil {
		t.Fatal(err)
	}

	var want memcache.Stats
	for _, s := range e.region.servers {
		st := s.Stats()
		want.Items += st.Items
		want.UsedBytes += st.UsedBytes
		want.Hits += st.Hits
		want.Misses += st.Misses
		want.Evictions += st.Evictions
		want.ServedOps += st.ServedOps
	}
	got := e.region.CacheStats()
	if got != want {
		t.Fatalf("CacheStats = %+v, per-server sum = %+v", got, want)
	}
	if got.Items == 0 || got.Hits == 0 {
		t.Fatalf("degenerate stats (nothing cached?): %+v", got)
	}
}

// TestRegionStatsRace hammers the counters from mutating clients while
// concurrent readers snapshot Stats/CacheStats/QueueDepth; the race
// detector proves every counter access is synchronized.
func TestRegionStatsRace(t *testing.T) {
	o := obs.New()
	e := newEnvDeps(t, 2, nil, func(d *Deps) { d.Obs = o })

	clients := []*Client{e.client(t, "node0"), e.client(t, "node1")}

	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = e.region.Stats()
				_ = e.region.CacheStats()
				_ = e.region.QueueDepth()
				_ = o.HistQuantiles()
				_ = o.SlowSpans(4)
			}
		}()
	}
	for n, c := range clients {
		writers.Add(1)
		go func(n int, c *Client) {
			defer writers.Done()
			at := vclock.Time(0)
			var err error
			for i := 0; i < 60; i++ {
				p := fmt.Sprintf("/w/r%d_%d", n, i)
				if at, err = c.Create(at, p, 0o644); err != nil {
					t.Error(err)
					return
				}
				if at, err = c.Remove(at, p); err != nil {
					t.Error(err)
					return
				}
			}
		}(n, c)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if _, err := e.region.Drain(0); err != nil {
		t.Fatal(err)
	}
	st := e.region.Stats()
	if st.Committed+st.Discarded == 0 {
		t.Fatalf("no ops accounted for: %+v", st)
	}
}
