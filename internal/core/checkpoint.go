package core

import (
	"errors"
	"fmt"

	"pacon/internal/fsapi"
	"pacon/internal/namespace"
	"pacon/internal/vclock"
)

// Checkpointing (paper §III.G): a region can snapshot its workspace
// subtree on the DFS and later roll back to it after a client-node
// failure loses uncommitted operations. Only the application's workspace
// is checkpointed, not the whole namespace, and the interface is exposed
// to applications so they choose intervals. Checkpoints capture the
// metadata subtree; file contents on the data servers are keyed by path
// and crash-consistent on their own, so restoring the metadata re-attaches
// them.

// ckptRoot is where checkpoints live on the DFS.
const ckptRoot = "/.pacon"

func (r *Region) ckptPath(seq uint64) string {
	return fmt.Sprintf("%s/ckpt-%s-%d", ckptRoot, r.cfg.Name, seq)
}

// mkdirIgnoreExist creates a directory, tolerating its presence.
func mkdirIgnoreExist(b Backend, at vclock.Time, p string, st fsapi.Stat) (vclock.Time, error) {
	done, err := b.CreateWithStat(at, p, st)
	if err != nil && !errors.Is(err, fsapi.ErrExist) {
		return done, err
	}
	return done, nil
}

// copySubtree duplicates the metadata subtree rooted at src to dst.
func copySubtree(b Backend, at vclock.Time, src, dst string) (vclock.Time, error) {
	st, at, err := b.Stat(at, src)
	if err != nil {
		return at, err
	}
	if !st.IsDir() {
		return b.CreateWithStat(at, dst, st)
	}
	if at, err = mkdirIgnoreExist(b, at, dst, st); err != nil {
		return at, err
	}
	ents, at, err := b.Readdir(at, src)
	if err != nil {
		return at, err
	}
	for _, ent := range ents {
		at, err = copySubtree(b, at, namespace.Join(src, ent.Name), namespace.Join(dst, ent.Name))
		if err != nil {
			return at, err
		}
	}
	return at, nil
}

// Checkpoint drains the region (barrier) and copies the workspace
// subtree into the checkpoint area, returning the checkpoint sequence
// number to roll back to.
func (r *Region) Checkpoint(c *Client, at vclock.Time) (uint64, vclock.Time, error) {
	seq := r.ckptSeq.Add(1)
	// Whole-workspace snapshot: every queue must drain (full barrier).
	epoch, drain, err := r.syncBarrier(at, "")
	if err != nil {
		return 0, at, err
	}
	at = drain

	dirStat := fsapi.NewDirStat(r.cfg.Cred, 0o700)
	if at, err = mkdirIgnoreExist(c.backend, at, ckptRoot, dirStat); err != nil {
		r.barrier.Release(epoch, at)
		return 0, at, err
	}
	at, err = copySubtree(c.backend, at, r.cfg.Workspace, r.ckptPath(seq))
	r.barrier.Release(epoch, at)
	if err != nil {
		return 0, at, err
	}
	return seq, at, nil
}

// Restore rolls the workspace back to checkpoint seq and rebuilds the
// distributed cache (cold: entries reload on demand). Call it after
// SimulateNodeFailure, or any time the application wants the snapshot
// back.
func (r *Region) Restore(c *Client, at vclock.Time, seq uint64) (vclock.Time, error) {
	epoch, drain, err := r.syncBarrier(at, "")
	if err != nil {
		return at, err
	}
	at = drain
	defer func() { r.barrier.Release(epoch, at) }()

	src := r.ckptPath(seq)
	rootStat, done, err := c.backend.Stat(at, src)
	at = done
	if err != nil {
		return at, fsapi.WrapPath("restore", src, err)
	}

	// Drop the current workspace contents (the root itself stays — the
	// application may not own its parent directory) and every cache
	// entry.
	cur, done, err := c.backend.Readdir(at, r.cfg.Workspace)
	at = done
	if err != nil {
		return at, err
	}
	for _, ent := range cur {
		child := namespace.Join(r.cfg.Workspace, ent.Name)
		if ent.Type == fsapi.TypeDir {
			_, done, err = c.backend.RmTree(at, child)
		} else {
			done, err = c.backend.Remove(at, child)
		}
		at = done
		if err != nil {
			return at, err
		}
	}
	if done, err := c.cache.FlushAll(at); err != nil {
		return done, err
	} else {
		at = done
	}

	// Recreate the workspace contents from the checkpoint.
	ents, done, err := c.backend.Readdir(at, src)
	at = done
	if err != nil {
		return at, err
	}
	for _, ent := range ents {
		at, err = copySubtree(c.backend, at, namespace.Join(src, ent.Name), namespace.Join(r.cfg.Workspace, ent.Name))
		if err != nil {
			return at, err
		}
	}

	// Re-seed the workspace metadata (region init does the same).
	seed := cacheVal{stat: rootStat}
	if _, done, err := c.cache.Set(at, r.cfg.Workspace, seed.encode(), 0); err != nil {
		return done, err
	} else {
		at = done
	}
	return at, nil
}

// SimulateNodeFailure models a client-node crash for recovery tests and
// examples: the node's queued (uncommitted) operations are lost and its
// cache server's contents vanish. Must not race an in-flight barrier
// operation — a real deployment would re-form the region first.
func (r *Region) SimulateNodeFailure(node string) int {
	q, ok := r.queues[node]
	if !ok {
		return 0
	}
	lost := 0
	for {
		op, barrier, _, ok := q.TryPop()
		if !ok {
			break
		}
		if !barrier {
			lost++
			// The popped op will never reach a commit-loop terminal:
			// release its path-tracker and lag-tracker entries here, or
			// scoped barriers would keep waiting on the dead node's paths
			// and the staleness watermark would grow forever.
			r.opTerminal(op)
		}
	}
	if srv, ok := r.servers[node]; ok {
		srv.FlushAll(0)
	}
	return lost
}
