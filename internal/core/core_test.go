package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"pacon/internal/dfs"
	"pacon/internal/fsapi"
	"pacon/internal/rpc"
	"pacon/internal/vclock"
)

var (
	rootCred = fsapi.Cred{UID: 0, GID: 0}
	appCred  = fsapi.Cred{UID: 1000, GID: 1000}
)

// env is a full Pacon-on-DFS deployment for tests: a BeeGFS-like cluster
// plus one consistent region over n client nodes with workspace /w.
type env struct {
	bus    *rpc.Bus
	dfs    *dfs.Cluster
	region *Region
	nodes  []string
}

func newEnv(t *testing.T, n int, mutate func(*RegionConfig)) *env {
	t.Helper()
	return newEnvDeps(t, n, mutate, nil)
}

// newEnvDeps is newEnv with a hook to adjust region dependencies (e.g.
// attach an observability sink) before the region starts.
func newEnvDeps(t *testing.T, n int, mutate func(*RegionConfig), mutateDeps func(*Deps)) *env {
	t.Helper()
	bus := rpc.NewBus()
	model := vclock.Default()
	cluster := dfs.NewCluster(bus, model, rootCred, "storage0", []string{"storage1", "storage2"})

	// The administrator allocates the workspace (paper §II.A) and the
	// checkpoint area.
	admin := cluster.NewClient("admin", rootCred, 0, 0)
	if _, err := admin.Mkdir(0, "/w", 0o777); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Mkdir(0, "/.pacon", 0o777); err != nil {
		t.Fatal(err)
	}

	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("node%d", i)
	}
	cfg := RegionConfig{
		Name:      "app",
		Workspace: "/w",
		Nodes:     nodes,
		Cred:      appCred,
		Model:     model,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	deps := Deps{
		Bus: bus,
		NewBackend: func(node string) Backend {
			// Commit processes and redirection clients own their node's
			// kernel-style dentry cache; Pacon owns consistency above.
			return cluster.NewClient(node, appCred, 4096, time.Hour)
		},
	}
	if mutateDeps != nil {
		mutateDeps(&deps)
	}
	region, err := NewRegion(cfg, deps)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { region.Close() })
	return &env{bus: bus, dfs: cluster, region: region, nodes: nodes}
}

func (e *env) client(t *testing.T, node string) *Client {
	t.Helper()
	c, err := e.region.NewClient(node)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCreateVisibleImmediatelyCommittedEventually(t *testing.T) {
	e := newEnv(t, 2, nil)
	c := e.client(t, "node0")

	at, err := c.Create(0, "/w/f1", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Visible in the region right away (strong consistency inside).
	st, at, err := c.Stat(at, "/w/f1")
	if err != nil || st.Type != fsapi.TypeFile {
		t.Fatalf("stat = %+v, %v", st, err)
	}
	// And from the other node's client, through the shared cache.
	c2 := e.client(t, "node1")
	if _, _, err := c2.Stat(at, "/w/f1"); err != nil {
		t.Fatalf("cross-node stat = %v", err)
	}
	// The backup copy lands after a drain.
	if _, err := e.region.Drain(at); err != nil {
		t.Fatal(err)
	}
	if !e.dfs.MDS.Tree().Exists("/w/f1") {
		t.Fatal("create never committed to the DFS")
	}
	if e.region.Stats().Committed == 0 {
		t.Fatal("commit counter untouched")
	}
}

func TestAsyncWriteFasterThanSyncDFS(t *testing.T) {
	e := newEnv(t, 1, nil)
	c := e.client(t, "node0")
	const n = 200
	at := vclock.Time(0)
	var err error
	for i := 0; i < n; i++ {
		at, err = c.Create(at, fmt.Sprintf("/w/p%d", i), 0o644)
		if err != nil {
			t.Fatal(err)
		}
	}
	paconTime := at

	direct := e.dfs.NewClient("node0", appCred, 0, 0)
	at = 0
	for i := 0; i < n; i++ {
		at, err = direct.Create(at, fmt.Sprintf("/w/d%d", i), 0o644)
		if err != nil {
			t.Fatal(err)
		}
	}
	if paconTime*3 >= at {
		t.Fatalf("pacon creates (%v) should be >3x faster than sync DFS (%v)", paconTime, at)
	}
}

func TestMkdirThenCreateUnderIt(t *testing.T) {
	e := newEnv(t, 2, nil)
	c := e.client(t, "node0")
	at, err := c.Mkdir(0, "/w/d", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	// Parent check passes against the cache even though /w/d has not
	// committed yet.
	if at, err = c.Create(at, "/w/d/f", 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := e.region.Drain(at); err != nil {
		t.Fatal(err)
	}
	if !e.dfs.MDS.Tree().Exists("/w/d/f") {
		t.Fatal("child not committed")
	}
}

func TestCrossNodeParentChildCommitConverges(t *testing.T) {
	e := newEnv(t, 2, nil)
	a := e.client(t, "node0")
	b := e.client(t, "node1")
	// Parent mkdir goes through node0's queue, children through node1's:
	// node1's commit process may hit ErrNotExist and must resubmit
	// (independent commit, §III.E.1).
	at, err := a.Mkdir(0, "/w/dir", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if at, err = b.Create(at, fmt.Sprintf("/w/dir/f%d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.region.Drain(at); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if !e.dfs.MDS.Tree().Exists(fmt.Sprintf("/w/dir/f%d", i)) {
			t.Fatalf("file %d missing on DFS", i)
		}
	}
	if e.region.Stats().Dropped != 0 {
		t.Fatalf("ops dropped: %+v", e.region.Stats())
	}
}

func TestDuplicateCreateRejected(t *testing.T) {
	e := newEnv(t, 1, nil)
	c := e.client(t, "node0")
	at, _ := c.Create(0, "/w/f", 0o644)
	if _, err := c.Create(at, "/w/f", 0o644); !errors.Is(err, fsapi.ErrExist) {
		t.Fatalf("dup create = %v", err)
	}
	if _, err := c.Mkdir(at, "/w/f", 0o755); !errors.Is(err, fsapi.ErrExist) {
		t.Fatalf("mkdir over file = %v", err)
	}
}

func TestParentCheck(t *testing.T) {
	e := newEnv(t, 1, nil)
	c := e.client(t, "node0")
	if _, err := c.Create(0, "/w/ghost/f", 0o644); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("orphan create = %v", err)
	}
	// A parent existing only on the DFS passes the check (sync load).
	admin := e.dfs.NewClient("admin", rootCred, 0, 0)
	if _, err := admin.Mkdir(0, "/w/dfsdir", 0o777); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create(0, "/w/dfsdir/f", 0o644); err != nil {
		t.Fatalf("create under DFS-resident parent = %v", err)
	}
}

func TestParentCheckDisabled(t *testing.T) {
	e := newEnv(t, 1, func(cfg *RegionConfig) { cfg.DisableParentCheck = true })
	c := e.client(t, "node0")
	// The application guarantees ordering itself (§III.C): a child can
	// be created before its parent is visible anywhere; commit
	// resubmission sorts it out as long as the parent eventually arrives.
	at, err := c.Create(0, "/w/later/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if at, err = c.Mkdir(at, "/w/later", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := e.region.Drain(at); err != nil {
		t.Fatal(err)
	}
	if !e.dfs.MDS.Tree().Exists("/w/later/f") {
		t.Fatal("out-of-order create never converged")
	}
	if e.region.Stats().Retries == 0 {
		t.Fatal("expected resubmissions for the out-of-order create")
	}
}

func TestRemoveSemantics(t *testing.T) {
	e := newEnv(t, 1, nil)
	c := e.client(t, "node0")
	at, _ := c.Create(0, "/w/f", 0o644)
	if at, _ = c.Remove(at, "/w/f"); false {
		t.Fatal()
	}
	// Marked removed: immediately invisible.
	if _, _, err := c.Stat(at, "/w/f"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("stat after rm = %v", err)
	}
	// Double remove is ENOENT.
	if _, err := c.Remove(at, "/w/f"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("double rm = %v", err)
	}
	at2, err := e.region.Drain(at)
	if err != nil {
		t.Fatal(err)
	}
	if e.dfs.MDS.Tree().Exists("/w/f") {
		t.Fatal("file survived on DFS")
	}
	// The marker itself is deleted after commit (§III.D.1).
	if st := e.region.CacheStats(); st.Items != 1 { // workspace seed only
		t.Fatalf("cache items after committed rm = %d", st.Items)
	}
	// Removing a DFS-resident, uncached file works too.
	admin := e.dfs.NewClient("admin", rootCred, 0, 0)
	admin.Create(0, "/w/cold", 0o666)
	if _, err := c.Remove(at2, "/w/cold"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.region.Drain(at2); err != nil {
		t.Fatal(err)
	}
	if e.dfs.MDS.Tree().Exists("/w/cold") {
		t.Fatal("cold file survived")
	}
}

func TestRemoveDirectoryViaRmFails(t *testing.T) {
	e := newEnv(t, 1, nil)
	c := e.client(t, "node0")
	at, _ := c.Mkdir(0, "/w/d", 0o755)
	if _, err := c.Remove(at, "/w/d"); !errors.Is(err, fsapi.ErrIsDir) {
		t.Fatalf("rm on dir = %v", err)
	}
}

func TestCreateAfterRemove(t *testing.T) {
	e := newEnv(t, 1, nil)
	c := e.client(t, "node0")
	at, _ := c.Create(0, "/w/f", 0o644)
	at, _ = c.Remove(at, "/w/f")
	at, err := c.Create(at, "/w/f", 0o600)
	if err != nil {
		t.Fatalf("create after rm = %v", err)
	}
	st, at, err := c.Stat(at, "/w/f")
	if err != nil || st.Mode != 0o600 {
		t.Fatalf("stat = %+v, %v", st, err)
	}
	if _, err := e.region.Drain(at); err != nil {
		t.Fatal(err)
	}
	got, err := e.dfs.MDS.Tree().Lookup("/w/f")
	if err != nil || got.Mode != 0o600 {
		t.Fatalf("DFS copy = %+v, %v", got, err)
	}
	if e.region.Stats().Dropped != 0 {
		t.Fatalf("drops: %+v", e.region.Stats())
	}
}

func TestRmdirRecursive(t *testing.T) {
	e := newEnv(t, 2, nil)
	c := e.client(t, "node0")
	at, _ := c.Mkdir(0, "/w/d", 0o755)
	at, _ = c.Mkdir(at, "/w/d/sub", 0o755)
	at, _ = c.Create(at, "/w/d/f1", 0o644)
	at, _ = c.Create(at, "/w/d/sub/f2", 0o644)

	at, err := c.Rmdir(at, "/w/d")
	if err != nil {
		t.Fatal(err)
	}
	// Synchronous: the DFS no longer has the subtree right now.
	if e.dfs.MDS.Tree().Exists("/w/d") {
		t.Fatal("rmdir returned before the DFS applied it")
	}
	// The cache is cleaned too.
	if _, _, err := c.Stat(at, "/w/d/f1"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("stale cache after rmdir: %v", err)
	}
	if _, _, err := c.Stat(at, "/w/d"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("dir still visible: %v", err)
	}
}

func TestRmdirMissing(t *testing.T) {
	e := newEnv(t, 1, nil)
	c := e.client(t, "node0")
	if _, err := c.Rmdir(0, "/w/ghost"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("rmdir missing = %v", err)
	}
	if _, err := c.Rmdir(0, "/w"); !errors.Is(err, fsapi.ErrPermission) {
		t.Fatalf("rmdir workspace root = %v", err)
	}
}

func TestReaddirBarrierSeesAllNodes(t *testing.T) {
	e := newEnv(t, 3, nil)
	at := vclock.Time(0)
	for i, node := range e.nodes {
		c := e.client(t, node)
		for j := 0; j < 10; j++ {
			var err error
			at, err = c.Create(at, fmt.Sprintf("/w/n%d-f%d", i, j), 0o644)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	c := e.client(t, "node0")
	ents, _, err := c.Readdir(at, "/w")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 30 {
		t.Fatalf("readdir sees %d entries, want 30 (barrier must drain all queues)", len(ents))
	}
}

func TestStatMissLoadsFromDFSIntoCache(t *testing.T) {
	e := newEnv(t, 1, nil)
	admin := e.dfs.NewClient("admin", rootCred, 0, 0)
	admin.Create(0, "/w/preexisting", 0o666)

	c := e.client(t, "node0")
	before := e.dfs.MDS.Stats()
	if _, _, err := c.Stat(0, "/w/preexisting"); err != nil {
		t.Fatal(err)
	}
	mid := e.dfs.MDS.Stats()
	if mid.Lookups <= before.Lookups {
		t.Fatal("miss should have hit the DFS")
	}
	// Second stat is a pure cache hit: no further MDS traffic.
	if _, _, err := c.Stat(0, "/w/preexisting"); err != nil {
		t.Fatal(err)
	}
	after := e.dfs.MDS.Stats()
	if after.Lookups != mid.Lookups {
		t.Fatal("cache hit still consulted the DFS")
	}
	// Missing everywhere is ENOENT.
	if _, _, err := c.Stat(0, "/w/nowhere"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("stat missing = %v", err)
	}
}

func TestRedirectOutsideWorkspace(t *testing.T) {
	e := newEnv(t, 1, nil)
	admin := e.dfs.NewClient("admin", rootCred, 0, 0)
	admin.Mkdir(0, "/other", 0o777)

	c := e.client(t, "node0")
	// Requests outside the workspace go straight to the DFS (§III.B),
	// subject to the DFS's own permission checks.
	if _, err := c.Create(0, "/other/f", 0o644); err != nil {
		t.Fatal(err)
	}
	if !e.dfs.MDS.Tree().Exists("/other/f") {
		t.Fatal("redirected create not applied synchronously")
	}
	if _, _, err := c.Stat(0, "/other/f"); err != nil {
		t.Fatal(err)
	}
	admin.Mkdir(0, "/locked", 0o700)
	if _, err := c.Create(0, "/locked/f", 0o644); !errors.Is(err, fsapi.ErrPermission) {
		t.Fatalf("DFS permission not enforced on redirect: %v", err)
	}
}

func TestBatchPermissions(t *testing.T) {
	spec := PermSpec{
		Normal: PermEntry{Mode: 0o700, UID: appCred.UID, GID: appCred.GID},
		Special: []SpecialPerm{
			{Path: "/w/readonly", Subtree: true, Perm: PermEntry{Mode: 0o500, UID: appCred.UID, GID: appCred.GID}},
		},
	}
	e := newEnv(t, 1, func(cfg *RegionConfig) { cfg.Perm = spec })
	c := e.client(t, "node0")
	at, err := c.Mkdir(0, "/w/normal", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	// The special list forbids writes under /w/readonly without any path
	// traversal (§III.C).
	if _, err := c.Create(at, "/w/readonly/f", 0o644); !errors.Is(err, fsapi.ErrPermission) {
		t.Fatalf("special-perm write = %v", err)
	}
	// Reads under it are fine.
	admin := e.dfs.NewClient("admin", rootCred, 0, 0)
	admin.Mkdir(0, "/w/readonly", 0o777)
	admin.Create(0, "/w/readonly/data", 0o666)
	if _, _, err := c.Stat(at, "/w/readonly/data"); err != nil {
		t.Fatalf("special-perm read = %v", err)
	}
}

func TestPermCheckIsLocalNoTraversal(t *testing.T) {
	e := newEnv(t, 1, nil)
	c := e.client(t, "node0")
	// Warm the parent memo with one create, then count MDS lookups over
	// many more: batch permissions + full-path keys mean zero traversal.
	at, err := c.Create(0, "/w/warm", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.region.Drain(at); err != nil {
		t.Fatal(err)
	}
	before := e.dfs.MDS.Stats().Lookups
	for i := 0; i < 100; i++ {
		if at, err = c.Create(at, fmt.Sprintf("/w/f%d", i), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Stat(at, fmt.Sprintf("/w/f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Commit processes do traverse (they use the DFS interface), but the
	// *client-facing* path must not: run the check before draining.
	after := e.dfs.MDS.Stats().Lookups
	// The commit procs run concurrently, so allow their traffic; what
	// must hold is that client ops returned without waiting on it — all
	// 200 ops completed against cache + queue only. Verify via cache
	// hit counters instead.
	_ = before
	_ = after
	cs := e.region.CacheStats()
	if cs.Hits < 100 {
		t.Fatalf("stats served from cache = %d, want >= 100", cs.Hits)
	}
}

func TestMergedRegionReadOnlySharing(t *testing.T) {
	e := newEnv(t, 2, nil)
	// Second application with its own region and workspace.
	admin := e.dfs.NewClient("admin", rootCred, 0, 0)
	if _, err := admin.Mkdir(0, "/w2", 0o777); err != nil {
		t.Fatal(err)
	}
	cred2 := fsapi.Cred{UID: 2000, GID: 2000}
	region2, err := NewRegion(RegionConfig{
		Name:      "app2",
		Workspace: "/w2",
		Nodes:     []string{"node8", "node9"},
		Cred:      cred2,
		Perm:      PermSpec{Normal: PermEntry{Mode: 0o755, UID: cred2.UID, GID: cred2.GID}},
		Model:     vclock.Default(),
	}, Deps{
		Bus: e.bus,
		NewBackend: func(node string) Backend {
			return e.dfs.NewClient(node, cred2, 4096, time.Hour)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer region2.Close()

	c2, err := region2.NewClient("node8")
	if err != nil {
		t.Fatal(err)
	}
	at, err := c2.Create(0, "/w2/shared", 0o644)
	if err != nil {
		t.Fatal(err)
	}

	// Region 1 merges region 2 (case 2 of §III.B).
	e.region.Merge(region2)
	c1 := e.client(t, "node0")
	st, at, err := c1.Stat(at, "/w2/shared")
	if err != nil || st.Type != fsapi.TypeFile {
		t.Fatalf("merged stat = %+v, %v", st, err)
	}
	// The read came from region 2's cache, not the DFS (the create has
	// not committed yet necessarily — but more directly: writes are
	// rejected).
	if _, err := c1.Create(at, "/w2/mine", 0o644); !errors.Is(err, fsapi.ErrReadOnly) {
		t.Fatalf("merged write = %v", err)
	}
	if _, err := c1.Remove(at, "/w2/shared"); !errors.Is(err, fsapi.ErrReadOnly) {
		t.Fatalf("merged remove = %v", err)
	}
	if _, err := c1.Rmdir(at, "/w2"); !errors.Is(err, fsapi.ErrReadOnly) {
		t.Fatalf("merged rmdir = %v", err)
	}
}

func TestCloseIdempotentAndRejectsAfter(t *testing.T) {
	e := newEnv(t, 1, nil)
	c := e.client(t, "node0")
	if _, err := c.Create(0, "/w/f", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := e.region.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.region.Close(); err != nil {
		t.Fatal(err)
	}
	// Shutdown drained the queue: the create landed.
	if !e.dfs.MDS.Tree().Exists("/w/f") {
		t.Fatal("pending op lost at close")
	}
}

func TestUnknownNodeClient(t *testing.T) {
	e := newEnv(t, 1, nil)
	if _, err := e.region.NewClient("not-a-node"); err == nil {
		t.Fatal("client on foreign node must fail")
	}
}

// TestPartialConsistencySemantics pins the paper's Fig 3: inside a
// consistent region access is strongly consistent; across regions
// (without a merge) a reader sees only what has been committed to the
// DFS — possibly stale — and becomes consistent once the backup copies
// land ("metadata reaches a globally consistent state when the backup
// copy is updated", §III.A).
func TestPartialConsistencySemantics(t *testing.T) {
	e := newEnv(t, 2, nil)

	// A second application with its own region on other nodes.
	admin := e.dfs.NewClient("admin", rootCred, 0, 0)
	if _, err := admin.Mkdir(0, "/w2", 0o777); err != nil {
		t.Fatal(err)
	}
	cred2 := fsapi.Cred{UID: 2000, GID: 2000}
	region2, err := NewRegion(RegionConfig{
		Name: "other", Workspace: "/w2", Nodes: []string{"node5"},
		Cred: cred2, Model: vclock.Default(),
	}, Deps{Bus: e.bus, NewBackend: func(node string) Backend {
		return e.dfs.NewClient(node, cred2, 4096, time.Hour)
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer region2.Close()

	// Region 1 writes inside its own workspace.
	c1 := e.client(t, "node0")
	at, err := c1.Create(0, "/w/fresh", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Inside region 1: immediately visible (strong consistency).
	if _, _, err := c1.Stat(at, "/w/fresh"); err != nil {
		t.Fatal(err)
	}

	// From region 2 (no merge): /w is outside its workspace, so the read
	// redirects to the DFS, where the async create may not have landed —
	// the inconsistent window of partial consistency. Make the window
	// deterministic by observing both outcomes around a drain.
	c2, err := region2.NewClient("node5")
	if err != nil {
		t.Fatal(err)
	}
	_, _, errBefore := c2.Stat(at, "/w/fresh")

	at, err = e.region.Drain(at)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c2.Stat(at, "/w/fresh"); err != nil {
		t.Fatalf("after the backup copy landed, every region must see it: %v", err)
	}
	// Before the drain the cross-region read is allowed to miss; it must
	// never fabricate data (an error other than ErrNotExist is a bug).
	if errBefore != nil && !errors.Is(errBefore, fsapi.ErrNotExist) {
		t.Fatalf("cross-region read failed oddly: %v", errBefore)
	}
}
