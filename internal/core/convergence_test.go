package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"pacon/internal/fsapi"
	"pacon/internal/vclock"
)

// TestIndependentCommitConvergesToModel is the empirical counterpart of
// the paper's §III.E argument: for non-dependent operations, any commit
// order satisfying the namespace conventions yields the same final
// namespace. Multiple clients on multiple nodes issue a random sequence
// of mkdir/create/rm; after a drain, the DFS namespace must exactly
// match a sequential model of the accepted operations.
func TestIndependentCommitConvergesToModel(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			e := newEnv(t, 3, nil)
			rnd := rand.New(rand.NewSource(seed))

			// Sequential issue order across random clients: the model
			// applies the same op stream in issue order, which is the
			// region's linearization (each op is applied to the shared
			// cache before the next is issued).
			clients := make([]*Client, 6)
			times := make([]vclock.Time, len(clients))
			for i := range clients {
				clients[i] = e.client(t, e.nodes[i%len(e.nodes)])
			}

			model := map[string]fsapi.FileType{"/w": fsapi.TypeDir}
			dirs := []string{"/w"}
			files := []string{}

			// Per-path client affinity: every op on a path goes through
			// one client, so its commit-queue order matches issue order.
			// This is the design's contract (see the package comment on
			// commitLoop / DESIGN.md): cross-client create/rm races on
			// the SAME path commit in unspecified cross-queue order, as
			// in the paper, whose §III.E argument presumes per-path
			// temporal order (per-node FIFO queues provide it when a
			// path has one writer — the case in every HPC workload the
			// paper evaluates).
			clientFor := func(p string) int {
				h := 0
				for i := 0; i < len(p); i++ {
					h = h*131 + int(p[i])
				}
				if h < 0 {
					h = -h
				}
				return h % len(clients)
			}

			for op := 0; op < 400; op++ {
				kind := rnd.Intn(10)
				var p string
				switch {
				case kind < 3: // mkdir
					p = fmt.Sprintf("%s/d%d", dirs[rnd.Intn(len(dirs))], rnd.Intn(50))
				case kind < 8: // create
					p = fmt.Sprintf("%s/f%d", dirs[rnd.Intn(len(dirs))], rnd.Intn(80))
				default: // rm a random known file (may already be gone)
					if len(files) == 0 {
						continue
					}
					p = files[rnd.Intn(len(files))]
				}
				ci := clientFor(p)
				cl := clients[ci]
				now := times[ci]
				var err error
				switch {
				case kind < 3:
					now, err = cl.Mkdir(now, p, 0o755)
					if err == nil {
						if _, dup := model[p]; dup {
							t.Fatalf("mkdir %s accepted but model has it", p)
						}
						model[p] = fsapi.TypeDir
						dirs = append(dirs, p)
					} else if !errors.Is(err, fsapi.ErrExist) {
						t.Fatalf("mkdir %s: %v", p, err)
					}
				case kind < 8:
					now, err = cl.Create(now, p, 0o644)
					if err == nil {
						if _, dup := model[p]; dup {
							t.Fatalf("create %s accepted but model has it", p)
						}
						model[p] = fsapi.TypeFile
						files = append(files, p)
					} else if !errors.Is(err, fsapi.ErrExist) {
						t.Fatalf("create %s: %v", p, err)
					}
				default:
					now, err = cl.Remove(now, p)
					if err == nil {
						if _, ok := model[p]; !ok {
							t.Fatalf("rm %s accepted but model lacks it", p)
						}
						delete(model, p)
					} else if !errors.Is(err, fsapi.ErrNotExist) {
						t.Fatalf("rm %s: %v", p, err)
					}
				}
				times[ci] = now
			}

			// Drain: all backup copies applied.
			var maxT vclock.Time
			for _, ti := range times {
				maxT = vclock.Max(maxT, ti)
			}
			if _, err := e.region.Drain(maxT); err != nil {
				t.Fatal(err)
			}
			if st := e.region.Stats(); st.Dropped != 0 {
				t.Fatalf("ops dropped: %+v", st)
			}

			// The DFS namespace under /w must equal the model exactly.
			got := map[string]fsapi.FileType{}
			err := e.dfs.MDS.Tree().Walk("/w", func(p string, st fsapi.Stat) error {
				got[p] = st.Type
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for p, typ := range model {
				g, ok := got[p]
				if !ok {
					t.Errorf("model has %s (%v), DFS lacks it", p, typ)
				} else if g != typ {
					t.Errorf("%s: model %v, DFS %v", p, typ, g)
				}
			}
			for p := range got {
				if _, ok := model[p]; !ok {
					t.Errorf("DFS has %s, model lacks it", p)
				}
			}
		})
	}
}

// TestConcurrentMixedWorkloadNoDrops hammers a region from truly
// concurrent goroutines (racing creates, removes, stats, readdirs and an
// rmdir) and checks the commit module never drops work and the region
// survives with a consistent DFS image.
func TestConcurrentMixedWorkloadNoDrops(t *testing.T) {
	e := newEnv(t, 4, nil)
	setup := e.client(t, "node0")
	at, err := setup.Mkdir(0, "/w/mix", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	_ = at

	const goros = 12
	var wg sync.WaitGroup
	for g := 0; g < goros; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := e.client(t, e.nodes[g%len(e.nodes)])
			now := vclock.Time(0)
			var err error
			for i := 0; i < 40; i++ {
				p := fmt.Sprintf("/w/mix/g%d-%d", g, i)
				if now, err = cl.Create(now, p, 0o644); err != nil {
					t.Errorf("create: %v", err)
					return
				}
				if i%3 == 0 {
					if now, err = cl.Remove(now, p); err != nil {
						t.Errorf("remove: %v", err)
						return
					}
				}
				if i%7 == 0 {
					if _, _, err = cl.Stat(now, "/w/mix"); err != nil {
						t.Errorf("stat: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// A barrier op sees the final state.
	reader := e.client(t, "node1")
	ents, _, err := reader.Readdir(vclock.Time(1<<45), "/w/mix")
	if err != nil {
		t.Fatal(err)
	}
	// Each goroutine created 40, removed ceil(40/3)=14.
	want := goros * (40 - 14)
	if len(ents) != want {
		t.Fatalf("final entries = %d, want %d", len(ents), want)
	}
	if st := e.region.Stats(); st.Dropped != 0 {
		t.Fatalf("drops under concurrency: %+v", st)
	}
}

// TestRmdirRacingCreates: creations race a recursive rmdir of their
// parent. Whatever interleaving occurs, the end state must be valid:
// the directory gone from DFS and cache, no orphaned children anywhere,
// and every racing create either succeeded (before the removal) or
// failed with ErrNotExist (after it).
func TestRmdirRacingCreates(t *testing.T) {
	for round := 0; round < 5; round++ {
		e := newEnv(t, 3, nil)
		setup := e.client(t, "node0")
		if _, err := setup.Mkdir(0, "/w/doomed", 0o755); err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				cl := e.client(t, e.nodes[g%len(e.nodes)])
				<-start
				now := vclock.Time(0)
				for i := 0; i < 30; i++ {
					var err error
					now, err = cl.Create(now, fmt.Sprintf("/w/doomed/g%d-%d", g, i), 0o644)
					if err != nil && !errors.Is(err, fsapi.ErrNotExist) {
						t.Errorf("create: %v", err)
						return
					}
				}
			}(g)
		}
		remover := e.client(t, "node1")
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := remover.Rmdir(vclock.Time(1000), "/w/doomed"); err != nil &&
				!errors.Is(err, fsapi.ErrNotExist) {
				t.Errorf("rmdir: %v", err)
			}
		}()
		close(start)
		wg.Wait()

		// Quiesce and verify global invariants.
		at, err := e.region.Drain(vclock.Time(1 << 45))
		if err != nil {
			t.Fatal(err)
		}
		if e.dfs.MDS.Tree().Exists("/w/doomed") {
			// Creates that raced after the rmdir may have re-verified the
			// parent via a stale memo — but the parent is gone, so they
			// must not have re-created it.
			t.Fatal("removed directory still on DFS")
		}
		// No orphans: every DFS path under /w has a directory parent.
		err = e.dfs.MDS.Tree().Walk("/w", func(p string, st fsapi.Stat) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		// Cache holds no entries under the removed dir.
		if _, _, err := remover.Stat(at, "/w/doomed/g0-0"); !errors.Is(err, fsapi.ErrNotExist) {
			t.Fatalf("stale cache entry after rmdir: %v", err)
		}
	}
}
