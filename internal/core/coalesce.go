package core

// coalesceOps merges runs of same-path operations dequeued together.
// The batch comes from one node's queue within one barrier epoch, so
// every merge below is invisible to the rest of the region:
//
//   - No reader can observe the skipped intermediate DFS states. Reads
//     are served from the distributed cache (whose value already
//     reflects the *last* queued mutation — each push overwrote the
//     cache entry before enqueueing), and cache misses only load from
//     the DFS after the entry was evicted, which eviction refuses while
//     the entry is dirty.
//   - Per-path FIFO is preserved: a merged run collapses onto the
//     position of its first op, and later ops of the same path continue
//     to coalesce into (or queue behind) that position.
//   - Barrier epochs are respected by construction: mq.Queue.PopBatch
//     never returns ops straddling a barrier marker, so a dependent
//     operation (rmdir, rename) still observes every op that preceded
//     its barrier, in merged form.
//
// Merge rules (prev is the batch's latest op for the path, next the
// incoming one):
//
//	create/mkdir + setstat  -> create/mkdir carrying the newer stat
//	setstat      + setstat  -> the newer setstat (stats are absolute,
//	                           never deltas — WriteAt re-encodes the
//	                           full inline content every push)
//	setstat      + remove   -> the remove (the remove's marker already
//	                           superseded the setstat's seq in cache)
//	create/mkdir + remove   -> net-absence remove (annihilation), only
//	                           when the create is NOT create-after-rm:
//	                           an AfterRm create means an older
//	                           incarnation's remove is still queued —
//	                           possibly on another node — and stealing
//	                           its DFS delete would strand it retrying
//	                           against an absent path.
//
// A remove never merges as prev (remove+create is a fresh incarnation
// that must commit on its own), and nothing merges across a non-merge:
// the map tracks only the latest position per path.
//
// onMerge (nil ok) is called once per fold with the surviving merged op
// and the op absorbed into it — the commit loop's hook for closing the
// absorbed op's span and releasing its path-tracker reference. The
// absorbed side is identified structurally (the merged op keeps prev's
// kind when a setstat folded into a create, and next's kind otherwise)
// so the hook fires even when tracing is off and every span is zero.
//
// The result is built in place (out reuses ops' backing array — the
// write index never passes the read index, and each range element is
// copied out before the slot can be overwritten), and scratch, when
// non-nil, is a caller-owned per-path index map reused across batches so
// a long-running commit loop allocates nothing per dequeue. Pass nil to
// allocate internally.
func coalesceOps(ops []Op, scratch map[string]int, onMerge func(survivor, absorbed Op)) ([]Op, int64) {
	if len(ops) < 2 {
		return ops, 0
	}
	last := scratch
	if last == nil {
		last = make(map[string]int, len(ops))
	} else {
		clear(last)
	}
	out := ops[:0]
	var merged int64
	for _, op := range ops {
		if i, ok := last[op.Path]; ok {
			if m, ok := mergeOps(out[i], op); ok {
				if onMerge != nil {
					if m.Kind == op.Kind {
						onMerge(m, out[i])
					} else {
						onMerge(m, op)
					}
				}
				out[i] = m
				merged++
				continue
			}
		}
		out = append(out, op)
		last[op.Path] = len(out) - 1
	}
	return out, merged
}

// mergeOps folds next into prev per the rules above; ok=false means the
// pair must both commit.
func mergeOps(prev, next Op) (Op, bool) {
	t := prev.Time
	if next.Time > t {
		t = next.Time
	}
	switch {
	case (prev.Kind == OpCreate || prev.Kind == OpMkdir) && next.Kind == OpSetStat:
		m := prev
		m.Stat = next.Stat
		m.Seq = next.Seq
		m.Time = t
		return m, true
	case prev.Kind == OpSetStat && next.Kind == OpSetStat:
		m := next
		m.Time = t
		return m, true
	case prev.Kind == OpSetStat && next.Kind == OpRemove:
		m := next
		m.Time = t
		return m, true
	case (prev.Kind == OpCreate || prev.Kind == OpMkdir) && next.Kind == OpRemove && !prev.AfterRm:
		// The net-absence remove continues the remove's span (the
		// create's span ends at the coalesce event).
		return Op{Kind: OpRemove, Path: next.Path, Seq: next.Seq, Node: next.Node, Time: t,
			NetAbsent: true, Span: next.Span, EnqWall: next.EnqWall}, true
	}
	return Op{}, false
}
