package core

import (
	"pacon/internal/fsapi"
	"pacon/internal/memcache"
	"pacon/internal/namespace"
	"pacon/internal/vclock"
)

// evictRound frees cache space using the paper's simple policy (§III.F):
// pick the next entry under the consistent region's root round-robin and
// evict the committed metadata under/of it. Only clean (committed)
// entries are removed — dirty entries are the primary copy of data the
// DFS does not have yet.
func (r *Region) evictRound(c *Client, at vclock.Time) (vclock.Time, error) {
	r.evictMu.Lock()
	defer r.evictMu.Unlock()
	r.evictions.Add(1)

	ents, done, err := c.backend.Readdir(at, r.cfg.Workspace)
	at = done
	if err != nil {
		return at, err
	}
	if len(ents) == 0 {
		return at, fsapi.WrapPath("evict", r.cfg.Workspace, fsapi.ErrOutOfSpace)
	}
	// Round-robin selection: a different entry than last time, which
	// alleviates thrashing (§III.F). Readdir lists in name order, so the
	// first name after the last-evicted one continues the rotation even
	// when entries appeared or vanished since the previous round (an
	// index cursor over a re-read listing skips or repeats entries).
	pick := ents[0]
	for _, ent := range ents {
		if ent.Name > r.evictLast {
			pick = ent
			break
		}
	}
	r.evictLast = pick.Name
	target := namespace.Join(r.cfg.Workspace, pick.Name)
	return r.evictSubtree(c, at, target, pick.Type == fsapi.TypeDir)
}

// evictSubtree walks the committed subtree on the DFS and deletes every
// clean cache entry under it.
func (r *Region) evictSubtree(c *Client, at vclock.Time, p string, isDir bool) (vclock.Time, error) {
	if isDir {
		ents, done, err := c.backend.Readdir(at, p)
		at = done
		if err != nil {
			return at, err
		}
		for _, ent := range ents {
			var eerr error
			at, eerr = r.evictSubtree(c, at, namespace.Join(p, ent.Name), ent.Type == fsapi.TypeDir)
			if eerr != nil {
				return at, eerr
			}
		}
	}
	// Guarded delete: only a clean (committed) entry may go. A client can
	// dirty the entry between a read and a delete — that write makes the
	// entry the primary copy again, and an unconditional delete would
	// lose it forever; CondClean is evaluated under the server's shard
	// lock (or the legacy CAS loop re-checks).
	err := r.deleteIf(c.cache, &at, p, memcache.CondClean, 0)
	return at, err
}
