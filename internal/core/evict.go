package core

import (
	"errors"

	"pacon/internal/fsapi"
	"pacon/internal/namespace"
	"pacon/internal/vclock"
)

// evictRound frees cache space using the paper's simple policy (§III.F):
// pick the next entry under the consistent region's root round-robin and
// evict the committed metadata under/of it. Only clean (committed)
// entries are removed — dirty entries are the primary copy of data the
// DFS does not have yet.
func (r *Region) evictRound(c *Client, at vclock.Time) (vclock.Time, error) {
	r.evictMu.Lock()
	defer r.evictMu.Unlock()
	r.evictions.Add(1)

	ents, done, err := c.backend.Readdir(at, r.cfg.Workspace)
	at = done
	if err != nil {
		return at, err
	}
	if len(ents) == 0 {
		return at, fsapi.WrapPath("evict", r.cfg.Workspace, fsapi.ErrOutOfSpace)
	}
	// Round-robin selection: a different entry than last time, which
	// alleviates thrashing (§III.F).
	pick := ents[r.evictCursor%len(ents)]
	r.evictCursor++
	target := namespace.Join(r.cfg.Workspace, pick.Name)
	return r.evictSubtree(c, at, target, pick.Type == fsapi.TypeDir)
}

// evictSubtree walks the committed subtree on the DFS and deletes every
// clean cache entry under it.
func (r *Region) evictSubtree(c *Client, at vclock.Time, p string, isDir bool) (vclock.Time, error) {
	if isDir {
		ents, done, err := c.backend.Readdir(at, p)
		at = done
		if err != nil {
			return at, err
		}
		for _, ent := range ents {
			var eerr error
			at, eerr = r.evictSubtree(c, at, namespace.Join(p, ent.Name), ent.Type == fsapi.TypeDir)
			if eerr != nil {
				return at, eerr
			}
		}
	}
	item, done, err := c.cache.Get(at, p)
	at = done
	if err != nil {
		if errors.Is(err, fsapi.ErrNotExist) {
			return at, nil // not cached — nothing to evict
		}
		return at, err
	}
	v, derr := decodeCacheVal(item.Value)
	if derr != nil {
		return at, derr
	}
	if v.dirty || v.removed {
		return at, nil // uncommitted state stays resident
	}
	done, err = c.cache.Delete(at, p)
	at = done
	if err != nil && !errors.Is(err, fsapi.ErrNotExist) {
		return at, err
	}
	return at, nil
}
