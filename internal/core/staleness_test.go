package core

import (
	"errors"
	"expvar"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pacon/internal/fsapi"
	"pacon/internal/obs"
	"pacon/internal/vclock"
)

// gatedBackend blocks commit-surface mutations until gate is closed,
// pinning ops in the commit pipeline so lag/staleness state can be
// asserted deterministically mid-flight.
type gatedBackend struct {
	Backend
	gate <-chan struct{}
}

func (g *gatedBackend) CreateWithStat(at vclock.Time, p string, st fsapi.Stat) (vclock.Time, error) {
	<-g.gate
	return g.Backend.CreateWithStat(at, p, st)
}

func (g *gatedBackend) ApplyBatch(at vclock.Time, ops []fsapi.BatchOp) ([]error, vclock.Time, error) {
	<-g.gate
	return g.Backend.ApplyBatch(at, ops)
}

// TestLagReleasedAfterDrain: every committed op must release its lag
// entry — a drained region reports zero staleness and a non-zero peak
// commit lag, and the new watermark gauges appear in the exposition.
func TestLagReleasedAfterDrain(t *testing.T) {
	o := obs.New()
	e := newEnvDeps(t, 2, nil, func(d *Deps) { d.Obs = o })
	c := e.client(t, "node0")

	var at vclock.Time
	for i := 0; i < 8; i++ {
		var err error
		at, err = c.Create(at, fmt.Sprintf("/w/lag%d", i), 0o644)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.region.Drain(at); err != nil {
		t.Fatal(err)
	}

	if s := e.region.MaxStaleness(); s != 0 {
		t.Fatalf("MaxStaleness = %d after drain, want 0", s)
	}
	if e.region.MaxCommitLag() <= 0 {
		t.Fatal("MaxCommitLag zero after committed ops")
	}
	for _, node := range e.nodes {
		if a := e.region.OldestUnacked(node); a != 0 {
			t.Fatalf("OldestUnacked(%s) = %d after drain, want 0", node, a)
		}
	}

	var sb strings.Builder
	o.WriteProm(&sb)
	prom := sb.String()
	for _, m := range []string{
		"pacon_max_staleness_ns", "pacon_max_commit_lag_ns",
		"pacon_queue_head_age_ns", "pacon_queue_oldest_unacked_ns_node0",
		"pacon_commit_lag_seconds_count",
	} {
		if !strings.Contains(prom, m) {
			t.Fatalf("exposition missing %s:\n%s", m, prom)
		}
	}
}

// TestStalenessCoversInFlightAndParkedOps: with the backend gated, the
// watermark must see both the op stuck in apply and the ops still
// queued; SimulateNodeFailure must release the queued ops' entries
// (they will never reach a commit-loop terminal).
func TestStalenessCoversInFlightAndParkedOps(t *testing.T) {
	gate := make(chan struct{})
	o := obs.New()
	e := newEnvDeps(t, 1, func(cfg *RegionConfig) {
		cfg.CommitBatchSize = 1
	}, func(d *Deps) {
		d.Obs = o
		prev := d.NewBackend
		d.NewBackend = func(node string) Backend {
			return &gatedBackend{Backend: prev(node), gate: gate}
		}
	})
	c := e.client(t, "node0")

	var at vclock.Time
	for i := 0; i < 4; i++ {
		var err error
		at, err = c.Create(at, fmt.Sprintf("/w/gated%d", i), 0o644)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the commit process to pop the first op and block on the
	// gate; the remaining three stay queued.
	deadline := time.Now().Add(5 * time.Second)
	for e.region.QueueDepth() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %d, want 3", e.region.QueueDepth())
		}
		time.Sleep(time.Millisecond)
	}

	if e.region.MaxStaleness() <= 0 {
		t.Fatal("MaxStaleness zero with ops in flight")
	}
	if e.region.OldestUnacked("node0") <= 0 {
		t.Fatal("OldestUnacked zero with ops in flight")
	}
	if e.region.QueueHeadAge() <= 0 {
		t.Fatal("QueueHeadAge zero with queued ops")
	}
	if !e.region.PathPending("/w/gated2") {
		t.Fatal("PathPending false for a queued op")
	}
	if e.region.OldestPendingAge("/w/gated2") <= 0 {
		t.Fatal("OldestPendingAge zero for a queued op")
	}

	// In-flight work past the degraded threshold must surface in Health.
	h := e.region.Health(HealthThresholds{DegradedNS: 1})
	if h.Status < HealthDegraded {
		t.Fatalf("health %v with stale pipeline and 1ns threshold, want ≥ degraded", h.Status)
	}
	if len(h.Reasons) == 0 {
		t.Fatal("degraded health carries no reasons")
	}

	// Node failure discards the three queued ops; their tracker and lag
	// entries must be released or the watermark would stay pinned.
	if lost := e.region.SimulateNodeFailure("node0"); lost != 3 {
		t.Fatalf("SimulateNodeFailure lost %d ops, want 3", lost)
	}
	if e.region.PathPending("/w/gated2") {
		t.Fatal("PathPending true after the op was lost with its node")
	}

	close(gate)
	// Only the in-flight create remains; once it lands the region must
	// read fully converged again.
	deadline = time.Now().Add(5 * time.Second)
	for e.region.MaxStaleness() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("MaxStaleness still %d after gate release", e.region.MaxStaleness())
		}
		time.Sleep(time.Millisecond)
	}
}

// failBackend fails commit-surface mutations with a permanent
// (non-resubmittable) error, driving dropOp's backend_error terminal.
type failBackend struct {
	Backend
	err error
}

func (f *failBackend) CreateWithStat(at vclock.Time, p string, st fsapi.Stat) (vclock.Time, error) {
	return at, f.err
}

func (f *failBackend) ApplyBatch(at vclock.Time, ops []fsapi.BatchOp) ([]error, vclock.Time, error) {
	errs := make([]error, len(ops))
	for i := range errs {
		errs[i] = f.err
	}
	return errs, at, nil
}

// TestDropReasonCounters: a permanently failing commit must land in the
// per-reason drop counters, not just the aggregate.
func TestDropReasonCounters(t *testing.T) {
	o := obs.New()
	e := newEnvDeps(t, 1, nil, func(d *Deps) {
		d.Obs = o
		prev := d.NewBackend
		d.NewBackend = func(node string) Backend {
			return &failBackend{Backend: prev(node), err: errors.New("media failure")}
		}
	})
	c := e.client(t, "node0")

	at, err := c.Create(0, "/w/doomed", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.region.Drain(at); err != nil {
		t.Fatal(err)
	}

	byReason := e.region.DroppedByReason()
	if byReason[dropReasonBackendError] == 0 {
		t.Fatalf("backend_error drops not counted: %v", byReason)
	}
	var total int64
	for _, n := range byReason {
		total += n
	}
	if got := e.region.Stats().Dropped; got != total {
		t.Fatalf("dropped total %d != sum of reasons %d (%v)", got, total, byReason)
	}
	var sb strings.Builder
	o.WriteProm(&sb)
	if !strings.Contains(sb.String(), "pacon_ops_dropped_backend_error_total") {
		t.Fatal("exposition missing per-reason drop counter")
	}
}

// TestHealthVerdicts: the typed status must fold in the recorded audit
// verdict, and a clean idle region must read ok.
func TestHealthVerdicts(t *testing.T) {
	e := newEnv(t, 1, nil)

	h := e.region.Health(HealthThresholds{})
	if h.Status != HealthOK {
		t.Fatalf("idle region health %v (%v), want ok", h.Status, h.Reasons)
	}
	if _, ok := e.region.LastAudit(); ok {
		t.Fatal("LastAudit set before any audit ran")
	}

	e.region.RecordAudit(AuditVerdict{Sampled: 10, Matched: 8, Divergent: 2})
	h = e.region.Health(HealthThresholds{})
	if h.Status != HealthStalled {
		t.Fatalf("health %v with divergent audit, want stalled", h.Status)
	}
	if h.LastAudit == nil || h.LastAudit.Divergent != 2 {
		t.Fatalf("health does not carry the audit verdict: %+v", h.LastAudit)
	}
	if got := HealthStalled.String(); got != "stalled" {
		t.Fatalf("HealthStalled renders %q", got)
	}
}

// TestRegisterMetricsIdempotentAcrossRegions: a region restart
// (checkpoint/restore, tests) re-registers every gauge and counter on
// the shared registry; names must be replaced, not duplicated, and the
// exposition must read the live region.
func TestRegisterMetricsIdempotentAcrossRegions(t *testing.T) {
	o := obs.New()
	newEnvDeps(t, 1, nil, func(d *Deps) { d.Obs = o })
	e2 := newEnvDeps(t, 1, nil, func(d *Deps) { d.Obs = o })
	c := e2.client(t, "node0")
	at, err := c.Create(0, "/w/second-region", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.region.Drain(at); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	o.WriteProm(&sb)
	prom := sb.String()
	if n := strings.Count(prom, "# TYPE pacon_queue_depth gauge"); n != 1 {
		t.Fatalf("queue_depth registered %d times, want 1:\n%s", n, prom)
	}
	if n := strings.Count(prom, "# TYPE pacon_max_staleness_ns gauge"); n != 1 {
		t.Fatalf("max_staleness_ns registered %d times, want 1", n)
	}

	// Publishing the same expvar name from many goroutines must be safe
	// (expvar.Publish panics on duplicates; the publisher serializes).
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			o.PublishExpvar("pacon-test-idempotent")
		}()
	}
	wg.Wait()
	if expvar.Get("pacon-test-idempotent") == nil {
		t.Fatal("expvar not published")
	}
}
