package core

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"pacon/internal/obs"
)

// TestSkewHealthDegradedAndReset drives all client ops through one node
// of a two-node region and walks the sustained-imbalance rule end to
// end: gauges appear on the first poll, the onset poll stays ok, the
// sustained poll degrades with a hotspot-bearing flight dump, and
// rebalancing the load resets the rule back to ok.
func TestSkewHealthDegradedAndReset(t *testing.T) {
	o := obs.New()
	e := newEnvDeps(t, 2, nil, func(d *Deps) { d.Obs = o })
	c0 := e.client(t, "node0")
	c1 := e.client(t, "node1") // registers node1's recorder at zero ops

	at, err := c0.Create(0, "/w/hot", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	thr := HealthThresholds{SkewMaxMeanPermille: 1500, SkewMinOps: 16, SkewSustainNS: 1}

	// Below SkewMinOps the rule must not even start its clock.
	if h := e.region.Health(thr); h.Status != HealthOK {
		t.Fatalf("health %v below min-ops gate, want ok (%v)", h.Status, h.Reasons)
	}

	for i := 0; i < 63; i++ {
		if _, _, err := c0.Stat(at, "/w/hot"); err != nil {
			t.Fatal(err)
		}
	}

	// node0 carries 64 ops, node1 zero: max/mean = 2.0, CV = 1.0. The
	// first over-threshold poll stamps the onset but stays ok.
	h := e.region.Health(thr)
	if h.Status != HealthOK {
		t.Fatalf("onset poll degraded immediately: %+v", h)
	}
	if h.NodeOpsMaxMeanPermille != 2000 || h.NodeOpsCVPermille != 1000 {
		t.Fatalf("skew gauges = %d/%d, want 2000/1000", h.NodeOpsMaxMeanPermille, h.NodeOpsCVPermille)
	}
	if h.HotPath != "/w/hot" || h.HotPathShare != 1.0 {
		t.Fatalf("hot path = %q at %.2f, want /w/hot at 1.00", h.HotPath, h.HotPathShare)
	}

	time.Sleep(2 * time.Millisecond) // exceed the 1ns sustain window
	h = e.region.Health(thr)
	if h.Status != HealthDegraded {
		t.Fatalf("sustained imbalance not degraded: %+v", h)
	}
	if !strings.Contains(strings.Join(h.Reasons, ";"), "imbalance") {
		t.Fatalf("degraded without an imbalance reason: %v", h.Reasons)
	}

	// The ok→degraded transition cuts a flight dump carrying the top-K
	// tables alongside the spans.
	b := o.LastFlight()
	if b == nil {
		t.Fatal("worsening transition cut no flight dump")
	}
	var dump obs.FlightDump
	if err := json.Unmarshal(b, &dump); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v", err)
	}
	if dump.Reason != "health_degraded" {
		t.Fatalf("dump reason = %q, want health_degraded", dump.Reason)
	}
	if dump.Hotspots == nil || len(dump.Hotspots.TopPaths) == 0 || dump.Hotspots.TopPaths[0].Path != "/w/hot" {
		t.Fatalf("dump hotspot tables missing or wrong: %+v", dump.Hotspots)
	}

	// Balance the load: node1 serves the same volume, max/mean drops to
	// 1.0 (< 1500) and a single balanced poll resets the onset clock.
	for i := 0; i < 64; i++ {
		if _, _, err := c1.Stat(at, "/w/hot"); err != nil {
			t.Fatal(err)
		}
	}
	h = e.region.Health(thr)
	if h.Status != HealthOK {
		t.Fatalf("balanced region still %v: %v", h.Status, h.Reasons)
	}
	if h.NodeOpsMaxMeanPermille != 1000 || h.NodeOpsCVPermille != 0 {
		t.Fatalf("balanced gauges = %d/%d, want 1000/0", h.NodeOpsMaxMeanPermille, h.NodeOpsCVPermille)
	}
}

// TestSkewHealthRequiresObsAndPeers: with observability off, or with no
// peers to be imbalanced against, the skew rule stays silent.
func TestSkewHealthRequiresObsAndPeers(t *testing.T) {
	// No obs: the hotspot hook is nil at one branch and Health reports
	// zero skew fields.
	e := newEnv(t, 2, nil)
	c := e.client(t, "node0")
	at, err := c.Create(0, "/w/noobs", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, _, err := c.Stat(at, "/w/noobs"); err != nil {
			t.Fatal(err)
		}
	}
	h := e.region.Health(HealthThresholds{SkewMaxMeanPermille: 1, SkewMinOps: 1, SkewSustainNS: 1})
	if h.NodeOpsMaxMeanPermille != 0 || h.HotPath != "" || h.Status != HealthOK {
		t.Fatalf("obs-less region grew skew fields: %+v", h)
	}

	// Single node: every op lands on the only node; imbalance is
	// meaningless and the rule must not fire no matter the thresholds.
	o := obs.New()
	e1 := newEnvDeps(t, 1, nil, func(d *Deps) { d.Obs = o })
	c1 := e1.client(t, "node0")
	at, err = c1.Create(0, "/w/solo", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, _, err := c1.Stat(at, "/w/solo"); err != nil {
			t.Fatal(err)
		}
	}
	thr := HealthThresholds{SkewMaxMeanPermille: 1, SkewMinOps: 1, SkewSustainNS: 1}
	e1.region.Health(thr)
	time.Sleep(2 * time.Millisecond)
	if h := e1.region.Health(thr); h.Status != HealthOK || h.NodeOpsMaxMeanPermille != 0 {
		t.Fatalf("single-node region reported skew: %+v", h)
	}
	// The telemetry itself still records — only the health rule is out.
	if loads := o.HotNodeLoads(); len(loads) != 1 || loads[0].Ops != 33 {
		t.Fatalf("single-node loads = %+v, want node0 at 33 ops", loads)
	}
}
