package core

import (
	"time"

	"pacon/internal/memcache"
	"pacon/internal/obs"
)

// This file is the commit pipeline's seam to internal/obs. Everything
// here is nil-safe and records WALL-clock time: virtual time measures
// the modeled system, while spans and stage histograms profile the real
// process so perf work can see where wall time goes. The disabled path
// (r.obs == nil) costs exactly one branch per site — no ring exists, no
// span is allocated (Op.Span stays 0), and traceOp returns immediately.

// obsRing returns the node's event ring, or nil when observability is
// disabled.
func (r *Region) obsRing(node string) *obs.Ring {
	if r.obs == nil {
		return nil
	}
	return r.obs.Trace.Ring(node)
}

// traceOp records one stage event for a traced op. Sampled ops feed the
// active-span assembler too (obs.RecordSpanEvent) so their cross-node
// timeline can be finalized without scanning every ring; unsampled ops
// take the original zero-alloc ring-only path.
func (r *Region) traceOp(ring *obs.Ring, op Op, stage obs.Stage, note string) {
	if ring == nil || op.Span == 0 {
		return
	}
	ev := obs.Event{
		Span:  op.Span,
		Stage: stage,
		Op:    op.Kind.String(),
		Path:  op.Path,
		Wall:  time.Now().UnixNano(),
		Note:  note,
	}
	if op.Sampled {
		r.obs.RecordSpanEvent(ring, ev)
		return
	}
	ring.Record(ev)
}

// spanDone closes out an op's span at its terminal: sampled spans are
// assembled and attributed, anomalous unsampled spans (failed, parked,
// or with commit lag past the slow threshold) are tail-kept. Must run
// *after* the terminal stage event so the assembled timeline includes
// it.
func (r *Region) spanDone(op Op, failed bool) {
	if r.obs == nil || op.Span == 0 {
		return
	}
	var lag time.Duration
	if op.EnqWall != 0 {
		lag = time.Duration(time.Now().UnixNano() - op.EnqWall)
	}
	r.obs.SpanDone(op.Span, op.Sampled, op.Kind.String(), op.Path, lag, failed, op.Parked)
}

// traceCarrier is the optional capability of tagging outgoing RPCs with
// a span's trace context. memcache.Client and dfs.Client implement it
// over their rpc.Caller; wrapper backends (e.g. fault injectors) must
// forward it explicitly — interface embedding does not promote it.
type traceCarrier interface {
	SetTrace(span uint64)
	ClearTrace()
}

// commitTrace tags the commit loop's cache and backend callers with a
// sampled op's span, so the server-side events of the apply's RPCs
// (DFS create/apply_batch, cache clear_dirty/delete_if) land in the
// originating client op's span. Returns the untag closure, or nil for
// unsampled ops (the common case — no allocation).
func (r *Region) commitTrace(op Op, backend Backend, cache *memcache.Client) func() {
	if !op.Sampled || op.Span == 0 {
		return nil
	}
	cache.SetTrace(op.Span)
	tc, ok := backend.(traceCarrier)
	if ok {
		tc.SetTrace(op.Span)
	}
	return func() {
		cache.ClearTrace()
		if ok {
			tc.ClearTrace()
		}
	}
}

// opCommitted accounts a durably applied op: the committed counter, the
// apply stage event, and the commit-lag histogram (enqueue → durable on
// the DFS — how far the backup copy trails the primary).
func (r *Region) opCommitted(ring *obs.Ring, op Op) {
	r.committed.Add(1)
	r.opTerminal(op)
	if r.obs == nil {
		return
	}
	r.traceOp(ring, op, obs.StageApply, "")
	if op.EnqWall != 0 {
		lag := time.Now().UnixNano() - op.EnqWall
		r.obs.Hist(obs.HistCommitLag).RecordN(lag)
		r.noteCommitLag(lag)
	}
	r.spanDone(op, false)
}

// opDiscarded accounts an op dropped under an active rmdir (§III.D.1).
func (r *Region) opDiscarded(ring *obs.Ring, op Op) {
	r.discarded.Add(1)
	r.opTerminal(op)
	r.traceOp(ring, op, obs.StageDiscard, "under active rmdir")
	r.spanDone(op, false)
}

// observeDequeue records the dequeue stage and queue-residency samples
// for a popped batch.
func (r *Region) observeDequeue(ring *obs.Ring, ops []Op) {
	if r.obs == nil {
		return
	}
	wall := time.Now().UnixNano()
	h := r.obs.Hist(obs.HistQueueWait)
	for _, op := range ops {
		r.traceOp(ring, op, obs.StageDequeue, "")
		if op.EnqWall != 0 {
			h.RecordN(wall - op.EnqWall)
		}
	}
}
