package core

import (
	"time"

	"pacon/internal/obs"
)

// This file is the commit pipeline's seam to internal/obs. Everything
// here is nil-safe and records WALL-clock time: virtual time measures
// the modeled system, while spans and stage histograms profile the real
// process so perf work can see where wall time goes. The disabled path
// (r.obs == nil) costs exactly one branch per site — no ring exists, no
// span is allocated (Op.Span stays 0), and traceOp returns immediately.

// obsRing returns the node's event ring, or nil when observability is
// disabled.
func (r *Region) obsRing(node string) *obs.Ring {
	if r.obs == nil {
		return nil
	}
	return r.obs.Trace.Ring(node)
}

// traceOp records one stage event for a traced op.
func traceOp(ring *obs.Ring, op Op, stage obs.Stage, note string) {
	if ring == nil || op.Span == 0 {
		return
	}
	ring.Record(obs.Event{
		Span:  op.Span,
		Stage: stage,
		Op:    op.Kind.String(),
		Path:  op.Path,
		Wall:  time.Now().UnixNano(),
		Note:  note,
	})
}

// opCommitted accounts a durably applied op: the committed counter, the
// apply stage event, and the commit-lag histogram (enqueue → durable on
// the DFS — how far the backup copy trails the primary).
func (r *Region) opCommitted(ring *obs.Ring, op Op) {
	r.committed.Add(1)
	r.opTerminal(op)
	if r.obs == nil {
		return
	}
	traceOp(ring, op, obs.StageApply, "")
	if op.EnqWall != 0 {
		lag := time.Now().UnixNano() - op.EnqWall
		r.obs.Hist(obs.HistCommitLag).RecordN(lag)
		r.noteCommitLag(lag)
	}
}

// opDiscarded accounts an op dropped under an active rmdir (§III.D.1).
func (r *Region) opDiscarded(ring *obs.Ring, op Op) {
	r.discarded.Add(1)
	r.opTerminal(op)
	traceOp(ring, op, obs.StageDiscard, "under active rmdir")
}

// observeDequeue records the dequeue stage and queue-residency samples
// for a popped batch.
func (r *Region) observeDequeue(ring *obs.Ring, ops []Op) {
	if r.obs == nil {
		return
	}
	wall := time.Now().UnixNano()
	h := r.obs.Hist(obs.HistQueueWait)
	for _, op := range ops {
		traceOp(ring, op, obs.StageDequeue, "")
		if op.EnqWall != 0 {
			h.RecordN(wall - op.EnqWall)
		}
	}
}
