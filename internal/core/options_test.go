package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"pacon/internal/fsapi"
	"pacon/internal/vclock"
)

func TestSyncCommitModeAppliesBeforeReturn(t *testing.T) {
	e := newEnv(t, 2, func(cfg *RegionConfig) { cfg.SyncCommit = true })
	c := e.client(t, "node0")
	at, err := c.Create(0, "/w/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Synchronous: already on the DFS, no queued ops.
	if !e.dfs.MDS.Tree().Exists("/w/f") {
		t.Fatal("sync-commit create not on DFS at return")
	}
	if e.region.QueueDepth() != 0 {
		t.Fatal("sync-commit must not queue")
	}
	// Inline data goes through synchronously too.
	if at, err = c.Mkdir(at, "/w/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if !e.dfs.MDS.Tree().Exists("/w/d") {
		t.Fatal("sync-commit mkdir not on DFS")
	}
	// Duplicate detection still via the cache.
	if _, err := c.Create(at, "/w/f", 0o644); !errors.Is(err, fsapi.ErrExist) {
		t.Fatalf("dup create = %v", err)
	}
	// And it is slower than async, in virtual time.
	async := newEnv(t, 2, nil)
	ca := async.client(t, "node0")
	var asyncT, syncT vclock.Time
	for i := 0; i < 50; i++ {
		asyncT, err = ca.Create(asyncT, fmt.Sprintf("/w/a%d", i), 0o644)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		syncT, err = c.Create(syncT, fmt.Sprintf("/w/s%d", i), 0o644)
		if err != nil {
			t.Fatal(err)
		}
	}
	if asyncT*2 >= syncT {
		t.Fatalf("async (%v) should be far faster than sync (%v)", asyncT, syncT)
	}
}

func TestSyncCommitInlineData(t *testing.T) {
	e := newEnv(t, 1, func(cfg *RegionConfig) { cfg.SyncCommit = true })
	c := e.client(t, "node0")
	at, _ := c.Create(0, "/w/f", 0o644)
	at, err := c.WriteAt(at, "/w/f", 0, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c.ReadAt(at, "/w/f", 0, 10)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read = %q, %v", got, err)
	}
}

func TestHierarchicalPermCheckSemantics(t *testing.T) {
	e := newEnv(t, 1, func(cfg *RegionConfig) {
		cfg.HierarchicalPermCheck = true
		// Batch spec still applies at the end of the walk.
		cfg.Perm = PermSpec{Normal: PermEntry{Mode: 0o700, UID: appCred.UID, GID: appCred.GID}}
	})
	c := e.client(t, "node0")
	at, err := c.Mkdir(0, "/w/open", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	if at, err = c.Create(at, "/w/open/f", 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err = c.Stat(at, "/w/open/f"); err != nil {
		t.Fatal(err)
	}

	// A locked directory on the path denies traversal.
	at, err = c.Mkdir(at, "/w/locked", 0o000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create(at, "/w/locked/f", 0o644); !errors.Is(err, fsapi.ErrPermission) {
		t.Fatalf("create under exec-less dir = %v", err)
	}
	if _, _, err := c.Stat(at, "/w/locked/f"); !errors.Is(err, fsapi.ErrPermission) {
		t.Fatalf("stat under exec-less dir = %v", err)
	}
}

func TestHierarchicalCheckCostsMoreWithDepth(t *testing.T) {
	run := func(hier bool) vclock.Duration {
		e := newEnv(t, 1, func(cfg *RegionConfig) { cfg.HierarchicalPermCheck = hier })
		c := e.client(t, "node0")
		// Build a deep chain, then time stats at the leaf.
		p := "/w"
		at := vclock.Time(0)
		var err error
		for i := 0; i < 5; i++ {
			p += fmt.Sprintf("/l%d", i)
			if at, err = c.Mkdir(at, p, 0o755); err != nil {
				t.Fatal(err)
			}
		}
		start := at
		for i := 0; i < 50; i++ {
			if _, at, err = c.Stat(at, p); err != nil {
				t.Fatal(err)
			}
		}
		return at.Sub(start)
	}
	batch, hier := run(false), run(true)
	if hier <= batch {
		t.Fatalf("hierarchical (%v) must cost more than batch (%v)", hier, batch)
	}
}

func TestMergedRegionInlineRead(t *testing.T) {
	e := newEnv(t, 2, nil)
	admin := e.dfs.NewClient("admin", rootCred, 0, 0)
	admin.Mkdir(0, "/w2", 0o777)
	cred2 := fsapi.Cred{UID: 2, GID: 2}
	r2, err := NewRegion(RegionConfig{
		Name: "peer", Workspace: "/w2", Nodes: []string{"node7"},
		Cred:  cred2,
		Perm:  PermSpec{Normal: PermEntry{Mode: 0o755, UID: cred2.UID, GID: cred2.GID}},
		Model: vclock.Default(),
	}, Deps{Bus: e.bus, NewBackend: func(node string) Backend {
		return e.dfs.NewClient(node, cred2, 4096, time.Hour)
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	c2, _ := r2.NewClient("node7")
	at, _ := c2.Create(0, "/w2/data", 0o644)
	at, err = c2.WriteAt(at, "/w2/data", 0, []byte("shared-bytes"))
	if err != nil {
		t.Fatal(err)
	}

	e.region.Merge(r2)
	c1 := e.client(t, "node0")
	// Inline content is readable through the peer's cache before any
	// commit reaches the DFS.
	got, at, err := c1.ReadAt(at, "/w2/data", 0, 64)
	if err != nil || string(got) != "shared-bytes" {
		t.Fatalf("merged inline read = %q, %v", got, err)
	}
	// Writes remain rejected.
	if _, err := c1.WriteAt(at, "/w2/data", 0, []byte("x")); !errors.Is(err, fsapi.ErrReadOnly) {
		t.Fatalf("merged write = %v", err)
	}
	// Missing paths in the peer region fall back to the DFS and report
	// ErrNotExist.
	if _, _, err := c1.Stat(at, "/w2/ghost"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("merged miss = %v", err)
	}
}

func TestRetryLimitDropsOrphans(t *testing.T) {
	e := newEnv(t, 1, func(cfg *RegionConfig) {
		cfg.DisableParentCheck = true
		cfg.CommitRetryLimit = 4
	})
	c := e.client(t, "node0")
	// A child whose parent never arrives: the commit module must give up
	// after the budget and count the drop, not spin forever.
	at, err := c.Create(0, "/w/never/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.region.Drain(at); err != nil {
		t.Fatal(err)
	}
	st := e.region.Stats()
	if st.Dropped == 0 {
		t.Fatalf("orphan op must be dropped after the retry budget: %+v", st)
	}
	if st.Retries == 0 {
		t.Fatal("resubmissions must be counted")
	}
}

func TestRegionAccessors(t *testing.T) {
	e := newEnv(t, 2, nil)
	cfg := e.region.Config()
	if cfg.Workspace != "/w" || cfg.SmallFileThreshold != 4096 {
		t.Fatalf("config = %+v", cfg)
	}
	if e.region.Ring().Size() != 2 {
		t.Fatalf("ring size = %d", e.region.Ring().Size())
	}
	c := e.client(t, "node0")
	if c.Region() != e.region {
		t.Fatal("Region accessor wrong")
	}
	// Pace must not panic and must propagate to the backend.
	pacer := vclock.NewPacer(1, 0)
	c.Pace(pacer, 0)
	if _, err := c.Create(0, "/w/paced", 0o644); err != nil {
		t.Fatal(err)
	}
	pacer.Done(0)
}

func TestOpKindStrings(t *testing.T) {
	cases := map[OpKind]string{
		OpCreate:   "create",
		OpMkdir:    "mkdir",
		OpRemove:   "rm",
		OpSetStat:  "setstat",
		OpKind(99): "opkind(99)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestEvictionWalksNestedDirs(t *testing.T) {
	e := newEnv(t, 1, func(cfg *RegionConfig) { cfg.CacheCapacityBytes = 12 << 10 })
	c := e.client(t, "node0")
	at := vclock.Time(0)
	var err error
	// Nested structure so evictSubtree recursion gets exercised.
	for d := 0; d < 6; d++ {
		if at, err = c.Mkdir(at, fmt.Sprintf("/w/d%d", d), 0o755); err != nil {
			t.Fatal(err)
		}
		if at, err = c.Mkdir(at, fmt.Sprintf("/w/d%d/sub", d), 0o755); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if at, err = c.Create(at, fmt.Sprintf("/w/d%d/sub/f%d", d, i), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if at, err = e.region.Drain(at); err != nil {
			t.Fatal(err)
		}
	}
	// Push past capacity to force eviction rounds over the nested tree.
	for i := 0; i < 150; i++ {
		if at, err = c.Create(at, fmt.Sprintf("/w/x%03d", i), 0o644); err != nil {
			t.Fatalf("create under pressure: %v", err)
		}
		if i%25 == 24 {
			if at, err = e.region.Drain(at); err != nil {
				t.Fatal(err)
			}
		}
	}
	if e.region.Stats().Evictions < 2 {
		t.Fatalf("expected multiple eviction rounds, got %+v", e.region.Stats())
	}
	// Evicted nested entries reload on demand.
	if _, _, err := c.Stat(at, "/w/d3/sub/f5"); err != nil {
		t.Fatal(err)
	}
}

func TestRenameExtension(t *testing.T) {
	e := newEnv(t, 2, nil)
	c := e.client(t, "node0")
	at, _ := c.Mkdir(0, "/w/old", 0o755)
	at, _ = c.Create(at, "/w/old/f1", 0o644)
	at, _ = c.WriteAt(at, "/w/old/f1", 0, []byte("contents"))
	at, _ = c.Create(at, "/w/old/f2", 0o644)

	at, err := c.Rename(at, "/w/old", "/w/new")
	if err != nil {
		t.Fatal(err)
	}
	// Synchronous (dependent op): the DFS already reflects the move.
	if e.dfs.MDS.Tree().Exists("/w/old") || !e.dfs.MDS.Tree().Exists("/w/new/f1") {
		t.Fatal("rename not applied to the DFS at return")
	}
	// Old paths invisible, new paths resolve with data intact.
	if _, _, err := c.Stat(at, "/w/old/f1"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("old path still visible: %v", err)
	}
	data, at, err := c.ReadAt(at, "/w/new/f1", 0, 64)
	if err != nil || string(data) != "contents" {
		t.Fatalf("read after rename = %q, %v", data, err)
	}
	// Renaming over an existing name fails.
	at, _ = c.Mkdir(at, "/w/other", 0o755)
	if _, err := c.Rename(at, "/w/other", "/w/new"); !errors.Is(err, fsapi.ErrExist) {
		t.Fatalf("rename onto existing = %v", err)
	}
	// Workspace root cannot be moved; cross-boundary moves rejected.
	if _, err := c.Rename(at, "/w", "/elsewhere"); !errors.Is(err, fsapi.ErrPermission) {
		t.Fatalf("rename workspace root = %v", err)
	}
	if _, err := c.Rename(at, "/w/new", "/outside"); !errors.Is(err, fsapi.ErrPermission) {
		t.Fatalf("cross-boundary rename = %v", err)
	}
}

func TestRenameFileKeepsPendingWorkCorrect(t *testing.T) {
	e := newEnv(t, 2, nil)
	a := e.client(t, "node0")
	b := e.client(t, "node1")
	// Async creates from both nodes, then a rename: the barrier must
	// drain both queues first so nothing lands under the old name after
	// the move.
	at, _ := a.Mkdir(0, "/w/dir", 0o755)
	for i := 0; i < 10; i++ {
		at, _ = a.Create(at, fmt.Sprintf("/w/dir/a%d", i), 0o644)
		at, _ = b.Create(at, fmt.Sprintf("/w/dir/b%d", i), 0o644)
	}
	at, err := b.Rename(at, "/w/dir", "/w/moved")
	if err != nil {
		t.Fatal(err)
	}
	ents, _, err := a.Readdir(at, "/w/moved")
	if err != nil || len(ents) != 20 {
		t.Fatalf("moved dir has %d entries, %v", len(ents), err)
	}
	if e.region.Stats().Dropped != 0 {
		t.Fatalf("drops: %+v", e.region.Stats())
	}
}

// TestCacheFootprintClaim pins the paper's §III.F arithmetic: "a 500MB
// distributed cache space can store more than 10 million metadata
// without inline data... about 0.05% of the memory space if the
// application runs on 16 nodes". Our per-entry accounting is heavier
// than the paper's (full wire-encoded stat + memcached bookkeeping), so
// we assert the same order of magnitude — millions of entries in 500 MB
// — and the exact 0.05% node-memory fraction.
func TestCacheFootprintClaim(t *testing.T) {
	e := newEnv(t, 1, nil)
	c := e.client(t, "node0")
	at, err := c.Mkdir(0, "/w/run042", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		// Typical HPC output path length.
		at, err = c.Create(at, fmt.Sprintf("/w/run042/rank%04d.out", i), 0o644)
		if err != nil {
			t.Fatal(err)
		}
	}
	used := e.region.CacheStats().UsedBytes
	perEntry := float64(used) / float64(n+2)
	entriesPer500MB := 500 * 1024 * 1024 / perEntry
	if entriesPer500MB < 2_000_000 {
		t.Fatalf("only %.0f entries fit in 500MB (%.0fB each) — an order below the paper's claim", entriesPer500MB, perEntry)
	}
	// 500 MB spread over 16 nodes with 64 GB each (the paper's testbed):
	// 500MB / (16 × 64GB) ≈ 0.05%.
	fraction := 500.0 / (16 * 64 * 1024)
	if fraction > 0.0006 || fraction < 0.0004 {
		t.Fatalf("memory fraction %.5f does not match the paper's ~0.05%%", fraction)
	}
	t.Logf("per-entry %.0fB → %.1fM entries per 500MB; node-memory fraction %.3f%%",
		perEntry, entriesPer500MB/1e6, 100*fraction)
}
