package core

import (
	"fmt"
	"testing"
	"time"

	"pacon/internal/dfs"
	"pacon/internal/fsapi"
	"pacon/internal/obs"
	"pacon/internal/rpc"
	"pacon/internal/vclock"
)

// benchEnv builds a deployment without testing.T plumbing.
func benchEnv(b *testing.B, nodes int) (*Region, *Client) {
	return benchEnvShards(b, nodes, 0)
}

// benchEnvShards is benchEnv over the subtree-partitioned MDS pool
// (0 = the single shared-tree MDS).
func benchEnvShards(b *testing.B, nodes, mdsShards int) (*Region, *Client) {
	b.Helper()
	bus := rpc.NewBus()
	model := vclock.Default()
	var cluster *dfs.Cluster
	if mdsShards >= 1 {
		cluster = dfs.NewClusterSharded(bus, model, rootCred, "storage0", mdsShards, []string{"/w"}, []string{"s1"})
	} else {
		cluster = dfs.NewCluster(bus, model, rootCred, "storage0", []string{"s1"})
	}
	admin := cluster.NewClient("admin", rootCred, 0, 0)
	if _, err := admin.Mkdir(0, "/w", 0o777); err != nil {
		b.Fatal(err)
	}
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("node%d", i)
	}
	// Observability (with tracing at its default 1-in-64 head sampling)
	// stays attached: the alloc gate measures the op cost users actually
	// pay, and unsampled ops must stay allocation-free by design.
	o := obs.New()
	bus.SetObserver(o)
	region, err := NewRegion(RegionConfig{
		Name: "bench", Workspace: "/w", Nodes: names, Cred: appCred, Model: model,
	}, Deps{
		Bus: bus,
		Obs: o,
		NewBackend: func(node string) Backend {
			return cluster.NewClient(node, appCred, 4096, time.Hour)
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { region.Close() })
	c, err := region.NewClient("node0")
	if err != nil {
		b.Fatal(err)
	}
	return region, c
}

// Wall-clock cost of the client-facing operations: what a simulation
// pays per op, dominated by cache-server map work and encoding.

func BenchmarkClientCreate(b *testing.B) {
	_, c := benchEnv(b, 4)
	now := vclock.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		now, err = c.Create(now, fmt.Sprintf("/w/f%09d", i), 0o644)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClientCreateSharded is the same hot path with the shard
// router in front of a 4-shard MDS pool — the alloc gate holds it to
// the same budget as the single-MDS path (the router's owner hash is
// inline and allocation-free).
func BenchmarkClientCreateSharded(b *testing.B) {
	_, c := benchEnvShards(b, 4, 4)
	now := vclock.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		now, err = c.Create(now, fmt.Sprintf("/w/f%09d", i), 0o644)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClientStatHit(b *testing.B) {
	_, c := benchEnv(b, 4)
	now, err := c.Create(0, "/w/hot", 0o644)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, now, err = c.Stat(now, "/w/hot"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClientInlineWrite(b *testing.B) {
	_, c := benchEnv(b, 4)
	now, err := c.Create(0, "/w/inline", 0o644)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if now, err = c.WriteAt(now, "/w/inline", 0, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReaddirBarrier(b *testing.B) {
	region, c := benchEnv(b, 2)
	now := vclock.Time(0)
	var err error
	for i := 0; i < 64; i++ {
		if now, err = c.Create(now, fmt.Sprintf("/w/f%02d", i), 0o644); err != nil {
			b.Fatal(err)
		}
	}
	if now, err = region.Drain(now); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, now, err = c.Readdir(now, "/w"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReaddirBarrierSiblingWriter measures the scoped-barrier win:
// a writer floods /w/sib from another node while we list /w/hot. With
// scoped barriers the listings never wait for the sibling queue; run
// with -tags or the bench harness's DisableScopedBarrier ablation to
// see the full-drain cost. Also runs as a short-mode smoke in `make
// check` (-benchtime=1x).
func BenchmarkReaddirBarrierSiblingWriter(b *testing.B) {
	region, c := benchEnv(b, 2)
	now := vclock.Time(0)
	var err error
	if now, err = c.Mkdir(now, "/w/hot", 0o755); err != nil {
		b.Fatal(err)
	}
	if now, err = c.Mkdir(now, "/w/sib", 0o755); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if now, err = c.Create(now, fmt.Sprintf("/w/hot/f%02d", i), 0o644); err != nil {
			b.Fatal(err)
		}
	}
	if now, err = region.Drain(now); err != nil {
		b.Fatal(err)
	}

	w, err := region.NewClient("node1")
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		wt := now
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var werr error
			if wt, werr = w.Create(wt, fmt.Sprintf("/w/sib/s%09d", i), 0o644); werr != nil {
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, now, err = c.Readdir(now, "/w/hot"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
}

func BenchmarkCacheValCodec(b *testing.B) {
	v := cacheVal{dirty: true, seq: 42, stat: fsapi.NewFileStat(appCred, 0o644)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := v.encode()
		if _, err := decodeCacheVal(enc); err != nil {
			b.Fatal(err)
		}
	}
}
