package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"pacon/internal/fsapi"
	"pacon/internal/memcache"
	"pacon/internal/rpc"
	"pacon/internal/vclock"
)

// Regression tests for the lost-update races in the cleanup paths: every
// site that used to Get → decode → Delete unconditionally now re-checks
// under CAS (deleteIf). Each test uses the region's delete hook to
// interleave a conflicting write exactly inside the read/delete window —
// the schedule on which the seed code silently destroyed the newer
// value.

// rawCache returns a memcache client on the region's ring for direct
// white-box manipulation of cache values.
func rawCache(e *env) *memcache.Client {
	return memcache.NewClient(rpc.NewCaller(e.bus, vclock.Default(), "node0"), e.region.Ring())
}

// hookOnce installs a delete hook that fires fn exactly once, when the
// cleanup loop reaches `path`.
func hookOnce(r *Region, path string, fn func()) {
	var once sync.Once
	r.SetDeleteHook(func(p string) {
		if p == path {
			once.Do(fn)
		}
	})
}

func findEntry(t *testing.T, r *Region, path string) (CacheEntry, bool) {
	t.Helper()
	dump, err := r.DumpCache()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range dump {
		if e.Path == path {
			return e, true
		}
	}
	return CacheEntry{}, false
}

// TestEvictionKeepsRacingDirtyWrite reproduces the dirty-entry eviction
// race deterministically: a SetStat (inline write) lands between
// eviction's cleanliness check and its delete. The entry is the primary
// copy of that write — the unguarded delete of the seed code lost it;
// the CAS-guarded delete must observe ErrStale, re-check, and keep it.
func TestEvictionKeepsRacingDirtyWrite(t *testing.T) {
	e := newEnv(t, 1, nil)
	c := e.client(t, "node0")

	at, err := c.Create(0, "/w/victim", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if at, err = c.WriteAt(at, "/w/victim", 0, []byte("committed")); err != nil {
		t.Fatal(err)
	}
	at, err = e.region.Drain(at)
	if err != nil {
		t.Fatal(err)
	}
	if ent, ok := findEntry(t, e.region, "/w/victim"); !ok || ent.Dirty {
		t.Fatalf("want clean cached entry before eviction, got %+v ok=%v", ent, ok)
	}

	// The racing writer: dirties the entry inside the eviction window.
	writer := e.client(t, "node0")
	hookOnce(e.region, "/w/victim", func() {
		if _, werr := writer.WriteAt(at, "/w/victim", 0, []byte("racy-new-data")); werr != nil {
			t.Errorf("racing write: %v", werr)
		}
	})
	defer e.region.SetDeleteHook(nil)

	if _, err := e.region.evictSubtree(c, at, "/w/victim", false); err != nil {
		t.Fatal(err)
	}

	// The dirty write survived eviction: still resident, still dirty.
	ent, ok := findEntry(t, e.region, "/w/victim")
	if !ok {
		t.Fatal("dirty primary copy evicted — racing write lost")
	}
	if !ent.Dirty || string(ent.Stat.Inline) != "racy-new-data" {
		t.Fatalf("entry after eviction = %+v", ent)
	}

	// And it commits: after a drain both cache view and DFS carry it.
	at, err = e.region.Drain(vclock.Time(1 << 40))
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := c.ReadAt(at, "/w/victim", 0, 64)
	if err != nil || !bytes.Equal(data, []byte("racy-new-data")) {
		t.Fatalf("read after drain = %q, %v", data, err)
	}
	st, err := e.dfs.MDS.Tree().Lookup("/w/victim")
	if err != nil || st.Size != int64(len("racy-new-data")) {
		t.Fatalf("DFS backup = %+v, %v", st, err)
	}
}

// TestEvictionStillRemovesCleanEntries: the guarded path must not change
// the no-race behavior — a clean entry is evicted as before.
func TestEvictionStillRemovesCleanEntries(t *testing.T) {
	e := newEnv(t, 1, nil)
	c := e.client(t, "node0")
	at, err := c.Create(0, "/w/clean", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if at, err = e.region.Drain(at); err != nil {
		t.Fatal(err)
	}
	if _, err := e.region.evictSubtree(c, at, "/w/clean", false); err != nil {
		t.Fatal(err)
	}
	if _, ok := findEntry(t, e.region, "/w/clean"); ok {
		t.Fatal("clean committed entry not evicted")
	}
	if !e.dfs.MDS.Tree().Exists("/w/clean") {
		t.Fatal("eviction touched the DFS backup")
	}
}

// TestDropOpKeepsNewerIncarnation: dropOp abandons create seq=1 while a
// newer incarnation (seq=2) replaces the entry inside the read/delete
// window. The unguarded delete destroyed seq=2; the guard must keep it.
func TestDropOpKeepsNewerIncarnation(t *testing.T) {
	e := newEnv(t, 1, nil)
	mc := rawCache(e)

	old := cacheVal{dirty: true, seq: 1, stat: fsapi.NewFileStat(appCred, 0o644)}
	if _, _, err := mc.Set(0, "/w/phantom", old.encode(), 0); err != nil {
		t.Fatal(err)
	}
	newer := cacheVal{dirty: true, seq: 2, stat: fsapi.NewFileStat(appCred, 0o600)}
	hookOnce(e.region, "/w/phantom", func() {
		if _, _, err := mc.Set(0, "/w/phantom", newer.encode(), 0); err != nil {
			t.Errorf("racing re-create: %v", err)
		}
	})
	defer e.region.SetDeleteHook(nil)

	now := vclock.Time(0)
	e.region.dropOp(Op{Kind: OpCreate, Path: "/w/phantom", Seq: 1}, &now, mc, nil, dropReasonRetryBudget)

	ent, ok := findEntry(t, e.region, "/w/phantom")
	if !ok {
		t.Fatal("newer incarnation deleted by dropOp")
	}
	if ent.Seq != 2 {
		t.Fatalf("surviving entry seq = %d, want 2", ent.Seq)
	}
	// Without a racing write, the phantom is cleaned as before.
	e.region.SetDeleteHook(nil)
	e.region.dropOp(Op{Kind: OpCreate, Path: "/w/phantom", Seq: 2}, &now, mc, nil, dropReasonRetryBudget)
	if _, ok := findEntry(t, e.region, "/w/phantom"); ok {
		t.Fatal("abandoned create's entry not cleaned")
	}
}

// TestFinishRemoveKeepsNewerIncarnation: a create-after-rm lands between
// finishRemove's marker check and its delete of the marker. The fresh
// live entry must survive.
func TestFinishRemoveKeepsNewerIncarnation(t *testing.T) {
	e := newEnv(t, 1, nil)
	mc := rawCache(e)

	marker := cacheVal{removed: true, dirty: true, seq: 1, stat: fsapi.NewFileStat(appCred, 0o644)}
	if _, _, err := mc.Set(0, "/w/reborn", marker.encode(), 0); err != nil {
		t.Fatal(err)
	}
	live := cacheVal{dirty: true, seq: 2, stat: fsapi.NewFileStat(appCred, 0o600)}
	hookOnce(e.region, "/w/reborn", func() {
		if _, _, err := mc.Set(0, "/w/reborn", live.encode(), 0); err != nil {
			t.Errorf("racing create-after-rm: %v", err)
		}
	})
	defer e.region.SetDeleteHook(nil)

	now := vclock.Time(0)
	e.region.finishRemove(Op{Kind: OpRemove, Path: "/w/reborn", Seq: 1}, &now, mc)

	ent, ok := findEntry(t, e.region, "/w/reborn")
	if !ok {
		t.Fatal("create-after-rm entry deleted by finishRemove")
	}
	if ent.Removed || ent.Seq != 2 {
		t.Fatalf("surviving entry = %+v", ent)
	}

	// The committed marker itself is still cleaned when unraced.
	e.region.SetDeleteHook(nil)
	marker.seq = 3
	if _, _, err := mc.Set(0, "/w/gone", marker.encode(), 0); err != nil {
		t.Fatal(err)
	}
	e.region.finishRemove(Op{Kind: OpRemove, Path: "/w/gone", Seq: 3}, &now, mc)
	if _, ok := findEntry(t, e.region, "/w/gone"); ok {
		t.Fatal("committed removed marker not cleaned")
	}
}

// TestDiscardRuleKeepsNewerIncarnation: the rmdir discard rule processes
// a create whose path got a newer incarnation (created after the rmdir
// window closed) inside the read/delete window. The seed code deleted it
// unconditionally; the seq+CAS guard must keep it.
func TestDiscardRuleKeepsNewerIncarnation(t *testing.T) {
	e := newEnv(t, 1, nil)
	mc := rawCache(e)
	backend := e.region.deps.NewBackend("node0")

	e.region.addRemoving("/w/doomed")
	defer e.region.delRemoving("/w/doomed")

	old := cacheVal{dirty: true, seq: 1, stat: fsapi.NewFileStat(appCred, 0o644)}
	if _, _, err := mc.Set(0, "/w/doomed/f", old.encode(), 0); err != nil {
		t.Fatal(err)
	}
	newer := cacheVal{dirty: true, seq: 2, stat: fsapi.NewFileStat(appCred, 0o600)}
	hookOnce(e.region, "/w/doomed/f", func() {
		if _, _, err := mc.Set(0, "/w/doomed/f", newer.encode(), 0); err != nil {
			t.Errorf("racing re-create: %v", err)
		}
	})
	defer e.region.SetDeleteHook(nil)

	now := vclock.Time(0)
	discardedBefore := e.region.Stats().Discarded
	if retry := e.region.applyOp(Op{Kind: OpCreate, Path: "/w/doomed/f", Seq: 1,
		Stat: fsapi.NewFileStat(appCred, 0o644)}, &now, backend, mc, nil); retry {
		t.Fatal("discarded create must not be resubmitted")
	}
	if e.region.Stats().Discarded != discardedBefore+1 {
		t.Fatal("discard not accounted")
	}
	ent, ok := findEntry(t, e.region, "/w/doomed/f")
	if !ok {
		t.Fatal("newer incarnation deleted by the discard rule")
	}
	if ent.Seq != 2 {
		t.Fatalf("surviving entry seq = %d, want 2", ent.Seq)
	}
}

// TestEvictRoundRobinAdvancesByName: the rotation must progress through
// the directory by name even when the entry set changes between rounds —
// an index cursor re-applied to a re-read listing repeats or skips.
func TestEvictRoundRobinAdvancesByName(t *testing.T) {
	e := newEnv(t, 1, nil)
	c := e.client(t, "node0")
	at := vclock.Time(0)
	var err error
	for _, name := range []string{"e0", "e1", "e2", "e3", "e4"} {
		if at, err = c.Create(at, "/w/"+name, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if at, err = e.region.Drain(at); err != nil {
		t.Fatal(err)
	}

	cached := func(p string) bool {
		_, ok := findEntry(t, e.region, p)
		return ok
	}
	// Round 1: first entry in name order.
	if at, err = e.region.evictRound(c, at); err != nil {
		t.Fatal(err)
	}
	if cached("/w/e0") {
		t.Fatal("round 1 did not evict e0")
	}
	// An entry appears at the front of the listing (committed directly on
	// the DFS): the rotation must continue at e1, not revisit from an
	// index.
	admin := e.dfs.NewClient("admin", rootCred, 0, 0)
	if _, err := admin.Create(at, "/w/a-front", 0o666); err != nil {
		t.Fatal(err)
	}
	if at, err = e.region.evictRound(c, at); err != nil {
		t.Fatal(err)
	}
	if cached("/w/e1") {
		t.Fatal("round 2 did not advance to e1 after the listing grew")
	}
	// An entry vanishes from the listing (removed on the DFS): the
	// rotation skips past the gap to the next surviving name.
	if _, err := admin.Remove(at, "/w/e2"); err != nil {
		t.Fatal(err)
	}
	if at, err = e.region.evictRound(c, at); err != nil {
		t.Fatal(err)
	}
	if cached("/w/e3") {
		t.Fatal("round 3 did not advance to e3 after the listing shrank")
	}
	if !cached("/w/e4") {
		t.Fatal("round 3 overshot to e4")
	}
	// Wrap-around: after the last name, rotation restarts at the front.
	if at, err = e.region.evictRound(c, at); err != nil {
		t.Fatal(err)
	}
	if cached("/w/e4") {
		t.Fatal("round 4 did not evict e4")
	}
	if _, err = e.region.evictRound(c, at); err != nil {
		t.Fatal(err)
	}
	if got := e.region.evictLast; got != "a-front" {
		t.Fatalf("round 5 wrapped to %q, want a-front", got)
	}
}

// TestPendingSetReleasesZeroCountPaths: per-path counters must be removed
// from the map when they reach zero, or the map grows with every path
// that ever parked over the life of the commit loop.
func TestPendingSetReleasesZeroCountPaths(t *testing.T) {
	var p pendingSet
	p.add(Op{Path: "/w/a"}, "test")
	p.add(Op{Path: "/w/a"}, "test")
	p.add(Op{Path: "/w/b"}, "test")
	p.release("/w/a")
	if !p.blocks("/w/a") {
		t.Fatal("one reference remains — /w/a must still block")
	}
	p.release("/w/a")
	if p.blocks("/w/a") {
		t.Fatal("released path still blocks")
	}
	p.release("/w/b")
	if len(p.paths) != 0 {
		t.Fatalf("zero-count keys leaked: %v", p.paths)
	}
	// Releasing an unknown path must not resurrect a key.
	p.release("/w/ghost")
	if len(p.paths) != 0 {
		t.Fatalf("release of unknown path left keys: %v", p.paths)
	}
}

// TestRemoveCommitCleansMarkerViaCAS: end-to-end check that the normal
// (unraced) remove flow still deletes the marker after commit with the
// guarded path in place.
func TestRemoveCommitCleansMarkerViaCAS(t *testing.T) {
	e := newEnv(t, 1, nil)
	c := e.client(t, "node0")
	at, _ := c.Create(0, "/w/f", 0o644)
	at, _ = c.Remove(at, "/w/f")
	at, err := e.region.Drain(at)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := findEntry(t, e.region, "/w/f"); ok {
		t.Fatal("removed marker survived commit")
	}
	if _, _, err := c.Stat(at, "/w/f"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("stat after committed rm = %v", err)
	}
}

// TestMissLoadBypassesStaleDentry: a cache-miss load must read the
// authoritative backup copy, not the DFS client's dentry snapshot. The
// schedule poisons the client's dentry cache with a size-0 stat, commits
// a write asynchronously, evicts the clean entry, and stats again: the
// miss-load that follows installs its result as the region's primary
// copy, so serving the hour-long dentry TTL here would shadow the
// committed write until the next eviction (the bug the chaos harness
// first surfaced as a lost write under eviction pressure).
func TestMissLoadBypassesStaleDentry(t *testing.T) {
	e := newEnv(t, 1, nil)
	c := e.client(t, "node0")

	at, err := c.Create(0, "/w/fresh", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if at, err = e.region.Drain(at); err != nil {
		t.Fatal(err)
	}
	// Evict and miss-load: the client's DFS backend now caches a
	// size-0 dentry for the path (TTL one hour of virtual time).
	if at, err = e.region.evictSubtree(c, at, "/w/fresh", false); err != nil {
		t.Fatal(err)
	}
	st, done, err := c.Stat(at, "/w/fresh")
	at = done
	if err != nil || st.Size != 0 {
		t.Fatalf("stat after first eviction = %+v, %v", st, err)
	}

	// Commit a write behind the dentry's back, then force the next
	// stat through the miss-load path again.
	if at, err = c.WriteAt(at, "/w/fresh", 0, []byte("eight by")); err != nil {
		t.Fatal(err)
	}
	if at, err = e.region.Drain(at); err != nil {
		t.Fatal(err)
	}
	if at, err = e.region.evictSubtree(c, at, "/w/fresh", false); err != nil {
		t.Fatal(err)
	}
	if _, ok := findEntry(t, e.region, "/w/fresh"); ok {
		t.Fatal("clean entry still cached; eviction did not run")
	}

	st, _, err = c.Stat(at, "/w/fresh")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != int64(len("eight by")) {
		t.Fatalf("miss-load served a stale dentry: size = %d, want %d", st.Size, len("eight by"))
	}
}

// TestRecreateAfterEvictionAdopts: re-creating a path whose clean cache
// entry was evicted hits ErrExist at commit time (the DFS object never
// went away). Without the create-after-rm disambiguation the commit
// assumed a doomed old incarnation and resubmitted until the budget
// dropped the op; it must instead adopt the existing object and
// converge with nothing dropped.
func TestRecreateAfterEvictionAdopts(t *testing.T) {
	e := newEnv(t, 1, nil)
	c := e.client(t, "node0")

	at, err := c.Create(0, "/w/again", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if at, err = c.Mkdir(at, "/w/againdir", 0o755); err != nil {
		t.Fatal(err)
	}
	if at, err = e.region.Drain(at); err != nil {
		t.Fatal(err)
	}
	if at, err = e.region.evictSubtree(c, at, "/w/again", false); err != nil {
		t.Fatal(err)
	}
	if at, err = e.region.evictSubtree(c, at, "/w/againdir", true); err != nil {
		t.Fatal(err)
	}

	// Both re-creations are accepted by the cache (the entries are
	// gone) and must commit by adoption, not exhaust the budget.
	if at, err = c.Create(at, "/w/again", 0o600); err != nil {
		t.Fatal(err)
	}
	if at, err = c.Mkdir(at, "/w/againdir", 0o700); err != nil {
		t.Fatal(err)
	}
	if at, err = e.region.Drain(at); err != nil {
		t.Fatal(err)
	}

	if s := e.region.Stats(); s.Dropped != 0 {
		t.Fatalf("re-creation was dropped instead of adopted: %+v", s)
	}
	for _, p := range []string{"/w/again", "/w/againdir"} {
		ent, ok := findEntry(t, e.region, p)
		if !ok || ent.Dirty {
			t.Fatalf("%s after drain = %+v ok=%v, want clean resident entry", p, ent, ok)
		}
		if !e.dfs.MDS.Tree().Exists(p) {
			t.Fatalf("%s missing from DFS after adoption", p)
		}
	}
}
