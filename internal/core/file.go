package core

import (
	"errors"

	"pacon/internal/fsapi"
	"pacon/internal/namespace"
	"pacon/internal/vclock"
)

// Files in Pacon are small or large (§III.D.2). Small files (data ≤
// SmallFileThreshold) keep their bytes inline with the metadata in the
// distributed cache, so one KV request returns both; their backup copy
// is written to the DFS asynchronously. A file that outgrows the
// threshold is materialized on the DFS immediately and all further data
// operations are redirected there.

// spliceInline writes data into buf at off, growing it as needed.
func spliceInline(buf []byte, off int64, data []byte) []byte {
	need := int(off) + len(data)
	if len(buf) < need {
		grown := make([]byte, need)
		copy(grown, buf)
		buf = grown
	} else {
		buf = append([]byte(nil), buf...)
	}
	copy(buf[off:], data)
	return buf
}

// Write writes data at off. Small files update inline content in the
// cache (CAS retry loop) with an asynchronous backup write; crossing the
// threshold materializes the file on the DFS synchronously.
func (c *Client) WriteAt(at vclock.Time, p string, off int64, data []byte) (vclock.Time, error) {
	defer c.opEnd(c.opStart())
	p = namespace.Clean(p)
	at = c.overhead(at)
	r := c.region
	if !c.inWorkspace(p) {
		if _, merged := r.mergedFor(p); merged {
			return at, fsapi.WrapPath("write", p, fsapi.ErrReadOnly)
		}
		return c.backend.WriteAt(at, p, off, data)
	}
	at, err := c.checkPerm(at, p, fsapi.WantWrite)
	if err != nil {
		return at, err
	}

	for {
		item, done, err := c.cache.Get(at, p)
		at = done
		if err != nil {
			if !errors.Is(err, fsapi.ErrNotExist) {
				return at, err
			}
			// Not cached: pull the metadata in and retry.
			gen := r.invalGen.Load()
			st, done, berr := c.statFresh(at, p)
			at = done
			if berr != nil {
				return at, fsapi.WrapPath("write", p, berr)
			}
			v := cacheVal{stat: st, large: st.Size > int64(r.cfg.SmallFileThreshold)}
			at = c.cacheLoadVal(at, p, v, gen)
			continue
		}
		v, derr := decodeCacheVal(item.Value)
		if derr != nil {
			return at, derr
		}
		if v.removed {
			return at, fsapi.WrapPath("write", p, fsapi.ErrNotExist)
		}
		if v.stat.IsDir() {
			return at, fsapi.WrapPath("write", p, fsapi.ErrIsDir)
		}

		if v.large {
			done, werr := c.backend.WriteAt(at, p, off, data)
			at = done
			if werr != nil {
				return at, werr
			}
			// Keep the cached size fresh (clean: the DFS applied it).
			if end := off + int64(len(data)); end > v.stat.Size {
				v.stat.Size = end
				if _, done, cerr := c.cache.CAS(at, p, v.encode(), 0, item.CAS); cerr == nil {
					at = done
				}
			}
			return at, nil
		}

		if int64(len(v.stat.Inline)) < v.stat.Size {
			// Loaded from the DFS without its data (cache-miss path, e.g.
			// after the clean entry was evicted): pull the bytes in before
			// splicing, or the write would zero-fill everything outside
			// its own range and commit that back over the real content.
			buf, done, rerr := c.backend.ReadAt(at, p, 0, int(v.stat.Size))
			at = done
			if rerr != nil {
				return at, fsapi.WrapPath("write", p, rerr)
			}
			v.stat.Inline = buf
		}

		if int(off)+len(data) <= r.cfg.SmallFileThreshold {
			// Stay inline: CAS the new content, enqueue the backup write.
			seq := r.seq.Add(1)
			v.stat.Inline = spliceInline(v.stat.Inline, off, data)
			if sz := int64(len(v.stat.Inline)); sz > v.stat.Size {
				v.stat.Size = sz
			}
			v.dirty = true
			v.seq = seq
			_, done, cerr := c.cache.CAS(at, p, v.encode(), 0, item.CAS)
			at = done
			if cerr == nil {
				return c.pushOp(at, OpSetStat, p, v.stat, seq)
			}
			if errors.Is(cerr, fsapi.ErrStale) || errors.Is(cerr, fsapi.ErrNotExist) {
				continue // concurrent writer won; retry (§III.D.3)
			}
			return at, cerr
		}

		// Crossing the threshold: materialize on the DFS now.
		return c.growToLarge(at, p, item.CAS, v, off, data)
	}
}

// growToLarge materializes a small file on the DFS (create if the async
// create has not landed yet, flush inline bytes, write the new data) and
// flips the cache entry to large.
func (c *Client) growToLarge(at vclock.Time, p string, cas uint64, v cacheVal, off int64, data []byte) (vclock.Time, error) {
	st := v.stat
	st.Inline = nil
	done, err := c.backend.CreateWithStat(at, p, st)
	at = done
	if err != nil && !errors.Is(err, fsapi.ErrExist) {
		return at, fsapi.WrapPath("write", p, err)
	}
	if len(v.stat.Inline) > 0 {
		if done, err = c.backend.WriteAt(at, p, 0, v.stat.Inline); err != nil {
			return done, err
		}
		at = done
	}
	if done, err = c.backend.WriteAt(at, p, off, data); err != nil {
		return done, err
	}
	at = done

	v.large = true
	v.dirty = false // the DFS now holds the authoritative copy
	v.stat.Inline = nil
	if end := off + int64(len(data)); end > v.stat.Size {
		v.stat.Size = end
	}
	// Flip the cache entry to large. A CAS conflict can come from a
	// concurrent writer or from the commit process clearing the dirty
	// bit; retry from a fresh read until the entry reflects the
	// transition (§III.D.3).
	for {
		_, done, cerr := c.cache.CAS(at, p, v.encode(), 0, cas)
		at = done
		if cerr == nil || errors.Is(cerr, fsapi.ErrNotExist) {
			return at, nil
		}
		if !errors.Is(cerr, fsapi.ErrStale) {
			return at, cerr
		}
		item, done, gerr := c.cache.Get(at, p)
		at = done
		if gerr != nil {
			return at, nil // entry vanished (evicted/removed); the DFS holds truth
		}
		cur, derr := decodeCacheVal(item.Value)
		if derr != nil {
			return at, derr
		}
		if cur.large && cur.stat.Size >= v.stat.Size {
			return at, nil // another writer finished the transition
		}
		cur.large = true
		cur.dirty = false
		cur.stat.Inline = nil
		if cur.stat.Size < v.stat.Size {
			cur.stat.Size = v.stat.Size
		}
		v = cur
		cas = item.CAS
	}
}

// Read returns up to n bytes at off. Small files are served from the
// inline copy in one cache request ("applications can get both metadata
// and data in a single KV request", §III.D.2); large files read from the
// DFS.
func (c *Client) ReadAt(at vclock.Time, p string, off int64, n int) ([]byte, vclock.Time, error) {
	defer c.opEnd(c.opStart())
	p = namespace.Clean(p)
	at = c.overhead(at)
	r := c.region
	if !c.inWorkspace(p) {
		if m, ok := r.mergedFor(p); ok {
			return c.readMerged(at, m, p, off, n)
		}
		return c.backend.ReadAt(at, p, off, n)
	}
	at, err := c.checkPerm(at, p, fsapi.WantRead)
	if err != nil {
		return nil, at, err
	}
	st, at, err := c.Stat(at, p)
	if err != nil {
		return nil, at, err
	}
	if st.IsDir() {
		return nil, at, fsapi.WrapPath("read", p, fsapi.ErrIsDir)
	}
	if st.Size <= int64(r.cfg.SmallFileThreshold) {
		if int64(len(st.Inline)) < st.Size {
			// Loaded from the DFS without its data (cache-miss path):
			// fetch the bytes once.
			return c.backend.ReadAt(at, p, off, n)
		}
		return sliceInline(st.Inline, off, n), at, nil
	}
	return c.backend.ReadAt(at, p, off, n)
}

func (c *Client) readMerged(at vclock.Time, m remoteRegion, p string, off int64, n int) ([]byte, vclock.Time, error) {
	st, done, err := c.statMerged(at, m, p)
	at = done
	if err != nil {
		return nil, at, err
	}
	if int64(len(st.Inline)) >= st.Size {
		return sliceInline(st.Inline, off, n), at, nil
	}
	return c.backend.ReadAt(at, p, off, n)
}

func sliceInline(inline []byte, off int64, n int) []byte {
	if off >= int64(len(inline)) {
		return nil
	}
	end := off + int64(n)
	if end > int64(len(inline)) {
		end = int64(len(inline))
	}
	out := make([]byte, end-off)
	copy(out, inline[off:end])
	return out
}

// Fsync makes a file's data durable now. For a small file whose create
// has not committed yet, the data is spilled locally with direct I/O and
// written back to its original position after the create commits
// (§III.D.2); a clean or large file needs nothing — its data is already
// on the DFS or will be carried by the pending backup write.
func (c *Client) Fsync(at vclock.Time, p string) (vclock.Time, error) {
	defer c.opEnd(c.opStart())
	p = namespace.Clean(p)
	at = c.overhead(at)
	r := c.region
	if !c.inWorkspace(p) {
		return at, nil // large/outside files write through already
	}
	item, done, err := c.cache.Get(at, p)
	at = done
	if err != nil {
		if errors.Is(err, fsapi.ErrNotExist) {
			return at, fsapi.WrapPath("fsync", p, fsapi.ErrNotExist)
		}
		return at, err
	}
	v, derr := decodeCacheVal(item.Value)
	if derr != nil {
		return at, derr
	}
	if v.removed {
		return at, fsapi.WrapPath("fsync", p, fsapi.ErrNotExist)
	}
	if v.dirty && !v.large && len(v.stat.Inline) > 0 {
		r.spillPut(p, v.stat.Inline)
		// Direct I/O to the local cache file: charge one local device op.
		at = at.Add(r.cfg.Model.DataChunkCost + vclock.Duration(int64(r.cfg.Model.DataPerKB)*int64(len(v.stat.Inline))/1024))
	}
	return at, nil
}

// cacheLoadVal inserts an arbitrary clean value (used when loading
// existing files with their largeness flag). gen is the region's
// invalidation generation read before the DFS read that produced v: if
// it moved by the time the insert lands, a dependent operation (rmdir,
// rename) invalidated the cache concurrently and v may describe a
// deleted object — revoke exactly our insert (CAS-guarded, so a
// concurrent writer's newer value survives) instead of resurrecting it.
func (c *Client) cacheLoadVal(at vclock.Time, p string, v cacheVal, gen uint64) vclock.Time {
	cas, done, err := c.cache.Add(at, p, v.encode(), 0)
	at = done
	if errors.Is(err, fsapi.ErrOutOfSpace) {
		if at, err = c.region.evictRound(c, at); err == nil {
			cas, at, err = c.cache.Add(at, p, v.encode(), 0)
		}
	}
	if err == nil && c.region.invalGen.Load() != gen {
		if done, derr := c.cache.DeleteCAS(at, p, cas); derr == nil ||
			errors.Is(derr, fsapi.ErrNotExist) || errors.Is(derr, fsapi.ErrStale) {
			at = done
		}
	}
	return at
}
