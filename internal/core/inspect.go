package core

import (
	"fmt"
	"sort"

	"pacon/internal/fsapi"
	"pacon/internal/memcache"
)

// CacheEntry is one decoded distributed-cache entry, exposed for
// white-box verification: the chaos harness oracle and regression tests
// assert invariants over the full cache image (no dirty entries after a
// drain, every clean entry backed on the DFS, ...).
type CacheEntry struct {
	Path    string
	Dirty   bool
	Removed bool
	Large   bool
	Seq     uint64
	Stat    fsapi.Stat
}

// DumpCache snapshots and decodes every entry across the region's cache
// servers, sorted by path. Verification-only: it reads the servers
// directly and charges no virtual time. Concurrent mutation yields a
// per-shard-consistent (not globally atomic) snapshot — quiesce the
// region (Drain) before asserting global invariants.
func (r *Region) DumpCache() ([]CacheEntry, error) {
	var out []CacheEntry
	var derr error
	for _, s := range r.servers {
		s.ForEach(func(key string, item memcache.Item) {
			v, err := decodeCacheVal(item.Value)
			if err != nil {
				derr = fmt.Errorf("cache entry %s: %w", key, err)
				return
			}
			out = append(out, CacheEntry{
				Path:    key,
				Dirty:   v.dirty,
				Removed: v.removed,
				Large:   v.large,
				Seq:     v.seq,
				Stat:    v.stat,
			})
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, derr
}

// SetDeleteHook installs (or clears, with nil) a hook that runs between
// the read and the CAS-guarded delete of every cleanup loop (eviction,
// commit bookkeeping, discard rule). Test instrumentation: it opens the
// read/delete race window deterministically so regression tests can
// interleave a conflicting write.
func (r *Region) SetDeleteHook(h func(path string)) {
	if h == nil {
		r.deleteHook.Store(nil)
		return
	}
	r.deleteHook.Store(&h)
}
