package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"pacon/internal/fsapi"
	"pacon/internal/vclock"
)

func TestSmallFileInlineWriteRead(t *testing.T) {
	e := newEnv(t, 2, nil)
	c := e.client(t, "node0")
	at, err := c.Create(0, "/w/small", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello inline world")
	if at, err = c.WriteAt(at, "/w/small", 0, payload); err != nil {
		t.Fatal(err)
	}
	// Served from the inline copy — no data-server traffic at all.
	got, at, err := c.ReadAt(at, "/w/small", 0, 100)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read = %q, %v", got, err)
	}
	for i, ds := range e.dfs.Data {
		if ds.ChunkCount() != 0 {
			t.Fatalf("data server %d touched for an inline file", i)
		}
	}
	// Another node's client sees the same bytes (shared cache).
	c2 := e.client(t, "node1")
	got, at, err = c2.ReadAt(at, "/w/small", 6, 6)
	if err != nil || string(got) != "inline" {
		t.Fatalf("cross-node inline read = %q, %v", got, err)
	}
	// After drain the backup copy (real file bytes) exists on the DFS.
	at, err = e.region.Drain(at)
	if err != nil {
		t.Fatal(err)
	}
	direct := e.dfs.NewClient("verify", appCred, 0, 0)
	data, _, err := direct.ReadAt(at, "/w/small", 0, 100)
	if err != nil || !bytes.Equal(data, payload) {
		t.Fatalf("DFS backup copy = %q, %v", data, err)
	}
}

func TestSmallFilePartialOverwrite(t *testing.T) {
	e := newEnv(t, 1, nil)
	c := e.client(t, "node0")
	at, _ := c.Create(0, "/w/f", 0o644)
	at, _ = c.WriteAt(at, "/w/f", 0, []byte("aaaaaaaaaa"))
	at, err := c.WriteAt(at, "/w/f", 4, []byte("BB"))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c.ReadAt(at, "/w/f", 0, 10)
	if err != nil || string(got) != "aaaaBBaaaa" {
		t.Fatalf("read = %q, %v", got, err)
	}
}

func TestLargeFileTransitionAndRedirect(t *testing.T) {
	e := newEnv(t, 1, nil)
	c := e.client(t, "node0")
	at, _ := c.Create(0, "/w/big", 0o644)
	// Start small...
	at, _ = c.WriteAt(at, "/w/big", 0, bytes.Repeat([]byte("s"), 1000))
	// ...then cross the 4 KiB threshold: the file materializes on the
	// DFS synchronously (§III.D.2).
	big := bytes.Repeat([]byte("L"), 8000)
	at, err := c.WriteAt(at, "/w/big", 1000, big)
	if err != nil {
		t.Fatal(err)
	}
	chunks := 0
	for _, ds := range e.dfs.Data {
		chunks += ds.ChunkCount()
	}
	if chunks == 0 {
		t.Fatal("large transition did not write to the data servers")
	}
	// Reads redirect to the DFS and see both the old inline prefix and
	// the new bytes.
	got, at, err := c.ReadAt(at, "/w/big", 0, 9000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9000 || got[0] != 's' || got[999] != 's' || got[1000] != 'L' || got[8999] != 'L' {
		t.Fatalf("read-back shape wrong: len=%d", len(got))
	}
	st, at, err := c.Stat(at, "/w/big")
	if err != nil || st.Size != 9000 {
		t.Fatalf("size = %d, %v", st.Size, err)
	}
	// Appending more goes straight through.
	if at, err = c.WriteAt(at, "/w/big", 9000, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	st, _, _ = c.Stat(at, "/w/big")
	if st.Size != 9004 {
		t.Fatalf("size after append = %d", st.Size)
	}
	if _, err := e.region.Drain(at); err != nil {
		t.Fatal(err)
	}
	if e.region.Stats().Dropped != 0 {
		t.Fatalf("drops: %+v", e.region.Stats())
	}
}

func TestFsyncSpillAndWriteback(t *testing.T) {
	e := newEnv(t, 1, nil)
	c := e.client(t, "node0")
	at, _ := c.Create(0, "/w/f", 0o644)
	payload := []byte("must be durable")
	at, _ = c.WriteAt(at, "/w/f", 0, payload)
	at, err := c.Fsync(at, "/w/f")
	if err != nil {
		t.Fatal(err)
	}
	if e.region.SpillCount() != 1 {
		t.Fatalf("spill count = %d", e.region.SpillCount())
	}
	at, err = e.region.Drain(at)
	if err != nil {
		t.Fatal(err)
	}
	if e.region.SpillCount() != 0 {
		t.Fatal("spill not written back after create committed")
	}
	direct := e.dfs.NewClient("verify", appCred, 0, 0)
	data, _, err := direct.ReadAt(at, "/w/f", 0, 100)
	if err != nil || !bytes.Equal(data, payload) {
		t.Fatalf("written-back data = %q, %v", data, err)
	}
	// Fsync on a missing file errors.
	if _, err := c.Fsync(at, "/w/ghost"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("fsync missing = %v", err)
	}
}

func TestWriteToRemovedOrDirFails(t *testing.T) {
	e := newEnv(t, 1, nil)
	c := e.client(t, "node0")
	at, _ := c.Mkdir(0, "/w/d", 0o755)
	if _, err := c.WriteAt(at, "/w/d", 0, []byte("x")); !errors.Is(err, fsapi.ErrIsDir) {
		t.Fatalf("write to dir = %v", err)
	}
	at, _ = c.Create(at, "/w/f", 0o644)
	at, _ = c.Remove(at, "/w/f")
	if _, err := c.WriteAt(at, "/w/f", 0, []byte("x")); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("write to removed = %v", err)
	}
	if _, _, err := c.ReadAt(at, "/w/f", 0, 1); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("read removed = %v", err)
	}
}

func TestConcurrentCASWritersConverge(t *testing.T) {
	e := newEnv(t, 4, nil)
	setup := e.client(t, "node0")
	at, _ := setup.Create(0, "/w/shared", 0o666)
	_ = at

	// 8 writers update disjoint 8-byte slots of the same inline file
	// concurrently; CAS retries (§III.D.3) must not lose any slot.
	const writers = 8
	var wg sync.WaitGroup
	for wid := 0; wid < writers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			c := e.client(t, fmt.Sprintf("node%d", wid%4))
			payload := bytes.Repeat([]byte{byte('A' + wid)}, 8)
			if _, err := c.WriteAt(0, "/w/shared", int64(wid*8), payload); err != nil {
				t.Error(err)
			}
		}(wid)
	}
	wg.Wait()

	got, _, err := setup.ReadAt(vclock.Time(1<<40), "/w/shared", 0, writers*8)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != writers*8 {
		t.Fatalf("final size = %d", len(got))
	}
	for wid := 0; wid < writers; wid++ {
		for j := 0; j < 8; j++ {
			if got[wid*8+j] != byte('A'+wid) {
				t.Fatalf("slot %d corrupted: %q", wid, got)
			}
		}
	}
}

func TestConcurrentCreatorsExactlyOneWins(t *testing.T) {
	e := newEnv(t, 4, nil)
	const racers = 12
	var wins, exists int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := e.client(t, fmt.Sprintf("node%d", i%4))
			_, err := c.Create(0, "/w/contested", 0o644)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				wins++
			case errors.Is(err, fsapi.ErrExist):
				exists++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if wins != 1 || exists != racers-1 {
		t.Fatalf("wins=%d exists=%d", wins, exists)
	}
}

func TestEvictionRoundRobinKeepsDirtyEntries(t *testing.T) {
	e := newEnv(t, 1, func(cfg *RegionConfig) {
		cfg.CacheCapacityBytes = 16 << 10
	})
	c := e.client(t, "node0")

	// Fill with committed entries first.
	at := vclock.Time(0)
	var err error
	for i := 0; i < 120; i++ {
		at, err = c.Create(at, fmt.Sprintf("/w/f%03d", i), 0o644)
		if err != nil && !errors.Is(err, fsapi.ErrOutOfSpace) {
			t.Fatal(err)
		}
		// Drain frequently so entries become clean (evictable).
		if i%20 == 19 {
			if at, err = e.region.Drain(at); err != nil {
				t.Fatal(err)
			}
		}
	}
	at, err = e.region.Drain(at)
	if err != nil {
		t.Fatal(err)
	}
	// Keep creating: capacity pressure must trigger region eviction
	// rather than failing the workload.
	for i := 0; i < 200; i++ {
		at, err = c.Create(at, fmt.Sprintf("/w/g%03d", i), 0o644)
		if err != nil {
			t.Fatalf("create %d under pressure: %v", i, err)
		}
		if i%20 == 19 {
			if at, err = e.region.Drain(at); err != nil {
				t.Fatal(err)
			}
		}
	}
	if e.region.Stats().Evictions == 0 {
		t.Fatal("no eviction rounds ran")
	}
	// Evicted entries reload from the DFS on demand.
	if _, _, err := c.Stat(at, "/w/f000"); err != nil {
		t.Fatalf("evicted entry unreachable: %v", err)
	}
}

func TestCheckpointRestoreAfterNodeFailure(t *testing.T) {
	e := newEnv(t, 2, nil)
	c := e.client(t, "node0")

	at, _ := c.Mkdir(0, "/w/keep", 0o755)
	at, _ = c.Create(at, "/w/keep/a", 0o644)
	at, _ = c.WriteAt(at, "/w/keep/a", 0, []byte("checkpointed"))
	seq, at, err := e.region.Checkpoint(c, at)
	if err != nil {
		t.Fatal(err)
	}

	// Post-checkpoint activity that will be lost/rolled back.
	at, _ = c.Create(at, "/w/keep/b", 0o644)
	at, _ = c.Remove(at, "/w/keep/a")

	// node0 crashes: uncommitted ops in its queue vanish.
	e.region.SimulateNodeFailure("node0")

	// Roll back to the checkpoint from a surviving node.
	c2 := e.client(t, "node1")
	at, err = e.region.Restore(c2, at, seq)
	if err != nil {
		t.Fatal(err)
	}

	// The checkpointed state is back.
	st, at, err := c2.Stat(at, "/w/keep/a")
	if err != nil || st.Type != fsapi.TypeFile {
		t.Fatalf("restored file: %+v, %v", st, err)
	}
	if _, _, err := c2.Stat(at, "/w/keep/b"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("post-checkpoint file resurrected: %v", err)
	}
	// Data re-attaches by path.
	got, _, err := c2.ReadAt(at, "/w/keep/a", 0, 100)
	if err != nil || string(got) != "checkpointed" {
		t.Fatalf("restored data = %q, %v", got, err)
	}
}

func TestCheckpointIsOptionalDrainAlone(t *testing.T) {
	// Without checkpoints the DFS still holds every *committed*
	// operation (§III.G: "even without it, the DFS already guarantees
	// the crash consistency of committed operations").
	e := newEnv(t, 1, nil)
	c := e.client(t, "node0")
	at, _ := c.Create(0, "/w/committed", 0o644)
	at, err := e.region.Drain(at)
	if err != nil {
		t.Fatal(err)
	}
	at2, _ := c.Create(at, "/w/uncommitted", 0o644)
	_ = at2
	lost := e.region.SimulateNodeFailure("node0")
	if lost != 1 {
		t.Fatalf("lost ops = %d, want 1", lost)
	}
	if !e.dfs.MDS.Tree().Exists("/w/committed") {
		t.Fatal("committed op lost")
	}
	if e.dfs.MDS.Tree().Exists("/w/uncommitted") {
		t.Fatal("uncommitted op appeared on DFS after failure")
	}
}

// TestTableIConformance pins the paper's Table I: for each main metadata
// operation, the cache operation performed, the communication type with
// the DFS (async vs sync), and the commit type.
func TestTableIConformance(t *testing.T) {
	e := newEnv(t, 1, nil)
	c := e.client(t, "node0")
	mdsWrites := func() int64 { return e.dfs.MDS.Stats().Writes }

	// create: cache put, async, independent — returns with the op still
	// queued, before any DFS write.
	w0 := mdsWrites()
	at, err := c.Create(0, "/w/t-create", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if e.region.QueueDepth() == 0 && mdsWrites() == w0 {
		t.Fatal("create: nothing queued and nothing written — lost?")
	}

	// mkdir: same contract.
	if at, err = c.Mkdir(at, "/w/t-dir", 0o755); err != nil {
		t.Fatal(err)
	}

	// rm: cache update (mark) & delete-after-commit, async.
	if at, err = c.Remove(at, "/w/t-create"); err != nil {
		t.Fatal(err)
	}
	// Async: the DFS may not know yet, but the region does.
	if _, _, err := c.Stat(at, "/w/t-create"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatal("rm not reflected in cache")
	}

	// getattr: cache get; N/A comm on hit, sync on miss.
	lk0 := e.dfs.MDS.Stats().Lookups
	if _, _, err := c.Stat(at, "/w/t-dir"); err != nil {
		t.Fatal(err)
	}
	if e.dfs.MDS.Stats().Lookups != lk0 {
		t.Fatal("getattr hit consulted the DFS")
	}

	// rmdir: sync + barrier — on return the DFS is already updated and
	// the queues drained.
	if at, err = c.Rmdir(at, "/w/t-dir"); err != nil {
		t.Fatal(err)
	}
	if e.dfs.MDS.Tree().Exists("/w/t-dir") {
		t.Fatal("rmdir returned before DFS applied it (must be sync)")
	}
	if e.region.QueueDepth() != 0 {
		t.Fatal("rmdir returned with queued ops (barrier violated)")
	}

	// readdir: sync + barrier — listing reflects every prior async op.
	if at, err = c.Create(at, "/w/t-x", 0o644); err != nil {
		t.Fatal(err)
	}
	ents, _, err := c.Readdir(at, "/w")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ent := range ents {
		if ent.Name == "t-x" {
			found = true
		}
	}
	if !found {
		t.Fatal("readdir missed a just-created entry (barrier violated)")
	}
	if e.region.QueueDepth() != 0 {
		t.Fatal("readdir returned with queued ops")
	}
}
