package core

import (
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pacon/internal/fsapi"
	"pacon/internal/obs"
	"pacon/internal/vclock"
)

// TestCreateCriticalPath drives one sampled create through the full
// pipeline with server-side tracing wired (bus observer set) and checks
// the assembled cross-node critical path: the kept span's segment
// attribution must sum to the span total (the acceptance bound is 5%;
// the charge-every-gap construction makes it exact), and the timeline
// must carry events from more than one node — the client node plus the
// cache servers and/or the MDS the commit touched.
func TestCreateCriticalPath(t *testing.T) {
	o := obs.New()
	e := newEnvDeps(t, 2, func(cfg *RegionConfig) {
		cfg.TraceSampleN = 1 // sample every op: the test needs this span
	}, func(d *Deps) { d.Obs = o })
	e.bus.SetObserver(o)
	c := e.client(t, "node0")

	at, err := c.Create(0, "/w/traced", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.region.Drain(at); err != nil {
		t.Fatal(err)
	}

	var cp obs.CritPath
	found := false
	for _, kept := range o.RecentSpans(0) {
		if kept.Op == "create" && kept.Path == "/w/traced" {
			cp, found = kept, true
			break
		}
	}
	if !found {
		t.Fatalf("no kept span for the create; kept=%+v", o.RecentSpans(0))
	}
	if cp.Kept != obs.KeptSampled {
		t.Fatalf("span kept=%q, want %q", cp.Kept, obs.KeptSampled)
	}
	if len(cp.Events) < 3 {
		t.Fatalf("span has %d events, want the full lifecycle: %+v", len(cp.Events), cp.Events)
	}

	// Segment attribution sums to the total within 5% (exactly, here).
	var sum time.Duration
	for _, s := range cp.Segments {
		sum += s.D
	}
	if cp.Total <= 0 {
		t.Fatalf("span total = %v, want > 0", cp.Total)
	}
	diff := sum - cp.Total
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.05*float64(cp.Total) {
		t.Fatalf("segments sum %v vs total %v: off by more than 5%%", sum, cp.Total)
	}

	// Cross-node evidence: the client's ring plus at least one service
	// address (cache server or MDS) contributed events to the span.
	nodes := map[string]bool{}
	for _, ev := range cp.Events {
		nodes[ev.Node] = true
	}
	if len(nodes) < 2 {
		t.Fatalf("span events all from one node %v; want cross-node timeline: %+v", nodes, cp.Events)
	}
	if !nodes["node0"] {
		t.Fatalf("client node's events missing from span: %v", nodes)
	}
	server := false
	for n := range nodes {
		if strings.Contains(n, "/") {
			server = true
		}
	}
	if !server {
		t.Fatalf("no server-side (cache/MDS) events in span: %v", nodes)
	}

	// The lifecycle segments the commit pipeline charges must be
	// present: queue residency and the DFS apply.
	segs := map[string]time.Duration{}
	for _, s := range cp.Segments {
		segs[s.Name] = s.D
	}
	if _, ok := segs[obs.SegQueueWait]; !ok {
		t.Fatalf("no queue_wait attribution: %+v", cp.Segments)
	}
	if _, ok := segs[obs.SegDFSApply]; !ok {
		t.Fatalf("no dfs_apply attribution: %+v", cp.Segments)
	}
}

// failCreateBackend fails every DFS create while armed, with the
// resubmittable error the commit process parks on.
type failCreateBackend struct {
	Backend
	armed atomic.Bool
}

func (f *failCreateBackend) CreateWithStat(at vclock.Time, p string, st fsapi.Stat) (vclock.Time, error) {
	if f.armed.Load() {
		return at, fsapi.ErrNotExist
	}
	return f.Backend.CreateWithStat(at, p, st)
}

func (f *failCreateBackend) ApplyBatch(at vclock.Time, ops []fsapi.BatchOp) ([]error, vclock.Time, error) {
	if f.armed.Load() {
		errs := make([]error, len(ops))
		for i := range errs {
			errs[i] = fsapi.ErrNotExist
		}
		return errs, at, nil
	}
	return f.Backend.(interface {
		ApplyBatch(vclock.Time, []fsapi.BatchOp) ([]error, vclock.Time, error)
	}).ApplyBatch(at, ops)
}

// SetTrace/ClearTrace forward to the wrapped DFS client so the span tag
// survives the wrapper (interface embedding does not promote them).
func (f *failCreateBackend) SetTrace(span uint64) {
	if tc, ok := f.Backend.(interface{ SetTrace(uint64) }); ok {
		tc.SetTrace(span)
	}
}

func (f *failCreateBackend) ClearTrace() {
	if tc, ok := f.Backend.(interface{ ClearTrace() }); ok {
		tc.ClearTrace()
	}
}

// TestStalledHealthFlightDump forces a region into the stalled state (a
// DFS backend that fails every create keeps the op unacked while
// wall-clock staleness blows a 1ns threshold) and checks the worsening
// health transition fires the flight recorder, with the stuck op's
// cross-node span evidence inside the dump.
func TestStalledHealthFlightDump(t *testing.T) {
	o := obs.New()
	var (
		backendsMu sync.Mutex
		backends   []*failCreateBackend
	)
	e := newEnvDeps(t, 1, func(cfg *RegionConfig) {
		cfg.TraceSampleN = 1
	}, func(d *Deps) {
		d.Obs = o
		inner := d.NewBackend
		d.NewBackend = func(node string) Backend {
			// Called from region init, commit goroutines and clients
			// alike — the bookkeeping needs its own lock.
			fb := &failCreateBackend{Backend: inner(node)}
			fb.armed.Store(true)
			backendsMu.Lock()
			backends = append(backends, fb)
			backendsMu.Unlock()
			return fb
		}
	})
	e.bus.SetObserver(o)
	c := e.client(t, "node0")

	at, err := c.Create(0, "/w/stall", 0o644)
	if err != nil {
		t.Fatal(err)
	}

	// The op is enqueued and unackable; with a 1ns stalled threshold the
	// first health evaluation that sees positive staleness reports
	// stalled, and the ok→stalled transition cuts the dump.
	thr := HealthThresholds{DegradedNS: 1, StalledNS: 1}
	deadline := time.Now().Add(5 * time.Second)
	var h Health
	for {
		h = e.region.Health(thr)
		if h.Status == HealthStalled && o.LastFlight() != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("region never reported stalled with a flight dump: %+v", h)
		}
		time.Sleep(time.Millisecond)
	}

	var dump obs.FlightDump
	if err := json.Unmarshal(o.LastFlight(), &dump); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v", err)
	}
	if dump.Reason != "health_stalled" {
		t.Fatalf("dump reason = %q, want health_stalled", dump.Reason)
	}

	// The triggering op's span must be present with cross-node events:
	// the client node's stage events plus the cache server's handler
	// events recorded over the bus.
	var span uint64
	for _, ev := range dump.Events {
		if ev.Path == "/w/stall" {
			span = ev.Span
			break
		}
	}
	if span == 0 {
		t.Fatalf("stuck op's events missing from dump (%d events)", len(dump.Events))
	}
	nodes := map[string]bool{}
	for _, ev := range dump.Events {
		if ev.Span == span {
			nodes[ev.Node] = true
		}
	}
	if len(nodes) < 2 {
		t.Fatalf("dump span %d has single-node evidence %v, want cross-node", span, nodes)
	}

	// Heal the backend and converge so teardown is clean.
	backendsMu.Lock()
	for _, fb := range backends {
		fb.armed.Store(false)
	}
	backendsMu.Unlock()
	if _, err := e.region.Drain(at); err != nil {
		t.Fatal(err)
	}
}

// TestAuditDivergenceFlight: recording a divergent audit verdict must
// cut a flight dump immediately, without waiting for a health poll.
func TestAuditDivergenceFlight(t *testing.T) {
	o := obs.New()
	e := newEnvDeps(t, 1, nil, func(d *Deps) { d.Obs = o })

	e.region.RecordAudit(AuditVerdict{Sampled: 3, Divergent: 1})
	b := o.LastFlight()
	if b == nil {
		t.Fatal("divergent audit did not trigger the flight recorder")
	}
	var dump obs.FlightDump
	if err := json.Unmarshal(b, &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if dump.Reason != "audit_divergence" {
		t.Fatalf("dump reason = %q, want audit_divergence", dump.Reason)
	}

	// A clean verdict must not fire it (and the rate limiter would
	// suppress a repeat anyway — check via the counter).
	before := o.TraceStats().FlightDumps
	e.region.RecordAudit(AuditVerdict{Sampled: 3, Matched: 3})
	if got := o.TraceStats().FlightDumps; got != before {
		t.Fatalf("clean audit changed flight_dumps %d → %d", before, got)
	}
}
