// Package core implements Pacon (paper §III): consistent regions backed
// by a distributed in-memory metadata cache keyed by full path, batch
// permission management replacing path traversal, an asynchronous commit
// module with independent and barrier commit, inline small files,
// CAS-based concurrent updates, round-robin cache eviction, region
// merging, and checkpoint-based failure recovery.
package core

import (
	"pacon/internal/fsapi"
	"pacon/internal/namespace"
)

// PermEntry is one permission declaration: ownership plus mode bits.
type PermEntry struct {
	Mode fsapi.Mode
	UID  uint32
	GID  uint32
}

// SpecialPerm overrides the normal permission for one path or subtree
// inside the consistent region (paper §III.C: "a list recording
// files/directories with different permission settings").
type SpecialPerm struct {
	// Path is the file or directory the override applies to.
	Path string
	// Subtree extends the override to everything below Path.
	Subtree bool
	Perm    PermEntry
}

// PermSpec is a consistent region's predefined permission information:
// one normal permission covering most of the workspace plus a special
// list. A zero PermSpec falls back to Linux-like defaults — everything
// in the workspace readable/writable/executable by the creating user
// (§III.C).
type PermSpec struct {
	Normal  PermEntry
	Special []SpecialPerm
}

// withDefaults fills a zero spec with the default permissions for cred.
func (s PermSpec) withDefaults(cred fsapi.Cred) PermSpec {
	if s.Normal.Mode == 0 {
		s.Normal = PermEntry{Mode: 0o700, UID: cred.UID, GID: cred.GID}
	}
	return s
}

// lookup returns the effective permission entry for path: the last
// matching special entry wins, otherwise the normal permission. The
// check is a local list match — no path traversal, no RPC (§III.C).
func (s PermSpec) lookup(path string) PermEntry {
	eff := s.Normal
	for _, sp := range s.Special {
		if sp.Path == path || (sp.Subtree && namespace.IsUnder(path, sp.Path)) {
			eff = sp.Perm
		}
	}
	return eff
}

// Check authorizes cred to perform `want` on path. It replaces the
// per-component traversal of a hierarchical check: one normal-permission
// match plus a scan of the (short) special list.
func (s PermSpec) Check(cred fsapi.Cred, path string, want fsapi.AccessWant) error {
	eff := s.lookup(path)
	if eff.Mode.Allows(cred.ClassFor(eff.UID, eff.GID), want) {
		return nil
	}
	return fsapi.WrapPath("permission", path, fsapi.ErrPermission)
}
