package core

import (
	"fmt"

	"pacon/internal/fsapi"
	"pacon/internal/vclock"
	"pacon/internal/wire"
)

// OpKind classifies a commit-queue operation. Create, mkdir and remove
// are the paper's non-dependent type (independent commit); rmdir and
// readdir never enter the queue — they run synchronously under a barrier
// (Table I).
type OpKind uint8

// Commit-queue operation kinds.
const (
	OpCreate OpKind = iota
	OpMkdir
	OpRemove
	// OpSetStat writes back an updated stat (including inline small-file
	// data) to the DFS backup copy.
	OpSetStat
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpCreate:
		return "create"
	case OpMkdir:
		return "mkdir"
	case OpRemove:
		return "rm"
	case OpSetStat:
		return "setstat"
	default:
		return fmt.Sprintf("opkind(%d)", uint8(k))
	}
}

// Op is one operation message in the commit queue (paper §III.D.1: "the
// operation message includes the target path, operation information, and
// timestamp").
type Op struct {
	Kind OpKind
	Path string
	Stat fsapi.Stat
	// Time is the virtual time the client enqueued the op; the commit
	// process never applies it earlier.
	Time vclock.Time
	// Seq orders ops on the same path: the cache value remembers the
	// newest seq so commit processes only clear the dirty flag for the
	// op that made it dirty last.
	Seq uint64
	// Node is the queue the op entered, so terminal accounting can
	// release the node's path-tracker reference (scoped barriers) from
	// whatever goroutine finishes the op.
	Node string
	// AfterRm marks a create/mkdir that replaced a removed marker in the
	// cache (create-after-rm). It disambiguates the commit's ErrExist
	// handling: with the flag the existing DFS object is a doomed old
	// incarnation and the create must wait for the queued remove;
	// without it no remove can be pending — the object on the DFS is the
	// same path re-created after its clean cache entry was evicted, and
	// the create adopts it instead of resubmitting forever.
	AfterRm bool
	// NetAbsent marks a remove produced by the coalescer folding a
	// create+remove pair whose create never reached the DFS. The net
	// effect to commit is absence: ErrNotExist is success (nothing was
	// there), while an existing object is a stale incarnation the
	// original remove would have deleted anyway. Carried to the DFS as
	// fsapi.BatchOp.IfExists.
	NetAbsent bool
	// Span is the observability trace ID allocated at the client call
	// (0 = untraced). The op is an in-process queue message, never wire
	// encoded, so the field rides along for free.
	Span uint64
	// EnqWall is the wall-clock time (unix nanoseconds) the op was
	// enqueued, for queue-residency and commit-lag histograms. Wall, not
	// virtual: the span crosses goroutines whose virtual clocks advance
	// independently. 0 when observability is disabled.
	EnqWall int64
	// Sampled marks a span the obs tail sampler is assembling: its
	// stage events also feed the active-span buffer, the commit side
	// tags its RPCs with the span's trace context, and the terminal
	// finalizes the cross-node timeline. Unsampled ops skip all of that
	// (they can still be tail-kept at the terminal if they turn out
	// slow, failed, or parked).
	Sampled bool
	// Parked records that the op was ever parked in the pending set —
	// the tail sampler always keeps such spans.
	Parked bool
}

// cacheVal is the distributed cache's value layout: the primary copy of
// one object's metadata plus Pacon's consistency bookkeeping flags.
type cacheVal struct {
	// dirty marks metadata whose newest update is not yet committed to
	// the DFS (must not be evicted, §III.F).
	dirty bool
	// removed marks a deleted object awaiting its commit ("removed files
	// are marked and their cached metadata are deleted after the
	// operations are committed", §III.D.1). Reads treat it as absent.
	removed bool
	// large marks a file that outgrew the inline threshold: its data
	// lives on the DFS and only metadata stays cached.
	large bool
	// seq is the newest mutation's sequence number.
	seq  uint64
	stat fsapi.Stat
}

// encodeTo appends v's wire form to e — the pooled-encoder form of
// encode for hot paths. The caller owns e and must not recycle it until
// the cache RPC consuming e.Bytes() has returned; cache clients copy the
// value into their own request frame synchronously, so bracketing the
// call with wire.GetEncoder/PutEncoder is safe.
func (v cacheVal) encodeTo(e *wire.Encoder) {
	var flags byte
	if v.dirty {
		flags |= 1
	}
	if v.removed {
		flags |= 2
	}
	if v.large {
		flags |= 4
	}
	e.Byte(flags)
	e.Uvarint(v.seq)
	fsapi.EncodeStat(e, v.stat)
}

func (v cacheVal) encode() []byte {
	e := wire.NewEncoder(80 + len(v.stat.Inline))
	v.encodeTo(e)
	return e.Bytes()
}

func decodeCacheVal(b []byte) (cacheVal, error) {
	// The decoder is poolable: every field either copies out (String,
	// Blob — DecodeStat's Inline is a Blob) or is a scalar.
	d := wire.GetDecoder(b)
	flags := d.Byte()
	v := cacheVal{
		dirty:   flags&1 != 0,
		removed: flags&2 != 0,
		large:   flags&4 != 0,
		seq:     d.Uvarint(),
	}
	v.stat = fsapi.DecodeStat(d)
	err := d.Finish()
	wire.PutDecoder(d)
	if err != nil {
		return cacheVal{}, err
	}
	return v, nil
}
