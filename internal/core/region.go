package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pacon/internal/dht"
	"pacon/internal/fsapi"
	"pacon/internal/memcache"
	"pacon/internal/mq"
	"pacon/internal/namespace"
	"pacon/internal/obs"
	"pacon/internal/rpc"
	"pacon/internal/vclock"
)

// Backend is the underlying DFS as seen by Pacon: the interfaces the
// commit module uses to apply operations ("system calls and DFS client",
// §III.D.1) and clients use for redirection and cache misses.
// dfs.Client implements it.
type Backend interface {
	Stat(at vclock.Time, p string) (fsapi.Stat, vclock.Time, error)
	Mkdir(at vclock.Time, p string, mode fsapi.Mode) (vclock.Time, error)
	CreateWithStat(at vclock.Time, p string, st fsapi.Stat) (vclock.Time, error)
	SetStat(at vclock.Time, p string, st fsapi.Stat) (vclock.Time, error)
	Remove(at vclock.Time, p string) (vclock.Time, error)
	RmTree(at vclock.Time, p string) ([]string, vclock.Time, error)
	Rename(at vclock.Time, src, dst string) (vclock.Time, error)
	Readdir(at vclock.Time, p string) ([]fsapi.DirEntry, vclock.Time, error)
	WriteAt(at vclock.Time, p string, off int64, data []byte) (vclock.Time, error)
	ReadAt(at vclock.Time, p string, off int64, n int) ([]byte, vclock.Time, error)
	// ApplyBatch applies independent-path mutations in as few RPCs as
	// possible (one per metadata server touched). The error slice has one
	// entry per op; a non-nil batch-level error means the whole batch's
	// disposition is unknown and the caller must fall back to singleton
	// application.
	ApplyBatch(at vclock.Time, ops []fsapi.BatchOp) ([]error, vclock.Time, error)
}

// RegionConfig declares one consistent region (paper §III.B: "the
// parameters of Pacon initialization mainly contain the path of the
// workspace and the network addresses of the nodes where the application
// runs").
type RegionConfig struct {
	// Name identifies the region (cache service addresses derive from it).
	Name string
	// Workspace is the region's subtree root; it must already exist on
	// the DFS (the administrator allocates it, §II.A).
	Workspace string
	// Nodes are the application's nodes; one cache server, one commit
	// queue and one commit process run on each.
	Nodes []string
	// Cred is the application's system user (one per application, §II.A).
	Cred fsapi.Cred
	// Perm is the predefined batch permission information (§III.C); zero
	// value = Linux-like creator-owns defaults.
	Perm PermSpec
	// SmallFileThreshold inlines files at or below this many bytes of
	// data with their metadata (default 4096, §III.D.2).
	SmallFileThreshold int
	// DisableParentCheck skips parent-existence checks on creation, for
	// applications that guarantee correct creation order themselves
	// (§III.C).
	DisableParentCheck bool
	// CacheCapacityBytes bounds each node's cache server; 0 = unlimited.
	// When an insert hits the bound, the region evicts committed
	// metadata round-robin (§III.F) and retries.
	CacheCapacityBytes int64
	// CommitRetryLimit caps resubmissions of a failed commit (default 64).
	CommitRetryLimit int
	// CommitBatchSize caps how many queued operations a commit process
	// dequeues — and ships to the DFS in one apply_batch RPC — at a time
	// (default 8). 1 restores the op-at-a-time commit loop.
	CommitBatchSize int
	// DisableCoalesce turns off dequeue-time merging of same-path
	// operation runs (ablation / debugging switch).
	DisableCoalesce bool
	// ReadBatchSize caps how many paths a batched read (StatMulti,
	// readdir cache warming) packs into one multi-key cache round trip
	// (default 64). 1 restores per-key gets (ablation switch).
	ReadBatchSize int
	// DisableScopedBarrier makes every sync barrier drain all node
	// queues even when the dependent operation only covers a subtree
	// (ablation switch; rename and Drain always use the full barrier).
	DisableScopedBarrier bool
	// ClientSideCommitOps makes the commit module use the legacy
	// client-side Get+CAS / Get+DeleteCAS retry loops instead of the
	// cache servers' conditional operations (ablation switch; the
	// deleteHook test instrumentation also forces the legacy delete
	// loop, which is where its race window lives).
	ClientSideCommitOps bool
	// Model is the latency model.
	Model vclock.LatencyModel

	// SyncCommit is an ablation switch: metadata writes still go through
	// the distributed cache but are applied to the DFS synchronously,
	// i.e. Pacon without its asynchronous commit (the paper's Benefit 3
	// removed). Used by the ablation benchmarks.
	SyncCommit bool
	// HierarchicalPermCheck is an ablation switch: permission checks
	// walk every path component through the distributed cache (one get
	// per level) instead of the batch permission match — the
	// layer-by-layer checking the paper's §III.C replaces.
	HierarchicalPermCheck bool

	// TraceSampleN sets the head-sampling rate of the causal tracer:
	// 1-in-N client ops get a fully assembled cross-node span. 0 keeps
	// the Obs registry's current rate (default 1/64), negative disables
	// sampling entirely (tail-keeping of anomalous spans still works).
	// Only consulted when Deps.Obs is non-nil.
	TraceSampleN int

	// ShardCount records how many MDS shards back the region's DFS
	// (default 1). The shard routing itself lives in the DFS client the
	// Deps.NewBackend factory builds; the region only reports the count
	// through its metrics.
	ShardCount int
}

func (c RegionConfig) withDefaults() RegionConfig {
	if c.SmallFileThreshold <= 0 {
		c.SmallFileThreshold = 4096
	}
	if c.CommitRetryLimit <= 0 {
		c.CommitRetryLimit = 64
	}
	if c.CommitBatchSize == 0 {
		c.CommitBatchSize = 8
	}
	if c.CommitBatchSize < 1 {
		c.CommitBatchSize = 1
	}
	if c.ReadBatchSize == 0 {
		c.ReadBatchSize = 64
	}
	if c.ReadBatchSize < 1 {
		c.ReadBatchSize = 1
	}
	if c.ShardCount < 1 {
		c.ShardCount = 1
	}
	c.Workspace = namespace.Clean(c.Workspace)
	c.Perm = c.Perm.withDefaults(c.Cred)
	return c
}

// Deps wires a region to its environment.
type Deps struct {
	// Bus registers the region's cache servers and routes client RPCs —
	// rpc.NewBus() in-process, rpc.NewTCPNetwork() over real sockets.
	Bus rpc.Network
	// NewBackend builds a DFS client for a node (used by the node's
	// commit process and by Pacon clients for redirection/misses).
	NewBackend func(node string) Backend
	// Obs, when non-nil, enables the observability layer: op lifecycle
	// tracing, stage latency histograms, and gauge/counter registration.
	// Nil (the default) keeps the hot path to one branch per site. When
	// one Obs serves several regions, the last-registered region owns the
	// gauge/counter names.
	Obs *obs.Obs
}

// RegionStats aggregates commit-module counters.
type RegionStats struct {
	Committed int64 // ops applied to the DFS
	Discarded int64 // creates dropped under an active rmdir (§III.D.1)
	Retries   int64 // resubmissions (independent commit, §III.E.1)
	Dropped   int64 // ops abandoned after CommitRetryLimit
	Evictions int64 // region-level eviction rounds (§III.F)

	Coalesced      int64 // queued ops merged away at dequeue time
	CacheRPCs      int64 // commit-path cache round trips (bookkeeping traffic)
	BackendRPCs    int64 // commit-path DFS round trips (batch counts as one)
	BatchRPCs      int64 // apply_batch calls issued
	BatchedOps     int64 // ops shipped inside apply_batch calls
	BatchFallbacks int64 // batches degraded to singleton ops (transport failure)

	BarriersScoped int64 // sync barriers that skipped at least one queue
	BarriersFull   int64 // sync barriers that drained every queue
	CacheWarms     int64 // clean entries bulk-loaded into the cache by read paths
}

// Region is a running consistent region.
type Region struct {
	cfg  RegionConfig
	deps Deps

	servers    map[string]*memcache.Server
	cacheAddrs []string
	ring       *dht.Ring
	queues     map[string]*mq.Queue[Op]
	barrier    *mq.Barrier

	// trackers holds, per node, the paths of ops that entered the node's
	// commit pipeline and have not reached a terminal state (committed,
	// discarded or dropped). A scoped sync barrier consults them to skip
	// queues with nothing pending under the dependent op's subtree.
	trackers map[string]*pathTracker

	// lags holds, per node, the wall-clock enqueue timestamps of the
	// same not-yet-terminal ops (entries exist only when observability
	// stamped Op.EnqWall) — the consistency-lag watermarks read them.
	lags map[string]*lagTracker

	seq     atomic.Uint64
	ckptSeq atomic.Uint64

	removingMu sync.RWMutex
	removing   map[string]int // active rmdir targets -> refcount

	spillMu sync.Mutex
	spill   map[string][]byte // fsync-spilled inline data awaiting create commit

	mergedMu sync.RWMutex
	merged   []remoteRegion

	// backends holds every backend the region has built (commit
	// processes and clients alike) so dependent operations can fan
	// invalidations out to all of them (see invalidateBackendSubtrees).
	backendsMu sync.Mutex
	backends   []Backend

	evictMu sync.Mutex
	// evictLast is the name of the last-evicted top-level entry; the next
	// round advances past it by name, which stays correct when the
	// directory's entry set changes between rounds (an index cursor would
	// skip or repeat entries).
	evictLast string

	// invalGen counts dependent-operation invalidations (rmdir, rename).
	// A cache-miss load records it before reading the DFS and re-checks
	// after inserting: if it moved, the load raced an invalidation and
	// its stat may describe a deleted object — the load revokes its own
	// insert (CAS-guarded) instead of resurrecting stale metadata that
	// nothing would ever clean up.
	invalGen atomic.Uint64

	// deleteHook, when set, runs between the read and the CAS-guarded
	// delete inside deleteIf — test instrumentation that opens the
	// read/delete race window deterministically.
	deleteHook atomic.Pointer[func(path string)]

	committed, discarded, retries, dropped, evictions atomic.Int64
	coalesced, cacheRPCs, backendRPCs                 atomic.Int64
	batchRPCs, batchedOps, batchFallbacks             atomic.Int64
	barriersScoped, barriersFull, cacheWarms          atomic.Int64

	// droppedRetry/droppedConflict/droppedBackend break dropped down by
	// terminal reason (see the dropReason* constants); maxLagNS is the
	// peak enqueue→durable latency any committed op has seen.
	droppedRetry, droppedConflict, droppedBackend atomic.Int64
	maxLagNS                                      atomic.Int64

	// lastAudit is the most recent divergence-audit verdict recorded via
	// RecordAudit; Health folds it in.
	auditMu   sync.Mutex
	lastAudit *AuditVerdict

	// obs is the observability registry (nil = disabled); parked counts
	// ops resident in the commit processes' pending sets.
	obs    *obs.Obs
	parked atomic.Int64

	// healthPrev remembers the last Health() status so a worsening
	// transition (ok → degraded/stalled) can trigger the flight
	// recorder exactly once per transition.
	healthPrev atomic.Int32
	// skewSince is the wall time (unix nanos) at which Health() first
	// observed per-node load imbalance above the skew threshold, 0 while
	// balanced. Imbalance only degrades the region once it has persisted
	// for SkewSustainNS across polls.
	skewSince atomic.Int64

	wg     sync.WaitGroup
	closed atomic.Bool
}

// pathTracker refcounts the paths pending in one node's commit pipeline:
// incremented before the op enters the queue, decremented exactly once
// when the op reaches a terminal state (committed, discarded, dropped,
// or absorbed by the coalescer). The count covers queued, in-flight and
// parked ops alike — any of them obliges the node to join a barrier
// whose scope covers the path.
type pathTracker struct {
	mu    sync.Mutex
	paths map[string]int
}

func (t *pathTracker) add(p string) {
	t.mu.Lock()
	if t.paths == nil {
		t.paths = make(map[string]int)
	}
	t.paths[p]++
	t.mu.Unlock()
}

func (t *pathTracker) remove(p string) {
	t.mu.Lock()
	if n := t.paths[p] - 1; n > 0 {
		t.paths[p] = n
	} else {
		delete(t.paths, p)
	}
	t.mu.Unlock()
}

// hasUnder reports whether any pending path lies in scope's subtree.
func (t *pathTracker) hasUnder(scope string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for p := range t.paths {
		if namespace.IsUnder(p, scope) {
			return true
		}
	}
	return false
}

// opTerminal releases an op's path-tracker reference and its
// consistency-lag entry. Every op that entered a queue reaches exactly
// one terminal: committed, discarded, dropped, or absorbed into a
// coalesced survivor.
func (r *Region) opTerminal(op Op) {
	if t := r.trackers[op.Node]; t != nil {
		t.remove(op.Path)
	}
	r.lagRemove(op)
}

// remoteRegion is a merged peer's shareable view (§III.D.4: basic info —
// node addresses, permission information — plus a connection to its
// distributed caches; access is read-only).
type remoteRegion struct {
	workspace string
	ring      *dht.Ring
	perm      PermSpec
}

// NewRegion starts a consistent region: it launches one cache server and
// one commit process per node, verifies the workspace on the DFS, and
// seeds the cache with the workspace's metadata.
func NewRegion(cfg RegionConfig, deps Deps) (*Region, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("core: region %q needs at least one node", cfg.Name)
	}
	if cfg.Workspace == "/" {
		return nil, fmt.Errorf("core: region %q cannot claim the namespace root", cfg.Name)
	}
	r := &Region{
		cfg:      cfg,
		deps:     deps,
		obs:      deps.Obs,
		servers:  make(map[string]*memcache.Server),
		ring:     dht.New(0),
		queues:   make(map[string]*mq.Queue[Op]),
		barrier:  mq.NewBarrier(len(cfg.Nodes)),
		trackers: make(map[string]*pathTracker),
		lags:     make(map[string]*lagTracker),
		removing: make(map[string]int),
		spill:    make(map[string][]byte),
	}
	if deps.Obs != nil && cfg.TraceSampleN != 0 {
		deps.Obs.SetSampleN(cfg.TraceSampleN)
	}
	for _, node := range cfg.Nodes {
		addr := node + "/pacon-" + cfg.Name
		srv := memcache.NewServer(addr, memcache.ServerConfig{
			CapacityBytes: cfg.CacheCapacityBytes,
			EvictLRU:      false, // Pacon's own round-robin eviction decides
			Model:         cfg.Model,
			Workers:       cfg.Model.CacheWorkers,
		})
		deps.Bus.Register(addr, srv.Service())
		r.servers[node] = srv
		r.cacheAddrs = append(r.cacheAddrs, addr)
		r.ring.Add(addr)
		r.queues[node] = mq.NewQueue[Op]()
		// Queue-head wall stamping rides the observability switch: one
		// clock read per push when on, one branch when off.
		r.queues[node].TrackWall(deps.Obs != nil)
		r.trackers[node] = &pathTracker{}
		r.lags[node] = &lagTracker{}
	}

	// Verify the workspace and seed its metadata into the cache.
	backend := r.newBackend(cfg.Nodes[0])
	wsStat, _, err := backend.Stat(0, cfg.Workspace)
	if err != nil {
		r.shutdownServers()
		return nil, fsapi.WrapPath("region-init", cfg.Workspace, err)
	}
	if !wsStat.IsDir() {
		r.shutdownServers()
		return nil, fsapi.WrapPath("region-init", cfg.Workspace, fsapi.ErrNotDir)
	}
	seed := cacheVal{stat: wsStat}
	cache := memcache.NewClient(rpc.NewCaller(deps.Bus, cfg.Model, cfg.Nodes[0]), r.ring)
	if _, _, err := cache.Set(0, cfg.Workspace, seed.encode(), 0); err != nil {
		r.shutdownServers()
		return nil, err
	}

	r.registerMetrics()

	// One commit process (queue subscriber) per node.
	for _, node := range cfg.Nodes {
		r.wg.Add(1)
		go func(node string) {
			defer r.wg.Done()
			r.commitLoop(node, r.newBackend(node))
		}(node)
	}
	return r, nil
}

// registerMetrics exports the region's counters and gauges through the
// observability registry (no-op when observability is disabled). The
// readers run at scrape time, so exposition always reflects live state.
func (r *Region) registerMetrics() {
	o := r.obs
	if o == nil {
		return
	}
	o.RegisterCounter("ops_committed", r.committed.Load)
	o.RegisterCounter("ops_discarded", r.discarded.Load)
	o.RegisterCounter("ops_retried", r.retries.Load)
	o.RegisterCounter("ops_dropped", r.dropped.Load)
	o.RegisterCounter("evict_rounds", r.evictions.Load)
	o.RegisterCounter("ops_coalesced", r.coalesced.Load)
	o.RegisterCounter("commit_cache_rpcs", r.cacheRPCs.Load)
	o.RegisterCounter("commit_backend_rpcs", r.backendRPCs.Load)
	o.RegisterCounter("batch_rpcs", r.batchRPCs.Load)
	o.RegisterCounter("batched_ops", r.batchedOps.Load)
	o.RegisterCounter("batch_fallbacks", r.batchFallbacks.Load)
	o.RegisterCounter("barrier_scoped", r.barriersScoped.Load)
	o.RegisterCounter("barrier_full", r.barriersFull.Load)
	o.RegisterCounter("cache_warm", r.cacheWarms.Load)
	o.RegisterCounter("ops_dropped_"+dropReasonRetryBudget, r.droppedRetry.Load)
	o.RegisterCounter("ops_dropped_"+dropReasonKindConflict, r.droppedConflict.Load)
	o.RegisterCounter("ops_dropped_"+dropReasonBackendError, r.droppedBackend.Load)

	o.RegisterGauge("mds_shards", func() int64 { return int64(r.cfg.ShardCount) })
	o.RegisterGauge("queue_depth", func() int64 { return int64(r.QueueDepth()) })
	o.RegisterGauge("parked_ops", r.parked.Load)
	o.RegisterGauge("max_staleness_ns", r.MaxStaleness)
	o.RegisterGauge("max_commit_lag_ns", r.maxLagNS.Load)
	o.RegisterGauge("queue_head_age_ns", r.QueueHeadAge)
	for _, node := range r.cfg.Nodes {
		node := node
		o.RegisterGauge("queue_oldest_unacked_ns_"+node, func() int64 {
			return r.OldestUnacked(node)
		})
	}
	o.RegisterGauge("spill_pending", func() int64 { return int64(r.SpillCount()) })
	o.RegisterGauge("cache_items", func() int64 { return r.CacheStats().Items })
	o.RegisterGauge("cache_used_bytes", func() int64 { return r.CacheStats().UsedBytes })
	o.RegisterGauge("dirty_keys", func() int64 {
		dirty, _ := r.headerCounts()
		return dirty
	})
	o.RegisterGauge("removed_keys", func() int64 {
		_, removed := r.headerCounts()
		return removed
	})
	if cap := r.cfg.CacheCapacityBytes; cap > 0 {
		// Eviction watermark: per-mille of cache capacity in use — the
		// pressure level at which region round-robin eviction starts.
		total := cap * int64(len(r.cfg.Nodes))
		o.RegisterGauge("evict_watermark_permille", func() int64 {
			return r.CacheStats().UsedBytes * 1000 / total
		})
	}
	// Cache-ring load skew: imbalance of ops served per cache server. A
	// sustained max/mean well above 1000 means the hash ring's keys are
	// not spreading — the cache-side face of a path hotspot.
	o.RegisterGauge("hot_cache_load_maxmean_permille", func() int64 {
		return r.cacheLoadSkew().MaxMeanPermille
	})
	o.RegisterGauge("hot_cache_load_cv_permille", func() int64 {
		return r.cacheLoadSkew().CVPermille
	})
}

// cacheLoadSkew computes load-imbalance stats over the region's cache
// servers (ops served per server).
func (r *Region) cacheLoadSkew() obs.SkewStats {
	loads := make([]int64, 0, len(r.servers))
	for _, s := range r.servers {
		loads = append(loads, s.ServedOps())
	}
	return obs.Skew(loads)
}

// headerCounts sums the dirty/removed header flags across the region's
// cache servers.
func (r *Region) headerCounts() (dirty, removed int64) {
	for _, s := range r.servers {
		d, rm := s.HeaderCounts()
		dirty += d
		removed += rm
	}
	return dirty, removed
}

// newBackend builds a backend via deps and records it. The region keeps
// every backend it hands out because the DFS layer deliberately trusts
// Pacon for consistency: internal DFS clients run long dentry TTLs, so
// after an rmdir or rename only a region-wide fan-out (not just the
// calling client's own drop) stops the other nodes from serving stale
// positive lookups for the unlinked paths.
func (r *Region) newBackend(node string) Backend {
	b := r.deps.NewBackend(node)
	r.backendsMu.Lock()
	r.backends = append(r.backends, b)
	r.backendsMu.Unlock()
	return b
}

// subtreeInvalidator is the optional backend capability of dropping
// client-local positive lookup state (dfs.Client's dentry cache).
// Wrappers that embed a Backend interface value must forward it
// explicitly — interface embedding does not promote it.
type subtreeInvalidator interface {
	InvalidateSubtree(root string)
}

// invalidateBackendSubtrees drops cached lookup state for root on every
// backend the region has built. Callers bump invalGen only after this
// returns: any stale positive Stat served from a dentry that had not
// yet been dropped necessarily read it before the bump, so the
// cache-miss load's generation re-check fires and the load revokes its
// own insert instead of resurrecting the unlinked subtree.
func (r *Region) invalidateBackendSubtrees(root string) {
	r.backendsMu.Lock()
	bs := append([]Backend(nil), r.backends...)
	r.backendsMu.Unlock()
	for _, b := range bs {
		if inv, ok := b.(subtreeInvalidator); ok {
			inv.InvalidateSubtree(root)
		}
	}
}

func (r *Region) shutdownServers() {
	for _, addr := range r.cacheAddrs {
		r.deps.Bus.Unregister(addr)
	}
}

// Config returns the region's (defaulted) configuration.
func (r *Region) Config() RegionConfig { return r.cfg }

// Ring exposes the cache ring (merged peers route through it).
func (r *Region) Ring() *dht.Ring { return r.ring }

// Stats returns commit-module counters.
func (r *Region) Stats() RegionStats {
	return RegionStats{
		Committed:      r.committed.Load(),
		Discarded:      r.discarded.Load(),
		Retries:        r.retries.Load(),
		Dropped:        r.dropped.Load(),
		Evictions:      r.evictions.Load(),
		Coalesced:      r.coalesced.Load(),
		CacheRPCs:      r.cacheRPCs.Load(),
		BackendRPCs:    r.backendRPCs.Load(),
		BatchRPCs:      r.batchRPCs.Load(),
		BatchedOps:     r.batchedOps.Load(),
		BatchFallbacks: r.batchFallbacks.Load(),

		BarriersScoped: r.barriersScoped.Load(),
		BarriersFull:   r.barriersFull.Load(),
		CacheWarms:     r.cacheWarms.Load(),
	}
}

// CacheStats aggregates the region's cache servers concurrently — the
// same fan-out shape as memcache.Client.StatsAll/FlushAll. Each server's
// Stats walks its 16 shard locks, so a sequential sweep over a large
// region serializes on the busiest servers; fanning out bounds the
// aggregation at the slowest single server.
func (r *Region) CacheStats() memcache.Stats {
	stats := make([]memcache.Stats, len(r.cacheAddrs))
	var wg sync.WaitGroup
	i := 0
	for _, s := range r.servers {
		wg.Add(1)
		go func(slot int, s *memcache.Server) {
			defer wg.Done()
			stats[slot] = s.Stats()
		}(i, s)
		i++
	}
	wg.Wait()
	var total memcache.Stats
	for _, st := range stats {
		total.Items += st.Items
		total.UsedBytes += st.UsedBytes
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Evictions += st.Evictions
		total.ServedOps += st.ServedOps
	}
	return total
}

// QueueDepth reports queued (uncommitted) operations across nodes.
func (r *Region) QueueDepth() int {
	total := 0
	for _, q := range r.queues {
		total += q.Len()
	}
	return total
}

// Merge attaches another region read-only (§III.D.4): this region's
// clients can consistently read other's workspace through other's
// distributed cache. Writes into the merged workspace are rejected.
func (r *Region) Merge(other *Region) {
	r.mergedMu.Lock()
	defer r.mergedMu.Unlock()
	r.merged = append(r.merged, remoteRegion{
		workspace: other.cfg.Workspace,
		ring:      other.ring,
		perm:      other.cfg.Perm,
	})
}

// mergedFor finds the merged peer covering path, if any.
func (r *Region) mergedFor(path string) (remoteRegion, bool) {
	r.mergedMu.RLock()
	defer r.mergedMu.RUnlock()
	for _, m := range r.merged {
		if namespace.IsUnder(path, m.workspace) {
			return m, true
		}
	}
	return remoteRegion{}, false
}

// addRemoving registers an active rmdir target; commit processes discard
// creations under it (§III.D.1).
func (r *Region) addRemoving(p string) {
	r.removingMu.Lock()
	defer r.removingMu.Unlock()
	r.removing[p]++
}

func (r *Region) delRemoving(p string) {
	r.removingMu.Lock()
	defer r.removingMu.Unlock()
	if r.removing[p]--; r.removing[p] <= 0 {
		delete(r.removing, p)
	}
}

func (r *Region) isRemoving(p string) bool {
	r.removingMu.RLock()
	defer r.removingMu.RUnlock()
	for target := range r.removing {
		if namespace.IsUnder(p, target) {
			return true
		}
	}
	return false
}

// spillPut stores fsync-spilled inline data until the file's create
// commits (§III.D.2: direct I/O to cache files, written back later).
func (r *Region) spillPut(p string, data []byte) {
	r.spillMu.Lock()
	defer r.spillMu.Unlock()
	r.spill[p] = append([]byte(nil), data...)
}

func (r *Region) spillTake(p string) ([]byte, bool) {
	r.spillMu.Lock()
	defer r.spillMu.Unlock()
	d, ok := r.spill[p]
	if ok {
		delete(r.spill, p)
	}
	return d, ok
}

// SpillCount reports files with spilled data awaiting write-back.
func (r *Region) SpillCount() int {
	r.spillMu.Lock()
	defer r.spillMu.Unlock()
	return len(r.spill)
}

// syncBarrier runs the barrier protocol up to the drain point: it opens
// an epoch, pushes one marker into the participating node queues, and
// waits until those commit processes have applied all earlier
// operations. The caller performs its dependent operation and then
// calls barrier.Release.
//
// scope, when non-empty, is the dependent operation's subtree: only
// queues whose path tracker shows a pending op under it participate —
// the rest are never drained, never even see the marker
// (barrier.SetExpect shrinks the epoch to the participant count). An
// op pushed into a skipped queue after the participant snapshot is
// concurrent with the barrier and owes it nothing, exactly like an op
// racing the marker push in the full protocol. Scope "" (rename,
// Drain — operations whose footprint is not one subtree) and the
// DisableScopedBarrier ablation drain every queue.
func (r *Region) syncBarrier(at vclock.Time, scope string) (epoch uint64, drain vclock.Time, err error) {
	var start int64
	if r.obs != nil {
		start = time.Now().UnixNano()
	}
	epoch, err = r.barrier.Begin()
	if err != nil {
		return 0, at, err
	}
	participants := make([]*mq.Queue[Op], 0, len(r.queues))
	if scope == "" || r.cfg.DisableScopedBarrier {
		for _, q := range r.queues {
			participants = append(participants, q)
		}
	} else {
		for node, q := range r.queues {
			if r.trackers[node].hasUnder(scope) {
				participants = append(participants, q)
			}
		}
	}
	if len(participants) < len(r.queues) {
		r.barriersScoped.Add(1)
	} else {
		r.barriersFull.Add(1)
	}
	// The initiator owns the epoch exclusively between Begin and the
	// marker pushes, so shrinking the expectation here cannot race an
	// arrival.
	r.barrier.SetExpect(epoch, len(participants))
	for _, q := range participants {
		if err := q.PushBarrier(epoch); err != nil {
			r.barrier.Release(epoch, at)
			return 0, at, err
		}
	}
	drain, err = r.barrier.AwaitArrivals(epoch)
	if err != nil {
		return 0, at, err
	}
	if r.obs != nil {
		r.obs.Hist(obs.HistBarrierWait).RecordN(time.Now().UnixNano() - start)
	}
	return epoch, vclock.Max(drain, at), nil
}

// Drain forces all queued operations to the DFS and returns when the
// region is globally consistent (every backup copy updated). Used by
// tests, checkpointing and orderly shutdown.
func (r *Region) Drain(at vclock.Time) (vclock.Time, error) {
	epoch, drain, err := r.syncBarrier(at, "")
	if err != nil {
		return at, err
	}
	r.barrier.Release(epoch, drain)
	return drain, nil
}

// Close drains the queues and stops the commit processes and cache
// servers.
func (r *Region) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	for _, q := range r.queues {
		q.Close()
	}
	// Close the barrier before waiting: a commit process parked in
	// AwaitRelease (in-flight sync op at shutdown) must unblock, or
	// wg.Wait would hang.
	r.barrier.Close()
	r.wg.Wait()
	r.shutdownServers()
	return nil
}
