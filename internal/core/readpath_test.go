package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"pacon/internal/fsapi"
	"pacon/internal/obs"
	"pacon/internal/vclock"
)

// TestStatMultiBatchedCutsCacheRPCs: a scan-style StatMulti over cached
// paths must cost one get_multi round trip per owning server rather
// than one get per path, while matching per-key Stat semantics exactly
// (live stats, removed markers read as absence, unknown paths error
// per-result without failing the batch).
func TestStatMultiBatchedCutsCacheRPCs(t *testing.T) {
	e := newEnv(t, 3, nil)
	c := e.client(t, "node0")

	at := vclock.Time(0)
	var err error
	var paths []string
	for i := 0; i < 24; i++ {
		p := fmt.Sprintf("/w/b%02d", i)
		if at, err = c.Create(at, p, 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	if at, err = c.Create(at, "/w/gone", 0o644); err != nil {
		t.Fatal(err)
	}
	if at, err = c.Remove(at, "/w/gone"); err != nil {
		t.Fatal(err)
	}
	paths = append(paths, "/w/gone", "/w/never")

	rpcs0 := c.CacheRPCs()
	res, at, err := c.StatMulti(at, paths)
	if err != nil {
		t.Fatal(err)
	}
	batched := c.CacheRPCs() - rpcs0

	for i := 0; i < 24; i++ {
		if res[i].Err != nil || res[i].Stat.Type != fsapi.TypeFile {
			t.Fatalf("res[%d] = %+v, %v", i, res[i].Stat, res[i].Err)
		}
	}
	if !errors.Is(res[24].Err, fsapi.ErrNotExist) {
		t.Fatalf("removed path = %v, want ErrNotExist", res[24].Err)
	}
	if !errors.Is(res[25].Err, fsapi.ErrNotExist) {
		t.Fatalf("unknown path = %v, want ErrNotExist", res[25].Err)
	}
	// 26 paths over 3 owners: the batch resolves in at most one
	// get_multi per owner plus the miss warm — far under one RPC per
	// path, and at least the 2x the bench acceptance demands.
	if batched*2 > int64(len(paths)) {
		t.Fatalf("batched StatMulti cost %d cache RPCs for %d paths", batched, len(paths))
	}

	// The ablation baseline (ReadBatchSize 1) must agree on every result.
	e2 := newEnv(t, 3, func(cfg *RegionConfig) { cfg.ReadBatchSize = 1 })
	c2 := e2.client(t, "node0")
	at2 := vclock.Time(0)
	for i := 0; i < 24; i++ {
		if at2, err = c2.Create(at2, fmt.Sprintf("/w/b%02d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if at2, err = c2.Create(at2, "/w/gone", 0o644); err != nil {
		t.Fatal(err)
	}
	if at2, err = c2.Remove(at2, "/w/gone"); err != nil {
		t.Fatal(err)
	}
	base0 := c2.CacheRPCs()
	res2, _, err := c2.StatMulti(at2, paths)
	if err != nil {
		t.Fatal(err)
	}
	perKey := c2.CacheRPCs() - base0
	for i := range res {
		if (res[i].Err == nil) != (res2[i].Err == nil) || res[i].Stat.Type != res2[i].Stat.Type {
			t.Fatalf("batched/per-key disagree at %s: %+v/%v vs %+v/%v",
				paths[i], res[i].Stat, res[i].Err, res2[i].Stat, res2[i].Err)
		}
	}
	if batched*2 > perKey {
		t.Fatalf("batched = %d RPCs, per-key baseline = %d: want >= 2x reduction", batched, perKey)
	}
}

// TestReaddirWarmsColdListing: Readdir over a DFS-resident (uncached)
// directory must warm the distributed cache from its listing, so the
// follow-up stats (the ls -l pattern) never touch the MDS; the warm is
// visible through the cache_warm counter and the readdir_entries
// histogram in the obs registry.
func TestReaddirWarmsColdListing(t *testing.T) {
	o := obs.New()
	e := newEnvDeps(t, 2, nil, func(d *Deps) { d.Obs = o })
	admin := e.dfs.NewClient("admin", rootCred, 0, 0)
	if _, err := admin.Mkdir(0, "/w/cold", 0o777); err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := admin.Create(0, fmt.Sprintf("/w/cold/f%02d", i), 0o666); err != nil {
			t.Fatal(err)
		}
	}

	c := e.client(t, "node0")
	ents, at, err := c.Readdir(0, "/w/cold")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != n {
		t.Fatalf("listing = %d entries, want %d", len(ents), n)
	}
	if got := e.region.Stats().CacheWarms; got != n {
		t.Fatalf("CacheWarms = %d after cold readdir, want %d", got, n)
	}

	// Every child is now cached: stats must not add MDS lookups.
	lookups := e.dfs.MDS.Stats().Lookups
	for i := 0; i < n; i++ {
		st, done, err := c.Stat(at, fmt.Sprintf("/w/cold/f%02d", i))
		at = done
		if err != nil || st.Type != fsapi.TypeFile {
			t.Fatalf("stat after warm = %+v, %v", st, err)
		}
	}
	if got := e.dfs.MDS.Stats().Lookups; got != lookups {
		t.Fatalf("stats after readdir warm still hit the MDS (%d extra lookups)", got-lookups)
	}

	// Satellite visibility: the listing-size histogram recorded the
	// readdir and the warm counter is exported by name.
	if q := o.HistQuantiles()[obs.HistReaddirEntries]; q.Count != 1 {
		t.Fatalf("readdir_entries histogram count = %d, want 1", q.Count)
	}
	sum := o.Summary()
	if !strings.Contains(sum, "cache_warm") || !strings.Contains(sum, "barrier_scoped") {
		t.Fatalf("metrics summary missing read-path counters:\n%s", sum)
	}
}

// TestParentMemoSweptAcrossEpochs: the positive parent-existence memo
// must not leak one entry per directory forever — the first memo write
// in a new barrier epoch sweeps every stale-epoch entry.
func TestParentMemoSweptAcrossEpochs(t *testing.T) {
	e := newEnv(t, 1, nil)
	c := e.client(t, "node0")

	at := vclock.Time(0)
	var err error
	const dirs = 8
	for i := 0; i < dirs; i++ {
		d := fmt.Sprintf("/w/d%d", i)
		if at, err = c.Mkdir(at, d, 0o755); err != nil {
			t.Fatal(err)
		}
		if at, err = c.Create(at, d+"/f", 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if len(c.parentMemo) != dirs {
		t.Fatalf("memo holds %d entries, want %d", len(c.parentMemo), dirs)
	}

	// A drain advances the barrier epoch, making every entry stale.
	if at, err = e.region.Drain(at); err != nil {
		t.Fatal(err)
	}
	if at, err = c.Create(at, "/w/d0/g", 0o644); err != nil {
		t.Fatal(err)
	}
	if len(c.parentMemo) != 1 {
		t.Fatalf("memo holds %d entries after epoch advance, want 1 (stale entries leaked)", len(c.parentMemo))
	}
	for d, ep := range c.parentMemo {
		if ep != c.memoEpoch {
			t.Fatalf("memo entry %q kept stale epoch %d (current %d)", d, ep, c.memoEpoch)
		}
	}
}

// TestStatMultiMergedPeerStaysReadOnly: batched reads through a merged
// peer's cache are strictly read-only (§III.D.4) — hits resolve from
// the peer, misses fall through to the DFS, and the peer's cache holds
// exactly as many items afterwards as before.
func TestStatMultiMergedPeerStaysReadOnly(t *testing.T) {
	e := newEnv(t, 2, nil)
	admin := e.dfs.NewClient("admin", rootCred, 0, 0)
	if _, err := admin.Mkdir(0, "/w2", 0o777); err != nil {
		t.Fatal(err)
	}
	cred2 := fsapi.Cred{UID: 2000, GID: 2000}
	region2, err := NewRegion(RegionConfig{
		Name:      "app2",
		Workspace: "/w2",
		Nodes:     []string{"node8", "node9"},
		Cred:      cred2,
		Perm:      PermSpec{Normal: PermEntry{Mode: 0o755, UID: cred2.UID, GID: cred2.GID}},
		Model:     vclock.Default(),
	}, Deps{
		Bus: e.bus,
		NewBackend: func(node string) Backend {
			return e.dfs.NewClient(node, cred2, 4096, time.Hour)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer region2.Close()

	c2, err := region2.NewClient("node8")
	if err != nil {
		t.Fatal(err)
	}
	at := vclock.Time(0)
	var paths []string
	// Half the paths live (dirty) in the peer's cache...
	for i := 0; i < 5; i++ {
		p := fmt.Sprintf("/w2/hot%d", i)
		if at, err = c2.Create(at, p, 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	// ...the other half only on the DFS (never read by the peer).
	for i := 0; i < 5; i++ {
		p := fmt.Sprintf("/w2/cold%d", i)
		if _, err = admin.Create(0, p, 0o666); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}

	e.region.Merge(region2)
	c1 := e.client(t, "node0")

	items := region2.CacheStats().Items
	res, _, err := c1.StatMulti(at, paths)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil || r.Stat.Type != fsapi.TypeFile {
			t.Fatalf("merged res[%s] = %+v, %v", paths[i], r.Stat, r.Err)
		}
	}
	if got := region2.CacheStats().Items; got != items {
		t.Fatalf("merged StatMulti changed the peer's cache: %d items -> %d", items, got)
	}
	if warmed := e.region.Stats().CacheWarms; warmed != 0 {
		t.Fatalf("merged reads warmed %d entries into a cache", warmed)
	}
}

// TestStatMultiSurvivesCacheServerDeath is the cache-server-death
// schedule: one owner dies between commit and read, its keys fail the
// get_multi, and the batch degrades per key (singleton get, then DFS
// load) instead of failing — every path still resolves.
func TestStatMultiSurvivesCacheServerDeath(t *testing.T) {
	e := newEnv(t, 3, nil)
	c := e.client(t, "node0")

	at := vclock.Time(0)
	var err error
	var paths []string
	for i := 0; i < 18; i++ {
		p := fmt.Sprintf("/w/k%02d", i)
		if at, err = c.Create(at, p, 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	// Drain first: the cache holds the primary copy until commit, so a
	// server death before the drain would genuinely lose metadata.
	if at, err = e.region.Drain(at); err != nil {
		t.Fatal(err)
	}

	// Kill node1's cache server: every RPC to it now fails.
	e.bus.Unregister("node1/pacon-app")

	res, _, err := c.StatMulti(at, paths)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil || r.Stat.Type != fsapi.TypeFile {
			t.Fatalf("res[%s] after owner death = %+v, %v", paths[i], r.Stat, r.Err)
		}
	}
	// The dead owner really owned some of the keys, or the fallback was
	// never exercised.
	owned := 0
	for _, p := range paths {
		if e.region.Ring().Lookup(p) == "node1/pacon-app" {
			owned++
		}
	}
	if owned == 0 {
		t.Fatal("no test key owned by the dead server; fallback untested")
	}
}

// TestScopedBarrierSkipsSiblingQueues: a Readdir barrier scoped to one
// subtree must not wait for (or drop) pending work in a sibling
// subtree, while still draining everything under its own target. The
// DisableScopedBarrier ablation restores the full drain, which can only
// finish by dropping the parked sibling op.
func TestScopedBarrierSkipsSiblingQueues(t *testing.T) {
	mutate := func(cfg *RegionConfig) {
		// Parent checks off so a create whose parent never exists parks
		// forever in the commit pipeline; a tiny retry budget keeps the
		// full-drain variant fast.
		cfg.DisableParentCheck = true
		cfg.CommitRetryLimit = 2
	}

	t.Run("scoped", func(t *testing.T) {
		e := newEnv(t, 2, mutate)
		c := e.client(t, "node0")
		at, err := c.Mkdir(0, "/w/a", 0o755)
		if err != nil {
			t.Fatal(err)
		}
		if at, err = c.Create(at, "/w/a/x", 0o644); err != nil {
			t.Fatal(err)
		}
		// Park an orphan on node1: /w/b never exists, so its commit can
		// only retry.
		c1 := e.client(t, "node1")
		if _, err := c1.Create(at, "/w/b/orphan", 0o644); err != nil {
			t.Fatal(err)
		}

		ents, _, err := c.Readdir(at, "/w/a")
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 1 || ents[0].Name != "x" {
			t.Fatalf("scoped readdir = %v, want [x]", ents)
		}
		st := e.region.Stats()
		if st.BarriersScoped == 0 {
			t.Fatalf("no scoped barrier recorded: %+v", st)
		}
		if st.Dropped != 0 {
			t.Fatalf("scoped barrier dropped %d sibling ops", st.Dropped)
		}
		if !e.region.trackers["node1"].hasUnder("/w/b") {
			t.Fatal("sibling op no longer pending: the barrier drained it")
		}
	})

	t.Run("full-ablation", func(t *testing.T) {
		e := newEnv(t, 2, func(cfg *RegionConfig) {
			mutate(cfg)
			cfg.DisableScopedBarrier = true
		})
		c := e.client(t, "node0")
		at, err := c.Mkdir(0, "/w/a", 0o755)
		if err != nil {
			t.Fatal(err)
		}
		c1 := e.client(t, "node1")
		if _, err := c1.Create(at, "/w/b/orphan", 0o644); err != nil {
			t.Fatal(err)
		}

		if _, _, err := c.Readdir(at, "/w/a"); err != nil {
			t.Fatal(err)
		}
		st := e.region.Stats()
		if st.BarriersScoped != 0 {
			t.Fatalf("ablation still scoped a barrier: %+v", st)
		}
		if st.BarriersFull == 0 {
			t.Fatalf("no full barrier recorded: %+v", st)
		}
		// The full drain could only complete by exhausting the orphan's
		// retry budget.
		if st.Dropped == 0 {
			t.Fatalf("full barrier finished without draining the sibling queue: %+v", st)
		}
	})
}
