package core

import (
	"fmt"
	"time"

	"pacon/internal/obs"
)

// HealthStatus is a region's typed health verdict.
type HealthStatus int

const (
	// HealthOK: commit pipeline current, no divergence on record.
	HealthOK HealthStatus = iota
	// HealthDegraded: the pipeline is falling behind (staleness past the
	// degraded threshold, or ops parked awaiting resubmission) but still
	// making progress.
	HealthDegraded
	// HealthStalled: the inconsistency window is no longer bounded in
	// practice — staleness past the stalled threshold — or the auditor
	// found cache↔DFS divergence, which asynchronous commit can never
	// repair on its own.
	HealthStalled
)

func (s HealthStatus) String() string {
	switch s {
	case HealthOK:
		return "ok"
	case HealthDegraded:
		return "degraded"
	case HealthStalled:
		return "stalled"
	}
	return fmt.Sprintf("HealthStatus(%d)", int(s))
}

// MarshalText makes the status render as its name in JSON health
// documents (the /healthz endpoint).
func (s HealthStatus) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// HealthThresholds sets the wall-clock staleness levels (ns) at which a
// region degrades and stalls, and the sustained-imbalance level at
// which hotspot skew degrades it. The zero value selects the defaults.
type HealthThresholds struct {
	DegradedNS int64 // default 5s
	StalledNS  int64 // default 60s

	// SkewMaxMeanPermille is the per-node load imbalance — max over mean
	// of recorded ops per node, ×1000 — past which the region counts as
	// imbalanced. Default 3000: the hottest node carries ≥3× its fair
	// share. Only meaningful with observability enabled and >1 node.
	SkewMaxMeanPermille int64
	// SkewSustainNS is how long the imbalance must persist across Health
	// polls before it degrades the region (a burst is not a hotspot).
	// Default 10s.
	SkewSustainNS int64
	// SkewMinOps gates the imbalance rule until the region has recorded
	// at least this many ops — skew over a handful of ops is noise.
	// Default 1024.
	SkewMinOps int64
}

func (t HealthThresholds) withDefaults() HealthThresholds {
	if t.DegradedNS <= 0 {
		t.DegradedNS = int64(5 * time.Second)
	}
	if t.StalledNS <= 0 {
		t.StalledNS = int64(60 * time.Second)
	}
	if t.SkewMaxMeanPermille <= 0 {
		t.SkewMaxMeanPermille = 3000
	}
	if t.SkewSustainNS <= 0 {
		t.SkewSustainNS = int64(10 * time.Second)
	}
	if t.SkewMinOps <= 0 {
		t.SkewMinOps = 1024
	}
	return t
}

// AuditVerdict is the summary a divergence-audit run records with the
// region (the audit package computes it; core only stores the latest so
// Health can fold it in without an import cycle).
type AuditVerdict struct {
	Wall         int64 `json:"wall_ns"` // unix ns when the audit finished
	Sampled      int   `json:"sampled"`
	Matched      int   `json:"matched"`
	StalePending int   `json:"stale_pending"`
	Divergent    int   `json:"divergent"`
}

// RecordAudit stores the latest divergence-audit verdict. Divergence is
// the one condition asynchronous commit can never repair on its own, so
// it fires the flight recorder immediately — by the next poll the
// recent-span and ring evidence may already be overwritten.
func (r *Region) RecordAudit(v AuditVerdict) {
	r.auditMu.Lock()
	r.lastAudit = &v
	r.auditMu.Unlock()
	if v.Divergent > 0 && r.obs != nil {
		r.obs.TriggerFlight("audit_divergence")
	}
}

// LastAudit returns the most recent audit verdict, if any.
func (r *Region) LastAudit() (AuditVerdict, bool) {
	r.auditMu.Lock()
	defer r.auditMu.Unlock()
	if r.lastAudit == nil {
		return AuditVerdict{}, false
	}
	return *r.lastAudit, true
}

// Health is a region health snapshot: the consistency-lag watermarks,
// pipeline pressure, cache bookkeeping and the last audit verdict,
// folded into one typed status. All fields are JSON-stable — the
// /healthz endpoint serializes this struct as-is.
type Health struct {
	Status HealthStatus `json:"status"`
	// Reasons states, in plain words, every condition that pushed the
	// status past ok (empty when ok).
	Reasons []string `json:"reasons,omitempty"`

	MaxStalenessNS int64 `json:"max_staleness_ns"` // oldest unacked op age
	MaxCommitLagNS int64 `json:"max_commit_lag_ns"`
	QueueHeadAgeNS int64 `json:"queue_head_age_ns"`
	QueueDepth     int   `json:"queue_depth"`
	ParkedOps      int64 `json:"parked_ops"`
	DirtyKeys      int64 `json:"dirty_keys"`
	RemovedKeys    int64 `json:"removed_keys"`

	DroppedOps      int64            `json:"dropped_ops"`
	DroppedByReason map[string]int64 `json:"dropped_by_reason,omitempty"`

	// Per-node load-skew gauges from the hotspot telemetry (zero with
	// observability disabled): max/mean and coefficient of variation of
	// recorded ops per node, ×1000, plus the hottest path when skewed.
	NodeOpsMaxMeanPermille int64   `json:"node_ops_max_mean_permille,omitempty"`
	NodeOpsCVPermille      int64   `json:"node_ops_cv_permille,omitempty"`
	HotPath                string  `json:"hot_path,omitempty"`
	HotPathShare           float64 `json:"hot_path_share,omitempty"`

	LastAudit *AuditVerdict `json:"last_audit,omitempty"`
}

// Health evaluates the region against thr (zero value = defaults).
//
// Status rules, current conditions only (cumulative counters like
// dropped ops are reported as data, not status — a drop a week ago is
// not a present emergency):
//   - divergent keys in the last audit        → stalled
//   - max staleness ≥ stalled threshold       → stalled
//   - max staleness ≥ degraded threshold      → degraded
//   - parked (failed, retrying) ops           → degraded
//   - node load imbalance sustained past
//     SkewSustainNS (hotspot telemetry)       → degraded
//
// With observability disabled the staleness watermark reads 0 and only
// the audit/parked rules can fire.
func (r *Region) Health(thr HealthThresholds) Health {
	thr = thr.withDefaults()
	dirty, removed := r.headerCounts()
	h := Health{
		MaxStalenessNS: r.MaxStaleness(),
		MaxCommitLagNS: r.MaxCommitLag(),
		QueueHeadAgeNS: r.QueueHeadAge(),
		QueueDepth:     r.QueueDepth(),
		ParkedOps:      r.parked.Load(),
		DirtyKeys:      dirty,
		RemovedKeys:    removed,
		DroppedOps:     r.dropped.Load(),
	}
	if d := r.DroppedByReason(); d[dropReasonRetryBudget]+d[dropReasonKindConflict]+d[dropReasonBackendError] > 0 {
		h.DroppedByReason = d
	}
	if v, ok := r.LastAudit(); ok {
		h.LastAudit = &v
	}

	worsen := func(to HealthStatus, why string) {
		if to > h.Status {
			h.Status = to
		}
		h.Reasons = append(h.Reasons, why)
	}
	if h.LastAudit != nil && h.LastAudit.Divergent > 0 {
		worsen(HealthStalled, fmt.Sprintf("last audit found %d divergent key(s)", h.LastAudit.Divergent))
	}
	switch {
	case h.MaxStalenessNS >= thr.StalledNS:
		worsen(HealthStalled, fmt.Sprintf("oldest unacked op is %s old (stalled ≥ %s)",
			time.Duration(h.MaxStalenessNS), time.Duration(thr.StalledNS)))
	case h.MaxStalenessNS >= thr.DegradedNS:
		worsen(HealthDegraded, fmt.Sprintf("oldest unacked op is %s old (degraded ≥ %s)",
			time.Duration(h.MaxStalenessNS), time.Duration(thr.DegradedNS)))
	}
	if h.ParkedOps > 0 {
		worsen(HealthDegraded, fmt.Sprintf("%d op(s) parked awaiting resubmission", h.ParkedOps))
	}
	r.healthSkew(&h, thr, worsen)

	// Flight-record worsening transitions: whoever polls Health (the
	// /healthz endpoint, the chaos harness, a test) gets the dump cut at
	// the moment the region first left its previous, better state.
	if prev := HealthStatus(r.healthPrev.Swap(int32(h.Status))); h.Status > prev && r.obs != nil {
		r.obs.TriggerFlight("health_" + h.Status.String())
	}
	return h
}

// healthSkew folds the hotspot telemetry's per-node load imbalance into
// a health snapshot: the gauges are always reported (when observability
// is on and the region has peers to be imbalanced against), but the
// status only degrades once the imbalance has persisted for
// SkewSustainNS across polls — r.skewSince carries the onset time
// between calls, and any balanced poll resets it.
func (r *Region) healthSkew(h *Health, thr HealthThresholds, worsen func(HealthStatus, string)) {
	if r.obs == nil || len(r.cfg.Nodes) < 2 {
		return
	}
	sk := obs.Skew(nodeOps(r.obs.HotNodeLoads()))
	h.NodeOpsMaxMeanPermille = sk.MaxMeanPermille
	h.NodeOpsCVPermille = sk.CVPermille
	if top := r.obs.TopPaths(1); len(top) > 0 {
		h.HotPath = top[0].Path
		h.HotPathShare = top[0].Share
	}
	if sk.Total < thr.SkewMinOps || sk.MaxMeanPermille < thr.SkewMaxMeanPermille {
		r.skewSince.Store(0)
		return
	}
	now := time.Now().UnixNano()
	since := r.skewSince.Load()
	if since == 0 {
		// Onset: CAS so concurrent pollers agree on one start time.
		r.skewSince.CompareAndSwap(0, now)
		return
	}
	if now-since >= thr.SkewSustainNS {
		worsen(HealthDegraded, fmt.Sprintf(
			"node load imbalance sustained %s: hottest node carries %.1fx the mean over %d node(s)",
			time.Duration(now-since), float64(sk.MaxMeanPermille)/1000, sk.N))
	}
}

// nodeOps projects per-node load records onto their op counts.
func nodeOps(loads []obs.NodeLoad) []int64 {
	ops := make([]int64, len(loads))
	for i, l := range loads {
		ops[i] = l.Ops
	}
	return ops
}
