package core

import (
	"errors"
	"fmt"
	"time"

	"pacon/internal/fsapi"
	"pacon/internal/memcache"
	"pacon/internal/obs"
	"pacon/internal/rpc"
	"pacon/internal/vclock"
)

// pendingOp is a failed non-dependent commit awaiting resubmission
// (§III.E.1: "we only need to resubmit the operation until it succeeds").
type pendingOp struct {
	op       Op
	attempts int
}

// pendingSet keeps failed ops in arrival order plus a per-path count so
// later same-path ops can be held back. region and ring are the
// observability seam (both may be nil: disabled observability, or
// white-box tests building a bare set).
type pendingSet struct {
	ops   []pendingOp
	paths map[string]int

	region *Region
	ring   *obs.Ring
}

// add parks an op. why labels the park terminal-stage event so traces
// distinguish an op held for per-path ordering from one that actually
// failed and awaits resubmission.
func (p *pendingSet) add(op Op, why string) {
	// Parked ops are always tail-kept by the sampler at their terminal;
	// the flag rides the stored copy through retries.
	op.Parked = true
	if p.paths == nil {
		p.paths = make(map[string]int)
	}
	p.ops = append(p.ops, pendingOp{op: op})
	p.paths[op.Path]++
	if p.region != nil {
		p.region.parked.Add(1)
		p.region.traceOp(p.ring, op, obs.StagePark, why)
	}
}

// release drops one reference to a parked path, deleting the key when it
// reaches zero so the map does not grow with every path that ever parked
// over a long-running commit loop.
func (p *pendingSet) release(path string) {
	if n := p.paths[path] - 1; n > 0 {
		p.paths[path] = n
	} else {
		delete(p.paths, path)
	}
	if p.region != nil {
		p.region.parked.Add(-1)
	}
}

func (p *pendingSet) blocks(path string) bool { return p.paths[path] > 0 }

// commitLoop is one node's commit process: the subscriber of the node's
// commit queue. It applies operations to the DFS through the node's own
// backend client, participates in barrier epochs, and maintains the
// cache's dirty/removed bookkeeping.
//
// Operations are dequeued up to CommitBatchSize at a time (never across
// a barrier marker), same-path runs are coalesced (see coalesceOps), and
// independent-path ops ship to the DFS in one apply_batch round trip.
//
// Resubmission policy: a failed op parks in the pending set while
// *other-path* ops continue — that is what converges creations enqueued
// before their parents (cross-queue dependencies, or applications that
// disabled the parent check). Same-path ops never overtake a parked one:
// reordering a create → rm → create chain can commit the re-creation
// first and then let the retried remove delete the wrong incarnation.
// Per-queue per-path FIFO is exactly the order the paper's §III.E
// argument presumes.
func (r *Region) commitLoop(node string, backend Backend) {
	q := r.queues[node]
	cache := memcache.NewClient(rpc.NewCaller(r.deps.Bus, r.cfg.Model, node), r.ring)
	ring := r.obsRing(node)
	var now vclock.Time
	pending := pendingSet{region: r, ring: ring}
	coalesceScratch := make(map[string]int, r.cfg.CommitBatchSize)
	// batchBuf is the dequeue buffer, reused across PopBatchInto calls:
	// everything downstream (coalescing, wave construction, parking)
	// copies the Op values it keeps, so nothing references the buffer by
	// the time the loop re-enters.
	var batchBuf []Op

	// onMerge retires the absorbed op: its path-tracker reference is
	// released (the survivor carries the path to its own terminal) and,
	// when tracing, its coalesce event recorded — its effect now rides
	// the surviving op's span.
	onMerge := func(survivor, absorbed Op) {
		r.opTerminal(absorbed)
		if ring != nil {
			r.traceOp(ring, absorbed, obs.StageCoalesce,
				fmt.Sprintf("into span %d", survivor.Span))
		}
		// The absorbed span ends here: its effect rides the survivor.
		r.spanDone(absorbed, false)
	}

	for {
		ops, isBarrier, epoch, ok := q.PopBatchInto(batchBuf, r.cfg.CommitBatchSize)
		if ops != nil {
			batchBuf = ops
		}
		if !ok {
			// Queue closed: push out whatever can still commit.
			r.drainPending(&pending, &now, backend, cache)
			return
		}
		if isBarrier {
			// Everything before the marker must reach the DFS before we
			// report arrival (§III.E.2).
			r.drainPending(&pending, &now, backend, cache)
			r.barrier.Arrive(epoch, now)
			rel, err := r.barrier.AwaitRelease(epoch)
			if err != nil {
				return
			}
			now = vclock.Max(now, rel)
			continue
		}
		r.observeDequeue(ring, ops)
		if !r.cfg.DisableCoalesce {
			var merged int64
			ops, merged = coalesceOps(ops, coalesceScratch, onMerge)
			r.coalesced.Add(merged)
		}
		r.applyOps(ops, &now, backend, cache, &pending)
		// Opportunistic pass: earlier failures often just needed a
		// sibling queue to commit a parent. Uncounted — only forced
		// drains consume the resubmission budget.
		r.retryPendingOnce(&pending, &now, backend, cache, false)
	}
}

// applyOps applies a dequeued batch in waves: each wave holds at most
// one op per path (per-path FIFO — a same-path follower waits for the
// next wave, and parks if its predecessor parked), and a wave's
// independent-path ops ship in one apply_batch round trip.
func (r *Region) applyOps(ops []Op, now *vclock.Time, backend Backend, cache *memcache.Client, pending *pendingSet) {
	inWave := make(map[string]bool, len(ops))
	for len(ops) > 0 {
		var wave, rest []Op
		clear(inWave)
		for _, op := range ops {
			switch {
			case inWave[op.Path]:
				rest = append(rest, op)
			case pending.blocks(op.Path):
				// Preserve per-path order behind the parked op.
				pending.add(op, "behind parked same-path op")
			default:
				inWave[op.Path] = true
				wave = append(wave, op)
			}
		}
		r.applyWave(wave, now, backend, cache, pending)
		ops = rest
	}
}

// batchable reports whether op can ship inside an apply_batch RPC.
// Creations under an active rmdir need the discard rule, and inline
// setstats are data writes — both stay on the singleton path.
func (r *Region) batchable(op Op) bool {
	if r.isRemoving(op.Path) {
		return false
	}
	switch op.Kind {
	case OpCreate, OpMkdir, OpRemove:
		return true
	case OpSetStat:
		return len(op.Stat.Inline) == 0
	}
	return false
}

// applyWave applies one wave of unique-path ops. Two or more batchable
// ops go out as a single apply_batch; net-absence removes always take
// the batch path (even alone) so the DFS sees their IfExists marker.
func (r *Region) applyWave(wave []Op, now *vclock.Time, backend Backend, cache *memcache.Client, pending *pendingSet) {
	var batch, single []Op
	for _, op := range wave {
		if r.batchable(op) {
			batch = append(batch, op)
		} else {
			single = append(single, op)
		}
	}
	if len(batch) == 1 && !batch[0].NetAbsent {
		single = append(single, batch[0])
		batch = nil
	}
	if len(batch) > 0 {
		r.applyBatchRPC(batch, now, backend, cache, pending)
	}
	for _, op := range single {
		if r.applyOp(op, now, backend, cache, pending.ring) {
			pending.add(op, "resubmittable failure")
		}
	}
}

// applyBatchRPC ships a wave's batchable ops in one backend round trip
// and finishes each per its own result.
func (r *Region) applyBatchRPC(ops []Op, now *vclock.Time, backend Backend, cache *memcache.Client, pending *pendingSet) {
	// The first sampled op's span tags the whole batch round trip — a
	// batch is one wire-level apply, so its server events belong to one
	// representative span.
	for _, op := range ops {
		if op.Sampled {
			if untag := r.commitTrace(op, backend, cache); untag != nil {
				defer untag()
			}
			break
		}
	}
	t := *now
	bops := make([]fsapi.BatchOp, len(ops))
	inlines := make([][]byte, len(ops))
	for i, op := range ops {
		if op.Time > t {
			t = op.Time
		}
		bop := fsapi.BatchOp{Path: op.Path}
		switch op.Kind {
		case OpCreate, OpMkdir:
			bop.Kind = fsapi.BatchCreate
			if op.Kind == OpMkdir {
				bop.Kind = fsapi.BatchMkdir
			}
			// The DFS backup copy keeps small-file data on the data
			// path, not in MDS metadata (same as the singleton path).
			st := op.Stat
			inlines[i] = st.Inline
			st.Inline = nil
			bop.Stat = st
		case OpSetStat:
			bop.Kind = fsapi.BatchSetStat
			bop.Stat = op.Stat
		case OpRemove:
			bop.Kind = fsapi.BatchRemove
			bop.IfExists = op.NetAbsent
		}
		bops[i] = bop
	}
	r.batchRPCs.Add(1)
	r.batchedOps.Add(int64(len(ops)))
	r.backendRPCs.Add(1)
	errs, done, err := backend.ApplyBatch(t, bops)
	*now = done
	if err != nil {
		// Transport-level failure: disposition unknown, fall back to
		// singleton application which re-runs each op with full logic.
		r.batchFallbacks.Add(1)
		for _, op := range ops {
			if r.applyOp(op, now, backend, cache, pending.ring) {
				pending.add(op, "resubmittable failure")
			}
		}
		return
	}
	for i, op := range ops {
		var retry bool
		switch op.Kind {
		case OpCreate, OpMkdir:
			retry = r.finishCreate(op, inlines[i], errs[i], now, backend, cache, pending.ring)
		case OpSetStat:
			retry = r.finishSetStat(op, errs[i], now, cache, pending.ring)
		case OpRemove:
			retry = r.finishRemoveResult(op, errs[i], now, cache, pending.ring)
		}
		if retry {
			pending.add(op, "resubmittable failure")
		}
	}
}

// retryPendingOnce sweeps the pending set once in arrival order. A
// still-failing op keeps every later same-path op parked for the rest of
// the sweep. When counted is true, failures consume the budget.
func (r *Region) retryPendingOnce(pending *pendingSet, now *vclock.Time, backend Backend, cache *memcache.Client, counted bool) {
	if len(pending.ops) == 0 {
		return
	}
	var blocked map[string]bool
	kept := pending.ops[:0]
	for _, p := range pending.ops {
		if blocked[p.op.Path] {
			kept = append(kept, p)
			continue
		}
		r.retries.Add(1)
		r.traceOp(pending.ring, p.op, obs.StageRetry, "")
		if retry := r.applyOp(p.op, now, backend, cache, pending.ring); retry {
			if counted {
				p.attempts++
				if p.attempts >= r.cfg.CommitRetryLimit {
					r.dropOp(p.op, now, cache, pending.ring, dropReasonRetryBudget)
					pending.release(p.op.Path)
					continue
				}
			}
			if blocked == nil {
				blocked = make(map[string]bool)
			}
			blocked[p.op.Path] = true
			kept = append(kept, p)
		} else {
			r.traceOp(pending.ring, p.op, obs.StageUnpark, "")
			pending.release(p.op.Path)
		}
	}
	pending.ops = kept
}

// drainPending retries until every pending op commits or exhausts its
// resubmission budget. Called before barrier arrival and at shutdown.
// An op's dependency (e.g. its parent's create) may live in another
// node's queue, so no-progress passes yield real time to the sibling
// commit processes instead of spinning.
//
// The resubmission budget is only charged on passes where the REGION
// made no progress since the previous pass: a pending op is waiting on
// a dependency (typically its parent's create) that may sit deep in a
// sibling node's queue, and as long as any commit process is still
// landing operations, that dependency may yet arrive. Batched dequeue
// makes this essential — a fast node reaches the barrier with its whole
// dependency frontier parked (a hundred ops is normal when the workload
// was enqueued up front) and sweeps it continuously; charging those
// sweeps would burn an op's 64 attempts in the milliseconds a loaded
// sibling needs to crawl through its queue. Termination is preserved:
// queues are finite, so region-wide progress eventually stops, and from
// then on every stalled pass sleeps and charges every pending op until
// the limit drops it. The stalled-pass sleep also matters for more than
// pacing: it yields the CPU (and the MDS/cache locks) to the very
// sibling whose progress would unblock us.
func (r *Region) drainPending(pending *pendingSet, now *vclock.Time, backend Backend, cache *memcache.Client) {
	progress := func() int64 {
		return r.committed.Load() + r.discarded.Load() + r.dropped.Load()
	}
	last := int64(-1)
	for len(pending.ops) > 0 {
		snap := progress()
		r.retryPendingOnce(pending, now, backend, cache, snap == last)
		last = snap
		if progress() == snap {
			time.Sleep(time.Millisecond)
		}
	}
}

// applyOp applies one operation; it returns true if the op failed in a
// resubmittable way. ring may be nil (observability disabled, tests).
func (r *Region) applyOp(op Op, now *vclock.Time, backend Backend, cache *memcache.Client, ring *obs.Ring) bool {
	if untag := r.commitTrace(op, backend, cache); untag != nil {
		defer untag()
	}
	t := vclock.Max(*now, op.Time)
	switch op.Kind {
	case OpCreate, OpMkdir:
		// Discard rule: creations inside a directory being removed are
		// dropped, and their cache entries cleaned (§III.D.1) — but only
		// this op's incarnation (seq match, CAS-guarded): a newer
		// incarnation created after the rmdir window closed is live
		// primary-copy metadata and must survive.
		if r.isRemoving(op.Path) {
			r.opDiscarded(ring, op)
			r.deleteIf(cache, &t, op.Path, memcache.CondSeq, op.Seq)
			*now = t
			return false
		}
		// The DFS backup copy keeps small-file data on the data path, not
		// in MDS metadata: strip the inline bytes and write them through
		// the normal file interface after the create lands.
		st := op.Stat
		inline := st.Inline
		st.Inline = nil
		r.backendRPCs.Add(1)
		done, err := backend.CreateWithStat(t, op.Path, st)
		*now = done
		return r.finishCreate(op, inline, err, now, backend, cache, ring)

	case OpRemove:
		r.backendRPCs.Add(1)
		done, err := backend.Remove(t, op.Path)
		*now = done
		return r.finishRemoveResult(op, err, now, cache, ring)

	case OpSetStat:
		var done vclock.Time
		var err error
		r.backendRPCs.Add(1)
		if len(op.Stat.Inline) > 0 {
			// Inline-data backup write: the file interface carries both
			// the bytes and the size update.
			done, err = backend.WriteAt(t, op.Path, 0, op.Stat.Inline)
		} else {
			done, err = backend.SetStat(t, op.Path, op.Stat)
		}
		*now = done
		return r.finishSetStat(op, err, now, cache, ring)
	}
	return false
}

// finishCreate handles a create/mkdir's backend result (shared by the
// singleton and batched paths); it returns true if the op must be
// resubmitted.
func (r *Region) finishCreate(op Op, inline []byte, err error, now *vclock.Time, backend Backend, cache *memcache.Client, ring *obs.Ring) bool {
	switch {
	case err == nil:
		r.opCommitted(ring, op)
		r.writebackInline(op.Path, inline, now, backend)
		r.writebackSpill(op.Path, now, backend)
		r.clearDirty(op, now, cache)
		return false
	case errors.Is(err, fsapi.ErrExist):
		// Three cases share this error. (1) The file was materialized
		// early by the large-file transition (§III.D.2) — that path
		// clears the dirty bit, so a clean live entry with our seq
		// means the DFS copy is ours: done. (2) The op is marked
		// create-after-rm: an earlier incarnation's remove is still
		// queued (possibly on another node) — our entry is still
		// dirty, the existing DFS file is doomed: resubmit until the
		// remove lands (independent commit reordering, §III.E.1).
		// (3) The op is NOT create-after-rm: no remove can be pending,
		// so the DFS object is this same path re-created after its
		// clean cache entry was evicted. Waiting would livelock until
		// the resubmission budget drops the op — adopt the object
		// instead, imposing the create's metadata on it.
		if v, ok := r.cacheLookup(op.Path, now, cache); ok && !v.removed {
			if v.seq != op.Seq || !v.dirty {
				r.opCommitted(ring, op)
				r.writebackSpill(op.Path, now, backend)
				r.clearDirty(op, now, cache)
				return false
			}
			if !op.AfterRm {
				st := op.Stat
				st.Inline = nil
				r.backendRPCs.Add(1)
				est, done, serr := backendStatFresh(backend, *now, op.Path)
				*now = done
				if serr != nil {
					return true // vanished underneath us: retry the create
				}
				if est.IsDir() != st.IsDir() {
					// A different kind of object holds the name; the
					// creation can never apply.
					r.dropOp(op, now, cache, ring, dropReasonKindConflict)
					return false
				}
				r.backendRPCs.Add(1)
				done, aerr := backend.SetStat(*now, op.Path, st)
				*now = done
				if aerr != nil {
					return true
				}
				r.opCommitted(ring, op)
				r.writebackInline(op.Path, inline, now, backend)
				r.writebackSpill(op.Path, now, backend)
				r.clearDirty(op, now, cache)
				return false
			}
		}
		return true
	case errors.Is(err, fsapi.ErrNotExist):
		// Parent not committed yet (possibly queued on another node).
		return true
	case errors.Is(err, fsapi.ErrClosed), errors.Is(err, fsapi.ErrStale):
		// Closed: an MDS shard is down — it will come back (or the
		// router falls back); Stale: a cross-shard protocol holds an
		// intent over this subtree and will release it. Both transient.
		return true
	default:
		r.dropOp(op, now, cache, ring, dropReasonBackendError)
		return false
	}
}

// finishRemoveResult handles a remove's backend result; it returns true
// if the op must be resubmitted.
func (r *Region) finishRemoveResult(op Op, err error, now *vclock.Time, cache *memcache.Client, ring *obs.Ring) bool {
	switch {
	case err == nil:
		r.opCommitted(ring, op)
		r.finishRemove(op, now, cache)
		return false
	case errors.Is(err, fsapi.ErrNotExist):
		if op.NetAbsent {
			// Net-absence remove: the folded create never reached the
			// DFS, so an absent path IS the committed state.
			r.opCommitted(ring, op)
			r.finishRemove(op, now, cache)
			return false
		}
		// The create this remove shadows may still be queued on
		// another node — resubmit; if it was discarded under an
		// rmdir, the retry limit cleans us up.
		if r.isRemoving(op.Path) {
			r.opDiscarded(ring, op)
			r.finishRemove(op, now, cache)
			return false
		}
		return true
	case errors.Is(err, fsapi.ErrClosed), errors.Is(err, fsapi.ErrStale):
		return true // shard down / intent-blocked: transient
	default:
		r.dropOp(op, now, cache, ring, dropReasonBackendError)
		return false
	}
}

// finishSetStat handles a setstat/inline-write backend result; it
// returns true if the op must be resubmitted.
func (r *Region) finishSetStat(op Op, err error, now *vclock.Time, cache *memcache.Client, ring *obs.Ring) bool {
	switch {
	case err == nil:
		r.opCommitted(ring, op)
		r.clearDirty(op, now, cache)
		return false
	case errors.Is(err, fsapi.ErrNotExist):
		if r.isRemoving(op.Path) {
			r.opDiscarded(ring, op)
			return false
		}
		return true // create still in flight
	case errors.Is(err, fsapi.ErrClosed), errors.Is(err, fsapi.ErrStale):
		return true // shard down / intent-blocked: transient
	default:
		r.dropOp(op, now, cache, ring, dropReasonBackendError)
		return false
	}
}

// condPred is the client-side equivalent of the cache server's
// conditional-op predicates, for the legacy read-then-delete loop.
func condPred(cond memcache.Cond, seq uint64) func(cacheVal) bool {
	switch cond {
	case memcache.CondSeq:
		return func(v cacheVal) bool { return v.seq == seq }
	case memcache.CondSeqRemoved:
		return func(v cacheVal) bool { return v.removed && v.seq == seq }
	default: // memcache.CondClean
		return func(v cacheVal) bool { return !v.dirty && !v.removed }
	}
}

// deleteIf deletes path's cache entry while cond holds for (seq, flags).
// The fast path is one server-side conditional delete: the server
// evaluates the predicate under its shard lock, so no CAS retry traffic
// exists at all. The legacy client-side loop (Get + CAS-guarded
// DeleteCAS, re-reading on conflict so an update racing between the read
// and the delete is never lost — §III.D.3 applied to deletion) is kept
// for the ClientSideCommitOps ablation and whenever a deleteHook is
// installed: the hook's purpose is to open that read/delete race window
// deterministically, which the server-side op does not have.
func (r *Region) deleteIf(cache *memcache.Client, now *vclock.Time, path string, cond memcache.Cond, seq uint64) error {
	if r.deleteHook.Load() == nil && !r.cfg.ClientSideCommitOps {
		r.cacheRPCs.Add(1)
		_, done, err := cache.DeleteIf(*now, path, cond, seq)
		*now = done
		if err != nil && !errors.Is(err, fsapi.ErrNotExist) {
			return err
		}
		return nil
	}
	pred := condPred(cond, seq)
	for {
		r.cacheRPCs.Add(1)
		item, done, err := cache.Get(*now, path)
		*now = done
		if err != nil {
			if errors.Is(err, fsapi.ErrNotExist) {
				return nil // nothing to delete
			}
			return err
		}
		v, derr := decodeCacheVal(item.Value)
		if derr != nil {
			return derr
		}
		if !pred(v) {
			return nil // the entry is no longer ours to delete
		}
		if h := r.deleteHook.Load(); h != nil {
			(*h)(path)
		}
		r.cacheRPCs.Add(1)
		done, err = cache.DeleteCAS(*now, path, item.CAS)
		*now = done
		switch {
		case err == nil || errors.Is(err, fsapi.ErrNotExist):
			return nil
		case errors.Is(err, fsapi.ErrStale):
			continue // concurrent update won; re-examine the new value
		default:
			return err
		}
	}
}

// dropOp abandons an operation. An abandoned creation's cache entry is
// the primary copy of metadata that will never reach the DFS (e.g. a
// create accepted in the closing instants of an rmdir window whose
// parent is gone): delete it — guarded by seq, so a newer incarnation
// survives — rather than leave a permanently dirty phantom. reason (one
// of the dropReason* constants) labels the per-reason counter and the
// drop trace event: dropped ops never record a commit lag, so the
// reasons are what keeps the histogram's silence interpretable.
func (r *Region) dropOp(op Op, now *vclock.Time, cache *memcache.Client, ring *obs.Ring, reason string) {
	r.dropped.Add(1)
	switch reason {
	case dropReasonRetryBudget:
		r.droppedRetry.Add(1)
	case dropReasonKindConflict:
		r.droppedConflict.Add(1)
	default:
		r.droppedBackend.Add(1)
	}
	r.opTerminal(op)
	r.traceOp(ring, op, obs.StageDrop, reason)
	r.spanDone(op, true)
	switch op.Kind {
	case OpCreate, OpMkdir:
		r.deleteIf(cache, now, op.Path, memcache.CondSeq, op.Seq)
	case OpRemove:
		// An abandoned remove's marker would otherwise sit dirty in the
		// cache forever; drop it (same guard as finishRemove) and let
		// reads fall through to whatever the DFS still holds.
		r.deleteIf(cache, now, op.Path, memcache.CondSeqRemoved, op.Seq)
	}
}

// backendStatFresh reads an authoritative stat, bypassing the
// backend's client-local lookup cache when it keeps one (see
// dfs.Client.StatFresh). Commit processes share long-lived backends
// whose dentry snapshots lag every asynchronous commit, so decisions
// about the current DFS state must never come from plain Stat.
func backendStatFresh(b Backend, at vclock.Time, p string) (fsapi.Stat, vclock.Time, error) {
	if f, ok := b.(interface {
		StatFresh(vclock.Time, string) (fsapi.Stat, vclock.Time, error)
	}); ok {
		return f.StatFresh(at, p)
	}
	return b.Stat(at, p)
}

// cacheLookup fetches and decodes a cache value.
func (r *Region) cacheLookup(path string, now *vclock.Time, cache *memcache.Client) (cacheVal, bool) {
	r.cacheRPCs.Add(1)
	item, done, err := cache.Get(*now, path)
	*now = done
	if err != nil {
		return cacheVal{}, false
	}
	v, derr := decodeCacheVal(item.Value)
	if derr != nil {
		return cacheVal{}, false
	}
	return v, true
}

// clearDirty clears the dirty flag for the op's seq: the backup copy now
// matches this version. A newer seq means another mutation is in flight
// and its own commit will clear the flag. The fast path is one
// server-side conditional op; the legacy Get + CAS loop remains for the
// ClientSideCommitOps ablation.
func (r *Region) clearDirty(op Op, now *vclock.Time, cache *memcache.Client) {
	if !r.cfg.ClientSideCommitOps {
		r.cacheRPCs.Add(1)
		_, done, _ := cache.ClearDirty(*now, op.Path, op.Seq)
		*now = done
		return
	}
	for {
		r.cacheRPCs.Add(1)
		item, done, err := cache.Get(*now, op.Path)
		*now = done
		if err != nil {
			return // evicted or removed concurrently
		}
		v, derr := decodeCacheVal(item.Value)
		if derr != nil || v.seq != op.Seq {
			return
		}
		v.dirty = false
		r.cacheRPCs.Add(1)
		_, done, err = cache.CAS(*now, op.Path, v.encode(), 0, item.CAS)
		*now = done
		if err == nil || !errors.Is(err, fsapi.ErrStale) {
			return
		}
	}
}

// finishRemove deletes the removed marker from the cache once the remove
// committed ("their cached metadata are deleted after the operations are
// committed", §III.D.1) — unless a newer incarnation replaced it. The
// delete is guarded: a create-after-rm racing between our read and
// our delete must not have its fresh entry destroyed.
func (r *Region) finishRemove(op Op, now *vclock.Time, cache *memcache.Client) {
	r.deleteIf(cache, now, op.Path, memcache.CondSeqRemoved, op.Seq)
}

// writebackInline writes a newly created small file's bytes to the DFS.
func (r *Region) writebackInline(path string, inline []byte, now *vclock.Time, backend Backend) {
	if len(inline) == 0 {
		return
	}
	r.backendRPCs.Add(1)
	done, err := backend.WriteAt(*now, path, 0, inline)
	*now = done
	if err != nil {
		r.dropped.Add(1)
	}
}

// writebackSpill writes fsync-spilled inline data to the DFS after the
// file's create committed (§III.D.2).
func (r *Region) writebackSpill(path string, now *vclock.Time, backend Backend) {
	data, ok := r.spillTake(path)
	if !ok {
		return
	}
	r.backendRPCs.Add(1)
	done, err := backend.WriteAt(*now, path, 0, data)
	*now = done
	if err != nil {
		r.dropped.Add(1)
	}
}
