package core

import (
	"errors"
	"time"

	"pacon/internal/fsapi"
	"pacon/internal/memcache"
	"pacon/internal/rpc"
	"pacon/internal/vclock"
)

// pendingOp is a failed non-dependent commit awaiting resubmission
// (§III.E.1: "we only need to resubmit the operation until it succeeds").
type pendingOp struct {
	op       Op
	attempts int
}

// pendingSet keeps failed ops in arrival order plus a per-path count so
// later same-path ops can be held back.
type pendingSet struct {
	ops   []pendingOp
	paths map[string]int
}

func (p *pendingSet) add(op Op) {
	if p.paths == nil {
		p.paths = make(map[string]int)
	}
	p.ops = append(p.ops, pendingOp{op: op})
	p.paths[op.Path]++
}

// release drops one reference to a parked path, deleting the key when it
// reaches zero so the map does not grow with every path that ever parked
// over a long-running commit loop.
func (p *pendingSet) release(path string) {
	if n := p.paths[path] - 1; n > 0 {
		p.paths[path] = n
	} else {
		delete(p.paths, path)
	}
}

func (p *pendingSet) blocks(path string) bool { return p.paths[path] > 0 }

// commitLoop is one node's commit process: the subscriber of the node's
// commit queue. It applies operations to the DFS through the node's own
// backend client, participates in barrier epochs, and maintains the
// cache's dirty/removed bookkeeping.
//
// Resubmission policy: a failed op parks in the pending set while
// *other-path* ops continue — that is what converges creations enqueued
// before their parents (cross-queue dependencies, or applications that
// disabled the parent check). Same-path ops never overtake a parked one:
// reordering a create → rm → create chain can commit the re-creation
// first and then let the retried remove delete the wrong incarnation.
// Per-queue per-path FIFO is exactly the order the paper's §III.E
// argument presumes.
func (r *Region) commitLoop(node string, backend Backend) {
	q := r.queues[node]
	cache := memcache.NewClient(rpc.NewCaller(r.deps.Bus, r.cfg.Model, node), r.ring)
	var now vclock.Time
	var pending pendingSet

	for {
		op, isBarrier, epoch, ok := q.Pop()
		if !ok {
			// Queue closed: push out whatever can still commit.
			r.drainPending(&pending, &now, backend, cache)
			return
		}
		if isBarrier {
			// Everything before the marker must reach the DFS before we
			// report arrival (§III.E.2).
			r.drainPending(&pending, &now, backend, cache)
			r.barrier.Arrive(epoch, now)
			rel, err := r.barrier.AwaitRelease(epoch)
			if err != nil {
				return
			}
			now = vclock.Max(now, rel)
			continue
		}
		if pending.blocks(op.Path) {
			pending.add(op) // preserve per-path order behind the parked op
		} else if r.applyOp(op, &now, backend, cache) {
			pending.add(op)
		}
		// Opportunistic pass: earlier failures often just needed a
		// sibling queue to commit a parent. Uncounted — only forced
		// drains consume the resubmission budget.
		r.retryPendingOnce(&pending, &now, backend, cache, false)
	}
}

// retryPendingOnce sweeps the pending set once in arrival order. A
// still-failing op keeps every later same-path op parked for the rest of
// the sweep. When counted is true, failures consume the budget.
func (r *Region) retryPendingOnce(pending *pendingSet, now *vclock.Time, backend Backend, cache *memcache.Client, counted bool) {
	if len(pending.ops) == 0 {
		return
	}
	var blocked map[string]bool
	kept := pending.ops[:0]
	for _, p := range pending.ops {
		if blocked[p.op.Path] {
			kept = append(kept, p)
			continue
		}
		r.retries.Add(1)
		if retry := r.applyOp(p.op, now, backend, cache); retry {
			if counted {
				p.attempts++
				if p.attempts >= r.cfg.CommitRetryLimit {
					r.dropOp(p.op, now, cache)
					pending.release(p.op.Path)
					continue
				}
			}
			if blocked == nil {
				blocked = make(map[string]bool)
			}
			blocked[p.op.Path] = true
			kept = append(kept, p)
		} else {
			pending.release(p.op.Path)
		}
	}
	pending.ops = kept
}

// drainPending retries until every pending op commits or exhausts its
// resubmission budget. Called before barrier arrival and at shutdown.
// An op's dependency (e.g. its parent's create) may live in another
// node's queue, so no-progress passes yield real time to the sibling
// commit processes instead of spinning.
func (r *Region) drainPending(pending *pendingSet, now *vclock.Time, backend Backend, cache *memcache.Client) {
	for len(pending.ops) > 0 {
		before := len(pending.ops)
		r.retryPendingOnce(pending, now, backend, cache, true)
		if len(pending.ops) == before {
			time.Sleep(200 * time.Microsecond)
		}
	}
}

// applyOp applies one operation; it returns true if the op failed in a
// resubmittable way.
func (r *Region) applyOp(op Op, now *vclock.Time, backend Backend, cache *memcache.Client) bool {
	t := vclock.Max(*now, op.Time)
	switch op.Kind {
	case OpCreate, OpMkdir:
		// Discard rule: creations inside a directory being removed are
		// dropped, and their cache entries cleaned (§III.D.1) — but only
		// this op's incarnation (seq match, CAS-guarded): a newer
		// incarnation created after the rmdir window closed is live
		// primary-copy metadata and must survive.
		if r.isRemoving(op.Path) {
			r.discarded.Add(1)
			r.deleteIf(cache, &t, op.Path, func(v cacheVal) bool { return v.seq == op.Seq })
			*now = t
			return false
		}
		// The DFS backup copy keeps small-file data on the data path, not
		// in MDS metadata: strip the inline bytes and write them through
		// the normal file interface after the create lands.
		st := op.Stat
		inline := st.Inline
		st.Inline = nil
		done, err := backend.CreateWithStat(t, op.Path, st)
		*now = done
		switch {
		case err == nil:
			r.committed.Add(1)
			r.writebackInline(op.Path, inline, now, backend)
			r.writebackSpill(op.Path, now, backend)
			r.clearDirty(op, now, cache)
			return false
		case errors.Is(err, fsapi.ErrExist):
			// Three cases share this error. (1) The file was materialized
			// early by the large-file transition (§III.D.2) — that path
			// clears the dirty bit, so a clean live entry with our seq
			// means the DFS copy is ours: done. (2) The op is marked
			// create-after-rm: an earlier incarnation's remove is still
			// queued (possibly on another node) — our entry is still
			// dirty, the existing DFS file is doomed: resubmit until the
			// remove lands (independent commit reordering, §III.E.1).
			// (3) The op is NOT create-after-rm: no remove can be pending,
			// so the DFS object is this same path re-created after its
			// clean cache entry was evicted. Waiting would livelock until
			// the resubmission budget drops the op — adopt the object
			// instead, imposing the create's metadata on it.
			if v, ok := r.cacheLookup(op.Path, now, cache); ok && !v.removed {
				if v.seq != op.Seq || !v.dirty {
					r.committed.Add(1)
					r.writebackSpill(op.Path, now, backend)
					r.clearDirty(op, now, cache)
					return false
				}
				if !op.AfterRm {
					est, done, serr := backendStatFresh(backend, *now, op.Path)
					*now = done
					if serr != nil {
						return true // vanished underneath us: retry the create
					}
					if est.IsDir() != st.IsDir() {
						// A different kind of object holds the name; the
						// creation can never apply.
						r.dropOp(op, now, cache)
						return false
					}
					done, aerr := backend.SetStat(*now, op.Path, st)
					*now = done
					if aerr != nil {
						return true
					}
					r.committed.Add(1)
					r.writebackInline(op.Path, inline, now, backend)
					r.writebackSpill(op.Path, now, backend)
					r.clearDirty(op, now, cache)
					return false
				}
			}
			return true
		case errors.Is(err, fsapi.ErrNotExist):
			// Parent not committed yet (possibly queued on another node).
			return true
		default:
			r.dropOp(op, now, cache)
			return false
		}

	case OpRemove:
		done, err := backend.Remove(t, op.Path)
		*now = done
		switch {
		case err == nil:
			r.committed.Add(1)
			r.finishRemove(op, now, cache)
			return false
		case errors.Is(err, fsapi.ErrNotExist):
			// The create this remove shadows may still be queued on
			// another node — resubmit; if it was discarded under an
			// rmdir, the retry limit cleans us up.
			if r.isRemoving(op.Path) {
				r.discarded.Add(1)
				r.finishRemove(op, now, cache)
				return false
			}
			return true
		default:
			r.dropOp(op, now, cache)
			return false
		}

	case OpSetStat:
		var done vclock.Time
		var err error
		if len(op.Stat.Inline) > 0 {
			// Inline-data backup write: the file interface carries both
			// the bytes and the size update.
			done, err = backend.WriteAt(t, op.Path, 0, op.Stat.Inline)
		} else {
			done, err = backend.SetStat(t, op.Path, op.Stat)
		}
		*now = done
		switch {
		case err == nil:
			r.committed.Add(1)
			r.clearDirty(op, now, cache)
			return false
		case errors.Is(err, fsapi.ErrNotExist):
			if r.isRemoving(op.Path) {
				r.discarded.Add(1)
				return false
			}
			return true // create still in flight
		default:
			r.dropOp(op, now, cache)
			return false
		}
	}
	return false
}

// deleteIf deletes path's cache entry while pred holds, re-reading on a
// CAS conflict so an update racing between the read and the delete is
// never lost (§III.D.3's retry discipline applied to deletion). The
// distinction matters because a cache entry can be the primary copy:
// deciding on a stale read and then deleting unconditionally silently
// destroys whatever a concurrent writer stored in between.
func (r *Region) deleteIf(cache *memcache.Client, now *vclock.Time, path string, pred func(cacheVal) bool) error {
	for {
		item, done, err := cache.Get(*now, path)
		*now = done
		if err != nil {
			if errors.Is(err, fsapi.ErrNotExist) {
				return nil // nothing to delete
			}
			return err
		}
		v, derr := decodeCacheVal(item.Value)
		if derr != nil {
			return derr
		}
		if !pred(v) {
			return nil // the entry is no longer ours to delete
		}
		if h := r.deleteHook.Load(); h != nil {
			(*h)(path)
		}
		done, err = cache.DeleteCAS(*now, path, item.CAS)
		*now = done
		switch {
		case err == nil || errors.Is(err, fsapi.ErrNotExist):
			return nil
		case errors.Is(err, fsapi.ErrStale):
			continue // concurrent update won; re-examine the new value
		default:
			return err
		}
	}
}

// dropOp abandons an operation. An abandoned creation's cache entry is
// the primary copy of metadata that will never reach the DFS (e.g. a
// create accepted in the closing instants of an rmdir window whose
// parent is gone): delete it — CAS-guarded by seq, so a newer
// incarnation survives — rather than leave a permanently dirty phantom.
func (r *Region) dropOp(op Op, now *vclock.Time, cache *memcache.Client) {
	r.dropped.Add(1)
	switch op.Kind {
	case OpCreate, OpMkdir:
		r.deleteIf(cache, now, op.Path, func(v cacheVal) bool { return v.seq == op.Seq })
	case OpRemove:
		// An abandoned remove's marker would otherwise sit dirty in the
		// cache forever; drop it (same guard as finishRemove) and let
		// reads fall through to whatever the DFS still holds.
		r.deleteIf(cache, now, op.Path, func(v cacheVal) bool { return v.removed && v.seq == op.Seq })
	}
}

// backendStatFresh reads an authoritative stat, bypassing the
// backend's client-local lookup cache when it keeps one (see
// dfs.Client.StatFresh). Commit processes share long-lived backends
// whose dentry snapshots lag every asynchronous commit, so decisions
// about the current DFS state must never come from plain Stat.
func backendStatFresh(b Backend, at vclock.Time, p string) (fsapi.Stat, vclock.Time, error) {
	if f, ok := b.(interface {
		StatFresh(vclock.Time, string) (fsapi.Stat, vclock.Time, error)
	}); ok {
		return f.StatFresh(at, p)
	}
	return b.Stat(at, p)
}

// cacheLookup fetches and decodes a cache value.
func (r *Region) cacheLookup(path string, now *vclock.Time, cache *memcache.Client) (cacheVal, bool) {
	item, done, err := cache.Get(*now, path)
	*now = done
	if err != nil {
		return cacheVal{}, false
	}
	v, derr := decodeCacheVal(item.Value)
	if derr != nil {
		return cacheVal{}, false
	}
	return v, true
}

// clearDirty clears the dirty flag for the op's seq: the backup copy now
// matches this version. A newer seq means another mutation is in flight
// and its own commit will clear the flag.
func (r *Region) clearDirty(op Op, now *vclock.Time, cache *memcache.Client) {
	for {
		item, done, err := cache.Get(*now, op.Path)
		*now = done
		if err != nil {
			return // evicted or removed concurrently
		}
		v, derr := decodeCacheVal(item.Value)
		if derr != nil || v.seq != op.Seq {
			return
		}
		v.dirty = false
		_, done, err = cache.CAS(*now, op.Path, v.encode(), 0, item.CAS)
		*now = done
		if err == nil || !errors.Is(err, fsapi.ErrStale) {
			return
		}
	}
}

// finishRemove deletes the removed marker from the cache once the remove
// committed ("their cached metadata are deleted after the operations are
// committed", §III.D.1) — unless a newer incarnation replaced it. The
// delete is CAS-guarded: a create-after-rm racing between our read and
// our delete must not have its fresh entry destroyed.
func (r *Region) finishRemove(op Op, now *vclock.Time, cache *memcache.Client) {
	r.deleteIf(cache, now, op.Path, func(v cacheVal) bool { return v.removed && v.seq == op.Seq })
}

// writebackInline writes a newly created small file's bytes to the DFS.
func (r *Region) writebackInline(path string, inline []byte, now *vclock.Time, backend Backend) {
	if len(inline) == 0 {
		return
	}
	done, err := backend.WriteAt(*now, path, 0, inline)
	*now = done
	if err != nil {
		r.dropped.Add(1)
	}
}

// writebackSpill writes fsync-spilled inline data to the DFS after the
// file's create committed (§III.D.2).
func (r *Region) writebackSpill(path string, now *vclock.Time, backend Backend) {
	data, ok := r.spillTake(path)
	if !ok {
		return
	}
	done, err := backend.WriteAt(*now, path, 0, data)
	*now = done
	if err != nil {
		r.dropped.Add(1)
	}
}
