package vclock

import "time"

// LatencyModel is the single calibration block for the virtual-time
// simulation (DESIGN.md §5). It stands in for the paper's TIANHE-II
// testbed: an InfiniBand-class interconnect, a BeeGFS MDS on an Intel
// P3600 NVMe SSD, IndexFS servers backed by LevelDB, and a memcached
// cluster co-located with the clients.
//
// The defaults were calibrated once so the paper's *ratios* hold (see
// EXPERIMENTS.md); every field is an ordinary value so ablation benches
// can sweep them.
type LatencyModel struct {
	// SameNodeRTT is the round trip between a client and a service on the
	// same node (loopback / IPC).
	SameNodeRTT Duration
	// CrossNodeRTT is the round trip between different nodes on the
	// IB-like fabric.
	CrossNodeRTT Duration
	// PerKB is the extra transfer time per KiB of payload on the wire.
	PerKB Duration

	// MDSReadCost is the service time of a read-only metadata op (lookup,
	// stat, readdir base) on the centralized MDS.
	MDSReadCost Duration
	// MDSWriteCost is the service time of a mutating metadata op (create,
	// mkdir, unlink, rmdir) on the MDS — it includes the NVMe journal
	// append, so it is several times the read cost.
	MDSWriteCost Duration
	// MDSLookupDepthCost is the extra per-component service time for a
	// lookup at path depth i (i × this): deeper dentries are colder in
	// the MDS-local file system, which is what makes the paper's Fig 2
	// loss super-linear in depth.
	MDSLookupDepthCost Duration
	// MDSReaddirEntryCost is the per-entry cost of a directory listing.
	MDSReaddirEntryCost Duration
	// MDSWorkers is the MDS service pool width.
	MDSWorkers int

	// DataChunkCost is the base service time for a data-server chunk op;
	// DataPerKB adds the per-KiB device cost.
	DataChunkCost Duration
	DataPerKB     Duration
	// DataWorkers is the per-data-server service pool width.
	DataWorkers int

	// LSMPutCost is the service time of an IndexFS-server insert (WAL
	// append without per-op fsync + memtable).
	LSMPutCost Duration
	// LSMGetHitCost is a positive point lookup: bloom pass + data-block
	// read from the LevelDB-like store.
	LSMGetHitCost Duration
	// LSMGetMissCost is a negative lookup filtered by the blooms (the
	// common case of create's existence check).
	LSMGetMissCost Duration
	// LSMScanEntryCost is the per-entry cost of an IndexFS prefix scan.
	LSMScanEntryCost Duration
	// PartitionCost is the per-directory-partition critical section an
	// insert holds (dirent-block update + GIGA+ split bookkeeping). One
	// directory has one partition per server, so a single hot directory
	// caps at servers/PartitionCost inserts per second — the contention
	// that separates the paper's single-application create numbers (Fig
	// 7) from the multi-application ones (Fig 8).
	PartitionCost Duration
	// IndexFSWorkers is the per-IndexFS-server pool width.
	IndexFSWorkers int

	// CacheOpCost is the service time of one memcached-like op (get, set,
	// cas, delete) on a Pacon distributed-cache server.
	CacheOpCost Duration
	// CacheWorkers is the per-cache-server pool width.
	CacheWorkers int

	// QueuePushCost is the client-side cost of publishing one operation
	// message into the commit queue (the paper uses ZeroMQ IPC).
	QueuePushCost Duration
	// ClientOverhead is the per-op client-side marshaling/bookkeeping
	// cost charged by every system's client library.
	ClientOverhead Duration
}

// Default returns the calibrated model. See EXPERIMENTS.md for the
// resulting paper-vs-measured ratios.
func Default() LatencyModel {
	return LatencyModel{
		SameNodeRTT:  8 * time.Microsecond,
		CrossNodeRTT: 80 * time.Microsecond,
		PerKB:        250 * time.Nanosecond,

		MDSReadCost:         5 * time.Microsecond,
		MDSWriteCost:        120 * time.Microsecond,
		MDSLookupDepthCost:  5 * time.Microsecond,
		MDSReaddirEntryCost: 300 * time.Nanosecond,
		MDSWorkers:          4,

		DataChunkCost: 60 * time.Microsecond,
		DataPerKB:     3 * time.Microsecond,
		DataWorkers:   8,

		LSMPutCost:       25 * time.Microsecond,
		LSMGetHitCost:    60 * time.Microsecond,
		LSMGetMissCost:   5 * time.Microsecond,
		LSMScanEntryCost: 500 * time.Nanosecond,
		PartitionCost:    55 * time.Microsecond,
		IndexFSWorkers:   4,

		CacheOpCost:  4 * time.Microsecond,
		CacheWorkers: 8,

		QueuePushCost:  28 * time.Microsecond,
		ClientOverhead: 8 * time.Microsecond,
	}
}

// RTT returns the round trip for a hop that is or is not node-local.
func (m LatencyModel) RTT(sameNode bool) Duration {
	if sameNode {
		return m.SameNodeRTT
	}
	return m.CrossNodeRTT
}

// OneWay returns half the RTT for the hop.
func (m LatencyModel) OneWay(sameNode bool) Duration { return m.RTT(sameNode) / 2 }

// Transfer returns the payload-size-dependent wire cost.
func (m LatencyModel) Transfer(bytes int) Duration {
	if bytes <= 0 {
		return 0
	}
	return Duration(int64(m.PerKB) * int64(bytes) / 1024)
}
