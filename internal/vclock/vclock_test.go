package vclock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	var t0 Time
	t1 := t0.Add(5 * time.Microsecond)
	if got := t1.Sub(t0); got != 5*time.Microsecond {
		t.Fatalf("Sub = %v, want 5µs", got)
	}
	if Max(t0, t1) != t1 || Max(t1, t0) != t1 {
		t.Fatalf("Max wrong")
	}
}

func TestResourceSingleWorkerSerializes(t *testing.T) {
	r := NewResource("mds", 1)
	// Two requests arriving at the same instant must be served back to back.
	d1 := r.Acquire(0, 10*time.Microsecond)
	d2 := r.Acquire(0, 10*time.Microsecond)
	if d1 != Time(10*time.Microsecond) {
		t.Fatalf("first completion = %v", d1)
	}
	if d2 != Time(20*time.Microsecond) {
		t.Fatalf("second completion = %v, want serialized after first", d2)
	}
}

func TestResourceIdleGap(t *testing.T) {
	r := NewResource("mds", 1)
	r.Acquire(0, 10*time.Microsecond)
	// A request arriving after the resource went idle starts immediately.
	d := r.Acquire(Time(100*time.Microsecond), 10*time.Microsecond)
	if d != Time(110*time.Microsecond) {
		t.Fatalf("completion = %v, want 110µs", d)
	}
}

func TestResourceParallelWorkers(t *testing.T) {
	r := NewResource("mds", 2)
	d1 := r.Acquire(0, 10*time.Microsecond)
	d2 := r.Acquire(0, 10*time.Microsecond)
	d3 := r.Acquire(0, 10*time.Microsecond)
	if d1 != Time(10*time.Microsecond) || d2 != Time(10*time.Microsecond) {
		t.Fatalf("two workers should serve two requests in parallel: %v %v", d1, d2)
	}
	if d3 != Time(20*time.Microsecond) {
		t.Fatalf("third request should queue: %v", d3)
	}
}

func TestResourceZeroCost(t *testing.T) {
	r := NewResource("x", 1)
	if d := r.Acquire(Time(5), 0); d != Time(5) {
		t.Fatalf("zero-cost acquire = %v, want arrival time", d)
	}
}

func TestResourceNegativeCostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative cost")
		}
	}()
	NewResource("x", 1).Acquire(0, -time.Nanosecond)
}

func TestNewResourceValidatesWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on k=0")
		}
	}()
	NewResource("x", 0)
}

func TestResourceStats(t *testing.T) {
	r := NewResource("mds", 2)
	r.Acquire(0, 10*time.Microsecond)
	r.Acquire(0, 30*time.Microsecond)
	if r.Ops() != 2 {
		t.Fatalf("ops = %d", r.Ops())
	}
	if r.BusyTime() != 40*time.Microsecond {
		t.Fatalf("busy = %v", r.BusyTime())
	}
	if r.LastCompletion() != Time(30*time.Microsecond) {
		t.Fatalf("last = %v", r.LastCompletion())
	}
	// 40µs busy over 2 workers × 40µs horizon = 0.5 utilization.
	if u := r.Utilization(40 * time.Microsecond); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v", u)
	}
	r.Reset()
	if r.Ops() != 0 || r.BusyTime() != 0 || r.LastCompletion() != 0 {
		t.Fatal("reset did not clear stats")
	}
}

// The M/D/k property the experiments rely on: with k workers and fixed
// service time s, n simultaneous arrivals complete at ceil(n/k)*s.
func TestResourceSaturationThroughput(t *testing.T) {
	const (
		k = 4
		n = 1000
		s = 55 * time.Microsecond
	)
	r := NewResource("mds", k)
	var last Time
	for i := 0; i < n; i++ {
		last = Max(last, r.Acquire(0, s))
	}
	want := Time(time.Duration((n+k-1)/k) * s)
	if last != want {
		t.Fatalf("horizon = %v, want %v", last, want)
	}
}

func TestResourceConcurrentAcquire(t *testing.T) {
	const (
		workers = 3
		goros   = 16
		per     = 200
		cost    = time.Microsecond
	)
	r := NewResource("mds", workers)
	var wg sync.WaitGroup
	var wm Watermark
	for g := 0; g < goros; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				wm.Observe(r.Acquire(0, cost))
			}
		}()
	}
	wg.Wait()
	if r.Ops() != goros*per {
		t.Fatalf("ops = %d", r.Ops())
	}
	// Total busy time is exact regardless of interleaving.
	if r.BusyTime() != time.Duration(goros*per)*cost {
		t.Fatalf("busy = %v", r.BusyTime())
	}
	// The horizon is exactly busy/workers: all arrivals at t=0 keep every
	// worker busy until the end.
	want := Time(time.Duration(goros*per/workers) * cost)
	if got := wm.Load(); got != want && got != want+Time(cost) {
		t.Fatalf("watermark = %v, want ~%v", got, want)
	}
}

func TestWatermark(t *testing.T) {
	var w Watermark
	w.Observe(Time(5))
	w.Observe(Time(3))
	if w.Load() != Time(5) {
		t.Fatalf("watermark = %v", w.Load())
	}
	w.Reset()
	if w.Load() != 0 {
		t.Fatal("reset failed")
	}
}

// Property: completion time is never before arrival + cost, and never
// before a previous completion minus what parallelism allows.
func TestResourceAcquireMonotoneProperty(t *testing.T) {
	f := func(arrivals []uint16, costs []uint16) bool {
		r := NewResource("p", 2)
		n := len(arrivals)
		if len(costs) < n {
			n = len(costs)
		}
		for i := 0; i < n; i++ {
			at := Time(arrivals[i])
			cost := Duration(costs[i])
			done := r.Acquire(at, cost)
			if done < at.Add(cost) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyModelDefaults(t *testing.T) {
	m := Default()
	if m.CrossNodeRTT <= m.SameNodeRTT {
		t.Fatal("cross-node RTT must exceed same-node RTT")
	}
	if m.MDSWriteCost <= m.MDSReadCost {
		t.Fatal("MDS writes must cost more than reads (journal append)")
	}
	if m.CacheOpCost >= m.LSMGetHitCost {
		t.Fatal("in-memory cache op must be cheaper than on-disk LSM get")
	}
	if m.RTT(true) != m.SameNodeRTT || m.RTT(false) != m.CrossNodeRTT {
		t.Fatal("RTT selection wrong")
	}
	if m.OneWay(false) != m.CrossNodeRTT/2 {
		t.Fatal("OneWay wrong")
	}
}

func TestLatencyModelTransfer(t *testing.T) {
	m := Default()
	if m.Transfer(0) != 0 || m.Transfer(-5) != 0 {
		t.Fatal("non-positive sizes must be free")
	}
	if m.Transfer(2048) != 2*m.PerKB {
		t.Fatalf("2KiB transfer = %v, want %v", m.Transfer(2048), 2*m.PerKB)
	}
}
