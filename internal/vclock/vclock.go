// Package vclock implements the virtual-time methodology described in
// DESIGN.md §5. Every service in this repository executes real code (real
// maps, real LSM writes, real CAS races); only *time* is modeled. A
// request carries a virtual timestamp, contended services are modeled as
// Resources with k worker slots, and throughput is computed from virtual
// completion times. This reproduces the paper's latency-driven results
// (MDS saturation, path-traversal cost, cache-absorbed writes)
// deterministically and at laptop speed.
package vclock

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of a run.
type Time int64

// Duration re-exports time.Duration so callers need only this package for
// virtual-time arithmetic.
type Duration = time.Duration

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Max returns the later of two times.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// String renders the time as a duration since run start.
func (t Time) String() string { return Duration(t).String() }

// Resource models a contended service station with k parallel workers —
// e.g. the BeeGFS MDS worker pool or an LSM store's WAL device. Acquire
// serializes requests through the k slots using next-free accounting,
// which is an M/D/k-style queueing surrogate: when arrival rate exceeds
// k/cost the resource saturates and response times grow, exactly where
// the paper's centralized metadata service saturates.
//
// Resource is safe for concurrent use.
type Resource struct {
	name string

	mu      sync.Mutex
	workers []Time // next-free virtual time per worker slot

	ops  atomic.Int64
	busy atomic.Int64 // accumulated busy nanoseconds across workers
	wait atomic.Int64 // accumulated queueing delay (start - arrival)
	last atomic.Int64 // latest completion time observed (Time)
}

// NewResource creates a resource with k worker slots. k must be >= 1.
func NewResource(name string, k int) *Resource {
	if k < 1 {
		panic(fmt.Sprintf("vclock: resource %q needs k >= 1, got %d", name, k))
	}
	return &Resource{name: name, workers: make([]Time, k)}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Workers returns the number of worker slots.
func (r *Resource) Workers() int { return len(r.workers) }

// Acquire schedules a request arriving at virtual time `at` with service
// cost `cost` on a worker slot and returns its completion time.
// Zero-cost acquisitions still pass through the queue (they model a
// request that must be ordered but is free to serve).
//
// Placement is best-fit: among workers already idle at the arrival time
// the one with the LATEST frontier wins, so a request arriving far in
// the virtual future (e.g. from a backlogged background commit process)
// occupies the worker closest to its own time instead of lifting the
// minimum frontier that present-time requests depend on. Only when no
// worker is idle at the arrival does the request queue on the earliest-
// free worker (the M/D/k case).
func (r *Resource) Acquire(at Time, cost Duration) Time {
	if cost < 0 {
		panic(fmt.Sprintf("vclock: negative cost %v on resource %q", cost, r.name))
	}
	r.mu.Lock()
	bestIdle := -1 // max nextFree among workers with nextFree <= at
	bestBusy := 0  // min nextFree overall
	for i := 0; i < len(r.workers); i++ {
		w := r.workers[i]
		if w <= at && (bestIdle < 0 || w > r.workers[bestIdle]) {
			bestIdle = i
		}
		if w < r.workers[bestBusy] {
			bestBusy = i
		}
	}
	pick := bestBusy
	if bestIdle >= 0 {
		pick = bestIdle
	}
	start := Max(at, r.workers[pick])
	done := start.Add(cost)
	r.workers[pick] = done
	r.mu.Unlock()

	r.ops.Add(1)
	r.busy.Add(int64(cost))
	if start > at {
		r.wait.Add(int64(start - at))
	}
	observeMax(&r.last, int64(done))
	return done
}

// Ops returns the number of acquisitions served.
func (r *Resource) Ops() int64 { return r.ops.Load() }

// BusyTime returns the total virtual busy time accumulated across workers.
func (r *Resource) BusyTime() Duration { return Duration(r.busy.Load()) }

// QueueWait returns the total virtual time requests spent queued for a
// worker slot (arrival to service start, summed over acquisitions) —
// the M/D/k waiting-time tally the station accumulates past saturation.
func (r *Resource) QueueWait() Duration { return Duration(r.wait.Load()) }

// LastCompletion returns the latest completion time handed out.
func (r *Resource) LastCompletion() Time { return Time(r.last.Load()) }

// Utilization reports busy-time divided by (workers × horizon). A value
// near 1.0 means the resource is the run's bottleneck.
func (r *Resource) Utilization(horizon Duration) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(r.BusyTime()) / (float64(horizon) * float64(len(r.workers)))
}

// Reset clears the resource's schedule and counters between runs.
func (r *Resource) Reset() {
	r.mu.Lock()
	for i := range r.workers {
		r.workers[i] = 0
	}
	r.mu.Unlock()
	r.ops.Store(0)
	r.busy.Store(0)
	r.wait.Store(0)
	r.last.Store(0)
}

// Watermark tracks the maximum virtual time observed across concurrent
// actors; the bench harness uses it as a run's completion horizon.
type Watermark struct{ v atomic.Int64 }

// Observe folds t into the watermark.
func (w *Watermark) Observe(t Time) { observeMax(&w.v, int64(t)) }

// Load returns the maximum observed time.
func (w *Watermark) Load() Time { return Time(w.v.Load()) }

// Reset clears the watermark.
func (w *Watermark) Reset() { w.v.Store(0) }

func observeMax(dst *atomic.Int64, v int64) {
	for {
		cur := dst.Load()
		if v <= cur || dst.CompareAndSwap(cur, v) {
			return
		}
	}
}
