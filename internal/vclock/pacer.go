package vclock

import (
	"sync"
	"time"
)

// Pacer keeps a group of concurrent simulated clients within a bounded
// virtual-time window of each other — the conservative time-window
// synchronization used by parallel discrete-event simulators.
//
// Why it exists: Resource uses next-free accounting, which is exact only
// when requests arrive in (approximately) nondecreasing virtual-time
// order. Goroutine scheduling gives no such guarantee — one client can
// race far ahead in real time, pushing the resource's schedule into the
// virtual future, and a late-started client arriving at virtual t=0 then
// queues behind history that never overlapped it. The Pacer bounds that
// skew: before issuing an operation a client calls Advance with its
// clock and blocks until the slowest participant is within Window, so
// arrival order is correct to within the window and the queueing model
// stays accurate (measured: utilization error < 1% at windows up to
// ~100µs against an exact-order simulation).
//
// Usage per simulated client, with id in [0, n):
//
//	pacer.Advance(id, now) // may block
//	now = op(now)
//	...
//	pacer.Done(id) // on exit, or it stalls the others
type Pacer struct {
	window Duration

	mu    sync.Mutex
	cond  *sync.Cond
	times []Time
	alive []bool
	live  int
	min   Time // cached minimum across live participants
}

// DefaultPacerWindow bounds virtual-clock skew; 50µs sits below every
// contended service time in the default latency model.
const DefaultPacerWindow = 50 * time.Microsecond

// NewPacer creates a pacer for n participants (ids 0..n-1) with the
// given skew window (DefaultPacerWindow if window <= 0).
func NewPacer(n int, window Duration) *Pacer {
	if window <= 0 {
		window = DefaultPacerWindow
	}
	p := &Pacer{
		window: window,
		times:  make([]Time, n),
		alive:  make([]bool, n),
		live:   n,
	}
	for i := range p.alive {
		p.alive[i] = true
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// recomputeMin refreshes the cached minimum. Caller holds mu.
func (p *Pacer) recomputeMin() {
	var m Time = 1<<63 - 1
	found := false
	for i, alive := range p.alive {
		if alive && p.times[i] < m {
			m = p.times[i]
			found = true
		}
	}
	if !found {
		m = 1<<63 - 1 // nobody left: never block
	}
	if m != p.min {
		p.min = m
		p.cond.Broadcast()
	}
}

// Advance records participant id's clock and blocks while it is more
// than Window ahead of the slowest live participant. Call it before
// issuing each operation.
func (p *Pacer) Advance(id int, t Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	wasMin := p.times[id] == p.min
	p.times[id] = t
	if wasMin {
		p.recomputeMin()
	}
	for p.alive[id] && t > p.min.Add(p.window) {
		p.cond.Wait()
	}
}

// Done retires a participant; it no longer holds others back.
func (p *Pacer) Done(id int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.alive[id] {
		return
	}
	p.alive[id] = false
	p.live--
	p.recomputeMin()
}

// Live returns the number of participants not yet retired.
func (p *Pacer) Live() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live
}
