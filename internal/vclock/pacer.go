package vclock

import (
	"sync"
	"sync/atomic"
	"time"
)

// Pacer keeps a group of concurrent simulated clients within a bounded
// virtual-time window of each other — the conservative time-window
// synchronization used by parallel discrete-event simulators.
//
// Why it exists: Resource uses next-free accounting, which is exact only
// when requests arrive in (approximately) nondecreasing virtual-time
// order. Goroutine scheduling gives no such guarantee — one client can
// race far ahead in real time, pushing the resource's schedule into the
// virtual future, and a late-started client arriving at virtual t=0 then
// queues behind history that never overlapped it. The Pacer bounds that
// skew: before issuing an operation a client calls Advance with its
// clock and blocks until the slowest participant is within Window, so
// arrival order is correct to within the window and the queueing model
// stays accurate (measured: utilization error < 1% at windows up to
// ~100µs against an exact-order simulation).
//
// Usage per simulated client, with id in [0, n):
//
//	pacer.Advance(id, now) // may block
//	now = op(now)
//	...
//	pacer.Done(id) // on exit, or it stalls the others
type Pacer struct {
	window Duration
	// gran is the publication granularity of AdvanceBatched: a
	// participant republishes its clock (taking the lock) only after
	// accumulating this much virtual advancement, window/4 by default.
	gran Duration

	mu    sync.Mutex
	cond  *sync.Cond
	times []Time
	alive []bool
	live  int
	min   Time // cached minimum across live participants

	// pub[id] is id's last published clock; amin mirrors min. Both are
	// atomics so AdvanceBatched's fast path touches no lock: min is
	// nondecreasing (clocks only advance, participants only retire), so
	// a stale amin read is conservative — it can only delay the fast
	// path, never wrongly take it.
	pub  []atomic.Int64
	amin atomic.Int64
}

// DefaultPacerWindow bounds virtual-clock skew; 50µs sits below every
// contended service time in the default latency model.
const DefaultPacerWindow = 50 * time.Microsecond

// NewPacer creates a pacer for n participants (ids 0..n-1) with the
// given skew window (DefaultPacerWindow if window <= 0).
func NewPacer(n int, window Duration) *Pacer {
	if window <= 0 {
		window = DefaultPacerWindow
	}
	p := &Pacer{
		window: window,
		gran:   window / 4,
		times:  make([]Time, n),
		alive:  make([]bool, n),
		live:   n,
		pub:    make([]atomic.Int64, n),
	}
	for i := range p.alive {
		p.alive[i] = true
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// recomputeMin refreshes the cached minimum. Caller holds mu.
func (p *Pacer) recomputeMin() {
	var m Time = 1<<63 - 1
	found := false
	for i, alive := range p.alive {
		if alive && p.times[i] < m {
			m = p.times[i]
			found = true
		}
	}
	if !found {
		m = 1<<63 - 1 // nobody left: never block
	}
	if m != p.min {
		p.min = m
		p.amin.Store(int64(m))
		p.cond.Broadcast()
	}
}

// Window returns the pacer's skew window.
func (p *Pacer) Window() Duration { return p.window }

// Advance records participant id's clock and blocks while it is more
// than Window ahead of the slowest live participant. Call it before
// issuing each operation.
func (p *Pacer) Advance(id int, t Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	wasMin := p.times[id] == p.min
	p.times[id] = t
	if wasMin {
		p.recomputeMin()
	}
	for p.alive[id] && t > p.min.Add(p.window) {
		p.cond.Wait()
	}
}

// AdvanceBatched is Advance with batched publication — the pacer's
// fast path for high-frequency callers (every RPC advances the clock,
// so with hundreds of clients the pacer's single mutex is otherwise the
// region's global serialization point). A participant whose clock moved
// less than the publication granularity since its last publication, and
// which is safely inside the window, returns without taking the lock;
// everyone still publishes at least once per granularity of virtual
// advancement, so the slowest participant can never stall waiters for
// more than one granule. The price is a relaxed skew bound: published
// clocks lag true clocks by up to gran, so participants stay within
// window+gran (= 1.25× window at the default gran) instead of window —
// well inside the accuracy plateau the window was sized for.
func (p *Pacer) AdvanceBatched(id int, t Time) {
	last := Time(p.pub[id].Load())
	if t < last.Add(p.gran) && t <= Time(p.amin.Load()).Add(p.window) {
		return
	}
	// Publish before potentially blocking in Advance: while this
	// participant waits, others must see its true clock or the window
	// could wedge with everyone mutually stale.
	p.pub[id].Store(int64(t))
	p.Advance(id, t)
}

// Done retires a participant; it no longer holds others back.
func (p *Pacer) Done(id int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.alive[id] {
		return
	}
	p.alive[id] = false
	p.live--
	p.recomputeMin()
}

// Live returns the number of participants not yet retired.
func (p *Pacer) Live() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live
}
