package vclock

import (
	"container/heap"
	"sync"
	"testing"
	"time"
)

func TestPacerSingleParticipantNeverBlocks(t *testing.T) {
	p := NewPacer(1, 0)
	for i := 0; i < 100; i++ {
		p.Advance(0, Time(i)*Time(time.Second)) // far beyond any window
	}
	p.Done(0)
	if p.Live() != 0 {
		t.Fatal("live count wrong")
	}
}

func TestPacerBlocksFastParticipant(t *testing.T) {
	p := NewPacer(2, 10*time.Microsecond)
	released := make(chan struct{})
	go func() {
		// Participant 0 wants to run to 1ms while participant 1 sits at 0.
		p.Advance(0, Time(time.Millisecond))
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("fast participant must block outside the window")
	case <-time.After(20 * time.Millisecond):
	}
	// Let participant 1 catch up.
	p.Advance(1, Time(time.Millisecond))
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Fatal("fast participant never released")
	}
}

func TestPacerDoneReleasesWaiters(t *testing.T) {
	p := NewPacer(2, 10*time.Microsecond)
	released := make(chan struct{})
	go func() {
		p.Advance(0, Time(time.Millisecond))
		close(released)
	}()
	time.Sleep(10 * time.Millisecond)
	p.Done(1) // the slow participant retires instead of advancing
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Fatal("Done did not release the waiter")
	}
	p.Done(1) // double Done is a no-op
	if p.Live() != 1 {
		t.Fatalf("live = %d", p.Live())
	}
}

// closedLoop runs n clients against a k-worker resource with think time
// rtt and service time cost, returning the bottleneck utilization.
func closedLoop(n, per int, window Duration) float64 {
	res := NewResource("mds", 4)
	var wg sync.WaitGroup
	var wm Watermark
	pacer := NewPacer(n, window)
	rtt := 80 * time.Microsecond
	cost := 27 * time.Microsecond
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			defer pacer.Done(g)
			now := Time(0)
			for i := 0; i < per; i++ {
				pacer.Advance(g, now)
				done := res.Acquire(now.Add(rtt/2), cost)
				now = done.Add(rtt / 2)
			}
			wm.Observe(now)
		}(g)
	}
	wg.Wait()
	return res.Utilization(wm.Load().Sub(0))
}

// The calibration property the whole experiment harness rests on: a
// saturated closed-loop system must drive the bottleneck near 100%
// utilization regardless of goroutine scheduling.
func TestPacerClosedLoopSaturatesBottleneck(t *testing.T) {
	if util := closedLoop(32, 120, 0); util < 0.9 {
		t.Fatalf("paced closed-loop utilization = %.3f, want > 0.9", util)
	}
}

// Reference: exact virtual-time-ordered execution of the same system
// (single-threaded event loop) reaches ~1.0; the paced concurrent run
// above must agree with it.
func TestExactOrderReferenceUtilization(t *testing.T) {
	var q clientHeap
	const n, per = 32, 120
	res := NewResource("mds", 4)
	rtt := 80 * time.Microsecond
	cost := 27 * time.Microsecond
	for i := 0; i < n; i++ {
		q = append(q, &pacedClient{})
	}
	heap.Init(&q)
	left := make(map[*pacedClient]int, n)
	var wm Watermark
	for q.Len() > 0 {
		c := heap.Pop(&q).(*pacedClient)
		done := res.Acquire(c.now.Add(rtt/2), cost)
		c.now = done.Add(rtt / 2)
		wm.Observe(c.now)
		if left[c]++; left[c] < per {
			heap.Push(&q, c)
		}
	}
	if util := res.Utilization(wm.Load().Sub(0)); util < 0.99 {
		t.Fatalf("exact-order utilization = %.3f", util)
	}
}

type pacedClient struct{ now Time }

type clientHeap []*pacedClient

func (p clientHeap) Len() int           { return len(p) }
func (p clientHeap) Less(i, j int) bool { return p[i].now < p[j].now }
func (p clientHeap) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *clientHeap) Push(x any)        { *p = append(*p, x.(*pacedClient)) }
func (p *clientHeap) Pop() any {
	old := *p
	n := len(old)
	x := old[n-1]
	*p = old[:n-1]
	return x
}
