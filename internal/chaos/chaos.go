// Package chaos is a randomized fault-injection harness for the Pacon
// core. One Run builds a full deployment (DFS cluster + consistent
// region), drives concurrent clients through a mixed workload while
// injecting backend commit failures, eviction pressure, commit stalls
// and rmdir races, then drains the region and checks convergence: the
// distributed cache, the DFS and an in-memory oracle must agree.
//
// The workload is path-affine by construction: mutations on any given
// path come from one client only, except for zones whose races the
// design defines (create-create on hot paths, creates racing an rmdir).
// Cross-client mutation of the same path is outside the seed design's
// contract — different nodes' commit queues apply same-path ops in
// unspecified relative order — so the harness never generates it.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pacon/internal/audit"
	"pacon/internal/core"
	"pacon/internal/dfs"
	"pacon/internal/fsapi"
	"pacon/internal/obs"
	"pacon/internal/rpc"
	"pacon/internal/vclock"
)

var (
	rootCred = fsapi.Cred{UID: 0, GID: 0}
	appCred  = fsapi.Cred{UID: 1000, GID: 1000}
)

// Config parameterizes one chaos schedule. The zero value is usable:
// withDefaults fills in a moderate deployment.
type Config struct {
	// Seed drives every random choice (workload mix, fault points).
	// Distinct seeds give distinct schedules; the interleaving itself
	// still comes from the scheduler, which is the point.
	Seed int64
	// Nodes is the region size (cache server + commit process each).
	Nodes int
	// Clients is the number of concurrent workload goroutines.
	Clients int
	// Ops is the number of operations each client performs.
	Ops int
	// CacheCapacityBytes bounds each cache server; small values force
	// the round-robin eviction path to run concurrently with the
	// workload. 0 = unlimited.
	CacheCapacityBytes int64
	// FaultRate is the probability that an injected backend mutation
	// fails with ErrNotExist (a resubmittable commit failure).
	FaultRate float64
	// MaxFaultsPerPath caps injected failures per path so resubmission
	// always converges well inside the region's retry budget.
	MaxFaultsPerPath int
	// StallEveryN sleeps on every Nth injected-surface backend call,
	// stalling commit processes so queues back up behind them.
	StallEveryN int
	// Rmdir enables the doomed-directory zone: concurrent creates race
	// a recursive rmdir on their parent. With it enabled, ops may be
	// legitimately dropped (a create accepted in the closing instants
	// of the rmdir window has no parent left to commit under).
	Rmdir bool
	// DoomedDirs is the number of pre-created rmdir targets.
	DoomedDirs int
	// CommitBatchSize sets the region's dequeue/apply batch width
	// (0 = the region default; 1 = op-at-a-time).
	CommitBatchSize int
	// DisableCoalesce turns off dequeue-time op merging, pinning the
	// uncoalesced commit path under the same schedules.
	DisableCoalesce bool
	// ClientSideCommitOps forces the legacy Get+CAS cache bookkeeping
	// loops instead of the server-side conditional ops.
	ClientSideCommitOps bool
	// LoseOneCommit deliberately breaks the schedule: the first DFS
	// create the commit side applies reports success without ever
	// reaching the DFS. The run must then end with violations — the
	// knob exists to self-test the failure path end to end (the
	// convergence oracle, the divergence auditor, and the flight
	// recorder's dump of the lost op's cross-node span). Forces
	// CommitBatchSize 1 so the lie lands on the op-at-a-time create.
	LoseOneCommit bool
	// Shards > 1 backs the region with a subtree-partitioned MDS pool
	// ("/w" spread across that many shards) instead of one shared-tree
	// MDS. All existing zones run unchanged on top.
	Shards int
	// KillShard unregisters one busy MDS shard mid-schedule (driven by
	// the injector's call counter) and recovers it later. While the
	// shard is down, foreground reads that reach it fail with ErrClosed
	// (tolerated, state marked unknown) and commit-side batches to it
	// degrade to the singleton fallback; after recovery the schedule
	// must still converge and pass the audit gate. Requires Shards > 1.
	KillShard bool
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 2
	}
	if c.Clients <= 0 {
		c.Clients = 3
	}
	if c.Ops <= 0 {
		c.Ops = 100
	}
	// 0 means "default"; negative means "injection disabled".
	if c.FaultRate == 0 {
		c.FaultRate = 0.15
	} else if c.FaultRate < 0 {
		c.FaultRate = 0
	}
	if c.MaxFaultsPerPath <= 0 {
		c.MaxFaultsPerPath = 2
	}
	if c.StallEveryN <= 0 {
		c.StallEveryN = 13
	}
	if c.Rmdir && c.DoomedDirs <= 0 {
		c.DoomedDirs = 2
	}
	return c
}

// Result summarizes one schedule.
type Result struct {
	ClientOps    int // operations attempted across all clients
	Injected     int // backend failures injected
	Stalls       int // backend stalls injected
	CacheEntries int // cache entries resident after the final drain
	Stats        core.RegionStats
	// StageSummary is the run's pipeline-stage latency summary plus the
	// slowest traced ops. Filled only when the schedule violated — it is
	// the first thing to read when triaging a failing seed.
	StageSummary string
	// Audit is the post-drain divergence-audit report: every committed
	// cache entry compared against the DFS through the production read
	// paths. On a drained region anything but 100% match is a violation,
	// which makes the auditor a second, independent convergence oracle
	// (it would catch a verifyConverged bug as readily as a core one).
	Audit audit.Report
	// Flight is the flight-recorder dump (JSON) cut when the schedule
	// violated: span rings, recent cross-node critical paths, counters
	// and gauges at the moment of failure. Also written to
	// $CHAOS_FLIGHT_DIR when set (CI uploads those as artifacts). Empty
	// on passing schedules.
	Flight []byte
}

// injector decides, per backend mutation, whether to fail or stall it.
// It is shared by every node's commit process, so the per-path fault cap
// holds globally.
type injector struct {
	mu         sync.Mutex
	rng        *rand.Rand
	rate       float64
	maxPerPath int
	stallEvery int
	perPath    map[string]int
	calls      int
	injected   int
	stalls     int

	// Shard kill/recover plan (KillShard schedules): the call counter
	// crossing killAt downs the victim shard, crossing recoverAt brings
	// it back — commit retries to the dead shard keep the counter
	// moving, so recovery always lands inside the drain budget.
	killAt, recoverAt     int
	killOnce, recoverOnce sync.Once
	killFn, recoverFn     func()
}

func newInjector(cfg Config) *injector {
	return &injector{
		rng:        rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
		rate:       cfg.FaultRate,
		maxPerPath: cfg.MaxFaultsPerPath,
		stallEvery: cfg.StallEveryN,
		perPath:    make(map[string]int),
	}
}

func (in *injector) fail(path string) bool {
	in.mu.Lock()
	in.calls++
	c := in.calls
	stall := in.calls%in.stallEvery == 0
	inject := in.perPath[path] < in.maxPerPath && in.rng.Float64() < in.rate
	if inject {
		in.perPath[path]++
		in.injected++
	}
	if stall {
		in.stalls++
	}
	in.mu.Unlock()
	if in.killFn != nil && c >= in.killAt {
		in.killOnce.Do(in.killFn)
	}
	if in.recoverFn != nil && c >= in.recoverAt {
		in.recoverOnce.Do(in.recoverFn)
	}
	if stall {
		time.Sleep(100 * time.Microsecond) // commit-queue stall
	}
	return inject
}

// forceRecover ends the kill window deterministically: no further kill
// can fire, and the victim shard is recovered if it is still down. Run
// calls this after the workload, before the drain — the drain and the
// convergence oracles must see the full pool.
func (in *injector) forceRecover() {
	if in.recoverFn == nil {
		return
	}
	in.killOnce.Do(func() {})
	in.recoverOnce.Do(in.recoverFn)
}

func (in *injector) counts() (injected, stalls int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected, in.stalls
}

// flakyBackend wraps the DFS client handed to commit processes. Only the
// commit-surface mutations are injected — and only with ErrNotExist,
// which every op kind treats as resubmittable — so injected faults delay
// convergence but never forfeit it. WriteAt is left alone: the commit
// module's inline write-back treats its failure as a drop, which would
// be indistinguishable from the data-loss bugs this harness hunts.
type flakyBackend struct {
	core.Backend
	inj *injector
	// lose, when armed, makes exactly one create lie "committed"
	// without reaching the DFS — the Config.LoseOneCommit self-test.
	lose *atomic.Bool
}

// SetTrace/ClearTrace forward the span tag to the wrapped DFS client:
// interface embedding only promotes core.Backend's method set, so
// without these the commit side's traceCarrier assertion would miss and
// injected-fault schedules would lose their MDS-side span events.
func (f *flakyBackend) SetTrace(span uint64) {
	if tc, ok := f.Backend.(interface{ SetTrace(uint64) }); ok {
		tc.SetTrace(span)
	}
}

func (f *flakyBackend) ClearTrace() {
	if tc, ok := f.Backend.(interface{ ClearTrace() }); ok {
		tc.ClearTrace()
	}
}

func (f *flakyBackend) CreateWithStat(at vclock.Time, p string, st fsapi.Stat) (vclock.Time, error) {
	if f.lose != nil && f.lose.CompareAndSwap(true, false) {
		return at, nil // lie: committed nothing (LoseOneCommit self-test)
	}
	if f.inj.fail(p) {
		return at, fsapi.ErrNotExist
	}
	return f.Backend.CreateWithStat(at, p, st)
}

func (f *flakyBackend) SetStat(at vclock.Time, p string, st fsapi.Stat) (vclock.Time, error) {
	if f.inj.fail(p) {
		return at, fsapi.ErrNotExist
	}
	return f.Backend.SetStat(at, p, st)
}

func (f *flakyBackend) Remove(at vclock.Time, p string) (vclock.Time, error) {
	if f.inj.fail(p) {
		return at, fsapi.ErrNotExist
	}
	return f.Backend.Remove(at, p)
}

// ApplyBatch forwards the batched commit path with per-op injection.
// Without this override the embedded interface value would promote the
// wrapped client's ApplyBatch and batched ops would silently bypass
// injection. Net-absence removes (IfExists) are exempt like WriteAt: the
// commit module reads their ErrNotExist as success, so an injected
// failure — meaning the remove did NOT run — would be mistaken for a
// committed absence while a stale object still sits on the DFS.
func (f *flakyBackend) ApplyBatch(at vclock.Time, ops []fsapi.BatchOp) ([]error, vclock.Time, error) {
	errs := make([]error, len(ops))
	fwd := make([]fsapi.BatchOp, 0, len(ops))
	idx := make([]int, 0, len(ops))
	for i, op := range ops {
		exempt := op.Kind == fsapi.BatchRemove && op.IfExists
		if !exempt && f.inj.fail(op.Path) {
			errs[i] = fsapi.ErrNotExist
			continue
		}
		fwd = append(fwd, op)
		idx = append(idx, i)
	}
	if len(fwd) == 0 {
		return errs, at, nil
	}
	ferrs, done, err := f.Backend.ApplyBatch(at, fwd)
	if err != nil {
		return nil, done, err
	}
	for j, i := range idx {
		errs[i] = ferrs[j]
	}
	return errs, done, nil
}

// InvalidateSubtree forwards the region's rmdir/rename dentry fan-out
// to the wrapped DFS client. Embedding the Backend interface does not
// promote methods outside it, so without this the wrapped client's
// dentry cache would silently keep serving removed paths — exactly the
// resurrection bug the harness exists to catch.
func (f *flakyBackend) InvalidateSubtree(root string) {
	if inv, ok := f.Backend.(interface{ InvalidateSubtree(string) }); ok {
		inv.InvalidateSubtree(root)
	}
}

// StatFresh forwards the miss-load read-through (same promotion caveat
// as InvalidateSubtree). Losing this forwarding would silently degrade
// miss-loads to dentry-cached Stats and reintroduce the stale-size
// shadowing the fresh read exists to prevent.
func (f *flakyBackend) StatFresh(at vclock.Time, p string) (fsapi.Stat, vclock.Time, error) {
	if fr, ok := f.Backend.(interface {
		StatFresh(vclock.Time, string) (fsapi.Stat, vclock.Time, error)
	}); ok {
		return fr.StatFresh(at, p)
	}
	return f.Backend.Stat(at, p)
}

// harness is the shared state of one schedule.
type harness struct {
	cfg     Config
	region  *core.Region
	cluster *dfs.Cluster
	oracle  core.Backend // root DFS client for ground-truth reads

	hotMu sync.Mutex
	hot   map[string]bool // hot-zone paths with at least one successful create

	doomedMu   sync.Mutex
	doomedGone map[int]bool // doomed dirs whose rmdir succeeded

	violMu sync.Mutex
	viol   []error
}

func (h *harness) violate(format string, args ...any) {
	h.violMu.Lock()
	defer h.violMu.Unlock()
	if len(h.viol) < 32 {
		h.viol = append(h.viol, fmt.Errorf(format, args...))
	}
}

// worker is one client goroutine. Everything it mutates exclusively
// (its /w/shared files, its hub and doomed children) is modeled in
// `model`/`gone`; those maps are the oracle the final check compares
// cache and DFS against.
type worker struct {
	h       *harness
	id      int
	cl      *core.Client
	rng     *rand.Rand
	at      vclock.Time
	model   map[string][]byte // exclusive path -> expected content
	gone    map[string]bool   // exclusive paths removed and not re-created
	unknown map[string]bool   // paths whose state a dead-shard error left ambiguous
	hubSeq  int
	doomSeq int
}

const (
	filesPerClient = 6
	hotFiles       = 8
	hubDirs        = 4
	smallWriteMax  = 24 // well under the inline threshold: writes never go large
)

func (w *worker) exclusivePath(j int) string {
	return fmt.Sprintf("/w/shared/c%d-f%d", w.id, j)
}

// closedAmbiguous handles a mutation failing because an MDS shard was
// down (KillShard schedules only): whether the op took effect before the
// error is unknowable, so the path leaves the model entirely — the
// convergence oracle skips it in both directions.
func (w *worker) closedAmbiguous(p string, err error) bool {
	if !w.h.cfg.KillShard || !errors.Is(err, fsapi.ErrClosed) {
		return false
	}
	w.unknown[p] = true
	delete(w.model, p)
	delete(w.gone, p)
	return true
}

// shardDown reports a read failing only because its shard was down — a
// tolerated outcome on KillShard schedules, asserting nothing.
func (w *worker) shardDown(err error) bool {
	return w.h.cfg.KillShard && errors.Is(err, fsapi.ErrClosed)
}

// tolerable reports whether err is nil or one of the accepted sentinels.
func tolerable(err error, accept ...error) bool {
	if err == nil {
		return true
	}
	for _, a := range accept {
		if errors.Is(err, a) {
			return true
		}
	}
	return false
}

func (w *worker) run() {
	for i := 0; i < w.h.cfg.Ops; i++ {
		roll := w.rng.Intn(100)
		switch {
		case roll < 50:
			w.exclusiveOp()
		case roll < 65:
			w.hotOp()
		case roll < 80:
			w.hubOp()
		case roll < 90:
			w.peekOp()
		default:
			if w.h.cfg.Rmdir {
				w.doomedOp(i)
			} else {
				w.exclusiveOp()
			}
		}
	}
}

// exclusiveOp mutates one of this client's private files and keeps the
// model in lockstep. The model's write replicates spliceInline exactly:
// grow zero-padded to off+len(data), preserve any old tail beyond it.
func (w *worker) exclusiveOp() {
	p := w.exclusivePath(w.rng.Intn(filesPerClient))
	if w.unknown[p] {
		return // a dead-shard error left this path's state ambiguous
	}
	content, exists := w.model[p]
	if !exists {
		at, err := w.cl.Create(w.at, p, 0o644)
		w.at = at
		if w.closedAmbiguous(p, err) {
			return
		}
		if !tolerable(err, fsapi.ErrOutOfSpace) {
			w.h.violate("client %d: create %s: %v", w.id, p, err)
			return
		}
		if err == nil {
			w.model[p] = []byte{}
			delete(w.gone, p)
		}
		return
	}
	switch k := w.rng.Intn(100); {
	case k < 60: // write
		off := int64(w.rng.Intn(3) * 8)
		data := make([]byte, 1+w.rng.Intn(smallWriteMax))
		for b := range data {
			data[b] = byte('a' + w.rng.Intn(26))
		}
		at, err := w.cl.WriteAt(w.at, p, off, data)
		w.at = at
		if w.closedAmbiguous(p, err) {
			return
		}
		if !tolerable(err, fsapi.ErrOutOfSpace) {
			w.h.violate("client %d: write %s: %v", w.id, p, err)
			return
		}
		if err == nil {
			w.model[p] = modelSplice(content, off, data)
		}
	case k < 75: // remove
		at, err := w.cl.Remove(w.at, p)
		w.at = at
		if w.closedAmbiguous(p, err) {
			return
		}
		if err != nil {
			w.h.violate("client %d: rm %s: %v", w.id, p, err)
			return
		}
		delete(w.model, p)
		w.gone[p] = true
	default: // mid-run oracle read
		w.verifyExclusive(p, content)
	}
}

// modelSplice mirrors the region's inline write semantics.
func modelSplice(buf []byte, off int64, data []byte) []byte {
	need := int(off) + len(data)
	n := len(buf)
	if need > n {
		n = need
	}
	out := make([]byte, n)
	copy(out, buf)
	copy(out[off:], data)
	return out
}

// verifyExclusive asserts the region's view of one exclusive path
// matches the model right now (strong consistency inside the region).
func (w *worker) verifyExclusive(p string, content []byte) {
	st, at, err := w.cl.Stat(w.at, p)
	w.at = at
	if err != nil {
		if w.shardDown(err) {
			return
		}
		w.h.violate("client %d: stat %s: %v (model has %d bytes)", w.id, p, err, len(content))
		return
	}
	if st.Size != int64(len(content)) {
		w.h.violate("client %d: %s size = %d, model %d", w.id, p, st.Size, len(content))
		return
	}
	data, at, err := w.cl.ReadAt(w.at, p, 0, len(content)+16)
	w.at = at
	if err != nil {
		if w.shardDown(err) {
			return
		}
		w.h.violate("client %d: read %s: %v", w.id, p, err)
		return
	}
	if !bytes.Equal(data, content) {
		w.h.violate("client %d: %s content = %q, model %q", w.id, p, data, content)
	}
}

// hotOp races a create on a path every client contends for. Exactly one
// create wins (the rest see ErrExist); the winner's entry must commit.
func (w *worker) hotOp() {
	p := fmt.Sprintf("/w/hot/f%d", w.rng.Intn(hotFiles))
	at, err := w.cl.Create(w.at, p, 0o644)
	w.at = at
	if w.shardDown(err) {
		return // hot[p] only tracks definite wins; a lost win is a weaker check, not a lie
	}
	if !tolerable(err, fsapi.ErrExist, fsapi.ErrOutOfSpace) {
		w.h.violate("client %d: hot create %s: %v", w.id, p, err)
		return
	}
	if err == nil {
		w.h.hotMu.Lock()
		w.h.hot[p] = true
		w.h.hotMu.Unlock()
	}
}

// hubOp creates a shared directory (idempotently) and an exclusive child
// under it — the cross-queue parent/child dependency that exercises
// commit resubmission.
func (w *worker) hubOp() {
	dir := fmt.Sprintf("/w/hub%d", w.rng.Intn(hubDirs))
	at, err := w.cl.Mkdir(w.at, dir, 0o755)
	w.at = at
	if w.shardDown(err) {
		return
	}
	if !tolerable(err, fsapi.ErrExist, fsapi.ErrOutOfSpace) {
		w.h.violate("client %d: mkdir %s: %v", w.id, dir, err)
		return
	}
	if err != nil {
		return // lost the mkdir race or no space: the dir entry is live anyway or we skip
	}
	child := fmt.Sprintf("%s/c%d-h%d", dir, w.id, w.hubSeq)
	w.hubSeq++
	at, err = w.cl.Create(w.at, child, 0o644)
	w.at = at
	if w.closedAmbiguous(child, err) {
		return
	}
	if !tolerable(err, fsapi.ErrOutOfSpace) {
		w.h.violate("client %d: hub create %s: %v", w.id, child, err)
		return
	}
	if err == nil {
		w.model[child] = []byte{}
	}
}

// peekOp reads someone else's paths (no assertion — their owner is
// mid-flight) or readdirs the shared zone, asserting this client's own
// slice of the listing matches its model: the readdir barrier drains
// every queue, so this client's earlier ops must all be visible.
func (w *worker) peekOp() {
	if w.rng.Intn(4) == 0 {
		w.verifyReaddir()
		return
	}
	other := w.rng.Intn(w.h.cfg.Clients)
	p := fmt.Sprintf("/w/shared/c%d-f%d", other, w.rng.Intn(filesPerClient))
	st, at, err := w.cl.Stat(w.at, p)
	w.at = at
	if w.shardDown(err) {
		return
	}
	if !tolerable(err, fsapi.ErrNotExist) {
		w.h.violate("client %d: peek stat %s: %v", w.id, p, err)
		return
	}
	if err == nil && !st.IsDir() {
		_, at, rerr := w.cl.ReadAt(w.at, p, 0, 64)
		w.at = at
		if !tolerable(rerr, fsapi.ErrNotExist) && !w.shardDown(rerr) {
			w.h.violate("client %d: peek read %s: %v", w.id, p, rerr)
		}
	}
}

func (w *worker) verifyReaddir() {
	ents, at, err := w.cl.Readdir(w.at, "/w/shared")
	w.at = at
	if err != nil {
		if w.shardDown(err) {
			return
		}
		w.h.violate("client %d: readdir /w/shared: %v", w.id, err)
		return
	}
	prefix := fmt.Sprintf("c%d-", w.id)
	listed := make(map[string]bool)
	for _, ent := range ents {
		if strings.HasPrefix(ent.Name, prefix) {
			listed[ent.Name] = true
		}
	}
	for p := range w.model {
		if !strings.HasPrefix(p, "/w/shared/") {
			continue
		}
		name := strings.TrimPrefix(p, "/w/shared/")
		if !listed[name] {
			w.h.violate("client %d: readdir missing own file %s", w.id, name)
		}
		delete(listed, name)
	}
	for name := range listed {
		if w.unknown["/w/shared/"+name] {
			continue // dead-shard ambiguity: the file may legitimately exist
		}
		w.h.violate("client %d: readdir lists removed/unknown own file %s", w.id, name)
	}
}

// doomedOp races creations under a directory fated for rmdir. The
// designated client fires the rmdir once past the schedule's midpoint;
// everyone else keeps creating children, tolerating the dir's demise.
func (w *worker) doomedOp(opIndex int) {
	k := w.rng.Intn(w.h.cfg.DoomedDirs)
	dir := fmt.Sprintf("/w/doomed%d", k)
	if w.id == k%w.h.cfg.Clients && opIndex > w.h.cfg.Ops/2 {
		w.h.doomedMu.Lock()
		done := w.h.doomedGone[k]
		w.h.doomedMu.Unlock()
		if !done {
			at, err := w.cl.Rmdir(w.at, dir)
			w.at = at
			if w.shardDown(err) {
				return // shard down: the rmdir retries on a later roll
			}
			if err != nil {
				w.h.violate("client %d: rmdir %s: %v", w.id, dir, err)
				return
			}
			w.h.doomedMu.Lock()
			w.h.doomedGone[k] = true
			w.h.doomedMu.Unlock()
			return
		}
	}
	child := fmt.Sprintf("%s/c%d-d%d", dir, w.id, w.doomSeq)
	w.doomSeq++
	// The create may be accepted and later discarded, or rejected with
	// ErrNotExist once the dir is gone — both are designed outcomes, so
	// the child never enters the model.
	at, err := w.cl.Create(w.at, child, 0o644)
	w.at = at
	if !tolerable(err, fsapi.ErrNotExist, fsapi.ErrOutOfSpace) && !w.shardDown(err) {
		w.h.violate("client %d: doomed create %s: %v", w.id, child, err)
	}
}

// Run executes one chaos schedule and verifies convergence. The returned
// error joins every violation found (nil = the schedule converged).
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	var lose atomic.Bool
	if cfg.LoseOneCommit {
		lose.Store(true)
		cfg.CommitBatchSize = 1
	}
	bus := rpc.NewBus()
	model := vclock.Default()
	var cluster *dfs.Cluster
	if cfg.Shards > 1 {
		cluster = dfs.NewClusterSharded(bus, model, rootCred, "storage0", cfg.Shards, []string{"/w"}, []string{"storage1", "storage2"})
	} else {
		cluster = dfs.NewCluster(bus, model, rootCred, "storage0", []string{"storage1", "storage2"})
	}
	admin := cluster.NewClient("admin", rootCred, 0, 0)
	for _, dir := range []string{"/w", "/w/shared", "/w/hot"} {
		if _, err := admin.Mkdir(0, dir, 0o777); err != nil {
			return Result{}, err
		}
	}
	for k := 0; k < cfg.DoomedDirs; k++ {
		if _, err := admin.Mkdir(0, fmt.Sprintf("/w/doomed%d", k), 0o777); err != nil {
			return Result{}, err
		}
	}

	inj := newInjector(cfg)
	if cfg.KillShard && cfg.Shards > 1 {
		// Down the shard owning the busiest zone (/w/shared) mid-run,
		// recover it once the counter has moved on. Retries to the dead
		// shard advance the counter, so the window always closes.
		victim := cluster.Shards.Owner("/w/shared")
		inj.killAt, inj.recoverAt = 40, 120
		inj.killFn = func() { cluster.KillShard(victim) }
		inj.recoverFn = func() { cluster.RecoverShard(victim) }
	}
	// Every schedule runs instrumented: the per-stage latency summary is
	// cheap (wall-clock hooks only, no virtual-time impact) and turns a
	// failing seed report into a per-stage breakdown instead of a bare
	// violation list.
	o := obs.New()
	bus.SetObserver(o)
	if dir := os.Getenv("CHAOS_FLIGHT_DIR"); dir != "" {
		// Best-effort, like the dump writes themselves: CI points this
		// at a workspace path that may not exist yet.
		_ = os.MkdirAll(dir, 0o755)
		o.SetFlightDir(dir)
	}
	nodes := make([]string, cfg.Nodes)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("node%d", i)
	}
	// A dead-shard window makes every op targeting it burn resubmissions;
	// widen the retry budget so the window cannot exhaust it.
	retryLimit := 0
	if cfg.KillShard {
		retryLimit = 512
	}
	region, err := core.NewRegion(core.RegionConfig{
		Name:                "chaos",
		Workspace:           "/w",
		Nodes:               nodes,
		Cred:                appCred,
		CacheCapacityBytes:  cfg.CacheCapacityBytes,
		CommitRetryLimit:    retryLimit,
		CommitBatchSize:     cfg.CommitBatchSize,
		ShardCount:          cfg.Shards,
		DisableCoalesce:     cfg.DisableCoalesce,
		ClientSideCommitOps: cfg.ClientSideCommitOps,
		// Sample every span: a failing seed's flight dump must contain
		// the violating op's cross-node timeline, not a 1/64 lottery.
		TraceSampleN: 1,
		Model:        model,
	}, core.Deps{
		Bus: bus,
		Obs: o,
		NewBackend: func(node string) core.Backend {
			return &flakyBackend{
				Backend: cluster.NewClient(node, appCred, 4096, vclock.Duration(time.Hour)),
				inj:     inj,
				lose:    &lose,
			}
		},
	})
	if err != nil {
		return Result{}, err
	}
	defer region.Close()

	h := &harness{
		cfg:        cfg,
		region:     region,
		cluster:    cluster,
		oracle:     admin,
		hot:        make(map[string]bool),
		doomedGone: make(map[int]bool),
	}

	workers := make([]*worker, cfg.Clients)
	var wg sync.WaitGroup
	for i := range workers {
		cl, cerr := region.NewClient(nodes[i%cfg.Nodes])
		if cerr != nil {
			return Result{}, cerr
		}
		workers[i] = &worker{
			h:       h,
			id:      i,
			cl:      cl,
			rng:     rand.New(rand.NewSource(cfg.Seed*1009 + int64(i))),
			model:   make(map[string][]byte),
			gone:    make(map[string]bool),
			unknown: make(map[string]bool),
		}
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run()
		}(workers[i])
	}
	wg.Wait()
	inj.forceRecover()

	// Quiesce: every queued op reaches the DFS (or exhausts its budget).
	var maxAt vclock.Time
	for _, w := range workers {
		maxAt = vclock.Max(maxAt, w.at)
	}
	drainAt, err := region.Drain(maxAt)
	if err != nil {
		return Result{}, err
	}
	h.verifyConverged(workers, drainAt)

	// Independent oracle: audit every committed cache entry against the
	// DFS through the production read paths. The region is quiesced, so
	// stale-pending is as much a violation as divergent — nothing may be
	// in flight after a drain.
	var auditRep audit.Report
	if auditCl, aerr := region.NewClient(nodes[0]); aerr != nil {
		h.violate("audit client: %v", aerr)
	} else if rep, _, aerr := audit.Run(auditCl, drainAt, audit.Config{}); aerr != nil {
		h.violate("audit run: %v", aerr)
	} else {
		auditRep = rep
		if rep.Divergent > 0 || rep.StalePending > 0 {
			h.violate("post-drain audit not clean: %s", rep)
		}
	}

	injected, stalls := inj.counts()
	res := Result{
		ClientOps: cfg.Clients * cfg.Ops,
		Injected:  injected,
		Stalls:    stalls,
		Stats:     region.Stats(),
		Audit:     auditRep,
	}
	if dump, derr := region.DumpCache(); derr == nil {
		res.CacheEntries = len(dump)
	}
	if len(h.viol) > 0 {
		var sb strings.Builder
		sb.WriteString(o.Summary())
		if slow := o.SlowSpans(5); len(slow) > 0 {
			sb.WriteString("\nslowest traced ops:\n")
			for _, sp := range slow {
				sb.WriteString("  " + sp.String() + "\n")
			}
		}
		res.StageSummary = sb.String()
		// The audit's own divergence trigger may have cut a dump moments
		// ago (the recorder rate-limits); fall back to it rather than
		// returning a failing seed with no black box.
		if res.Flight = o.TriggerFlight("chaos_violation"); res.Flight == nil {
			res.Flight = o.LastFlight()
		}
	}
	return res, errors.Join(h.viol...)
}

// verifyConverged runs the post-drain oracle: cache image, DFS state and
// the workers' models must agree.
func (h *harness) verifyConverged(workers []*worker, at vclock.Time) {
	// Ground truth comes from the cluster's oracle helpers, which route
	// each path to its authoritative tree (shard-aware in sharded mode).

	// 1. Cache image: after a drain nothing may be dirty or marked
	// removed, and every resident entry must be backed by the DFS.
	dump, err := h.region.DumpCache()
	if err != nil {
		h.violate("dump cache: %v", err)
		return
	}
	for _, ent := range dump {
		if ent.Dirty {
			h.violate("cache entry %s still dirty after drain", ent.Path)
		}
		if ent.Removed {
			h.violate("cache entry %s still marked removed after drain", ent.Path)
		}
		st, lerr := h.cluster.OracleLookup(ent.Path)
		if lerr != nil {
			h.violate("cache entry %s has no DFS backing (dirty=%v removed=%v seq=%d size=%d): %v",
				ent.Path, ent.Dirty, ent.Removed, ent.Seq, ent.Stat.Size, lerr)
			continue
		}
		if st.IsDir() != ent.Stat.IsDir() {
			h.violate("cache entry %s type mismatch with DFS", ent.Path)
			continue
		}
		if !ent.Stat.IsDir() && !ent.Large && ent.Stat.Size != st.Size {
			h.violate("cache entry %s size %d, DFS %d", ent.Path, ent.Stat.Size, st.Size)
			continue
		}
		if !ent.Stat.IsDir() && !ent.Large && int64(len(ent.Stat.Inline)) == ent.Stat.Size && ent.Stat.Size > 0 {
			data, _, rerr := h.oracle.ReadAt(at, ent.Path, 0, int(ent.Stat.Size))
			if rerr != nil || !bytes.Equal(data, ent.Stat.Inline) {
				h.violate("cache entry %s inline %q, DFS %q (%v)", ent.Path, ent.Stat.Inline, data, rerr)
			}
		}
	}

	// 2. Exclusive paths: region view and DFS must match each worker's
	// model exactly, in both directions (present and absent).
	for _, w := range workers {
		paths := make([]string, 0, len(w.model))
		for p := range w.model {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			w.verifyExclusive(p, w.model[p])
			st, lerr := h.cluster.OracleLookup(p)
			if lerr != nil {
				h.violate("model file %s missing on DFS: %v", p, lerr)
				continue
			}
			if st.Size != int64(len(w.model[p])) {
				h.violate("DFS %s size %d, model %d", p, st.Size, len(w.model[p]))
				continue
			}
			if len(w.model[p]) > 0 {
				data, _, rerr := h.oracle.ReadAt(at, p, 0, len(w.model[p]))
				if rerr != nil || !bytes.Equal(data, w.model[p]) {
					h.violate("DFS %s content %q, model %q (%v)", p, data, w.model[p], rerr)
				}
			}
		}
		for p := range w.gone {
			if h.cluster.OracleExists(p) {
				h.violate("removed file %s survived on DFS", p)
			}
			if _, _, serr := w.cl.Stat(at, p); !errors.Is(serr, fsapi.ErrNotExist) {
				h.violate("removed file %s still visible in region: %v", p, serr)
			}
		}
	}

	// 3. Hot zone: every path with a winning create must have committed.
	for p := range h.hot {
		if !h.cluster.OracleExists(p) {
			h.violate("hot create %s never committed", p)
		}
	}

	// 4. Doomed dirs: a committed rmdir leaves nothing — not on the DFS,
	// not in the cache.
	for k := range h.doomedGone {
		dir := fmt.Sprintf("/w/doomed%d", k)
		if h.cluster.OracleExists(dir) {
			h.violate("rmdir'd dir %s survived on DFS", dir)
		}
		for _, ent := range dump {
			if strings.HasPrefix(ent.Path, dir+"/") || ent.Path == dir {
				h.violate("rmdir'd subtree entry %s still cached", ent.Path)
			}
		}
	}

	// 5. Accounting: queues empty; without an rmdir zone nothing may be
	// dropped (every failure is resubmittable and under the fault cap).
	if d := h.region.QueueDepth(); d != 0 {
		h.violate("queue depth %d after drain", d)
	}
	if !h.cfg.Rmdir {
		if st := h.region.Stats(); st.Dropped != 0 {
			h.violate("%d ops dropped in a schedule without rmdir: %+v", st.Dropped, st)
		}
	}
}
