package chaos

import (
	"fmt"
	"testing"
)

// configFor derives a varied deployment from a schedule index: region
// size, client count, fault intensity, eviction pressure and the rmdir
// zone all cycle so the seed sweep covers their combinations.
func configFor(seed int) Config {
	cfg := Config{
		Seed:             int64(seed),
		Nodes:            1 + seed%3,
		Clients:          2 + seed%3,
		Ops:              90,
		FaultRate:        0.10 + 0.05*float64(seed%4),
		MaxFaultsPerPath: 1 + seed%3,
		StallEveryN:      7 + seed%11,
		Rmdir:            seed%2 == 1,
	}
	if seed%4 == 3 {
		// Low watermark: a few KB per node forces round-robin eviction
		// to run continuously against the workload.
		cfg.CacheCapacityBytes = 4096
	}
	// Commit-path variants: most seeds run the default batched+coalesced
	// path; a slice pins the legacy configurations so the sweep keeps
	// covering op-at-a-time dequeue, uncoalesced batches and the
	// client-side Get+CAS loops.
	switch seed % 7 {
	case 2:
		cfg.CommitBatchSize = 1
	case 4:
		cfg.DisableCoalesce = true
	case 6:
		cfg.ClientSideCommitOps = true
	}
	return cfg
}

// TestChaosConvergence runs randomized schedules (100+ in full mode) and
// requires every one to converge with zero violations: cache, DFS and
// the in-memory oracle agree after the drain.
func TestChaosConvergence(t *testing.T) {
	schedules := 104
	if testing.Short() {
		schedules = 12
	}
	for seed := 0; seed < schedules; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			res, err := Run(configFor(seed))
			if err != nil {
				if res.StageSummary != "" {
					t.Logf("seed %d stage latencies:\n%s", seed, res.StageSummary)
				}
				t.Fatalf("schedule diverged: %v\nresult: %+v", err, res)
			}
			if res.Injected == 0 && configFor(seed).FaultRate > 0 {
				t.Logf("note: no faults injected (seed %d)", seed)
			}
		})
	}
}

// TestChaosFaultFree pins the harness itself: with injection disabled
// and no pressure, a schedule must also converge — a violation here is a
// harness/oracle bug, not a fault-handling bug.
func TestChaosFaultFree(t *testing.T) {
	res, err := Run(Config{Seed: 42, FaultRate: -1, StallEveryN: 1 << 30})
	if err != nil {
		t.Fatalf("fault-free schedule diverged: %v\nresult: %+v", err, res)
	}
	if res.Stats.Committed == 0 {
		t.Fatal("no ops committed — the workload did nothing")
	}
}

// TestChaosReportsInjection sanity-checks the injector wiring: with a
// high rate the schedule must both inject faults and still converge via
// resubmission.
func TestChaosReportsInjection(t *testing.T) {
	res, err := Run(Config{Seed: 7, FaultRate: 0.5, MaxFaultsPerPath: 3})
	if err != nil {
		t.Fatalf("high-fault schedule diverged: %v\nresult: %+v", err, res)
	}
	if res.Injected == 0 {
		t.Fatal("injector never fired at rate 0.5")
	}
	if res.Stats.Retries == 0 {
		t.Fatal("injected failures produced no resubmissions")
	}
}
