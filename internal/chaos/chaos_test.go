package chaos

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"pacon/internal/obs"
)

// configFor derives a varied deployment from a schedule index: region
// size, client count, fault intensity, eviction pressure and the rmdir
// zone all cycle so the seed sweep covers their combinations.
func configFor(seed int) Config {
	cfg := Config{
		Seed:             int64(seed),
		Nodes:            1 + seed%3,
		Clients:          2 + seed%3,
		Ops:              90,
		FaultRate:        0.10 + 0.05*float64(seed%4),
		MaxFaultsPerPath: 1 + seed%3,
		StallEveryN:      7 + seed%11,
		Rmdir:            seed%2 == 1,
	}
	if seed%4 == 3 {
		// Low watermark: a few KB per node forces round-robin eviction
		// to run continuously against the workload.
		cfg.CacheCapacityBytes = 4096
	}
	// Commit-path variants: most seeds run the default batched+coalesced
	// path; a slice pins the legacy configurations so the sweep keeps
	// covering op-at-a-time dequeue, uncoalesced batches and the
	// client-side Get+CAS loops.
	switch seed % 7 {
	case 2:
		cfg.CommitBatchSize = 1
	case 4:
		cfg.DisableCoalesce = true
	case 6:
		cfg.ClientSideCommitOps = true
	}
	return cfg
}

// TestChaosConvergence runs randomized schedules (100+ in full mode) and
// requires every one to converge with zero violations: cache, DFS and
// the in-memory oracle agree after the drain.
func TestChaosConvergence(t *testing.T) {
	schedules := 104
	if testing.Short() {
		schedules = 12
	}
	for seed := 0; seed < schedules; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			res, err := Run(configFor(seed))
			if err != nil {
				if res.StageSummary != "" {
					t.Logf("seed %d stage latencies:\n%s", seed, res.StageSummary)
				}
				t.Fatalf("schedule diverged: %v\nresult: %+v", err, res)
			}
			if res.Injected == 0 && configFor(seed).FaultRate > 0 {
				t.Logf("note: no faults injected (seed %d)", seed)
			}
		})
	}
}

// TestChaosFaultFree pins the harness itself: with injection disabled
// and no pressure, a schedule must also converge — a violation here is a
// harness/oracle bug, not a fault-handling bug.
func TestChaosFaultFree(t *testing.T) {
	res, err := Run(Config{Seed: 42, FaultRate: -1, StallEveryN: 1 << 30})
	if err != nil {
		t.Fatalf("fault-free schedule diverged: %v\nresult: %+v", err, res)
	}
	if res.Stats.Committed == 0 {
		t.Fatal("no ops committed — the workload did nothing")
	}
}

// TestChaosReportsInjection sanity-checks the injector wiring: with a
// high rate the schedule must both inject faults and still converge via
// resubmission.
func TestChaosReportsInjection(t *testing.T) {
	res, err := Run(Config{Seed: 7, FaultRate: 0.5, MaxFaultsPerPath: 3})
	if err != nil {
		t.Fatalf("high-fault schedule diverged: %v\nresult: %+v", err, res)
	}
	if res.Injected == 0 {
		t.Fatal("injector never fired at rate 0.5")
	}
	if res.Stats.Retries == 0 {
		t.Fatal("injected failures produced no resubmissions")
	}
}

// TestChaosSharded runs schedules against the subtree-partitioned MDS
// pool: every existing zone (exclusive, hot, hub, doomed-rmdir) must
// converge and pass the audit gate exactly as on the shared-tree MDS.
func TestChaosSharded(t *testing.T) {
	for _, shards := range []int{2, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			t.Parallel()
			cfg := configFor(shards)
			cfg.Shards = shards
			cfg.Rmdir = true
			res, err := Run(cfg)
			if err != nil {
				if res.StageSummary != "" {
					t.Logf("stage latencies:\n%s", res.StageSummary)
				}
				t.Fatalf("sharded schedule diverged: %v\nresult: %+v", err, res)
			}
			if res.Audit.Divergent > 0 || res.Audit.StalePending > 0 {
				t.Fatalf("audit gate not clean: %+v", res.Audit)
			}
		})
	}
}

// TestChaosShardKillRecover downs the shard owning the busiest zone
// mid-schedule and recovers it: the commit side must ride out the
// outage (ErrClosed resubmission plus the router's singleton fallback)
// and the run must still converge with a clean audit.
func TestChaosShardKillRecover(t *testing.T) {
	res, err := Run(Config{Seed: 11, Shards: 4, KillShard: true, Clients: 4, Ops: 150})
	if err != nil {
		if res.StageSummary != "" {
			t.Logf("stage latencies:\n%s", res.StageSummary)
		}
		t.Fatalf("kill/recover schedule diverged: %v\nresult: %+v", err, res)
	}
	if res.Audit.Divergent > 0 || res.Audit.StalePending > 0 {
		t.Fatalf("audit gate not clean after shard outage: %+v", res.Audit)
	}
	if res.Stats.BatchFallbacks == 0 {
		t.Error("shard outage never drove the batch path to its singleton fallback")
	}
	if res.Stats.Retries == 0 {
		t.Error("shard outage produced no resubmissions")
	}
}

// TestChaosLostCommitFlightRecorder runs the deliberately failing
// schedule: one commit is silently lost, so the run must end in
// violations AND carry a flight-recorder dump whose ring evidence
// includes the lost op's cross-node span (client-side stage events plus
// cache-server handler events — chaos samples every span).
func TestChaosLostCommitFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("CHAOS_FLIGHT_DIR", dir)
	res, err := Run(Config{Seed: 3, FaultRate: -1, StallEveryN: 1 << 30, LoseOneCommit: true})
	if err == nil {
		t.Fatal("LoseOneCommit schedule converged — the self-test fault was not injected")
	}
	if len(res.Flight) == 0 {
		t.Fatal("failing schedule produced no flight dump")
	}
	var dump obs.FlightDump
	if jerr := json.Unmarshal(res.Flight, &dump); jerr != nil {
		t.Fatalf("flight dump is not valid JSON: %v", jerr)
	}
	if dump.Reason == "" {
		t.Fatal("flight dump has no trigger reason")
	}

	// Cross-node span evidence: find any span with events from both a
	// client node and a service address (cache server "<node>/pacon-*"
	// or the MDS). Chaos runs with TraceSampleN 1, so every op's RPCs
	// were tagged.
	byNode := map[uint64]map[string]bool{}
	for _, ev := range dump.Events {
		if ev.Span == 0 {
			continue
		}
		if byNode[ev.Span] == nil {
			byNode[ev.Span] = map[string]bool{}
		}
		byNode[ev.Span][ev.Node] = true
	}
	crossNode := false
	for _, nodes := range byNode {
		var client, server bool
		for n := range nodes {
			if strings.Contains(n, "/") {
				server = true
			} else {
				client = true
			}
		}
		if client && server {
			crossNode = true
			break
		}
	}
	if !crossNode {
		t.Fatalf("no span in the dump has cross-node events (%d events, %d spans)",
			len(dump.Events), len(byNode))
	}

	// The dump was also written as a file for CI artifact upload.
	matches, _ := filepath.Glob(filepath.Join(dir, "pacon-flight-*.json"))
	if len(matches) == 0 {
		t.Fatal("CHAOS_FLIGHT_DIR set but no dump file written")
	}
}
