package mq

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pacon/internal/fsapi"
	"pacon/internal/vclock"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int]()
	for i := 0; i < 10; i++ {
		if err := q.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		v, barrier, _, ok := q.Pop()
		if !ok || barrier || v != i {
			t.Fatalf("pop %d = (%d, %v, %v)", i, v, barrier, ok)
		}
	}
	if q.Len() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestQueueBarrierInterleaving(t *testing.T) {
	q := NewQueue[string]()
	q.Push("a")
	q.PushBarrier(1)
	q.Push("b")

	v, barrier, _, _ := q.Pop()
	if barrier || v != "a" {
		t.Fatal("first must be op a")
	}
	_, barrier, epoch, _ := q.Pop()
	if !barrier || epoch != 1 {
		t.Fatalf("second must be barrier(1), got barrier=%v epoch=%d", barrier, epoch)
	}
	v, barrier, _, _ = q.Pop()
	if barrier || v != "b" {
		t.Fatal("third must be op b")
	}
}

func TestQueuePopBlocksUntilPush(t *testing.T) {
	q := NewQueue[int]()
	got := make(chan int, 1)
	go func() {
		v, _, _, ok := q.Pop()
		if ok {
			got <- v
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the popper block
	q.Push(42)
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("got %d", v)
		}
	case <-time.After(time.Second):
		t.Fatal("pop never woke")
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := NewQueue[int]()
	q.Push(1)
	q.Push(2)
	q.Close()
	if err := q.Push(3); !errors.Is(err, fsapi.ErrClosed) {
		t.Fatalf("push after close = %v", err)
	}
	if v, _, _, ok := q.Pop(); !ok || v != 1 {
		t.Fatal("queued item lost after close")
	}
	if v, _, _, ok := q.Pop(); !ok || v != 2 {
		t.Fatal("queued item lost after close")
	}
	if _, _, _, ok := q.Pop(); ok {
		t.Fatal("drained closed queue must report !ok")
	}
}

func TestQueueTryPop(t *testing.T) {
	q := NewQueue[int]()
	if _, _, _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty must be !ok")
	}
	q.Push(7)
	if v, _, _, ok := q.TryPop(); !ok || v != 7 {
		t.Fatal("TryPop lost item")
	}
}

func TestQueueConcurrentPublishers(t *testing.T) {
	q := NewQueue[int]()
	const pubs = 8
	const per = 500
	var wg sync.WaitGroup
	for p := 0; p < pubs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Push(p*per + i)
			}
		}(p)
	}
	seen := make(map[int]bool, pubs*per)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < pubs*per; i++ {
			v, _, _, ok := q.Pop()
			if !ok {
				t.Error("queue closed early")
				return
			}
			if seen[v] {
				t.Errorf("duplicate %d", v)
				return
			}
			seen[v] = true
		}
	}()
	wg.Wait()
	<-done
	if len(seen) != pubs*per {
		t.Fatalf("consumed %d messages", len(seen))
	}
	st := q.Stats()
	if st.Pushed != pubs*per || st.Popped != pubs*per {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQueuePerPublisherOrderPreserved(t *testing.T) {
	q := NewQueue[[2]int]() // [publisher, seq]
	const pubs = 4
	const per = 300
	var wg sync.WaitGroup
	for p := 0; p < pubs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Push([2]int{p, i})
			}
		}(p)
	}
	wg.Wait()
	last := map[int]int{}
	for i := 0; i < pubs*per; i++ {
		v, _, _, _ := q.Pop()
		if prev, ok := last[v[0]]; ok && v[1] != prev+1 {
			t.Fatalf("publisher %d order broken: %d after %d", v[0], v[1], prev)
		}
		last[v[0]] = v[1]
	}
}

// Full barrier protocol across three simulated commit processes.
func TestBarrierProtocol(t *testing.T) {
	const nodes = 3
	b := NewBarrier(nodes)
	queues := make([]*Queue[int], nodes)
	for i := range queues {
		queues[i] = NewQueue[int]()
	}

	var committed [nodes][]int
	var procWG sync.WaitGroup
	for i := 0; i < nodes; i++ {
		procWG.Add(1)
		go func(i int) {
			defer procWG.Done()
			now := vclock.Time(0)
			for {
				v, barrier, epoch, ok := queues[i].Pop()
				if !ok {
					return
				}
				if barrier {
					b.Arrive(epoch, now)
					rel, err := b.AwaitRelease(epoch)
					if err != nil {
						return
					}
					now = vclock.Max(now, rel)
					continue
				}
				// "Committing" op v takes 10µs of virtual time.
				now = now.Add(10 * time.Microsecond)
				committed[i] = append(committed[i], v)
			}
		}(i)
	}

	// Each node has two pending ops, then a dependent op runs.
	for i := 0; i < nodes; i++ {
		queues[i].Push(i * 10)
		queues[i].Push(i*10 + 1)
	}
	epoch, err := b.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		queues[i].PushBarrier(epoch)
	}
	drained, err := b.AwaitArrivals(epoch)
	if err != nil {
		t.Fatal(err)
	}
	// Each proc committed 2 ops at 10µs each → drained at 20µs.
	if drained != vclock.Time(20*time.Microsecond) {
		t.Fatalf("drain time = %v", drained)
	}
	for i := 0; i < nodes; i++ {
		if len(committed[i]) != 2 {
			t.Fatalf("node %d committed %d ops before barrier", i, len(committed[i]))
		}
	}
	// Dependent op takes 50µs, then release.
	b.Release(epoch, drained.Add(50*time.Microsecond))

	// Post-barrier ops flow again.
	for i := 0; i < nodes; i++ {
		queues[i].Push(100 + i)
		queues[i].Close()
	}
	procWG.Wait()
	for i := 0; i < nodes; i++ {
		if len(committed[i]) != 3 {
			t.Fatalf("node %d total commits = %d", i, len(committed[i]))
		}
	}
}

// Two dependent ops must serialize: Begin blocks until the first epoch
// fully retires.
func TestBarrierSerializesEpochs(t *testing.T) {
	b := NewBarrier(1)
	e1, _ := b.Begin()

	started := make(chan uint64)
	go func() {
		e2, err := b.Begin()
		if err != nil {
			return
		}
		started <- e2
	}()

	select {
	case <-started:
		t.Fatal("second Begin must block while epoch 1 is active")
	case <-time.After(20 * time.Millisecond):
	}

	// Retire epoch 1: arrive, release, ack.
	b.Arrive(e1, 0)
	if _, err := b.AwaitArrivals(e1); err != nil {
		t.Fatal(err)
	}
	b.Release(e1, 0)
	if _, err := b.AwaitRelease(e1); err != nil {
		t.Fatal(err)
	}

	select {
	case e2 := <-started:
		if e2 != e1+1 {
			t.Fatalf("second epoch = %d", e2)
		}
	case <-time.After(time.Second):
		t.Fatal("second Begin never proceeded")
	}
}

func TestBarrierVirtualTimeJoin(t *testing.T) {
	b := NewBarrier(2)
	e, _ := b.Begin()
	b.Arrive(e, vclock.Time(100))
	b.Arrive(e, vclock.Time(300))
	at, err := b.AwaitArrivals(e)
	if err != nil || at != vclock.Time(300) {
		t.Fatalf("arrivals join = %v, %v", at, err)
	}
	b.Release(e, vclock.Time(500))
	r1, _ := b.AwaitRelease(e)
	r2, _ := b.AwaitRelease(e)
	if r1 != vclock.Time(500) || r2 != vclock.Time(500) {
		t.Fatalf("release times = %v, %v", r1, r2)
	}
}

func TestBarrierCloseUnblocks(t *testing.T) {
	b := NewBarrier(2)
	e, _ := b.Begin()
	errs := make(chan error, 2)
	go func() {
		_, err := b.AwaitArrivals(e)
		errs <- err
	}()
	go func() {
		_, err := b.AwaitRelease(e)
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, fsapi.ErrClosed) {
			t.Fatalf("err = %v", err)
		}
	}
	if _, err := b.Begin(); !errors.Is(err, fsapi.ErrClosed) {
		t.Fatalf("Begin after close = %v", err)
	}
}

func TestBarrierWrongEpochPanics(t *testing.T) {
	b := NewBarrier(1)
	e, _ := b.Begin()
	defer func() {
		if recover() == nil {
			t.Fatal("stale arrival must panic")
		}
	}()
	b.Arrive(e+1, 0)
}

func TestBarrierStress(t *testing.T) {
	const nodes = 4
	const epochs = 50
	b := NewBarrier(nodes)
	var wg sync.WaitGroup
	// Each "commit process" participates in every epoch.
	arrivals := make([]chan uint64, nodes)
	for i := range arrivals {
		arrivals[i] = make(chan uint64, epochs)
	}
	for i := 0; i < nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for e := range arrivals[i] {
				b.Arrive(e, vclock.Time(e))
				if _, err := b.AwaitRelease(e); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	for n := 0; n < epochs; n++ {
		e, err := b.Begin()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nodes; i++ {
			arrivals[i] <- e
		}
		if _, err := b.AwaitArrivals(e); err != nil {
			t.Fatal(err)
		}
		b.Release(e, vclock.Time(e+1))
	}
	for i := range arrivals {
		close(arrivals[i])
	}
	wg.Wait()
	if got := b.Epoch(); got != epochs {
		t.Fatalf("final epoch = %d, want %d", got, epochs)
	}
}

func TestQueueStatsMaxDepth(t *testing.T) {
	q := NewQueue[int]()
	for i := 0; i < 5; i++ {
		q.Push(i)
	}
	q.Pop()
	q.Push(9)
	st := q.Stats()
	if st.MaxDepth != 5 {
		t.Fatalf("max depth = %d", st.MaxDepth)
	}
	_ = fmt.Sprintf("%+v", st)
}

func TestQueuePopBatchStopsAtBarrier(t *testing.T) {
	q := NewQueue[int]()
	q.Push(1)
	q.Push(2)
	q.Push(3)
	q.PushBarrier(7)
	q.Push(4)

	batch, barrier, _, ok := q.PopBatch(16)
	if !ok || barrier {
		t.Fatalf("first PopBatch = (%v, barrier=%v)", batch, barrier)
	}
	if len(batch) != 3 || batch[0] != 1 || batch[2] != 3 {
		t.Fatalf("batch before barrier = %v, want [1 2 3]", batch)
	}
	batch, barrier, epoch, ok := q.PopBatch(16)
	if !ok || !barrier || epoch != 7 || batch != nil {
		t.Fatalf("barrier PopBatch = (%v, barrier=%v, epoch=%d)", batch, barrier, epoch)
	}
	batch, barrier, _, ok = q.PopBatch(16)
	if !ok || barrier || len(batch) != 1 || batch[0] != 4 {
		t.Fatalf("trailing PopBatch = (%v, barrier=%v)", batch, barrier)
	}
}

func TestQueuePopBatchRespectsMax(t *testing.T) {
	q := NewQueue[int]()
	for i := 0; i < 5; i++ {
		q.Push(i)
	}
	batch, _, _, _ := q.PopBatch(2)
	if len(batch) != 2 || batch[0] != 0 || batch[1] != 1 {
		t.Fatalf("PopBatch(2) = %v", batch)
	}
	// max < 1 degrades to single-message pops rather than panicking.
	batch, _, _, _ = q.PopBatch(0)
	if len(batch) != 1 || batch[0] != 2 {
		t.Fatalf("PopBatch(0) = %v", batch)
	}
	st := q.Stats()
	if st.Popped != 3 {
		t.Fatalf("popped = %d, want 3", st.Popped)
	}
}

func TestQueuePopBatchBlocksAndClose(t *testing.T) {
	q := NewQueue[int]()
	got := make(chan []int, 1)
	go func() {
		batch, _, _, ok := q.PopBatch(8)
		if ok {
			got <- batch
		}
	}()
	time.Sleep(10 * time.Millisecond)
	q.Push(42)
	select {
	case batch := <-got:
		if len(batch) != 1 || batch[0] != 42 {
			t.Fatalf("batch = %v", batch)
		}
	case <-time.After(time.Second):
		t.Fatal("PopBatch did not wake on Push")
	}
	q.Close()
	if _, _, _, ok := q.PopBatch(8); ok {
		t.Fatal("PopBatch on closed drained queue must report !ok")
	}
}
