// Package mq provides the commit-queue machinery of Pacon's commit
// module (paper §III.D.1, Fig 5): a per-node publish/subscribe FIFO
// (ZeroMQ in the paper's prototype) carrying metadata operations from
// clients to the node's commit process, plus the barrier-epoch protocol
// (§III.E.2, Fig 6) that orders dependent operations across every commit
// process of a consistent region.
package mq

import (
	"sync"
	"sync/atomic"
	"time"

	"pacon/internal/fsapi"
)

// Queue is an unbounded FIFO of messages from a node's clients
// (publishers) to the node's commit process (subscriber). Barrier
// markers are interleaved in FIFO position with ordinary messages.
//
// One simplification versus the paper: Fig 6 has every client push its
// own barrier message and the commit process count them. Pushes into a
// node queue are serialized anyway, so a single marker per node carries
// the same information; the coordinator (Barrier) still counts one
// arrival per node, which is the paper's multi-node decision rule.
//
// The queue is split two-lock, Michael–Scott style: publishers append to
// the tail under pushMu while the subscriber drains the head under
// popMu, so a commit process chewing through a large batch never blocks
// the node's clients from publishing. The subscriber takes both locks
// (popMu then pushMu — the only lock order in this file) only for the
// brief tail→head swap when its head buffer runs dry, and the two
// buffers ping-pong so steady-state operation allocates nothing.
type Queue[T any] struct {
	// pushMu guards the publish side: tail, closed, trackWall, the
	// pushed counter and the depth high-water mark. cond (on pushMu)
	// signals new tail items and close.
	pushMu    sync.Mutex
	cond      *sync.Cond
	tail      []queueItem[T]
	closed    bool
	trackWall bool
	pushed    int64
	maxSeen   int

	// popMu guards the subscribe side: the head buffer and its consume
	// offset. The subscriber never holds popMu while blocked waiting for
	// items (see ensureHead), so OldestWall/Len/Stats samplers stay live
	// while the commit process sleeps on an empty queue.
	popMu   sync.Mutex
	head    []queueItem[T]
	headOff int

	// size and popped are atomic so each side updates them under its own
	// lock only.
	size   atomic.Int64
	popped atomic.Int64
}

type queueItem[T any] struct {
	barrier bool
	epoch   uint64
	wall    int64 // unix ns at push; 0 unless trackWall
	v       T
}

// NewQueue returns an empty open queue.
func NewQueue[T any]() *Queue[T] {
	q := &Queue[T]{}
	q.cond = sync.NewCond(&q.pushMu)
	return q
}

// Push publishes an operation message. Push on a closed queue returns
// ErrClosed.
func (q *Queue[T]) Push(v T) error {
	q.pushMu.Lock()
	if q.closed {
		q.pushMu.Unlock()
		return fsapi.ErrClosed
	}
	it := queueItem[T]{v: v}
	if q.trackWall {
		it.wall = time.Now().UnixNano()
	}
	q.tail = append(q.tail, it)
	q.pushed++
	if n := int(q.size.Add(1)); n > q.maxSeen {
		q.maxSeen = n
	}
	q.cond.Signal()
	q.pushMu.Unlock()
	return nil
}

// PushBarrier publishes a barrier marker for epoch.
func (q *Queue[T]) PushBarrier(epoch uint64) error {
	q.pushMu.Lock()
	if q.closed {
		q.pushMu.Unlock()
		return fsapi.ErrClosed
	}
	it := queueItem[T]{barrier: true, epoch: epoch}
	if q.trackWall {
		it.wall = time.Now().UnixNano()
	}
	q.tail = append(q.tail, it)
	q.size.Add(1)
	q.cond.Signal()
	q.pushMu.Unlock()
	return nil
}

// TrackWall enables (or disables) wall-clock push timestamps. The region
// turns it on when observability is attached; it costs one clock read
// per push when enabled and one branch when not.
func (q *Queue[T]) TrackWall(on bool) {
	q.pushMu.Lock()
	q.trackWall = on
	q.pushMu.Unlock()
}

// OldestWall returns the head item's wall-clock push time (unix ns).
// ok=false means the queue is empty or wall tracking is off. The head is
// the message the subscriber will dequeue next, so now-OldestWall bounds
// how long the oldest still-queued message has been waiting.
func (q *Queue[T]) OldestWall() (wall int64, ok bool) {
	q.popMu.Lock()
	defer q.popMu.Unlock()
	if q.headOff < len(q.head) {
		w := q.head[q.headOff].wall
		return w, w != 0
	}
	q.pushMu.Lock()
	defer q.pushMu.Unlock()
	if len(q.tail) == 0 || q.tail[0].wall == 0 {
		return 0, false
	}
	return q.tail[0].wall, true
}

// refillLocked swaps the published tail into the (drained) head buffer.
// Caller holds popMu; returns whether the head now has items. The old
// head buffer becomes the next tail, so the two buffers ping-pong and
// steady state allocates nothing.
func (q *Queue[T]) refillLocked() bool {
	q.pushMu.Lock()
	if len(q.tail) == 0 {
		q.pushMu.Unlock()
		return false
	}
	spare := q.head[:0]
	q.head = q.tail
	q.tail = spare
	q.headOff = 0
	q.pushMu.Unlock()
	return true
}

// ensureHead makes head[headOff:] non-empty, blocking until a message
// arrives or the queue is closed and fully drained (returns false).
// Caller holds popMu on entry and exit; while blocked, only pushMu is
// held (and released inside cond.Wait), never popMu.
func (q *Queue[T]) ensureHead() bool {
	for {
		if q.headOff < len(q.head) || q.refillLocked() {
			return true
		}
		q.popMu.Unlock()
		q.pushMu.Lock()
		for len(q.tail) == 0 && !q.closed {
			q.cond.Wait()
		}
		drained := q.closed && len(q.tail) == 0
		q.pushMu.Unlock()
		q.popMu.Lock()
		if drained {
			// Re-check under popMu: a concurrent consumer may have
			// refilled the head between our unlock and the close.
			if q.headOff < len(q.head) || q.refillLocked() {
				return true
			}
			return false
		}
	}
}

// takeHeadLocked consumes the head item. Caller holds popMu and has
// ensured the head is non-empty; the vacated slot is zeroed so the queue
// does not pin the message's referents until the next buffer swap.
func (q *Queue[T]) takeHeadLocked() queueItem[T] {
	it := q.head[q.headOff]
	q.head[q.headOff] = queueItem[T]{}
	q.headOff++
	q.size.Add(-1)
	q.popped.Add(1)
	return it
}

// Pop blocks for the next message. ok=false means the queue was closed
// and fully drained. barrier=true marks a barrier message whose epoch is
// returned; v is the zero value then.
func (q *Queue[T]) Pop() (v T, barrier bool, epoch uint64, ok bool) {
	q.popMu.Lock()
	defer q.popMu.Unlock()
	if !q.ensureHead() {
		return v, false, 0, false
	}
	it := q.takeHeadLocked()
	return it.v, it.barrier, it.epoch, true
}

// PopBatch blocks like Pop, then drains up to max consecutive ordinary
// messages in one critical section. A barrier at the head is returned
// alone (batch is nil, barrier=true); otherwise the batch stops before
// the first barrier so every returned message belongs to the same
// barrier epoch — the window inside which the commit process may
// coalesce same-path operations. ok=false means closed and drained.
func (q *Queue[T]) PopBatch(max int) (batch []T, barrier bool, epoch uint64, ok bool) {
	return q.PopBatchInto(nil, max)
}

// PopBatchInto is PopBatch writing into buf's backing array (buf may be
// nil). The subscriber owns the returned batch only until its next
// PopBatchInto call with the same buffer — the commit loop's dequeue
// path, which copies ops onward before re-entering, so the batch buffer
// is allocated once for the loop's lifetime.
func (q *Queue[T]) PopBatchInto(buf []T, max int) (batch []T, barrier bool, epoch uint64, ok bool) {
	if max < 1 {
		max = 1
	}
	q.popMu.Lock()
	defer q.popMu.Unlock()
	if !q.ensureHead() {
		return nil, false, 0, false
	}
	if q.head[q.headOff].barrier {
		it := q.takeHeadLocked()
		return nil, true, it.epoch, true
	}
	batch = buf[:0]
	n := 0
	for n < max {
		if q.headOff >= len(q.head) && !q.refillLocked() {
			break
		}
		if q.head[q.headOff].barrier {
			break
		}
		batch = append(batch, q.head[q.headOff].v)
		q.head[q.headOff] = queueItem[T]{}
		q.headOff++
		n++
	}
	q.size.Add(-int64(n))
	q.popped.Add(int64(n))
	return batch, false, 0, true
}

// TryPop is Pop without blocking; ok=false means empty right now (or
// closed and drained).
func (q *Queue[T]) TryPop() (v T, barrier bool, epoch uint64, ok bool) {
	q.popMu.Lock()
	defer q.popMu.Unlock()
	if q.headOff >= len(q.head) && !q.refillLocked() {
		return v, false, 0, false
	}
	it := q.takeHeadLocked()
	return it.v, it.barrier, it.epoch, true
}

// Len returns the number of queued messages (including barriers).
func (q *Queue[T]) Len() int {
	if n := int(q.size.Load()); n > 0 {
		return n
	}
	return 0
}

// Close wakes the subscriber; queued messages can still be drained.
func (q *Queue[T]) Close() {
	q.pushMu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.pushMu.Unlock()
}

// QueueStats reports queue pressure for the bench harness.
type QueueStats struct {
	Pushed, Popped int64
	MaxDepth       int
}

// Stats returns counters.
func (q *Queue[T]) Stats() QueueStats {
	q.pushMu.Lock()
	pushed, maxSeen := q.pushed, q.maxSeen
	q.pushMu.Unlock()
	return QueueStats{Pushed: pushed, Popped: q.popped.Load(), MaxDepth: maxSeen}
}
