// Package mq provides the commit-queue machinery of Pacon's commit
// module (paper §III.D.1, Fig 5): a per-node publish/subscribe FIFO
// (ZeroMQ in the paper's prototype) carrying metadata operations from
// clients to the node's commit process, plus the barrier-epoch protocol
// (§III.E.2, Fig 6) that orders dependent operations across every commit
// process of a consistent region.
package mq

import (
	"sync"
	"time"

	"pacon/internal/fsapi"
)

// Queue is an unbounded FIFO of messages from a node's clients
// (publishers) to the node's commit process (subscriber). Barrier
// markers are interleaved in FIFO position with ordinary messages.
//
// One simplification versus the paper: Fig 6 has every client push its
// own barrier message and the commit process count them. Pushes into a
// node queue are serialized anyway, so a single marker per node carries
// the same information; the coordinator (Barrier) still counts one
// arrival per node, which is the paper's multi-node decision rule.
type Queue[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []queueItem[T]
	closed bool

	// trackWall, when enabled, stamps every item with its wall-clock
	// push time so OldestWall can report head-of-queue residency age
	// (the consistency-lag gauges). Off by default: the disabled path
	// costs one branch per push and never reads the clock.
	trackWall bool

	pushed  int64
	popped  int64
	maxSeen int
}

type queueItem[T any] struct {
	barrier bool
	epoch   uint64
	wall    int64 // unix ns at push; 0 unless trackWall
	v       T
}

// NewQueue returns an empty open queue.
func NewQueue[T any]() *Queue[T] {
	q := &Queue[T]{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push publishes an operation message. Push on a closed queue returns
// ErrClosed.
func (q *Queue[T]) Push(v T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return fsapi.ErrClosed
	}
	it := queueItem[T]{v: v}
	if q.trackWall {
		it.wall = time.Now().UnixNano()
	}
	q.items = append(q.items, it)
	q.pushed++
	if len(q.items) > q.maxSeen {
		q.maxSeen = len(q.items)
	}
	q.cond.Signal()
	return nil
}

// PushBarrier publishes a barrier marker for epoch.
func (q *Queue[T]) PushBarrier(epoch uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return fsapi.ErrClosed
	}
	it := queueItem[T]{barrier: true, epoch: epoch}
	if q.trackWall {
		it.wall = time.Now().UnixNano()
	}
	q.items = append(q.items, it)
	q.cond.Signal()
	return nil
}

// TrackWall enables (or disables) wall-clock push timestamps. The region
// turns it on when observability is attached; it costs one clock read
// per push when enabled and one branch when not.
func (q *Queue[T]) TrackWall(on bool) {
	q.mu.Lock()
	q.trackWall = on
	q.mu.Unlock()
}

// OldestWall returns the head item's wall-clock push time (unix ns).
// ok=false means the queue is empty or wall tracking is off. The head is
// the message the subscriber will dequeue next, so now-OldestWall bounds
// how long the oldest still-queued message has been waiting.
func (q *Queue[T]) OldestWall() (wall int64, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 || q.items[0].wall == 0 {
		return 0, false
	}
	return q.items[0].wall, true
}

// Pop blocks for the next message. ok=false means the queue was closed
// and fully drained. barrier=true marks a barrier message whose epoch is
// returned; v is the zero value then.
func (q *Queue[T]) Pop() (v T, barrier bool, epoch uint64, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return v, false, 0, false
	}
	it := q.items[0]
	q.items = q.items[1:]
	q.popped++
	return it.v, it.barrier, it.epoch, true
}

// PopBatch blocks like Pop, then drains up to max consecutive ordinary
// messages in one critical section. A barrier at the head is returned
// alone (batch is nil, barrier=true); otherwise the batch stops before
// the first barrier so every returned message belongs to the same
// barrier epoch — the window inside which the commit process may
// coalesce same-path operations. ok=false means closed and drained.
func (q *Queue[T]) PopBatch(max int) (batch []T, barrier bool, epoch uint64, ok bool) {
	if max < 1 {
		max = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false, 0, false
	}
	if q.items[0].barrier {
		it := q.items[0]
		q.items = q.items[1:]
		q.popped++
		return nil, true, it.epoch, true
	}
	n := 0
	for n < max && n < len(q.items) && !q.items[n].barrier {
		n++
	}
	batch = make([]T, n)
	for i := 0; i < n; i++ {
		batch[i] = q.items[i].v
	}
	q.items = q.items[n:]
	q.popped += int64(n)
	return batch, false, 0, true
}

// TryPop is Pop without blocking; ok=false means empty right now (or
// closed and drained).
func (q *Queue[T]) TryPop() (v T, barrier bool, epoch uint64, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return v, false, 0, false
	}
	it := q.items[0]
	q.items = q.items[1:]
	q.popped++
	return it.v, it.barrier, it.epoch, true
}

// Len returns the number of queued messages (including barriers).
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close wakes the subscriber; queued messages can still be drained.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// QueueStats reports queue pressure for the bench harness.
type QueueStats struct {
	Pushed, Popped int64
	MaxDepth       int
}

// Stats returns counters.
func (q *Queue[T]) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return QueueStats{Pushed: q.pushed, Popped: q.popped, MaxDepth: q.maxSeen}
}
