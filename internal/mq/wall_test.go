package mq

import (
	"testing"
	"time"
)

// TestOldestWallDisabled: with wall tracking off (the Obs-disabled
// default) the queue must never report an age — staleness gauges read
// zero rather than garbage.
func TestOldestWallDisabled(t *testing.T) {
	q := NewQueue[int]()
	q.Push(1)
	q.PushBarrier(1)
	if wall, ok := q.OldestWall(); ok || wall != 0 {
		t.Fatalf("OldestWall with tracking off = (%d, %v), want (0, false)", wall, ok)
	}
}

// TestOldestWallTracksHead: with tracking on, OldestWall follows the
// head item's push time — advancing monotonically as older items pop,
// stamping barrier items too, and going empty-false after a drain.
func TestOldestWallTracksHead(t *testing.T) {
	q := NewQueue[int]()
	q.TrackWall(true)

	if _, ok := q.OldestWall(); ok {
		t.Fatal("OldestWall reported a wall on an empty queue")
	}

	before := time.Now().UnixNano()
	q.Push(1)
	time.Sleep(time.Millisecond)
	q.PushBarrier(7)
	time.Sleep(time.Millisecond)
	q.Push(2)
	after := time.Now().UnixNano()

	w1, ok := q.OldestWall()
	if !ok || w1 < before || w1 > after {
		t.Fatalf("head wall %d outside push window [%d, %d] (ok=%v)", w1, before, after, ok)
	}

	q.Pop() // op 1
	w2, ok := q.OldestWall()
	if !ok || w2 < w1 {
		t.Fatalf("barrier head wall %d went backwards from %d (ok=%v)", w2, w1, ok)
	}

	q.Pop() // barrier
	w3, ok := q.OldestWall()
	if !ok || w3 < w2 {
		t.Fatalf("final head wall %d went backwards from %d (ok=%v)", w3, w2, ok)
	}

	q.Pop() // op 2
	if _, ok := q.OldestWall(); ok {
		t.Fatal("OldestWall still reporting after drain")
	}
}
