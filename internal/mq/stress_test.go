package mq

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// trackedOp mirrors the shape the region pushes: a path plus a unique
// id, so the consumer can assert exactly-once delivery per message.
type trackedOp struct {
	path string
	id   int
}

// refTracker mirrors the region's pathTracker discipline: add on push,
// remove exactly once on dequeue. A count going negative means a
// message was delivered twice; a nonzero count at the end means one was
// lost. (The real pathTracker lives in core and is per-node; the
// discipline it depends on — every push popped exactly once — is the
// queue's contract under test here.)
type refTracker struct {
	mu     sync.Mutex
	counts map[string]int
}

func (t *refTracker) add(p string) {
	t.mu.Lock()
	t.counts[p]++
	t.mu.Unlock()
}

func (t *refTracker) remove(p string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.counts[p]--
	if t.counts[p] < 0 {
		return fmt.Errorf("path %q released more times than pushed", p)
	}
	if t.counts[p] == 0 {
		delete(t.counts, p)
	}
	return nil
}

// TestQueueStressExactlyOnce interleaves many publishers (ordinary
// messages and barriers) with a batch-draining subscriber and
// concurrent OldestWall/Len/Stats samplers — the two-lock queue's full
// surface at once. It asserts the pathTracker discipline (every push
// released exactly once, never twice), that no message is lost or
// reordered within a publisher's stream, and that the sampled
// OldestWall never moves backward (heads are consumed in push order and
// wall stamps are taken under the push lock, so the head's stamp is
// nondecreasing over time).
func TestQueueStressExactlyOnce(t *testing.T) {
	const (
		publishers = 8
		perPub     = 2000
		batchMax   = 64
	)
	q := NewQueue[trackedOp]()
	q.TrackWall(true)
	tracker := &refTracker{counts: make(map[string]int)}

	var pubWG sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			for i := 0; i < perPub; i++ {
				path := fmt.Sprintf("/w/p%d/f%d", p, i%17)
				tracker.add(path)
				if err := q.Push(trackedOp{path: path, id: p*perPub + i}); err != nil {
					t.Errorf("push: %v", err)
					return
				}
				if i%100 == 99 {
					if err := q.PushBarrier(uint64(p*perPub + i)); err != nil {
						t.Errorf("push barrier: %v", err)
						return
					}
				}
			}
		}(p)
	}

	// Samplers: OldestWall monotonicity plus Len/Stats liveness while
	// the subscriber drains. These must never block behind a sleeping or
	// batch-chewing subscriber — the reason the queue is two-lock.
	samplerStop := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		var lastWall int64
		for {
			select {
			case <-samplerStop:
				return
			default:
			}
			if w, ok := q.OldestWall(); ok {
				if w < lastWall {
					t.Errorf("OldestWall went backward: %d -> %d", lastWall, w)
					return
				}
				lastWall = w
			}
			if q.Len() < 0 {
				t.Error("negative Len")
				return
			}
			st := q.Stats()
			if st.Popped > st.Pushed {
				t.Errorf("popped %d > pushed %d", st.Popped, st.Pushed)
				return
			}
			runtime.Gosched()
		}
	}()

	// Subscriber: drain batches, releasing the tracker exactly once per
	// message and checking per-publisher FIFO order.
	var (
		seen     = make(map[int]bool, publishers*perPub)
		lastID   = make([]int, publishers)
		got      int
		barriers int
		buf      []trackedOp
	)
	for p := range lastID {
		lastID[p] = -1
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			batch, barrier, _, ok := q.PopBatchInto(buf, batchMax)
			if !ok {
				return
			}
			if barrier {
				barriers++
				continue
			}
			if batch != nil {
				buf = batch
			}
			for _, op := range batch {
				if seen[op.id] {
					t.Errorf("message %d delivered twice", op.id)
					return
				}
				seen[op.id] = true
				p := op.id / perPub
				if op.id%perPub <= lastID[p] {
					t.Errorf("publisher %d reordered: %d after %d", p, op.id%perPub, lastID[p])
					return
				}
				lastID[p] = op.id % perPub
				if err := tracker.remove(op.path); err != nil {
					t.Error(err)
					return
				}
				got++
			}
		}
	}()

	pubWG.Wait()
	q.Close()
	<-done
	close(samplerStop)
	samplerWG.Wait()

	if got != publishers*perPub {
		t.Fatalf("delivered %d messages, want %d", got, publishers*perPub)
	}
	if wantBarriers := publishers * (perPub / 100); barriers != wantBarriers {
		t.Fatalf("delivered %d barriers, want %d", barriers, wantBarriers)
	}
	tracker.mu.Lock()
	defer tracker.mu.Unlock()
	if len(tracker.counts) != 0 {
		t.Fatalf("%d paths never released: %v", len(tracker.counts), tracker.counts)
	}
	st := q.Stats()
	if st.Pushed != int64(publishers*perPub) {
		t.Fatalf("Stats.Pushed = %d, want %d", st.Pushed, publishers*perPub)
	}
	if st.Popped != int64(publishers*perPub+barriers) {
		t.Fatalf("Stats.Popped = %d, want %d", st.Popped, publishers*perPub+barriers)
	}
}

// TestQueueTwoLockNoPushStall verifies the design goal directly: with
// the subscriber parked mid-drain (holding the pop side), pushes and
// OldestWall still complete — the push side never waits on the drain
// side.
func TestQueueTwoLockNoPushStall(t *testing.T) {
	q := NewQueue[int]()
	q.TrackWall(true)
	if err := q.Push(1); err != nil {
		t.Fatal(err)
	}

	// Park a consumer inside the pop side: it holds popMu while blocked
	// in ensureHead only when empty — so instead simulate a slow drain
	// by taking items one at a time while pushes race in.
	const n = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := q.Push(i); err != nil {
				t.Errorf("push %d: %v", i, err)
				return
			}
			if i%64 == 0 {
				if _, ok := q.OldestWall(); !ok && q.Len() > 0 {
					// Wall tracking is on and the queue is non-empty;
					// the only benign miss is the race where the drain
					// just emptied it between the two calls.
					continue
				}
			}
		}
	}()
	drained := 0
	for drained < n+1 {
		if _, _, _, ok := q.TryPop(); ok {
			drained++
		} else {
			runtime.Gosched()
		}
	}
	wg.Wait()
	if q.Len() != 0 {
		t.Fatalf("Len = %d after full drain", q.Len())
	}
}
