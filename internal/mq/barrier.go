package mq

import (
	"sync"

	"pacon/internal/fsapi"
	"pacon/internal/vclock"
)

// Barrier coordinates barrier epochs across the commit processes of one
// consistent region (paper §III.E.2). The protocol per dependent
// operation (rmdir, readdir):
//
//  1. The initiating client calls Begin — barrier epochs are globally
//     ordered within a region, so Begin serializes concurrent dependent
//     operations (two interleaved epochs across nodes would deadlock the
//     commit processes).
//  2. The initiator pushes one barrier marker into every node queue.
//  3. Each commit process, on reaching its marker, calls Arrive with its
//     virtual clock and then blocks in AwaitRelease.
//  4. The initiator blocks in AwaitArrivals; its return value is the
//     virtual time at which every earlier operation has been applied to
//     the DFS. It then performs the dependent operation synchronously
//     and calls Release with the completion time.
//  5. Commit processes resume from AwaitRelease, joining their clocks
//     with the release time, and move to the next epoch.
type Barrier struct {
	nodes int

	mu   sync.Mutex
	cond *sync.Cond

	active      bool
	closed      bool
	epoch       uint64
	expect      int // participating commit processes this epoch
	arrived     int
	arriveTime  vclock.Time
	released    bool
	releaseTime vclock.Time
	acks        int
}

// NewBarrier creates a coordinator for a region spanning `nodes` commit
// processes.
func NewBarrier(nodes int) *Barrier {
	if nodes < 1 {
		panic("mq: barrier needs at least one node")
	}
	b := &Barrier{nodes: nodes}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Nodes returns the region's commit-process count.
func (b *Barrier) Nodes() int { return b.nodes }

// Epoch returns the current barrier epoch number.
func (b *Barrier) Epoch() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.epoch
}

// Begin opens a new barrier epoch, waiting for any active epoch to fully
// retire first. It returns the new epoch number.
func (b *Barrier) Begin() (uint64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.active && !b.closed {
		b.cond.Wait()
	}
	if b.closed {
		return 0, fsapi.ErrClosed
	}
	b.active = true
	b.epoch++
	b.expect = b.nodes
	b.arrived = 0
	b.arriveTime = 0
	b.released = false
	b.releaseTime = 0
	b.acks = 0
	return b.epoch, nil
}

// SetExpect narrows the epoch to n participating commit processes
// (path-scoped barriers: queues with no pending ops under the scope get
// no marker and neither arrive nor ack). The initiator must call it
// after Begin and before pushing markers — it owns the epoch exclusively
// in that window, so the count cannot race with arrivals. n == 0 is
// legal: AwaitArrivals returns immediately and Release retires the
// epoch itself.
func (b *Barrier) SetExpect(epoch uint64, n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if epoch != b.epoch || !b.active {
		panic("mq: barrier SetExpect for wrong epoch")
	}
	if n < 0 || n > b.nodes {
		panic("mq: barrier SetExpect out of range")
	}
	b.expect = n
	b.cond.Broadcast()
}

// Arrive records that one commit process reached the epoch's marker at
// virtual time `at`.
func (b *Barrier) Arrive(epoch uint64, at vclock.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if epoch != b.epoch || !b.active {
		// A stale arrival is a protocol bug; fail loudly.
		panic("mq: barrier arrival for wrong epoch")
	}
	b.arrived++
	b.arriveTime = vclock.Max(b.arriveTime, at)
	b.cond.Broadcast()
}

// AwaitArrivals blocks the initiator until every commit process arrived,
// returning the latest arrival time — the virtual instant the region's
// earlier operations are all on the DFS.
func (b *Barrier) AwaitArrivals(epoch uint64) (vclock.Time, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.epoch == epoch && b.active && b.arrived < b.expect && !b.closed {
		b.cond.Wait()
	}
	if b.closed {
		return 0, fsapi.ErrClosed
	}
	return b.arriveTime, nil
}

// Release publishes the dependent operation's completion time and lets
// the commit processes resume.
func (b *Barrier) Release(epoch uint64, at vclock.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if epoch != b.epoch || !b.active {
		panic("mq: barrier release for wrong epoch")
	}
	b.released = true
	b.releaseTime = at
	if b.acks >= b.expect {
		// Zero-participant epoch: no commit process will ack, so the
		// release itself retires the epoch.
		b.active = false
	}
	b.cond.Broadcast()
}

// AwaitRelease blocks a commit process until the epoch's dependent
// operation committed; the returned time joins the process's clock. The
// epoch retires once every process acknowledged.
func (b *Barrier) AwaitRelease(epoch uint64) (vclock.Time, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for !(b.epoch == epoch && b.released) && !b.closed {
		b.cond.Wait()
	}
	if b.closed {
		return 0, fsapi.ErrClosed
	}
	t := b.releaseTime
	b.acks++
	if b.acks == b.expect {
		b.active = false
		b.cond.Broadcast()
	}
	return t, nil
}

// Close unblocks every waiter with ErrClosed (region shutdown or
// simulated node failure).
func (b *Barrier) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.cond.Broadcast()
}
