package mq

import "testing"

func BenchmarkQueuePushPop(b *testing.B) {
	q := NewQueue[int]()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		if _, _, _, ok := q.Pop(); !ok {
			b.Fatal("pop failed")
		}
	}
}

func BenchmarkQueueContendedPublishers(b *testing.B) {
	q := NewQueue[int]()
	done := make(chan struct{})
	go func() {
		for {
			if _, _, _, ok := q.Pop(); !ok {
				close(done)
				return
			}
		}
	}()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q.Push(1)
		}
	})
	q.Close()
	<-done
}

func BenchmarkBarrierEpoch(b *testing.B) {
	bar := NewBarrier(1)
	for i := 0; i < b.N; i++ {
		e, err := bar.Begin()
		if err != nil {
			b.Fatal(err)
		}
		bar.Arrive(e, 0)
		if _, err := bar.AwaitArrivals(e); err != nil {
			b.Fatal(err)
		}
		bar.Release(e, 0)
		if _, err := bar.AwaitRelease(e); err != nil {
			b.Fatal(err)
		}
	}
}
