// Package namespace provides path canonicalisation and the in-memory
// namespace tree used by the DFS metadata server. The tree enforces the
// paper's "namespace conventions" (§III.E.1): an object being created
// must not exist, its parent must already exist and be a directory, and
// a removed object must exist — the DFS-side guarantees Pacon's
// independent commit relies on.
package namespace

import "strings"

// Clean canonicalises a path: one leading slash, no trailing slash
// (except root), empty and dot segments removed. It is intentionally a
// small subset of path.Clean — ".." is treated as a literal name, since
// no system in this repository generates it.
//
// Already-clean paths — the overwhelmingly common case, since every
// layer cleans on entry and then passes cleaned paths down — return the
// input unchanged without allocating: Clean sits on every op's hot path
// and the Split+Builder slow path used to be the single largest
// allocation site of the whole create chain.
func Clean(p string) string {
	if isClean(p) {
		return p
	}
	var b strings.Builder
	b.Grow(len(p) + 1)
	for _, seg := range strings.Split(p, "/") {
		if seg == "" || seg == "." {
			continue
		}
		b.WriteByte('/')
		b.WriteString(seg)
	}
	if b.Len() == 0 {
		return "/"
	}
	return b.String()
}

// isClean reports whether p is already in canonical form: "/" or a
// '/'-prefixed path with no empty, "." or trailing segments. One byte
// scan, zero allocations.
func isClean(p string) bool {
	if p == "/" {
		return true
	}
	if len(p) == 0 || p[0] != '/' || p[len(p)-1] == '/' {
		return false
	}
	segStart := 1
	for i := 1; i <= len(p); i++ {
		if i == len(p) || p[i] == '/' {
			seg := p[segStart:i]
			if len(seg) == 0 || seg == "." {
				return false
			}
			segStart = i + 1
		}
	}
	return true
}

// Split returns the parent directory and base name of a cleaned path.
// Split("/") returns ("/", "").
func Split(p string) (dir, name string) {
	p = Clean(p)
	if p == "/" {
		return "/", ""
	}
	i := strings.LastIndexByte(p, '/')
	if i == 0 {
		return "/", p[1:]
	}
	return p[:i], p[i+1:]
}

// Join appends name under dir.
func Join(dir, name string) string {
	dir = Clean(dir)
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}

// Components returns the path's segments ("/a/b" → ["a","b"]); root has
// none.
func Components(p string) []string {
	p = Clean(p)
	if p == "/" {
		return nil
	}
	return strings.Split(p[1:], "/")
}

// EachComponent calls fn for every segment of p in order, stopping early
// when fn returns false. It is Components without the slice allocation —
// the segments are subslices of the cleaned path — for per-op tree walks.
func EachComponent(p string, fn func(seg string) bool) {
	p = Clean(p)
	if p == "/" {
		return
	}
	start := 1
	for i := 1; i <= len(p); i++ {
		if i == len(p) || p[i] == '/' {
			if !fn(p[start:i]) {
				return
			}
			start = i + 1
		}
	}
}

// Depth is the number of components ("/" = 0, "/a/b" = 2).
func Depth(p string) int {
	p = Clean(p)
	if p == "/" {
		return 0
	}
	return strings.Count(p, "/")
}

// IsUnder reports whether p equals root or lies in root's subtree.
func IsUnder(p, root string) bool {
	p, root = Clean(p), Clean(root)
	if root == "/" {
		return true
	}
	if p == root {
		return true
	}
	return strings.HasPrefix(p, root+"/")
}

// Ancestors lists every proper ancestor of p from "/" down to its
// parent ("/a/b/c" → ["/", "/a", "/a/b"]). Each ancestor is a prefix
// subslice of the cleaned path, so only the slice header is allocated.
func Ancestors(p string) []string {
	p = Clean(p)
	if p == "/" {
		return nil
	}
	out := make([]string, 0, Depth(p))
	out = append(out, "/")
	for i := 1; i < len(p); i++ {
		if p[i] == '/' {
			out = append(out, p[:i])
		}
	}
	return out
}

// VisitAncestors calls fn for every proper ancestor of p in Ancestors
// order, stopping early when fn returns false — the zero-allocation form
// for per-op traversal loops (every DFS call resolves its ancestors).
func VisitAncestors(p string, fn func(anc string) bool) {
	p = Clean(p)
	if p == "/" {
		return
	}
	if !fn("/") {
		return
	}
	for i := 1; i < len(p); i++ {
		if p[i] == '/' && !fn(p[:i]) {
			return
		}
	}
}
