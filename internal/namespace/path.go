// Package namespace provides path canonicalisation and the in-memory
// namespace tree used by the DFS metadata server. The tree enforces the
// paper's "namespace conventions" (§III.E.1): an object being created
// must not exist, its parent must already exist and be a directory, and
// a removed object must exist — the DFS-side guarantees Pacon's
// independent commit relies on.
package namespace

import "strings"

// Clean canonicalises a path: one leading slash, no trailing slash
// (except root), empty and dot segments removed. It is intentionally a
// small subset of path.Clean — ".." is treated as a literal name, since
// no system in this repository generates it.
func Clean(p string) string {
	var b strings.Builder
	b.Grow(len(p) + 1)
	for _, seg := range strings.Split(p, "/") {
		if seg == "" || seg == "." {
			continue
		}
		b.WriteByte('/')
		b.WriteString(seg)
	}
	if b.Len() == 0 {
		return "/"
	}
	return b.String()
}

// Split returns the parent directory and base name of a cleaned path.
// Split("/") returns ("/", "").
func Split(p string) (dir, name string) {
	p = Clean(p)
	if p == "/" {
		return "/", ""
	}
	i := strings.LastIndexByte(p, '/')
	if i == 0 {
		return "/", p[1:]
	}
	return p[:i], p[i+1:]
}

// Join appends name under dir.
func Join(dir, name string) string {
	dir = Clean(dir)
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}

// Components returns the path's segments ("/a/b" → ["a","b"]); root has
// none.
func Components(p string) []string {
	p = Clean(p)
	if p == "/" {
		return nil
	}
	return strings.Split(p[1:], "/")
}

// Depth is the number of components ("/" = 0, "/a/b" = 2).
func Depth(p string) int { return len(Components(p)) }

// IsUnder reports whether p equals root or lies in root's subtree.
func IsUnder(p, root string) bool {
	p, root = Clean(p), Clean(root)
	if root == "/" {
		return true
	}
	if p == root {
		return true
	}
	return strings.HasPrefix(p, root+"/")
}

// Ancestors lists every proper ancestor of p from "/" down to its
// parent ("/a/b/c" → ["/", "/a", "/a/b"]).
func Ancestors(p string) []string {
	comps := Components(p)
	out := make([]string, 0, len(comps))
	out = append(out, "/")
	cur := ""
	for i := 0; i < len(comps)-1; i++ {
		cur += "/" + comps[i]
		out = append(out, cur)
	}
	if len(comps) == 0 {
		return nil
	}
	return out
}
