package namespace

import (
	"strings"
	"testing"
)

// FuzzClean pins Clean's invariants for arbitrary input: result starts
// with '/', has no empty or "." segments, no trailing slash except root,
// and Clean is idempotent.
func FuzzClean(f *testing.F) {
	for _, s := range []string{"", "/", "a//b", "/a/./b/", "////", "a/b/c", "/work space/x"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, p string) {
		c := Clean(p)
		if !strings.HasPrefix(c, "/") {
			t.Fatalf("Clean(%q) = %q lacks leading slash", p, c)
		}
		if c != "/" && strings.HasSuffix(c, "/") {
			t.Fatalf("Clean(%q) = %q has trailing slash", p, c)
		}
		if strings.Contains(c, "//") {
			t.Fatalf("Clean(%q) = %q has empty segment", p, c)
		}
		for _, seg := range Components(c) {
			if seg == "" || seg == "." {
				t.Fatalf("Clean(%q) kept segment %q", p, seg)
			}
		}
		if again := Clean(c); again != c {
			t.Fatalf("Clean not idempotent: %q -> %q -> %q", p, c, again)
		}
		// Split/Join round-trips any cleaned non-root path.
		if c != "/" {
			dir, name := Split(c)
			if Join(dir, name) != c {
				t.Fatalf("Join(Split(%q)) = %q", c, Join(dir, name))
			}
		}
		// Depth agrees with Components.
		if Depth(c) != len(Components(c)) {
			t.Fatalf("Depth(%q) = %d, components %d", c, Depth(c), len(Components(c)))
		}
	})
}
