package namespace

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"pacon/internal/fsapi"
)

func TestClean(t *testing.T) {
	cases := map[string]string{
		"":            "/",
		"/":           "/",
		"//":          "/",
		"a":           "/a",
		"/a/b":        "/a/b",
		"/a/b/":       "/a/b",
		"//a///b//":   "/a/b",
		"/./a/./b/.":  "/a/b",
		"a/b/c":       "/a/b/c",
		"/work space": "/work space",
	}
	for in, want := range cases {
		if got := Clean(in); got != want {
			t.Errorf("Clean(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSplitJoin(t *testing.T) {
	dir, name := Split("/a/b/c")
	if dir != "/a/b" || name != "c" {
		t.Fatalf("Split = %q, %q", dir, name)
	}
	dir, name = Split("/top")
	if dir != "/" || name != "top" {
		t.Fatalf("Split(/top) = %q, %q", dir, name)
	}
	dir, name = Split("/")
	if dir != "/" || name != "" {
		t.Fatalf("Split(/) = %q, %q", dir, name)
	}
	if Join("/", "a") != "/a" || Join("/a", "b") != "/a/b" {
		t.Fatal("Join wrong")
	}
}

func TestSplitJoinRoundTripProperty(t *testing.T) {
	f := func(segs []uint8) bool {
		p := "/"
		for _, s := range segs {
			p = Join(p, fmt.Sprintf("s%d", s%50))
		}
		// Join of Split must reproduce the path.
		if p == "/" {
			return true
		}
		dir, name := Split(p)
		return Join(dir, name) == p && Clean(p) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComponentsDepth(t *testing.T) {
	if Depth("/") != 0 || Depth("/a") != 1 || Depth("/a/b/c") != 3 {
		t.Fatal("Depth wrong")
	}
	c := Components("/x/y")
	if len(c) != 2 || c[0] != "x" || c[1] != "y" {
		t.Fatalf("Components = %v", c)
	}
}

func TestIsUnder(t *testing.T) {
	cases := []struct {
		p, root string
		want    bool
	}{
		{"/a/b", "/a", true},
		{"/a", "/a", true},
		{"/ab", "/a", false},
		{"/a/b", "/a/b/c", false},
		{"/anything", "/", true},
		{"/", "/", true},
	}
	for _, c := range cases {
		if got := IsUnder(c.p, c.root); got != c.want {
			t.Errorf("IsUnder(%q, %q) = %v", c.p, c.root, got)
		}
	}
}

func TestAncestors(t *testing.T) {
	a := Ancestors("/a/b/c")
	if len(a) != 3 || a[0] != "/" || a[1] != "/a" || a[2] != "/a/b" {
		t.Fatalf("Ancestors = %v", a)
	}
	if got := Ancestors("/"); got != nil {
		t.Fatalf("Ancestors(/) = %v", got)
	}
	if a := Ancestors("/top"); len(a) != 1 || a[0] != "/" {
		t.Fatalf("Ancestors(/top) = %v", a)
	}
}

var cred = fsapi.Cred{UID: 1000, GID: 1000}

func newTestTree(t *testing.T) *Tree {
	t.Helper()
	tr := NewTree(cred)
	if err := tr.Mkdir("/w", fsapi.NewDirStat(cred, 0o755)); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTreeMkdirCreateLookup(t *testing.T) {
	tr := newTestTree(t)
	if err := tr.Create("/w/f1", fsapi.NewFileStat(cred, 0o644)); err != nil {
		t.Fatal(err)
	}
	st, err := tr.Lookup("/w/f1")
	if err != nil || st.Type != fsapi.TypeFile {
		t.Fatalf("lookup: %+v %v", st, err)
	}
	st, err = tr.Lookup("/w")
	if err != nil || !st.IsDir() {
		t.Fatalf("dir lookup: %+v %v", st, err)
	}
	if _, err := tr.Lookup("/nope"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("missing lookup err = %v", err)
	}
	if tr.Len() != 2 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestTreeNamespaceConventions(t *testing.T) {
	tr := newTestTree(t)
	// 1: object to be created must not exist.
	tr.Create("/w/f", fsapi.NewFileStat(cred, 0o644))
	if err := tr.Create("/w/f", fsapi.NewFileStat(cred, 0o644)); !errors.Is(err, fsapi.ErrExist) {
		t.Fatalf("duplicate create = %v", err)
	}
	if err := tr.Mkdir("/w", fsapi.NewDirStat(cred, 0o755)); !errors.Is(err, fsapi.ErrExist) {
		t.Fatalf("duplicate mkdir = %v", err)
	}
	// 2: parent must exist before children.
	if err := tr.Create("/ghost/f", fsapi.NewFileStat(cred, 0o644)); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("orphan create = %v", err)
	}
	// Parent must be a directory.
	if err := tr.Create("/w/f/x", fsapi.NewFileStat(cred, 0o644)); !errors.Is(err, fsapi.ErrNotDir) {
		t.Fatalf("create under file = %v", err)
	}
	// 3: deleted object must exist.
	if err := tr.Remove("/w/ghost"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("remove missing = %v", err)
	}
}

func TestTreeRemoveTypeChecks(t *testing.T) {
	tr := newTestTree(t)
	tr.Create("/w/f", fsapi.NewFileStat(cred, 0o644))
	if err := tr.Remove("/w"); !errors.Is(err, fsapi.ErrIsDir) {
		t.Fatalf("remove dir via unlink = %v", err)
	}
	if err := tr.Rmdir("/w/f"); !errors.Is(err, fsapi.ErrNotDir) {
		t.Fatalf("rmdir file = %v", err)
	}
	if err := tr.Rmdir("/w"); !errors.Is(err, fsapi.ErrNotEmpty) {
		t.Fatalf("rmdir non-empty = %v", err)
	}
	if err := tr.Remove("/w/f"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Rmdir("/w"); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestTreeRemoveSubtree(t *testing.T) {
	tr := newTestTree(t)
	tr.Mkdir("/w/d1", fsapi.NewDirStat(cred, 0o755))
	tr.Create("/w/d1/f1", fsapi.NewFileStat(cred, 0o644))
	tr.Create("/w/d1/f2", fsapi.NewFileStat(cred, 0o644))
	tr.Mkdir("/w/d1/sub", fsapi.NewDirStat(cred, 0o755))
	tr.Create("/w/d1/sub/deep", fsapi.NewFileStat(cred, 0o644))
	tr.Create("/w/outside", fsapi.NewFileStat(cred, 0o644))

	removed, err := tr.RemoveSubtree("/w/d1")
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 5 {
		t.Fatalf("removed %d paths: %v", len(removed), removed)
	}
	// Deepest-first: the directory itself is last.
	if removed[len(removed)-1] != "/w/d1" {
		t.Fatalf("removal order: %v", removed)
	}
	if tr.Exists("/w/d1/sub/deep") || tr.Exists("/w/d1") {
		t.Fatal("subtree still present")
	}
	if !tr.Exists("/w/outside") {
		t.Fatal("sibling removed")
	}
}

func TestTreeRemoveSubtreeErrors(t *testing.T) {
	tr := newTestTree(t)
	tr.Create("/w/f", fsapi.NewFileStat(cred, 0o644))
	if _, err := tr.RemoveSubtree("/w/ghost"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
	if _, err := tr.RemoveSubtree("/w/f"); !errors.Is(err, fsapi.ErrNotDir) {
		t.Fatalf("err = %v", err)
	}
}

func TestTreeReaddir(t *testing.T) {
	tr := newTestTree(t)
	tr.Create("/w/b", fsapi.NewFileStat(cred, 0o644))
	tr.Mkdir("/w/a", fsapi.NewDirStat(cred, 0o755))
	tr.Create("/w/c", fsapi.NewFileStat(cred, 0o644))
	ents, err := tr.Readdir("/w")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 3 || ents[0].Name != "a" || ents[1].Name != "b" || ents[2].Name != "c" {
		t.Fatalf("readdir = %v", ents)
	}
	if ents[0].Type != fsapi.TypeDir || ents[1].Type != fsapi.TypeFile {
		t.Fatal("entry types wrong")
	}
	if _, err := tr.Readdir("/w/b"); !errors.Is(err, fsapi.ErrNotDir) {
		t.Fatalf("readdir file = %v", err)
	}
}

func TestTreeSetStat(t *testing.T) {
	tr := newTestTree(t)
	tr.Create("/w/f", fsapi.NewFileStat(cred, 0o644))
	st, _ := tr.Lookup("/w/f")
	st.Size = 4096
	st.Type = fsapi.TypeDir // must be ignored: type is immutable
	if err := tr.SetStat("/w/f", st); err != nil {
		t.Fatal(err)
	}
	got, _ := tr.Lookup("/w/f")
	if got.Size != 4096 || got.Type != fsapi.TypeFile {
		t.Fatalf("setstat result = %+v", got)
	}
}

func TestTreeWalk(t *testing.T) {
	tr := newTestTree(t)
	tr.Mkdir("/w/d", fsapi.NewDirStat(cred, 0o755))
	tr.Create("/w/d/f", fsapi.NewFileStat(cred, 0o644))
	tr.Create("/w/a", fsapi.NewFileStat(cred, 0o644))
	var visited []string
	err := tr.Walk("/w", func(p string, st fsapi.Stat) error {
		visited = append(visited, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/w", "/w/a", "/w/d", "/w/d/f"}
	if len(visited) != len(want) {
		t.Fatalf("walk = %v", visited)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("walk = %v, want %v", visited, want)
		}
	}
}

// Property: a random sequence of valid creates always leaves the tree
// consistent with a map model.
func TestTreeMatchesModelProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		tr := NewTree(cred)
		model := map[string]bool{"/": true}
		dirs := []string{"/"}
		for _, o := range ops {
			parent := dirs[int(o)%len(dirs)]
			name := fmt.Sprintf("n%d", o%97)
			p := Join(parent, name)
			if model[p] {
				continue
			}
			isDir := o%3 == 0
			var err error
			if isDir {
				err = tr.Mkdir(p, fsapi.NewDirStat(cred, 0o755))
			} else {
				err = tr.Create(p, fsapi.NewFileStat(cred, 0o644))
			}
			if err != nil {
				return false
			}
			model[p] = true
			if isDir {
				dirs = append(dirs, p)
			}
		}
		for p := range model {
			if !tr.Exists(p) {
				return false
			}
		}
		return tr.Len() == len(model)-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeRename(t *testing.T) {
	tr := newTestTree(t)
	tr.Mkdir("/w/a", fsapi.NewDirStat(cred, 0o755))
	tr.Create("/w/a/f", fsapi.NewFileStat(cred, 0o644))

	if err := tr.Rename("/w/a", "/w/b"); err != nil {
		t.Fatal(err)
	}
	if tr.Exists("/w/a") || !tr.Exists("/w/b/f") {
		t.Fatal("rename lost the subtree")
	}
	// Missing source.
	if err := tr.Rename("/w/ghost", "/w/x"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
	// Existing destination.
	tr.Mkdir("/w/c", fsapi.NewDirStat(cred, 0o755))
	if err := tr.Rename("/w/c", "/w/b"); !errors.Is(err, fsapi.ErrExist) {
		t.Fatalf("err = %v", err)
	}
	// Destination inside source.
	if err := tr.Rename("/w/b", "/w/b/inside"); !errors.Is(err, fsapi.ErrPermission) {
		t.Fatalf("err = %v", err)
	}
	// Destination parent missing.
	if err := tr.Rename("/w/c", "/w/nope/d"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}
