package namespace

import (
	"sort"
	"sync"

	"pacon/internal/fsapi"
)

// Tree is a concurrent in-memory namespace. All methods take cleaned or
// uncleaned paths (they clean internally) and enforce the namespace
// conventions, returning fsapi sentinel errors on violations.
type Tree struct {
	mu   sync.RWMutex
	root *node
	n    int // nodes excluding root
}

type node struct {
	stat     fsapi.Stat
	children map[string]*node // nil for files
}

// NewTree returns a namespace holding only the root directory, owned by
// cred.
func NewTree(cred fsapi.Cred) *Tree {
	return &Tree{root: &node{
		stat:     fsapi.NewDirStat(cred, fsapi.ModeDefaultDir),
		children: make(map[string]*node),
	}}
}

// walk resolves a cleaned path to its node. Caller holds a lock.
func (t *Tree) walk(p string) (*node, error) {
	cur := t.root
	var werr error
	EachComponent(p, func(seg string) bool {
		if cur.children == nil {
			werr = fsapi.ErrNotDir
			return false
		}
		next, ok := cur.children[seg]
		if !ok {
			werr = fsapi.ErrNotExist
			return false
		}
		cur = next
		return true
	})
	if werr != nil {
		return nil, werr
	}
	return cur, nil
}

// walkParent resolves the parent directory of a cleaned path.
func (t *Tree) walkParent(p string) (*node, string, error) {
	dir, name := Split(p)
	if name == "" {
		return nil, "", fsapi.ErrExist // root always exists
	}
	parent, err := t.walk(dir)
	if err != nil {
		return nil, "", err
	}
	if parent.children == nil {
		return nil, "", fsapi.ErrNotDir
	}
	return parent, name, nil
}

// Lookup returns the stat of path.
func (t *Tree) Lookup(p string) (fsapi.Stat, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, err := t.walk(Clean(p))
	if err != nil {
		return fsapi.Stat{}, fsapi.WrapPath("lookup", p, err)
	}
	return n.stat, nil
}

// Exists reports whether path resolves.
func (t *Tree) Exists(p string) bool {
	_, err := t.Lookup(p)
	return err == nil
}

// insert adds a child enforcing create conventions.
func (t *Tree) insert(op, p string, stat fsapi.Stat, isDir bool) error {
	p = Clean(p)
	t.mu.Lock()
	defer t.mu.Unlock()
	parent, name, err := t.walkParent(p)
	if err != nil {
		return fsapi.WrapPath(op, p, err)
	}
	if _, exists := parent.children[name]; exists {
		return fsapi.WrapPath(op, p, fsapi.ErrExist)
	}
	n := &node{stat: stat}
	if isDir {
		n.children = make(map[string]*node)
	}
	parent.children[name] = n
	t.n++
	return nil
}

// Mkdir creates a directory. The stat's Type is forced to TypeDir.
func (t *Tree) Mkdir(p string, stat fsapi.Stat) error {
	stat.Type = fsapi.TypeDir
	return t.insert("mkdir", p, stat, true)
}

// Create creates a regular file. The stat's Type is forced to TypeFile.
func (t *Tree) Create(p string, stat fsapi.Stat) error {
	stat.Type = fsapi.TypeFile
	return t.insert("create", p, stat, false)
}

// SetStat replaces the metadata of an existing object, preserving its
// type.
func (t *Tree) SetStat(p string, stat fsapi.Stat) error {
	p = Clean(p)
	t.mu.Lock()
	defer t.mu.Unlock()
	n, err := t.walk(p)
	if err != nil {
		return fsapi.WrapPath("setstat", p, err)
	}
	stat.Type = n.stat.Type
	n.stat = stat
	return nil
}

// Remove unlinks a regular file.
func (t *Tree) Remove(p string) error {
	p = Clean(p)
	t.mu.Lock()
	defer t.mu.Unlock()
	parent, name, err := t.walkParent(p)
	if err != nil {
		return fsapi.WrapPath("remove", p, err)
	}
	n, ok := parent.children[name]
	if !ok {
		return fsapi.WrapPath("remove", p, fsapi.ErrNotExist)
	}
	if n.children != nil {
		return fsapi.WrapPath("remove", p, fsapi.ErrIsDir)
	}
	delete(parent.children, name)
	t.n--
	return nil
}

// Rmdir removes an empty directory.
func (t *Tree) Rmdir(p string) error {
	p = Clean(p)
	t.mu.Lock()
	defer t.mu.Unlock()
	parent, name, err := t.walkParent(p)
	if err != nil {
		return fsapi.WrapPath("rmdir", p, err)
	}
	n, ok := parent.children[name]
	if !ok {
		return fsapi.WrapPath("rmdir", p, fsapi.ErrNotExist)
	}
	if n.children == nil {
		return fsapi.WrapPath("rmdir", p, fsapi.ErrNotDir)
	}
	if len(n.children) > 0 {
		return fsapi.WrapPath("rmdir", p, fsapi.ErrNotEmpty)
	}
	delete(parent.children, name)
	t.n--
	return nil
}

// RemoveSubtree removes a directory and everything below it, returning
// the full paths removed (the recursive cleanup a Pacon rmdir performs
// on the DFS and mirrors into its cache). The returned list includes p
// itself, deepest entries first.
func (t *Tree) RemoveSubtree(p string) ([]string, error) {
	p = Clean(p)
	t.mu.Lock()
	defer t.mu.Unlock()
	parent, name, err := t.walkParent(p)
	if err != nil {
		return nil, fsapi.WrapPath("rmdir", p, err)
	}
	n, ok := parent.children[name]
	if !ok {
		return nil, fsapi.WrapPath("rmdir", p, fsapi.ErrNotExist)
	}
	if n.children == nil {
		return nil, fsapi.WrapPath("rmdir", p, fsapi.ErrNotDir)
	}
	var removed []string
	var visit func(path string, nd *node)
	visit = func(path string, nd *node) {
		if nd.children != nil {
			names := make([]string, 0, len(nd.children))
			for child := range nd.children {
				names = append(names, child)
			}
			sort.Strings(names)
			for _, child := range names {
				visit(Join(path, child), nd.children[child])
			}
		}
		removed = append(removed, path)
		t.n--
	}
	visit(p, n)
	delete(parent.children, name)
	return removed, nil
}

// Rename moves src (file or subtree) to dst. POSIX-style constraints:
// src must exist, dst must not, dst's parent must exist and be a
// directory, and dst must not lie inside src's own subtree.
func (t *Tree) Rename(src, dst string) error {
	src, dst = Clean(src), Clean(dst)
	if IsUnder(dst, src) {
		return fsapi.WrapPath("rename", dst, fsapi.ErrPermission)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp, sname, err := t.walkParent(src)
	if err != nil {
		return fsapi.WrapPath("rename", src, err)
	}
	n, ok := sp.children[sname]
	if !ok {
		return fsapi.WrapPath("rename", src, fsapi.ErrNotExist)
	}
	dp, dname, err := t.walkParent(dst)
	if err != nil {
		return fsapi.WrapPath("rename", dst, err)
	}
	if _, exists := dp.children[dname]; exists {
		return fsapi.WrapPath("rename", dst, fsapi.ErrExist)
	}
	delete(sp.children, sname)
	dp.children[dname] = n
	return nil
}

// Readdir lists a directory's entries in name order.
func (t *Tree) Readdir(p string) ([]fsapi.DirEntry, error) {
	p = Clean(p)
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, err := t.walk(p)
	if err != nil {
		return nil, fsapi.WrapPath("readdir", p, err)
	}
	if n.children == nil {
		return nil, fsapi.WrapPath("readdir", p, fsapi.ErrNotDir)
	}
	out := make([]fsapi.DirEntry, 0, len(n.children))
	for name, child := range n.children {
		out = append(out, fsapi.DirEntry{Name: name, Type: child.stat.Type})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Walk visits every node under p (including p) in depth-first name
// order, calling fn with the full path and stat. Used by checkpointing
// (subtree copy) and region eviction.
func (t *Tree) Walk(p string, fn func(path string, stat fsapi.Stat) error) error {
	p = Clean(p)
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, err := t.walk(p)
	if err != nil {
		return fsapi.WrapPath("walk", p, err)
	}
	var visit func(path string, nd *node) error
	visit = func(path string, nd *node) error {
		if err := fn(path, nd.stat); err != nil {
			return err
		}
		if nd.children == nil {
			return nil
		}
		names := make([]string, 0, len(nd.children))
		for name := range nd.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if err := visit(Join(path, name), nd.children[name]); err != nil {
				return err
			}
		}
		return nil
	}
	return visit(p, n)
}

// Len returns the number of objects excluding root.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.n
}
