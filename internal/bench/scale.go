package bench

import (
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"

	"pacon/internal/obs"
	"pacon/internal/vclock"
	"pacon/internal/workload"
)

// The scale experiment measures how virtual throughput holds up as the
// simulated client population grows from hundreds to a million. A
// goroutine per client stops being viable long before 10⁶ — the Go
// scheduler and the pacer both become the bottleneck under test instead
// of the metadata service — so the harness multiplexes: at most
// maxShardGoroutines shard goroutines each own clients/S simulated
// clients and advance their virtual clocks round-robin, one operation
// per client per sweep. Sweeping keeps every clock in a shard within
// about one operation of its siblings, so the virtual-time overlap that
// drives resource queueing is preserved even though only S goroutines
// exist in real time.
func init() {
	register("scale", func(cfg Config) ([]*Figure, error) {
		_, figs, err := RunScale(cfg)
		return figs, err
	})
}

// maxShardGoroutines caps real concurrency: each shard goroutine
// multiplexes clients/S simulated client clocks.
const maxShardGoroutines = 64

// scaleWindow is the pacer window for the scale phase. A shard
// publishes whichever simulated clock it is currently advancing, so its
// published time wobbles over the intra-shard spread (about one
// operation, since sweeps are round-robin); the window is widened past
// that spread so the wobble does not read as skew and stall the shards
// against each other.
const scaleWindow = 20 * vclock.DefaultPacerWindow

// scaleWarmPaths is the shared stat working set (pre-created files).
const scaleWarmPaths = 1024

// ScalePoint is one client-count measurement.
type ScalePoint struct {
	Clients int `json:"clients"`
	Nodes   int `json:"nodes"`
	Shards  int `json:"shard_goroutines"`
	// MDSShards is the metadata-service shard count backing the point
	// (1 = the single shared-tree MDS; >1 = subtree-partitioned pool).
	MDSShards    int   `json:"mds_shards"`
	OpsPerClient int   `json:"ops_per_client"`
	Ops          int64 `json:"ops"`
	Creates      int64 `json:"creates"`
	StatOps      int64 `json:"stats"`
	// VirtualOPS is client ops per second of virtual time, measured to
	// the end of the drain.
	VirtualOPS float64 `json:"virtual_ops_per_sec"`
	// MDSQueueWaitNSPerOp is the mean virtual queueing delay per op at
	// the MDS pool (time waiting for a free worker slot).
	MDSQueueWaitNSPerOp float64 `json:"mds_queue_wait_ns_per_op,omitempty"`
	// WallSeconds is real host time for the measured phase plus drain —
	// what a million simulated clients cost the harness, not the model.
	WallSeconds float64 `json:"wall_seconds"`
	CacheRPCs   int64   `json:"cache_rpcs"`
	BackendRPCs int64   `json:"backend_rpcs"`
	Coalesced   int64   `json:"coalesced"`
	// StageLatency holds wall-clock {count, p50, p95, p99} per pipeline
	// stage histogram — including the tracer's critpath_* segment
	// attributions — so a scale regression points at the stage that
	// moved, not just the headline number.
	StageLatency map[string]obs.Quantiles `json:"stage_latency_ns,omitempty"`
	// Trace reports the causal tracer's sampling behavior at this scale
	// (head-sample rate, spans sampled, anomalous spans tail-kept):
	// proof the tracer ran at the default rate during the sweep.
	Trace *obs.TraceStats `json:"trace,omitempty"`
}

// ScaleReport is the machine-readable result (BENCH_scale.json).
type ScaleReport struct {
	Experiment     string       `json:"experiment"`
	OpsBudget      int          `json:"ops_budget"`
	WarmPaths      int          `json:"warm_paths"`
	Points         []ScalePoint `json:"points"`
	PeakVirtualOPS float64      `json:"peak_virtual_ops_per_sec"`
	// ShardSweep reruns one scale point at the configured MDS shard
	// counts (subtree-partitioned metadata service).
	ShardSweep *ShardSweep `json:"shard_sweep,omitempty"`
}

// JSON renders the report for BENCH_scale.json.
func (r *ScaleReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// scaleScales returns the client counts to sweep.
func (c Config) scaleScales() []int {
	if len(c.ScaleClients) > 0 {
		return c.ScaleClients
	}
	return []int{160, 10_000, 100_000, 1_000_000}
}

// scaleBudget returns the total-op budget per point.
func (c Config) scaleBudget() int {
	if c.ScaleOpsBudget > 0 {
		return c.ScaleOpsBudget
	}
	return 1 << 20
}

// runScalePoint measures one client count against a fresh deployment.
func runScalePoint(cfg Config, clients int, warm []string) (ScalePoint, error) {
	start := time.Now()
	e := newEnv(cfg, cfg.nodesFor(clients))
	defer e.close()
	// The sweep runs with tracing live at the default 1-in-64 head rate:
	// the point is to measure the service with its observability on, and
	// to prove the sampler survives a million multiplexed clients.
	o := obs.New()
	e.instrument(o)
	if err := e.provision("/w"); err != nil {
		return ScalePoint{}, err
	}
	shards := clients
	if shards > maxShardGoroutines {
		shards = maxShardGoroutines
	}
	cls, err := e.paconClients(shards, "/w")
	if err != nil {
		return ScalePoint{}, err
	}
	region := e.regions[len(e.regions)-1]
	runner := workload.NewRunner(cls)

	// Warm phase: pre-create the shared stat working set, striped over
	// the shards, then barrier (RunPhase's exit) before measuring.
	_, err = runner.RunPhase(func(idx int, cl workload.Client, now vclock.Time) (vclock.Time, int64, error) {
		var ops int64
		for i := idx; i < len(warm); i += shards {
			var err error
			if now, err = cl.Create(now, warm[i], 0o644); err != nil {
				return now, ops, err
			}
			ops++
		}
		return now, ops, nil
	})
	if err != nil {
		return ScalePoint{}, fmt.Errorf("warm phase: %w", err)
	}

	opsPer := cfg.scaleBudget() / clients
	if opsPer < 1 {
		opsPer = 1
	}
	var creates, stats atomic.Int64
	res, err := runner.RunPhaseWindow(scaleWindow, func(idx int, cl workload.Client, phaseStart vclock.Time) (vclock.Time, int64, error) {
		// This shard owns simulated clients {c : c % shards == idx},
		// each with its own virtual clock. Sweeps advance them
		// round-robin: one op per client per sweep, so sibling clocks
		// stay within about one operation of each other.
		n := (clients - idx + shards - 1) / shards
		clocks := make([]vclock.Time, n)
		for i := range clocks {
			clocks[i] = phaseStart
		}
		var ops, myCreates int64
		for k := 0; k < opsPer; k++ {
			for i := 0; i < n; i++ {
				c := idx + i*shards
				now := clocks[i]
				var err error
				if (c+k)%8 == 0 {
					// 1-in-8 creates; client-unique names.
					p := fmt.Sprintf("/w/s%d.%d", c, k)
					now, err = cl.Create(now, p, 0o644)
					myCreates++
				} else {
					// Stat a pseudo-random warm path (Weyl-style index
					// so the sequence is deterministic per client).
					j := (uint32(c)*2654435761 + uint32(k)*40503) % uint32(len(warm))
					_, now, err = cl.Stat(now, warm[j])
				}
				if err != nil {
					return now, ops, err
				}
				clocks[i] = now
				ops++
			}
		}
		end := phaseStart
		for _, t := range clocks {
			if t > end {
				end = t
			}
		}
		creates.Add(myCreates)
		stats.Add(ops - myCreates)
		return end, ops, nil
	})
	if err != nil {
		return ScalePoint{}, err
	}
	done, err := region.Drain(res.End)
	if err != nil {
		return ScalePoint{}, err
	}

	st := region.Stats()
	mdsShards := cfg.MDSShards
	if mdsShards < 1 {
		mdsShards = 1
	}
	pt := ScalePoint{
		Clients:      clients,
		Nodes:        cfg.nodesFor(clients),
		Shards:       shards,
		MDSShards:    mdsShards,
		OpsPerClient: opsPer,
		Ops:          res.Ops,
		Creates:      creates.Load(),
		StatOps:      stats.Load(),
		WallSeconds:  time.Since(start).Seconds(),
		CacheRPCs:    st.CacheRPCs,
		BackendRPCs:  st.BackendRPCs,
		Coalesced:    st.Coalesced,
	}
	if elapsed := done - res.Start; elapsed > 0 {
		pt.VirtualOPS = float64(res.Ops) / vclock.Duration(elapsed).Seconds()
	}
	pt.MDSQueueWaitNSPerOp = e.mdsQueueWaitPerOp()
	pt.StageLatency = o.HistQuantiles()
	ts := o.TraceStats()
	pt.Trace = &ts
	return pt, nil
}

// RunScale sweeps the configured client counts and derives the report.
func RunScale(cfg Config) (*ScaleReport, []*Figure, error) {
	warm := make([]string, scaleWarmPaths)
	for i := range warm {
		warm[i] = fmt.Sprintf("/w/warm%d", i)
	}

	rep := &ScaleReport{
		Experiment: "client scalability: multiplexed simulated clients, 1/8 create + 7/8 stat",
		OpsBudget:  cfg.scaleBudget(),
		WarmPaths:  scaleWarmPaths,
	}
	f := &Figure{
		ID: "scale", Title: "Throughput vs simulated client count (multiplexed harness)",
		XLabel: "clients", YLabel: "ops/s (virtual)",
		Series: []string{"virtualOPS", "shards", "wallSec"},
	}
	for _, n := range cfg.scaleScales() {
		pt, err := runScalePoint(cfg, n, warm)
		if err != nil {
			return nil, nil, fmt.Errorf("scale point %d clients: %w", n, err)
		}
		rep.Points = append(rep.Points, pt)
		if pt.VirtualOPS > rep.PeakVirtualOPS {
			rep.PeakVirtualOPS = pt.VirtualOPS
		}
		f.AddPoint(fmt.Sprintf("%d", n), map[string]float64{
			"virtualOPS": pt.VirtualOPS,
			"shards":     float64(pt.Shards),
			"wallSec":    pt.WallSeconds,
		})
	}
	if len(rep.Points) > 0 {
		last := rep.Points[len(rep.Points)-1]
		f.Note("%d simulated clients multiplexed onto %d goroutines: %.0f virtual ops/s, %.1fs wall",
			last.Clients, last.Shards, last.VirtualOPS, last.WallSeconds)
		f.Note("peak virtual throughput across scales: %.0f ops/s", rep.PeakVirtualOPS)
	}
	if len(cfg.ShardSweep) > 0 {
		sweep, err := runScaleShardSweep(cfg, cfg.ShardSweep, warm)
		if err != nil {
			return nil, nil, fmt.Errorf("scale shard sweep: %w", err)
		}
		rep.ShardSweep = sweep
		annotateSweep(f, sweep)
	}
	return rep, []*Figure{f}, nil
}
