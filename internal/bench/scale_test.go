package bench

import "testing"

// Smoke-run the scale experiment at tiny scale: the multiplexing
// bookkeeping (ops split across simulated clients, create/stat mix,
// shard cap) must hold at both the goroutine-per-client and the
// multiplexed end.
func TestRunScaleTiny(t *testing.T) {
	cfg := tiny()
	cfg.ScaleClients = []int{16, 500}
	cfg.ScaleOpsBudget = 2000
	rep, figs, err := RunScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 || len(figs) != 1 {
		t.Fatalf("points=%d figs=%d", len(rep.Points), len(figs))
	}
	for _, pt := range rep.Points {
		if pt.Shards > maxShardGoroutines || pt.Shards > pt.Clients {
			t.Fatalf("%d clients on %d shards", pt.Clients, pt.Shards)
		}
		wantOps := int64(pt.Clients * pt.OpsPerClient)
		if pt.Ops != wantOps {
			t.Fatalf("%d clients: ops=%d, want %d", pt.Clients, pt.Ops, wantOps)
		}
		if pt.Creates+pt.StatOps != pt.Ops {
			t.Fatalf("mix %d+%d != %d", pt.Creates, pt.StatOps, pt.Ops)
		}
		if pt.Creates == 0 || pt.StatOps == 0 {
			t.Fatalf("degenerate mix: creates=%d stats=%d", pt.Creates, pt.StatOps)
		}
		if pt.VirtualOPS <= 0 {
			t.Fatalf("%d clients: VirtualOPS=%v", pt.Clients, pt.VirtualOPS)
		}
	}
	// 500 clients over a 2000-op budget: 4 ops each; 16 clients get 125.
	if got := rep.Points[0].OpsPerClient; got != 125 {
		t.Fatalf("16-client ops/client = %d, want 125", got)
	}
	if got := rep.Points[1].OpsPerClient; got != 4 {
		t.Fatalf("500-client ops/client = %d, want 4", got)
	}
	if rep.PeakVirtualOPS <= 0 {
		t.Fatal("no peak throughput")
	}
}
