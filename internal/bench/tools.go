package bench

import (
	"fmt"

	"pacon/internal/workload"
)

// MdtestSpec selects the optional tree mode of RunMdtest.
type MdtestSpec struct {
	// Depth > 0 switches to the path-traversal mode: build a tree and
	// random-stat its leaves instead of the flat mkdir/create/stat run.
	Depth  int
	Fanout int
	Seed   int64
}

// MdtestResult carries each executed phase (zero-valued when skipped).
type MdtestResult struct {
	Mkdir, Create, Stat, StatLeaves, Remove workload.Result
}

// RunMdtest is the standalone mdtest entry point used by cmd/mdtest: a
// full deployment of sys at cfg's scale, driven through the standard
// phases or the tree/stat-leaves mode.
func RunMdtest(cfg Config, sys System, spec MdtestSpec) (MdtestResult, error) {
	var out MdtestResult
	e := newEnv(cfg, cfg.MaxNodes)
	defer e.close()
	if err := e.provision("/w"); err != nil {
		return out, err
	}
	clients := cfg.MaxNodes * cfg.ClientsPerNode
	cls, err := e.clientsFor(sys, clients, "/w")
	if err != nil {
		return out, err
	}
	md := workload.NewMdtest(cls, "/w", cfg.ItemsPerClient, spec.Seed)

	if spec.Depth > 0 {
		fanout := spec.Fanout
		if fanout <= 0 {
			fanout = 5
		}
		tree, err := md.BuildTree(fanout, spec.Depth)
		if err != nil {
			return out, fmt.Errorf("build tree: %w", err)
		}
		if out.StatLeaves, err = md.StatLeavesPhase(tree); err != nil {
			return out, err
		}
		return out, nil
	}

	if out.Mkdir, err = md.MkdirPhase(); err != nil {
		return out, err
	}
	if out.Create, err = md.CreatePhase(); err != nil {
		return out, err
	}
	if out.Stat, err = md.StatPhase(); err != nil {
		return out, err
	}
	if out.Remove, err = md.RemovePhase(); err != nil {
		return out, err
	}
	return out, nil
}

// RunMADbench is the standalone MADbench2 entry point used by
// cmd/madbench and fig12.
func RunMADbench(cfg Config, sys System) (workload.MADbenchResult, error) {
	e := newEnv(cfg, cfg.MaxNodes)
	defer e.close()
	if err := e.provision("/w"); err != nil {
		return workload.MADbenchResult{}, err
	}
	n := cfg.MaxNodes * cfg.MADbenchProcsPerNode
	cls, err := e.clientsFor(sys, n, "/w")
	if err != nil {
		return workload.MADbenchResult{}, err
	}
	fcs := make([]workload.FileClient, len(cls))
	for i, c := range cls {
		fc, ok := c.(workload.FileClient)
		if !ok {
			return workload.MADbenchResult{}, fmt.Errorf("bench: %s client lacks a data plane", sys)
		}
		fcs[i] = fc
	}
	mb := workload.NewMADbench(fcs, "/w", cfg.MADbenchFileMB<<20, 1, workload.DefaultComputeTime)
	return mb.Run()
}

// ReplayTrace replays a parsed op trace against a fresh deployment of
// sys (cmd/mdtest -trace). The workspace /w is provisioned; trace paths
// should live under it.
func ReplayTrace(cfg Config, sys System, ops []workload.TraceOp) (workload.TraceResult, error) {
	e := newEnv(cfg, cfg.MaxNodes)
	defer e.close()
	if err := e.provision("/w"); err != nil {
		return workload.TraceResult{}, err
	}
	clients := cfg.MaxNodes * cfg.ClientsPerNode
	cls, err := e.clientsFor(sys, clients, "/w")
	if err != nil {
		return workload.TraceResult{}, err
	}
	return workload.ReplayTrace(cls, ops)
}
