package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Figure is one reproduced table/figure: series of Y values over X
// points, plus derived headline notes ("Pacon/BeeGFS = 84x ...").
type Figure struct {
	ID     string // e.g. "fig7-create"
	Title  string
	XLabel string
	YLabel string
	Series []string // column order
	Points []Point
	Notes  []string
}

// Point is one row: an X value and each series' Y.
type Point struct {
	X string
	Y map[string]float64
}

// AddPoint appends a row.
func (f *Figure) AddPoint(x string, y map[string]float64) {
	f.Points = append(f.Points, Point{X: x, Y: y})
}

// Note records a derived observation.
func (f *Figure) Note(format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// Value returns series s at row i (0 when absent).
func (f *Figure) Value(i int, s string) float64 {
	if i < 0 || i >= len(f.Points) {
		return 0
	}
	return f.Points[i].Y[s]
}

// Last returns series s at the final row.
func (f *Figure) Last(s string) float64 { return f.Value(len(f.Points)-1, s) }

// String renders an aligned text table.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(&b, "   (y = %s)\n", f.YLabel)

	headers := append([]string{f.XLabel}, f.Series...)
	rows := make([][]string, 0, len(f.Points))
	for _, p := range f.Points {
		row := []string{p.X}
		for _, s := range f.Series {
			row = append(row, formatY(p.Y[s]))
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			fmt.Fprintf(&b, "  %*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for _, row := range rows {
		writeRow(row)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// CSV renders the figure as comma-separated values.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString(f.XLabel)
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(s)
	}
	b.WriteByte('\n')
	for _, p := range f.Points {
		b.WriteString(p.X)
		for _, s := range f.Series {
			fmt.Fprintf(&b, ",%g", p.Y[s])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatY(v float64) string {
	switch {
	case v == 0:
		return "-"
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case v >= 10:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Registry maps figure IDs to their runners, so cmd/paconbench can list
// and select them.
type Runner func(Config) ([]*Figure, error)

var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// Run executes one registered experiment.
func Run(id string, cfg Config) ([]*Figure, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, IDs())
	}
	return r(cfg)
}

// IDs lists registered experiments in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
