// Package bench is the experiment harness: one runner per figure of the
// paper's motivation and evaluation sections (Figs 1, 2, 7, 8, 9, 10,
// 11, 12), each rebuilding a fresh deployment per data point and driving
// it with the workload package. cmd/paconbench and bench_test.go are
// thin wrappers over this package.
package bench

import (
	"fmt"
	"time"

	"pacon/internal/core"
	"pacon/internal/dfs"
	"pacon/internal/fsapi"
	"pacon/internal/indexfs"
	"pacon/internal/obs"
	"pacon/internal/rpc"
	"pacon/internal/vclock"
	"pacon/internal/workload"
)

// System identifies a system under test.
type System string

// Systems compared in the paper.
const (
	BeeGFS    System = "BeeGFS"
	IndexFS   System = "IndexFS"
	Pacon     System = "Pacon"
	Memcached System = "Memcached" // raw distributed cache (Fig 10 baseline)
)

// Config scales the whole harness.
type Config struct {
	// Model is the latency model (Default() if zero).
	Model vclock.LatencyModel
	// MaxNodes is the client-cluster size (paper: 16).
	MaxNodes int
	// ClientsPerNode is the per-node client count (paper: 20).
	ClientsPerNode int
	// ItemsPerClient is the per-client op count per phase.
	ItemsPerClient int
	// MADbenchProcsPerNode and MADbenchFileMB size Fig 12.
	MADbenchProcsPerNode int
	MADbenchFileMB       int
	// ScaleClients are the simulated-client counts the scale experiment
	// sweeps (default 160, 10k, 100k, 1M). ScaleOpsBudget is the total
	// operation budget per point, split evenly across the simulated
	// clients (default 2²⁰).
	ScaleClients   []int
	ScaleOpsBudget int
	// MDSShards deploys the subtree-partitioned metadata service with
	// this many MDS shards instead of the single shared-tree MDS
	// (0 = unsharded; 1 = sharded code path with one shard, the honest
	// router-overhead baseline). The shard sweep sets this per point.
	MDSShards int
	// ShardSweep lists the MDS shard counts the commit/read/scale
	// reports additionally sweep (empty = no sweep block).
	ShardSweep []int
}

// Default returns the paper-scale configuration (runs in minutes).
func Default() Config {
	return Config{
		Model:                vclock.Default(),
		MaxNodes:             16,
		ClientsPerNode:       20,
		ItemsPerClient:       100,
		MADbenchProcsPerNode: 16,
		MADbenchFileMB:       4,
		ScaleClients:         []int{160, 10_000, 100_000, 1_000_000},
		ScaleOpsBudget:       1 << 20,
		ShardSweep:           []int{1, 2, 4, 8},
	}
}

// Quick returns a reduced configuration for smoke runs and go test.
func Quick() Config {
	return Config{
		Model:                vclock.Default(),
		MaxNodes:             8,
		ClientsPerNode:       10,
		ItemsPerClient:       30,
		MADbenchProcsPerNode: 4,
		MADbenchFileMB:       1,
		ScaleClients:         []int{160, 10_000},
		ScaleOpsBudget:       100_000,
		ShardSweep:           []int{1, 2, 4},
	}
}

var (
	adminCred = fsapi.Cred{UID: 0, GID: 0}
	appCred   = fsapi.Cred{UID: 1000, GID: 1000}
)

// env is one fresh deployment: a DFS cluster plus (lazily) IndexFS
// servers or Pacon regions over a set of client nodes.
type env struct {
	cfg     Config
	bus     *rpc.Bus
	cluster *dfs.Cluster
	nodes   []string

	indexfs *indexfs.Cluster
	regions []*core.Region

	// obs, when non-nil, instruments regions started in this env and the
	// transport. Wall-clock only; virtual-time results are unaffected.
	obs *obs.Obs

	provisioned []string
}

// instrument attaches an observability sink to the deployment: regions
// created after this call trace their ops into it, and every RPC on the
// bus reports its wall latency.
func (e *env) instrument(o *obs.Obs) {
	e.obs = o
	e.bus.SetObserver(o)
	e.cluster.RegisterHotMetrics(o)
}

// newEnv builds a deployment with n client nodes and the paper's storage
// side (1 MDS + 3 data servers).
func newEnv(cfg Config, n int) *env {
	bus := rpc.NewBus()
	var cluster *dfs.Cluster
	if cfg.MDSShards >= 1 {
		// Subtree-partitioned MDS pool: /w (every experiment's workspace)
		// is the spread root, so each client subtree under it hashes to
		// one shard.
		cluster = dfs.NewClusterSharded(bus, cfg.Model, adminCred, "storage0", cfg.MDSShards, []string{"/w"}, []string{"s1", "s2", "s3"})
	} else {
		cluster = dfs.NewCluster(bus, cfg.Model, adminCred, "storage0", []string{"s1", "s2", "s3"})
	}
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("node%d", i)
	}
	return &env{cfg: cfg, bus: bus, cluster: cluster, nodes: nodes}
}

// mdsQueueWaitPerOp returns the mean virtual queueing delay per
// metadata op across the deployment's MDS pool, in nanoseconds: time a
// request arriving at an MDS spent waiting for a free worker slot.
// This is virtual-model time (unlike the wall-clock critpath
// histograms), so it is the number that shows a saturated metadata
// service — and how sharding relieves it.
func (e *env) mdsQueueWaitPerOp() float64 {
	var wait vclock.Duration
	var ops int64
	for _, m := range e.cluster.MDSes {
		res := m.Resource()
		wait += res.QueueWait()
		ops += res.Ops()
	}
	if ops == 0 {
		return 0
	}
	return float64(wait) / float64(ops)
}

// close tears down whatever was started.
func (e *env) close() {
	for _, r := range e.regions {
		r.Close()
	}
	if e.indexfs != nil {
		e.indexfs.Close()
	}
}

// provision creates a world-accessible directory as the administrator —
// on the DFS, and on the IndexFS namespace too if it is (or becomes)
// active: IndexFS manages its own metadata above the DFS.
func (e *env) provision(dirs ...string) error {
	admin := e.cluster.NewClient("admin", adminCred, 0, 0)
	for _, d := range dirs {
		if _, err := admin.Mkdir(0, d, 0o777); err != nil {
			return err
		}
	}
	e.provisioned = append(e.provisioned, dirs...)
	if e.indexfs != nil {
		return e.provisionIndexFS(dirs)
	}
	return nil
}

func (e *env) provisionIndexFS(dirs []string) error {
	admin := e.indexfs.NewClient(e.nodes[0], adminCred, 0, false)
	for _, d := range dirs {
		if _, err := admin.Mkdir(0, d, 0o777); err != nil {
			return err
		}
	}
	return nil
}

// beegfsClients returns strong-consistency DFS clients spread over the
// nodes (the paper's BeeGFS baseline).
func (e *env) beegfsClients(n int) []workload.Client {
	out := make([]workload.Client, n)
	for i := range out {
		out[i] = e.cluster.NewClient(e.nodes[i%len(e.nodes)], appCred, 0, 0)
	}
	return out
}

// indexfsClients starts an IndexFS deployment co-located with the client
// nodes (the paper's fair comparison) and returns its clients.
func (e *env) indexfsClients(n int) ([]workload.Client, error) {
	if e.indexfs == nil {
		c, err := indexfs.NewCluster(e.bus, e.cfg.Model, e.nodes, indexfs.ClusterConfig{})
		if err != nil {
			return nil, err
		}
		e.indexfs = c
		if err := e.provisionIndexFS(e.provisioned); err != nil {
			return nil, err
		}
	}
	out := make([]workload.Client, n)
	for i := range out {
		out[i] = e.indexfs.NewClient(e.nodes[i%len(e.nodes)], appCred, 1024, false)
	}
	return out, nil
}

// paconRegion starts a consistent region over the given nodes with
// workspace ws.
func (e *env) paconRegion(name, ws string, nodes []string) (*core.Region, error) {
	region, err := core.NewRegion(core.RegionConfig{
		Name:      name,
		Workspace: ws,
		Nodes:     nodes,
		Cred:      appCred,
		Model:     e.cfg.Model,
	}, core.Deps{
		Bus: e.bus,
		Obs: e.obs,
		NewBackend: func(node string) core.Backend {
			return e.cluster.NewClient(node, appCred, 4096, time.Hour)
		},
	})
	if err != nil {
		return nil, err
	}
	e.regions = append(e.regions, region)
	return region, nil
}

// paconClients starts one region over all nodes and returns n clients.
func (e *env) paconClients(n int, ws string) ([]workload.Client, error) {
	region, err := e.paconRegion("bench", ws, e.nodes)
	if err != nil {
		return nil, err
	}
	out := make([]workload.Client, n)
	for i := range out {
		c, err := region.NewClient(e.nodes[i%len(e.nodes)])
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// clientsFor builds n clients of the given system working under ws.
func (e *env) clientsFor(sys System, n int, ws string) ([]workload.Client, error) {
	switch sys {
	case BeeGFS:
		return e.beegfsClients(n), nil
	case IndexFS:
		return e.indexfsClients(n)
	case Pacon:
		return e.paconClients(n, ws)
	default:
		return nil, fmt.Errorf("bench: unknown system %q", sys)
	}
}

// nodesFor returns how many client nodes serve `clients` clients at the
// configured per-node density (the paper grows nodes with clients).
func (c Config) nodesFor(clients int) int {
	n := (clients + c.ClientsPerNode - 1) / c.ClientsPerNode
	if n < 1 {
		n = 1
	}
	if n > c.MaxNodes {
		n = c.MaxNodes
	}
	return n
}
