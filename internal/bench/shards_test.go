package bench

import "testing"

// Smoke-run the shard sweep at tiny scale: both points must complete,
// report throughput, and derive speedups against the 1-shard baseline.
func TestShardSweepTiny(t *testing.T) {
	cfg := tiny()
	cfg.ShardSweep = []int{1, 2}
	sweep, figs, err := RunShardSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Points) != 2 || len(figs) != 1 {
		t.Fatalf("points=%d figs=%d", len(sweep.Points), len(figs))
	}
	for _, p := range sweep.Points {
		if p.VirtualOPS <= 0 {
			t.Fatalf("%d shards: VirtualOPS=%v", p.Shards, p.VirtualOPS)
		}
	}
	if s := sweep.Points[0].Speedup; s != 1.0 {
		t.Fatalf("1-shard speedup = %v, want 1.0", s)
	}
	if sweep.Points[1].Shards != 2 {
		t.Fatalf("second point shards = %d", sweep.Points[1].Shards)
	}
}
