package bench

import (
	"fmt"

	"pacon/internal/dht"
	"pacon/internal/memcache"
	"pacon/internal/rpc"
	"pacon/internal/vclock"
	"pacon/internal/workload"
)

func init() {
	register("fig1", fig1)
	register("fig2", fig2)
	register("fig7", fig7)
	register("fig8", fig8)
	register("fig9", fig9)
	register("fig10", fig10)
	register("fig11", fig11)
	register("fig12", fig12)
}

// clientCounts returns the paper's client scaling ladder: 1 client, then
// one full node, doubling up to the whole cluster.
func (c Config) clientCounts(includeSingle bool) []int {
	var out []int
	if includeSingle {
		out = append(out, 1)
	}
	for n := 1; n <= c.MaxNodes; n *= 2 {
		out = append(out, n*c.ClientsPerNode)
	}
	return out
}

// runPhases runs mkdir+create+stat on a fresh deployment of sys with the
// given client count, returning per-phase OPS.
func runPhases(cfg Config, sys System, clients int) (mkdir, create, stat float64, err error) {
	e := newEnv(cfg, cfg.nodesFor(clients))
	defer e.close()
	if err = e.provision("/w"); err != nil {
		return
	}
	cls, err := e.clientsFor(sys, clients, "/w")
	if err != nil {
		return
	}
	md := workload.NewMdtest(cls, "/w", cfg.ItemsPerClient, 1)
	var r workload.Result
	if r, err = md.MkdirPhase(); err != nil {
		return
	}
	mkdir = r.OPS()
	if r, err = md.CreatePhase(); err != nil {
		return
	}
	create = r.OPS()
	if r, err = md.StatPhase(); err != nil {
		return
	}
	stat = r.OPS()
	return
}

// fig1 — motivation: client scalability of BeeGFS and IndexFS in file
// creation, normalized to the single-client throughput.
func fig1(cfg Config) ([]*Figure, error) {
	f := &Figure{
		ID: "fig1", Title: "Client Scalability (file creation, normalized)",
		XLabel: "clients", YLabel: "throughput multiple vs 1 client",
		Series: []string{string(BeeGFS), string(IndexFS)},
	}
	base := map[System]float64{}
	for _, clients := range cfg.clientCounts(true) {
		row := map[string]float64{}
		for _, sys := range []System{BeeGFS, IndexFS} {
			_, create, _, err := runPhases(cfg, sys, clients)
			if err != nil {
				return nil, fmt.Errorf("fig1 %s @%d: %w", sys, clients, err)
			}
			if clients == 1 {
				base[sys] = create
			}
			row[string(sys)] = create / base[sys]
		}
		f.AddPoint(fmt.Sprintf("%d", clients), row)
	}
	last := len(f.Points) - 1
	f.Note("at %s clients: BeeGFS %.1fx, IndexFS %.1fx (paper Fig 1: both plateau far below linear)",
		f.Points[last].X, f.Value(last, string(BeeGFS)), f.Value(last, string(IndexFS)))
	return []*Figure{f}, nil
}

// statLeavesOPS builds a fanout-5 tree of the given depth on a fresh
// deployment and measures random leaf stats.
func statLeavesOPS(cfg Config, sys System, depth int, clients int) (float64, error) {
	e := newEnv(cfg, cfg.nodesFor(clients))
	defer e.close()
	if err := e.provision("/w"); err != nil {
		return 0, err
	}
	cls, err := e.clientsFor(sys, clients, "/w")
	if err != nil {
		return 0, err
	}
	md := workload.NewMdtest(cls, "/w", cfg.ItemsPerClient, 2)
	tree, err := md.BuildTree(5, depth)
	if err != nil {
		return 0, err
	}
	res, err := md.StatLeavesPhase(tree)
	if err != nil {
		return 0, err
	}
	return res.OPS(), nil
}

// fig2 — motivation: path traversal cost on BeeGFS and IndexFS (random
// stat of leaf directories, fanout 5, depth 3..6).
func fig2(cfg Config) ([]*Figure, error) {
	return pathTraversal(cfg, "fig2", "Path Traversal Cost", []System{BeeGFS, IndexFS})
}

// fig9 — evaluation: same experiment including Pacon, whose batch
// permissions + full-path keys make depth irrelevant.
func fig9(cfg Config) ([]*Figure, error) {
	return pathTraversal(cfg, "fig9", "Path Traversal Overhead", []System{BeeGFS, IndexFS, Pacon})
}

func pathTraversal(cfg Config, id, title string, systems []System) ([]*Figure, error) {
	f := &Figure{
		ID: id, Title: title + " (random stat of fanout-5 leaf dirs)",
		XLabel: "depth", YLabel: "OPS",
	}
	for _, s := range systems {
		f.Series = append(f.Series, string(s))
	}
	clients := cfg.MaxNodes / 2 * cfg.ClientsPerNode
	if clients < 1 {
		clients = cfg.ClientsPerNode
	}
	for depth := 3; depth <= 6; depth++ {
		row := map[string]float64{}
		for _, sys := range systems {
			ops, err := statLeavesOPS(cfg, sys, depth, clients)
			if err != nil {
				return nil, fmt.Errorf("%s %s depth %d: %w", id, sys, depth, err)
			}
			row[string(sys)] = ops
		}
		f.AddPoint(fmt.Sprintf("%d", depth), row)
	}
	for _, sys := range systems {
		s := string(sys)
		loss := 100 * (1 - f.Last(s)/f.Value(0, s))
		f.Note("%s: depth 3→6 performance loss %.0f%% (paper: BeeGFS 63%%, IndexFS 47%%, Pacon ~0%%)", s, loss)
	}
	return []*Figure{f}, nil
}

// fig7 — single-application case: mkdir / create / random stat
// throughput for 2..16 nodes (20 clients each) on all three systems.
func fig7(cfg Config) ([]*Figure, error) {
	mk := &Figure{ID: "fig7-mkdir", Title: "Single-application: mkdir", XLabel: "nodes", YLabel: "OPS"}
	cr := &Figure{ID: "fig7-create", Title: "Single-application: create", XLabel: "nodes", YLabel: "OPS"}
	st := &Figure{ID: "fig7-stat", Title: "Single-application: random stat", XLabel: "nodes", YLabel: "OPS"}
	systems := []System{BeeGFS, IndexFS, Pacon}
	for _, f := range []*Figure{mk, cr, st} {
		for _, s := range systems {
			f.Series = append(f.Series, string(s))
		}
	}
	for nodes := 2; nodes <= cfg.MaxNodes; nodes *= 2 {
		rows := [3]map[string]float64{{}, {}, {}}
		for _, sys := range systems {
			m, c, s, err := runPhases(cfg, sys, nodes*cfg.ClientsPerNode)
			if err != nil {
				return nil, fmt.Errorf("fig7 %s @%d nodes: %w", sys, nodes, err)
			}
			rows[0][string(sys)], rows[1][string(sys)], rows[2][string(sys)] = m, c, s
		}
		x := fmt.Sprintf("%d", nodes)
		mk.AddPoint(x, rows[0])
		cr.AddPoint(x, rows[1])
		st.AddPoint(x, rows[2])
	}
	cr.Note("at %d nodes: Pacon/BeeGFS = %.1fx (paper: >76.4x), Pacon/IndexFS = %.1fx (paper: >8.8x)",
		cfg.MaxNodes, cr.Last(string(Pacon))/cr.Last(string(BeeGFS)), cr.Last(string(Pacon))/cr.Last(string(IndexFS)))
	st.Note("at %d nodes: Pacon/BeeGFS = %.1fx (paper: >6.5x), Pacon/IndexFS = %.1fx (paper: >2.6x)",
		cfg.MaxNodes, st.Last(string(Pacon))/st.Last(string(BeeGFS)), st.Last(string(Pacon))/st.Last(string(IndexFS)))
	return []*Figure{mk, cr, st}, nil
}

// fig8 — multi-application case: 2..16 concurrent applications over a
// fixed 320-client cluster, overall throughput per op.
func fig8(cfg Config) ([]*Figure, error) {
	mk := &Figure{ID: "fig8-mkdir", Title: "Multi-application: mkdir", XLabel: "apps", YLabel: "total OPS"}
	cr := &Figure{ID: "fig8-create", Title: "Multi-application: create", XLabel: "apps", YLabel: "total OPS"}
	st := &Figure{ID: "fig8-stat", Title: "Multi-application: random stat", XLabel: "apps", YLabel: "total OPS"}
	systems := []System{BeeGFS, IndexFS, Pacon}
	for _, f := range []*Figure{mk, cr, st} {
		for _, s := range systems {
			f.Series = append(f.Series, string(s))
		}
	}
	totalClients := cfg.MaxNodes * cfg.ClientsPerNode
	for apps := 2; apps <= cfg.MaxNodes; apps *= 2 {
		rows := [3]map[string]float64{{}, {}, {}}
		for _, sys := range systems {
			m, c, s, err := runMultiApp(cfg, sys, apps, totalClients)
			if err != nil {
				return nil, fmt.Errorf("fig8 %s @%d apps: %w", sys, apps, err)
			}
			rows[0][string(sys)], rows[1][string(sys)], rows[2][string(sys)] = m, c, s
		}
		x := fmt.Sprintf("%d", apps)
		mk.AddPoint(x, rows[0])
		cr.AddPoint(x, rows[1])
		st.AddPoint(x, rows[2])
	}
	cr.Note("multi-app create: Pacon/BeeGFS = %.1fx (paper: >10x), Pacon/IndexFS = %.2fx (paper: >1.07x)",
		cr.Last(string(Pacon))/cr.Last(string(BeeGFS)), cr.Last(string(Pacon))/cr.Last(string(IndexFS)))
	return []*Figure{mk, cr, st}, nil
}

// runMultiApp runs `apps` concurrent mdtest instances over disjoint
// workdirs, the cluster's nodes split evenly among them (paper §IV.B).
func runMultiApp(cfg Config, sys System, apps, totalClients int) (mkdir, create, stat float64, err error) {
	e := newEnv(cfg, cfg.MaxNodes)
	defer e.close()

	dirs := make([]string, apps)
	for a := range dirs {
		dirs[a] = fmt.Sprintf("/app%d", a)
	}
	if err = e.provision(dirs...); err != nil {
		return
	}

	perApp := totalClients / apps
	nodesPerApp := len(e.nodes) / apps
	if nodesPerApp < 1 {
		nodesPerApp = 1
	}

	// All apps' clients run in one concurrent phase; client i belongs to
	// app i/perApp and works in that app's directory on its node slice.
	clients := make([]workload.Client, 0, totalClients)
	switch sys {
	case Pacon:
		for a := 0; a < apps; a++ {
			lo := (a * nodesPerApp) % len(e.nodes)
			appNodes := e.nodes[lo : lo+nodesPerApp]
			region, rerr := e.paconRegion(fmt.Sprintf("app%d", a), dirs[a], appNodes)
			if rerr != nil {
				err = rerr
				return
			}
			for i := 0; i < perApp; i++ {
				c, cerr := region.NewClient(appNodes[i%len(appNodes)])
				if cerr != nil {
					err = cerr
					return
				}
				clients = append(clients, c)
			}
		}
	case IndexFS:
		var all []workload.Client
		all, err = e.indexfsClients(totalClients)
		if err != nil {
			return
		}
		clients = all
	default:
		clients = e.beegfsClients(totalClients)
	}

	dirFor := func(i int) string { return dirs[i/perApp%apps] }
	runner := workload.NewRunner(clients)
	items := cfg.ItemsPerClient

	phase := func(kind string) (float64, error) {
		res, perr := runner.RunPhase(func(idx int, cl workload.Client, now vclock.Time) (vclock.Time, int64, error) {
			dir := dirFor(idx)
			var ferr error
			for j := 0; j < items; j++ {
				name := fmt.Sprintf("%s/%s.%d.%d", dir, kind, idx, j)
				switch kind {
				case "d":
					now, ferr = cl.Mkdir(now, name, 0o755)
				case "f":
					now, ferr = cl.Create(now, name, 0o644)
				default: // random stat of this app's files
					_, now, ferr = cl.Stat(now, fmt.Sprintf("%s/f.%d.%d", dir,
						(idx/perApp)*perApp+(idx*7+j*13)%perApp, (j*31+idx)%items))
				}
				if ferr != nil {
					return now, 0, ferr
				}
			}
			return now, int64(items), nil
		})
		if perr != nil {
			return 0, perr
		}
		return res.OPS(), nil
	}

	if mkdir, err = phase("d"); err != nil {
		return
	}
	if create, err = phase("f"); err != nil {
		return
	}
	stat, err = phase("s")
	return
}

// fig10 — Pacon overhead: single client, no concurrency, mkdir
// throughput vs raw Memcached item insertion, across namespace depths.
func fig10(cfg Config) ([]*Figure, error) {
	f := &Figure{
		ID: "fig10", Title: "Pacon Overhead (single client mkdir vs raw memcached insert)",
		XLabel: "depth", YLabel: "OPS",
		Series: []string{string(BeeGFS), string(IndexFS), string(Pacon), string(Memcached)},
	}
	items := cfg.ItemsPerClient * 4 // single client: cheap, use more samples
	for depth := 3; depth <= 6; depth++ {
		row := map[string]float64{}
		for _, sys := range []System{BeeGFS, IndexFS, Pacon} {
			ops, err := singleClientMkdirOPS(cfg, sys, depth, items)
			if err != nil {
				return nil, fmt.Errorf("fig10 %s depth %d: %w", sys, depth, err)
			}
			row[string(sys)] = ops
		}
		ops, err := rawMemcachedInsertOPS(cfg, depth, items)
		if err != nil {
			return nil, err
		}
		row[string(Memcached)] = ops
		f.AddPoint(fmt.Sprintf("%d", depth), row)
	}
	ratio := f.Last(string(Pacon)) / f.Last(string(Memcached))
	f.Note("Pacon reaches %.0f%% of raw memcached throughput (paper: >64.6%%)", 100*ratio)
	return []*Figure{f}, nil
}

// singleClientMkdirOPS measures one client creating subdirectories under
// a parent at the given namespace depth.
func singleClientMkdirOPS(cfg Config, sys System, depth, items int) (float64, error) {
	e := newEnv(cfg, cfg.MaxNodes)
	defer e.close()
	if err := e.provision("/w"); err != nil {
		return 0, err
	}
	// Build the deep parent chain /w/l1/.../l(depth-1) as the app.
	cls, err := e.clientsFor(sys, 1, "/w")
	if err != nil {
		return 0, err
	}
	cl := cls[0]
	parent := "/w"
	now := vclock.Time(0)
	for i := 1; i < depth; i++ {
		parent = fmt.Sprintf("%s/l%d", parent, i)
		if now, err = cl.Mkdir(now, parent, 0o755); err != nil {
			return 0, err
		}
	}
	start := now
	for j := 0; j < items; j++ {
		if now, err = cl.Mkdir(now, fmt.Sprintf("%s/m%d", parent, j), 0o755); err != nil {
			return 0, err
		}
	}
	return float64(items) / now.Sub(start).Seconds(), nil
}

// rawMemcachedInsertOPS is the memaslap baseline: one client inserting
// items into a distributed cache spanning the cluster's nodes, with keys
// shaped like the equivalent paths.
func rawMemcachedInsertOPS(cfg Config, depth, items int) (float64, error) {
	bus := rpc.NewBus()
	ring := dht.New(0)
	for i := 0; i < cfg.MaxNodes; i++ {
		addr := fmt.Sprintf("node%d/mc", i)
		s := memcache.NewServer(addr, memcache.ServerConfig{Model: cfg.Model, Workers: cfg.Model.CacheWorkers})
		bus.Register(addr, s.Service())
		ring.Add(addr)
	}
	client := memcache.NewClient(rpc.NewCaller(bus, cfg.Model, "node0"), ring)

	prefix := "/w"
	for i := 1; i < depth; i++ {
		prefix = fmt.Sprintf("%s/l%d", prefix, i)
	}
	value := make([]byte, 64) // a stat-sized item
	now := vclock.Time(0)
	start := now
	for j := 0; j < items; j++ {
		// memaslap issues one set per item; charge the same client-side
		// overhead Pacon's op path pays for marshaling.
		now = now.Add(cfg.Model.ClientOverhead)
		_, done, err := client.Set(now, fmt.Sprintf("%s/m%d", prefix, j), value, 0)
		if err != nil {
			return 0, err
		}
		now = done
	}
	return float64(items) / now.Sub(start).Seconds(), nil
}

// fig11 — scalability: file-creation throughput normalized to each
// system's single-client run, growing nodes with clients.
func fig11(cfg Config) ([]*Figure, error) {
	norm := &Figure{
		ID: "fig11", Title: "Scalability (file creation, normalized per system)",
		XLabel: "clients", YLabel: "multiple of own 1-client throughput",
		Series: []string{string(BeeGFS), string(IndexFS), string(Pacon)},
	}
	abs := &Figure{
		ID: "fig11-abs", Title: "Scalability (file creation, absolute)",
		XLabel: "clients", YLabel: "OPS",
		Series: []string{string(BeeGFS), string(IndexFS), string(Pacon)},
	}
	base := map[System]float64{}
	for _, clients := range cfg.clientCounts(true) {
		nrow := map[string]float64{}
		arow := map[string]float64{}
		for _, sys := range []System{BeeGFS, IndexFS, Pacon} {
			_, create, _, err := runPhases(cfg, sys, clients)
			if err != nil {
				return nil, fmt.Errorf("fig11 %s @%d: %w", sys, clients, err)
			}
			if clients == 1 {
				base[sys] = create
			}
			nrow[string(sys)] = create / base[sys]
			arow[string(sys)] = create
		}
		x := fmt.Sprintf("%d", clients)
		norm.AddPoint(x, nrow)
		abs.AddPoint(x, arow)
	}
	norm.Note("at %s clients: Pacon scales %.1fx better than BeeGFS (paper: ~16.5x) and %.1fx better than IndexFS (paper: ~2.8x)",
		norm.Points[len(norm.Points)-1].X,
		norm.Last(string(Pacon))/norm.Last(string(BeeGFS)),
		norm.Last(string(Pacon))/norm.Last(string(IndexFS)))
	abs.Note("Pacon absolute create throughput at max clients: %.2fM OPS (paper: >1M OPS at 320 clients)",
		abs.Last(string(Pacon))/1e6)
	return []*Figure{norm, abs}, nil
}

// fig12 — MADbench2: runtime breakdown (init/read/write/other) for
// BeeGFS and Pacon, normalized to BeeGFS's total.
func fig12(cfg Config) ([]*Figure, error) {
	f := &Figure{
		ID: "fig12", Title: "MADbench2 runtime breakdown (normalized to BeeGFS total)",
		XLabel: "part", YLabel: "fraction of BeeGFS total runtime",
		Series: []string{string(BeeGFS), string(Pacon)},
	}
	bee, err := RunMADbench(cfg, BeeGFS)
	if err != nil {
		return nil, fmt.Errorf("fig12 BeeGFS: %w", err)
	}
	pac, err := RunMADbench(cfg, Pacon)
	if err != nil {
		return nil, fmt.Errorf("fig12 Pacon: %w", err)
	}
	total := bee.Total().Seconds()
	add := func(part string, b, p float64) {
		f.AddPoint(part, map[string]float64{
			string(BeeGFS): b / total,
			string(Pacon):  p / total,
		})
	}
	add("init", bee.Init.Seconds(), pac.Init.Seconds())
	add("read", bee.Read.Seconds(), pac.Read.Seconds())
	add("write", bee.Write.Seconds(), pac.Write.Seconds())
	add("other", bee.Other.Seconds(), pac.Other.Seconds())
	add("total", bee.Total().Seconds(), pac.Total().Seconds())
	f.Note("overall runtime Pacon/BeeGFS = %.2f (paper: ~1.0 — data-intensive, metadata savings small)",
		pac.Total().Seconds()/bee.Total().Seconds())
	f.Note("init Pacon/BeeGFS = %.2f (paper: slightly smaller for Pacon)",
		pac.Init.Seconds()/bee.Init.Seconds())
	return []*Figure{f}, nil
}
