package bench

import (
	"encoding/json"
	"fmt"
	"sync/atomic"

	"pacon/internal/core"
	"pacon/internal/obs"
	"pacon/internal/workload"

	"pacon/internal/vclock"
)

// The read experiment measures the read path's round-trip economy and
// barrier latency under a readdir+stat-heavy mix with writers flooding
// sibling subtrees. Three variants isolate the two mechanisms:
//
//	perkey_full    — ReadBatchSize 1 + DisableScopedBarrier: the seed
//	                 read path (one get per stat, full-queue drains).
//	batched_full   — batched reads, scoping still off: isolates the
//	                 GetMulti/StatBatch/warm win.
//	batched_scoped — the shipped configuration: isolates the scoped
//	                 barrier's p95 barrier_wait cut on top of batching.
func init() {
	register("read", func(cfg Config) ([]*Figure, error) {
		_, figs, err := RunRead(cfg)
		return figs, err
	})
}

// ReadVariant is one configuration's measurements over the mix phase.
type ReadVariant struct {
	Readdirs int64 `json:"readdirs"`
	Stats    int64 `json:"stats"`
	// ReadOps = Readdirs + Stats: the denominator of the headline.
	ReadOps int64 `json:"read_ops"`
	// CacheRPCs is the reader clients' metadata-cache round trips during
	// the mix (a multi-key call counts once per owner contacted).
	CacheRPCs      int64   `json:"cache_rpcs"`
	CacheRPCsPerOp float64 `json:"cache_rpcs_per_op"`
	// CacheWarms counts listing/miss-loaded entries that stayed cached.
	CacheWarms int64 `json:"cache_warms"`
	// BarriersScoped/Full split the mix's dependent-op barriers by
	// whether participant shrinking engaged.
	BarriersScoped int64 `json:"barriers_scoped"`
	BarriersFull   int64 `json:"barriers_full"`
	// BarrierWait quantiles (wall ns) over every barrier in the run.
	BarrierWaitP50 int64 `json:"barrier_wait_p50_ns"`
	BarrierWaitP95 int64 `json:"barrier_wait_p95_ns"`
	BarrierWaitP99 int64 `json:"barrier_wait_p99_ns"`
	// VirtualOPS is mix-phase ops (readers + writers) per second of
	// virtual time.
	VirtualOPS float64 `json:"virtual_ops_per_sec"`
	// MDSQueueWaitNSPerOp is the mean virtual queueing delay per op at
	// the MDS pool (time waiting for a free worker slot).
	MDSQueueWaitNSPerOp float64                  `json:"mds_queue_wait_ns_per_op,omitempty"`
	StageLatency        map[string]obs.Quantiles `json:"stage_latency_ns,omitempty"`
}

// ReadReport is the machine-readable result (BENCH_read.json).
type ReadReport struct {
	Experiment      string      `json:"experiment"`
	Clients         int         `json:"clients"`
	Readers         int         `json:"readers"`
	Writers         int         `json:"writers"`
	FilesPerSubtree int         `json:"files_per_subtree"`
	Rounds          int         `json:"rounds"`
	PerKeyFull      ReadVariant `json:"perkey_full"`
	BatchedFull     ReadVariant `json:"batched_full"`
	BatchedScoped   ReadVariant `json:"batched_scoped"`
	// CacheRPCReduction = perkey_full / batched_scoped cache RPCs per
	// read op (the acceptance bar is >= 2x).
	CacheRPCReduction float64 `json:"cache_rpc_reduction"`
	// BarrierP95Cut = batched_full / batched_scoped p95 barrier_wait:
	// the scoped barrier's isolated win under sibling-writer load.
	BarrierP95Cut float64 `json:"barrier_p95_cut"`
	// ShardSweep reruns the batched+scoped mix at the configured MDS
	// shard counts (subtree-partitioned metadata service).
	ShardSweep *ShardSweep `json:"shard_sweep,omitempty"`
}

// JSON renders the report for BENCH_read.json.
func (r *ReadReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// readRounds is how many readdir+stat sweeps each reader performs;
// even rounds list the reader's own hot subtree, odd rounds a
// DFS-resident cold one (first touch exercises the bulk miss-load).
const readRounds = 4

// runReadVariant drives the populate and mix phases against one region
// configuration and collects the variant's counters.
func runReadVariant(cfg Config, clients int, mutate func(*core.RegionConfig), o *obs.Obs) (ReadVariant, error) {
	e := newEnv(cfg, cfg.nodesFor(clients))
	defer e.close()
	if o != nil {
		e.instrument(o)
	}
	if err := e.provision("/w"); err != nil {
		return ReadVariant{}, err
	}
	cls, err := e.paconVariantClients(clients, "/w", mutate)
	if err != nil {
		return ReadVariant{}, err
	}
	region := e.regions[len(e.regions)-1]
	pcs := make([]*core.Client, clients)
	for i, cl := range cls {
		pcs[i] = cl.(*core.Client)
	}

	writers := clients / 4
	if writers < 1 {
		writers = 1
	}
	items := cfg.ItemsPerClient

	// Populate: every client builds its own subtree. The readers'
	// subtrees are the hot set the mix re-lists; the writers' are the
	// siblings they churn.
	runner := workload.NewRunner(cls)
	res, err := runner.RunPhase(func(idx int, cl workload.Client, now vclock.Time) (vclock.Time, int64, error) {
		dir := fmt.Sprintf("/w/t%d", idx)
		var err error
		if now, err = cl.Mkdir(now, dir, 0o755); err != nil {
			return now, 0, err
		}
		for j := 0; j < items; j++ {
			if now, err = cl.Create(now, fmt.Sprintf("%s/f%d", dir, j), 0o644); err != nil {
				return now, 0, err
			}
		}
		return now, int64(items + 1), nil
	})
	if err != nil {
		return ReadVariant{}, fmt.Errorf("populate: %w", err)
	}
	if _, err := region.Drain(res.End); err != nil {
		return ReadVariant{}, err
	}
	// Cold subtrees land on the DFS behind the region's back (the
	// administrator writes them): the first listing must bulk miss-load.
	admin := e.cluster.NewClient("admin", adminCred, 0, 0)
	for i := writers; i < clients; i++ {
		dir := fmt.Sprintf("/w/cold%d", i)
		if _, err := admin.Mkdir(0, dir, 0o777); err != nil {
			return ReadVariant{}, err
		}
		for j := 0; j < items; j++ {
			if _, err := admin.Create(0, fmt.Sprintf("%s/f%d", dir, j), 0o666); err != nil {
				return ReadVariant{}, err
			}
		}
	}

	st0 := region.Stats()
	var rpc0 int64
	for i := writers; i < clients; i++ {
		rpc0 += pcs[i].CacheRPCs()
	}

	// Mix: writers churn their own (sibling) subtrees for the whole
	// phase while readers run ls -l sweeps — readdir, then stat every
	// child through StatMulti (which degenerates to per-key Stat under
	// the ReadBatchSize 1 baseline).
	// The mix mingles barrier ops with writers, so it runs unpaced (see
	// RunPhaseWindow): virtual throughput is reported but the headline
	// metrics are RPC counts and wall-clock barrier waits.
	var readdirs, stats atomic.Int64
	mix, err := runner.RunPhaseWindow(workload.NoSkewBound, func(idx int, cl workload.Client, now vclock.Time) (vclock.Time, int64, error) {
		if idx < writers {
			dir := fmt.Sprintf("/w/t%d", idx)
			var ops int64
			var err error
			for j := 0; j < 2*items; j++ {
				p := fmt.Sprintf("%s/c%d", dir, j)
				if now, err = cl.Create(now, p, 0o644); err != nil {
					return now, ops, err
				}
				ops++
				if j%4 == 0 {
					if now, err = cl.Remove(now, p); err != nil {
						return now, ops, err
					}
					ops++
				}
			}
			return now, ops, nil
		}
		pc := cl.(*core.Client)
		var ops int64
		for round := 0; round < readRounds; round++ {
			dir := fmt.Sprintf("/w/t%d", idx)
			if round%2 == 1 {
				dir = fmt.Sprintf("/w/cold%d", idx)
			}
			ents, done, err := pc.Readdir(now, dir)
			now = done
			if err != nil {
				return now, ops, err
			}
			readdirs.Add(1)
			ops++
			children := make([]string, len(ents))
			for k, ent := range ents {
				children[k] = dir + "/" + ent.Name
			}
			sres, done, err := pc.StatMulti(now, children)
			now = done
			if err != nil {
				return now, ops, err
			}
			for k, sr := range sres {
				if sr.Err != nil {
					return now, ops, fmt.Errorf("stat %s: %w", children[k], sr.Err)
				}
			}
			stats.Add(int64(len(sres)))
			ops += int64(len(sres))
		}
		return now, ops, nil
	})
	if err != nil {
		return ReadVariant{}, fmt.Errorf("mix: %w", err)
	}

	st1 := region.Stats()
	var rpc1 int64
	for i := writers; i < clients; i++ {
		rpc1 += pcs[i].CacheRPCs()
	}
	v := ReadVariant{
		Readdirs:       readdirs.Load(),
		Stats:          stats.Load(),
		ReadOps:        readdirs.Load() + stats.Load(),
		CacheRPCs:      rpc1 - rpc0,
		CacheWarms:     st1.CacheWarms - st0.CacheWarms,
		BarriersScoped: st1.BarriersScoped - st0.BarriersScoped,
		BarriersFull:   st1.BarriersFull - st0.BarriersFull,
	}
	if v.ReadOps > 0 {
		v.CacheRPCsPerOp = float64(v.CacheRPCs) / float64(v.ReadOps)
	}
	if mix.Elapsed > 0 {
		v.VirtualOPS = float64(mix.Ops) / mix.Elapsed.Seconds()
	}
	v.MDSQueueWaitNSPerOp = e.mdsQueueWaitPerOp()
	if o != nil {
		q := o.HistQuantiles()
		v.StageLatency = q
		bw := q[obs.HistBarrierWait]
		v.BarrierWaitP50, v.BarrierWaitP95, v.BarrierWaitP99 = bw.P50, bw.P95, bw.P99
	}
	return v, nil
}

// RunRead executes the three variants and derives the comparison report.
func RunRead(cfg Config) (*ReadReport, []*Figure, error) {
	clients := cfg.nodesFor(cfg.MaxNodes*cfg.ClientsPerNode) * cfg.ClientsPerNode / 2
	if clients < 4 {
		clients = 4
	}
	writers := clients / 4
	if writers < 1 {
		writers = 1
	}

	perkey, err := runReadVariant(cfg, clients, func(rc *core.RegionConfig) {
		rc.ReadBatchSize = 1
		rc.DisableScopedBarrier = true
	}, obs.New())
	if err != nil {
		return nil, nil, fmt.Errorf("read perkey_full variant: %w", err)
	}
	batchedFull, err := runReadVariant(cfg, clients, func(rc *core.RegionConfig) {
		rc.DisableScopedBarrier = true
	}, obs.New())
	if err != nil {
		return nil, nil, fmt.Errorf("read batched_full variant: %w", err)
	}
	scoped, err := runReadVariant(cfg, clients, nil, obs.New())
	if err != nil {
		return nil, nil, fmt.Errorf("read batched_scoped variant: %w", err)
	}

	rep := &ReadReport{
		Experiment:      "read path: per-key+full-drain vs batched reads vs batched+scoped barriers",
		Clients:         clients,
		Readers:         clients - writers,
		Writers:         writers,
		FilesPerSubtree: cfg.ItemsPerClient,
		Rounds:          readRounds,
		PerKeyFull:      perkey,
		BatchedFull:     batchedFull,
		BatchedScoped:   scoped,
	}
	if scoped.CacheRPCsPerOp > 0 {
		rep.CacheRPCReduction = perkey.CacheRPCsPerOp / scoped.CacheRPCsPerOp
	}
	if scoped.BarrierWaitP95 > 0 {
		rep.BarrierP95Cut = float64(batchedFull.BarrierWaitP95) / float64(scoped.BarrierWaitP95)
	}

	f := &Figure{
		ID: "read", Title: "Read path: per-key+full drain vs batched vs batched+scoped",
		XLabel: "variant", YLabel: "see series",
		Series: []string{"cacheRPCs/op", "barrierWaitP95us", "warms", "scopedBarriers", "virtualOPS"},
	}
	for _, p := range []struct {
		name string
		v    ReadVariant
	}{
		{"perkey_full", perkey},
		{"batched_full", batchedFull},
		{"batched_scoped", scoped},
	} {
		f.AddPoint(p.name, map[string]float64{
			"cacheRPCs/op":     p.v.CacheRPCsPerOp,
			"barrierWaitP95us": float64(p.v.BarrierWaitP95) / 1e3,
			"warms":            float64(p.v.CacheWarms),
			"scopedBarriers":   float64(p.v.BarriersScoped),
			"virtualOPS":       p.v.VirtualOPS,
		})
	}
	f.Note("cache RPCs per read op: %.2f -> %.2f (%.1fx reduction)",
		perkey.CacheRPCsPerOp, scoped.CacheRPCsPerOp, rep.CacheRPCReduction)
	f.Note("p95 barrier wait under sibling writers: %.0fus (full) -> %.0fus (scoped), %.1fx cut",
		float64(batchedFull.BarrierWaitP95)/1e3, float64(scoped.BarrierWaitP95)/1e3, rep.BarrierP95Cut)
	f.Note("%d entries warmed into the cache from listings/miss-loads (per-key baseline: %d)",
		scoped.CacheWarms, perkey.CacheWarms)
	if len(cfg.ShardSweep) > 0 {
		sweep, err := runReadShardSweep(cfg, cfg.ShardSweep)
		if err != nil {
			return nil, nil, fmt.Errorf("read shard sweep: %w", err)
		}
		rep.ShardSweep = sweep
		annotateSweep(f, sweep)
	}
	return rep, []*Figure{f}, nil
}
