package bench

import (
	"encoding/json"
	"fmt"

	"pacon/internal/chaos"
)

// The audit experiment turns the divergence auditor into a standing
// verification gate: several chaos schedules (fault injection, stalls,
// rmdir races, cache pressure) run to quiescence and every one must end
// with a clean post-drain audit — zero divergent, zero stale-pending.
// The report is what CI's audit-check step archives.
func init() {
	register("audit", func(cfg Config) ([]*Figure, error) {
		_, figs, err := RunAudit(cfg)
		return figs, err
	})
}

// AuditSeed is one chaos schedule's audit outcome.
type AuditSeed struct {
	Seed         int64 `json:"seed"`
	ClientOps    int   `json:"client_ops"`
	Injected     int   `json:"injected_faults"`
	Stalls       int   `json:"injected_stalls"`
	Sampled      int   `json:"sampled"`
	Matched      int   `json:"matched"`
	StalePending int   `json:"stale_pending"`
	Divergent    int   `json:"divergent"`
}

// AuditReport is the machine-readable result (AUDIT_report.json).
type AuditReport struct {
	Experiment   string      `json:"experiment"`
	Seeds        []AuditSeed `json:"seeds"`
	TotalSampled int         `json:"total_sampled"`
	// AllClean is the gate: true iff every seed audited with zero
	// divergent and zero stale-pending keys.
	AllClean bool `json:"all_clean"`
}

// JSON renders the report for AUDIT_report.json.
func (r *AuditReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// RunAudit drives the chaos harness across a spread of seeds and
// fault mixes, collecting each run's post-drain audit. Any divergence
// (or harness violation of any kind) is an error, not a data point.
func RunAudit(cfg Config) (*AuditReport, []*Figure, error) {
	ops := cfg.ItemsPerClient
	if ops < 20 {
		ops = 20
	}
	schedules := []chaos.Config{
		{Seed: 1, Nodes: 2, Clients: 4, Ops: ops, FaultRate: 0.05, MaxFaultsPerPath: 2},
		{Seed: 2, Nodes: 3, Clients: 6, Ops: ops, FaultRate: 0.1, MaxFaultsPerPath: 2, StallEveryN: 7},
		{Seed: 3, Nodes: 2, Clients: 4, Ops: ops, Rmdir: true, DoomedDirs: 2},
		{Seed: 4, Nodes: 2, Clients: 4, Ops: ops, CacheCapacityBytes: 16 << 10},
	}

	rep := &AuditReport{
		Experiment: "divergence audit over chaos schedules: committed cache entries vs DFS",
		AllClean:   true,
	}
	f := &Figure{
		ID: "audit", Title: "Post-drain divergence audit across chaos schedules",
		XLabel: "seed", YLabel: "keys",
		Series: []string{"sampled", "matched", "stale-pending", "divergent"},
	}
	for _, sc := range schedules {
		res, err := chaos.Run(sc)
		if err != nil {
			return nil, nil, fmt.Errorf("audit seed %d: %w", sc.Seed, err)
		}
		a := res.Audit
		rep.Seeds = append(rep.Seeds, AuditSeed{
			Seed:         sc.Seed,
			ClientOps:    res.ClientOps,
			Injected:     res.Injected,
			Stalls:       res.Stalls,
			Sampled:      a.Sampled,
			Matched:      a.Matched,
			StalePending: a.StalePending,
			Divergent:    a.Divergent,
		})
		rep.TotalSampled += a.Sampled
		if a.Divergent > 0 || a.StalePending > 0 {
			rep.AllClean = false
		}
		f.AddPoint(fmt.Sprintf("%d", sc.Seed), map[string]float64{
			"sampled":       float64(a.Sampled),
			"matched":       float64(a.Matched),
			"stale-pending": float64(a.StalePending),
			"divergent":     float64(a.Divergent),
		})
	}
	f.Note("%d keys audited across %d schedules; all clean: %v",
		rep.TotalSampled, len(rep.Seeds), rep.AllClean)
	if !rep.AllClean {
		return rep, []*Figure{f}, fmt.Errorf("audit gate failed: divergence or post-drain stale-pending detected")
	}
	return rep, []*Figure{f}, nil
}
