package bench

import (
	"fmt"

	"pacon/internal/core"
	"pacon/internal/vclock"
	"pacon/internal/workload"
)

// Ablations isolate Pacon's three main design choices by switching each
// off individually:
//
//	abl-async  — asynchronous commit (Benefit 3): Pacon with SyncCommit
//	             applies every creation to the DFS before returning.
//	abl-perm   — batch permission management (§III.C): Pacon with
//	             HierarchicalPermCheck walks every path component through
//	             the cache.
//	abl-inline — inline small files (§III.D.2): threshold 1 byte forces
//	             every write through the DFS data path.
func init() {
	register("abl-async", ablAsync)
	register("abl-perm", ablPerm)
	register("abl-inline", ablInline)
}

// paconVariantClients builds a region with a config mutation applied.
func (e *env) paconVariantClients(n int, ws string, mutate func(*core.RegionConfig)) ([]workload.Client, error) {
	cfg := core.RegionConfig{
		Name:      "ablation",
		Workspace: ws,
		Nodes:     e.nodes,
		Cred:      appCred,
		Model:     e.cfg.Model,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	region, err := core.NewRegion(cfg, core.Deps{
		Bus: e.bus,
		Obs: e.obs,
		NewBackend: func(node string) core.Backend {
			return e.cluster.NewClient(node, appCred, 4096, 1<<40)
		},
	})
	if err != nil {
		return nil, err
	}
	e.regions = append(e.regions, region)
	out := make([]workload.Client, n)
	for i := range out {
		c, err := region.NewClient(e.nodes[i%len(e.nodes)])
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// createOPSVariant measures the create phase for a Pacon variant.
func createOPSVariant(cfg Config, clients int, mutate func(*core.RegionConfig)) (float64, error) {
	e := newEnv(cfg, cfg.nodesFor(clients))
	defer e.close()
	if err := e.provision("/w"); err != nil {
		return 0, err
	}
	cls, err := e.paconVariantClients(clients, "/w", mutate)
	if err != nil {
		return 0, err
	}
	md := workload.NewMdtest(cls, "/w", cfg.ItemsPerClient, 3)
	res, err := md.CreatePhase()
	if err != nil {
		return 0, err
	}
	return res.OPS(), nil
}

// ablAsync — how much of Pacon's win is the asynchronous commit?
func ablAsync(cfg Config) ([]*Figure, error) {
	f := &Figure{
		ID: "abl-async", Title: "Ablation: asynchronous vs synchronous commit (create)",
		XLabel: "clients", YLabel: "OPS",
		Series: []string{"Pacon", "Pacon-sync-commit", "BeeGFS"},
	}
	for _, clients := range cfg.clientCounts(false) {
		row := map[string]float64{}
		async, err := createOPSVariant(cfg, clients, nil)
		if err != nil {
			return nil, err
		}
		row["Pacon"] = async
		sync, err := createOPSVariant(cfg, clients, func(rc *core.RegionConfig) { rc.SyncCommit = true })
		if err != nil {
			return nil, err
		}
		row["Pacon-sync-commit"] = sync
		_, bee, _, err := runPhases(cfg, BeeGFS, clients)
		if err != nil {
			return nil, err
		}
		row["BeeGFS"] = bee
		f.AddPoint(fmt.Sprintf("%d", clients), row)
	}
	f.Note("async commit contributes %.1fx of Pacon's create throughput at max scale",
		f.Last("Pacon")/f.Last("Pacon-sync-commit"))
	f.Note("synchronous Pacon still beats raw BeeGFS %.1fx (cache absorbs reads, MDS still bounds writes)",
		f.Last("Pacon-sync-commit")/f.Last("BeeGFS"))
	return []*Figure{f}, nil
}

// ablPerm — what does batch permission management buy over hierarchical
// checking inside Pacon?
func ablPerm(cfg Config) ([]*Figure, error) {
	f := &Figure{
		ID: "abl-perm", Title: "Ablation: batch vs hierarchical permission check (random stat of leaf dirs)",
		XLabel: "depth", YLabel: "OPS",
		Series: []string{"Pacon-batch", "Pacon-hierarchical"},
	}
	clients := cfg.MaxNodes / 2 * cfg.ClientsPerNode
	if clients < 1 {
		clients = cfg.ClientsPerNode
	}
	run := func(depth int, hier bool) (float64, error) {
		e := newEnv(cfg, cfg.nodesFor(clients))
		defer e.close()
		if err := e.provision("/w"); err != nil {
			return 0, err
		}
		cls, err := e.paconVariantClients(clients, "/w", func(rc *core.RegionConfig) {
			rc.HierarchicalPermCheck = hier
		})
		if err != nil {
			return 0, err
		}
		md := workload.NewMdtest(cls, "/w", cfg.ItemsPerClient, 4)
		tree, err := md.BuildTree(5, depth)
		if err != nil {
			return 0, err
		}
		res, err := md.StatLeavesPhase(tree)
		if err != nil {
			return 0, err
		}
		return res.OPS(), nil
	}
	for depth := 3; depth <= 6; depth++ {
		row := map[string]float64{}
		batch, err := run(depth, false)
		if err != nil {
			return nil, fmt.Errorf("abl-perm depth %d: %w", depth, err)
		}
		hier, err := run(depth, true)
		if err != nil {
			return nil, fmt.Errorf("abl-perm depth %d hier: %w", depth, err)
		}
		row["Pacon-batch"], row["Pacon-hierarchical"] = batch, hier
		f.AddPoint(fmt.Sprintf("%d", depth), row)
	}
	f.Note("at depth 6, batch permissions deliver %.1fx over per-component checking",
		f.Last("Pacon-batch")/f.Last("Pacon-hierarchical"))
	hierLoss := 100 * (1 - f.Last("Pacon-hierarchical")/f.Value(0, "Pacon-hierarchical"))
	f.Note("hierarchical Pacon loses %.0f%% from depth 3→6 — the traversal cost returns without the batch scheme", hierLoss)
	return []*Figure{f}, nil
}

// ablInline — small-file inlining: write+read of 1 KiB files with and
// without the inline path.
func ablInline(cfg Config) ([]*Figure, error) {
	f := &Figure{
		ID: "abl-inline", Title: "Ablation: inline small files vs DFS write-through (1 KiB create+write+read)",
		XLabel: "clients", YLabel: "file round-trips per second",
		Series: []string{"Pacon-inline", "Pacon-no-inline"},
	}
	run := func(clients, threshold int) (float64, error) {
		e := newEnv(cfg, cfg.nodesFor(clients))
		defer e.close()
		if err := e.provision("/w"); err != nil {
			return 0, err
		}
		cls, err := e.paconVariantClients(clients, "/w", func(rc *core.RegionConfig) {
			rc.SmallFileThreshold = threshold
		})
		if err != nil {
			return 0, err
		}
		runner := workload.NewRunner(cls)
		payload := make([]byte, 1024)
		items := cfg.ItemsPerClient
		res, err := runner.RunPhase(func(idx int, cl workload.Client, now vclock.Time) (vclock.Time, int64, error) {
			fc := cl.(workload.FileClient)
			var err error
			for j := 0; j < items; j++ {
				p := fmt.Sprintf("/w/s.%d.%d", idx, j)
				if now, err = fc.Create(now, p, 0o644); err != nil {
					return now, 0, err
				}
				if now, err = fc.WriteAt(now, p, 0, payload); err != nil {
					return now, 0, err
				}
				data, done, rerr := fc.ReadAt(now, p, 0, 1024)
				now = done
				if rerr != nil {
					return now, 0, rerr
				}
				if len(data) != 1024 {
					return now, 0, fmt.Errorf("short read: %d", len(data))
				}
			}
			return now, int64(items), nil
		})
		if err != nil {
			return 0, err
		}
		return res.OPS(), nil
	}
	for _, clients := range cfg.clientCounts(false) {
		row := map[string]float64{}
		inline, err := run(clients, 4096)
		if err != nil {
			return nil, err
		}
		none, err := run(clients, 1)
		if err != nil {
			return nil, err
		}
		row["Pacon-inline"], row["Pacon-no-inline"] = inline, none
		f.AddPoint(fmt.Sprintf("%d", clients), row)
	}
	f.Note("inlining small files yields %.1fx on 1 KiB file round-trips at max scale",
		f.Last("Pacon-inline")/f.Last("Pacon-no-inline"))
	return []*Figure{f}, nil
}
