package bench

import (
	"strings"
	"testing"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	return Config{
		Model:                Quick().Model,
		MaxNodes:             4,
		ClientsPerNode:       5,
		ItemsPerClient:       15,
		MADbenchProcsPerNode: 2,
		MADbenchFileMB:       1,
	}
}

func TestFigureRendering(t *testing.T) {
	f := &Figure{
		ID: "figX", Title: "Demo", XLabel: "x", YLabel: "ops",
		Series: []string{"A", "B"},
	}
	f.AddPoint("1", map[string]float64{"A": 1500, "B": 2.5e6})
	f.AddPoint("2", map[string]float64{"A": 42, "B": 0})
	f.Note("hello %d", 7)

	s := f.String()
	for _, want := range []string{"figX", "1.5k", "2.50M", "42", "note: hello 7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
	csv := f.CSV()
	if !strings.HasPrefix(csv, "x,A,B\n") || !strings.Contains(csv, "1,1500,2.5e+06") {
		t.Fatalf("csv = %q", csv)
	}
}

func TestFigureAccessors(t *testing.T) {
	f := &Figure{Series: []string{"S"}}
	f.AddPoint("p0", map[string]float64{"S": 10})
	f.AddPoint("p1", map[string]float64{"S": 20})
	if f.Value(0, "S") != 10 || f.Last("S") != 20 {
		t.Fatal("accessors wrong")
	}
	if f.Value(5, "S") != 0 || f.Value(-1, "S") != 0 {
		t.Fatal("out-of-range must be 0")
	}
}

func TestRegistryListsAllFigures(t *testing.T) {
	ids := IDs()
	want := []string{
		"abl-async", "abl-inline", "abl-model", "abl-multimds", "abl-perm", "audit", "commit", "ext-batchfs",
		"fig1", "fig10", "fig11", "fig12", "fig2", "fig7", "fig8", "fig9", "hotspot", "read", "scale", "shards",
	}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
	if _, err := Run("nope", tiny()); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestAblationShapes(t *testing.T) {
	cfg := tiny()
	figs, err := Run("abl-async", cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := figs[0]
	if f.Last("Pacon") <= f.Last("Pacon-sync-commit") {
		t.Fatal("async commit must outperform sync commit")
	}

	figs, err = Run("abl-perm", cfg)
	if err != nil {
		t.Fatal(err)
	}
	f = figs[0]
	if f.Last("Pacon-batch") <= f.Last("Pacon-hierarchical") {
		t.Fatal("batch permissions must outperform hierarchical checking at depth 6")
	}
	// Hierarchical checking must regain depth sensitivity.
	if f.Last("Pacon-hierarchical") >= 0.9*f.Value(0, "Pacon-hierarchical") {
		t.Fatal("hierarchical checking should lose throughput with depth")
	}

	figs, err = Run("abl-inline", cfg)
	if err != nil {
		t.Fatal(err)
	}
	f = figs[0]
	if f.Last("Pacon-inline") <= f.Last("Pacon-no-inline") {
		t.Fatal("inline small files must outperform write-through")
	}
}

func TestClientCountLadder(t *testing.T) {
	cfg := tiny()
	got := cfg.clientCounts(true)
	want := []int{1, 5, 10, 20}
	if len(got) != len(want) {
		t.Fatalf("ladder = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ladder = %v, want %v", got, want)
		}
	}
	if n := cfg.nodesFor(1); n != 1 {
		t.Fatalf("nodesFor(1) = %d", n)
	}
	if n := cfg.nodesFor(20); n != 4 {
		t.Fatalf("nodesFor(20) = %d", n)
	}
	if n := cfg.nodesFor(10000); n != cfg.MaxNodes {
		t.Fatalf("nodesFor(huge) = %d", n)
	}
}

// Smoke-run every figure at tiny scale and check the paper's directional
// claims hold even there.
func TestFig7ShapeHolds(t *testing.T) {
	figs, err := Run("fig7", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("fig7 returned %d figures", len(figs))
	}
	create := figs[1]
	if got := create.Last(string(Pacon)); got <= create.Last(string(BeeGFS)) {
		t.Fatalf("Pacon create (%.0f) must beat BeeGFS (%.0f)", got, create.Last(string(BeeGFS)))
	}
	if got := create.Last(string(Pacon)); got <= create.Last(string(IndexFS)) {
		t.Fatalf("Pacon create (%.0f) must beat IndexFS (%.0f)", got, create.Last(string(IndexFS)))
	}
	stat := figs[2]
	if stat.Last(string(Pacon)) <= stat.Last(string(BeeGFS)) {
		t.Fatal("Pacon stat must beat BeeGFS")
	}
}

func TestFig9PathTraversalShape(t *testing.T) {
	figs, err := Run("fig9", tiny())
	if err != nil {
		t.Fatal(err)
	}
	f := figs[0]
	// BeeGFS and IndexFS degrade with depth; Pacon stays flat (±10%).
	for _, sys := range []string{string(BeeGFS), string(IndexFS)} {
		if f.Last(sys) >= f.Value(0, sys) {
			t.Fatalf("%s must lose throughput with depth", sys)
		}
	}
	p0, p3 := f.Value(0, string(Pacon)), f.Last(string(Pacon))
	if p3 < 0.85*p0 || p3 > 1.15*p0 {
		t.Fatalf("Pacon must be depth-insensitive: %.0f vs %.0f", p0, p3)
	}
}

func TestFig10OverheadShape(t *testing.T) {
	figs, err := Run("fig10", tiny())
	if err != nil {
		t.Fatal(err)
	}
	f := figs[0]
	ratio := f.Last(string(Pacon)) / f.Last(string(Memcached))
	if ratio < 0.55 || ratio >= 1.0 {
		t.Fatalf("Pacon/Memcached = %.2f, want in [0.55, 1.0) (paper: >0.646)", ratio)
	}
	if f.Last(string(BeeGFS)) >= f.Last(string(Pacon)) {
		t.Fatal("BeeGFS single-client mkdir must be slowest")
	}
}

func TestFig12MADbenchShape(t *testing.T) {
	figs, err := Run("fig12", tiny())
	if err != nil {
		t.Fatal(err)
	}
	f := figs[0]
	// Total runtimes comparable (data-intensive), Pacon init smaller.
	bTotal, pTotal := f.Value(4, string(BeeGFS)), f.Value(4, string(Pacon))
	if pTotal > 1.1*bTotal {
		t.Fatalf("Pacon total (%.2f) should not exceed BeeGFS (%.2f) by >10%%", pTotal, bTotal)
	}
	if f.Value(0, string(Pacon)) >= f.Value(0, string(BeeGFS)) {
		t.Fatal("Pacon init must be below BeeGFS init")
	}
}

func TestFig1NormalizationBaseline(t *testing.T) {
	// Plateau shapes need enough clients to saturate the MDS: quick
	// scale (80 clients), not tiny.
	figs, err := Run("fig1", Quick())
	if err != nil {
		t.Fatal(err)
	}
	f := figs[0]
	// First row is the 1-client baseline: exactly 1.0 for both.
	if f.Value(0, string(BeeGFS)) != 1.0 || f.Value(0, string(IndexFS)) != 1.0 {
		t.Fatalf("baseline row = %+v", f.Points[0])
	}
	// BeeGFS must plateau: the last two rows within 10%.
	n := len(f.Points)
	a, b := f.Value(n-2, string(BeeGFS)), f.Value(n-1, string(BeeGFS))
	if b > 1.1*a {
		t.Fatalf("BeeGFS still scaling at max clients: %v -> %v", a, b)
	}
}

func TestFig2BothSystemsLoseWithDepth(t *testing.T) {
	figs, err := Run("fig2", tiny())
	if err != nil {
		t.Fatal(err)
	}
	f := figs[0]
	for _, sys := range f.Series {
		if f.Last(sys) >= f.Value(0, sys) {
			t.Fatalf("%s did not lose throughput with depth", sys)
		}
	}
}

func TestFig8MultiAppShape(t *testing.T) {
	cfg := tiny()
	figs, err := Run("fig8", cfg)
	if err != nil {
		t.Fatal(err)
	}
	create := figs[1]
	// Pacon wins overall, and IndexFS improves as apps spread directories.
	if create.Last(string(Pacon)) <= create.Last(string(IndexFS)) {
		t.Fatal("Pacon must beat IndexFS in multi-app create")
	}
	if create.Last(string(IndexFS)) <= create.Value(0, string(IndexFS)) {
		t.Fatal("IndexFS must improve with more apps (partition spreading)")
	}
}

func TestFig11AbsoluteAndNormalized(t *testing.T) {
	figs, err := Run("fig11", Quick())
	if err != nil {
		t.Fatal(err)
	}
	norm, abs := figs[0], figs[1]
	if norm.Last(string(Pacon)) <= norm.Last(string(BeeGFS)) {
		t.Fatal("Pacon must scale better than BeeGFS")
	}
	// Absolute Pacon throughput grows with clients.
	if abs.Last(string(Pacon)) <= abs.Value(1, string(Pacon)) {
		t.Fatal("Pacon absolute throughput must grow with clients")
	}
}

func TestExtBatchFSShape(t *testing.T) {
	figs, err := Run("ext-batchfs", tiny())
	if err != nil {
		t.Fatal(err)
	}
	f := figs[0]
	// Bulk insertion must beat plain IndexFS on the N-N workload.
	if f.Last("BatchFS(bulk)") <= f.Last("IndexFS") {
		t.Fatal("bulk insertion must beat synchronous IndexFS inserts")
	}
}

func TestMdtestToolRunner(t *testing.T) {
	cfg := tiny()
	res, err := RunMdtest(cfg, Pacon, MdtestSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(cfg.MaxNodes * cfg.ClientsPerNode * cfg.ItemsPerClient)
	if res.Create.Ops != want || res.Remove.Ops != want {
		t.Fatalf("ops = %+v", res)
	}
	// Tree mode.
	res, err = RunMdtest(cfg, BeeGFS, MdtestSpec{Depth: 3, Fanout: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.StatLeaves.Ops == 0 || res.Create.Ops != 0 {
		t.Fatalf("tree mode ops = %+v", res)
	}
}

func TestModelSensitivityShape(t *testing.T) {
	figs, err := Run("abl-model", tiny())
	if err != nil {
		t.Fatal(err)
	}
	rtt, mds := figs[0], figs[1]
	// Pacon must win everywhere in the sweep...
	for i := range rtt.Points {
		if rtt.Value(i, "ratio") <= 1.5 {
			t.Fatalf("RTT sweep point %d: ratio %.2f too small", i, rtt.Value(i, "ratio"))
		}
	}
	// ...with the expected monotone trends: slower network shrinks the
	// win (cache RPCs pay RTT too); slower MDS grows it.
	if rtt.Last("ratio") >= rtt.Value(0, "ratio") {
		t.Fatal("ratio must shrink as RTT grows")
	}
	if mds.Last("ratio") <= mds.Value(0, "ratio") {
		t.Fatal("ratio must grow as the MDS slows")
	}
}

func TestMultiMDSAblationShape(t *testing.T) {
	figs, err := Run("abl-multimds", tiny())
	if err != nil {
		t.Fatal(err)
	}
	f := figs[0]
	// More MDSes help BeeGFS...
	if f.Last(string(BeeGFS)) <= f.Value(0, string(BeeGFS)) {
		t.Fatal("multi-MDS must raise BeeGFS throughput")
	}
	// ...but Pacon stays ahead even at 8 MDSes.
	if f.Last(string(Pacon)) <= f.Last(string(BeeGFS)) {
		t.Fatal("Pacon must still lead an 8-MDS BeeGFS")
	}
}
