package bench

import (
	"encoding/json"
	"fmt"
	"time"

	"pacon/internal/core"
	"pacon/internal/obs"
	"pacon/internal/vclock"
	"pacon/internal/workload"
)

// The commit experiment measures the commit path's round-trip economy:
// the same create/write/remove workload runs against the legacy commit
// configuration (client-side Get+CAS cache bookkeeping, op-at-a-time
// dequeue, no coalescing) and the batched one (server-side conditional
// cache ops, dequeue batches, same-path coalescing, apply_batch), and
// the report compares cache round trips per created file, backend round
// trips, and end-to-end virtual throughput including the drain.
func init() {
	register("commit", func(cfg Config) ([]*Figure, error) {
		_, figs, err := RunCommit(cfg)
		return figs, err
	})
}

// CommitVariant is one side of the commit experiment.
type CommitVariant struct {
	OpsSubmitted int64 `json:"ops_submitted"`
	Creates      int64 `json:"creates"`
	// Region commit-path counters after the drain.
	OpsCommitted int64 `json:"ops_committed"`
	Coalesced    int64 `json:"coalesced"`
	CacheRPCs    int64 `json:"cache_rpcs"`
	BackendRPCs  int64 `json:"backend_rpcs"`
	BatchRPCs    int64 `json:"batch_rpcs"`
	BatchedOps   int64 `json:"batched_ops"`
	// CacheRPCsPerCreate is the headline: commit-path cache round trips
	// spent per created file.
	CacheRPCsPerCreate float64 `json:"cache_rpcs_per_create"`
	// VirtualOPS is client ops per second of virtual time, measured to
	// the end of the drain (the backup copies all landed).
	VirtualOPS float64 `json:"virtual_ops_per_sec"`
	// MDSQueueWaitNSPerOp is the mean virtual queueing delay per op at
	// the MDS pool — how long metadata requests waited for a worker.
	MDSQueueWaitNSPerOp float64 `json:"mds_queue_wait_ns_per_op,omitempty"`
	// StageLatency holds wall-clock {count, p50, p95, p99} per pipeline
	// stage (client_op, queue_wait, cache_rpc, dfs_rpc, commit_lag, ...)
	// from the run's observability sink. Wall time is real host time —
	// orthogonal to VirtualOPS, which obs never perturbs.
	StageLatency map[string]obs.Quantiles `json:"stage_latency_ns,omitempty"`
	// Staleness is the consistency-lag digest for the variant: how far
	// the backup copy trailed the primary during the run.
	Staleness *StalenessBlock `json:"staleness_ns,omitempty"`
}

// StalenessBlock summarizes a variant's consistency lag, all in
// wall-clock nanoseconds. CommitLag digests per-op enqueue→durable-apply
// lag; MaxStaleness digests the region-wide oldest-unacked watermark as
// ticked by a wall-clock sampler while the workload and drain ran; Peak
// is the largest single commit lag the region ever acknowledged.
type StalenessBlock struct {
	CommitLag       obs.Quantiles `json:"commit_lag"`
	MaxStaleness    obs.Quantiles `json:"max_staleness"`
	PeakCommitLagNS int64         `json:"peak_commit_lag_ns"`
}

// CommitReport is the machine-readable result (BENCH_commit.json).
type CommitReport struct {
	Experiment     string        `json:"experiment"`
	Clients        int           `json:"clients"`
	ItemsPerClient int           `json:"items_per_client"`
	Legacy         CommitVariant `json:"legacy"`
	Batched        CommitVariant `json:"batched"`
	// CacheRPCReduction = legacy/batched cache RPCs per create (the
	// acceptance bar is >= 2x).
	CacheRPCReduction float64 `json:"cache_rpc_reduction"`
	// BackendRPCReduction = legacy/batched backend round trips.
	BackendRPCReduction float64 `json:"backend_rpc_reduction"`
	// ThroughputGain = batched/legacy virtual throughput.
	ThroughputGain float64 `json:"throughput_gain"`
	// ShardSweep reruns the batched commit wave at the configured MDS
	// shard counts (subtree-partitioned metadata service).
	ShardSweep *ShardSweep `json:"shard_sweep,omitempty"`
}

// JSON renders the report for BENCH_commit.json.
func (r *CommitReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// commitPhase is one client's slice of the commit workload: it runs
// `items` iterations from `now` and returns the new time and op count.
type commitPhase func(idx int, fc workload.FileClient, now vclock.Time, items int) (vclock.Time, int64, error)

// defaultCommitPhase is the report's headline workload: create + inline
// write + every-4th remove. The inline writes ride the singleton commit
// path by design (data writes are not batchable), so the mix exercises
// both sides of applyWave.
func defaultCommitPhase(payload []byte) commitPhase {
	return func(idx int, fc workload.FileClient, now vclock.Time, items int) (vclock.Time, int64, error) {
		var ops int64
		var err error
		for j := 0; j < items; j++ {
			p := fmt.Sprintf("/w/c%d-f%d", idx, j)
			if now, err = fc.Create(now, p, 0o644); err != nil {
				return now, ops, err
			}
			ops++
			if now, err = fc.WriteAt(now, p, 0, payload); err != nil {
				return now, ops, err
			}
			ops++
			if j%4 == 0 {
				if now, err = fc.Remove(now, p); err != nil {
					return now, ops, err
				}
				ops++
			}
		}
		return now, ops, nil
	}
}

// runCommitVariant drives the workload against one region configuration
// and collects the variant's counters. A nil phase runs the default
// create+write+remove mix.
func runCommitVariant(cfg Config, clients int, mutate func(*core.RegionConfig), o *obs.Obs, phase commitPhase) (CommitVariant, error) {
	e := newEnv(cfg, cfg.nodesFor(clients))
	defer e.close()
	if o != nil {
		e.instrument(o)
	}
	if err := e.provision("/w"); err != nil {
		return CommitVariant{}, err
	}
	cls, err := e.paconVariantClients(clients, "/w", mutate)
	if err != nil {
		return CommitVariant{}, err
	}
	region := e.regions[len(e.regions)-1]

	// Sample the region's staleness watermark on the wall clock for the
	// whole run (workload + drain). The sampler reads atomics/short locks
	// only and never touches virtual time, so VirtualOPS is unaffected.
	var samplerStop chan struct{}
	var samplerDone chan struct{}
	stopSampler := func() {
		if samplerStop != nil {
			close(samplerStop)
			<-samplerDone
			samplerStop = nil
		}
	}
	defer stopSampler()
	if o != nil {
		samplerStop = make(chan struct{})
		samplerDone = make(chan struct{})
		go func() {
			defer close(samplerDone)
			tick := time.NewTicker(time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-samplerStop:
					return
				case <-tick.C:
					o.Hist(obs.HistMaxStaleness).RecordN(region.MaxStaleness())
				}
			}
		}()
	}

	runner := workload.NewRunner(cls)
	if phase == nil {
		phase = defaultCommitPhase(make([]byte, 256))
	}
	items := cfg.ItemsPerClient
	res, err := runner.RunPhase(func(idx int, cl workload.Client, now vclock.Time) (vclock.Time, int64, error) {
		return phase(idx, cl.(workload.FileClient), now, items)
	})
	if err != nil {
		return CommitVariant{}, err
	}
	done, err := region.Drain(res.End)
	if err != nil {
		return CommitVariant{}, err
	}

	st := region.Stats()
	creates := int64(clients * items)
	v := CommitVariant{
		OpsSubmitted: res.Ops,
		Creates:      creates,
		OpsCommitted: st.Committed,
		Coalesced:    st.Coalesced,
		CacheRPCs:    st.CacheRPCs,
		BackendRPCs:  st.BackendRPCs,
		BatchRPCs:    st.BatchRPCs,
		BatchedOps:   st.BatchedOps,
	}
	if creates > 0 {
		v.CacheRPCsPerCreate = float64(st.CacheRPCs) / float64(creates)
	}
	if elapsed := done - res.Start; elapsed > 0 {
		v.VirtualOPS = float64(res.Ops) / vclock.Duration(elapsed).Seconds()
	}
	v.MDSQueueWaitNSPerOp = e.mdsQueueWaitPerOp()
	if o != nil {
		stopSampler()
		q := o.HistQuantiles()
		v.StageLatency = q
		v.Staleness = &StalenessBlock{
			CommitLag:       q[obs.HistCommitLag],
			MaxStaleness:    q[obs.HistMaxStaleness],
			PeakCommitLagNS: region.MaxCommitLag(),
		}
	}
	return v, nil
}

// RunCommit executes both variants and derives the comparison report.
func RunCommit(cfg Config) (*CommitReport, []*Figure, error) {
	clients := cfg.nodesFor(cfg.MaxNodes*cfg.ClientsPerNode) * cfg.ClientsPerNode / 2
	if clients < 2 {
		clients = 2
	}

	// Each variant gets its own sink so the stage quantiles in the
	// report are per-variant, not pooled.
	legacy, err := runCommitVariant(cfg, clients, func(rc *core.RegionConfig) {
		rc.ClientSideCommitOps = true
		rc.DisableCoalesce = true
		rc.CommitBatchSize = 1
	}, obs.New(), nil)
	if err != nil {
		return nil, nil, fmt.Errorf("commit legacy variant: %w", err)
	}
	batched, err := runCommitVariant(cfg, clients, nil, obs.New(), nil)
	if err != nil {
		return nil, nil, fmt.Errorf("commit batched variant: %w", err)
	}

	rep := &CommitReport{
		Experiment:     "commit-path round trips: legacy vs conditional+coalesced+batched",
		Clients:        clients,
		ItemsPerClient: cfg.ItemsPerClient,
		Legacy:         legacy,
		Batched:        batched,
	}
	if batched.CacheRPCsPerCreate > 0 {
		rep.CacheRPCReduction = legacy.CacheRPCsPerCreate / batched.CacheRPCsPerCreate
	}
	if batched.BackendRPCs > 0 {
		rep.BackendRPCReduction = float64(legacy.BackendRPCs) / float64(batched.BackendRPCs)
	}
	if legacy.VirtualOPS > 0 {
		rep.ThroughputGain = batched.VirtualOPS / legacy.VirtualOPS
	}

	f := &Figure{
		ID: "commit", Title: "Commit path: legacy vs conditional+coalesced+batched",
		XLabel: "variant", YLabel: "see series",
		Series: []string{"cacheRPCs/create", "backendRPCs", "committed", "coalesced", "virtualOPS"},
	}
	f.AddPoint("legacy", map[string]float64{
		"cacheRPCs/create": legacy.CacheRPCsPerCreate,
		"backendRPCs":      float64(legacy.BackendRPCs),
		"committed":        float64(legacy.OpsCommitted),
		"coalesced":        float64(legacy.Coalesced),
		"virtualOPS":       legacy.VirtualOPS,
	})
	f.AddPoint("batched", map[string]float64{
		"cacheRPCs/create": batched.CacheRPCsPerCreate,
		"backendRPCs":      float64(batched.BackendRPCs),
		"committed":        float64(batched.OpsCommitted),
		"coalesced":        float64(batched.Coalesced),
		"virtualOPS":       batched.VirtualOPS,
	})
	f.Note("cache round trips per created file: %.2f -> %.2f (%.1fx reduction)",
		legacy.CacheRPCsPerCreate, batched.CacheRPCsPerCreate, rep.CacheRPCReduction)
	f.Note("backend round trips: %d -> %d (%.1fx; %d ops rode %d apply_batch RPCs)",
		legacy.BackendRPCs, batched.BackendRPCs, rep.BackendRPCReduction,
		batched.BatchedOps, batched.BatchRPCs)
	f.Note("virtual throughput incl. drain: %.0f -> %.0f ops/s (%.2fx)",
		legacy.VirtualOPS, batched.VirtualOPS, rep.ThroughputGain)
	if legacy.Staleness != nil && batched.Staleness != nil {
		f.Note("peak commit lag (wall): legacy %v, batched %v",
			time.Duration(legacy.Staleness.PeakCommitLagNS),
			time.Duration(batched.Staleness.PeakCommitLagNS))
	}
	if len(cfg.ShardSweep) > 0 {
		sweep, err := runCommitShardSweep(cfg, cfg.ShardSweep)
		if err != nil {
			return nil, nil, fmt.Errorf("commit shard sweep: %w", err)
		}
		rep.ShardSweep = sweep
		annotateSweep(f, sweep)
	}
	return rep, []*Figure{f}, nil
}
