package bench

import (
	"encoding/json"
	"fmt"
	"strings"

	"pacon/internal/obs"
	"pacon/internal/vclock"
	"pacon/internal/workload"
)

// The shard sweep reruns an experiment's workload against the
// subtree-partitioned metadata service (internal/dfs sharded mode) at a
// ladder of MDS shard counts. The headline is commit-wave scaling: with
// the namespace spread by subtree, the per-shard service resource stops
// being the bottleneck, virtual throughput grows toward linear with the
// pool, and the commit pipeline's queue_wait share of the critical path
// falls. Every point that degrades more than 10% below the single-shard
// baseline carries an explicit note — the sweep reports regressions, it
// does not hide them.
func init() {
	register("shards", func(cfg Config) ([]*Figure, error) {
		_, figs, err := RunShardSweep(cfg)
		return figs, err
	})
}

// ShardPoint is one shard-count measurement of a sweep.
type ShardPoint struct {
	Shards int `json:"shards"`
	// VirtualOPS is the workload's ops per second of virtual time at
	// this shard count (same meaning as the host report's headline).
	VirtualOPS float64 `json:"virtual_ops_per_sec"`
	// Speedup is VirtualOPS relative to the sweep's 1-shard point.
	Speedup float64 `json:"speedup_vs_1shard"`
	// QueueWaitShare is queue_wait's share of the traced critical path
	// (Σ count×p50 over the critpath_* histograms), when tracing ran.
	// Wall-clock, so it reflects host scheduling as much as the model.
	QueueWaitShare float64 `json:"queue_wait_critpath_share,omitempty"`
	// MDSQueueWaitNSPerOp is the mean *virtual* queueing delay per op at
	// the MDS pool — the saturation signal the sweep exists to relieve.
	MDSQueueWaitNSPerOp float64 `json:"mds_queue_wait_ns_per_op,omitempty"`
	BatchRPCs           int64   `json:"batch_rpcs,omitempty"`
	BackendRPCs         int64   `json:"backend_rpcs,omitempty"`
	CacheRPCs           int64   `json:"cache_rpcs,omitempty"`
	// Note flags points that degrade >10% below single-shard.
	Note string `json:"note,omitempty"`
}

// ShardSweep is the shard-scaling block embedded in the commit, read
// and scale reports (and written standalone by `paconbench -shardsjson`).
type ShardSweep struct {
	Workload string       `json:"workload"`
	Points   []ShardPoint `json:"points"`
	// MaxSpeedup is the best speedup any multi-shard point reached.
	MaxSpeedup float64 `json:"max_speedup"`
}

// JSON renders the sweep for a standalone BENCH_shards.json artifact.
func (s *ShardSweep) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// queueWaitShare estimates queue_wait's share of the traced critical
// path from the critpath_* histograms: Σ count×p50 per segment, then
// queue_wait over the total. An approximation (p50×count, not a true
// sum), but stable enough to show the trend across shard counts.
func queueWaitShare(q map[string]obs.Quantiles) float64 {
	var total, qw float64
	for name, h := range q {
		if !strings.HasPrefix(name, "critpath_") {
			continue
		}
		w := float64(h.Count) * float64(h.P50)
		total += w
		if name == "critpath_"+obs.SegQueueWait {
			qw = w
		}
	}
	if total <= 0 {
		return 0
	}
	return qw / total
}

// finishSweep derives speedups against the first point (the 1-shard
// baseline) and attaches honesty notes to degraded points.
func finishSweep(s *ShardSweep) {
	if len(s.Points) == 0 {
		return
	}
	base := s.Points[0].VirtualOPS
	for i := range s.Points {
		p := &s.Points[i]
		if base > 0 {
			p.Speedup = p.VirtualOPS / base
		}
		if p.Shards > 1 && p.Speedup > s.MaxSpeedup {
			s.MaxSpeedup = p.Speedup
		}
		if base > 0 && p.VirtualOPS < 0.9*base {
			p.Note = fmt.Sprintf("degrades %.0f%% vs single-shard on this workload", 100*(1-p.VirtualOPS/base))
		}
	}
}

// shardSweepPhase is the sweep's workload: a pure-metadata commit wave
// (create + every-4th remove, no data writes). The host commit report
// keeps its create+write+remove mix, but inline writes deliberately
// ride the singleton commit path — per-op round trips the shard router
// cannot parallelize — so they would measure the commit loop's RPC
// cadence, not the metadata service under test. Every op here is
// batchable: each wave ships as one apply_batch that the router splits
// into concurrent per-shard sub-batches.
func shardSweepPhase(idx int, fc workload.FileClient, now vclock.Time, items int) (vclock.Time, int64, error) {
	var ops int64
	var err error
	for j := 0; j < items; j++ {
		p := fmt.Sprintf("/w/c%d-f%d", idx, j)
		if now, err = fc.Create(now, p, 0o644); err != nil {
			return now, ops, err
		}
		ops++
		if j%4 == 0 {
			if now, err = fc.Remove(now, p); err != nil {
				return now, ops, err
			}
			ops++
		}
	}
	return now, ops, nil
}

// runCommitShardSweep reruns the batched commit wave at each shard
// count.
func runCommitShardSweep(cfg Config, counts []int) (*ShardSweep, error) {
	clients := cfg.nodesFor(cfg.MaxNodes*cfg.ClientsPerNode) * cfg.ClientsPerNode / 2
	if clients < 2 {
		clients = 2
	}
	s := &ShardSweep{Workload: "commit wave: create+remove metadata ops, batched commit path"}
	for _, n := range counts {
		scfg := cfg
		scfg.MDSShards = n
		v, err := runCommitVariant(scfg, clients, nil, obs.New(), shardSweepPhase)
		if err != nil {
			return nil, fmt.Errorf("shard sweep %d shards: %w", n, err)
		}
		s.Points = append(s.Points, ShardPoint{
			Shards:              n,
			VirtualOPS:          v.VirtualOPS,
			QueueWaitShare:      queueWaitShare(v.StageLatency),
			MDSQueueWaitNSPerOp: v.MDSQueueWaitNSPerOp,
			BatchRPCs:           v.BatchRPCs,
			BackendRPCs:         v.BackendRPCs,
		})
	}
	finishSweep(s)
	return s, nil
}

// runReadShardSweep reruns the batched+scoped read mix at each shard
// count.
func runReadShardSweep(cfg Config, counts []int) (*ShardSweep, error) {
	clients := cfg.nodesFor(cfg.MaxNodes*cfg.ClientsPerNode) * cfg.ClientsPerNode / 2
	if clients < 4 {
		clients = 4
	}
	s := &ShardSweep{Workload: "read mix: readdir+stat sweeps with sibling writers, batched+scoped"}
	for _, n := range counts {
		scfg := cfg
		scfg.MDSShards = n
		v, err := runReadVariant(scfg, clients, nil, obs.New())
		if err != nil {
			return nil, fmt.Errorf("read shard sweep %d shards: %w", n, err)
		}
		s.Points = append(s.Points, ShardPoint{
			Shards:              n,
			VirtualOPS:          v.VirtualOPS,
			QueueWaitShare:      queueWaitShare(v.StageLatency),
			MDSQueueWaitNSPerOp: v.MDSQueueWaitNSPerOp,
		})
	}
	finishSweep(s)
	return s, nil
}

// runScaleShardSweep reruns one scale point — the largest configured
// client count at or below 10k (harness cost, not model cost, dominates
// above that) — at each shard count.
func runScaleShardSweep(cfg Config, counts []int, warm []string) (*ShardSweep, error) {
	clients := 0
	for _, n := range cfg.scaleScales() {
		if n <= 10_000 && n > clients {
			clients = n
		}
	}
	if clients == 0 {
		clients = cfg.scaleScales()[0]
	}
	s := &ShardSweep{Workload: fmt.Sprintf("scale point: %d multiplexed clients, 1/8 create + 7/8 stat", clients)}
	for _, n := range counts {
		scfg := cfg
		scfg.MDSShards = n
		pt, err := runScalePoint(scfg, clients, warm)
		if err != nil {
			return nil, fmt.Errorf("scale shard sweep %d shards: %w", n, err)
		}
		s.Points = append(s.Points, ShardPoint{
			Shards:              n,
			VirtualOPS:          pt.VirtualOPS,
			QueueWaitShare:      queueWaitShare(pt.StageLatency),
			MDSQueueWaitNSPerOp: pt.MDSQueueWaitNSPerOp,
			CacheRPCs:           pt.CacheRPCs,
			BackendRPCs:         pt.BackendRPCs,
		})
	}
	finishSweep(s)
	return s, nil
}

// RunShardSweep is the standalone experiment (`paconbench -shardsjson`,
// `make bench-shards`): the commit-wave sweep over cfg.ShardSweep
// (default 1/2/4/8) with its own figure.
func RunShardSweep(cfg Config) (*ShardSweep, []*Figure, error) {
	counts := cfg.ShardSweep
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8}
	}
	sweep, err := runCommitShardSweep(cfg, counts)
	if err != nil {
		return nil, nil, err
	}
	f := &Figure{
		ID: "shards", Title: "Commit-wave throughput vs MDS shard count (subtree-partitioned MDS)",
		XLabel: "shards", YLabel: "ops/s (virtual)",
		Series: []string{"virtualOPS", "speedup", "queueWaitShare", "mdsQueueWaitUS"},
	}
	for _, p := range sweep.Points {
		f.AddPoint(fmt.Sprintf("%d", p.Shards), map[string]float64{
			"virtualOPS":     p.VirtualOPS,
			"speedup":        p.Speedup,
			"queueWaitShare": p.QueueWaitShare,
			"mdsQueueWaitUS": p.MDSQueueWaitNSPerOp / 1e3,
		})
	}
	annotateSweep(f, sweep)
	return sweep, []*Figure{f}, nil
}

// annotateSweep adds the sweep's headline notes to a figure.
func annotateSweep(f *Figure, s *ShardSweep) {
	if len(s.Points) < 2 {
		return
	}
	first, last := s.Points[0], s.Points[len(s.Points)-1]
	f.Note("shard sweep (%s): %.0f -> %.0f ops/s from %d to %d shards (max speedup %.2fx)",
		s.Workload, first.VirtualOPS, last.VirtualOPS, first.Shards, last.Shards, s.MaxSpeedup)
	if first.MDSQueueWaitNSPerOp > 0 {
		f.Note("MDS queue wait (virtual): %.1fus -> %.1fus per op from %d to %d shards",
			first.MDSQueueWaitNSPerOp/1e3, last.MDSQueueWaitNSPerOp/1e3, first.Shards, last.Shards)
	}
	if first.QueueWaitShare > 0 && last.QueueWaitShare > 0 {
		f.Note("queue_wait critical-path share (wall): %.0f%% at %d shard(s) -> %.0f%% at %d",
			100*first.QueueWaitShare, first.Shards, 100*last.QueueWaitShare, last.Shards)
	}
	for _, p := range s.Points {
		if p.Note != "" {
			f.Note("%d shards: %s", p.Shards, p.Note)
		}
	}
}
