package bench

import (
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"

	"pacon/internal/obs"
	"pacon/internal/vclock"
	"pacon/internal/workload"
)

// The hotspot experiment closes the loop on the hotspot-telemetry
// subsystem: a zipf-skewed stat/create mix (the skew regime metadata
// traces actually show) runs at scale-bench fan-in — thousands of
// multiplexed simulated clients, not 160 — while the sketches watch,
// and the report grades them. Three verdicts per point: client p50/p99
// under skew, the per-shard load spread a hot subtree induces on the
// partitioned MDS pool (ranks are laid out so the hottest ranks share
// one directory, hence one shard), and the top-K sketch's recall of the
// true hot set the generator planted. The sweep crosses zipf s ∈ {1.0,
// 1.2, 1.4} with MDS shards ∈ {1, 4}.
func init() {
	register("hotspot", func(cfg Config) ([]*Figure, error) {
		_, figs, err := RunHotspot(cfg)
		return figs, err
	})
}

const (
	// hotspotWarmPaths is the zipf key space: pre-created files split
	// across hotspotDirs directories in rank order, so ranks 0..63 (the
	// entire hot head) live in the first directory and the load they
	// attract concentrates on the shard that owns it.
	hotspotWarmPaths = 1024
	hotspotDirs      = 16
	// hotspotTopK is the hot-set size recall is measured over.
	hotspotTopK = 16
)

var (
	hotspotZipfS  = []float64{1.0, 1.2, 1.4}
	hotspotShards = []int{1, 4}
)

// HotspotPoint is one (zipf s, shard count) measurement.
type HotspotPoint struct {
	ZipfS     float64 `json:"zipf_s"`
	MDSShards int     `json:"mds_shards"`
	Clients   int     `json:"clients"`
	Shards    int     `json:"shard_goroutines"`
	Ops       int64   `json:"ops"`
	Creates   int64   `json:"creates"`
	StatOps   int64   `json:"stats"`
	// VirtualOPS is client ops per second of virtual time, to drain end.
	VirtualOPS  float64 `json:"virtual_ops_per_sec"`
	WallSeconds float64 `json:"wall_seconds"`
	// ClientOpP50NS/P99NS digest the client_op histogram: the
	// client-visible synchronous latency under this skew.
	ClientOpP50NS int64 `json:"client_op_p50_ns"`
	ClientOpP99NS int64 `json:"client_op_p99_ns"`
	// SketchRecall is |TopPaths(K) ∩ true top-K| / K — the acceptance
	// headline (≥0.9 required at s=1.2).
	SketchRecall float64 `json:"sketch_recall_top16"`
	// TopPathShare is the sketch's share estimate for the hottest path.
	TopPathShare float64 `json:"top_path_share"`
	// HotSubtree is the deepest subtree the rollup names past the
	// workspace root, with its share of all recorded ops — the split
	// candidate a rebalancer would act on.
	HotSubtree      string  `json:"hot_subtree,omitempty"`
	HotSubtreeShare float64 `json:"hot_subtree_share,omitempty"`
	// Per-shard load over the measured window (deltas, so the warm
	// phase doesn't blur the skew): ops served, busy time, utilization
	// of the shard's worker slots, and the spread stats over the ops.
	ShardOps                []int64   `json:"shard_ops,omitempty"`
	ShardUtilization        []float64 `json:"shard_utilization,omitempty"`
	ShardOpsMaxMeanPermille int64     `json:"shard_ops_max_mean_permille,omitempty"`
	ShardOpsCVPermille      int64     `json:"shard_ops_cv_permille,omitempty"`
	// MDSQueueWaitNSPerOp is the pool's mean virtual queueing delay per
	// op — the cost the skew induces.
	MDSQueueWaitNSPerOp float64 `json:"mds_queue_wait_ns_per_op,omitempty"`
}

// HotspotReport is the machine-readable result (BENCH_hotspot.json).
type HotspotReport struct {
	Experiment string         `json:"experiment"`
	WarmPaths  int            `json:"warm_paths"`
	Dirs       int            `json:"dirs"`
	TopK       int            `json:"top_k"`
	OpsBudget  int            `json:"ops_budget"`
	Points     []HotspotPoint `json:"points"`
	// MinRecallZipf12 is the worst sketch recall across the s=1.2
	// points — the acceptance criterion (≥0.9).
	MinRecallZipf12 float64 `json:"min_recall_zipf_1_2"`
}

// JSON renders the report for BENCH_hotspot.json.
func (r *HotspotReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// hotspotDir returns the directory owning a rank (rank-order layout:
// the first warm/dirs ranks share dir 0).
func hotspotDir(rank int) int { return rank / (hotspotWarmPaths / hotspotDirs) }

// hotspotLayout builds the rank-ordered key space.
func hotspotLayout() []string {
	paths := make([]string, hotspotWarmPaths)
	for i := range paths {
		paths[i] = fmt.Sprintf("/w/d%02d/f%04d", hotspotDir(i), i)
	}
	return paths
}

// mdsSnap snapshots per-shard served ops and busy time so the measured
// phase can be reported as deltas.
type mdsSnap struct {
	ops  []int64
	busy []int64
}

func (e *env) snapMDS() mdsSnap {
	s := mdsSnap{ops: make([]int64, len(e.cluster.MDSes)), busy: make([]int64, len(e.cluster.MDSes))}
	for i, m := range e.cluster.MDSes {
		st := m.Stats()
		s.ops[i] = st.Lookups + st.Reads + st.Writes
		s.busy[i] = int64(m.Resource().BusyTime())
	}
	return s
}

// runHotspotPoint measures one (zipf s, shard count) cell against a
// fresh deployment.
func runHotspotPoint(cfg Config, clients int, s float64) (HotspotPoint, error) {
	start := time.Now()
	e := newEnv(cfg, cfg.nodesFor(clients))
	defer e.close()
	o := obs.New()
	e.instrument(o)
	dirs := make([]string, 1, 1+hotspotDirs)
	dirs[0] = "/w"
	for d := 0; d < hotspotDirs; d++ {
		dirs = append(dirs, fmt.Sprintf("/w/d%02d", d))
	}
	if err := e.provision(dirs...); err != nil {
		return HotspotPoint{}, err
	}
	z := workload.NewZipfPaths(hotspotLayout(), s)
	shards := clients
	if shards > maxShardGoroutines {
		shards = maxShardGoroutines
	}
	cls, err := e.paconClients(shards, "/w")
	if err != nil {
		return HotspotPoint{}, err
	}
	region := e.regions[len(e.regions)-1]
	runner := workload.NewRunner(cls)

	// Warm phase: pre-create the key space, striped over the shards.
	_, err = runner.RunPhase(func(idx int, cl workload.Client, now vclock.Time) (vclock.Time, int64, error) {
		var ops int64
		for i := idx; i < z.Len(); i += shards {
			var err error
			if now, err = cl.Create(now, z.Path(i), 0o644); err != nil {
				return now, ops, err
			}
			ops++
		}
		return now, ops, nil
	})
	if err != nil {
		return HotspotPoint{}, fmt.Errorf("warm phase: %w", err)
	}
	if _, err := region.Drain(0); err != nil {
		return HotspotPoint{}, fmt.Errorf("warm drain: %w", err)
	}
	before := e.snapMDS()

	opsPer := cfg.scaleBudget() / clients
	if opsPer < 1 {
		opsPer = 1
	}
	var creates, stats atomic.Int64
	res, err := runner.RunPhaseWindow(scaleWindow, func(idx int, cl workload.Client, phaseStart vclock.Time) (vclock.Time, int64, error) {
		// Same multiplexing as the scale experiment: this shard owns
		// simulated clients {c : c % shards == idx}, swept round-robin
		// one op per client so sibling clocks stay aligned. Each shard
		// draws from its own deterministic zipf stream.
		stream := z.Stream(int64(idx) + 1)
		n := (clients - idx + shards - 1) / shards
		clocks := make([]vclock.Time, n)
		for i := range clocks {
			clocks[i] = phaseStart
		}
		var ops, myCreates int64
		for k := 0; k < opsPer; k++ {
			for i := 0; i < n; i++ {
				c := idx + i*shards
				now := clocks[i]
				rank := stream.NextRank()
				var err error
				if (c+k)%8 == 0 {
					// 1-in-8 creates, placed in the zipf-picked rank's
					// directory: new-file traffic follows the same skew
					// as reads, which is what concentrates write load on
					// the hot subtree's shard (and churns the sketch's
					// key space with client-unique names).
					p := fmt.Sprintf("/w/d%02d/x%d.%d", hotspotDir(rank), c, k)
					now, err = cl.Create(now, p, 0o644)
					myCreates++
				} else {
					_, now, err = cl.Stat(now, z.Path(rank))
				}
				if err != nil {
					return now, ops, err
				}
				clocks[i] = now
				ops++
			}
		}
		end := phaseStart
		for _, t := range clocks {
			if t > end {
				end = t
			}
		}
		creates.Add(myCreates)
		stats.Add(ops - myCreates)
		return end, ops, nil
	})
	if err != nil {
		return HotspotPoint{}, err
	}
	done, err := region.Drain(res.End)
	if err != nil {
		return HotspotPoint{}, err
	}
	after := e.snapMDS()

	mdsShards := cfg.MDSShards
	if mdsShards < 1 {
		mdsShards = 1
	}
	pt := HotspotPoint{
		ZipfS:       s,
		MDSShards:   mdsShards,
		Clients:     clients,
		Shards:      shards,
		Ops:         res.Ops,
		Creates:     creates.Load(),
		StatOps:     stats.Load(),
		WallSeconds: time.Since(start).Seconds(),
	}
	if elapsed := done - res.Start; elapsed > 0 {
		pt.VirtualOPS = float64(res.Ops) / vclock.Duration(elapsed).Seconds()
	}
	if q, ok := o.HistQuantiles()[obs.HistClientOp]; ok {
		pt.ClientOpP50NS, pt.ClientOpP99NS = q.P50, q.P99
	}
	pt.MDSQueueWaitNSPerOp = e.mdsQueueWaitPerOp()

	// Sketch verdicts against the generator's ground truth.
	top := o.TopPaths(hotspotTopK)
	if len(top) > 0 {
		pt.TopPathShare = top[0].Share
	}
	truth := make(map[string]bool, hotspotTopK)
	for _, p := range z.Hot(hotspotTopK) {
		truth[p] = true
	}
	hit := 0
	for _, hk := range top {
		if truth[hk.Path] {
			hit++
		}
	}
	pt.SketchRecall = float64(hit) / float64(hotspotTopK)
	// The split candidate: the deepest subtree past the workspace root
	// with at least 10% of the recorded load.
	for _, hk := range o.HotSubtrees(8, 0.10) {
		if len(hk.Path) > len("/w") {
			pt.HotSubtree, pt.HotSubtreeShare = hk.Path, hk.Share
			break
		}
	}

	// Per-shard measured-window load and spread.
	window := done - res.Start
	pt.ShardOps = make([]int64, len(after.ops))
	pt.ShardUtilization = make([]float64, len(after.ops))
	for i := range after.ops {
		pt.ShardOps[i] = after.ops[i] - before.ops[i]
		if w := e.cluster.MDSes[i].Resource().Workers(); w > 0 && window > 0 {
			pt.ShardUtilization[i] = float64(after.busy[i]-before.busy[i]) / (float64(w) * float64(window))
		}
	}
	sk := obs.Skew(pt.ShardOps)
	pt.ShardOpsMaxMeanPermille = sk.MaxMeanPermille
	pt.ShardOpsCVPermille = sk.CVPermille
	return pt, nil
}

// RunHotspot sweeps zipf skew × MDS shard count and derives the report.
func RunHotspot(cfg Config) (*HotspotReport, []*Figure, error) {
	// Scale-bench fan-in: the largest configured scale point at or below
	// 10k simulated clients (same rule as the scale shard sweep).
	clients := 0
	for _, n := range cfg.scaleScales() {
		if n <= 10_000 && n > clients {
			clients = n
		}
	}
	if clients == 0 {
		clients = cfg.scaleScales()[0]
	}
	rep := &HotspotReport{
		Experiment:      "hotspot telemetry: zipf-skewed stat/create mix, sketch recall + shard spread",
		WarmPaths:       hotspotWarmPaths,
		Dirs:            hotspotDirs,
		TopK:            hotspotTopK,
		OpsBudget:       cfg.scaleBudget(),
		MinRecallZipf12: 1,
	}
	f := &Figure{
		ID: "hotspot", Title: "Hotspot telemetry under zipf skew (sketch recall, shard spread)",
		XLabel: "zipf s / MDS shards", YLabel: "mixed",
		Series: []string{"recall", "topPathShare", "shardMaxMean", "p99us", "virtualOPS"},
	}
	seen12 := false
	for _, s := range hotspotZipfS {
		for _, n := range hotspotShards {
			scfg := cfg
			scfg.MDSShards = n
			pt, err := runHotspotPoint(scfg, clients, s)
			if err != nil {
				return nil, nil, fmt.Errorf("hotspot point s=%.1f shards=%d: %w", s, n, err)
			}
			rep.Points = append(rep.Points, pt)
			if s == 1.2 {
				seen12 = true
				if pt.SketchRecall < rep.MinRecallZipf12 {
					rep.MinRecallZipf12 = pt.SketchRecall
				}
			}
			f.AddPoint(fmt.Sprintf("s=%.1f/%dsh", s, n), map[string]float64{
				"recall":       pt.SketchRecall,
				"topPathShare": pt.TopPathShare,
				"shardMaxMean": float64(pt.ShardOpsMaxMeanPermille) / 1000,
				"p99us":        float64(pt.ClientOpP99NS) / 1e3,
				"virtualOPS":   pt.VirtualOPS,
			})
		}
	}
	if !seen12 {
		rep.MinRecallZipf12 = 0
	}
	annotateHotspot(f, rep)
	return rep, []*Figure{f}, nil
}

// annotateHotspot adds the report's headline notes to the figure.
func annotateHotspot(f *Figure, rep *HotspotReport) {
	f.Note("top-%d sketch recall at zipf s=1.2: %.2f (acceptance ≥ 0.90)", rep.TopK, rep.MinRecallZipf12)
	for _, pt := range rep.Points {
		if pt.MDSShards > 1 && pt.HotSubtree != "" {
			f.Note("s=%.1f/%dsh: hot subtree %s carries %.0f%% of ops; shard max/mean %.2fx",
				pt.ZipfS, pt.MDSShards, pt.HotSubtree, 100*pt.HotSubtreeShare,
				float64(pt.ShardOpsMaxMeanPermille)/1000)
		}
	}
}
