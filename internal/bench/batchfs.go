package bench

import (
	"fmt"

	"pacon/internal/indexfs"
	"pacon/internal/vclock"
	"pacon/internal/workload"
)

// ext-batchfs approximates the paper's private-metadata-service
// discussion (§II.B, §V): BatchFS/DeltaFS ≈ IndexFS co-located with the
// clients plus bulk insertion. On their ideal workload — an N-N
// checkpoint where every process writes its own directory and nobody
// reads until the job ends — bulk insertion buffers creates locally and
// merges them as SSTables. The experiment shows the trade the paper
// calls out: bulk mode approaches (even beats) Pacon on raw insertion,
// but gives up the shared consistent view Pacon keeps (a bulk client's
// files are invisible to everyone until the merge).
func init() {
	register("ext-batchfs", extBatchFS)
}

func extBatchFS(cfg Config) ([]*Figure, error) {
	f := &Figure{
		ID: "ext-batchfs", Title: "Extension: N-N checkpoint creates — IndexFS vs BatchFS-mode vs Pacon",
		XLabel: "clients", YLabel: "create OPS (bulk includes final merge)",
		Series: []string{"IndexFS", "BatchFS(bulk)", "Pacon"},
	}
	for _, clients := range cfg.clientCounts(false) {
		row := map[string]float64{}
		for _, mode := range []string{"IndexFS", "BatchFS(bulk)"} {
			ops, err := nnCheckpointIndexFS(cfg, clients, mode == "BatchFS(bulk)")
			if err != nil {
				return nil, fmt.Errorf("ext-batchfs %s @%d: %w", mode, clients, err)
			}
			row[mode] = ops
		}
		ops, err := nnCheckpointPacon(cfg, clients)
		if err != nil {
			return nil, fmt.Errorf("ext-batchfs pacon @%d: %w", clients, err)
		}
		row["Pacon"] = ops
		f.AddPoint(fmt.Sprintf("%d", clients), row)
	}
	f.Note("BatchFS-mode/Pacon at max scale = %.2fx — private metadata wins raw inserts by dropping the shared view (no global namespace until merge)",
		f.Last("BatchFS(bulk)")/f.Last("Pacon"))
	f.Note("BatchFS-mode/IndexFS = %.1fx — the bulk-insertion speedup the BatchFS paper reports",
		f.Last("BatchFS(bulk)")/f.Last("IndexFS"))
	return []*Figure{f}, nil
}

// nnCheckpointIndexFS runs the per-client-directory create workload.
func nnCheckpointIndexFS(cfg Config, clients int, bulk bool) (float64, error) {
	e := newEnv(cfg, cfg.nodesFor(clients))
	defer e.close()
	if err := e.provision("/ckpt"); err != nil {
		return 0, err
	}
	// Prepare per-client directories through a plain client.
	if _, err := e.indexfsClients(1); err != nil {
		return 0, err
	}
	setup := e.indexfs.NewClient(e.nodes[0], appCred, 4096, false)
	at := vclock.Time(0)
	for i := 0; i < clients; i++ {
		var err error
		at, err = setup.Mkdir(at, fmt.Sprintf("/ckpt/rank%04d", i), 0o755)
		if err != nil {
			return 0, err
		}
	}

	cls := make([]*indexfs.Client, clients)
	for i := range cls {
		cls[i] = e.indexfs.NewClient(e.nodes[i%len(e.nodes)], appCred, 4096, bulk)
	}
	wcls := make([]workload.Client, clients)
	for i, c := range cls {
		wcls[i] = c
	}
	runner := workload.NewRunner(wcls)
	items := cfg.ItemsPerClient
	res, err := runner.RunPhase(func(idx int, cl workload.Client, now vclock.Time) (vclock.Time, int64, error) {
		var err error
		for j := 0; j < items; j++ {
			now, err = cl.Create(now, fmt.Sprintf("/ckpt/rank%04d/out.%d", idx, j), 0o644)
			if err != nil {
				return now, 0, err
			}
		}
		if bulk {
			// The checkpoint's final merge into the global store.
			if now, err = cls[idx].FlushBulk(now); err != nil {
				return now, 0, err
			}
		}
		return now, int64(items), nil
	})
	if err != nil {
		return 0, err
	}
	return res.OPS(), nil
}

func nnCheckpointPacon(cfg Config, clients int) (float64, error) {
	e := newEnv(cfg, cfg.nodesFor(clients))
	defer e.close()
	if err := e.provision("/ckpt"); err != nil {
		return 0, err
	}
	cls, err := e.paconClients(clients, "/ckpt")
	if err != nil {
		return 0, err
	}
	setup := cls[0]
	at := vclock.Time(0)
	for i := 0; i < clients; i++ {
		if at, err = setup.Mkdir(at, fmt.Sprintf("/ckpt/rank%04d", i), 0o755); err != nil {
			return 0, err
		}
	}
	runner := workload.NewRunner(cls)
	items := cfg.ItemsPerClient
	res, err := runner.RunPhase(func(idx int, cl workload.Client, now vclock.Time) (vclock.Time, int64, error) {
		var err error
		for j := 0; j < items; j++ {
			now, err = cl.Create(now, fmt.Sprintf("/ckpt/rank%04d/out.%d", idx, j), 0o644)
			if err != nil {
				return now, 0, err
			}
		}
		return now, int64(items), nil
	})
	if err != nil {
		return 0, err
	}
	return res.OPS(), nil
}
