package bench

import (
	"fmt"
	"time"

	"pacon/internal/dfs"
	"pacon/internal/rpc"
	"pacon/internal/vclock"
	"pacon/internal/workload"
)

// abl-model sweeps the two most influential latency-model parameters —
// the cross-node RTT and the MDS write cost — and reports the Pacon/
// BeeGFS create ratio at each point. The paper's headline ("Pacon
// improves creation by >76x") should be a robust consequence of the
// architecture (async cache-speed writes vs synchronous saturated MDS),
// not a knife-edge artifact of one calibration: the ratio must stay
// large across a wide parameter range, growing as the MDS slows and
// shrinking (but staying >>1) as the network slows.
func init() {
	register("abl-model", ablModel)
}

func ablModel(cfg Config) ([]*Figure, error) {
	rttFig := &Figure{
		ID: "abl-model-rtt", Title: "Sensitivity: cross-node RTT sweep (create, max clients)",
		XLabel: "RTT", YLabel: "OPS",
		Series: []string{string(BeeGFS), string(Pacon), "ratio"},
	}
	clients := cfg.MaxNodes * cfg.ClientsPerNode
	for _, rtt := range []time.Duration{20 * time.Microsecond, 80 * time.Microsecond, 320 * time.Microsecond} {
		c := cfg
		c.Model.CrossNodeRTT = rtt
		row, err := createRatioRow(c, clients)
		if err != nil {
			return nil, fmt.Errorf("abl-model rtt %v: %w", rtt, err)
		}
		rttFig.AddPoint(rtt.String(), row)
	}

	mdsFig := &Figure{
		ID: "abl-model-mds", Title: "Sensitivity: MDS write cost sweep (create, max clients)",
		XLabel: "MDS write", YLabel: "OPS",
		Series: []string{string(BeeGFS), string(Pacon), "ratio"},
	}
	for _, w := range []time.Duration{30 * time.Microsecond, 120 * time.Microsecond, 480 * time.Microsecond} {
		c := cfg
		c.Model.MDSWriteCost = w
		row, err := createRatioRow(c, clients)
		if err != nil {
			return nil, fmt.Errorf("abl-model mds %v: %w", w, err)
		}
		mdsFig.AddPoint(w.String(), row)
	}

	for _, f := range []*Figure{rttFig, mdsFig} {
		lo, hi := f.Value(0, "ratio"), f.Last("ratio")
		f.Note("Pacon/BeeGFS ratio spans %.0fx – %.0fx across the sweep — the win is architectural, not a calibration artifact", minf(lo, hi), maxf(lo, hi))
	}
	return []*Figure{rttFig, mdsFig}, nil
}

func createRatioRow(cfg Config, clients int) (map[string]float64, error) {
	row := map[string]float64{}
	for _, sys := range []System{BeeGFS, Pacon} {
		_, create, _, err := runPhases(cfg, sys, clients)
		if err != nil {
			return nil, err
		}
		row[string(sys)] = create
	}
	row["ratio"] = row[string(Pacon)] / row[string(BeeGFS)]
	return row, nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Guard against an accidentally shared model: Config carries the model
// by value, so per-sweep mutation is safe; this assertion documents it.
var _ = func() vclock.LatencyModel {
	c := Default()
	c.Model.CrossNodeRTT = 0
	if Default().Model.CrossNodeRTT == 0 {
		panic("bench: Config.Model must be a value copy")
	}
	return c.Model
}()

// abl-multimds: how far does scaling the metadata server cluster go?
// (paper §II.B: "these systems can increase the scalability of metadata
// service to a certain extent by increasing the number of metadata
// servers, but the effectiveness of this approach is limited"). BeeGFS
// with 1/2/4/8 MDSes against Pacon at full client load.
func init() {
	register("abl-multimds", ablMultiMDS)
}

func ablMultiMDS(cfg Config) ([]*Figure, error) {
	f := &Figure{
		ID: "abl-multimds", Title: "Ablation: scaling the MDS cluster vs Pacon (create, max clients)",
		XLabel: "MDS count", YLabel: "OPS",
		Series: []string{string(BeeGFS), string(Pacon)},
	}
	clients := cfg.MaxNodes * cfg.ClientsPerNode
	pacon := 0.0
	for _, nmds := range []int{1, 2, 4, 8} {
		row := map[string]float64{}
		bee, err := multiMDSCreateOPS(cfg, nmds, clients)
		if err != nil {
			return nil, fmt.Errorf("abl-multimds %d: %w", nmds, err)
		}
		row[string(BeeGFS)] = bee
		if pacon == 0 {
			_, pacon, _, err = runPhases(cfg, Pacon, clients)
			if err != nil {
				return nil, err
			}
		}
		row[string(Pacon)] = pacon
		f.AddPoint(fmt.Sprintf("%d", nmds), row)
	}
	f.Note("8 MDSes buy BeeGFS %.1fx over 1 MDS, yet Pacon still leads %.0fx — hardware scaling cannot chase client growth (§II.B)",
		f.Last(string(BeeGFS))/f.Value(0, string(BeeGFS)),
		f.Last(string(Pacon))/f.Last(string(BeeGFS)))
	return []*Figure{f}, nil
}

// multiMDSCreateOPS runs the create phase on a BeeGFS deployment with n
// metadata servers.
func multiMDSCreateOPS(cfg Config, nmds, clients int) (float64, error) {
	bus := rpc.NewBus()
	mdsNodes := make([]string, nmds)
	for i := range mdsNodes {
		mdsNodes[i] = fmt.Sprintf("storage-m%d", i)
	}
	cluster := dfs.NewClusterMulti(bus, cfg.Model, adminCred, mdsNodes, []string{"s1", "s2", "s3"})
	admin := cluster.NewClient("admin", adminCred, 0, 0)
	if _, err := admin.Mkdir(0, "/w", 0o777); err != nil {
		return 0, err
	}
	nodes := cfg.nodesFor(clients)
	cls := make([]workload.Client, clients)
	for i := range cls {
		cls[i] = cluster.NewClient(fmt.Sprintf("node%d", i%nodes), appCred, 0, 0)
	}
	md := workload.NewMdtest(cls, "/w", cfg.ItemsPerClient, 5)
	res, err := md.CreatePhase()
	if err != nil {
		return 0, err
	}
	return res.OPS(), nil
}
