package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
)

// metricName sanitizes a registry name into a Prometheus metric name and
// prefixes the pacon namespace.
func metricName(name string) string {
	var b strings.Builder
	b.WriteString("pacon_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters, gauges, then histograms. Latency
// histograms are exported in seconds, as Prometheus convention wants,
// with cumulative `le` buckets up to the highest non-empty bucket plus
// `+Inf`, `_sum`, and `_count`.
func (o *Obs) WriteProm(w io.Writer) {
	if o == nil {
		return
	}
	counters := o.counterValues()
	for _, name := range sortedKeys(counters) {
		m := metricName(name) + "_total"
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m, m, counters[name])
	}
	gauges := o.gaugeValues()
	for _, name := range sortedKeys(gauges) {
		m := metricName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", m, m, gauges[name])
	}
	snaps := o.histSnapshots()
	for _, name := range sortedKeys(snaps) {
		writePromHist(w, metricName(name)+"_seconds", snaps[name])
	}
}

// writePromHist renders one histogram. Bucket bounds are the log2
// nanosecond bounds converted to seconds.
func writePromHist(w io.Writer, m string, s HistSnapshot) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", m)
	top := 0
	for i, b := range s.Buckets {
		if b > 0 {
			top = i
		}
	}
	cum := int64(0)
	for i := 0; i <= top; i++ {
		cum += s.Buckets[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m, promSeconds(BucketBound(i)), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m, cum)
	fmt.Fprintf(w, "%s_sum %s\n", m, promSeconds(s.Sum))
	fmt.Fprintf(w, "%s_count %d\n", m, s.Count)
}

// promSeconds formats nanoseconds as seconds without float artifacts.
func promSeconds(ns int64) string {
	s := strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", float64(ns)/1e9), "0"), ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Handler returns the /metrics HTTP handler. Safe on a nil registry
// (serves an empty exposition).
func (o *Obs) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.WriteProm(w)
	})
}

// expvarMu serializes PublishExpvar: expvar.Publish panics on duplicate
// names, and a bare Get probe is check-then-act — two goroutines
// publishing the same name (e.g. two regions restarting concurrently
// after checkpoint/restore) could both pass the probe and one would
// panic. The process-wide mutex makes probe+publish atomic.
var expvarMu sync.Mutex

// PublishExpvar publishes the registry under one expvar name rendering
// counters, gauges, and histogram quantile digests as JSON. Idempotent
// and safe to call concurrently: the first publish of a name wins and
// later calls are no-ops (the published closure reads o live, so
// re-registering readers on o — a region restart — needs no re-publish).
func (o *Obs) PublishExpvar(name string) {
	if o == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		return map[string]any{
			"counters": o.counterValues(),
			"gauges":   o.gaugeValues(),
			"latency":  o.HistQuantiles(),
		}
	}))
}
