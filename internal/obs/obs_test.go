package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 40, 41}, {1<<62 + 1, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every positive value must be strictly below its bucket's bound and
	// at or above the previous bucket's bound.
	for _, v := range []int64{1, 2, 3, 5, 100, 4096, 1 << 30} {
		i := bucketOf(v)
		if v >= BucketBound(i) {
			t.Errorf("value %d not below BucketBound(%d)=%d", v, i, BucketBound(i))
		}
		if i > 1 && v < BucketBound(i-1) {
			t.Errorf("value %d below lower bound of bucket %d", v, i)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h *Histogram
	h.RecordN(5) // nil-safe no-op
	if h.Count() != 0 {
		t.Fatal("nil histogram has samples")
	}
	s := NewHistogram().Snapshot()
	if q := s.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d, want 0", q)
	}
	if m := s.Mean(); m != 0 {
		t.Fatalf("empty mean = %v, want 0", m)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram()
	// 90 fast samples (~100ns) and 10 slow (~1ms).
	for i := 0; i < 90; i++ {
		h.RecordN(100)
	}
	for i := 0; i < 10; i++ {
		h.RecordN(1_000_000)
	}
	s := h.Snapshot()
	if q := s.Quantile(0.50); q != BucketBound(bucketOf(100)) {
		t.Errorf("p50 = %d, want bound of 100's bucket (%d)", q, BucketBound(bucketOf(100)))
	}
	if q := s.Quantile(0.99); q != BucketBound(bucketOf(1_000_000)) {
		t.Errorf("p99 = %d, want bound of 1ms bucket (%d)", q, BucketBound(bucketOf(1_000_000)))
	}
	if s.Count != 100 || s.Sum != 90*100+10*1_000_000 {
		t.Errorf("count/sum = %d/%d", s.Count, s.Sum)
	}
	q := s.Quantiles()
	if q.Count != 100 || q.P50 > q.P95 || q.P95 > q.P99 {
		t.Errorf("quantile digest not monotone: %+v", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.RecordN(10)
	a.RecordN(20)
	b.RecordN(1 << 20)
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Count != 3 || s.Sum != 10+20+1<<20 {
		t.Fatalf("merged count/sum = %d/%d", s.Count, s.Sum)
	}
	if s.Buckets[bucketOf(10)] == 0 || s.Buckets[bucketOf(1<<20)] == 0 {
		t.Fatal("merged buckets missing samples")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.RecordN(int64(w*per + i + 1))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	total := int64(0)
	for _, b := range s.Buckets {
		total += b
	}
	if total != workers*per {
		t.Fatalf("bucket sum = %d, want %d", total, workers*per)
	}
}

func TestRingWrap(t *testing.T) {
	tr := &Tracer{ringSize: 4}
	r := tr.Ring("n0")
	for i := 1; i <= 6; i++ {
		r.Record(Event{Span: uint64(i), Wall: int64(i)})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("resident events = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(i + 3); ev.Span != want {
			t.Errorf("event %d span = %d, want %d (oldest-first after wrap)", i, ev.Span, want)
		}
		if ev.Node != "n0" {
			t.Errorf("ring did not stamp node: %q", ev.Node)
		}
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	if tr.NewSpan() != 0 {
		t.Fatal("nil tracer allocated a span")
	}
	tr.Ring("x").Record(Event{Span: 1})
	if evs := tr.Events(); evs != nil {
		t.Fatal("nil tracer returned events")
	}
	var o *Obs
	o.Hist("x").Record(time.Millisecond)
	o.ObserveRPC("a/pacon-r", "get", time.Millisecond, nil)
	o.RegisterGauge("g", func() int64 { return 1 })
	if o.SlowSpans(0) != nil {
		t.Fatal("nil obs returned slow spans")
	}
}

func TestTracerFilterAndSlowSpans(t *testing.T) {
	tr := &Tracer{}
	s1, s2 := tr.NewSpan(), tr.NewSpan()
	r0, r1 := tr.Ring("n0"), tr.Ring("n1")
	r0.Record(Event{Span: s1, Stage: StageEnqueue, Op: "create", Path: "/a", Wall: 100})
	r1.Record(Event{Span: s1, Stage: StageDequeue, Op: "create", Path: "/a", Wall: 200})
	r1.Record(Event{Span: s1, Stage: StageApply, Op: "create", Path: "/a", Wall: 900})
	r0.Record(Event{Span: s2, Stage: StageEnqueue, Op: "rm", Path: "/b", Wall: 150})
	r0.Record(Event{Span: s2, Stage: StageApply, Op: "rm", Path: "/b", Wall: 250})

	evs := tr.SpanEvents(s1)
	if len(evs) != 3 {
		t.Fatalf("span %d events = %d, want 3", s1, len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Wall < evs[i-1].Wall {
			t.Fatal("span events not wall-ordered")
		}
	}
	if evs[0].Stage != StageEnqueue || evs[2].Stage != StageApply {
		t.Fatalf("lifecycle order wrong: %v ... %v", evs[0].Stage, evs[2].Stage)
	}

	slow := tr.SlowSpans(500, 0)
	if len(slow) != 1 || slow[0].Span != s1 {
		t.Fatalf("slow spans = %+v, want only span %d", slow, s1)
	}
	if slow[0].Total != 800 || slow[0].Outcome != StageApply {
		t.Fatalf("slow summary = %+v", slow[0])
	}
	if len(slow[0].Steps) != 3 || slow[0].Steps[1].D != 100 || slow[0].Steps[2].D != 700 {
		t.Fatalf("per-stage breakdown wrong: %+v", slow[0].Steps)
	}
	if s := slow[0].String(); !strings.Contains(s, "apply") || !strings.Contains(s, "create") {
		t.Fatalf("summary render missing fields: %q", s)
	}
}

func TestObsRegistryAndProm(t *testing.T) {
	o := New()
	o.Hist(HistClientOp).Record(3 * time.Microsecond)
	o.Hist(HistQueueWait).Record(80 * time.Microsecond)
	o.ObserveRPC("node0/pacon-r0", "set", 2*time.Microsecond, nil)
	o.ObserveRPC("node0/mds", "apply_batch", 40*time.Microsecond, nil)
	o.RegisterCounter("ops_committed", func() int64 { return 42 })
	o.RegisterGauge("queue_depth", func() int64 { return 7 })

	if o.Hist(HistCacheRPC).Count() != 1 || o.Hist(HistDFSRPC).Count() != 1 {
		t.Fatal("ObserveRPC misclassified cache vs dfs round trips")
	}

	srv := httptest.NewServer(o.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE pacon_ops_committed_total counter",
		"pacon_ops_committed_total 42",
		"# TYPE pacon_queue_depth gauge",
		"pacon_queue_depth 7",
		"# TYPE pacon_client_op_seconds histogram",
		"pacon_client_op_seconds_count 1",
		`pacon_client_op_seconds_bucket{le="+Inf"} 1`,
		"# TYPE pacon_cache_rpc_seconds histogram",
		"pacon_dfs_rpc_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n---\n%s", want, body)
		}
	}
	// Histograms must emit cumulative buckets: the +Inf bucket equals count.
	if !strings.Contains(body, `pacon_queue_wait_seconds_bucket{le="+Inf"} 1`) {
		t.Errorf("queue_wait +Inf bucket wrong\n---\n%s", body)
	}

	q := o.HistQuantiles()
	if len(q) < 4 {
		t.Fatalf("quantile digest has %d stages, want >= 4: %v", len(q), q)
	}
	if q[HistClientOp].Count != 1 {
		t.Fatalf("client_op digest = %+v", q[HistClientOp])
	}

	sum := o.Summary()
	for _, want := range []string{"queue_depth", "ops_committed", "client_op", "p95"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}

	o.PublishExpvar("pacon-test")
	o.PublishExpvar("pacon-test") // must not panic on duplicate
}

func TestPromSeconds(t *testing.T) {
	cases := map[int64]string{
		0:             "0",
		1:             "0.000000001",
		1_000_000_000: "1",
		1_500_000_000: "1.5",
	}
	for ns, want := range cases {
		if got := promSeconds(ns); got != want {
			t.Errorf("promSeconds(%d) = %q, want %q", ns, got, want)
		}
	}
}

func TestSlowThreshold(t *testing.T) {
	o := New()
	if o.SlowThreshold() != DefaultSlowSpan {
		t.Fatal("default threshold wrong")
	}
	o.SetSlowThreshold(time.Second)
	if o.SlowThreshold() != time.Second {
		t.Fatal("threshold not applied")
	}
	o.SetSlowThreshold(0)
	if o.SlowThreshold() != DefaultSlowSpan {
		t.Fatal("zero threshold should restore default")
	}
}
