// Package obs is the dependency-free observability layer for the pacon
// commit pipeline: span tracing through the queue/coalesce/barrier/apply
// stages, log2 latency histograms, counters and gauges, hotspot
// telemetry (heavy-hitter path sketches, subtree load attribution, and
// skew gauges — hotspot.go), and a Prometheus-text exposition handler.
// The package imports only the standard library plus the leaf
// internal/namespace package (for ancestor iteration) so every other
// layer can use it without cycles, and every entry point is nil-safe: a
// nil *Obs (observability disabled) costs call sites exactly one branch.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram names for the pipeline stages every deployment gets. The
// registry is open — callers may record under any name — but bench,
// the shell, and DESIGN.md refer to these.
const (
	// HistClientOp is client-visible op latency: the synchronous part
	// of a client call (permission check + cache write + enqueue).
	HistClientOp = "client_op"
	// HistQueueWait is queue residency: enqueue to commit-process dequeue.
	HistQueueWait = "queue_wait"
	// HistBarrierWait is time a strong op spends in the sync barrier.
	HistBarrierWait = "barrier_wait"
	// HistCacheRPC is one metadata-cache round trip at the transport seam.
	HistCacheRPC = "cache_rpc"
	// HistDFSRPC is one backend (MDS/data server) round trip.
	HistDFSRPC = "dfs_rpc"
	// HistCommitLag is enqueue to durable apply on the DFS: how far the
	// backup copy trails the primary.
	HistCommitLag = "commit_lag"
	// HistReaddirEntries is the entry count per workspace readdir — a
	// size distribution, not a latency; it sizes the listings the read
	// path's cache warming fans out over.
	HistReaddirEntries = "readdir_entries"
	// HistMaxStaleness is the sampled region-wide consistency-lag
	// watermark (age of the oldest unacknowledged op, including parked
	// and retrying ones). Fed by samplers — the bench harness ticks it —
	// not by the pipeline itself, which exports the live value as the
	// max_staleness_ns gauge.
	HistMaxStaleness = "max_staleness"
)

// DefaultSlowSpan is the slow-op log threshold until overridden.
const DefaultSlowSpan = 20 * time.Millisecond

// Obs is one region's (or process's) observability registry: a span
// tracer, named histograms, and registered counter/gauge readers, all
// exposed together through WriteProm/Handler and the shell snapshot.
type Obs struct {
	// Trace allocates spans and owns the per-node event rings.
	Trace Tracer

	slowNanos atomic.Int64

	// Tail sampler (sampler.go): 1-in-N head sampling plus keep-at-
	// terminal for slow/failed/parked ops.
	sampleN   atomic.Int64
	sampleSeq atomic.Uint64

	// Self-maintained counters, registered in New().
	cacheRPCErrs atomic.Int64
	dfsRPCErrs   atomic.Int64
	spansSampled atomic.Int64
	tailKept     atomic.Int64

	// Active sampled-span buffers and the kept-span overwrite ring
	// (sampler.go).
	activeMu sync.Mutex
	active   map[uint64][]Event
	recentMu sync.Mutex
	recent   []CritPath
	recentAt int

	// Flight recorder (flight.go).
	flightSeq  atomic.Int64
	flightLast atomic.Int64
	flightMu   sync.Mutex
	flightDir  string
	lastFlight []byte

	mu       sync.Mutex
	hists    map[string]*Histogram
	counters map[string]func() int64
	gauges   map[string]func() int64

	// Per-node hotspot recorders (hotspot.go): lock-free lookup after a
	// node's first op, bounded sketch state behind each recorder's own
	// mutex.
	hotNodes sync.Map // node -> *NodeHot

	// Per-MDS-address DFS RPC instrumentation (sharded deployments):
	// lock-free lookup after the first RPC to an address, so the per-shard
	// breakdown costs one sync.Map hit per round trip.
	shardRPC sync.Map // addr -> *shardRPCStats
}

// shardRPCStats is one MDS address's RPC breakdown: its latency
// histogram (also registered as "dfs_rpc/<addr>") and error count
// (registered as "dfs_rpc_errors/<addr>").
type shardRPCStats struct {
	hist *Histogram
	errs atomic.Int64
}

// New returns an enabled registry.
func New() *Obs {
	o := &Obs{
		hists:    make(map[string]*Histogram),
		counters: make(map[string]func() int64),
		gauges:   make(map[string]func() int64),
	}
	o.slowNanos.Store(int64(DefaultSlowSpan))
	o.sampleN.Store(DefaultSampleN)
	// Pre-create the pipeline histograms so /metrics shows the full
	// stage inventory from the first scrape.
	for _, name := range []string{
		HistClientOp, HistQueueWait, HistBarrierWait,
		HistCacheRPC, HistDFSRPC, HistCommitLag, HistReaddirEntries,
	} {
		o.hists[name] = NewHistogram()
	}
	// Self-maintained counters: failed RPC round trips by service kind,
	// and the tracing/flight bookkeeping.
	o.counters["cache_rpc_errors"] = o.cacheRPCErrs.Load
	o.counters["dfs_rpc_errors"] = o.dfsRPCErrs.Load
	o.counters["spans_sampled"] = o.spansSampled.Load
	o.counters["spans_tail_kept"] = o.tailKept.Load
	o.counters["flight_dumps"] = o.flightSeq.Load
	// Hotspot self-metrics (hotspot.go): sketch residency and the
	// region-level skew of recorded ops across nodes.
	o.counters["hot_sketch_evictions"] = o.hotEvictions
	o.gauges["hot_paths_tracked"] = o.hotPathsTracked
	o.gauges["hot_subtrees_tracked"] = o.hotSubtreesTracked
	o.gauges["hot_top_path_share_permille"] = o.topPathSharePermille
	o.gauges["hot_node_ops_maxmean_permille"] = func() int64 { return o.nodeOpSkew().MaxMeanPermille }
	o.gauges["hot_node_ops_cv_permille"] = func() int64 { return o.nodeOpSkew().CVPermille }
	return o
}

// Hist returns (creating on first use) the named histogram. A nil
// registry returns a nil histogram, whose Record is a no-op.
func (o *Obs) Hist(name string) *Histogram {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	h, ok := o.hists[name]
	if !ok {
		h = NewHistogram()
		o.hists[name] = h
	}
	return h
}

// ObserveRPC implements the transport instrumentation hook (see
// rpc.RPCObserver): it classifies the round trip by service address —
// pacon metadata-cache servers register under "<node>/pacon-<region>",
// everything else (MDS, data servers) is the DFS — and records its
// wall-clock duration. Errored round trips are recorded too: a slow
// failure is still time the pipeline spent waiting.
func (o *Obs) ObserveRPC(addr, method string, d time.Duration, err error) {
	if o == nil {
		return
	}
	if strings.Contains(addr, "/pacon-") {
		o.Hist(HistCacheRPC).Record(d)
		if err != nil {
			o.cacheRPCErrs.Add(1)
		}
	} else {
		o.Hist(HistDFSRPC).Record(d)
		if err != nil {
			o.dfsRPCErrs.Add(1)
		}
		if strings.Contains(addr, "/mds") {
			s := o.shardStats(addr)
			s.hist.Record(d)
			if err != nil {
				s.errs.Add(1)
			}
		}
	}
	if err != nil {
		o.Hist("rpc_error").RecordN(int64(d))
	}
}

// shardStats returns (creating and registering on first use) the
// per-address DFS RPC breakdown for an MDS service address.
func (o *Obs) shardStats(addr string) *shardRPCStats {
	if v, ok := o.shardRPC.Load(addr); ok {
		return v.(*shardRPCStats)
	}
	s := &shardRPCStats{hist: NewHistogram()}
	if v, loaded := o.shardRPC.LoadOrStore(addr, s); loaded {
		return v.(*shardRPCStats)
	}
	// First RPC to this address: expose the breakdown through the
	// registry (WriteProm sanitizes the '/'-bearing names).
	o.mu.Lock()
	o.hists[HistDFSRPC+"/"+addr] = s.hist
	o.mu.Unlock()
	o.RegisterCounter("dfs_rpc_errors/"+addr, s.errs.Load)
	return s
}

// ObserveServerSpan implements the server-side trace hook (see
// rpc.SpanObserver): a service that handled an RPC carrying a sampled
// span's trace context records recv/done events into the *service
// address's* ring — so the span's assembled timeline shows its
// cross-node hops — and into the span's active buffer.
func (o *Obs) ObserveServerSpan(span uint64, hop uint8, addr, method string, start time.Time, d time.Duration, err error) {
	if o == nil || span == 0 {
		return
	}
	ring := o.Trace.Ring(addr)
	note := ""
	if err != nil {
		note = err.Error()
	}
	o.RecordSpanEvent(ring, Event{Span: span, Stage: StageServerRecv, Op: method, Wall: start.UnixNano()})
	o.RecordSpanEvent(ring, Event{Span: span, Stage: StageServerDone, Op: method, Wall: start.Add(d).UnixNano(), Note: note})
}

// RegisterCounter registers a monotonically non-decreasing reader (e.g.
// a RegionStats field). Re-registering a name replaces the reader.
func (o *Obs) RegisterCounter(name string, fn func() int64) {
	if o == nil || fn == nil {
		return
	}
	o.mu.Lock()
	o.counters[name] = fn
	o.mu.Unlock()
}

// RegisterGauge registers an instantaneous-value reader (queue depth,
// parked ops, dirty keys...). Re-registering a name replaces the reader.
func (o *Obs) RegisterGauge(name string, fn func() int64) {
	if o == nil || fn == nil {
		return
	}
	o.mu.Lock()
	o.gauges[name] = fn
	o.mu.Unlock()
}

// SetSlowThreshold sets the slow-op log threshold (<=0 restores the
// default).
func (o *Obs) SetSlowThreshold(d time.Duration) {
	if o == nil {
		return
	}
	if d <= 0 {
		d = DefaultSlowSpan
	}
	o.slowNanos.Store(int64(d))
}

// SlowThreshold returns the current slow-op threshold.
func (o *Obs) SlowThreshold() time.Duration {
	if o == nil {
		return DefaultSlowSpan
	}
	return time.Duration(o.slowNanos.Load())
}

// SlowSpans returns the resident spans at or above the configured
// threshold, slowest first, at most max (0 = unlimited).
func (o *Obs) SlowSpans(max int) []SpanSummary {
	if o == nil {
		return nil
	}
	return o.Trace.SlowSpans(o.SlowThreshold(), max)
}

// HistQuantiles digests every histogram with recorded samples into
// {count, p50, p95, p99} — the per-stage block bench embeds in its
// BENCH json.
func (o *Obs) HistQuantiles() map[string]Quantiles {
	out := make(map[string]Quantiles)
	for name, s := range o.histSnapshots() {
		if s.Count > 0 {
			out[name] = s.Quantiles()
		}
	}
	return out
}

// histSnapshots snapshots every histogram under a short lock.
func (o *Obs) histSnapshots() map[string]HistSnapshot {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	hists := make(map[string]*Histogram, len(o.hists))
	for name, h := range o.hists {
		hists[name] = h
	}
	o.mu.Unlock()
	out := make(map[string]HistSnapshot, len(hists))
	for name, h := range hists {
		out[name] = h.Snapshot()
	}
	return out
}

// counterValues reads every registered counter.
func (o *Obs) counterValues() map[string]int64 {
	return readFns(o, func() map[string]func() int64 { return o.counters })
}

// gaugeValues reads every registered gauge.
func (o *Obs) gaugeValues() map[string]int64 {
	return readFns(o, func() map[string]func() int64 { return o.gauges })
}

// readFns copies a reader map under the lock, then invokes the readers
// outside it (readers may grab their own locks, e.g. queue mutexes).
func readFns(o *Obs, pick func() map[string]func() int64) map[string]int64 {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	fns := make(map[string]func() int64, 8)
	for name, fn := range pick() {
		fns[name] = fn
	}
	o.mu.Unlock()
	out := make(map[string]int64, len(fns))
	for name, fn := range fns {
		out[name] = fn()
	}
	return out
}

// Summary renders the live snapshot for `paconfs stats`: gauges,
// counters, then per-stage latency quantiles, sorted by name.
func (o *Obs) Summary() string {
	if o == nil {
		return "observability disabled\n"
	}
	var b strings.Builder
	if g := o.gaugeValues(); len(g) > 0 {
		b.WriteString("gauges:\n")
		for _, name := range sortedKeys(g) {
			fmt.Fprintf(&b, "  %-24s %d\n", name, g[name])
		}
	}
	if c := o.counterValues(); len(c) > 0 {
		b.WriteString("counters:\n")
		for _, name := range sortedKeys(c) {
			fmt.Fprintf(&b, "  %-24s %d\n", name, c[name])
		}
	}
	snaps := o.histSnapshots()
	recorded := make(map[string]HistSnapshot)
	for name, s := range snaps {
		if s.Count > 0 {
			recorded[name] = s
		}
	}
	if len(recorded) > 0 {
		b.WriteString("latency (wall):\n")
		for _, name := range sortedKeys(recorded) {
			s := recorded[name]
			q := s.Quantiles()
			fmt.Fprintf(&b, "  %-14s n=%-8d p50<%-12v p95<%-12v p99<%-12v mean=%v\n",
				name, q.Count,
				time.Duration(q.P50), time.Duration(q.P95), time.Duration(q.P99),
				time.Duration(int64(s.Mean())))
		}
	}
	if b.Len() == 0 {
		return "no observability data recorded yet\n"
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
