package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestSampleNextRate: head sampling keeps exactly 1 in N, n==1 keeps
// every op, and SetSampleN's sentinel values (0 = default, negative =
// disabled) behave as documented.
func TestSampleNextRate(t *testing.T) {
	o := New()
	o.SetSampleN(8)
	kept := 0
	for i := 0; i < 80; i++ {
		if o.SampleNext() {
			kept++
		}
	}
	if kept != 10 {
		t.Fatalf("1-in-8 over 80 ops kept %d, want 10", kept)
	}
	if got := o.TraceStats().Sampled; got != 10 {
		t.Fatalf("spans_sampled = %d, want 10", got)
	}

	o.SetSampleN(1)
	for i := 0; i < 5; i++ {
		if !o.SampleNext() {
			t.Fatal("SampleN(1) must keep every op")
		}
	}

	o.SetSampleN(0)
	if got := o.SampleN(); got != DefaultSampleN {
		t.Fatalf("SetSampleN(0) → rate %d, want default %d", got, DefaultSampleN)
	}

	o.SetSampleN(-1)
	if got := o.SampleN(); got != 0 {
		t.Fatalf("SetSampleN(-1) → rate %d, want 0 (disabled)", got)
	}
	for i := 0; i < 100; i++ {
		if o.SampleNext() {
			t.Fatal("disabled sampler must never sample")
		}
	}
}

// TestNilObsTraceSurface: every tracing entry point must be a no-op on a
// nil *Obs — the disabled-observability configuration calls them all.
func TestNilObsTraceSurface(t *testing.T) {
	var o *Obs
	o.SetSampleN(4)
	if o.SampleN() != 0 || o.SampleNext() {
		t.Fatal("nil Obs must report sampling disabled")
	}
	o.BeginSpan(1)
	o.RecordSpanEvent(nil, Event{Span: 1})
	o.FinalizeSpan(1)
	o.SpanDone(1, true, "create", "/p", time.Second, true, true)
	if got := o.RecentSpans(0); got != nil {
		t.Fatalf("nil Obs RecentSpans = %v, want nil", got)
	}
	if _, ok := o.SpanTrace(1); ok {
		t.Fatal("nil Obs SpanTrace must report not found")
	}
	if ts := o.TraceStats(); ts != (TraceStats{}) {
		t.Fatalf("nil Obs TraceStats = %+v, want zero", ts)
	}
	o.SetFlightDir(t.TempDir())
	if b := o.TriggerFlight("x"); b != nil {
		t.Fatal("nil Obs TriggerFlight must return nil")
	}
	if b := o.LastFlight(); b != nil {
		t.Fatal("nil Obs LastFlight must return nil")
	}
}

// TestTwoNodeAssembly builds a sampled span whose events land in two
// different node rings (a client node and a cache-server address) out of
// wall order, finalizes it, and checks the assembled critical path:
// events reordered by wall time, segment attribution summing exactly to
// the span total, and cross-node provenance preserved.
func TestTwoNodeAssembly(t *testing.T) {
	o := New()
	client := o.Trace.Ring("node0")
	server := o.Trace.Ring("node1/pacon-test")

	const span = 7
	base := time.Now().UnixNano()
	o.BeginSpan(span)
	// Record deliberately out of order: the server events interleave
	// with the client's but arrive last (as they would over the wire).
	o.RecordSpanEvent(client, Event{Span: span, Stage: StageClientStart, Op: "create", Path: "/w/f", Wall: base})
	o.RecordSpanEvent(client, Event{Span: span, Stage: StageEnqueue, Op: "create", Path: "/w/f", Wall: base + 300})
	o.RecordSpanEvent(client, Event{Span: span, Stage: StageDequeue, Op: "create", Path: "/w/f", Wall: base + 500})
	o.RecordSpanEvent(client, Event{Span: span, Stage: StageApply, Op: "create", Path: "/w/f", Wall: base + 900})
	o.RecordSpanEvent(server, Event{Span: span, Stage: StageServerRecv, Op: "set", Wall: base + 100})
	o.RecordSpanEvent(server, Event{Span: span, Stage: StageServerDone, Op: "set", Wall: base + 200})
	o.FinalizeSpan(span)

	kept := o.RecentSpans(0)
	if len(kept) != 1 {
		t.Fatalf("kept %d spans, want 1", len(kept))
	}
	cp := kept[0]
	if cp.Span != span || cp.Kept != KeptSampled {
		t.Fatalf("kept span=%d kept=%q, want %d/%q", cp.Span, cp.Kept, span, KeptSampled)
	}
	if cp.Op != "create" || cp.Path != "/w/f" {
		t.Fatalf("span op/path = %q %q, want create /w/f", cp.Op, cp.Path)
	}
	if len(cp.Events) != 6 {
		t.Fatalf("assembled %d events, want 6", len(cp.Events))
	}
	for i := 1; i < len(cp.Events); i++ {
		if cp.Events[i].Wall < cp.Events[i-1].Wall {
			t.Fatalf("events not wall-ordered at %d: %d after %d",
				i, cp.Events[i].Wall, cp.Events[i-1].Wall)
		}
	}
	nodes := map[string]bool{}
	for _, ev := range cp.Events {
		nodes[ev.Node] = true
	}
	if !nodes["node0"] || !nodes["node1/pacon-test"] {
		t.Fatalf("cross-node provenance lost: %v", nodes)
	}
	if cp.Total != 900*time.Nanosecond {
		t.Fatalf("span total = %v, want 900ns", cp.Total)
	}
	var sum time.Duration
	for _, s := range cp.Segments {
		sum += s.D
	}
	if sum != cp.Total {
		t.Fatalf("segments sum %v != total %v", sum, cp.Total)
	}
	// The server events must have been charged to cache_rpc (the ring's
	// node is a cache-service address).
	found := false
	for _, s := range cp.Segments {
		if s.Name == SegCacheRPC && s.D > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no cache_rpc attribution in %+v", cp.Segments)
	}

	// SpanTrace must find the same finished span by ID.
	got, ok := o.SpanTrace(span)
	if !ok || got.Span != span || len(got.Events) != 6 {
		t.Fatalf("SpanTrace(%d) = %+v ok=%v", span, got, ok)
	}
	// Finalizing attributed the segments as critpath_* histograms.
	if q := o.HistQuantiles(); q["critpath_"+SegCacheRPC].Count == 0 {
		t.Fatal("critpath_cache_rpc histogram not recorded")
	}
}

// TestTailKeepAnomalies: unsampled spans are kept at their terminal when
// failed, parked, or slow — and not otherwise.
func TestTailKeepAnomalies(t *testing.T) {
	o := New()
	o.SetSlowThreshold(time.Millisecond)

	o.SpanDone(1, false, "create", "/a", time.Microsecond, false, false) // healthy: dropped
	o.SpanDone(2, false, "create", "/b", time.Microsecond, true, false)  // failed
	o.SpanDone(3, false, "mkdir", "/c", time.Microsecond, false, true)   // parked
	o.SpanDone(4, false, "rm", "/d", 2*time.Millisecond, false, false)   // slow

	kept := o.RecentSpans(0)
	if len(kept) != 3 {
		t.Fatalf("tail-kept %d spans, want 3: %+v", len(kept), kept)
	}
	// Newest first.
	if kept[0].Span != 4 || kept[1].Span != 3 || kept[2].Span != 2 {
		t.Fatalf("kept order = %d,%d,%d, want 4,3,2", kept[0].Span, kept[1].Span, kept[2].Span)
	}
	for _, cp := range kept {
		if cp.Kept != KeptTail {
			t.Fatalf("span %d kept=%q, want %q", cp.Span, cp.Kept, KeptTail)
		}
	}
	if got := o.TraceStats().TailKept; got != 3 {
		t.Fatalf("spans_tail_kept = %d, want 3", got)
	}
}

// TestFlightRecorder: a trigger produces parseable JSON carrying the
// rings' events and kept spans, writes the file when a directory is
// configured, counts in TraceStats, and rate-limits repeat triggers.
func TestFlightRecorder(t *testing.T) {
	o := New()
	dir := t.TempDir()
	o.SetFlightDir(dir)

	ring := o.Trace.Ring("node0")
	o.BeginSpan(9)
	o.RecordSpanEvent(ring, Event{Span: 9, Stage: StageEnqueue, Op: "create", Path: "/w/x", Wall: 100})
	o.RecordSpanEvent(ring, Event{Span: 9, Stage: StageApply, Op: "create", Path: "/w/x", Wall: 400})
	o.FinalizeSpan(9)

	b := o.TriggerFlight("unit test!")
	if b == nil {
		t.Fatal("first trigger returned nil")
	}
	var dump FlightDump
	if err := json.Unmarshal(b, &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if dump.Reason != "unit test!" {
		t.Fatalf("dump reason = %q", dump.Reason)
	}
	if len(dump.RecentSpans) != 1 || dump.RecentSpans[0].Span != 9 {
		t.Fatalf("dump recent spans = %+v, want span 9", dump.RecentSpans)
	}
	if len(dump.Events) != 2 {
		t.Fatalf("dump carries %d ring events, want 2", len(dump.Events))
	}
	if string(o.LastFlight()) != string(b) {
		t.Fatal("LastFlight differs from trigger return")
	}

	// File written with the sanitized reason.
	matches, _ := filepath.Glob(filepath.Join(dir, "pacon-flight-*.json"))
	if len(matches) != 1 {
		t.Fatalf("flight dir holds %v, want one dump", matches)
	}
	if base := filepath.Base(matches[0]); !strings.Contains(base, "unit_test_") {
		t.Fatalf("dump file name %q not sanitized as expected", base)
	}
	onDisk, err := os.ReadFile(matches[0])
	if err != nil || string(onDisk) != string(b) {
		t.Fatalf("on-disk dump mismatch (err=%v)", err)
	}

	// Rate limit: an immediate second trigger is suppressed.
	if b2 := o.TriggerFlight("again"); b2 != nil {
		t.Fatal("second trigger within the interval must be suppressed")
	}
	if got := o.TraceStats().FlightDumps; got != 1 {
		t.Fatalf("flight_dumps = %d, want 1", got)
	}
}

// TestUnsampledHooksZeroAlloc pins the disabled/unsampled tracing hot
// path at zero allocations: the head-sampling decision, the ring-only
// stage record, and the healthy-op terminal must all stay free, or the
// tracer would tax every op to pay for the 1-in-N it assembles.
func TestUnsampledHooksZeroAlloc(t *testing.T) {
	o := New()
	o.SetSampleN(1 << 30) // head sampling on, but never hits during the run
	ring := o.Trace.Ring("node0")
	ev := Event{Span: 5, Stage: StageEnqueue, Op: "create", Path: "/w/x", Wall: 1}

	if n := testing.AllocsPerRun(1000, func() { o.SampleNext() }); n != 0 {
		t.Fatalf("SampleNext allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { ring.Record(ev) }); n != 0 {
		t.Fatalf("Ring.Record allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		o.SpanDone(5, false, "create", "/w/x", time.Microsecond, false, false)
	}); n != 0 {
		t.Fatalf("unsampled SpanDone allocates %v/op, want 0", n)
	}

	// Hotspot recording on resident keys reuses sketch entries, so the
	// steady-state Record (and the Obs=nil no-op) must also be free.
	hot := o.HotNode("node0")
	hot.Record("/w/x") // make the key (and its ancestors) resident
	if n := testing.AllocsPerRun(1000, func() { hot.Record("/w/x") }); n != 0 {
		t.Fatalf("resident NodeHot.Record allocates %v/op, want 0", n)
	}
	var nilHot *NodeHot
	if n := testing.AllocsPerRun(1000, func() { nilHot.Record("/w/x") }); n != 0 {
		t.Fatalf("nil NodeHot.Record allocates %v/op, want 0", n)
	}
}
