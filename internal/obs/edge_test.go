package obs

import (
	"strings"
	"testing"
)

// TestRingWraparoundDefaultSize drives a default-sized ring (4096) past
// capacity and checks the overwrite semantics: exactly the last 4096
// events stay resident, returned oldest-first in record order.
func TestRingWraparoundDefaultSize(t *testing.T) {
	var tr Tracer // zero ringSize selects defaultRingSize
	r := tr.Ring("node0")

	const total = 5000
	for i := 0; i < total; i++ {
		r.Record(Event{Span: uint64(i + 1), Wall: int64(i)})
	}

	evs := r.Events()
	if len(evs) != defaultRingSize {
		t.Fatalf("resident events = %d, want %d", len(evs), defaultRingSize)
	}
	// 5000 records into a 4096 ring: spans 1..904 were overwritten, so
	// the oldest resident event is span 905 and the newest span 5000.
	if got := evs[0].Span; got != total-defaultRingSize+1 {
		t.Fatalf("oldest resident span = %d, want %d", got, total-defaultRingSize+1)
	}
	if got := evs[len(evs)-1].Span; got != total {
		t.Fatalf("newest resident span = %d, want %d", got, total)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Span != evs[i-1].Span+1 {
			t.Fatalf("resident events out of order at %d: %d after %d",
				i, evs[i].Span, evs[i-1].Span)
		}
	}

	// A second full lap must still hold exactly one ring's worth.
	for i := 0; i < defaultRingSize; i++ {
		r.Record(Event{Span: uint64(total + i + 1)})
	}
	evs = r.Events()
	if len(evs) != defaultRingSize || evs[0].Span != total+1 {
		t.Fatalf("after second lap: len=%d oldest=%d, want %d/%d",
			len(evs), evs[0].Span, defaultRingSize, total+1)
	}
}

// TestQuantileEmpty: an empty snapshot digests to zero everywhere, for
// every quantile including the clamped extremes.
func TestQuantileEmpty(t *testing.T) {
	var s HistSnapshot
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := s.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	if d := s.Quantiles(); d.Count != 0 || d.P50 != 0 || d.P95 != 0 || d.P99 != 0 {
		t.Fatalf("empty digest not zero: %+v", d)
	}
	if m := s.Mean(); m != 0 {
		t.Fatalf("empty Mean = %v, want 0", m)
	}
}

// TestQuantileSingleBucket: when every sample lands in one log2 bucket,
// every quantile must report that bucket's exclusive upper bound — the
// digest cannot invent spread that was never recorded.
func TestQuantileSingleBucket(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 1000; i++ {
		h.RecordN(100) // bucket 7: [64, 128)
	}
	s := h.Snapshot()
	want := BucketBound(bucketOf(100))
	if want != 128 {
		t.Fatalf("bucket bound for 100 = %d, want 128", want)
	}
	for _, q := range []float64{0.001, 0.5, 0.95, 0.99, 1} {
		if got := s.Quantile(q); got != want {
			t.Fatalf("single-bucket Quantile(%v) = %d, want %d", q, got, want)
		}
	}
	d := s.Quantiles()
	if d.Count != 1000 || d.P50 != want || d.P95 != want || d.P99 != want {
		t.Fatalf("single-bucket digest %+v, want all bounds %d", d, want)
	}

	// Non-positive samples collapse into bucket 0, bounded at 1.
	h2 := NewHistogram()
	h2.RecordN(0)
	h2.RecordN(-5)
	if got := h2.Snapshot().Quantile(0.99); got != 1 {
		t.Fatalf("non-positive Quantile(0.99) = %d, want 1", got)
	}
}

// TestWritePromGolden pins the full exposition byte-for-byte: one
// registered counter plus the self-maintained RPC-error/trace/hotspot
// counters, one gauge plus the hotspot self-gauges and the skew gauges
// the region/dfs layers register (stub readers here), samples in
// commit_lag, recorded hotspot paths, and the six other pre-created
// pipeline histograms rendering at zero count. Any change to ordering,
// naming, bucket math, or second formatting shows up here.
func TestWritePromGolden(t *testing.T) {
	o := New()
	o.RegisterCounter("ops_committed", func() int64 { return 42 })
	o.RegisterGauge("queue_depth", func() int64 { return 7 })
	o.Hist(HistCommitLag).RecordN(100)
	o.Hist(HistCommitLag).RecordN(100)
	o.Hist(HistCommitLag).RecordN(1_000_000)
	// Hotspot telemetry: two paths on one node drive the self-gauges —
	// 2 paths tracked, 3 subtrees (/w, /w/a, /w/b), top share 2/3.
	h := o.HotNode("node0")
	h.Record("/w/a/x")
	h.Record("/w/a/x")
	h.Record("/w/b/y")
	// The cache-ring and shard-pool skew gauges are registered by the
	// core region and dfs cluster respectively; stub readers pin their
	// names and placement in the exposition.
	o.RegisterGauge("hot_cache_load_maxmean_permille", func() int64 { return 1250 })
	o.RegisterGauge("hot_cache_load_cv_permille", func() int64 { return 250 })
	o.RegisterGauge("hot_shard_ops_maxmean_permille", func() int64 { return 2000 })
	o.RegisterGauge("hot_shard_ops_cv_permille", func() int64 { return 800 })
	o.RegisterGauge("hot_shard_queue_wait_maxmean_permille", func() int64 { return 1500 })
	o.RegisterGauge("hot_shard_queue_wait_cv_permille", func() int64 { return 400 })

	const golden = `# TYPE pacon_cache_rpc_errors_total counter
pacon_cache_rpc_errors_total 0
# TYPE pacon_dfs_rpc_errors_total counter
pacon_dfs_rpc_errors_total 0
# TYPE pacon_flight_dumps_total counter
pacon_flight_dumps_total 0
# TYPE pacon_hot_sketch_evictions_total counter
pacon_hot_sketch_evictions_total 0
# TYPE pacon_ops_committed_total counter
pacon_ops_committed_total 42
# TYPE pacon_spans_sampled_total counter
pacon_spans_sampled_total 0
# TYPE pacon_spans_tail_kept_total counter
pacon_spans_tail_kept_total 0
# TYPE pacon_hot_cache_load_cv_permille gauge
pacon_hot_cache_load_cv_permille 250
# TYPE pacon_hot_cache_load_maxmean_permille gauge
pacon_hot_cache_load_maxmean_permille 1250
# TYPE pacon_hot_node_ops_cv_permille gauge
pacon_hot_node_ops_cv_permille 0
# TYPE pacon_hot_node_ops_maxmean_permille gauge
pacon_hot_node_ops_maxmean_permille 1000
# TYPE pacon_hot_paths_tracked gauge
pacon_hot_paths_tracked 2
# TYPE pacon_hot_shard_ops_cv_permille gauge
pacon_hot_shard_ops_cv_permille 800
# TYPE pacon_hot_shard_ops_maxmean_permille gauge
pacon_hot_shard_ops_maxmean_permille 2000
# TYPE pacon_hot_shard_queue_wait_cv_permille gauge
pacon_hot_shard_queue_wait_cv_permille 400
# TYPE pacon_hot_shard_queue_wait_maxmean_permille gauge
pacon_hot_shard_queue_wait_maxmean_permille 1500
# TYPE pacon_hot_subtrees_tracked gauge
pacon_hot_subtrees_tracked 3
# TYPE pacon_hot_top_path_share_permille gauge
pacon_hot_top_path_share_permille 667
# TYPE pacon_queue_depth gauge
pacon_queue_depth 7
# TYPE pacon_barrier_wait_seconds histogram
pacon_barrier_wait_seconds_bucket{le="0.000000001"} 0
pacon_barrier_wait_seconds_bucket{le="+Inf"} 0
pacon_barrier_wait_seconds_sum 0
pacon_barrier_wait_seconds_count 0
# TYPE pacon_cache_rpc_seconds histogram
pacon_cache_rpc_seconds_bucket{le="0.000000001"} 0
pacon_cache_rpc_seconds_bucket{le="+Inf"} 0
pacon_cache_rpc_seconds_sum 0
pacon_cache_rpc_seconds_count 0
# TYPE pacon_client_op_seconds histogram
pacon_client_op_seconds_bucket{le="0.000000001"} 0
pacon_client_op_seconds_bucket{le="+Inf"} 0
pacon_client_op_seconds_sum 0
pacon_client_op_seconds_count 0
# TYPE pacon_commit_lag_seconds histogram
pacon_commit_lag_seconds_bucket{le="0.000000001"} 0
pacon_commit_lag_seconds_bucket{le="0.000000002"} 0
pacon_commit_lag_seconds_bucket{le="0.000000004"} 0
pacon_commit_lag_seconds_bucket{le="0.000000008"} 0
pacon_commit_lag_seconds_bucket{le="0.000000016"} 0
pacon_commit_lag_seconds_bucket{le="0.000000032"} 0
pacon_commit_lag_seconds_bucket{le="0.000000064"} 0
pacon_commit_lag_seconds_bucket{le="0.000000128"} 2
pacon_commit_lag_seconds_bucket{le="0.000000256"} 2
pacon_commit_lag_seconds_bucket{le="0.000000512"} 2
pacon_commit_lag_seconds_bucket{le="0.000001024"} 2
pacon_commit_lag_seconds_bucket{le="0.000002048"} 2
pacon_commit_lag_seconds_bucket{le="0.000004096"} 2
pacon_commit_lag_seconds_bucket{le="0.000008192"} 2
pacon_commit_lag_seconds_bucket{le="0.000016384"} 2
pacon_commit_lag_seconds_bucket{le="0.000032768"} 2
pacon_commit_lag_seconds_bucket{le="0.000065536"} 2
pacon_commit_lag_seconds_bucket{le="0.000131072"} 2
pacon_commit_lag_seconds_bucket{le="0.000262144"} 2
pacon_commit_lag_seconds_bucket{le="0.000524288"} 2
pacon_commit_lag_seconds_bucket{le="0.001048576"} 3
pacon_commit_lag_seconds_bucket{le="+Inf"} 3
pacon_commit_lag_seconds_sum 0.0010002
pacon_commit_lag_seconds_count 3
# TYPE pacon_dfs_rpc_seconds histogram
pacon_dfs_rpc_seconds_bucket{le="0.000000001"} 0
pacon_dfs_rpc_seconds_bucket{le="+Inf"} 0
pacon_dfs_rpc_seconds_sum 0
pacon_dfs_rpc_seconds_count 0
# TYPE pacon_queue_wait_seconds histogram
pacon_queue_wait_seconds_bucket{le="0.000000001"} 0
pacon_queue_wait_seconds_bucket{le="+Inf"} 0
pacon_queue_wait_seconds_sum 0
pacon_queue_wait_seconds_count 0
# TYPE pacon_readdir_entries_seconds histogram
pacon_readdir_entries_seconds_bucket{le="0.000000001"} 0
pacon_readdir_entries_seconds_bucket{le="+Inf"} 0
pacon_readdir_entries_seconds_sum 0
pacon_readdir_entries_seconds_count 0
`

	var sb strings.Builder
	o.WriteProm(&sb)
	if got := sb.String(); got != golden {
		t.Fatalf("exposition drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}

// TestSummaryConcurrentWithRegistration: Summary (and the exposition)
// must tolerate readers racing with RegisterCounter/RegisterGauge/Hist —
// the registry copies reader maps under its lock before invoking them.
func TestSummaryConcurrentWithRegistration(t *testing.T) {
	o := New()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			o.RegisterCounter("spin_counter", func() int64 { return 1 })
			o.RegisterGauge("spin_gauge", func() int64 { return 2 })
			o.Hist("spin_hist").RecordN(int64(i + 1))
		}
	}()
	for i := 0; i < 200; i++ {
		_ = o.Summary()
		var sb strings.Builder
		o.WriteProm(&sb)
	}
	<-done
	if !strings.Contains(o.Summary(), "spin_counter") {
		t.Fatal("summary missing registered counter after race")
	}
}
