package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Critical-path attribution: a sampled span's cross-node events, sorted
// into one wall-clock timeline, with every inter-event gap charged to a
// named segment chosen by the stage the gap *arrives at*. Because every
// gap is charged to exactly one segment, the segment durations sum to
// the span's first-to-last total by construction.

// Critical-path segment names. These also name the critpath_<segment>
// histograms FinalizeSpan records.
const (
	// SegClientSync is client-synchronous work: op entry up to the
	// enqueue (permission checks, local cache bookkeeping).
	SegClientSync = "client_sync"
	// SegCacheRPC / SegDFSRPC is time crossing the wire to (and inside)
	// a metadata-cache server or the DFS, attributed from the
	// server-side recv/done events the trace context produces.
	SegCacheRPC = "cache_rpc"
	SegDFSRPC   = "dfs_rpc"
	// SegQueueWait is commit-queue residency (enqueue → dequeue).
	SegQueueWait = "queue_wait"
	// SegCoalesce is merge work at dequeue time.
	SegCoalesce = "coalesce"
	// SegBarrierWait is a synchronous op's barrier wait.
	SegBarrierWait = "barrier_wait"
	// SegDFSApply is commit-side work finishing the durable apply
	// (after any attributed DFS server time).
	SegDFSApply = "dfs_apply"
	// SegRetryPark is the failure-path detour: park, unpark, retry.
	SegRetryPark = "retry_park"
	// SegDrop is the walk to a terminal drop or discard.
	SegDrop = "drop"
)

// Kept-span provenance.
const (
	KeptSampled = "sampled" // head-sampled, fully assembled
	KeptTail    = "tail"    // kept at terminal: slow, failed, or parked
)

// Segment is one attributed slice of a span's wall time.
type Segment struct {
	Name string        `json:"name"`
	D    time.Duration `json:"ns"`
}

// CritPath is one kept span: its ordered cross-node timeline and the
// per-segment attribution of its total wall time.
type CritPath struct {
	Span    uint64        `json:"span"`
	Op      string        `json:"op,omitempty"`
	Path    string        `json:"path,omitempty"`
	Total   time.Duration `json:"total_ns"`
	Outcome Stage         `json:"outcome"`
	Kept    string        `json:"kept,omitempty"`
	// Segments sum to Total (sampled spans only; tail-kept compact
	// records carry just the header fields).
	Segments []Segment `json:"segments,omitempty"`
	Events   []Event   `json:"events,omitempty"`
}

// segmentFor charges the gap ending at ev.
func segmentFor(ev Event) string {
	switch ev.Stage {
	case StageClientStart, StageEnqueue:
		return SegClientSync
	case StageDequeue:
		return SegQueueWait
	case StageCoalesce:
		return SegCoalesce
	case StageBarrier:
		return SegBarrierWait
	case StageApply:
		return SegDFSApply
	case StagePark, StageUnpark, StageRetry:
		return SegRetryPark
	case StageDrop, StageDiscard:
		return SegDrop
	case StageServerRecv, StageServerDone:
		// Server events carry the service address as their node;
		// metadata-cache servers register under "<node>/pacon-<region>".
		if strings.Contains(ev.Node, "/pacon-") {
			return SegCacheRPC
		}
		return SegDFSRPC
	default:
		return SegClientSync
	}
}

// AnalyzeSpan stitches one span's events (any order, any mix of nodes)
// into a wall-ordered timeline and attributes the wall time between
// consecutive events to named segments.
func AnalyzeSpan(evs []Event) CritPath {
	if len(evs) == 0 {
		return CritPath{}
	}
	ordered := append([]Event(nil), evs...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Wall != ordered[j].Wall {
			return ordered[i].Wall < ordered[j].Wall
		}
		return ordered[i].Stage < ordered[j].Stage
	})
	cp := CritPath{
		Span:    ordered[0].Span,
		Total:   time.Duration(ordered[len(ordered)-1].Wall - ordered[0].Wall),
		Outcome: ordered[len(ordered)-1].Stage,
		Events:  ordered,
	}
	// Name the span after its client-side origin, not a server method.
	for _, ev := range ordered {
		if ev.Stage == StageClientStart || ev.Stage == StageEnqueue {
			cp.Op, cp.Path = ev.Op, ev.Path
			break
		}
	}
	if cp.Op == "" {
		cp.Op, cp.Path = ordered[0].Op, ordered[0].Path
	}
	idx := make(map[string]int, 8)
	for i := 1; i < len(ordered); i++ {
		name := segmentFor(ordered[i])
		d := time.Duration(ordered[i].Wall - ordered[i-1].Wall)
		j, ok := idx[name]
		if !ok {
			idx[name] = len(cp.Segments)
			cp.Segments = append(cp.Segments, Segment{Name: name, D: d})
			continue
		}
		cp.Segments[j].D += d
	}
	return cp
}

// String renders one kept span for the shell / debug endpoint.
func (c CritPath) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "span=%d %s %s total=%v kept=%s outcome=%s",
		c.Span, c.Op, c.Path, c.Total, c.Kept, c.Outcome)
	if len(c.Segments) > 0 {
		b.WriteString("\n  segments:")
		for _, s := range c.Segments {
			fmt.Fprintf(&b, " %s=%v", s.Name, s.D)
		}
	}
	for _, ev := range c.Events {
		fmt.Fprintf(&b, "\n  +%-12v %-8s node=%s %s %s",
			time.Duration(ev.Wall-c.Events[0].Wall), ev.Stage, ev.Node, ev.Op, ev.Path)
		if ev.Note != "" {
			b.WriteString(" (" + ev.Note + ")")
		}
	}
	return b.String()
}
