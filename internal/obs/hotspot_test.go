package obs

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestSpaceSavingExactBelowCapacity: under capacity the sketch is an
// exact counter with zero error bounds and deterministic Top order
// (count desc, path asc on ties).
func TestSpaceSavingExactBelowCapacity(t *testing.T) {
	s := NewSpaceSaving(8)
	s.Inc("/a", 3)
	s.Inc("/b", 1)
	s.Inc("/c", 3)
	s.Inc("/b", 1)
	top := s.Top(0)
	want := []HotKey{
		{Path: "/a", Count: 3, Share: 3.0 / 8},
		{Path: "/c", Count: 3, Share: 3.0 / 8},
		{Path: "/b", Count: 2, Share: 2.0 / 8},
	}
	if len(top) != len(want) {
		t.Fatalf("got %d entries, want %d", len(top), len(want))
	}
	for i, hk := range top {
		if hk != want[i] {
			t.Fatalf("top[%d] = %+v, want %+v", i, hk, want[i])
		}
	}
	if s.Total() != 8 || s.Evictions() != 0 {
		t.Fatalf("total=%d evictions=%d, want 8/0", s.Total(), s.Evictions())
	}
}

// TestSpaceSavingEvictionUnderChurn: a heavy hitter must stay resident
// while a stream of unique keys churns a full sketch, the resident set
// stays bounded, and evicted-slot inheritance keeps counts as upper
// bounds (count - ErrBound ≤ true ≤ count).
func TestSpaceSavingEvictionUnderChurn(t *testing.T) {
	const cap = 16
	s := NewSpaceSaving(cap)
	for i := 0; i < 100; i++ {
		s.Inc("/hot", 1)
		s.Inc(fmt.Sprintf("/churn/%d", i), 1)
	}
	if got := s.Len(); got > cap {
		t.Fatalf("sketch grew past capacity: %d > %d", got, cap)
	}
	if s.Evictions() == 0 {
		t.Fatal("expected evictions under churn")
	}
	top := s.Top(1)
	if len(top) == 0 || top[0].Path != "/hot" {
		t.Fatalf("heavy hitter evicted: top = %+v", top)
	}
	if top[0].Count < 100 {
		t.Fatalf("count %d is not an upper bound of true 100", top[0].Count)
	}
	if low := top[0].Count - top[0].ErrBound; low > 100 {
		t.Fatalf("guaranteed lower bound %d exceeds true count 100", low)
	}
	// Space-saving guarantee: any key with true count ≥ total/cap is
	// resident; /hot has 100 of 200 total, far above 200/16.
	if s.Total() != 200 {
		t.Fatalf("total = %d, want 200", s.Total())
	}
}

// TestMergeSketches: counts and totals sum across per-node sketches,
// disjoint and overlapping keys both merge, and the merged view keeps
// only the top-capacity keys.
func TestMergeSketches(t *testing.T) {
	a := NewSpaceSaving(8)
	b := NewSpaceSaving(8)
	a.Inc("/x", 5)
	a.Inc("/y", 2)
	b.Inc("/x", 4)
	b.Inc("/z", 3)
	m := MergeSketches(8, a, b, nil)
	if m.Total() != 14 {
		t.Fatalf("merged total = %d, want 14", m.Total())
	}
	top := m.Top(0)
	want := map[string]int64{"/x": 9, "/z": 3, "/y": 2}
	if len(top) != 3 {
		t.Fatalf("merged entries = %d, want 3", len(top))
	}
	for _, hk := range top {
		if want[hk.Path] != hk.Count {
			t.Fatalf("merged %s = %d, want %d", hk.Path, hk.Count, want[hk.Path])
		}
	}
	if top[0].Path != "/x" {
		t.Fatalf("merged top = %s, want /x", top[0].Path)
	}

	// Capacity bound: merging wide sketches keeps only the heaviest.
	wide1, wide2 := NewSpaceSaving(64), NewSpaceSaving(64)
	for i := 0; i < 40; i++ {
		wide1.Inc(fmt.Sprintf("/w1/%d", i), int64(i+1))
		wide2.Inc(fmt.Sprintf("/w2/%d", i), int64(i+1))
	}
	bounded := MergeSketches(10, wide1, wide2)
	if got := bounded.Len(); got != 10 {
		t.Fatalf("bounded merge kept %d keys, want 10", got)
	}
	if top := bounded.Top(1); top[0].Count != 40 {
		t.Fatalf("bounded merge top count = %d, want 40", top[0].Count)
	}
}

// TestSketchZipfRecall: on a synthetic zipf stream (s=1.2, 1024-key
// space, 200k draws) a 256-slot sketch must recall at least 90% of the
// true top-16 — the same bar the bench acceptance applies end to end.
func TestSketchZipfRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	z := rand.NewZipf(rng, 1.2, 1, 1023)
	s := NewSpaceSaving(DefaultHotPathCap)
	for i := 0; i < 200_000; i++ {
		s.Inc(fmt.Sprintf("/k/%d", z.Uint64()), 1)
	}
	top := s.Top(16)
	hit := 0
	for _, hk := range top {
		var rank int
		if _, err := fmt.Sscanf(hk.Path, "/k/%d", &rank); err == nil && rank < 16 {
			hit++
		}
	}
	if recall := float64(hit) / 16; recall < 0.9 {
		t.Fatalf("zipf recall = %.2f, want ≥ 0.9 (top: %+v)", recall, top)
	}
}

// TestSketchConcurrent exercises record/read/merge races; run with
// -race this is the concurrency-safety test the satellite asks for.
func TestSketchConcurrent(t *testing.T) {
	o := New()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := o.HotNode(fmt.Sprintf("node%d", g))
			for i := 0; i < 2000; i++ {
				h.Record(fmt.Sprintf("/w/d%d/f%d", g, i%37))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = o.TopPaths(8)
			_ = o.HotSubtrees(4, 0.01)
			_ = o.HotNodeLoads()
			_ = o.HotReport(8, 0.01)
		}
	}()
	wg.Wait()
	loads := o.HotNodeLoads()
	if len(loads) != 4 {
		t.Fatalf("nodes recorded = %d, want 4", len(loads))
	}
	var total int64
	for _, l := range loads {
		total += l.Ops
	}
	if total != 4*2000 {
		t.Fatalf("recorded ops = %d, want %d", total, 4*2000)
	}
}

// TestHotSubtreesAttribution: ancestors roll up per op (root excluded),
// shares are against the op total, the minShare filter prunes, and
// results are deterministically ordered.
func TestHotSubtreesAttribution(t *testing.T) {
	o := New()
	h := o.HotNode("node0")
	for i := 0; i < 90; i++ {
		h.Record(fmt.Sprintf("/w/hot/f%d", i%3))
	}
	for i := 0; i < 10; i++ {
		h.Record(fmt.Sprintf("/w/cold/f%d", i))
	}
	subs := o.HotSubtrees(0, 0.5)
	// /w carries 100% of 100 ops, /w/hot 90%; /w/cold (10%) is filtered.
	if len(subs) != 2 {
		t.Fatalf("subtrees = %+v, want [/w /w/hot]", subs)
	}
	if subs[0].Path != "/w" || subs[0].Share != 1.0 {
		t.Fatalf("subs[0] = %+v, want /w at share 1.0", subs[0])
	}
	if subs[1].Path != "/w/hot" || subs[1].Share != 0.9 {
		t.Fatalf("subs[1] = %+v, want /w/hot at share 0.9", subs[1])
	}
	// The report folds the same tables together.
	rep := o.HotReport(4, 0.5)
	if rep == nil || rep.TotalOps != 100 || len(rep.NodeOps) != 1 || rep.NodeOps[0].Node != "node0" {
		t.Fatalf("report = %+v", rep)
	}
	if rep.NodeSkew.MaxMeanPermille != 1000 || rep.NodeSkew.CVPermille != 0 {
		t.Fatalf("single-node skew = %+v, want flat 1000/0", rep.NodeSkew)
	}
}

// TestSkew pins the imbalance math: permille encodings of max/mean and
// the coefficient of variation, and the degenerate cases.
func TestSkew(t *testing.T) {
	cases := []struct {
		name  string
		loads []int64
		want  SkewStats
	}{
		{"empty", nil, SkewStats{}},
		{"zeros", []int64{0, 0}, SkewStats{N: 2}},
		{"single", []int64{7}, SkewStats{N: 1, Total: 7, MaxMeanPermille: 1000, CVPermille: 0}},
		{"balanced", []int64{10, 10, 10, 10}, SkewStats{N: 4, Total: 40, MaxMeanPermille: 1000, CVPermille: 0}},
		// mean 100; max 250 → 2500; stddev = sqrt((150²+50²+50²+50²)/4) ≈ 86.6 → 866.
		{"skewed", []int64{250, 50, 50, 50}, SkewStats{N: 4, Total: 400, MaxMeanPermille: 2500, CVPermille: 866}},
	}
	for _, tc := range cases {
		if got := Skew(tc.loads); got != tc.want {
			t.Errorf("%s: Skew(%v) = %+v, want %+v", tc.name, tc.loads, got, tc.want)
		}
	}
}

// TestHotspotNilSafety: every hotspot entry point tolerates nil
// receivers — the disabled-observability configuration.
func TestHotspotNilSafety(t *testing.T) {
	var o *Obs
	if h := o.HotNode("n"); h != nil {
		t.Fatal("nil obs must hand out a nil recorder")
	}
	var h *NodeHot
	h.Record("/w/x") // must not panic
	if h.Ops() != 0 {
		t.Fatal("nil recorder ops != 0")
	}
	if o.TopPaths(4) != nil || o.HotSubtrees(4, 0) != nil || o.HotNodeLoads() != nil || o.HotReport(4, 0) != nil {
		t.Fatal("nil obs hotspot queries must return nil")
	}
	var s *SpaceSaving
	s.Inc("/x", 1)
	if s.Len() != 0 || s.Total() != 0 || s.Evictions() != 0 || s.Top(1) != nil {
		t.Fatal("nil sketch must read as empty")
	}
	// An enabled registry with no recorded ops reports no hotspots.
	if rep := New().HotReport(4, 0); rep != nil {
		t.Fatalf("empty registry report = %+v, want nil", rep)
	}
}

// TestFlightDumpCarriesHotspots: a triggered dump embeds the hotspot
// tables alongside the spans.
func TestFlightDumpCarriesHotspots(t *testing.T) {
	o := New()
	h := o.HotNode("node0")
	for i := 0; i < 20; i++ {
		h.Record("/w/hot/f")
	}
	b := o.TriggerFlight("test_hotspot")
	if b == nil {
		t.Fatal("trigger returned no dump")
	}
	var dump FlightDump
	if err := json.Unmarshal(b, &dump); err != nil {
		t.Fatalf("dump does not parse: %v", err)
	}
	if dump.Hotspots == nil || dump.Hotspots.TotalOps != 20 {
		t.Fatalf("dump.Hotspots = %+v, want 20 ops", dump.Hotspots)
	}
	if len(dump.Hotspots.TopPaths) == 0 || dump.Hotspots.TopPaths[0].Path != "/w/hot/f" {
		t.Fatalf("dump top paths = %+v", dump.Hotspots.TopPaths)
	}
}
