package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Flight recorder: an anomaly-triggered black-box snapshot. When Health
// worsens to degraded/stalled, an audit reports divergence, or a chaos
// seed fails, TriggerFlight captures — in one pass — every resident
// ring event, the counter/gauge registry, per-stage latency quantiles,
// and the recent kept + slow spans, as a JSON dump for post-mortem. The
// point is timing: by the time a human looks, the 4096-event rings have
// rotated; the dump is cut at the moment the anomaly was detected.

// flightMinInterval rate-limits dumps: an anomaly that keeps firing
// (e.g. a health probe polling a stalled region) produces one snapshot
// per interval, not one per probe.
const flightMinInterval = time.Second

// FlightDump is the serialized snapshot.
type FlightDump struct {
	Reason      string               `json:"reason"`
	WallNS      int64                `json:"wall_ns"`
	Counters    map[string]int64     `json:"counters,omitempty"`
	Gauges      map[string]int64     `json:"gauges,omitempty"`
	Latency     map[string]Quantiles `json:"latency_ns,omitempty"`
	RecentSpans []CritPath           `json:"recent_spans,omitempty"`
	SlowSpans   []SpanSummary        `json:"slow_spans,omitempty"`
	// Hotspots is the merged heavy-hitter snapshot (top paths, hot
	// subtrees, per-node load) at dump time, so a skew-triggered dump
	// names the paths responsible alongside the spans.
	Hotspots *HotReport `json:"hotspots,omitempty"`
	// Events is every event still resident in the node rings at dump
	// time, wall-ordered — the raw material for assembling any span
	// the kept list missed.
	Events []Event `json:"events,omitempty"`
}

// SetFlightDir makes TriggerFlight additionally write each dump to a
// file ("pacon-flight-<seq>-<reason>.json") under dir. Empty disables
// file output; the last dump stays readable via LastFlight either way.
func (o *Obs) SetFlightDir(dir string) {
	if o == nil {
		return
	}
	o.flightMu.Lock()
	o.flightDir = dir
	o.flightMu.Unlock()
}

// LastFlight returns the most recent dump's JSON (nil if none fired).
func (o *Obs) LastFlight() []byte {
	if o == nil {
		return nil
	}
	o.flightMu.Lock()
	defer o.flightMu.Unlock()
	return o.lastFlight
}

// TriggerFlight cuts a flight-recorder snapshot and returns its JSON.
// Rate-limited: triggers within flightMinInterval of the previous dump
// return nil. Nil-safe.
func (o *Obs) TriggerFlight(reason string) []byte {
	if o == nil {
		return nil
	}
	now := time.Now().UnixNano()
	last := o.flightLast.Load()
	if now-last < int64(flightMinInterval) || !o.flightLast.CompareAndSwap(last, now) {
		return nil
	}
	seq := o.flightSeq.Add(1)
	dump := FlightDump{
		Reason:      reason,
		WallNS:      now,
		Counters:    o.counterValues(),
		Gauges:      o.gaugeValues(),
		Latency:     o.HistQuantiles(),
		RecentSpans: o.RecentSpans(64),
		SlowSpans:   o.SlowSpans(32),
		Hotspots:    o.HotReport(16, 0.05),
		Events:      o.Trace.Events(),
	}
	b, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return nil
	}
	o.flightMu.Lock()
	o.lastFlight = b
	dir := o.flightDir
	o.flightMu.Unlock()
	if dir != "" {
		name := fmt.Sprintf("pacon-flight-%d-%s.json", seq, sanitizeReason(reason))
		// Best-effort: a failed write must not take down the pipeline
		// the recorder exists to explain.
		_ = os.WriteFile(filepath.Join(dir, name), b, 0o644)
	}
	return b
}

// sanitizeReason keeps dump file names portable.
func sanitizeReason(reason string) string {
	out := make([]byte, 0, len(reason))
	for i := 0; i < len(reason); i++ {
		c := reason[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "anomaly"
	}
	return string(out)
}
