package obs

import "time"

// Tail-based span sampling. Every op still gets a span ID and records
// its stage events into the per-node rings (that part was always
// zero-alloc); sampling decides which spans are additionally
// *assembled*: their events accumulate in an active-span buffer —
// including the server-side events other nodes contribute over the wire
// — and at the op's terminal the buffer is stitched into an ordered
// cross-node timeline with critical-path attribution (critpath.go).
//
// The policy is tail-based: 1 in SampleN ops is sampled up front, and
// ops that turn out anomalous — dropped, ever parked, or slower than
// the slow-span threshold — are kept at their terminal even when the
// head decision said no. The unsampled path does no locking and no
// allocation: one atomic add at op start, one compare at op end.

// DefaultSampleN is the head-sampling rate until overridden: 1 in 64
// ops is fully assembled.
const DefaultSampleN = 64

// Bounds on the assembler's memory: at most maxActiveSpans sampled
// spans in flight (excess spans degrade to ring-only tracing), at most
// maxSpanEvents buffered per span, and a maxRecentSpans overwrite ring
// of finished kept spans.
const (
	maxActiveSpans = 1024
	maxSpanEvents  = 512
	maxRecentSpans = 256
)

// SetSampleN configures head sampling: keep 1 in n ops (n == 1 keeps
// every op, n == 0 restores the default, n < 0 disables sampling).
func (o *Obs) SetSampleN(n int) {
	if o == nil {
		return
	}
	switch {
	case n == 0:
		o.sampleN.Store(DefaultSampleN)
	case n < 0:
		o.sampleN.Store(0)
	default:
		o.sampleN.Store(int64(n))
	}
}

// SampleN returns the configured rate (0 = disabled).
func (o *Obs) SampleN() int64 {
	if o == nil {
		return 0
	}
	return o.sampleN.Load()
}

// SampleNext makes the head-sampling decision for a new op. Zero-alloc;
// nil or disabled always answers false.
func (o *Obs) SampleNext() bool {
	if o == nil {
		return false
	}
	n := o.sampleN.Load()
	if n <= 0 {
		return false
	}
	if n > 1 && o.sampleSeq.Add(1)%uint64(n) != 0 {
		return false
	}
	o.spansSampled.Add(1)
	return true
}

// BeginSpan opens an active-span buffer for a sampled span. If the
// assembler is at capacity the span degrades to ring-only tracing.
func (o *Obs) BeginSpan(span uint64) {
	if o == nil || span == 0 {
		return
	}
	o.activeMu.Lock()
	if o.active == nil {
		o.active = make(map[uint64][]Event)
	}
	if len(o.active) < maxActiveSpans {
		if _, ok := o.active[span]; !ok {
			o.active[span] = []Event{}
		}
	}
	o.activeMu.Unlock()
}

// RecordSpanEvent records a sampled span's event into the node ring
// (like Ring.Record) and additionally into the span's active buffer, so
// the assembler sees it without scanning every ring at finalize time.
func (o *Obs) RecordSpanEvent(ring *Ring, ev Event) {
	if o == nil {
		return
	}
	if ring != nil {
		ev.Node = ring.node
		ring.Record(ev)
	}
	o.activeMu.Lock()
	if evs, ok := o.active[ev.Span]; ok && len(evs) < maxSpanEvents {
		o.active[ev.Span] = append(evs, ev)
	}
	o.activeMu.Unlock()
}

// FinalizeSpan closes a sampled span: its buffered events are assembled
// into an ordered cross-node timeline, wall time is attributed to named
// critical-path segments (recorded as critpath_<segment> histograms),
// and the result is kept in the recent-spans ring for `paconfs trace`,
// /debug/trace, and flight dumps.
func (o *Obs) FinalizeSpan(span uint64) {
	if o == nil || span == 0 {
		return
	}
	o.activeMu.Lock()
	evs, ok := o.active[span]
	delete(o.active, span)
	o.activeMu.Unlock()
	if !ok || len(evs) == 0 {
		return
	}
	cp := AnalyzeSpan(evs)
	cp.Kept = KeptSampled
	for _, seg := range cp.Segments {
		o.Hist("critpath_" + seg.Name).RecordN(int64(seg.D))
	}
	o.keepRecent(cp)
}

// SpanDone is the op-terminal hook: sampled spans finalize, and
// unsampled ops that turned out anomalous — failed (dropped), ever
// parked, or with commit lag at or past the slow-span threshold — are
// tail-kept as compact records (their ring events stay assemblable via
// SpanTrace until overwritten). The common case (unsampled, healthy)
// is two compares and no allocation.
func (o *Obs) SpanDone(span uint64, sampled bool, op, path string, lag time.Duration, failed, parked bool) {
	if o == nil || span == 0 {
		return
	}
	if sampled {
		o.FinalizeSpan(span)
		return
	}
	if failed || parked || (lag > 0 && int64(lag) >= o.slowNanos.Load()) {
		o.tailKeep(span, op, path, lag)
	}
}

// tailKeep records a compact entry for an anomalous unsampled span.
func (o *Obs) tailKeep(span uint64, op, path string, lag time.Duration) {
	o.tailKept.Add(1)
	o.keepRecent(CritPath{Span: span, Op: op, Path: path, Total: lag, Kept: KeptTail})
}

// keepRecent appends to the fixed-size kept-spans overwrite ring.
func (o *Obs) keepRecent(cp CritPath) {
	o.recentMu.Lock()
	if len(o.recent) < maxRecentSpans {
		o.recent = append(o.recent, cp)
	} else {
		o.recent[o.recentAt] = cp
	}
	o.recentAt++
	if o.recentAt >= maxRecentSpans {
		o.recentAt = 0
	}
	o.recentMu.Unlock()
}

// RecentSpans returns the kept spans (sampled + tail-kept), newest
// first, at most max (0 = all resident).
func (o *Obs) RecentSpans(max int) []CritPath {
	if o == nil {
		return nil
	}
	o.recentMu.Lock()
	n := len(o.recent)
	out := make([]CritPath, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the most recent write position.
		idx := (o.recentAt - 1 - i + n) % n
		out = append(out, o.recent[idx])
	}
	o.recentMu.Unlock()
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// SpanTrace assembles one span's timeline on demand: from the kept ring
// if it finished with segments attached, else from whatever events are
// still resident in the node rings (works for unsampled and mid-flight
// spans too).
func (o *Obs) SpanTrace(span uint64) (CritPath, bool) {
	if o == nil || span == 0 {
		return CritPath{}, false
	}
	o.recentMu.Lock()
	for i := range o.recent {
		if o.recent[i].Span == span && len(o.recent[i].Events) > 0 {
			cp := o.recent[i]
			o.recentMu.Unlock()
			return cp, true
		}
	}
	o.recentMu.Unlock()
	if evs := o.Trace.SpanEvents(span); len(evs) > 0 {
		return AnalyzeSpan(evs), true
	}
	return CritPath{}, false
}

// TraceStats is the sampling/flight summary block bench embeds in
// BENCH_scale.json.
type TraceStats struct {
	// SampleN is the head-sampling rate (1 in N; 0 = disabled).
	SampleN int64 `json:"sample_n"`
	// Sampled counts head-sampled spans; TailKept counts unsampled
	// spans kept at their terminal for being slow, failed, or parked.
	Sampled  int64 `json:"spans_sampled"`
	TailKept int64 `json:"spans_tail_kept"`
	// FlightDumps counts anomaly-triggered flight-recorder snapshots.
	FlightDumps int64 `json:"flight_dumps"`
}

// TraceStats reads the live sampling counters.
func (o *Obs) TraceStats() TraceStats {
	if o == nil {
		return TraceStats{}
	}
	return TraceStats{
		SampleN:     o.sampleN.Load(),
		Sampled:     o.spansSampled.Load(),
		TailKept:    o.tailKept.Load(),
		FlightDumps: o.flightSeq.Load(),
	}
}
