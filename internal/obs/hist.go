package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count of a log2 histogram: bucket 0
// holds non-positive values, bucket i (1..63) holds values whose bit
// length is i, i.e. the half-open range [2^(i-1), 2^i).
const histBuckets = 64

// Histogram is a fixed-bucket log2 latency histogram. Recording is one
// atomic add per bucket plus two for count/sum — cheap enough to sit on
// the commit path when observability is enabled, and trivially safe for
// concurrent use. The zero value is NOT usable (histograms must not be
// copied once recorded into); create them through Obs.Hist or NewHistogram.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a value to its log2 bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v)) // 1..63 for v in [1, 2^63)
}

// BucketBound returns the exclusive upper bound of bucket i: values in
// bucket i are < BucketBound(i). Bucket 0 bounds at 1 (it holds v <= 0).
func BucketBound(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1 << uint(i)
}

// RecordN records one raw sample (nanoseconds for latency series). Safe
// on a nil histogram (no-op), so disabled-observability call sites pay
// one branch.
func (h *Histogram) RecordN(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Record records a duration sample.
func (h *Histogram) Record(d time.Duration) { h.RecordN(int64(d)) }

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot copies the histogram's counters. The copy is per-bucket
// atomic, not globally atomic: under concurrent recording the totals may
// disagree with the buckets by in-flight samples, which quantile math
// tolerates (it normalizes over the bucket sum).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// HistSnapshot is an immutable histogram copy: merge/quantile math runs
// on snapshots so it never contends with recorders.
type HistSnapshot struct {
	Buckets [histBuckets]int64
	Count   int64
	Sum     int64
}

// Merge adds other's samples into s.
func (s *HistSnapshot) Merge(other HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
	s.Count += other.Count
	s.Sum += other.Sum
}

// Quantile returns an upper bound for the q-th quantile (0 < q <= 1):
// the exclusive upper bound of the bucket containing the ceil(q*n)-th
// smallest sample. An empty snapshot returns 0.
func (s HistSnapshot) Quantile(q float64) int64 {
	total := int64(0)
	for _, b := range s.Buckets {
		total += b
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(total))
	if float64(target) < q*float64(total) || target == 0 {
		target++
	}
	cum := int64(0)
	for i, b := range s.Buckets {
		cum += b
		if cum >= target {
			return BucketBound(i)
		}
	}
	return BucketBound(histBuckets - 1)
}

// Mean returns the arithmetic mean of the recorded samples (0 if empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantiles is the compact per-stage digest embedded in BENCH reports
// and rendered by `paconfs stats`: sample count plus p50/p95/p99 upper
// bounds in nanoseconds.
type Quantiles struct {
	Count int64 `json:"count"`
	P50   int64 `json:"p50_ns"`
	P95   int64 `json:"p95_ns"`
	P99   int64 `json:"p99_ns"`
}

// Quantiles digests the snapshot.
func (s HistSnapshot) Quantiles() Quantiles {
	return Quantiles{
		Count: s.Count,
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
	}
}
