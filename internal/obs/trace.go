package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stage is one point in an operation's commit-pipeline lifecycle.
type Stage uint8

// Span lifecycle stages, in the order a healthy op visits them. Park,
// unpark, retry, drop and discard are the failure-path detours; coalesce
// marks an op merged away at dequeue time (its effect rides another
// span's apply).
const (
	StageEnqueue Stage = iota
	StageDequeue
	StageCoalesce
	StagePark
	StageUnpark
	StageApply
	StageRetry
	StageDrop
	StageDiscard
	// StageClientStart marks the client entering a traced operation —
	// the first event of a sampled span, recorded into the client
	// node's ring.
	StageClientStart
	// StageBarrier marks a synchronous op returning from its barrier
	// wait (readdir/rmdir/rename).
	StageBarrier
	// StageServerRecv / StageServerDone bracket a service handling an
	// RPC that carried this span's trace context across the wire. They
	// are recorded into the *service address's* ring (e.g.
	// "node1/pacon-app1", "storage0/mds"), so a span's event list shows
	// its cross-node hops.
	StageServerRecv
	StageServerDone
)

var stageNames = [...]string{
	StageEnqueue:     "enqueue",
	StageDequeue:     "dequeue",
	StageCoalesce:    "coalesce",
	StagePark:        "park",
	StageUnpark:      "unpark",
	StageApply:       "apply",
	StageRetry:       "retry",
	StageDrop:        "drop",
	StageDiscard:     "discard",
	StageClientStart: "start",
	StageBarrier:     "barrier",
	StageServerRecv:  "srv_recv",
	StageServerDone:  "srv_done",
}

// String implements fmt.Stringer.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// MarshalText renders the stage name into flight-recorder JSON dumps.
func (s Stage) MarshalText() ([]byte, error) {
	return []byte(s.String()), nil
}

// UnmarshalText restores a stage from its name (dump post-processing).
func (s *Stage) UnmarshalText(b []byte) error {
	name := string(b)
	for i, n := range stageNames {
		if n == name {
			*s = Stage(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown stage %q", name)
}

// Event is one timestamped span event. Wall is wall-clock unix
// nanoseconds — spans cross goroutines (client → commit process), and
// wall time is the only clock shared monotonically between them.
type Event struct {
	Span  uint64 `json:"span"`
	Stage Stage  `json:"stage"`
	Node  string `json:"node"` // filled by the recording ring
	Op    string `json:"op,omitempty"`
	Path  string `json:"path,omitempty"`
	Wall  int64  `json:"wall_ns"`
	Note  string `json:"note,omitempty"`
}

// String renders one dump line.
func (e Event) String() string {
	s := fmt.Sprintf("span=%d %-8s node=%s %s %s", e.Span, e.Stage, e.Node, e.Op, e.Path)
	if e.Note != "" {
		s += " (" + e.Note + ")"
	}
	return s
}

// defaultRingSize bounds one node ring's resident events.
const defaultRingSize = 4096

// Ring is one node's event buffer: a fixed-size overwrite ring under its
// own mutex, so recording is O(1), allocation-free after warm-up, and
// nodes never contend with each other. Nil-safe: a nil ring drops
// events, which is how disabled observability costs one branch.
type Ring struct {
	node string
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
}

// Record appends ev, overwriting the oldest event when full.
func (r *Ring) Record(ev Event) {
	if r == nil {
		return
	}
	ev.Node = r.node
	r.mu.Lock()
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Events returns the resident events oldest-first.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Tracer allocates span IDs and owns the per-node rings.
type Tracer struct {
	spanSeq  atomic.Uint64
	ringSize int

	mu    sync.Mutex
	rings map[string]*Ring
}

// NewSpan allocates a span ID (never 0 — 0 marks an untraced op). A nil
// tracer returns 0.
func (t *Tracer) NewSpan() uint64 {
	if t == nil {
		return 0
	}
	return t.spanSeq.Add(1)
}

// Ring returns (creating on first use) the named node's event ring. Nil
// tracer → nil ring, which records nothing.
func (t *Tracer) Ring(node string) *Ring {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rings == nil {
		t.rings = make(map[string]*Ring)
	}
	r, ok := t.rings[node]
	if !ok {
		size := t.ringSize
		if size <= 0 {
			size = defaultRingSize
		}
		r = &Ring{node: node, buf: make([]Event, size)}
		t.rings[node] = r
	}
	return r
}

// Events merges every ring's resident events, ordered by wall time (span
// then stage break ties, so one span's same-instant events keep their
// pipeline order).
func (t *Tracer) Events() []Event {
	return t.Filter(func(Event) bool { return true })
}

// Filter returns the resident events keep admits, in wall-time order.
// This is the dump API: filter by span, path, stage, or time window.
func (t *Tracer) Filter(keep func(Event) bool) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	rings := make([]*Ring, 0, len(t.rings))
	for _, r := range t.rings {
		rings = append(rings, r)
	}
	t.mu.Unlock()
	var out []Event
	for _, r := range rings {
		for _, ev := range r.Events() {
			if keep(ev) {
				out = append(out, ev)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Wall != out[j].Wall {
			return out[i].Wall < out[j].Wall
		}
		if out[i].Span != out[j].Span {
			return out[i].Span < out[j].Span
		}
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		// Node as the final tie-break: the rings are harvested in map
		// order, so without it identical-timestamp events from different
		// nodes would shuffle between dumps and break golden diffs.
		return out[i].Node < out[j].Node
	})
	return out
}

// SpanEvents returns one span's resident events in wall-time order.
func (t *Tracer) SpanEvents(span uint64) []Event {
	return t.Filter(func(e Event) bool { return e.Span == span })
}

// SpanStep is one hop of a span's per-stage breakdown: the stage arrived
// at and the time spent getting there from the previous event.
type SpanStep struct {
	Stage Stage
	D     time.Duration
}

// SpanSummary digests one span for the slow-op log.
type SpanSummary struct {
	Span    uint64
	Op      string
	Path    string
	Total   time.Duration
	Steps   []SpanStep
	Outcome Stage // last recorded stage
}

// String renders one slow-op line with its per-stage breakdown.
func (s SpanSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "span=%d %s %s total=%v [", s.Span, s.Op, s.Path, s.Total)
	for i, st := range s.Steps {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s+%v", st.Stage, st.D)
	}
	b.WriteString("]")
	return b.String()
}

// SlowSpans groups resident events by span and returns the spans whose
// first-to-last wall span meets threshold, slowest first, at most max
// (0 = unlimited). Spans still mid-flight are reported as-is — a span
// parked for seconds is exactly what the slow-op log exists to show.
func (t *Tracer) SlowSpans(threshold time.Duration, max int) []SpanSummary {
	if t == nil {
		return nil
	}
	evs := t.Events()
	byspan := make(map[uint64][]Event)
	for _, ev := range evs {
		if ev.Span != 0 {
			byspan[ev.Span] = append(byspan[ev.Span], ev)
		}
	}
	var out []SpanSummary
	for span, sevs := range byspan {
		total := time.Duration(sevs[len(sevs)-1].Wall - sevs[0].Wall)
		if total < threshold {
			continue
		}
		sum := SpanSummary{
			Span:    span,
			Op:      sevs[0].Op,
			Path:    sevs[0].Path,
			Total:   total,
			Outcome: sevs[len(sevs)-1].Stage,
		}
		if sum.Path == "" && len(sevs) > 1 {
			sum.Path = sevs[1].Path
		}
		for i, ev := range sevs {
			var d time.Duration
			if i > 0 {
				d = time.Duration(ev.Wall - sevs[i-1].Wall)
			}
			sum.Steps = append(sum.Steps, SpanStep{Stage: ev.Stage, D: d})
		}
		out = append(out, sum)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Span < out[j].Span
	})
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}
