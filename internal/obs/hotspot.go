package obs

import (
	"math"
	"sort"
	"sync"

	"pacon/internal/namespace"
)

// Hotspot telemetry: the observation half of the elastic-region control
// loop (ROADMAP item 3). Every client op records its path into a
// per-node bounded heavy-hitter sketch plus a subtree rollup, so the
// merged view can answer "which paths are hot", "which subtree would a
// split relieve", and "how skewed is the load" without unbounded
// memory. All state is O(capacity) per node regardless of key-space
// size; the record path is mutex + map probe + an O(log capacity) heap
// fix-up, and allocates only while a sketch is below capacity
// (evictions reuse the displaced entry).

// Default sketch capacities. Space-saving guarantees any key whose true
// count exceeds total/capacity is resident, so 256 path slots resolve
// the top tail of a working set thousands of keys wide, and subtrees
// (one key per directory, not per file) need fewer still.
const (
	DefaultHotPathCap    = 256
	DefaultHotSubtreeCap = 128
)

// SpaceSaving is a bounded top-K counter sketch (Metwally et al.'s
// space-saving algorithm). At most capacity keys are resident; when a
// new key arrives at capacity the minimum-count entry is evicted and
// the newcomer inherits its count as an overestimate, recorded per
// entry as ErrBound. Counts are therefore upper bounds with
// count-ErrBound the guaranteed lower bound, and any key with true
// frequency above Total/capacity is guaranteed resident.
type SpaceSaving struct {
	mu        sync.Mutex
	capacity  int
	entries   map[string]*ssEntry
	heap      []*ssEntry // min-heap on (count, key); heap[0] is next victim
	total     int64
	evictions int64
}

type ssEntry struct {
	key      string
	count    int64
	errBound int64
	idx      int // position in the eviction heap
}

// NewSpaceSaving returns a sketch holding at most capacity keys.
func NewSpaceSaving(capacity int) *SpaceSaving {
	if capacity < 1 {
		capacity = 1
	}
	return &SpaceSaving{
		capacity: capacity,
		entries:  make(map[string]*ssEntry, capacity),
		heap:     make([]*ssEntry, 0, capacity),
	}
}

// Inc adds n to key's counter, evicting the minimum entry if the sketch
// is full. The eviction path reuses the displaced entry and the victim
// is the heap root, so a sketch at capacity records in O(log capacity)
// without allocating — worst-case unique-key churn (every op evicts)
// stays cheap enough for the client hot path.
func (s *SpaceSaving) Inc(key string, n int64) {
	if s == nil || n <= 0 {
		return
	}
	s.mu.Lock()
	s.total += n
	if e, ok := s.entries[key]; ok {
		e.count += n
		s.siftDown(e.idx) // count only grew: it can only move away from the root
		s.mu.Unlock()
		return
	}
	if len(s.entries) < s.capacity {
		e := &ssEntry{key: key, count: n, idx: len(s.heap)}
		s.entries[key] = e
		s.heap = append(s.heap, e)
		s.siftUp(e.idx)
		s.mu.Unlock()
		return
	}
	// Full: displace the minimum-count entry (ties broken on key so
	// eviction order is deterministic) and reuse its struct in place.
	min := s.heap[0]
	delete(s.entries, min.key)
	min.errBound = min.count
	min.count += n
	min.key = key
	s.entries[key] = min
	s.siftDown(0)
	s.evictions++
	s.mu.Unlock()
}

// ssLess orders the eviction heap: lowest count first, key as the
// deterministic tie-break.
func ssLess(a, b *ssEntry) bool {
	return a.count < b.count || (a.count == b.count && a.key < b.key)
}

func (s *SpaceSaving) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heap[i].idx, s.heap[j].idx = i, j
}

func (s *SpaceSaving) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !ssLess(s.heap[i], s.heap[p]) {
			return
		}
		s.swap(i, p)
		i = p
	}
}

func (s *SpaceSaving) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && ssLess(s.heap[l], s.heap[least]) {
			least = l
		}
		if r < n && ssLess(s.heap[r], s.heap[least]) {
			least = r
		}
		if least == i {
			return
		}
		s.swap(i, least)
		i = least
	}
}

// Len returns the number of resident keys.
func (s *SpaceSaving) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Total returns the sum of all increments ever recorded (not just those
// still resident).
func (s *SpaceSaving) Total() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Evictions returns how many entries were displaced at capacity.
func (s *SpaceSaving) Evictions() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}

// HotKey is one resident sketch entry. Count is an upper bound on the
// key's true frequency and Count-ErrBound a lower bound; Share is
// Count over the sketch's op total.
type HotKey struct {
	Path     string  `json:"path"`
	Count    int64   `json:"count"`
	ErrBound int64   `json:"err_bound,omitempty"`
	Share    float64 `json:"share"`
}

// Top returns the k highest-count entries, count-descending with path
// as the tie-break, shares computed against the sketch's own total.
func (s *SpaceSaving) Top(k int) []HotKey {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]HotKey, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, HotKey{Path: e.key, Count: e.count, ErrBound: e.errBound})
	}
	total := s.total
	s.mu.Unlock()
	sortHotKeys(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	if total > 0 {
		for i := range out {
			out[i].Share = float64(out[i].Count) / float64(total)
		}
	}
	return out
}

func sortHotKeys(ks []HotKey) {
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].Count != ks[j].Count {
			return ks[i].Count > ks[j].Count
		}
		return ks[i].Path < ks[j].Path
	})
}

// MergeSketches combines per-node sketches into one bounded sketch:
// counts and error bounds sum per key, then only the top-capacity keys
// are kept. The merged total is the sum of the inputs' totals, so
// shares remain shares of all recorded ops.
func MergeSketches(capacity int, sketches ...*SpaceSaving) *SpaceSaving {
	m := NewSpaceSaving(capacity)
	sum := make(map[string]*ssEntry)
	for _, s := range sketches {
		if s == nil {
			continue
		}
		s.mu.Lock()
		m.total += s.total
		m.evictions += s.evictions
		for k, e := range s.entries {
			if acc, ok := sum[k]; ok {
				acc.count += e.count
				acc.errBound += e.errBound
			} else {
				sum[k] = &ssEntry{key: k, count: e.count, errBound: e.errBound}
			}
		}
		s.mu.Unlock()
	}
	order := make([]*ssEntry, 0, len(sum))
	for _, e := range sum {
		order = append(order, e)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].count != order[j].count {
			return order[i].count > order[j].count
		}
		return order[i].key < order[j].key
	})
	if len(order) > m.capacity {
		order = order[:m.capacity]
	}
	for _, e := range order {
		// Insert through the heap so the merged sketch stays a live,
		// Inc-able sketch, not just a read-only table.
		e.idx = len(m.heap)
		m.entries[e.key] = e
		m.heap = append(m.heap, e)
		m.siftUp(e.idx)
	}
	return m
}

// NodeHot is one node's hotspot recorder: a path sketch plus a subtree
// rollup fed by ancestor iteration. Obtain via Obs.HotNode; a nil
// receiver (observability disabled) makes Record a no-op.
type NodeHot struct {
	node     string
	paths    *SpaceSaving
	subtrees *SpaceSaving
}

// Record attributes one op to path: the path sketch counts the exact
// key and every proper ancestor except the root gets a subtree credit
// (splitting "/" is not actionable, so it is excluded). The ancestor
// closure does not escape, so a Record on resident keys is alloc-free.
func (h *NodeHot) Record(path string) {
	if h == nil {
		return
	}
	h.paths.Inc(path, 1)
	namespace.VisitAncestors(path, func(anc string) bool {
		if anc != "/" {
			h.subtrees.Inc(anc, 1)
		}
		return true
	})
}

// Ops returns the node's total recorded ops.
func (h *NodeHot) Ops() int64 {
	if h == nil {
		return 0
	}
	return h.paths.Total()
}

// HotNode returns (creating on first use) the per-node recorder.
// Nil-safe: a nil Obs returns a nil recorder whose Record is a no-op.
func (o *Obs) HotNode(node string) *NodeHot {
	if o == nil {
		return nil
	}
	if h, ok := o.hotNodes.Load(node); ok {
		return h.(*NodeHot)
	}
	h := &NodeHot{
		node:     node,
		paths:    NewSpaceSaving(DefaultHotPathCap),
		subtrees: NewSpaceSaving(DefaultHotSubtreeCap),
	}
	got, _ := o.hotNodes.LoadOrStore(node, h)
	return got.(*NodeHot)
}

// hotRange iterates the per-node recorders in node order.
func (o *Obs) hotRange(fn func(h *NodeHot)) {
	var hs []*NodeHot
	o.hotNodes.Range(func(_, v any) bool {
		hs = append(hs, v.(*NodeHot))
		return true
	})
	sort.Slice(hs, func(i, j int) bool { return hs[i].node < hs[j].node })
	for _, h := range hs {
		fn(h)
	}
}

// TopPaths merges every node's path sketch and returns the k hottest
// paths cluster-wide. Nil-safe.
func (o *Obs) TopPaths(k int) []HotKey {
	if o == nil {
		return nil
	}
	var sks []*SpaceSaving
	o.hotRange(func(h *NodeHot) { sks = append(sks, h.paths) })
	return MergeSketches(DefaultHotPathCap, sks...).Top(k)
}

// HotSubtrees merges every node's subtree rollup and returns up to k
// subtrees whose share of all recorded ops is at least minShare —
// the split candidates for an elastic rebalancer. Shares here are
// computed against the op total (each op credits every ancestor), so a
// subtree containing all traffic has share 1.0. Nil-safe.
func (o *Obs) HotSubtrees(k int, minShare float64) []HotKey {
	if o == nil {
		return nil
	}
	var sks []*SpaceSaving
	var ops int64
	o.hotRange(func(h *NodeHot) {
		sks = append(sks, h.subtrees)
		ops += h.paths.Total()
	})
	out := MergeSketches(DefaultHotSubtreeCap, sks...).Top(0)
	for i := range out {
		if ops > 0 {
			out[i].Share = float64(out[i].Count) / float64(ops)
		}
	}
	filtered := out[:0]
	for _, hk := range out {
		if hk.Share >= minShare {
			filtered = append(filtered, hk)
		}
	}
	if k > 0 && len(filtered) > k {
		filtered = filtered[:k]
	}
	return filtered
}

// NodeLoad is one node's recorded-op total.
type NodeLoad struct {
	Node string `json:"node"`
	Ops  int64  `json:"ops"`
}

// HotNodeLoads returns per-node recorded-op totals, sorted by node.
// Nil-safe.
func (o *Obs) HotNodeLoads() []NodeLoad {
	if o == nil {
		return nil
	}
	var out []NodeLoad
	o.hotRange(func(h *NodeHot) {
		out = append(out, NodeLoad{Node: h.node, Ops: h.paths.Total()})
	})
	return out
}

// hotPathsTracked / hotSubtreesTracked / hotEvictions / topPathSharePermille
// back the hot_* self-metrics registered in New.
func (o *Obs) hotPathsTracked() int64 {
	var n int64
	o.hotRange(func(h *NodeHot) { n += int64(h.paths.Len()) })
	return n
}

func (o *Obs) hotSubtreesTracked() int64 {
	var n int64
	o.hotRange(func(h *NodeHot) { n += int64(h.subtrees.Len()) })
	return n
}

func (o *Obs) hotEvictions() int64 {
	var n int64
	o.hotRange(func(h *NodeHot) { n += h.paths.Evictions() + h.subtrees.Evictions() })
	return n
}

func (o *Obs) topPathSharePermille() int64 {
	top := o.TopPaths(1)
	if len(top) == 0 {
		return 0
	}
	return int64(math.Round(1000 * top[0].Share))
}

// nodeOpSkew is the load-imbalance of recorded ops across nodes.
func (o *Obs) nodeOpSkew() SkewStats {
	loads := o.HotNodeLoads()
	ops := make([]int64, len(loads))
	for i, l := range loads {
		ops[i] = l.Ops
	}
	return Skew(ops)
}

// SkewStats summarizes load imbalance over a population of counters.
// Both gauges are dimensionless ratios encoded permille (×1000) so
// they export as integer Prometheus gauges: MaxMeanPermille is
// max(load)/mean(load) — 1000 means perfectly balanced, 3000 means the
// hottest member carries 3× its fair share — and CVPermille is the
// coefficient of variation (population stddev over mean).
type SkewStats struct {
	N               int   `json:"n"`
	Total           int64 `json:"total"`
	MaxMeanPermille int64 `json:"max_mean_permille"`
	CVPermille      int64 `json:"cv_permille"`
}

// Skew computes imbalance stats over loads. Empty or zero-total
// populations report zero (no signal, not "balanced").
func Skew(loads []int64) SkewStats {
	st := SkewStats{N: len(loads)}
	if len(loads) == 0 {
		return st
	}
	var max int64
	for _, l := range loads {
		st.Total += l
		if l > max {
			max = l
		}
	}
	if st.Total <= 0 {
		return st
	}
	mean := float64(st.Total) / float64(len(loads))
	st.MaxMeanPermille = int64(math.Round(1000 * float64(max) / mean))
	var ss float64
	for _, l := range loads {
		d := float64(l) - mean
		ss += d * d
	}
	st.CVPermille = int64(math.Round(1000 * math.Sqrt(ss/float64(len(loads))) / mean))
	return st
}

// HotReport is the operator-facing hotspot snapshot: served by the
// paconfs `hot` command and /debug/hot endpoint and embedded in flight
// dumps. All tables are deterministically ordered.
type HotReport struct {
	TotalOps    int64      `json:"total_ops"`
	TopPaths    []HotKey   `json:"top_paths,omitempty"`
	HotSubtrees []HotKey   `json:"hot_subtrees,omitempty"`
	NodeOps     []NodeLoad `json:"node_ops,omitempty"`
	NodeSkew    SkewStats  `json:"node_skew"`
}

// HotReport snapshots the merged hotspot state, or nil when no ops have
// been recorded (or o is nil).
func (o *Obs) HotReport(k int, minShare float64) *HotReport {
	if o == nil {
		return nil
	}
	r := &HotReport{
		TopPaths:    o.TopPaths(k),
		HotSubtrees: o.HotSubtrees(k, minShare),
		NodeOps:     o.HotNodeLoads(),
		NodeSkew:    o.nodeOpSkew(),
	}
	for _, l := range r.NodeOps {
		r.TotalOps += l.Ops
	}
	if r.TotalOps == 0 {
		return nil
	}
	return r
}
