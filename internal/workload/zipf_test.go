package workload

import (
	"fmt"
	"testing"
)

func zipfTestPaths(n int) []string {
	paths := make([]string, n)
	for i := range paths {
		paths[i] = fmt.Sprintf("/w/f%04d", i)
	}
	return paths
}

// TestZipfDeterministicPerSeed: two streams over the same distribution
// and seed replay identically; a different seed diverges.
func TestZipfDeterministicPerSeed(t *testing.T) {
	z := NewZipfPaths(zipfTestPaths(256), 1.2)
	a, b, c := z.Stream(7), z.Stream(7), z.Stream(8)
	same, diff := true, false
	for i := 0; i < 1000; i++ {
		av := a.NextRank()
		if av != b.NextRank() {
			same = false
		}
		if av != c.NextRank() {
			diff = true
		}
	}
	if !same {
		t.Fatal("same-seed streams diverged")
	}
	if !diff {
		t.Fatal("different-seed streams are identical")
	}
}

// TestZipfSkewOrdering: draw frequencies must follow rank order — rank
// 0 dominates, and the Hot(k) head carries the majority of the mass at
// s=1.2 — and the flat s≤1 regime must also work (rand.Zipf can't do
// s=1.0; the explicit cumulative table can).
func TestZipfSkewOrdering(t *testing.T) {
	for _, s := range []float64{1.0, 1.2, 1.4} {
		z := NewZipfPaths(zipfTestPaths(256), s)
		if z.Len() != 256 {
			t.Fatalf("s=%.1f: Len=%d, want 256", s, z.Len())
		}
		st := z.Stream(42)
		counts := make([]int, z.Len())
		for i := 0; i < 100_000; i++ {
			counts[st.NextRank()]++
		}
		if counts[0] <= counts[10] || counts[10] <= counts[100] {
			t.Fatalf("s=%.1f: counts not rank-ordered: c0=%d c10=%d c100=%d",
				s, counts[0], counts[10], counts[100])
		}
		hotMass := 0
		for r := 0; r < 16; r++ {
			hotMass += counts[r]
		}
		// At s=1.0 over 256 keys the top 16 carry ≈55% of the mass;
		// steeper s concentrates further. 40% is a safe floor for all
		// three sweep points.
		if hotMass < 40_000 {
			t.Fatalf("s=%.1f: top-16 mass = %d of 100000, want ≥ 40000", s, hotMass)
		}
	}
}

// TestZipfHotTruthSet: Hot(k) is the ground-truth head in rank order,
// Path maps ranks back to the layout, and Next yields Path(NextRank).
func TestZipfHotTruthSet(t *testing.T) {
	paths := zipfTestPaths(64)
	z := NewZipfPaths(paths, 1.2)
	hot := z.Hot(4)
	if len(hot) != 4 {
		t.Fatalf("Hot(4) returned %d paths", len(hot))
	}
	for i, p := range hot {
		if p != paths[i] {
			t.Fatalf("Hot[%d] = %q, want %q", i, p, paths[i])
		}
	}
	if got := z.Hot(1000); len(got) != 64 {
		t.Fatalf("Hot(k>len) returned %d paths, want all 64", len(got))
	}
	// Next must agree with Path(NextRank) under the same seed.
	st2, st3 := z.Stream(5), z.Stream(5)
	for i := 0; i < 100; i++ {
		if st2.Next() != z.Path(st3.NextRank()) {
			t.Fatal("Next() disagrees with Path(NextRank()) under the same seed")
		}
	}
}
