package workload

import (
	"math"
	"math/rand"
	"sort"
)

// ZipfPaths draws paths with zipf-distributed popularity: the path at
// rank i (0-based) is selected with probability proportional to
// 1/(i+1)^s. s=0 is uniform; s around 1.0-1.4 is the skew regime real
// metadata traces show, where a handful of ranks dominate — the input
// the hotspot sketch exists to compress. Unlike math/rand's Zipf this
// supports s ≤ 1 (the sweep's s=1.0 point) by sampling the explicit
// cumulative weight table with a binary search.
type ZipfPaths struct {
	paths []string
	cum   []float64 // cum[i] = Σ_{j≤i} (j+1)^-s
}

// NewZipfPaths builds a generator over paths in rank order: paths[0] is
// the hottest key, paths[1] the second, and so on.
func NewZipfPaths(paths []string, s float64) *ZipfPaths {
	cum := make([]float64, len(paths))
	total := 0.0
	for i := range paths {
		total += math.Pow(float64(i+1), -s)
		cum[i] = total
	}
	return &ZipfPaths{paths: append([]string(nil), paths...), cum: cum}
}

// Len returns the key-space size.
func (z *ZipfPaths) Len() int { return len(z.paths) }

// Path returns the path at the given rank.
func (z *ZipfPaths) Path(rank int) string { return z.paths[rank] }

// Hot returns the true hot set: the k hottest ranks, in rank order.
// This is the ground truth a sketch's recall is measured against.
func (z *ZipfPaths) Hot(k int) []string {
	if k > len(z.paths) {
		k = len(z.paths)
	}
	return append([]string(nil), z.paths[:k]...)
}

// pick maps a uniform u ∈ [0,1) to a rank by binary-searching the
// cumulative weights.
func (z *ZipfPaths) pick(u float64) int {
	target := u * z.cum[len(z.cum)-1]
	i := sort.SearchFloat64s(z.cum, target)
	if i >= len(z.paths) {
		i = len(z.paths) - 1
	}
	return i
}

// Stream returns an independent deterministic sample stream. Streams
// share the rank table, so per-shard streams in a concurrent workload
// cost one rng each.
func (z *ZipfPaths) Stream(seed int64) *ZipfStream {
	return &ZipfStream{z: z, rng: rand.New(rand.NewSource(seed))}
}

// ZipfStream is one seeded sample sequence over a ZipfPaths table. Not
// safe for concurrent use; give each goroutine its own stream.
type ZipfStream struct {
	z   *ZipfPaths
	rng *rand.Rand
}

// NextRank draws the next rank.
func (s *ZipfStream) NextRank() int { return s.z.pick(s.rng.Float64()) }

// Next draws the next path.
func (s *ZipfStream) Next() string { return s.z.paths[s.NextRank()] }
