package workload

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"pacon/internal/core"
	"pacon/internal/dfs"
	"pacon/internal/fsapi"
	"pacon/internal/indexfs"
	"pacon/internal/rpc"
	"pacon/internal/vclock"
)

var (
	rootCred = fsapi.Cred{}
	appCred  = fsapi.Cred{UID: 1000, GID: 1000}
)

// Interface conformance: all three systems drive through one workload.
var (
	_ Client     = (*dfs.Client)(nil)
	_ FileClient = (*dfs.Client)(nil)
	_ Client     = (*indexfs.Client)(nil)
	_ Client     = (*core.Client)(nil)
	_ FileClient = (*core.Client)(nil)
)

type testEnv struct {
	bus     *rpc.Bus
	cluster *dfs.Cluster
}

func newTestEnv(t *testing.T) *testEnv {
	t.Helper()
	bus := rpc.NewBus()
	cluster := dfs.NewCluster(bus, vclock.Default(), rootCred, "storage0", []string{"s1", "s2", "s3"})
	admin := cluster.NewClient("admin", rootCred, 0, 0)
	if _, err := admin.Mkdir(0, "/w", 0o777); err != nil {
		t.Fatal(err)
	}
	return &testEnv{bus: bus, cluster: cluster}
}

func (e *testEnv) dfsClients(n int) []Client {
	out := make([]Client, n)
	for i := range out {
		out[i] = e.cluster.NewClient(fmt.Sprintf("node%d", i%4), appCred, 0, 0)
	}
	return out
}

func (e *testEnv) paconRegion(t *testing.T, nodes []string) *core.Region {
	t.Helper()
	region, err := core.NewRegion(core.RegionConfig{
		Name: "app", Workspace: "/w", Nodes: nodes, Cred: appCred, Model: vclock.Default(),
	}, core.Deps{
		Bus: e.bus,
		NewBackend: func(node string) core.Backend {
			return e.cluster.NewClient(node, appCred, 4096, time.Hour)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { region.Close() })
	return region
}

func TestMdtestPhasesOnDFS(t *testing.T) {
	e := newTestEnv(t)
	md := NewMdtest(e.dfsClients(8), "/w", 20, 1)

	mk, err := md.MkdirPhase()
	if err != nil {
		t.Fatal(err)
	}
	if mk.Ops != 160 || mk.OPS() <= 0 {
		t.Fatalf("mkdir result = %+v", mk)
	}
	cr, err := md.CreatePhase()
	if err != nil {
		t.Fatal(err)
	}
	if cr.Start != mk.End {
		t.Fatal("phases must be barrier-separated")
	}
	st, err := md.StatPhase()
	if err != nil {
		t.Fatal(err)
	}
	// Reads are cheaper than writes on the MDS.
	if st.OPS() <= cr.OPS() {
		t.Fatalf("stat OPS %.0f should exceed create OPS %.0f", st.OPS(), cr.OPS())
	}
	rm, err := md.RemovePhase()
	if err != nil {
		t.Fatal(err)
	}
	if rm.Ops != 160 {
		t.Fatalf("remove ops = %d", rm.Ops)
	}
	// Everything removed: the parent lists only the mkdir-phase dirs.
	ents, _, err := e.cluster.NewClient("v", appCred, 0, 0).Readdir(rm.End, "/w")
	if err != nil || len(ents) != 160 {
		t.Fatalf("post-remove listing = %d, %v", len(ents), err)
	}
}

func TestMdtestOnPacon(t *testing.T) {
	e := newTestEnv(t)
	nodes := []string{"node0", "node1"}
	region := e.paconRegion(t, nodes)
	clients := make([]Client, 8)
	for i := range clients {
		c, err := region.NewClient(nodes[i%len(nodes)])
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	md := NewMdtest(clients, "/w", 25, 42)
	cr, err := md.CreatePhase()
	if err != nil {
		t.Fatal(err)
	}
	st, err := md.StatPhase()
	if err != nil {
		t.Fatal(err)
	}
	if cr.Ops != 200 || st.Ops != 200 {
		t.Fatalf("ops: %d, %d", cr.Ops, st.Ops)
	}
	// Everything lands on the DFS after a drain.
	if _, err := region.Drain(st.End); err != nil {
		t.Fatal(err)
	}
	if got := e.cluster.MDS.Tree().Len(); got != 201 { // /w + 200 files
		t.Fatalf("DFS object count = %d", got)
	}
}

func TestMdtestTreeAndLeafStats(t *testing.T) {
	e := newTestEnv(t)
	md := NewMdtest(e.dfsClients(4), "/w", 10, 3)
	tree, err := md.BuildTree(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Leaves) != 27 {
		t.Fatalf("leaves = %d, want 27", len(tree.Leaves))
	}
	res, err := md.StatLeavesPhase(tree)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 40 {
		t.Fatalf("ops = %d", res.Ops)
	}
}

func TestDeeperTreeIsSlowerOnDFS(t *testing.T) {
	ops := func(depth int) float64 {
		e := newTestEnv(t)
		md := NewMdtest(e.dfsClients(8), "/w", 30, 5)
		tree, err := md.BuildTree(3, depth)
		if err != nil {
			t.Fatal(err)
		}
		res, err := md.StatLeavesPhase(tree)
		if err != nil {
			t.Fatal(err)
		}
		return res.OPS()
	}
	shallow, deep := ops(2), ops(5)
	if deep >= shallow {
		t.Fatalf("depth-5 stat (%.0f OPS) should be slower than depth-2 (%.0f OPS)", deep, shallow)
	}
}

func TestMdtestErrorPropagates(t *testing.T) {
	e := newTestEnv(t)
	md := NewMdtest(e.dfsClients(2), "/does-not-exist", 5, 1)
	if _, err := md.CreatePhase(); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestMADbenchOnDFS(t *testing.T) {
	e := newTestEnv(t)
	clients := make([]FileClient, 8)
	for i := range clients {
		clients[i] = e.cluster.NewClient(fmt.Sprintf("node%d", i%4), appCred, 0, 0)
	}
	mb := NewMADbench(clients, "/w", 1<<20, 2, 10*time.Millisecond)
	res, err := mb.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Init <= 0 || res.Read <= 0 || res.Write <= 0 {
		t.Fatalf("breakdown = %+v", res)
	}
	// 2 compute phases per iteration × 2 iterations × 10ms.
	if res.Other != 40*time.Millisecond {
		t.Fatalf("other = %v", res.Other)
	}
	if res.Total() != res.Init+res.Read+res.Write+res.Other {
		t.Fatal("total mismatch")
	}
	// Data really exists: spot-check one file's size.
	st, _, err := e.cluster.NewClient("v", appCred, 0, 0).Stat(vclock.Time(1<<50), "/w/component.3.dat")
	if err != nil || st.Size != 1<<20 {
		t.Fatalf("component file = %+v, %v", st, err)
	}
}

func TestMADbenchOnPacon(t *testing.T) {
	e := newTestEnv(t)
	nodes := []string{"node0", "node1"}
	region := e.paconRegion(t, nodes)
	clients := make([]FileClient, 4)
	for i := range clients {
		c, err := region.NewClient(nodes[i%2])
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	// 1 MB files exceed the 4 KB threshold: data redirects to the DFS,
	// so read/write costs match the DFS while init (creates) is cheap.
	mb := NewMADbench(clients, "/w", 1<<20, 1, 10*time.Millisecond)
	res, err := mb.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Init >= res.Write {
		t.Fatalf("init (%v) should be far below a data phase (%v)", res.Init, res.Write)
	}
}
