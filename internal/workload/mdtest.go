package workload

import (
	"fmt"
	"math/rand"

	"pacon/internal/namespace"
	"pacon/internal/vclock"
)

// Mdtest reproduces the paper's mdtest runs: N concurrent clients
// create directories and empty files under the same parent directory,
// then randomly stat them (§IV.A), optionally over deeper tree shapes
// for the path-traversal experiments (§II.C, §IV.C).
type Mdtest struct {
	// Dir is the working directory (must exist).
	Dir string
	// ItemsPerClient is each client's item count per phase.
	ItemsPerClient int
	// Seed feeds the random-stat order.
	Seed int64

	runner *Runner
}

// NewMdtest builds a driver over the clients.
func NewMdtest(clients []Client, dir string, itemsPerClient int, seed int64) *Mdtest {
	return &Mdtest{
		Dir:            namespace.Clean(dir),
		ItemsPerClient: itemsPerClient,
		Seed:           seed,
		runner:         NewRunner(clients),
	}
}

// Runner exposes the underlying phase runner.
func (m *Mdtest) Runner() *Runner { return m.runner }

// MkdirPhase: every client creates ItemsPerClient directories in Dir.
func (m *Mdtest) MkdirPhase() (Result, error) {
	return m.runner.RunPhase(func(idx int, cl Client, now vclock.Time) (vclock.Time, int64, error) {
		var err error
		for j := 0; j < m.ItemsPerClient; j++ {
			now, err = cl.Mkdir(now, namespace.Join(m.Dir, uniqueName("d", idx, j)), 0o755)
			if err != nil {
				return now, 0, fmt.Errorf("mkdir client %d item %d: %w", idx, j, err)
			}
		}
		return now, int64(m.ItemsPerClient), nil
	})
}

// CreatePhase: every client creates ItemsPerClient empty files in Dir.
func (m *Mdtest) CreatePhase() (Result, error) {
	return m.runner.RunPhase(func(idx int, cl Client, now vclock.Time) (vclock.Time, int64, error) {
		var err error
		for j := 0; j < m.ItemsPerClient; j++ {
			now, err = cl.Create(now, namespace.Join(m.Dir, uniqueName("f", idx, j)), 0o644)
			if err != nil {
				return now, 0, fmt.Errorf("create client %d item %d: %w", idx, j, err)
			}
		}
		return now, int64(m.ItemsPerClient), nil
	})
}

// StatPhase: every client randomly stats ItemsPerClient of the files
// created by CreatePhase (across all clients — random access defeats
// per-client locality, §IV.A).
func (m *Mdtest) StatPhase() (Result, error) {
	n := len(m.runner.clients)
	return m.runner.RunPhase(func(idx int, cl Client, now vclock.Time) (vclock.Time, int64, error) {
		rnd := rand.New(rand.NewSource(m.Seed + int64(idx)))
		var err error
		for j := 0; j < m.ItemsPerClient; j++ {
			owner := rnd.Intn(n)
			item := rnd.Intn(m.ItemsPerClient)
			_, now, err = cl.Stat(now, namespace.Join(m.Dir, uniqueName("f", owner, item)))
			if err != nil {
				return now, 0, fmt.Errorf("stat client %d item %d: %w", idx, j, err)
			}
		}
		return now, int64(m.ItemsPerClient), nil
	})
}

// RemovePhase: every client removes its files.
func (m *Mdtest) RemovePhase() (Result, error) {
	return m.runner.RunPhase(func(idx int, cl Client, now vclock.Time) (vclock.Time, int64, error) {
		var err error
		for j := 0; j < m.ItemsPerClient; j++ {
			now, err = cl.Remove(now, namespace.Join(m.Dir, uniqueName("f", idx, j)))
			if err != nil {
				return now, 0, fmt.Errorf("remove client %d item %d: %w", idx, j, err)
			}
		}
		return now, int64(m.ItemsPerClient), nil
	})
}

// Tree describes an mdtest -z/-b namespace: a directory tree with the
// given fanout and depth rooted at Dir.
type Tree struct {
	Dir    string
	Fanout int
	Depth  int
	// Leaves are the deepest directories, the random-stat targets of the
	// path-traversal experiments.
	Leaves []string
}

// BuildTree creates the tree through client 0 (setup is not measured)
// and returns the leaf directory list.
func (m *Mdtest) BuildTree(fanout, depth int) (*Tree, error) {
	tree := &Tree{Dir: m.Dir, Fanout: fanout, Depth: depth}
	_, err := m.runner.RunPhase(func(idx int, cl Client, now vclock.Time) (vclock.Time, int64, error) {
		if idx != 0 {
			return now, 0, nil
		}
		var build func(dir string, level int, now vclock.Time) (vclock.Time, error)
		build = func(dir string, level int, now vclock.Time) (vclock.Time, error) {
			if level == depth {
				tree.Leaves = append(tree.Leaves, dir)
				return now, nil
			}
			for i := 0; i < fanout; i++ {
				child := namespace.Join(dir, fmt.Sprintf("t%d", i))
				var err error
				now, err = cl.Mkdir(now, child, 0o755)
				if err != nil {
					return now, err
				}
				if now, err = build(child, level+1, now); err != nil {
					return now, err
				}
			}
			return now, nil
		}
		now, err := build(m.Dir, 0, now)
		return now, 0, err
	})
	if err != nil {
		return nil, err
	}
	return tree, nil
}

// StatLeavesPhase randomly stats the tree's leaf directories — the
// paper's path-traversal benchmark (Figs 2, 9): every stat resolves a
// depth-long path.
func (m *Mdtest) StatLeavesPhase(tree *Tree) (Result, error) {
	return m.runner.RunPhase(func(idx int, cl Client, now vclock.Time) (vclock.Time, int64, error) {
		rnd := rand.New(rand.NewSource(m.Seed + 7919*int64(idx+1)))
		var err error
		for j := 0; j < m.ItemsPerClient; j++ {
			leaf := tree.Leaves[rnd.Intn(len(tree.Leaves))]
			_, now, err = cl.Stat(now, leaf)
			if err != nil {
				return now, 0, fmt.Errorf("stat leaf: %w", err)
			}
		}
		return now, int64(m.ItemsPerClient), nil
	})
}
