// Package workload implements the paper's benchmark drivers: an
// mdtest-like metadata workload (mkdir / create / random-stat phases
// over configurable trees, §IV.A–E) and a MADbench2-like HPC application
// workload (per-process component files, large sequential I/O and
// compute phases, §IV.F). Both drive any metadata service through the
// Client interface, so BeeGFS, IndexFS and Pacon run the identical
// workload code.
package workload

import (
	"fmt"
	"sync"

	"pacon/internal/fsapi"
	"pacon/internal/vclock"
)

// Client is the view of a file system a metadata workload needs.
// dfs.Client, indexfs.Client and core.Client all satisfy it.
type Client interface {
	Mkdir(at vclock.Time, p string, mode fsapi.Mode) (vclock.Time, error)
	Create(at vclock.Time, p string, mode fsapi.Mode) (vclock.Time, error)
	Stat(at vclock.Time, p string) (fsapi.Stat, vclock.Time, error)
	Readdir(at vclock.Time, p string) ([]fsapi.DirEntry, vclock.Time, error)
	Remove(at vclock.Time, p string) (vclock.Time, error)
	Pace(pacer *vclock.Pacer, id int)
}

// FileClient adds the data plane, for the MADbench2 workload.
type FileClient interface {
	Client
	WriteAt(at vclock.Time, p string, off int64, data []byte) (vclock.Time, error)
	ReadAt(at vclock.Time, p string, off int64, n int) ([]byte, vclock.Time, error)
}

// Result summarizes one phase.
type Result struct {
	// Ops is the total operation count across clients.
	Ops int64
	// Elapsed is the phase's virtual makespan (slowest client).
	Elapsed vclock.Duration
	// Start/End are the phase's virtual window.
	Start, End vclock.Time
}

// OPS is throughput in operations per second of virtual time.
func (r Result) OPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// Runner executes phases over a set of simulated clients. Phases are
// separated by barriers (mdtest's MPI_Barrier): every client starts
// phase k at the virtual time the slowest client finished phase k-1.
type Runner struct {
	clients []Client
	times   []vclock.Time
}

// NewRunner wraps pre-built clients.
func NewRunner(clients []Client) *Runner {
	return &Runner{clients: clients, times: make([]vclock.Time, len(clients))}
}

// Clients returns the managed clients.
func (r *Runner) Clients() []Client { return r.clients }

// Now returns the current barrier time (max across clients).
func (r *Runner) Now() vclock.Time {
	var m vclock.Time
	for _, t := range r.times {
		m = vclock.Max(m, t)
	}
	return m
}

// PhaseFunc runs one client's share of a phase from `start`, returning
// its finish time and operation count.
type PhaseFunc func(idx int, cl Client, start vclock.Time) (vclock.Time, int64, error)

// NoSkewBound effectively disables pacing for a phase: the skew window
// is wider than any virtual time a phase reaches.
const NoSkewBound = vclock.Duration(1 << 60)

// RunPhase executes fn concurrently on every client between barriers. A
// fresh Pacer bounds virtual-clock skew for the phase.
func (r *Runner) RunPhase(fn PhaseFunc) (Result, error) {
	return r.RunPhaseWindow(0, fn)
}

// RunPhaseWindow is RunPhase with an explicit skew window (0 = the
// pacer default). A phase that takes region barriers (Readdir, Rmdir)
// while other clients keep operating must run a wide window (or
// NoSkewBound): a client parked in the barrier does not advance its
// virtual clock, so under a tight window the barrier holder's own RPCs
// block in the pacer waiting for the parked clients while the parked
// clients wait for the holder's release — a deadlock.
func (r *Runner) RunPhaseWindow(window vclock.Duration, fn PhaseFunc) (Result, error) {
	start := r.Now()
	pacer := vclock.NewPacer(len(r.clients), window)
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total int64
		first error
	)
	for i := range r.clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer pacer.Done(i)
			cl := r.clients[i]
			cl.Pace(pacer, i)
			end, ops, err := fn(i, cl, start)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && first == nil {
				first = err
			}
			if end > r.times[i] {
				r.times[i] = end
			} else {
				r.times[i] = start
			}
			total += ops
		}(i)
	}
	wg.Wait()
	if first != nil {
		return Result{}, first
	}
	end := r.Now()
	return Result{Ops: total, Elapsed: end.Sub(start), Start: start, End: end}, nil
}

// uniqueName builds mdtest-style item names: every client works in the
// same parent directory with client-unique names.
func uniqueName(kind string, client, item int) string {
	return fmt.Sprintf("%s.%d.%d", kind, client, item)
}
