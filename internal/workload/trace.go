package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pacon/internal/vclock"
)

// Trace support: a line-oriented operation log that can be replayed
// against any metadata service. Lines look like
//
//	<client> mkdir  /w/dir
//	<client> create /w/dir/f
//	<client> stat   /w/dir/f
//	<client> rm     /w/dir/f
//	<client> readdir /w/dir
//	<client> write  /w/dir/f <bytes>
//	<client> read   /w/dir/f <bytes>
//
// where <client> is a decimal client index. '#' starts a comment. Traces
// make custom workloads reproducible: capture once, replay against
// BeeGFS, IndexFS and Pacon.

// TraceOp is one parsed trace line.
type TraceOp struct {
	Client int
	Kind   string
	Path   string
	Bytes  int // write/read payload size
}

// ParseTrace reads a trace stream.
func ParseTrace(r io.Reader) ([]TraceOp, error) {
	var ops []TraceOp
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("trace line %d: want '<client> <op> <path> [bytes]', got %q", lineNo, line)
		}
		client, err := strconv.Atoi(fields[0])
		if err != nil || client < 0 {
			return nil, fmt.Errorf("trace line %d: bad client index %q", lineNo, fields[0])
		}
		op := TraceOp{Client: client, Kind: fields[1], Path: fields[2]}
		switch op.Kind {
		case "mkdir", "create", "stat", "rm", "rmdir", "readdir":
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace line %d: %s takes no extra args", lineNo, op.Kind)
			}
		case "write", "read":
			if len(fields) != 4 {
				return nil, fmt.Errorf("trace line %d: %s needs a byte count", lineNo, op.Kind)
			}
			n, err := strconv.Atoi(fields[3])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("trace line %d: bad byte count %q", lineNo, fields[3])
			}
			op.Bytes = n
		default:
			return nil, fmt.Errorf("trace line %d: unknown op %q", lineNo, op.Kind)
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}

// FormatTrace renders ops back to the textual form (round-trips
// ParseTrace).
func FormatTrace(w io.Writer, ops []TraceOp) error {
	bw := bufio.NewWriter(w)
	for _, op := range ops {
		switch op.Kind {
		case "write", "read":
			fmt.Fprintf(bw, "%d %s %s %d\n", op.Client, op.Kind, op.Path, op.Bytes)
		default:
			fmt.Fprintf(bw, "%d %s %s\n", op.Client, op.Kind, op.Path)
		}
	}
	return bw.Flush()
}

// TraceResult summarizes a replay.
type TraceResult struct {
	Result
	// PerKind counts executed operations by kind.
	PerKind map[string]int64
	// Errors counts operations that failed (the replay continues; a
	// trace may legitimately contain failing ops, e.g. stat-after-rm).
	Errors int64
}

// ReplayTrace partitions the trace by client index (modulo the client
// count) and replays each client's subsequence in order, concurrently
// across clients. Data ops require FileClients; on a metadata-only
// client they count as errors.
func ReplayTrace(clients []Client, ops []TraceOp) (TraceResult, error) {
	perClient := make([][]TraceOp, len(clients))
	for _, op := range ops {
		i := op.Client % len(clients)
		perClient[i] = append(perClient[i], op)
	}
	runner := NewRunner(clients)
	var (
		out   = TraceResult{PerKind: make(map[string]int64)}
		kinds = make([]map[string]int64, len(clients))
		errs  = make([]int64, len(clients))
	)
	res, err := runner.RunPhase(func(idx int, cl Client, now vclock.Time) (vclock.Time, int64, error) {
		counts := make(map[string]int64)
		kinds[idx] = counts
		var done int64
		for _, op := range perClient[idx] {
			var err error
			switch op.Kind {
			case "mkdir":
				now, err = cl.Mkdir(now, op.Path, 0o755)
			case "create":
				now, err = cl.Create(now, op.Path, 0o644)
			case "stat":
				_, now, err = cl.Stat(now, op.Path)
			case "rm":
				now, err = cl.Remove(now, op.Path)
			case "readdir":
				_, now, err = cl.Readdir(now, op.Path)
			case "rmdir":
				rd, ok := cl.(interface {
					Rmdir(vclock.Time, string) (vclock.Time, error)
				})
				if !ok {
					err = fmt.Errorf("client lacks rmdir")
				} else {
					now, err = rd.Rmdir(now, op.Path)
				}
			case "write":
				fc, ok := cl.(FileClient)
				if !ok {
					err = fmt.Errorf("client lacks a data plane")
				} else {
					now, err = fc.WriteAt(now, op.Path, 0, make([]byte, op.Bytes))
				}
			case "read":
				fc, ok := cl.(FileClient)
				if !ok {
					err = fmt.Errorf("client lacks a data plane")
				} else {
					_, now, err = fc.ReadAt(now, op.Path, 0, op.Bytes)
				}
			}
			if err != nil {
				errs[idx]++
			} else {
				counts[op.Kind]++
				done++
			}
		}
		return now, done, nil
	})
	if err != nil {
		return out, err
	}
	out.Result = res
	for i := range clients {
		for k, v := range kinds[i] {
			out.PerKind[k] += v
		}
		out.Errors += errs[i]
	}
	return out, nil
}
