package workload

import (
	"fmt"
	"time"

	"pacon/internal/namespace"
	"pacon/internal/vclock"
)

// MADbench reproduces the paper's MADbench2 run (§IV.F): each working
// process creates a component file, writes its evaluation data, then
// repeatedly reads, computes and writes over the files. The paper
// breaks the runtime into init (file creation), read, write and other
// (computation + communication).
type MADbench struct {
	// Dir is the working directory (must exist).
	Dir string
	// FileBytes is each process's component-file size (4 MB in §IV.F).
	FileBytes int
	// Iterations is the number of read/compute/write rounds.
	Iterations int
	// ComputeTime is the per-round computation+communication cost
	// charged to each process's virtual clock.
	ComputeTime vclock.Duration
	// IOChunk is the request size of sequential I/O (1 MB default).
	IOChunk int

	runner *madRunner
}

// MADbenchResult is the paper's Fig 12 breakdown: virtual time per
// category, summed over phase makespans.
type MADbenchResult struct {
	Init  vclock.Duration
	Read  vclock.Duration
	Write vclock.Duration
	Other vclock.Duration
}

// Total is the run's virtual makespan.
func (r MADbenchResult) Total() vclock.Duration { return r.Init + r.Read + r.Write + r.Other }

// madRunner mirrors Runner for FileClients.
type madRunner struct{ *Runner }

// NewMADbench builds the driver over per-process file clients.
func NewMADbench(clients []FileClient, dir string, fileBytes, iterations int, compute vclock.Duration) *MADbench {
	base := make([]Client, len(clients))
	for i, c := range clients {
		base[i] = c
	}
	return &MADbench{
		Dir:         namespace.Clean(dir),
		FileBytes:   fileBytes,
		Iterations:  iterations,
		ComputeTime: compute,
		IOChunk:     1 << 20,
		runner:      &madRunner{NewRunner(base)},
	}
}

func (m *MADbench) file(idx int) string {
	return namespace.Join(m.Dir, fmt.Sprintf("component.%d.dat", idx))
}

// Run executes the full benchmark and returns the breakdown.
func (m *MADbench) Run() (MADbenchResult, error) {
	var out MADbenchResult

	// Init: create the component files (the paper's "init part mainly
	// includes file creation overhead").
	res, err := m.runner.RunPhase(func(idx int, cl Client, now vclock.Time) (vclock.Time, int64, error) {
		now, err := cl.Create(now, m.file(idx), 0o644)
		return now, 1, err
	})
	if err != nil {
		return out, fmt.Errorf("madbench init: %w", err)
	}
	out.Init = res.Elapsed

	// First data generation pass counts as write.
	res, err = m.writePhase()
	if err != nil {
		return out, err
	}
	out.Write += res.Elapsed

	for i := 0; i < m.Iterations; i++ {
		res, err = m.computePhase()
		if err != nil {
			return out, err
		}
		out.Other += res.Elapsed

		res, err = m.readPhase()
		if err != nil {
			return out, err
		}
		out.Read += res.Elapsed

		res, err = m.computePhase()
		if err != nil {
			return out, err
		}
		out.Other += res.Elapsed

		res, err = m.writePhase()
		if err != nil {
			return out, err
		}
		out.Write += res.Elapsed
	}
	return out, nil
}

func (m *MADbench) writePhase() (Result, error) {
	payload := make([]byte, m.IOChunk)
	for i := range payload {
		payload[i] = byte(i)
	}
	res, err := m.runner.RunPhase(func(idx int, cl Client, now vclock.Time) (vclock.Time, int64, error) {
		fc := cl.(FileClient)
		var err error
		for off := 0; off < m.FileBytes; off += m.IOChunk {
			n := m.IOChunk
			if off+n > m.FileBytes {
				n = m.FileBytes - off
			}
			now, err = fc.WriteAt(now, m.file(idx), int64(off), payload[:n])
			if err != nil {
				return now, 0, err
			}
		}
		return now, 1, nil
	})
	if err != nil {
		return res, fmt.Errorf("madbench write: %w", err)
	}
	return res, nil
}

func (m *MADbench) readPhase() (Result, error) {
	res, err := m.runner.RunPhase(func(idx int, cl Client, now vclock.Time) (vclock.Time, int64, error) {
		fc := cl.(FileClient)
		for off := 0; off < m.FileBytes; off += m.IOChunk {
			n := m.IOChunk
			if off+n > m.FileBytes {
				n = m.FileBytes - off
			}
			data, done, err := fc.ReadAt(now, m.file(idx), int64(off), n)
			now = done
			if err != nil {
				return now, 0, err
			}
			if len(data) != n {
				return now, 0, fmt.Errorf("short read: %d of %d at %d", len(data), n, off)
			}
		}
		return now, 1, nil
	})
	if err != nil {
		return res, fmt.Errorf("madbench read: %w", err)
	}
	return res, nil
}

func (m *MADbench) computePhase() (Result, error) {
	return m.runner.RunPhase(func(idx int, cl Client, now vclock.Time) (vclock.Time, int64, error) {
		return now.Add(m.ComputeTime), 1, nil
	})
}

// DefaultComputeTime approximates MADbench2's per-round dense-matrix
// work on one node at the paper's scale.
const DefaultComputeTime = 150 * time.Millisecond
