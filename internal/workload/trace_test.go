package workload

import (
	"bytes"
	"strings"
	"testing"
)

const sampleTrace = `# comment line
0 mkdir /w/d
0 create /w/d/f
0 write /w/d/f 128
1 stat /w/d/f
1 read /w/d/f 128
0 readdir /w/d
1 rm /w/d/f
0 rmdir /w/d
`

func TestParseTrace(t *testing.T) {
	ops, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 8 {
		t.Fatalf("parsed %d ops", len(ops))
	}
	if ops[0].Kind != "mkdir" || ops[0].Client != 0 || ops[0].Path != "/w/d" {
		t.Fatalf("op0 = %+v", ops[0])
	}
	if ops[2].Kind != "write" || ops[2].Bytes != 128 {
		t.Fatalf("op2 = %+v", ops[2])
	}
	if ops[3].Client != 1 {
		t.Fatalf("op3 = %+v", ops[3])
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []string{
		"0 mkdir",                 // missing path
		"x mkdir /w",              // bad client
		"0 frobnicate /w",         // unknown op
		"0 write /w/f",            // missing byte count
		"0 write /w/f many",       // bad byte count
		"0 mkdir /w extra-banana", // extra arg
	}
	for _, c := range cases {
		if _, err := ParseTrace(strings.NewReader(c)); err == nil {
			t.Errorf("%q: expected parse error", c)
		}
	}
}

func TestFormatTraceRoundTrip(t *testing.T) {
	ops, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := FormatTrace(&buf, ops); err != nil {
		t.Fatal(err)
	}
	again, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(ops) {
		t.Fatalf("round trip: %d vs %d ops", len(again), len(ops))
	}
	for i := range ops {
		if again[i] != ops[i] {
			t.Fatalf("op %d: %+v vs %+v", i, again[i], ops[i])
		}
	}
}

func TestReplayTraceOnPacon(t *testing.T) {
	e := newTestEnv(t)
	region := e.paconRegion(t, []string{"node0", "node1"})
	clients := make([]Client, 2)
	for i := range clients {
		c, err := region.NewClient([]string{"node0", "node1"}[i])
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	ops, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReplayTrace(clients, ops)
	if err != nil {
		t.Fatal(err)
	}
	// Same-path ops split across the two clients race (client 1's stat
	// can run before client 0's create); errors are tolerated but the
	// structural ops by client 0 must succeed.
	if res.PerKind["mkdir"] != 1 || res.PerKind["create"] != 1 {
		t.Fatalf("per-kind = %+v (errors %d)", res.PerKind, res.Errors)
	}
	if res.Ops == 0 || res.Elapsed <= 0 {
		t.Fatalf("result = %+v", res.Result)
	}
}

func TestReplayTraceSingleClientExact(t *testing.T) {
	e := newTestEnv(t)
	clients := []Client{e.cluster.NewClient("node0", appCred, 0, 0)}
	trace := `0 mkdir /w/d
0 create /w/d/a
0 create /w/d/b
0 stat /w/d/a
0 readdir /w/d
0 rm /w/d/a
`
	ops, err := ParseTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReplayTrace(clients, ops)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.Ops != 6 {
		t.Fatalf("ops = %d", res.Ops)
	}
	// DFS agrees with the trace's net effect.
	ents, _, err := clients[0].Readdir(res.End, "/w/d")
	if err != nil || len(ents) != 1 || ents[0].Name != "b" {
		t.Fatalf("final listing = %v, %v", ents, err)
	}
}

func TestReplayTraceDataOpsNeedFileClient(t *testing.T) {
	e := newTestEnv(t)
	region := e.paconRegion(t, []string{"node0"})
	c, err := region.NewClient("node0")
	if err != nil {
		t.Fatal(err)
	}
	// core.Client has a data plane, so write/read succeed.
	ops, _ := ParseTrace(strings.NewReader("0 create /w/f\n0 write /w/f 64\n0 read /w/f 64\n"))
	res, err := ReplayTrace([]Client{c}, ops)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.PerKind["write"] != 1 || res.PerKind["read"] != 1 {
		t.Fatalf("res = %+v errors=%d", res.PerKind, res.Errors)
	}
}
