package memcache

import (
	"sort"
	"testing"
)

// Minimal well-formed cache values for header-flag tests: byte 0 is the
// flag set (bit 0 dirty, bit 1 removed), byte 1 a one-byte uvarint seq.
var (
	cleanVal   = []byte{0, 1}
	dirtyVal   = []byte{hdrDirty, 1}
	removedVal = []byte{hdrRemoved, 1}
)

// TestCommittedItemsFiltersFlags: only entries whose header carries
// neither dirty nor removed may enter the audit sample, and malformed
// (headerless) values are never audited.
func TestCommittedItemsFiltersFlags(t *testing.T) {
	s := testServer(ServerConfig{})
	mustSet := func(key string, val []byte) {
		t.Helper()
		if _, _, err := s.Set(0, key, val, 0); err != nil {
			t.Fatal(err)
		}
	}
	mustSet("/w/clean-a", cleanVal)
	mustSet("/w/clean-b", cleanVal)
	mustSet("/w/dirty", dirtyVal)
	mustSet("/w/removed", removedVal)
	mustSet("/w/short", []byte{0}) // no room for a seq: malformed

	got := s.CommittedItems(-1)
	keys := make([]string, 0, len(got))
	for _, kv := range got {
		keys = append(keys, kv.Key)
		if string(kv.Value) != string(cleanVal) {
			t.Fatalf("committed item %s carries value %v", kv.Key, kv.Value)
		}
	}
	sort.Strings(keys)
	want := []string{"/w/clean-a", "/w/clean-b"}
	if len(keys) != len(want) || keys[0] != want[0] || keys[1] != want[1] {
		t.Fatalf("CommittedItems = %v, want %v", keys, want)
	}
}

// TestCommittedItemsReturnsCopies: mutating a returned value must not
// reach the resident item — the auditor decodes outside the shard lock.
func TestCommittedItemsReturnsCopies(t *testing.T) {
	s := testServer(ServerConfig{})
	if _, _, err := s.Set(0, "/w/k", cleanVal, 0); err != nil {
		t.Fatal(err)
	}
	got := s.CommittedItems(-1)
	if len(got) != 1 {
		t.Fatalf("sampled %d items, want 1", len(got))
	}
	got[0].Value[0] = hdrDirty
	if again := s.CommittedItems(-1); len(again) != 1 {
		t.Fatal("resident value mutated through the audit sample")
	}
}

// TestCommittedItemsLimit: limit bounds the sample; zero means sample
// nothing, negative means everything.
func TestCommittedItemsLimit(t *testing.T) {
	s := testServer(ServerConfig{})
	for _, k := range []string{"/w/a", "/w/b", "/w/c", "/w/d"} {
		if _, _, err := s.Set(0, k, cleanVal, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.CommittedItems(2); len(got) != 2 {
		t.Fatalf("limit 2 sampled %d", len(got))
	}
	if got := s.CommittedItems(0); len(got) != 0 {
		t.Fatalf("limit 0 sampled %d", len(got))
	}
	if got := s.CommittedItems(-1); len(got) != 4 {
		t.Fatalf("unlimited sampled %d, want 4", len(got))
	}
}
